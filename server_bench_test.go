package callcost_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/server"
)

// BenchmarkServerAllocate measures one allocation request through the
// whole service stack — HTTP edge, admission pool, content-addressed
// cache, JSON rendering — for a representative program pair. The
// "cold" mode bypasses the cache (every iteration re-colors), so the
// pair bounds the daemon's request cost: warm is what repeat traffic
// pays, cold minus warm is what the cache saves.
func BenchmarkServerAllocate(b *testing.B) {
	s := server.New(server.Options{QueueSize: 256})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := &http.Client{}

	post := func(b *testing.B, body []byte) {
		resp, err := client.Post(ts.URL+"/allocate", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
	}

	for _, name := range []string{"ear", "eqntott"} {
		p := benchprog.ByName(name)
		if p == nil {
			b.Fatalf("no benchmark program %s", name)
		}
		for _, mode := range []string{"cold", "warm"} {
			b.Run(name+"/"+mode, func(b *testing.B) {
				req := server.Request{
					Source:   p.Source,
					Config:   server.ConfigRequest{RI: 8, RF: 6, EI: 4, EF: 4},
					Strategy: "improved",
					NoCache:  mode == "cold",
				}
				body, err := json.Marshal(&req)
				if err != nil {
					b.Fatal(err)
				}
				post(b, body) // populate the cache for warm; one free cold run
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					post(b, body)
				}
			})
		}
	}
}
