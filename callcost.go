// Package callcost is the public API of this reproduction of
// "Call-Cost Directed Register Allocation" (Lueh & Gross, PLDI 1997).
//
// It compiles MC (a small C-like language) to an IR, register-allocates
// every function with a selectable coloring strategy on a parameterized
// MIPS-like machine (two banks, configurable caller-save/callee-save
// split), and measures the register-allocation overhead — spill,
// caller-save, callee-save, and shuffle memory operations — both
// analytically and by executing the allocated code on a machine-level
// interpreter.
//
// A minimal session:
//
//	prog, _ := callcost.Compile(src)
//	pf, _, _ := prog.Profile()                      // dynamic weights
//	base, _ := prog.Allocate(callcost.Chaitin(), callcost.NewConfig(8, 6, 4, 4), pf)
//	impr, _ := prog.Allocate(callcost.ImprovedAll(), callcost.NewConfig(8, 6, 4, 4), pf)
//	fmt.Println(base.Overhead(pf).Total() / impr.Overhead(pf).Total())
package callcost

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/cbh"
	"repro/internal/codegen"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/freq"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/linscan"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/minterp"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/priority"
	"repro/internal/regalloc"
	"repro/internal/rewrite"
)

// Re-exported machine-model types and helpers.
type (
	// Config is a register-file configuration (Ri,Rf,Ei,Ef).
	Config = machine.Config
	// Overhead is the decomposed register-allocation cost.
	Overhead = metrics.Overhead
	// Strategy is a pluggable register-allocation approach.
	Strategy = regalloc.Strategy
	// FreqInfo is a program-wide execution-frequency table.
	FreqInfo = freq.ProgramFreq
)

// NewConfig builds a configuration from the paper's (Ri,Rf,Ei,Ef)
// notation: caller-save int/float, callee-save int/float.
func NewConfig(ri, rf, ei, ef int) Config { return machine.NewConfig(ri, rf, ei, ef) }

// FullMachine is the complete register file (26 int, 16 float).
func FullMachine() Config { return machine.Full }

// Sweep returns the register-pressure sweep used by the paper's
// figures.
func Sweep() []Config { return machine.Sweep() }

// ---------------------------------------------------------------------
// Strategies

// Chaitin returns the base Chaitin-style allocator (the paper's §3.1
// base model).
func Chaitin() Strategy { return &regalloc.Chaitin{} }

// Optimistic returns Briggs' optimistic coloring (§8).
func Optimistic() Strategy { return &regalloc.Chaitin{Optimistic: true} }

// Improved returns the enhanced Chaitin-style allocator with the given
// techniques enabled: storage-class analysis, benefit-driven
// simplification, and preference decision (§4-§6).
func Improved(storageClass, benefitSimplify, preference bool) *core.Improved {
	return &core.Improved{
		StorageClass:    storageClass,
		BenefitSimplify: benefitSimplify,
		Preference:      preference,
	}
}

// ImprovedAll returns the paper's headline SC+BS+PR configuration.
func ImprovedAll() *core.Improved { return core.All() }

// ImprovedOptimistic returns SC+BS+PR integrated with optimistic
// coloring (§8, Figure 9).
func ImprovedOptimistic() *core.Improved {
	s := core.All()
	s.Optimistic = true
	return s
}

// PriorityOrdering selects the color ordering of the priority-based
// allocator.
type PriorityOrdering = priority.Ordering

// The priority orderings of §9.1.
const (
	PrioritySorting               = priority.Sorting
	PriorityRemovingUnconstrained = priority.RemovingUnconstrained
	PrioritySortingUnconstrained  = priority.SortingUnconstrained
)

// Priority returns Chow's priority-based allocator (§9) with the given
// ordering.
func Priority(o PriorityOrdering) Strategy { return &priority.Chow{Ordering: o} }

// CBH returns the Chaitin/Briggs-Hierarchical cost model (§10).
func CBH() Strategy { return &cbh.CBH{} }

// LinearScan returns the graph-free linear-scan allocator: one
// backward walk derives live intervals, spill costs, and the paper's
// caller/callee benefit split, and a single interval sweep assigns
// registers — no interference graph, no simplify stack. Its pipeline
// is liveness → scan → spill-rewrite.
func LinearScan() Strategy { return &linscan.Scan{} }

// HybridTiered returns the scan-first, color-on-spill tiered
// allocator: every function is first allocated by the hole-aware
// linear scan, and only functions whose scan takes a pressure spill —
// or whose estimated scan overhead exceeds the
// linscan.DefaultMaxScanOverhead bar — escalate to the full SC+BS+PR
// graph-coloring allocator. Spill-light functions keep the scan's
// multi-x allocation-time win; spill-heavy ones keep coloring quality.
func HybridTiered() Strategy {
	return &linscan.Hybrid{Escalate: core.All(), MaxScanOverhead: linscan.DefaultMaxScanOverhead}
}

// Strategies returns the named standard strategies, for tests and
// sweeps.
func Strategies() map[string]Strategy {
	return map[string]Strategy{
		"chaitin":    Chaitin(),
		"optimistic": Optimistic(),
		"improved":   ImprovedAll(),
		"priority":   Priority(PrioritySorting),
		"cbh":        CBH(),
		"linscan":    LinearScan(),
		"hybrid":     HybridTiered(),
	}
}

// ---------------------------------------------------------------------
// Programs

// Program is a compiled MC program plus cached frequency information
// and cached per-function allocation prep (see Prepare).
type Program struct {
	IR *ir.Program

	staticOnce sync.Once
	staticFreq *freq.ProgramFreq

	prepOnce sync.Once
	prep     *PreparedProgram
}

// Compile compiles MC source text.
func Compile(src string) (*Program, error) {
	p, err := compile.Source(src)
	if err != nil {
		return nil, err
	}
	return &Program{IR: p}, nil
}

// MustCompile is Compile that panics on error, for tests and examples
// with known-good sources.
func MustCompile(src string) *Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Run executes the program on the reference interpreter.
func (p *Program) Run() (*interp.Result, error) {
	return interp.Run(p.IR, interp.Options{})
}

// Profile runs the program with profiling and returns the dynamic
// (profile-based) frequency table together with the run result.
func (p *Program) Profile() (*freq.ProgramFreq, *interp.Result, error) {
	res, err := interp.Run(p.IR, interp.Options{Profile: true})
	if err != nil {
		return nil, nil, err
	}
	return freq.FromProfile(p.IR, res.Profile), res, nil
}

// StaticFreq returns the estimated (compile-time) frequency table,
// computed once. Safe for concurrent use.
func (p *Program) StaticFreq() *freq.ProgramFreq {
	p.staticOnce.Do(func() { p.staticFreq = freq.Static(p.IR) })
	return p.staticFreq
}

// PreparedProgram caches, per function, the allocation artifacts that
// depend only on the IR: CFG, liveness, and base interference graphs
// (plus the round-0 coalesce/range results the default configuration
// also shares). One PreparedProgram serves every (strategy, config)
// cell of a sweep; all methods are safe for concurrent use.
type PreparedProgram struct {
	funcs map[string]*pipeline.FuncCache
}

// Func returns the prepared state of the named function, or nil.
func (pp *PreparedProgram) Func(name string) *pipeline.FuncCache { return pp.funcs[name] }

// Prepare returns the program's prep cache, creating it on first call.
// The artifacts themselves are built lazily, on each function's first
// allocation. Allocate and AllocateWithOptions use the cache
// automatically; Prepare exists for callers that want to share it
// explicitly or warm it up.
func (p *Program) Prepare() *PreparedProgram {
	p.prepOnce.Do(func() {
		pp := &PreparedProgram{funcs: make(map[string]*pipeline.FuncCache, len(p.IR.Funcs))}
		for _, fn := range p.IR.Funcs {
			pp.funcs[fn.Name] = regalloc.Prepare(fn)
		}
		p.prep = pp
	})
	return p.prep
}

// ---------------------------------------------------------------------
// Allocations

// Allocation is a whole-program register allocation under one strategy
// and one register configuration.
type Allocation struct {
	Program  *Program
	Config   Config
	Strategy string
	Plans    map[string]*rewrite.FuncPlan
}

// AllocOptions re-exports the framework's tunables (coalescing mode,
// graph reconstruction, round limits, tracing, pipeline override).
type AllocOptions = regalloc.Options

// DefaultAllocOptions returns the standard configuration: aggressive
// coalescing, graph reconstruction between rounds, no tracer.
func DefaultAllocOptions() AllocOptions { return regalloc.DefaultOptions() }

// PassPipeline is the allocator's pass pipeline (package pipeline): an
// ordered, editable list of passes the round runner executes. Derive
// variants with Replace and Drop and attach them via
// AllocOptions.Pipeline to run ablations as pipeline edits.
type PassPipeline = pipeline.Pipeline

// PipelineFor returns the default pass pipeline the allocator would
// run for strat under opts — the starting point for deriving ablation
// pipelines.
func PipelineFor(strat Strategy, opts AllocOptions) PassPipeline {
	return regalloc.BuildPipeline(strat, rewrite.InsertSpills, opts)
}

// ---------------------------------------------------------------------
// Observability

// Tracer re-exports the allocator's event-sink interface (package
// obs): attach one via WithTracer to watch every allocation decision —
// simplify order, spill choices with their benefit evidence, color
// assignments, coalescing merges — plus per-phase wall time. The
// default (no tracer) is a no-op: existing callers are untouched and
// the allocator performs no extra allocations.
type Tracer = obs.Tracer

// TraceEvent is one allocator decision or phase boundary.
type TraceEvent = obs.Event

// StatsSink aggregates phase timings and decision counters in memory.
type StatsSink = obs.Stats

// WithTracer returns opts with tr attached (context-style option).
func WithTracer(opts AllocOptions, tr Tracer) AllocOptions {
	opts.Tracer = tr
	return opts
}

// NewJSONLSink returns a sink writing one JSON event per line to w.
func NewJSONLSink(w io.Writer) Tracer { return obs.NewJSONL(w) }

// NewNarrativeSink returns a sink writing a human-readable allocation
// narrative to w (what rallocc -explain prints).
func NewNarrativeSink(w io.Writer) Tracer { return obs.NewNarrative(w) }

// NewStatsSink returns an in-memory aggregator of phase timings and
// decision counters.
func NewStatsSink() *StatsSink { return obs.NewStats() }

// MultiSink fans events out to every given sink.
func MultiSink(ts ...Tracer) Tracer { return obs.NewMulti(ts...) }

// DisabledSink returns a tracer that is permanently off — behaviorally
// identical to attaching no tracer at all (useful for asserting the
// traced path costs nothing when disabled).
func DisabledSink() Tracer { return obs.Disabled{} }

// Allocate register-allocates every function of the program with the
// default framework options. pf supplies the cost weights (static
// estimates or a profile).
func (p *Program) Allocate(strat Strategy, config Config, pf *freq.ProgramFreq) (*Allocation, error) {
	return p.AllocateWithOptions(strat, config, pf, regalloc.DefaultOptions())
}

// AllocateWithOptions is Allocate with explicit framework options.
//
// Functions are allocated on a bounded worker pool (opts.Parallel
// workers; 0 selects GOMAXPROCS, 1 forces sequential). Functions are
// independent and every result lands in an index-addressed slot, so
// Colors, SlotOf, and the assembly output are byte-identical to the
// sequential path. A non-nil enabled Tracer forces the sequential path
// so the event stream stays in program order, unless opts.TraceParallel
// opts in to interleaved parallel tracing. Every emitted event carries
// a monotonic per-run sequence number (Event.Seq). Round-0 artifacts
// come from the program's prep cache unless opts.NoPrepCache is set.
func (p *Program) AllocateWithOptions(strat Strategy, config Config, pf *freq.ProgramFreq, opts AllocOptions) (*Allocation, error) {
	if !config.Valid() {
		return nil, fmt.Errorf("callcost: configuration %s below the calling-convention minimum (%d,%d,0,0)",
			config, machine.MinCallerInt, machine.MinCallerFloat)
	}
	a := &Allocation{
		Program:  p,
		Config:   config,
		Strategy: strat.Name(),
		Plans:    make(map[string]*rewrite.FuncPlan, len(p.IR.Funcs)),
	}
	var prep *PreparedProgram
	if !opts.NoPrepCache {
		prep = p.Prepare()
	}
	workers := opts.Parallel
	if opts.Tracer != nil && opts.Tracer.Enabled() {
		if !opts.TraceParallel {
			workers = 1
		}
		// One sequencer per program run: every event gets a monotonic
		// emission number, total across all functions of the run.
		opts.Tracer = obs.NewSequencer(opts.Tracer)
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	funcs := p.IR.Funcs
	plans := make([]*rewrite.FuncPlan, len(funcs))
	err := par.ForEachIndexedCtx(ctx, len(funcs), workers, func(i int) error {
		fn := funcs[i]
		ff := pf.ByFunc[fn.Name]
		if ff == nil {
			return fmt.Errorf("callcost: no frequency info for %s", fn.Name)
		}
		pfn := (*pipeline.FuncCache)(nil)
		if prep != nil {
			pfn = prep.Func(fn.Name)
		}
		if pfn == nil {
			pfn = regalloc.Prepare(fn)
		}
		fa, err := regalloc.AllocatePrepared(pfn, ff, config, strat, rewrite.InsertSpills, opts)
		if err != nil {
			return err
		}
		if err := rewrite.Validate(fa); err != nil {
			return fmt.Errorf("callcost: %s produced an invalid allocation: %w", strat.Name(), err)
		}
		plans[i] = rewrite.BuildPlan(fa)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, fn := range funcs {
		a.Plans[fn.Name] = plans[i]
	}
	return a, nil
}

// Overhead computes the analytic register-allocation cost of the
// allocation under the given frequency table.
func (a *Allocation) Overhead(pf *freq.ProgramFreq) Overhead {
	return metrics.AnalyticProgram(a.Plans, pf)
}

// Execute runs the allocated program on the machine-level interpreter,
// returning its result and the measured overhead counters.
func (a *Allocation) Execute() (*minterp.Result, error) {
	return minterp.Run(a.Program.IR, a.Plans, a.Config, minterp.Options{})
}

// MeasuredOverhead executes the allocation and returns the measured
// overhead decomposition.
func (a *Allocation) MeasuredOverhead() (Overhead, *minterp.Result, error) {
	res, err := a.Execute()
	if err != nil {
		return Overhead{}, nil, err
	}
	return metrics.FromCounts(res.Counts), res, nil
}

// Assembly emits MIPS-flavored assembly for the allocated program:
// spill code, caller-save save/restore around calls, and callee-save
// save/restore in prologue/epilogue are all visible in the text.
func (a *Allocation) Assembly() string {
	return codegen.Program(a.Program.IR, a.Plans, a.Config)
}

// Ratio is the paper's headline metric: base overhead divided by
// improved overhead (bigger is better for "improved").
func Ratio(base, improved float64) float64 { return metrics.Ratio(base, improved) }
