// Package interproc holds the interprocedural callee-save summaries the
// whole-program batch driver threads between functions.
//
// The paper's cost model (§4) is intraprocedural: every call site
// charges caller_save_cost = 2·freq per crossing live range, the static
// estimate for what the callee *might* clobber. After a callee has been
// allocated we know better: the set of caller-save physical registers
// it actually writes — directly, through its parameter marshaling, or
// transitively through its own calls. A caller-save register outside
// that set survives the call untouched, so a live range assigned to it
// needs no save/restore at the site.
//
// A Summary records exactly that clobber set per register bank. The
// Table is the concurrent map the batch driver publishes summaries
// into as components of the call graph finish, and the cost model and
// save/restore placement read from. Lookups for functions without a
// summary (external callees, members of the same recursive component,
// or a disabled table) fall back to the paper's static behavior:
// everything caller-save is assumed clobbered.
package interproc

import (
	"sync"

	"repro/internal/ir"
	"repro/internal/machine"
)

// RegSet is a small set of physical registers of one bank. The machine
// model tops out at 26 registers per bank, so one word suffices.
type RegSet uint64

// Add inserts r.
func (s *RegSet) Add(r machine.PhysReg) { *s |= 1 << uint(r) }

// Has reports whether r is in the set.
func (s RegSet) Has(r machine.PhysReg) bool { return s&(1<<uint(r)) != 0 }

// Union returns s ∪ o.
func (s RegSet) Union(o RegSet) RegSet { return s | o }

// Empty reports whether the set is empty.
func (s RegSet) Empty() bool { return s == 0 }

// Count returns the cardinality.
func (s RegSet) Count() int {
	n := 0
	for s != 0 {
		s &= s - 1
		n++
	}
	return n
}

// CallerSaveSet returns the full caller-save register set of bank c
// under config — the static-estimate fallback for unknown callees.
func CallerSaveSet(config machine.Config, c ir.Class) RegSet {
	var s RegSet
	for r := 0; r < config.Caller[c]; r++ {
		s.Add(machine.PhysReg(r))
	}
	return s
}

// Summary is the allocation-derived interprocedural fact sheet of one
// function.
type Summary struct {
	// Clobbered[c] is the set of caller-save physical registers of
	// bank c the function writes, transitively: registers colored to
	// its own occurring virtual registers, its parameter registers
	// (written by the caller's argument marshaling), and the clobber
	// sets of everything it calls. A call to a function without a
	// summary contributes the full caller-save set.
	Clobbered [ir.NumClasses]RegSet
}

// Table is the concurrent summary store of one whole-program batch
// run. The zero Table is not usable; construct with NewTable. A nil
// *Table is valid everywhere and means "interprocedural costs off":
// every lookup reports the static estimate.
type Table struct {
	config machine.Config

	mu sync.RWMutex
	m  map[string]*Summary
}

// NewTable returns an empty summary table for the given machine
// configuration.
func NewTable(config machine.Config) *Table {
	return &Table{config: config, m: make(map[string]*Summary)}
}

// Publish records the summary of the named function. Publishing is
// write-once per function; the batch driver publishes a component's
// summaries only after every member is allocated.
func (t *Table) Publish(name string, s *Summary) {
	t.mu.Lock()
	t.m[name] = s
	t.mu.Unlock()
}

// Lookup returns the summary of the named function, or nil when none
// has been published (or the table is nil).
func (t *Table) Lookup(name string) *Summary {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	s := t.m[name]
	t.mu.RUnlock()
	return s
}

// Len returns the number of published summaries.
func (t *Table) Len() int {
	if t == nil {
		return 0
	}
	t.mu.RLock()
	n := len(t.m)
	t.mu.RUnlock()
	return n
}

// Clobbered returns the clobber set a call to the named function
// implies for bank c: the summary's set when one exists, the full
// caller-save set otherwise.
func (t *Table) Clobbered(callee string, c ir.Class) RegSet {
	if s := t.Lookup(callee); s != nil {
		return s.Clobbered[c]
	}
	var cfg machine.Config
	if t != nil {
		cfg = t.config
	} else {
		cfg = machine.Full
	}
	return CallerSaveSet(cfg, c)
}

// Clobbers reports whether a call to the named function may write
// caller-save register r of bank c. Without a summary the answer is
// always true (the static estimate).
func (t *Table) Clobbers(callee string, c ir.Class, r machine.PhysReg) bool {
	if s := t.Lookup(callee); s != nil {
		return s.Clobbered[c].Has(r)
	}
	return true
}

// CrossFactor returns the per-crossing cost multiplier for a call to
// the named function, for a live range of bank c. The paper's static
// estimate is 2 (one save + one restore per crossing). With a summary,
// the factor scales by the fraction of the bank's caller-save file the
// callee actually clobbers — 0 when the callee provably preserves the
// whole bank, in which case the site does not count as a crossing at
// all for ranges of that bank.
func (t *Table) CrossFactor(callee string, c ir.Class) float64 {
	if t == nil {
		return 2
	}
	s := t.Lookup(callee)
	if s == nil {
		return 2
	}
	total := t.config.Caller[c]
	if total == 0 {
		return 0
	}
	return 2 * float64(s.Clobbered[c].Count()) / float64(total)
}
