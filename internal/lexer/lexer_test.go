package lexer

import (
	"testing"

	"repro/internal/source"
	"repro/internal/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	var errs source.ErrorList
	toks := All(src, &errs)
	if errs.Len() > 0 {
		t.Fatalf("unexpected lex errors for %q: %v", src, errs.Error())
	}
	out := make([]token.Kind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func TestKeywordsAndIdents(t *testing.T) {
	got := kinds(t, "int float void if else while for do return break continue foo _bar x1")
	want := []token.Kind{
		token.INT, token.FLOAT, token.VOID, token.IF, token.ELSE, token.WHILE,
		token.FOR, token.DO, token.RETURN, token.BREAK, token.CONTINUE,
		token.IDENT, token.IDENT, token.IDENT, token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	got := kinds(t, "+ - * / % = == != < <= > >= && || ! ( ) { } [ ] , ;")
	want := []token.Kind{
		token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT,
		token.ASSIGN, token.EQ, token.NE, token.LT, token.LE, token.GT,
		token.GE, token.AND, token.OR, token.NOT, token.LPAREN, token.RPAREN,
		token.LBRACE, token.RBRACE, token.LBRACK, token.RBRACK, token.COMMA,
		token.SEMI, token.EOF,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	tests := []struct {
		src  string
		kind token.Kind
		lit  string
	}{
		{"0", token.INTLIT, "0"},
		{"42", token.INTLIT, "42"},
		{"12345678901", token.INTLIT, "12345678901"},
		{"1.5", token.FLOATLIT, "1.5"},
		{"0.001", token.FLOATLIT, "0.001"},
		{"1e10", token.FLOATLIT, "1e10"},
		{"2.5e-3", token.FLOATLIT, "2.5e-3"},
		{"7E+2", token.FLOATLIT, "7E+2"},
	}
	for _, tt := range tests {
		var errs source.ErrorList
		toks := All(tt.src, &errs)
		if toks[0].Kind != tt.kind || toks[0].Lit != tt.lit {
			t.Errorf("%q: got %s %q, want %s %q", tt.src, toks[0].Kind, toks[0].Lit, tt.kind, tt.lit)
		}
	}
}

func TestNumberFollowedByDotMethodLike(t *testing.T) {
	// "1.x" is INTLIT then something illegal: '.' is not a token by
	// itself in MC, so 1 . x should produce an error for '.'.
	var errs source.ErrorList
	toks := All("1.x", &errs)
	if toks[0].Kind != token.INTLIT {
		t.Fatalf("got %v, want INTLIT first", toks[0])
	}
	if errs.Len() == 0 {
		t.Fatal("expected an error for bare '.'")
	}
}

func TestExponentNotGreedy(t *testing.T) {
	// "1e" should lex as INTLIT(1) IDENT(e), not an invalid float.
	var errs source.ErrorList
	toks := All("1e", &errs)
	if errs.Len() != 0 {
		t.Fatalf("unexpected errors: %v", errs.Error())
	}
	if toks[0].Kind != token.INTLIT || toks[0].Lit != "1" {
		t.Errorf("first token = %v, want INTLIT(1)", toks[0])
	}
	if toks[1].Kind != token.IDENT || toks[1].Lit != "e" {
		t.Errorf("second token = %v, want IDENT(e)", toks[1])
	}
}

func TestComments(t *testing.T) {
	src := `
// line comment with int float keywords
x /* block
   spanning lines */ y
`
	got := kinds(t, src)
	want := []token.Kind{token.IDENT, token.IDENT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	var errs source.ErrorList
	All("x /* never closed", &errs)
	if errs.Len() == 0 {
		t.Fatal("expected unterminated-comment error")
	}
}

func TestPositions(t *testing.T) {
	var errs source.ErrorList
	toks := All("a\n  bb\n", &errs)
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("bb at %v, want 2:3", toks[1].Pos)
	}
}

func TestIllegalCharacters(t *testing.T) {
	for _, src := range []string{"@", "#", "$", "&", "|", "~", "^"} {
		var errs source.ErrorList
		toks := All(src, &errs)
		if toks[0].Kind != token.ILLEGAL {
			t.Errorf("%q: got %v, want ILLEGAL", src, toks[0])
		}
		if errs.Len() == 0 {
			t.Errorf("%q: expected an error", src)
		}
	}
}

func TestSingleAmpPipeSuggest(t *testing.T) {
	var errs source.ErrorList
	All("a & b", &errs)
	if errs.Len() != 1 {
		t.Fatalf("expected 1 error, got %d", errs.Len())
	}
}

func TestEOFIsSticky(t *testing.T) {
	var errs source.ErrorList
	l := New("x", &errs)
	l.Next() // x
	for i := 0; i < 3; i++ {
		if tok := l.Next(); tok.Kind != token.EOF {
			t.Fatalf("Next after end = %v, want EOF", tok)
		}
	}
}
