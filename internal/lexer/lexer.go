// Package lexer converts MC source text into a token stream.
package lexer

import (
	"repro/internal/source"
	"repro/internal/token"
)

// Token is a lexed token: its kind, literal spelling, and position.
type Token struct {
	Kind token.Kind
	Lit  string
	Pos  source.Pos
}

// String renders the token for debugging.
func (t Token) String() string {
	switch t.Kind {
	case token.IDENT, token.INTLIT, token.FLOATLIT, token.ILLEGAL:
		return t.Kind.String() + "(" + t.Lit + ")"
	}
	return t.Kind.String()
}

// Lexer scans MC source text. Create one with New and pull tokens with
// Next; after the input is exhausted Next returns EOF forever.
type Lexer struct {
	src  string
	off  int // byte offset of the next unread byte
	line int
	col  int
	errs *source.ErrorList
}

// New returns a Lexer over src reporting errors to errs. errs may be nil,
// in which case errors are silently represented as ILLEGAL tokens only.
func New(src string, errs *source.ErrorList) *Lexer {
	return &Lexer{src: src, line: 1, col: 1, errs: errs}
}

func (l *Lexer) errorf(pos source.Pos, format string, args ...interface{}) {
	if l.errs != nil {
		l.errs.Add(pos, format, args...)
	}
}

func (l *Lexer) pos() source.Pos { return source.Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func isLetter(c byte) bool {
	return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || c == '_'
}

// skipSpace consumes whitespace and comments (both // line comments and
// /* block comments */).
func (l *Lexer) skipSpace() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token in the input.
func (l *Lexer) Next() Token {
	l.skipSpace()
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: token.EOF, Pos: pos}
	}
	c := l.peek()
	switch {
	case isLetter(c):
		start := l.off
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		lit := l.src[start:l.off]
		return Token{Kind: token.Lookup(lit), Lit: lit, Pos: pos}
	case isDigit(c):
		return l.number(pos)
	}
	l.advance()
	two := func(next byte, yes, no token.Kind) Token {
		if l.peek() == next {
			l.advance()
			return Token{Kind: yes, Lit: yes.String(), Pos: pos}
		}
		return Token{Kind: no, Lit: no.String(), Pos: pos}
	}
	switch c {
	case '+':
		return Token{Kind: token.PLUS, Lit: "+", Pos: pos}
	case '-':
		return Token{Kind: token.MINUS, Lit: "-", Pos: pos}
	case '*':
		return Token{Kind: token.STAR, Lit: "*", Pos: pos}
	case '/':
		return Token{Kind: token.SLASH, Lit: "/", Pos: pos}
	case '%':
		return Token{Kind: token.PERCENT, Lit: "%", Pos: pos}
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '!':
		return two('=', token.NE, token.NOT)
	case '<':
		return two('=', token.LE, token.LT)
	case '>':
		return two('=', token.GE, token.GT)
	case '&':
		if l.peek() == '&' {
			l.advance()
			return Token{Kind: token.AND, Lit: "&&", Pos: pos}
		}
		l.errorf(pos, "unexpected character %q (did you mean &&?)", string(c))
		return Token{Kind: token.ILLEGAL, Lit: "&", Pos: pos}
	case '|':
		if l.peek() == '|' {
			l.advance()
			return Token{Kind: token.OR, Lit: "||", Pos: pos}
		}
		l.errorf(pos, "unexpected character %q (did you mean ||?)", string(c))
		return Token{Kind: token.ILLEGAL, Lit: "|", Pos: pos}
	case '(':
		return Token{Kind: token.LPAREN, Lit: "(", Pos: pos}
	case ')':
		return Token{Kind: token.RPAREN, Lit: ")", Pos: pos}
	case '{':
		return Token{Kind: token.LBRACE, Lit: "{", Pos: pos}
	case '}':
		return Token{Kind: token.RBRACE, Lit: "}", Pos: pos}
	case '[':
		return Token{Kind: token.LBRACK, Lit: "[", Pos: pos}
	case ']':
		return Token{Kind: token.RBRACK, Lit: "]", Pos: pos}
	case ',':
		return Token{Kind: token.COMMA, Lit: ",", Pos: pos}
	case ';':
		return Token{Kind: token.SEMI, Lit: ";", Pos: pos}
	}
	l.errorf(pos, "unexpected character %q", string(c))
	return Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

// number scans an integer or floating literal. A literal is floating when
// it contains a '.' or an exponent part.
func (l *Lexer) number(pos source.Pos) Token {
	start := l.off
	isFloat := false
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' && isDigit(l.peek2()) {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if c := l.peek(); c == 'e' || c == 'E' {
		// Exponent: e[+-]?digits. Only consume when well-formed.
		save := l.off
		saveLine, saveCol := l.line, l.col
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			isFloat = true
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		} else {
			l.off, l.line, l.col = save, saveLine, saveCol
		}
	}
	lit := l.src[start:l.off]
	if isFloat {
		return Token{Kind: token.FLOATLIT, Lit: lit, Pos: pos}
	}
	return Token{Kind: token.INTLIT, Lit: lit, Pos: pos}
}

// All lexes the entire input and returns the tokens including the final
// EOF token. It is a convenience for tests and tools.
func All(src string, errs *source.ErrorList) []Token {
	l := New(src, errs)
	var toks []Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}
