package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < NumKinds; k++ {
		s := k.String()
		if s == "unknown" || s == "" {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("kind name %q duplicated", s)
		}
		seen[s] = true
	}
}

func TestMultiFansOutAndSkipsDisabled(t *testing.T) {
	a, b := NewStats(), NewStats()
	m := NewMulti(a, Disabled{}, nil, b)
	if !m.Enabled() {
		t.Fatal("multi with enabled members should be enabled")
	}
	m.Emit(Event{Kind: KindColorAssign, Fn: "f"})
	if a.Count(KindColorAssign) != 1 || b.Count(KindColorAssign) != 1 {
		t.Fatalf("both sinks should see the event: a=%d b=%d",
			a.Count(KindColorAssign), b.Count(KindColorAssign))
	}
	if NewMulti(Disabled{}, nil).Enabled() {
		t.Fatal("multi of disabled members should be disabled")
	}
}

func TestNewMultiSingleSinkIsDirect(t *testing.T) {
	s := NewStats()
	if got := NewMulti(nil, s); got != Tracer(s) {
		t.Fatalf("single-sink multi should return the sink itself, got %T", got)
	}
}

func TestStatsAggregation(t *testing.T) {
	s := NewStats()
	s.Emit(Event{Kind: KindPhaseStart, Fn: "f", Phase: PhaseColor, Round: 0})
	s.Emit(Event{Kind: KindPhaseEnd, Fn: "f", Phase: PhaseColor, Round: 0, Dur: 2 * time.Millisecond})
	s.Emit(Event{Kind: KindPhaseEnd, Fn: "g", Phase: PhaseColor, Round: 1, Dur: 3 * time.Millisecond})
	s.Emit(Event{Kind: KindPhaseEnd, Fn: "g", Phase: PhaseLiveness, Round: 1, Dur: time.Millisecond})
	s.Emit(Event{Kind: KindSpillChoice, Fn: "g", Round: 1, Reason: ReasonBlocked})

	if got := s.Count(KindPhaseEnd); got != 3 {
		t.Fatalf("phase-end count = %d, want 3", got)
	}
	if got := s.TotalEvents(); got != 5 {
		t.Fatalf("total events = %d, want 5", got)
	}
	if got := s.PhaseTotal(); got != 6*time.Millisecond {
		t.Fatalf("phase total = %v, want 6ms", got)
	}
	phases := s.Phases()
	if len(phases) != 2 || phases[0].Phase != PhaseLiveness || phases[1].Phase != PhaseColor {
		t.Fatalf("phases not in pipeline order: %+v", phases)
	}
	if phases[1].Count != 2 || phases[1].Total != 5*time.Millisecond {
		t.Fatalf("color phase aggregate wrong: %+v", phases[1])
	}
	funcs := s.Funcs()
	if len(funcs) != 2 || funcs[0].Fn != "f" || funcs[1].Fn != "g" {
		t.Fatalf("funcs not in discovery order: %+v", funcs)
	}
	if funcs[1].Rounds != 2 {
		t.Fatalf("g rounds = %d, want 2 (round index 1 observed)", funcs[1].Rounds)
	}
	s.Reset()
	if s.TotalEvents() != 0 || len(s.Phases()) != 0 {
		t.Fatal("reset should clear everything")
	}
}

func TestJSONLEmitsValidPerKindLines(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	s.Emit(Event{Kind: KindPhaseEnd, Fn: "f", Phase: PhaseColor, Round: 0, Dur: time.Millisecond})
	s.Emit(Event{Kind: KindColorAssign, Fn: "f", Reg: 3, Color: 2,
		Wanted: KindCallee, Chosen: KindCaller, Cost: 10, BenefitCaller: 4, BenefitCallee: -2})
	s.Emit(Event{Kind: KindSpillChoice, Fn: "f", Reg: 5, Reason: ReasonBlocked, Key: 1.5})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &m); err != nil {
		t.Fatalf("line 2 not valid JSON: %v", err)
	}
	for _, key := range []string{"kind", "fn", "reg", "color", "wanted", "chosen",
		"spill_cost", "benefit_caller", "benefit_callee"} {
		if _, ok := m[key]; !ok {
			t.Errorf("color_assign line missing %q: %s", key, lines[1])
		}
	}
	if m["kind"] != "color_assign" || m["benefit_callee"] != -2.0 {
		t.Fatalf("unexpected color_assign payload: %s", lines[1])
	}
	if err := json.Unmarshal([]byte(lines[0]), &m); err != nil {
		t.Fatalf("phase_end line not valid JSON: %v", err)
	}
	if m["dur_us"] != 1000.0 {
		t.Fatalf("dur_us = %v, want 1000", m["dur_us"])
	}
}

func TestNarrativeGroupsByFunctionAndSkipsPhases(t *testing.T) {
	var buf bytes.Buffer
	n := NewNarrative(&buf)
	n.Emit(Event{Kind: KindPhaseStart, Fn: "f", Phase: PhaseColor})
	n.Emit(Event{Kind: KindSimplifyPop, Fn: "f", Reg: 1, Key: 3, Reason: ReasonUnconstrained})
	n.Emit(Event{Kind: KindColorAssign, Fn: "f", Reg: 1, Color: 0,
		Wanted: KindCaller, Chosen: KindCaller, Cost: 12, BenefitCaller: 12, BenefitCallee: -8})
	n.Emit(Event{Kind: KindSpillChoice, Fn: "g", Reg: 2, Reason: ReasonNegativeBenefit, Key: -1})
	out := buf.String()
	for _, want := range []string{"f:\n", "g:\n",
		"simplify v1: key=3 (unconstrained)",
		"assign v1 -> caller r0 (wanted caller; spill_cost=12 benefit_caller=12 benefit_callee=-8)",
		"spill v2 -> memory: negative-benefit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("narrative missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, PhaseColor) {
		t.Errorf("narrative should omit phase events:\n%s", out)
	}
}

func TestDisabledTracerEmitsNothingAndAllocatesNothing(t *testing.T) {
	var tr Tracer = Disabled{}
	if tr.Enabled() {
		t.Fatal("Disabled reports enabled")
	}
	// The guarded emission pattern used throughout the allocator: with
	// a disabled (or nil) tracer, no event is constructed and nothing
	// is allocated.
	allocs := testing.AllocsPerRun(1000, func() {
		if tr != nil && tr.Enabled() {
			tr.Emit(Event{Kind: KindColorAssign, Fn: "f", Reg: 1, Cost: 2})
		}
	})
	if allocs != 0 {
		t.Fatalf("guarded emission allocated %v times per run, want 0", allocs)
	}
}
