// Golden and end-to-end tests of the event stream. They live in
// package obs_test so they can drive the public callcost API (package
// obs itself sits below the allocator and cannot import it).
package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/obs/obstest"
)

var update = flag.Bool("update", false, "rewrite golden files")

// allocateQuickstart register-allocates testdata/quickstart.mc with the
// improved allocator on the default configuration, feeding tr. Static
// frequencies keep the run (and therefore the event stream) fully
// deterministic.
func allocateQuickstart(t *testing.T, tr callcost.Tracer) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", "quickstart.mc"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := callcost.Compile(string(src))
	if err != nil {
		t.Fatal(err)
	}
	opts := callcost.WithTracer(callcost.DefaultAllocOptions(), tr)
	if _, err := prog.AllocateWithOptions(callcost.ImprovedAll(),
		callcost.NewConfig(8, 6, 4, 4), prog.StaticFreq(), opts); err != nil {
		t.Fatal(err)
	}
}

// TestJSONLGoldenQuickstart pins the full decision stream of the
// quickstart program — including the per-run seq numbers, which are
// deterministic on the sequential tracing path. Regenerate with:
//
//	go test ./internal/obs -run Golden -update
func TestJSONLGoldenQuickstart(t *testing.T) {
	var buf bytes.Buffer
	allocateQuickstart(t, callcost.NewJSONLSink(&buf))
	got := obstest.Scrub(t, buf.Bytes())

	// The acceptance kinds must be present regardless of golden drift.
	for _, kind := range []string{"phase_start", "phase_end", "simplify_pop", "color_assign"} {
		if !strings.Contains(got, fmt.Sprintf("%q:%q", "kind", kind)) {
			t.Errorf("stream has no %s event", kind)
		}
	}

	obstest.CompareGolden(t, filepath.Join("testdata", "quickstart.jsonl.golden"), got, *update)
}

// TestJSONLGoldenSecondChance pins the linear-scan decision stream on
// a program dense enough to block the register bank: the golden holds
// hole_assign events (ranges seated inside lifetime holes of occupied
// registers) and second_chance events (residents displaced by an
// eviction that re-seat elsewhere instead of spilling). Regenerate
// with:
//
//	go test ./internal/obs -run Golden -update
func TestJSONLGoldenSecondChance(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "secondchance.mc"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := callcost.Compile(string(src))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	opts := callcost.WithTracer(callcost.DefaultAllocOptions(), callcost.NewJSONLSink(&buf))
	if _, err := prog.AllocateWithOptions(callcost.LinearScan(),
		callcost.NewConfig(6, 4, 0, 0), prog.StaticFreq(), opts); err != nil {
		t.Fatal(err)
	}
	got := obstest.Scrub(t, buf.Bytes())

	// Both binpacking kinds must be present regardless of golden drift:
	// a fixture that stops exercising them is no fixture at all.
	for _, kind := range []string{"hole_assign", "second_chance"} {
		if !strings.Contains(got, fmt.Sprintf("%q:%q", "kind", kind)) {
			t.Errorf("stream has no %s event", kind)
		}
	}

	obstest.CompareGolden(t, filepath.Join("testdata", "secondchance.jsonl.golden"), got, *update)
}

// TestNarrativeAgreesWithJSONL feeds one run to both sinks and checks
// that every color_assign and spill_choice event's numbers reappear
// verbatim in the narrative — the acceptance criterion that -explain
// and -trace can never disagree.
func TestNarrativeAgreesWithJSONL(t *testing.T) {
	var jsonl, story bytes.Buffer
	allocateQuickstart(t, callcost.MultiSink(
		callcost.NewJSONLSink(&jsonl), callcost.NewNarrativeSink(&story)))
	narrative := story.String()

	assigns := 0
	for _, line := range strings.Split(strings.TrimSpace(jsonl.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatal(err)
		}
		switch m["kind"] {
		case "color_assign":
			assigns++
			want := fmt.Sprintf("assign v%d -> %s r%d (wanted %s; spill_cost=%g benefit_caller=%g benefit_callee=%g)",
				int(m["reg"].(float64)), m["chosen"], int(m["color"].(float64)), m["wanted"],
				m["spill_cost"].(float64), m["benefit_caller"].(float64), m["benefit_callee"].(float64))
			if !strings.Contains(narrative, want) {
				t.Errorf("narrative missing %q", want)
			}
		case "simplify_pop":
			want := fmt.Sprintf("simplify v%d: key=%g (%s)",
				int(m["reg"].(float64)), m["key"].(float64), m["reason"])
			if !strings.Contains(narrative, want) {
				t.Errorf("narrative missing %q", want)
			}
		}
	}
	if assigns == 0 {
		t.Fatal("no color_assign events in the stream")
	}
}

// TestStatsSeesFullPipeline checks the aggregation sink against the
// same run: every standard phase ran, and the decision counters are
// consistent with what a coloring of three functions must produce.
func TestStatsSeesFullPipeline(t *testing.T) {
	stats := callcost.NewStatsSink()
	allocateQuickstart(t, stats)
	// At (8,6,4,4) the quickstart never spills, so spill-rewrite may be
	// absent; the five analysis/coloring phases must all have run, in
	// pipeline order.
	var names []string
	for _, ps := range stats.Phases() {
		if ps.Count == 0 || ps.Total <= 0 {
			t.Errorf("phase %s ran %d times with total %v", ps.Phase, ps.Count, ps.Total)
		}
		names = append(names, ps.Phase)
	}
	want := []string{"liveness", "build-graph", "coalesce", "liverange", "color"}
	if got := strings.Join(names, ","); got != strings.Join(want, ",") &&
		got != strings.Join(append(want, "spill-rewrite"), ",") {
		t.Fatalf("phases = %v, want %v (optionally + spill-rewrite)", names, want)
	}
	funcs := stats.Funcs()
	if len(funcs) != 3 {
		t.Fatalf("got %d functions, want 3", len(funcs))
	}
	for _, fs := range funcs {
		if fs.Rounds < 1 {
			t.Errorf("%s: no rounds observed", fs.Fn)
		}
	}
}

// TestNoTracerAddsNoAllocations is the zero-overhead guarantee: a full
// allocation with a nil tracer allocates exactly as much as one with a
// disabled tracer, i.e. the guarded emission sites construct nothing.
func TestNoTracerAddsNoAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not deterministic under -race: sync.Pool randomizes reuse")
	}
	src, err := os.ReadFile(filepath.Join("testdata", "quickstart.mc"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := callcost.Compile(string(src))
	if err != nil {
		t.Fatal(err)
	}
	pf := prog.StaticFreq()
	cfg := callcost.NewConfig(8, 6, 4, 4)
	measure := func(opts callcost.AllocOptions) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, err := prog.AllocateWithOptions(callcost.ImprovedAll(), cfg, pf, opts); err != nil {
				t.Fatal(err)
			}
		})
	}
	bare := measure(callcost.DefaultAllocOptions())
	disabled := measure(callcost.WithTracer(callcost.DefaultAllocOptions(), callcost.DisabledSink()))
	if bare != disabled {
		t.Errorf("nil tracer allocates %v per run, disabled tracer %v — the guarded path must cost the same",
			bare, disabled)
	}
}
