//go:build race

package obs_test

// raceEnabled reports whether this binary was built with -race.
// Allocation-count assertions are skipped under the race detector:
// sync.Pool deliberately randomizes reuse there, so AllocsPerRun is
// not deterministic.
const raceEnabled = true
