package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// JSONL writes each event as one JSON object per line. Field sets are
// per-kind (a phase boundary has no benefit numbers; a color choice
// has no duration), and keys are emitted in sorted order, so the
// stream is deterministic except for the dur_us timing fields.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONL returns a sink writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Enabled implements Tracer.
func (s *JSONL) Enabled() bool { return true }

// Emit implements Tracer.
func (s *JSONL) Emit(ev Event) {
	m := ev.jsonMap()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enc.Encode(m) //nolint:errcheck // tracing is best-effort
}

// jsonMap renders the kind-specific field set of ev. encoding/json
// marshals map keys in sorted order, which keeps the line layout
// stable for golden tests.
func (ev Event) jsonMap() map[string]any {
	m := map[string]any{
		"kind": ev.Kind.String(),
		"seq":  ev.Seq,
		"fn":   ev.Fn,
	}
	bank := func() {
		m["class"] = ev.Class.String()
		m["round"] = ev.Round
	}
	benefits := func() {
		m["spill_cost"] = ev.Cost
		m["benefit_caller"] = ev.BenefitCaller
		m["benefit_callee"] = ev.BenefitCallee
	}
	switch ev.Kind {
	case KindPhaseStart:
		m["phase"] = ev.Phase
		m["round"] = ev.Round
	case KindPhaseEnd:
		m["phase"] = ev.Phase
		m["round"] = ev.Round
		m["dur_us"] = float64(ev.Dur.Nanoseconds()) / 1e3
	case KindSimplifyPop:
		bank()
		m["reg"] = int(ev.Reg)
		m["key"] = ev.Key
		m["reason"] = ev.Reason
	case KindSpillChoice:
		bank()
		m["reg"] = int(ev.Reg)
		m["reason"] = ev.Reason
		m["key"] = ev.Key
		benefits()
	case KindColorAssign:
		bank()
		m["reg"] = int(ev.Reg)
		m["color"] = int(ev.Color)
		m["wanted"] = ev.Wanted
		m["chosen"] = ev.Chosen
		benefits()
	case KindCoalesceMerge:
		bank()
		m["reg"] = int(ev.Reg)
		m["with"] = int(ev.With)
	case KindRewriteInsert:
		bank()
		m["reg"] = int(ev.Reg)
		m["slot"] = ev.Slot
		m["members"] = ev.N
	case KindPrefDecide:
		bank()
		m["reg"] = int(ev.Reg)
		m["key"] = ev.Key
		m["reason"] = ev.Reason
	case KindPrepCache:
		m["round"] = ev.Round
	case KindLiveness:
		m["round"] = ev.Round
		m["mode"] = ev.Reason
		m["visited"] = ev.N
		m["total"] = ev.Total
	case KindEscalate:
		m["round"] = ev.Round
		m["reason"] = ev.Reason
		m["spills"] = ev.N
	case KindHoleAssign, KindSecondChance:
		bank()
		m["reg"] = int(ev.Reg)
		m["color"] = int(ev.Color)
		m["spill_cost"] = ev.Cost
		m["segments"] = ev.N
	}
	return m
}
