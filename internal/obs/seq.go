package obs

import "sync/atomic"

// Sequencer wraps a sink and stamps every event with a monotonic
// per-run sequence number (Event.Seq, starting at 1) at emit time.
//
// The driver installs one Sequencer per program allocation, shared by
// every function of the run. Under sequential allocation the stamped
// stream is identical run to run; under parallel allocation
// (Options.TraceParallel) events from different functions interleave
// nondeterministically in the output, but Seq records the real emission
// order, so a JSONL stream can be sorted into the stable total order
// the sink's serialization alone no longer guarantees.
type Sequencer struct {
	inner Tracer
	n     atomic.Uint64
}

// NewSequencer returns tr wrapped with sequence stamping. A nil or
// disabled tracer is returned unchanged (nothing to stamp). An already
// wrapped tracer is not re-wrapped.
func NewSequencer(tr Tracer) Tracer {
	if tr == nil || !tr.Enabled() {
		return tr
	}
	if _, ok := tr.(*Sequencer); ok {
		return tr
	}
	return &Sequencer{inner: tr}
}

// Enabled implements Tracer.
func (s *Sequencer) Enabled() bool { return s.inner.Enabled() }

// Emit implements Tracer: assign the next sequence number, then
// forward.
func (s *Sequencer) Emit(ev Event) {
	ev.Seq = s.n.Add(1)
	s.inner.Emit(ev)
}
