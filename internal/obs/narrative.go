package obs

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/ir"
)

// Narrative renders the event stream as a human-readable allocation
// story: one indented line per decision, grouped under a heading per
// function. Benefit numbers are printed with %g, the same rendering
// encoding/json uses for float64, so a narrative line and the JSONL
// event for the same decision always show identical numbers.
//
// Phase boundaries are deliberately omitted — the narrative is the
// story of *decisions*; timing lives in the Stats sink.
type Narrative struct {
	mu     sync.Mutex
	w      io.Writer
	lastFn string
}

// NewNarrative returns a sink writing the story to w.
func NewNarrative(w io.Writer) *Narrative {
	return &Narrative{w: w}
}

// Enabled implements Tracer.
func (s *Narrative) Enabled() bool { return true }

// Emit implements Tracer.
func (s *Narrative) Emit(ev Event) {
	// Phase boundaries and analysis introspection (prep-cache hits,
	// liveness solver statistics) are omitted: the narrative is the
	// story of allocation decisions.
	if ev.Kind == KindPhaseStart || ev.Kind == KindPhaseEnd || ev.Kind == KindLiveness {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ev.Fn != s.lastFn {
		fmt.Fprintf(s.w, "%s:\n", ev.Fn)
		s.lastFn = ev.Fn
	}
	pre := fmt.Sprintf("  r%d [%s]", ev.Round, ev.Class)
	reg := func(r ir.Reg) string { return fmt.Sprintf("v%d", int(r)) }
	switch ev.Kind {
	case KindSimplifyPop:
		fmt.Fprintf(s.w, "%s simplify %s: key=%g (%s)\n", pre, reg(ev.Reg), ev.Key, ev.Reason)
	case KindSpillChoice:
		if ev.Reason == ReasonUnlockCallee {
			fmt.Fprintf(s.w, "%s unlock callee-save r%d: save/restore %g beats cheapest spill\n",
				pre, int(ev.Color), ev.Key)
			return
		}
		fmt.Fprintf(s.w, "%s spill %s -> memory: %s key=%g (spill_cost=%g benefit_caller=%g benefit_callee=%g)\n",
			pre, reg(ev.Reg), ev.Reason, ev.Key, ev.Cost, ev.BenefitCaller, ev.BenefitCallee)
	case KindColorAssign:
		fmt.Fprintf(s.w, "%s assign %s -> %s r%d (wanted %s; spill_cost=%g benefit_caller=%g benefit_callee=%g)\n",
			pre, reg(ev.Reg), ev.Chosen, int(ev.Color), ev.Wanted, ev.Cost, ev.BenefitCaller, ev.BenefitCallee)
	case KindCoalesceMerge:
		fmt.Fprintf(s.w, "%s coalesce %s <- %s\n", pre, reg(ev.Reg), reg(ev.With))
	case KindRewriteInsert:
		fmt.Fprintf(s.w, "%s rewrite %s to slot %s (%d member regs)\n", pre, reg(ev.Reg), ev.Slot, ev.N)
	case KindPrefDecide:
		fmt.Fprintf(s.w, "%s prefer-caller %s: callee-save oversubscribed at a call, key=%g (%s)\n",
			pre, reg(ev.Reg), ev.Key, ev.Reason)
	case KindEscalate:
		fmt.Fprintf(s.w, "  r%d escalate to coloring: %s (%d scan spills)\n", ev.Round, ev.Reason, ev.N)
	case KindHoleAssign:
		fmt.Fprintf(s.w, "%s hole-assign %s -> occupied r%d (%d segments; spill_cost=%g)\n",
			pre, reg(ev.Reg), int(ev.Color), ev.N, ev.Cost)
	case KindSecondChance:
		fmt.Fprintf(s.w, "%s second-chance %s -> r%d instead of memory (%d segments; spill_cost=%g)\n",
			pre, reg(ev.Reg), int(ev.Color), ev.N, ev.Cost)
	}
}
