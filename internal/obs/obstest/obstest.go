// Package obstest holds the golden-file helpers shared by every test
// that pins a JSONL event stream: canonicalization (drop the
// nondeterministic wall-time fields, re-marshal with sorted keys) and
// the update-or-diff golden comparison itself.
package obstest

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// Scrub canonicalizes a JSONL stream for golden comparison: every line
// is parsed, the named keys are dropped, and the object is re-marshaled
// with sorted keys. With no dropKeys it drops "dur_us" — the wall-time
// field, the only nondeterministic one in the allocator's stream.
func Scrub(t testing.TB, raw []byte, dropKeys ...string) string {
	t.Helper()
	if len(dropKeys) == 0 {
		dropKeys = []string{"dur_us"}
	}
	var out strings.Builder
	for i, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		for _, k := range dropKeys {
			delete(m, k)
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(b)
		out.WriteByte('\n')
	}
	return out.String()
}

// CompareGolden diffs got against the golden file line by line, with
// the first divergent line in the failure message. When update is true
// it rewrites the golden instead and passes.
func CompareGolden(t testing.TB, golden, got string, update bool) {
	t.Helper()
	if update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	raw, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	want := string(raw)
	if got == want {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := range gotLines {
		if i >= len(wantLines) || gotLines[i] != wantLines[i] {
			w := ""
			if i < len(wantLines) {
				w = wantLines[i]
			}
			t.Fatalf("stream diverges from golden at line %d:\n got %s\nwant %s\n(run with -update to regenerate)",
				i+1, gotLines[i], w)
		}
	}
	t.Fatalf("stream shorter than golden: %d vs %d lines", len(gotLines), len(wantLines))
}
