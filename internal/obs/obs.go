// Package obs is the allocator's observability substrate: a typed
// event stream that makes every decision of the register-allocation
// pipeline — the simplify order, spill-by-choice verdicts, which
// benefit won a color choice, coalescing merges, spill-code rewrites —
// visible to pluggable sinks, together with per-phase wall-time.
//
// The paper's whole argument (Lueh & Gross, PLDI 1997) rests on *why*
// each live range landed in memory, a caller-save, or a callee-save
// register; this package is where that story is recorded. Three sinks
// ship with the package: a JSONL event log (JSONL), a human-readable
// allocation narrative (Narrative), and an in-memory aggregator
// (Stats). Multi fans one event stream out to several sinks.
//
// Tracing is strictly opt-in and free when off: every emission site in
// the allocator is guarded by Tracer.Enabled() (or a nil tracer), so a
// run without a tracer constructs no events and performs no extra
// allocations. Events are plain value structs; emitting one does not
// allocate either — sinks pay only when tracing is on.
package obs

import (
	"time"

	"repro/internal/ir"
	"repro/internal/machine"
)

// Kind discriminates the event types of the allocator pipeline.
type Kind uint8

const (
	// KindPhaseStart marks entry into a pipeline phase of one round.
	KindPhaseStart Kind = iota
	// KindPhaseEnd marks phase exit; Dur carries the wall time.
	KindPhaseEnd
	// KindSimplifyPop records one node leaving the graph during
	// simplification (and being pushed onto the color stack C): Reg,
	// the ordering Key, and the Reason it was removable.
	KindSimplifyPop
	// KindSpillChoice records a live range sent to the spill pool S,
	// with the evidence: the heuristic Key and the range's spill cost
	// and benefit functions.
	KindSpillChoice
	// KindColorAssign records a live range receiving a physical
	// register: the color, the kind wanted and the kind chosen, and the
	// benefit_caller/benefit_callee numbers behind the choice.
	KindColorAssign
	// KindCoalesceMerge records one copy-coalescing merge: With's live
	// range was merged into Reg's.
	KindCoalesceMerge
	// KindRewriteInsert records a spilled live range handed to
	// spill-code insertion: Reg, its stack Slot, and the number of
	// member registers rewritten.
	KindRewriteInsert
	// KindPrefDecide records the preference-decision pass (§6) forcing
	// a call-crossing live range from callee-save to caller-save.
	KindPrefDecide
	// KindPrepCache records that round 0 was satisfied from the
	// function's prepared-artifact cache: CFG, liveness, and the base
	// interference graphs were reused instead of rebuilt. Emitted only
	// on a hit, so a single cold allocation's event stream is unchanged.
	KindPrepCache
	// KindLiveness records one dataflow solve: Reason carries the mode
	// ("full" from-scratch solve vs. "update" incremental re-solve from
	// the spill-rewritten blocks), N the number of block visits the
	// sparse worklist performed, and Total the function's block count.
	// Not emitted when liveness was served from an already-built shared
	// cache without solving.
	KindLiveness
	// KindEscalate records the hybrid tier abandoning the linear-scan
	// result of one function and escalating to graph coloring: Reason
	// carries why ("spill" or "overhead"), N the number of registers the
	// scan wanted to spill.
	KindEscalate
	// KindHoleAssign records the linear scan binpacking a live range
	// into a lifetime hole of an already-occupied physical register at
	// first chance: every resident's segment set is disjoint from the
	// range's. Color is the shared register, N the range's segment
	// count.
	KindHoleAssign
	// KindSecondChance records a range that lost its register (evicted,
	// or the cheapest loser when its bank blocked) being re-seated by
	// the second-chance pass against the bank's committed assignment
	// instead of spilling. Color is the register found, N the range's
	// segment count.
	KindSecondChance

	// NumKinds is the number of event kinds.
	NumKinds
)

// String names the kind as it appears in the JSONL stream.
func (k Kind) String() string {
	switch k {
	case KindPhaseStart:
		return "phase_start"
	case KindPhaseEnd:
		return "phase_end"
	case KindSimplifyPop:
		return "simplify_pop"
	case KindSpillChoice:
		return "spill_choice"
	case KindColorAssign:
		return "color_assign"
	case KindCoalesceMerge:
		return "coalesce_merge"
	case KindRewriteInsert:
		return "rewrite_insert"
	case KindPrefDecide:
		return "pref_decide"
	case KindPrepCache:
		return "prep_cache"
	case KindLiveness:
		return "liveness"
	case KindEscalate:
		return "escalate"
	case KindHoleAssign:
		return "hole_assign"
	case KindSecondChance:
		return "second_chance"
	}
	return "unknown"
}

// Pipeline phase names, matching the paper's Figure 1 boxes.
const (
	PhaseLiveness = "liveness"      // CFG construction + dataflow
	PhaseBuild    = "build-graph"   // interference build / reconstruction
	PhaseCoalesce = "coalesce"      // live-range coalescing
	PhaseRanges   = "liverange"     // cost and benefit analysis
	PhaseColor    = "color"         // color ordering + assignment
	PhaseRewrite  = "spill-rewrite" // spill-code insertion
	PhaseScan     = "scan"          // graph-free linear scan (package linscan)
)

// Decision reasons carried by SimplifyPop and SpillChoice events. All
// are constants so emission never builds strings.
const (
	// ReasonUnconstrained: the node's degree dropped below N.
	ReasonUnconstrained = "unconstrained"
	// ReasonOptimistic: simplification blocked but the node was pushed
	// optimistically (Briggs) instead of spilled.
	ReasonOptimistic = "optimistic-push"
	// ReasonUnspillable: only unspillable temporaries remained; the
	// lowest-degree one was pushed.
	ReasonUnspillable = "unspillable"
	// ReasonBlocked: simplification blocked and the spill heuristic
	// (cost/degree family) chose this range.
	ReasonBlocked = "blocked"
	// ReasonNoColor: an optimistically pushed node found no free color
	// at assignment.
	ReasonNoColor = "no-free-color"
	// ReasonNegativeBenefit: spill by choice (§4) — keeping the range
	// in the only available kind costs more than memory.
	ReasonNegativeBenefit = "negative-benefit"
	// ReasonSharedCallee: the shared callee-cost post-pass (§4) found a
	// callee-save register whose users' combined spill cost is below
	// the entry/exit save/restore; all users were spilled.
	ReasonSharedCallee = "shared-callee-cost"
	// ReasonNegativePriority: priority-based coloring leaves ranges
	// with negative priority in memory (§9).
	ReasonNegativePriority = "negative-priority"
	// ReasonForcedCaller: the preference decision (§6) re-annotated the
	// range to prefer caller-save.
	ReasonForcedCaller = "forced-caller"
	// ReasonUnlockCallee: the CBH model spilled a callee-save-register
	// live range, unlocking its register (§10).
	ReasonUnlockCallee = "unlock-callee"
)

// Register-kind labels carried by ColorAssign events.
const (
	KindCaller = "caller"
	KindCallee = "callee"
)

// Event is one allocator decision or phase boundary. It is a single
// flat value struct — rather than one type per kind — so that
// constructing and emitting an event never allocates; which fields are
// meaningful depends on Kind (see the Kind constants).
type Event struct {
	Kind  Kind
	Seq   uint64   // monotonic per-run emission number (see Sequencer)
	Fn    string   // enclosing function
	Phase string   // phase events: pipeline phase name
	Round int      // allocation round (0-based)
	Class ir.Class // register bank of the decision

	Dur time.Duration // KindPhaseEnd: wall time of the phase

	Reg   ir.Reg          // subject live-range representative
	With  ir.Reg          // KindCoalesceMerge: the merged partner
	Color machine.PhysReg // KindColorAssign: the register assigned

	Reason string // decision reason (Reason* constants)
	Wanted string // KindColorAssign: preferred kind (caller/callee)
	Chosen string // KindColorAssign: kind actually taken

	Key           float64 // ordering/heuristic key behind the decision
	Cost          float64 // the range's spill cost
	BenefitCaller float64 // spill_cost − caller_cost (§4)
	BenefitCallee float64 // spill_cost − callee_cost (§4)

	Slot  string // KindRewriteInsert: stack-slot name
	N     int    // small count (stack depth, members rewritten, blocks visited, …)
	Total int    // KindLiveness: total block count behind N
}

// Tracer receives the allocator's event stream.
//
// Implementations must be safe for concurrent use: the experiment
// harness allocates many programs in parallel against one sink.
type Tracer interface {
	// Enabled reports whether events should be constructed at all.
	// Every emission site in the allocator guards on this (or on a nil
	// Tracer), so a disabled tracer costs nothing — not even event
	// construction.
	Enabled() bool
	// Emit records one event.
	Emit(ev Event)
}

// Disabled is a Tracer that is permanently off. It exists so tests can
// verify that the guarded emission path adds no allocations; a nil
// Tracer behaves identically.
type Disabled struct{}

// Enabled implements Tracer.
func (Disabled) Enabled() bool { return false }

// Emit implements Tracer.
func (Disabled) Emit(Event) {}

// Multi fans events out to several sinks; it is enabled when any
// member is.
type Multi []Tracer

// NewMulti returns a tracer feeding every non-nil sink in ts. When ts
// has exactly one usable sink it is returned directly (no fan-out
// indirection).
func NewMulti(ts ...Tracer) Tracer {
	var m Multi
	for _, t := range ts {
		if t != nil {
			m = append(m, t)
		}
	}
	if len(m) == 1 {
		return m[0]
	}
	return m
}

// Enabled implements Tracer.
func (m Multi) Enabled() bool {
	for _, t := range m {
		if t.Enabled() {
			return true
		}
	}
	return false
}

// Emit implements Tracer.
func (m Multi) Emit(ev Event) {
	for _, t := range m {
		if t.Enabled() {
			t.Emit(ev)
		}
	}
}
