package obs

import (
	"sort"
	"sync"
	"time"
)

// PhaseStat aggregates one pipeline phase: how often it ran and its
// total wall time (from PhaseEnd events).
type PhaseStat struct {
	Phase string
	Count int
	Total time.Duration
}

// FuncStats aggregates one function's allocation.
type FuncStats struct {
	Fn     string
	Rounds int // build→color→spill iterations observed
	Phases map[string]*PhaseStat
	Counts [NumKinds]int
}

// Stats is the in-memory aggregation sink: per-function and
// program-wide phase timings plus decision counters. It is safe for
// concurrent emission.
type Stats struct {
	mu     sync.Mutex
	funcs  map[string]*FuncStats
	order  []string // function discovery order
	phases map[string]*PhaseStat
	counts [NumKinds]int
}

// NewStats returns an empty aggregator.
func NewStats() *Stats {
	return &Stats{
		funcs:  make(map[string]*FuncStats),
		phases: make(map[string]*PhaseStat),
	}
}

// Enabled implements Tracer.
func (s *Stats) Enabled() bool { return true }

// Emit implements Tracer.
func (s *Stats) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fs := s.funcs[ev.Fn]
	if fs == nil {
		fs = &FuncStats{Fn: ev.Fn, Phases: make(map[string]*PhaseStat)}
		s.funcs[ev.Fn] = fs
		s.order = append(s.order, ev.Fn)
	}
	fs.Counts[ev.Kind]++
	s.counts[ev.Kind]++
	if ev.Round+1 > fs.Rounds {
		fs.Rounds = ev.Round + 1
	}
	if ev.Kind != KindPhaseEnd {
		return
	}
	for _, m := range []map[string]*PhaseStat{fs.Phases, s.phases} {
		ps := m[ev.Phase]
		if ps == nil {
			ps = &PhaseStat{Phase: ev.Phase}
			m[ev.Phase] = ps
		}
		ps.Count++
		ps.Total += ev.Dur
	}
}

// Reset clears every aggregate, so one Stats can be reused between
// experiments.
func (s *Stats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.funcs = make(map[string]*FuncStats)
	s.order = nil
	s.phases = make(map[string]*PhaseStat)
	s.counts = [NumKinds]int{}
}

// Count returns how many events of kind k were recorded.
func (s *Stats) Count(k Kind) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[k]
}

// TotalEvents returns the number of events recorded.
func (s *Stats) TotalEvents() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.counts {
		n += c
	}
	return n
}

// Phases returns the program-wide phase aggregates in pipeline order
// (phases not of the standard pipeline follow, alphabetically).
func (s *Stats) Phases() []PhaseStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	return phaseLines(s.phases)
}

// PhaseTotal returns the summed wall time of every phase.
func (s *Stats) PhaseTotal() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t time.Duration
	for _, ps := range s.phases {
		t += ps.Total
	}
	return t
}

// Funcs returns a snapshot of the per-function aggregates in discovery
// order.
func (s *Stats) Funcs() []FuncStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]FuncStats, 0, len(s.order))
	for _, name := range s.order {
		fs := s.funcs[name]
		cp := FuncStats{Fn: fs.Fn, Rounds: fs.Rounds, Counts: fs.Counts,
			Phases: make(map[string]*PhaseStat, len(fs.Phases))}
		for k, v := range fs.Phases {
			c := *v
			cp.Phases[k] = &c
		}
		out = append(out, cp)
	}
	return out
}

// pipelineOrder positions the standard phases as the pipeline runs
// them.
var pipelineOrder = map[string]int{
	PhaseLiveness: 0,
	PhaseBuild:    1,
	PhaseCoalesce: 2,
	PhaseRanges:   3,
	PhaseColor:    4,
	PhaseRewrite:  5,
}

func phaseLines(m map[string]*PhaseStat) []PhaseStat {
	out := make([]PhaseStat, 0, len(m))
	for _, ps := range m {
		out = append(out, *ps)
	}
	sort.Slice(out, func(i, j int) bool {
		oi, iok := pipelineOrder[out[i].Phase]
		oj, jok := pipelineOrder[out[j].Phase]
		switch {
		case iok && jok:
			return oi < oj
		case iok != jok:
			return iok
		default:
			return out[i].Phase < out[j].Phase
		}
	})
	return out
}
