//go:build !race

package obs_test

// raceEnabled reports whether this binary was built with -race.
const raceEnabled = false
