// Package compile bundles the MC front end into one call: parse, type
// check, and lower to IR. Higher layers (the allocation pipeline, the
// benchmark suite, tests) all enter through here.
package compile

import (
	"repro/internal/ir"
	"repro/internal/irbuild"
	"repro/internal/parser"
	"repro/internal/types"
)

// Source compiles MC source text to IR.
func Source(src string) (*ir.Program, error) {
	return File("", src)
}

// File is Source with a file name attached to diagnostics.
func File(filename, src string) (*ir.Program, error) {
	prog, err := parser.ParseFile(filename, src)
	if err != nil {
		return nil, err
	}
	info, err := types.Check(prog)
	if err != nil {
		return nil, err
	}
	return irbuild.Build(prog, info)
}
