package compile_test

import (
	"strings"
	"testing"

	"repro/internal/compile"
)

func TestSourceSuccess(t *testing.T) {
	prog, err := compile.Source(`int main() { return 42; }`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.FuncByName["main"] == nil {
		t.Fatal("main missing")
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrorPropagates(t *testing.T) {
	_, err := compile.Source(`int main( { return 0; }`)
	if err == nil {
		t.Fatal("expected parse error")
	}
}

func TestTypeErrorPropagates(t *testing.T) {
	_, err := compile.Source(`int main() { return nope; }`)
	if err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Fatalf("err = %v", err)
	}
}

func TestFileAttachesName(t *testing.T) {
	_, err := compile.File("box.mc", `int main( { return 0; }`)
	if err == nil || !strings.Contains(err.Error(), "box.mc:") {
		t.Fatalf("err = %v", err)
	}
}
