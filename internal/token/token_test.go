package token

import "testing"

func TestLookup(t *testing.T) {
	if Lookup("while") != WHILE {
		t.Error("while should be a keyword")
	}
	if Lookup("whilex") != IDENT {
		t.Error("whilex should be an identifier")
	}
	if Lookup("int") != INT || Lookup("float") != FLOAT || Lookup("void") != VOID {
		t.Error("type keywords broken")
	}
}

func TestClassification(t *testing.T) {
	for k := ILLEGAL; k <= SEMI; k++ {
		if k.IsKeyword() && k.IsOperator() {
			t.Errorf("%v is both keyword and operator", k)
		}
	}
	if !IF.IsKeyword() || PLUS.IsKeyword() {
		t.Error("IsKeyword misclassifies")
	}
	if !PLUS.IsOperator() || IF.IsOperator() {
		t.Error("IsOperator misclassifies")
	}
}

func TestString(t *testing.T) {
	cases := map[Kind]string{
		PLUS: "+", EQ: "==", NE: "!=", AND: "&&", RETURN: "return",
		IDENT: "IDENT", EOF: "EOF",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestPrecedence(t *testing.T) {
	// || < && < ==/!= < relational < additive < multiplicative
	order := [][]Kind{
		{OR}, {AND}, {EQ, NE}, {LT, LE, GT, GE}, {PLUS, MINUS}, {STAR, SLASH, PERCENT},
	}
	prev := 0
	for _, level := range order {
		p := level[0].Precedence()
		if p <= prev {
			t.Errorf("%v precedence %d not above previous %d", level[0], p, prev)
		}
		for _, k := range level {
			if k.Precedence() != p {
				t.Errorf("%v and %v differ in precedence", level[0], k)
			}
		}
		prev = p
	}
	if NOT.Precedence() != 0 || IDENT.Precedence() != 0 {
		t.Error("non-binary kinds should have precedence 0")
	}
}
