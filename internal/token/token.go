// Package token defines the lexical tokens of the MC language, the small
// C-like language compiled by this repository's register-allocation
// pipeline.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keyword kinds occupy the range (keywordBeg, keywordEnd)
// and operator kinds the range (operatorBeg, operatorEnd).
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT    // foo
	INTLIT   // 123
	FLOATLIT // 1.5

	keywordBeg
	INT      // int
	FLOAT    // float
	VOID     // void
	IF       // if
	ELSE     // else
	WHILE    // while
	FOR      // for
	DO       // do
	RETURN   // return
	BREAK    // break
	CONTINUE // continue
	keywordEnd

	operatorBeg
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %

	ASSIGN // =

	EQ // ==
	NE // !=
	LT // <
	LE // <=
	GT // >
	GE // >=

	AND // &&
	OR  // ||
	NOT // !

	LPAREN // (
	RPAREN // )
	LBRACE // {
	RBRACE // }
	LBRACK // [
	RBRACK // ]
	COMMA  // ,
	SEMI   // ;
	operatorEnd
)

var names = map[Kind]string{
	ILLEGAL:  "ILLEGAL",
	EOF:      "EOF",
	IDENT:    "IDENT",
	INTLIT:   "INTLIT",
	FLOATLIT: "FLOATLIT",
	INT:      "int",
	FLOAT:    "float",
	VOID:     "void",
	IF:       "if",
	ELSE:     "else",
	WHILE:    "while",
	FOR:      "for",
	DO:       "do",
	RETURN:   "return",
	BREAK:    "break",
	CONTINUE: "continue",
	PLUS:     "+",
	MINUS:    "-",
	STAR:     "*",
	SLASH:    "/",
	PERCENT:  "%",
	ASSIGN:   "=",
	EQ:       "==",
	NE:       "!=",
	LT:       "<",
	LE:       "<=",
	GT:       ">",
	GE:       ">=",
	AND:      "&&",
	OR:       "||",
	NOT:      "!",
	LPAREN:   "(",
	RPAREN:   ")",
	LBRACE:   "{",
	RBRACE:   "}",
	LBRACK:   "[",
	RBRACK:   "]",
	COMMA:    ",",
	SEMI:     ";",
}

// String returns the literal spelling for operators and keywords and the
// class name for the remaining kinds.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsKeyword reports whether k is a reserved word of MC.
func (k Kind) IsKeyword() bool { return keywordBeg < k && k < keywordEnd }

// IsOperator reports whether k is an operator or delimiter.
func (k Kind) IsOperator() bool { return operatorBeg < k && k < operatorEnd }

var keywords = map[string]Kind{}

func init() {
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		keywords[names[k]] = k
	}
}

// Lookup maps an identifier spelling to its keyword kind, or IDENT when
// the spelling is not reserved.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// Precedence levels for binary operators, higher binds tighter. Non-binary
// kinds return 0.
func (k Kind) Precedence() int {
	switch k {
	case OR:
		return 1
	case AND:
		return 2
	case EQ, NE:
		return 3
	case LT, LE, GT, GE:
		return 4
	case PLUS, MINUS:
		return 5
	case STAR, SLASH, PERCENT:
		return 6
	}
	return 0
}
