package rewrite

import (
	"repro/internal/interproc"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/regalloc"
)

// BuildPlanInterproc is BuildPlan under an interprocedural summary
// table: at each call site, a crossing caller-save register is saved
// only when the callee's published clobber summary says the callee may
// actually write it. Callees without a summary (external, same
// recursive component, or a nil table) keep the static behavior —
// every crossing caller-save register is saved — so
// BuildPlanInterproc(fa, nil) is BuildPlan exactly.
func BuildPlanInterproc(fa *regalloc.FuncAlloc, cc *interproc.Table) *FuncPlan {
	plan := BuildPlan(fa)
	if cc == nil {
		return plan
	}
	fn := fa.Fn
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != ir.OpCall {
				continue
			}
			cs := plan.CallSaves[[2]int{b.ID, i}]
			if cs == nil {
				continue
			}
			for c := range cs.Regs {
				kept := cs.Regs[c][:0]
				for _, col := range cs.Regs[c] {
					if cc.Clobbers(in.Callee, ir.Class(c), col) {
						kept = append(kept, col)
					}
				}
				cs.Regs[c] = kept
			}
		}
	}
	return plan
}

// Summarize derives the interprocedural clobber summary of one
// allocated function: the caller-save registers its own code writes —
// the colors of every occurring virtual register, plus parameter
// registers (the caller's argument marshaling writes those) — unioned
// with the published clobber sets of its callees (the full caller-save
// set for a callee without a summary).
//
// local, when non-nil, names the callees whose contribution the caller
// will add separately: the batch driver summarizes the members of a
// recursive component individually with local = component membership,
// then publishes the member-wise union — exact, because every member
// reaches every other, so the component shares one transitive clobber
// set. A nil local treats every callee through cc.
func Summarize(plan *FuncPlan, cc *interproc.Table, local func(callee string) bool) *interproc.Summary {
	fa := plan.Alloc
	fn := fa.Fn
	s := &interproc.Summary{}
	add := func(r ir.Reg) {
		col := fa.Colors[r]
		if col == machine.NoPhysReg {
			return
		}
		c := fn.RegClass(r)
		if fa.Config.IsCallerSave(c, col) {
			s.Clobbered[c].Add(col)
		}
	}
	occurs := occurrence(fn)
	for r := 0; r < fn.NumRegs(); r++ {
		if occurs[r] {
			add(ir.Reg(r))
		}
	}
	for _, p := range fn.Params {
		add(p)
	}
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != ir.OpCall {
				continue
			}
			if local != nil && local(in.Callee) {
				continue
			}
			for c := ir.Class(0); c < ir.NumClasses; c++ {
				s.Clobbered[c] = s.Clobbered[c].Union(cc.Clobbered(in.Callee, c))
			}
		}
	}
	return s
}

// UnionSummaries returns the register-wise union of the given
// summaries — the joint clobber set a recursive component publishes
// for each of its members.
func UnionSummaries(ss ...*interproc.Summary) *interproc.Summary {
	u := &interproc.Summary{}
	for _, s := range ss {
		for c := range u.Clobbered {
			u.Clobbered[c] = u.Clobbered[c].Union(s.Clobbered[c])
		}
	}
	return u
}
