// Package rewrite implements the framework's last phases: spill-code
// insertion and the materialization of calling-convention overhead
// (caller-save save/restore around calls, callee-save save/restore at
// entry/exit) into an executable plan.
//
// Spill code follows Chaitin's spill-everywhere discipline: every use
// of a spilled live range loads from its stack slot into a fresh
// short-lived temporary just before the instruction, and every
// definition stores from a fresh temporary just after. The temporaries
// are marked unspillable; their live ranges span a couple of
// instructions, so they are unconstrained in any realistic register
// file.
package rewrite

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/machine"
	"repro/internal/regalloc"
)

// InsertSpills rewrites fn in place so that the virtual registers in
// spill live in their stack slots. newTemp is called for every
// temporary created, letting the driver mark them unspillable. Spill
// slots are appended to fn.Locals (each distinct slot once).
//
// It returns the IDs of the blocks it modified, in increasing order —
// the dirty seeds of the incremental dataflow update
// (liveness.Rebase). The rewrite never changes the block structure
// (count, IDs, terminator targets), only inserts loads/stores and
// renames occurrences within blocks, which is exactly the contract the
// incremental analyses in pipeline.AnalysisManager rely on.
func InsertSpills(fn *ir.Func, spill map[ir.Reg]*ir.Symbol, newTemp func(ir.Reg)) []int {
	// Register the slots as locals in increasing spilled-register order:
	// map iteration order would randomize the frame layout (and with it
	// the assembly text) between otherwise identical runs.
	regs := make([]ir.Reg, 0, len(spill))
	for r := range spill {
		regs = append(regs, r)
	}
	regalloc.SortRegs(regs)
	added := make(map[*ir.Symbol]bool)
	for _, r := range regs {
		if slot := spill[r]; !added[slot] {
			added[slot] = true
			fn.Locals = append(fn.Locals, slot)
		}
	}

	// Spilled parameters: the incoming value arrives in a register, so
	// the parameter is replaced with an unspillable temporary that is
	// stored to the slot at function entry.
	var entryStores []ir.Instr
	for i, p := range fn.Params {
		slot, ok := spill[p]
		if !ok {
			continue
		}
		t := fn.NewReg(fn.RegClass(p), "")
		newTemp(t)
		fn.Params[i] = t
		entryStores = append(entryStores, ir.Instr{
			Op: ir.OpStore, Dst: ir.NoReg, Sym: slot, Args: []ir.Reg{t},
		})
	}

	// Flat slot lookup: the per-operand probe below is the hottest line
	// of the rewrite, and the map version of it dominated the phase.
	// Temporaries minted during the rewrite index past the end (they are
	// never spilled), hence the bound check in slotOf.
	slots := make([]*ir.Symbol, fn.NumRegs())
	for r, s := range spill {
		slots[r] = s
	}
	slotOf := func(r ir.Reg) *ir.Symbol {
		if int(r) < len(slots) {
			return slots[r]
		}
		return nil
	}

	var dirty []int
	// Per-instruction load dedup, reused across the whole walk: a
	// handful of operands per instruction, so two parallel slices beat
	// a map.
	loadedRegs := make([]ir.Reg, 0, 8)
	loadedTmps := make([]ir.Reg, 0, 8)
	for _, b := range fn.Blocks {
		// First pass: count the loads and stores this block needs, so
		// untouched blocks are skipped without copying and touched ones
		// get an exactly-sized instruction slice.
		entry := b.ID == 0 && len(entryStores) > 0
		extra := 0
		for i := range b.Instrs {
			in := &b.Instrs[i]
		scan:
			for ai, a := range in.Args {
				if slotOf(a) == nil {
					continue
				}
				for _, p := range in.Args[:ai] {
					if p == a {
						continue scan
					}
				}
				extra++
			}
			if in.HasDst() && slotOf(in.Dst) != nil {
				extra++
			}
		}
		if extra == 0 && !entry {
			continue
		}

		out := make([]ir.Instr, 0, len(b.Instrs)+len(entryStores)+extra)
		if entry {
			out = append(out, entryStores...)
		}
		for i := range b.Instrs {
			in := b.Instrs[i]
			// Loads for spilled uses, one per distinct spilled register
			// per instruction.
			loadedRegs = loadedRegs[:0]
			loadedTmps = loadedTmps[:0]
			for ai, a := range in.Args {
				slot := slotOf(a)
				if slot == nil {
					continue
				}
				t := ir.NoReg
				for li, p := range loadedRegs {
					if p == a {
						t = loadedTmps[li]
						break
					}
				}
				if t == ir.NoReg {
					t = fn.NewReg(fn.RegClass(a), "")
					newTemp(t)
					loadedRegs = append(loadedRegs, a)
					loadedTmps = append(loadedTmps, t)
					out = append(out, ir.Instr{
						Op: ir.OpLoad, Dst: t, Sym: slot, Args: []ir.Reg{}, Pos: in.Pos,
					})
				}
				in.Args[ai] = t
			}
			// Store for a spilled definition.
			if in.HasDst() {
				if slot := slotOf(in.Dst); slot != nil {
					t := fn.NewReg(fn.RegClass(in.Dst), "")
					newTemp(t)
					in.Dst = t
					out = append(out, in)
					out = append(out, ir.Instr{
						Op: ir.OpStore, Dst: ir.NoReg, Sym: slot, Args: []ir.Reg{t}, Pos: in.Pos,
					})
					continue
				}
			}
			out = append(out, in)
		}
		b.Instrs = out
		dirty = append(dirty, b.ID)
	}
	return dirty
}

// CallSave lists the caller-save physical registers that must be saved
// and restored around one call site because a live range assigned to
// them is live across the call.
type CallSave struct {
	Regs [ir.NumClasses][]machine.PhysReg
}

// Count returns the number of registers saved at the site.
func (cs *CallSave) Count() int {
	n := 0
	for c := range cs.Regs {
		n += len(cs.Regs[c])
	}
	return n
}

// FuncPlan is the executable allocation plan of one function: the
// rewritten body plus everything the machine-level interpreter and the
// analytic cost model need.
type FuncPlan struct {
	Alloc *regalloc.FuncAlloc
	// CallSaves is keyed by {blockID, instruction index} of each call.
	CallSaves map[[2]int]*CallSave
	// CalleeUsed lists the callee-save registers the allocation uses
	// anywhere in the function (these are saved at entry and restored
	// at exit).
	CalleeUsed [ir.NumClasses][]machine.PhysReg
}

// BuildPlan derives the save/restore plan from a finished allocation.
func BuildPlan(fa *regalloc.FuncAlloc) *FuncPlan {
	fn := fa.Fn
	plan := &FuncPlan{
		Alloc:     fa,
		CallSaves: make(map[[2]int]*CallSave),
	}

	// Callee-save registers used anywhere.
	var used [ir.NumClasses]map[machine.PhysReg]bool
	for c := range used {
		used[c] = make(map[machine.PhysReg]bool)
	}
	occurs := occurrence(fn)
	for r := 0; r < fn.NumRegs(); r++ {
		reg := ir.Reg(r)
		if !occurs[r] {
			continue
		}
		col := fa.Colors[r]
		if col == machine.NoPhysReg {
			continue
		}
		c := fn.RegClass(reg)
		if fa.Config.IsCalleeSave(c, col) {
			used[c][col] = true
		}
	}
	for c := range used {
		for col := range used[c] {
			plan.CalleeUsed[c] = append(plan.CalleeUsed[c], col)
		}
		sortPhys(plan.CalleeUsed[c])
	}

	// Caller-save registers live across each call.
	live := allocLiveness(fa)
	live.LiveAcrossCalls(func(b *ir.Block, idx int, call *ir.Instr, crossing *bitset.Set) {
		cs := &CallSave{}
		var seen [ir.NumClasses]map[machine.PhysReg]bool
		for c := range seen {
			seen[c] = make(map[machine.PhysReg]bool)
		}
		crossing.ForEach(func(i int) {
			reg := ir.Reg(i)
			col := fa.Colors[reg]
			if col == machine.NoPhysReg {
				return
			}
			c := fn.RegClass(reg)
			if fa.Config.IsCallerSave(c, col) && !seen[c][col] {
				seen[c][col] = true
				cs.Regs[c] = append(cs.Regs[c], col)
			}
		})
		for c := range cs.Regs {
			sortPhys(cs.Regs[c])
		}
		plan.CallSaves[[2]int{b.ID, idx}] = cs
	})
	return plan
}

func sortPhys(rs []machine.PhysReg) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j] < rs[j-1]; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// allocLiveness returns liveness for fa.Fn, reusing the final-round
// result the allocator recorded (through a private fork, so concurrent
// plan builds never share walk scratch). Only a hand-constructed
// FuncAlloc carries none; for those the result is computed once and
// memoized on fa, so Validate followed by BuildPlan solves the
// dataflow a single time. (Allocator-produced FuncAllocs always carry
// liveness, so the memoizing write only happens on the single-threaded
// hand-built path.)
func allocLiveness(fa *regalloc.FuncAlloc) *liveness.Info {
	if fa.Live == nil || fa.Live.Fn != fa.Fn {
		fa.Live = liveness.Compute(fa.Fn, cfg.New(fa.Fn))
	}
	return fa.Live.Fork()
}

// occurrence reports which virtual registers appear in the function
// body. Parameters are not included: a parameter that is never read
// (dead on arrival) needs no register — its incoming value is simply
// dropped.
func occurrence(fn *ir.Func) []bool {
	occ := make([]bool, fn.NumRegs())
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.HasDst() {
				occ[in.Dst] = true
			}
			for _, a := range in.Args {
				occ[a] = true
			}
		}
	}
	return occ
}

// Validate checks that the allocation is sound: every occurring
// virtual register has a color in its own bank, and no two
// simultaneously-live registers of the same bank share a color (with
// the standard exception of a move's source and destination, which hold
// the same value). This is the property that makes the rewritten
// program execute correctly on the machine-level interpreter.
func Validate(fa *regalloc.FuncAlloc) error {
	fn := fa.Fn
	live := allocLiveness(fa)

	occurs := occurrence(fn)
	for _, p := range fn.Params {
		// A parameter needs a register exactly when its incoming value
		// is read (live into the entry block).
		if live.In[0].Has(int(p)) {
			occurs[p] = true
		}
	}
	for r := 0; r < fn.NumRegs(); r++ {
		if !occurs[r] {
			continue
		}
		col := fa.Colors[r]
		if col == machine.NoPhysReg {
			return fmt.Errorf("%s: v%d occurs but has no register", fn.Name, r)
		}
		c := fn.RegClass(ir.Reg(r))
		if int(col) >= fa.Config.Total(c) {
			return fmt.Errorf("%s: v%d assigned %d outside bank %s of %s", fn.Name, r, col, c, fa.Config)
		}
	}
	var err error
	check := func(d ir.Reg, liveAfter *bitset.Set, moveSrc ir.Reg) {
		if err != nil {
			return
		}
		dc := fn.RegClass(d)
		dcol := fa.Colors[d]
		liveAfter.ForEach(func(i int) {
			r := ir.Reg(i)
			if r == d || r == moveSrc || fn.RegClass(r) != dc {
				return
			}
			if fa.Colors[r] == dcol && err == nil {
				err = fmt.Errorf("%s: v%d and v%d both in %s register %d while simultaneously live",
					fn.Name, d, r, dc, dcol)
			}
		})
	}
	for _, b := range fn.Blocks {
		live.WalkBlock(b, func(in *ir.Instr, after *bitset.Set) {
			if !in.HasDst() {
				return
			}
			src := ir.NoReg
			if in.Op == ir.OpMove {
				src = in.Args[0]
			}
			check(in.Dst, after, src)
		})
	}
	if err != nil {
		return err
	}
	// Parameters are defined simultaneously at entry.
	for i, p := range fn.Params {
		if !live.In[0].Has(int(p)) {
			continue
		}
		for _, q := range fn.Params[i+1:] {
			if !live.In[0].Has(int(q)) || fn.RegClass(p) != fn.RegClass(q) {
				continue
			}
			if fa.Colors[p] == fa.Colors[q] {
				return fmt.Errorf("%s: parameters v%d and v%d share %s register %d",
					fn.Name, p, q, fn.RegClass(p), fa.Colors[p])
			}
		}
	}
	return nil
}
