package rewrite_test

import (
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/freq"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/regalloc"
	"repro/internal/rewrite"
)

const callSrc = `
int g(int v) { return v + 1; }
int f(int a, int b) {
	int keep = a * 3;
	int r = g(b);
	return keep + r + a;
}
int main() { return f(1, 2); }`

func allocate(t *testing.T, src, fn string, config machine.Config, strat regalloc.Strategy) (*regalloc.FuncAlloc, *freq.ProgramFreq) {
	t.Helper()
	prog, err := compile.Source(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := interp.Run(prog, interp.Options{Profile: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	pf := freq.FromProfile(prog, res.Profile)
	fa, err := regalloc.AllocateFunc(prog.FuncByName[fn], pf.ByFunc[fn], config, strat,
		rewrite.InsertSpills, regalloc.DefaultOptions())
	if err != nil {
		t.Fatalf("allocate: %v", err)
	}
	return fa, pf
}

func TestInsertSpillsRewritesAllOccurrences(t *testing.T) {
	prog, err := compile.Source(callSrc)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.FuncByName["f"].Clone()
	// Spill the "keep" variable.
	var keep ir.Reg = ir.NoReg
	for r := 0; r < f.NumRegs(); r++ {
		if f.RegName(ir.Reg(r)) == "keep" {
			keep = ir.Reg(r)
		}
	}
	if keep == ir.NoReg {
		t.Fatal("no keep register")
	}
	slot := &ir.Symbol{Name: "f.spill.0", Class: ir.ClassInt, Local: true, Spill: true}
	var temps []ir.Reg
	rewrite.InsertSpills(f, map[ir.Reg]*ir.Symbol{keep: slot}, func(r ir.Reg) { temps = append(temps, r) })

	if len(temps) == 0 {
		t.Fatal("no temporaries created")
	}
	// keep must no longer occur in any instruction.
	loads, stores := 0, 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Dst == keep {
				t.Error("keep still defined")
			}
			for _, a := range in.Args {
				if a == keep {
					t.Error("keep still used")
				}
			}
			if in.Op == ir.OpLoad && in.Sym == slot {
				loads++
			}
			if in.Op == ir.OpStore && in.Sym == slot {
				stores++
			}
		}
	}
	if loads == 0 || stores == 0 {
		t.Errorf("spill code incomplete: %d loads, %d stores", loads, stores)
	}
	// The slot joined the frame.
	found := false
	for _, l := range f.Locals {
		if l == slot {
			found = true
		}
	}
	if !found {
		t.Error("slot not added to Locals")
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("rewritten function invalid: %v", err)
	}
}

func TestInsertSpillsSpilledParameter(t *testing.T) {
	prog, err := compile.Source(callSrc)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.FuncByName["f"].Clone()
	p := f.Params[0]
	slot := &ir.Symbol{Name: "f.spill.p", Class: ir.ClassInt, Local: true, Spill: true}
	rewrite.InsertSpills(f, map[ir.Reg]*ir.Symbol{p: slot}, func(ir.Reg) {})
	// The parameter register must have been replaced, and the entry
	// block must begin by storing the incoming value.
	if f.Params[0] == p {
		t.Error("spilled parameter not replaced")
	}
	first := f.Blocks[0].Instrs[0]
	if first.Op != ir.OpStore || first.Sym != slot {
		t.Errorf("entry does not store the incoming parameter: %v", f.InstrString(&first))
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestBuildPlanCallSaves(t *testing.T) {
	fa, _ := allocate(t, callSrc, "f", machine.NewConfig(6, 4, 0, 0), &regalloc.Chaitin{})
	plan := rewrite.BuildPlan(fa)
	// With zero callee-save registers, "keep" and "a" live across g()
	// in caller-save registers: the call must save at least two.
	var total int
	for _, cs := range plan.CallSaves {
		total += cs.Count()
	}
	if total < 2 {
		t.Errorf("call saves = %d, want >= 2 (keep and a cross the call)", total)
	}
	if len(plan.CalleeUsed[ir.ClassInt]) != 0 {
		t.Error("no callee-save registers exist, none can be used")
	}
}

func TestBuildPlanCalleeUsed(t *testing.T) {
	fa, _ := allocate(t, callSrc, "f", machine.NewConfig(6, 4, 4, 4), &regalloc.Chaitin{})
	plan := rewrite.BuildPlan(fa)
	// The base model prefers callee-save for crossing ranges; some
	// callee register must be in use, and every listed register must
	// actually be callee-save.
	if len(plan.CalleeUsed[ir.ClassInt]) == 0 {
		t.Error("expected callee-save usage under the base model")
	}
	for c := range plan.CalleeUsed {
		for _, pr := range plan.CalleeUsed[c] {
			if !fa.Config.IsCalleeSave(ir.Class(c), pr) {
				t.Errorf("register %d listed as callee-save but is not", pr)
			}
		}
	}
}

func TestValidateAcceptsRealAllocations(t *testing.T) {
	for _, cfg := range machine.ShortSweep() {
		fa, _ := allocate(t, callSrc, "f", cfg, &regalloc.Chaitin{})
		if err := rewrite.Validate(fa); err != nil {
			t.Errorf("%s: %v", cfg, err)
		}
	}
}

func TestValidateCatchesConflicts(t *testing.T) {
	fa, _ := allocate(t, callSrc, "f", machine.NewConfig(6, 4, 2, 2), &regalloc.Chaitin{})
	// Corrupt: give two simultaneously-live registers the same color.
	// "keep" and the parameter "a" are both live across the call.
	var keep, a ir.Reg = ir.NoReg, ir.NoReg
	f := fa.Fn
	for r := 0; r < f.NumRegs(); r++ {
		switch f.RegName(ir.Reg(r)) {
		case "keep":
			keep = ir.Reg(r)
		case "a":
			a = ir.Reg(r)
		}
	}
	if keep == ir.NoReg || a == ir.NoReg {
		t.Fatal("registers not found")
	}
	fa.Colors[keep] = fa.Colors[a]
	if err := rewrite.Validate(fa); err == nil {
		t.Fatal("conflicting allocation accepted")
	} else if !strings.Contains(err.Error(), "simultaneously live") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestValidateCatchesMissingColor(t *testing.T) {
	fa, _ := allocate(t, callSrc, "f", machine.NewConfig(6, 4, 2, 2), &regalloc.Chaitin{})
	f := fa.Fn
	for r := 0; r < f.NumRegs(); r++ {
		if f.RegName(ir.Reg(r)) == "keep" {
			fa.Colors[r] = machine.NoPhysReg
		}
	}
	if err := rewrite.Validate(fa); err == nil {
		t.Fatal("missing color accepted")
	}
}

func TestValidateCatchesOutOfBankColor(t *testing.T) {
	fa, _ := allocate(t, callSrc, "f", machine.NewConfig(6, 4, 2, 2), &regalloc.Chaitin{})
	f := fa.Fn
	for r := 0; r < f.NumRegs(); r++ {
		if f.RegName(ir.Reg(r)) == "keep" {
			fa.Colors[r] = machine.PhysReg(100)
		}
	}
	if err := rewrite.Validate(fa); err == nil {
		t.Fatal("out-of-bank color accepted")
	}
}
