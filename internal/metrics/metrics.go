// Package metrics computes the paper's register-allocation cost: the
// weighted count of overhead memory operations an allocation executes,
// decomposed as in Figure 2 into
//
//	spill cost    — loads/stores of spilled live ranges,
//	caller cost   — save/restore around calls for live ranges kept in
//	                caller-save registers,
//	callee cost   — entry/exit save/restore of used callee-save
//	                registers,
//	shuffle cost  — register-to-register copies coalescing could not
//	                remove.
//
// The analytic path weights static operation sites with a frequency
// table (estimated or profiled); the measured path comes from actually
// executing the allocated program (package minterp). With exact profile
// frequencies the two agree, which the test suite checks.
package metrics

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/freq"
	"repro/internal/ir"
	"repro/internal/minterp"
	"repro/internal/obs"
	"repro/internal/rewrite"
)

// Overhead is the decomposed register-allocation cost in weighted
// memory operations.
type Overhead struct {
	Spill   float64
	Caller  float64
	Callee  float64
	Shuffle float64
}

// Total returns the summed overhead.
func (o Overhead) Total() float64 { return o.Spill + o.Caller + o.Callee + o.Shuffle }

// Add returns the component-wise sum.
func (o Overhead) Add(p Overhead) Overhead {
	return Overhead{
		Spill:   o.Spill + p.Spill,
		Caller:  o.Caller + p.Caller,
		Callee:  o.Callee + p.Callee,
		Shuffle: o.Shuffle + p.Shuffle,
	}
}

// Sub returns the component-wise difference o − p, e.g. the overhead
// a technique removed relative to a baseline.
func (o Overhead) Sub(p Overhead) Overhead {
	return Overhead{
		Spill:   o.Spill - p.Spill,
		Caller:  o.Caller - p.Caller,
		Callee:  o.Callee - p.Callee,
		Shuffle: o.Shuffle - p.Shuffle,
	}
}

// Percent returns 100·part/total, or 0 when total is 0 — the shared
// convention of the stats sink's tables and the experiment reports.
func Percent(part, total float64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * part / total
}

// Breakdown returns each component as a percentage of the total (all
// zeros for a zero overhead).
func (o Overhead) Breakdown() Overhead {
	t := o.Total()
	return Overhead{
		Spill:   Percent(o.Spill, t),
		Caller:  Percent(o.Caller, t),
		Callee:  Percent(o.Callee, t),
		Shuffle: Percent(o.Shuffle, t),
	}
}

// String renders the decomposition.
func (o Overhead) String() string {
	return fmt.Sprintf("total=%.0f (spill=%.0f caller=%.0f callee=%.0f shuffle=%.0f)",
		o.Total(), o.Spill, o.Caller, o.Callee, o.Shuffle)
}

// Analytic computes the expected overhead of one function's plan under
// the frequency table ff. Block IDs of the rewritten function match the
// original, so ff may come from either.
func Analytic(plan *rewrite.FuncPlan, ff *freq.FuncFreq) Overhead {
	fn := plan.Alloc.Fn
	colors := plan.Alloc.Colors
	var o Overhead

	for _, b := range fn.Blocks {
		w := ff.Block[b.ID]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpLoad, ir.OpStore:
				if in.Sym.Spill {
					o.Spill += w
				}
			case ir.OpMove:
				if colors[in.Dst] != colors[in.Args[0]] {
					o.Shuffle += w
				}
			case ir.OpCall:
				if cs := plan.CallSaves[[2]int{b.ID, i}]; cs != nil {
					o.Caller += 2 * w * float64(cs.Count())
				}
			}
		}
	}
	nCallee := len(plan.CalleeUsed[ir.ClassInt]) + len(plan.CalleeUsed[ir.ClassFloat])
	o.Callee = 2 * ff.Entry * float64(nCallee)
	return o
}

// AnalyticProgram sums Analytic over every function plan, in sorted
// name order: float addition is not associative, so a fixed order is
// what makes the program total byte-reproducible across runs (the
// allocation daemon's differential gate compares serialized totals).
func AnalyticProgram(plans map[string]*rewrite.FuncPlan, pf *freq.ProgramFreq) Overhead {
	names := make([]string, 0, len(plans))
	for name := range plans {
		names = append(names, name)
	}
	sort.Strings(names)
	var o Overhead
	for _, name := range names {
		ff := pf.ByFunc[name]
		if ff == nil {
			continue
		}
		o = o.Add(Analytic(plans[name], ff))
	}
	return o
}

// FromCounts converts measured execution counters into the same
// decomposition.
func FromCounts(c minterp.Counts) Overhead {
	return Overhead{
		Spill:   c.SpillLoads + c.SpillStores,
		Caller:  c.CallerSaves + c.CallerRestores,
		Callee:  c.CalleeSaves + c.CalleeRestores,
		Shuffle: c.Shuffles,
	}
}

// WritePhaseTable renders the per-phase wall-time aggregation of a
// stats sink as a table with a percentage-share column. It is the
// common renderer behind rallocc -stats and experiments -timing.
func WritePhaseTable(w io.Writer, s *obs.Stats) {
	total := float64(s.PhaseTotal().Nanoseconds())
	fmt.Fprintf(w, "%-14s %8s %12s %8s\n", "phase", "runs", "total(ms)", "share")
	for _, ps := range s.Phases() {
		ns := float64(ps.Total.Nanoseconds())
		fmt.Fprintf(w, "%-14s %8d %12.3f %7.1f%%\n",
			ps.Phase, ps.Count, ns/1e6, Percent(ns, total))
	}
	fmt.Fprintf(w, "%-14s %8s %12.3f %7.1f%%\n", "all", "", total/1e6, Percent(total, total))
}

// Ratio returns base/improved, the paper's y-axis. A ratio above 1
// means the improved allocation removes overhead. Degenerate zero
// denominators follow the convention: 0/0 = 1, x/0 = +Inf is clamped to
// a large finite value so tables stay printable.
func Ratio(base, improved float64) float64 {
	if improved == 0 {
		if base == 0 {
			return 1
		}
		return 1e9
	}
	return base / improved
}
