package metrics_test

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/compile"
	"repro/internal/freq"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/minterp"
	"repro/internal/obs"
	"repro/internal/regalloc"
	"repro/internal/rewrite"
)

func TestOverheadArithmetic(t *testing.T) {
	a := metrics.Overhead{Spill: 1, Caller: 2, Callee: 3, Shuffle: 4}
	b := metrics.Overhead{Spill: 10, Caller: 20, Callee: 30, Shuffle: 40}
	if a.Total() != 10 {
		t.Errorf("Total = %v", a.Total())
	}
	sum := a.Add(b)
	if sum.Spill != 11 || sum.Caller != 22 || sum.Callee != 33 || sum.Shuffle != 44 {
		t.Errorf("Add = %+v", sum)
	}
	if !strings.Contains(a.String(), "total=10") {
		t.Errorf("String = %q", a.String())
	}
}

func TestOverheadSub(t *testing.T) {
	none := metrics.Overhead{Spill: 5, Caller: 8, Callee: 2, Shuffle: 40}
	aggressive := metrics.Overhead{Spill: 5, Caller: 6, Callee: 2, Shuffle: 10}
	removed := none.Sub(aggressive)
	want := metrics.Overhead{Spill: 0, Caller: 2, Callee: 0, Shuffle: 30}
	if removed != want {
		t.Errorf("Sub = %+v, want %+v", removed, want)
	}
	// Sub is the inverse of Add.
	if got := none.Sub(aggressive).Add(aggressive); got != none {
		t.Errorf("Sub then Add = %+v, want %+v", got, none)
	}
}

func TestPercent(t *testing.T) {
	if got := metrics.Percent(25, 200); got != 12.5 {
		t.Errorf("Percent(25, 200) = %v, want 12.5", got)
	}
	if got := metrics.Percent(3, 0); got != 0 {
		t.Errorf("Percent(x, 0) = %v, want 0", got)
	}
	if got := metrics.Percent(0, 0); got != 0 {
		t.Errorf("Percent(0, 0) = %v, want 0", got)
	}
}

func TestBreakdown(t *testing.T) {
	o := metrics.Overhead{Spill: 10, Caller: 20, Callee: 30, Shuffle: 40}
	b := o.Breakdown()
	want := metrics.Overhead{Spill: 10, Caller: 20, Callee: 30, Shuffle: 40}
	if b != want {
		t.Errorf("Breakdown = %+v, want %+v", b, want)
	}
	if sum := b.Spill + b.Caller + b.Callee + b.Shuffle; math.Abs(sum-100) > 1e-9 {
		t.Errorf("breakdown components sum to %v, want 100", sum)
	}
	if z := (metrics.Overhead{}).Breakdown(); z != (metrics.Overhead{}) {
		t.Errorf("zero overhead breakdown = %+v, want all zeros", z)
	}
}

func TestWritePhaseTable(t *testing.T) {
	s := obs.NewStats()
	s.Emit(obs.Event{Kind: obs.KindPhaseEnd, Fn: "f", Phase: obs.PhaseColor, Dur: 3 * time.Millisecond})
	s.Emit(obs.Event{Kind: obs.KindPhaseEnd, Fn: "f", Phase: obs.PhaseLiveness, Dur: time.Millisecond})
	var buf strings.Builder
	metrics.WritePhaseTable(&buf, s)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, two phases, "all" row
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	// Pipeline order: liveness before color.
	if !strings.HasPrefix(lines[1], "liveness") || !strings.HasPrefix(lines[2], "color") {
		t.Errorf("phases out of pipeline order:\n%s", out)
	}
	if !strings.Contains(lines[1], "25.0%") || !strings.Contains(lines[2], "75.0%") {
		t.Errorf("share column wrong:\n%s", out)
	}
	if !strings.Contains(lines[3], "100.0%") || !strings.Contains(lines[3], "4.000") {
		t.Errorf("all row wrong:\n%s", out)
	}
}

func TestRatioConventions(t *testing.T) {
	if metrics.Ratio(0, 0) != 1 {
		t.Error("0/0 should be 1")
	}
	if metrics.Ratio(10, 0) != 1e9 {
		t.Error("x/0 should clamp")
	}
	if metrics.Ratio(30, 10) != 3 {
		t.Error("plain ratio broken")
	}
}

// The cross-check at the heart of the measurement design: analytic
// overhead under exact profile weights equals executed overhead, per
// component, including a shuffle (an uncoalescable copy).
func TestAnalyticEqualsMeasuredWithShuffle(t *testing.T) {
	src := `
int g(int v) { return v + 1; }
int f(int y) {
	int x = y;
	y = y + 1;     // x = old y still live: the copy cannot coalesce
	int r = g(x);
	return x + y + r;
}
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 30; i = i + 1) { s = s + f(i); }
	return s;
}`
	prog, err := compile.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(prog, interp.Options{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	pf := freq.FromProfile(prog, res.Profile)
	cfg := machine.NewConfig(6, 4, 0, 0)
	plans := make(map[string]*rewrite.FuncPlan)
	for _, fn := range prog.Funcs {
		fa, err := regalloc.AllocateFunc(fn, pf.ByFunc[fn.Name], cfg, &regalloc.Chaitin{},
			rewrite.InsertSpills, regalloc.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		plans[fn.Name] = rewrite.BuildPlan(fa)
	}
	analytic := metrics.AnalyticProgram(plans, pf)
	run, err := minterp.Run(prog, plans, cfg, minterp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	measured := metrics.FromCounts(run.Counts)
	close := func(a, b float64) bool { return math.Abs(a-b) < 1e-6*(math.Abs(a)+math.Abs(b))+1e-9 }
	if !close(analytic.Spill, measured.Spill) {
		t.Errorf("spill: analytic %v measured %v", analytic.Spill, measured.Spill)
	}
	if !close(analytic.Caller, measured.Caller) {
		t.Errorf("caller: analytic %v measured %v", analytic.Caller, measured.Caller)
	}
	if !close(analytic.Callee, measured.Callee) {
		t.Errorf("callee: analytic %v measured %v", analytic.Callee, measured.Callee)
	}
	if !close(analytic.Shuffle, measured.Shuffle) {
		t.Errorf("shuffle: analytic %v measured %v", analytic.Shuffle, measured.Shuffle)
	}
	// The x = y copy in f survives coalescing (x and y interfere): the
	// shuffle component must be visible.
	if measured.Shuffle == 0 {
		t.Error("expected a nonzero shuffle component from the uncoalescable copy")
	}
}

func TestFromCounts(t *testing.T) {
	c := minterp.Counts{
		SpillLoads: 1, SpillStores: 2,
		CallerSaves: 3, CallerRestores: 4,
		CalleeSaves: 5, CalleeRestores: 6,
		Shuffles: 7,
	}
	o := metrics.FromCounts(c)
	if o.Spill != 3 || o.Caller != 7 || o.Callee != 11 || o.Shuffle != 7 {
		t.Errorf("FromCounts = %+v", o)
	}
	if o.Total() != c.OverheadOps() {
		t.Error("Total != OverheadOps")
	}
}
