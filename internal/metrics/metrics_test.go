package metrics_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/freq"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/minterp"
	"repro/internal/regalloc"
	"repro/internal/rewrite"
)

func TestOverheadArithmetic(t *testing.T) {
	a := metrics.Overhead{Spill: 1, Caller: 2, Callee: 3, Shuffle: 4}
	b := metrics.Overhead{Spill: 10, Caller: 20, Callee: 30, Shuffle: 40}
	if a.Total() != 10 {
		t.Errorf("Total = %v", a.Total())
	}
	sum := a.Add(b)
	if sum.Spill != 11 || sum.Caller != 22 || sum.Callee != 33 || sum.Shuffle != 44 {
		t.Errorf("Add = %+v", sum)
	}
	if !strings.Contains(a.String(), "total=10") {
		t.Errorf("String = %q", a.String())
	}
}

func TestRatioConventions(t *testing.T) {
	if metrics.Ratio(0, 0) != 1 {
		t.Error("0/0 should be 1")
	}
	if metrics.Ratio(10, 0) != 1e9 {
		t.Error("x/0 should clamp")
	}
	if metrics.Ratio(30, 10) != 3 {
		t.Error("plain ratio broken")
	}
}

// The cross-check at the heart of the measurement design: analytic
// overhead under exact profile weights equals executed overhead, per
// component, including a shuffle (an uncoalescable copy).
func TestAnalyticEqualsMeasuredWithShuffle(t *testing.T) {
	src := `
int g(int v) { return v + 1; }
int f(int y) {
	int x = y;
	y = y + 1;     // x = old y still live: the copy cannot coalesce
	int r = g(x);
	return x + y + r;
}
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 30; i = i + 1) { s = s + f(i); }
	return s;
}`
	prog, err := compile.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(prog, interp.Options{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	pf := freq.FromProfile(prog, res.Profile)
	cfg := machine.NewConfig(6, 4, 0, 0)
	plans := make(map[string]*rewrite.FuncPlan)
	for _, fn := range prog.Funcs {
		fa, err := regalloc.AllocateFunc(fn, pf.ByFunc[fn.Name], cfg, &regalloc.Chaitin{},
			rewrite.InsertSpills, regalloc.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		plans[fn.Name] = rewrite.BuildPlan(fa)
	}
	analytic := metrics.AnalyticProgram(plans, pf)
	run, err := minterp.Run(prog, plans, cfg, minterp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	measured := metrics.FromCounts(run.Counts)
	close := func(a, b float64) bool { return math.Abs(a-b) < 1e-6*(math.Abs(a)+math.Abs(b))+1e-9 }
	if !close(analytic.Spill, measured.Spill) {
		t.Errorf("spill: analytic %v measured %v", analytic.Spill, measured.Spill)
	}
	if !close(analytic.Caller, measured.Caller) {
		t.Errorf("caller: analytic %v measured %v", analytic.Caller, measured.Caller)
	}
	if !close(analytic.Callee, measured.Callee) {
		t.Errorf("callee: analytic %v measured %v", analytic.Callee, measured.Callee)
	}
	if !close(analytic.Shuffle, measured.Shuffle) {
		t.Errorf("shuffle: analytic %v measured %v", analytic.Shuffle, measured.Shuffle)
	}
	// The x = y copy in f survives coalescing (x and y interfere): the
	// shuffle component must be visible.
	if measured.Shuffle == 0 {
		t.Error("expected a nonzero shuffle component from the uncoalescable copy")
	}
}

func TestFromCounts(t *testing.T) {
	c := minterp.Counts{
		SpillLoads: 1, SpillStores: 2,
		CallerSaves: 3, CallerRestores: 4,
		CalleeSaves: 5, CalleeRestores: 6,
		Shuffles: 7,
	}
	o := metrics.FromCounts(c)
	if o.Spill != 3 || o.Caller != 7 || o.Callee != 11 || o.Shuffle != 7 {
		t.Errorf("FromCounts = %+v", o)
	}
	if o.Total() != c.OverheadOps() {
		t.Error("Total != OverheadOps")
	}
}
