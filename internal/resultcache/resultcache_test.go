package resultcache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/compile"
	"repro/internal/freq"
	"repro/internal/machine"
	"repro/internal/rewrite"
	"repro/internal/telemetry"
)

// keysFor computes a key per function of the li benchmark under the
// given parameters.
func keysFor(t *testing.T, config machine.Config, strategy string, pipeline []string) map[string]Key {
	t.Helper()
	prog, err := compile.Source(benchprog.ByName("li").Source)
	if err != nil {
		t.Fatal(err)
	}
	pf := freq.Static(prog)
	out := map[string]Key{}
	for _, fn := range prog.Funcs {
		k, err := KeyFor(fn, pf.ByFunc[fn.Name], config, strategy, pipeline)
		if err != nil {
			t.Fatal(err)
		}
		out[fn.Name] = k
	}
	return out
}

// TestKeyStability: the same inputs must produce the same key across
// independent compiles; every varied input must change it.
func TestKeyStability(t *testing.T) {
	cfg := machine.NewConfig(8, 6, 4, 4)
	pl := []string{"liveness", "build-graph", "coalesce", "liverange", "color", "spill-rewrite"}
	base := keysFor(t, cfg, "improved", pl)
	again := keysFor(t, cfg, "improved", pl)
	for name, k := range base {
		if again[name] != k {
			t.Fatalf("%s: key not stable across compiles", name)
		}
	}

	seen := map[Key]string{}
	for name, k := range base {
		if prev, dup := seen[k]; dup {
			t.Fatalf("functions %s and %s share a key", prev, name)
		}
		seen[k] = name
	}
	variants := []map[string]Key{
		keysFor(t, machine.NewConfig(6, 4, 0, 0), "improved", pl),
		keysFor(t, cfg, "linscan", pl),
		keysFor(t, cfg, "improved", []string{"liveness", "scan", "spill-rewrite"}),
	}
	for i, v := range variants {
		for name, k := range v {
			if base[name] == k {
				t.Fatalf("variant %d: %s key unchanged by varied input", i, name)
			}
		}
	}
}

// TestKeyFreqSensitivity: the frequency table is an allocation input,
// so a different table must produce a different key.
func TestKeyFreqSensitivity(t *testing.T) {
	prog, err := compile.Source(benchprog.ByName("compress").Source)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Funcs[0]
	cfg := machine.NewConfig(8, 6, 4, 4)
	pf := freq.Static(prog)
	ff := pf.ByFunc[fn.Name]
	k1, err := KeyFor(fn, ff, cfg, "improved", nil)
	if err != nil {
		t.Fatal(err)
	}
	bumped := &freq.FuncFreq{Entry: ff.Entry + 1, Block: ff.Block}
	k2, err := KeyFor(fn, bumped, cfg, "improved", nil)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("key ignores the frequency table")
	}
}

// TestLRUEviction: the cache never holds more than max entries and
// evicts in least-recently-used order.
func TestLRUEviction(t *testing.T) {
	b := telemetry.Enable(nil)
	defer telemetry.Disable()
	c := New(2)
	mk := func(i byte) Key { var k Key; k[0] = i; return k }
	plan := func() (*rewrite.FuncPlan, error) { return &rewrite.FuncPlan{}, nil }

	for i := byte(1); i <= 3; i++ {
		if _, hit, err := c.Do(mk(i), plan); err != nil || hit {
			t.Fatalf("insert %d: hit=%v err=%v", i, hit, err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	// 1 was evicted; 2 and 3 resident.
	if _, hit := c.Get(mk(1)); hit {
		t.Fatal("evicted entry still resident")
	}
	if _, hit := c.Get(mk(2)); !hit {
		t.Fatal("entry 2 missing")
	}
	// Touch 2, insert 4: 3 must go.
	if _, hit, _ := c.Do(mk(4), plan); hit {
		t.Fatal("fresh key hit")
	}
	if _, hit := c.Get(mk(3)); hit {
		t.Fatal("LRU evicted the wrong entry")
	}
	snap := b.Reg.Snapshot()
	if got := snap.Counters["result_cache_evictions_total"]; got != 2 {
		t.Fatalf("evictions counter = %d, want 2", got)
	}
	if got := snap.Gauges["result_cache_entries"]; got != 2 {
		t.Fatalf("entries gauge = %d, want 2", got)
	}
}

// TestSingleflight: concurrent Do calls for one key run compute once;
// the rest share the result and count as hits.
func TestSingleflight(t *testing.T) {
	b := telemetry.Enable(nil)
	defer telemetry.Disable()
	c := New(8)
	var computes atomic.Int64
	gate := make(chan struct{})
	shared := &rewrite.FuncPlan{}
	const callers = 16
	var wg sync.WaitGroup
	plans := make([]*rewrite.FuncPlan, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, _, err := c.Do(Key{42}, func() (*rewrite.FuncPlan, error) {
				<-gate
				computes.Add(1)
				return shared, nil
			})
			if err != nil {
				t.Error(err)
			}
			plans[i] = p
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i, p := range plans {
		if p != shared {
			t.Fatalf("caller %d got a different plan", i)
		}
	}
	snap := b.Reg.Snapshot()
	if misses := snap.Counters["result_cache_misses_total"]; misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
	if hits := snap.Counters["result_cache_hits_total"]; hits != callers-1 {
		t.Fatalf("hits = %d, want %d", hits, callers-1)
	}
}

// TestFailedComputeNotCachedAndRetried: an error result must not be
// cached, and a waiting follower must take over rather than inherit
// the leader's failure.
func TestFailedComputeNotCachedAndRetried(t *testing.T) {
	c := New(8)
	boom := errors.New("canceled")
	started := make(chan struct{})
	release := make(chan struct{})
	var leaderErr error
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, leaderErr = c.Do(Key{7}, func() (*rewrite.FuncPlan, error) {
			close(started)
			<-release
			return nil, boom
		})
	}()
	<-started
	var followerPlan *rewrite.FuncPlan
	var followerErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		followerPlan, _, followerErr = c.Do(Key{7}, func() (*rewrite.FuncPlan, error) {
			return &rewrite.FuncPlan{}, nil
		})
	}()
	close(release)
	<-leaderDone
	if !errors.Is(leaderErr, boom) {
		t.Fatalf("leader error = %v, want %v", leaderErr, boom)
	}
	<-done
	if followerErr != nil {
		t.Fatalf("follower inherited the leader's failure: %v", followerErr)
	}
	if followerPlan == nil {
		t.Fatal("follower got no plan")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (only the successful compute cached)", c.Len())
	}
}
