// Package resultcache is the content-addressed allocation result
// cache behind the allocation service (internal/server).
//
// The paper's allocator is a pure function of its inputs: one function
// of IR, a frequency table, a machine configuration, a strategy, and
// the pass pipeline the strategy resolves to. That makes every
// completed allocation a content-addressable unit of work — the cache
// key is a stable hash of exactly those inputs (KeyFor), and the value
// is the finished, immutable rewrite.FuncPlan (colors, rewritten body,
// save/restore plan). Identical functions across requests — the same
// helper compiled into many programs, repeat traffic against the
// daemon — are served without re-coloring.
//
// This is a different layer than pipeline.FuncCache: FuncCache shares
// round-0 *analysis* artifacts between allocations of one in-process
// Program; resultcache shares *results* across requests, keyed by
// content rather than object identity, so it survives program
// boundaries and serves a long-lived daemon.
//
// The cache is a bounded LRU with in-flight deduplication: concurrent
// requests for the same key run one compute and share its result.
// Telemetry: result_cache_{hits,misses,evictions}_total and the
// result_cache_entries gauge (package telemetry). All methods are safe
// for concurrent use.
package resultcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"repro/internal/freq"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/rewrite"
	"repro/internal/telemetry"
)

// Key is the content address of one allocation: a SHA-256 over the
// canonical wire encoding of the function, its frequency table, the
// machine configuration, the strategy name, and the resolved pass
// pipeline.
type Key [sha256.Size]byte

// String renders the key in short hex form for logs.
func (k Key) String() string { return fmt.Sprintf("%x", k[:8]) }

// KeyFor derives the content address of allocating fn under ff,
// config, and the named strategy with the given resolved pipeline pass
// names.
//
// The frequency table is part of the key because it is a real input:
// spill choices, benefit splits, and the caller/callee decision all
// weight by it. Static frequencies are a pure function of the IR, so
// identical functions still collide (hit) across requests; profiled
// frequencies only collide when the profiles agree — which is exactly
// when reusing the result is sound.
func KeyFor(fn *ir.Func, ff *freq.FuncFreq, config machine.Config, strategy string, pipeline []string) (Key, error) {
	body, err := ir.EncodeFunc(fn)
	if err != nil {
		return Key{}, err
	}
	h := sha256.New()
	h.Write(body)

	var buf [8]byte
	writeF64 := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	writeF64(ff.Entry)
	writeInt(len(ff.Block))
	for _, w := range ff.Block {
		writeF64(w)
	}
	for c := 0; c < int(ir.NumClasses); c++ {
		writeInt(config.Caller[c])
		writeInt(config.Callee[c])
	}
	h.Write([]byte{0})
	h.Write([]byte(strategy))
	for _, p := range pipeline {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	var k Key
	h.Sum(k[:0])
	return k, nil
}

// entry is one resident allocation.
type entry struct {
	key  Key
	plan *rewrite.FuncPlan
}

// call is one in-flight compute, shared by concurrent requests for the
// same key.
type call struct {
	done chan struct{}
	plan *rewrite.FuncPlan
	err  error
}

// Cache is the bounded LRU. Construct with New.
type Cache struct {
	mu       sync.Mutex
	max      int
	lru      *list.List // front = most recently used; values are *entry
	entries  map[Key]*list.Element
	inflight map[Key]*call
}

// New returns a cache bounded to max resident entries. max <= 0
// selects DefaultMaxEntries.
func New(max int) *Cache {
	if max <= 0 {
		max = DefaultMaxEntries
	}
	return &Cache{
		max:      max,
		lru:      list.New(),
		entries:  make(map[Key]*list.Element),
		inflight: make(map[Key]*call),
	}
}

// DefaultMaxEntries bounds the cache when the caller does not. Sized
// for a daemon: entries are finished per-function plans (IR clone +
// colors + save/restore tables), typically a few KB each.
const DefaultMaxEntries = 4096

// Len returns the resident entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Get returns the cached plan for key, if resident, and marks it
// recently used.
func (c *Cache) Get(key Key) (*rewrite.FuncPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*entry).plan, true
	}
	return nil, false
}

// Do returns the plan for key, computing it with compute on a miss.
// Concurrent calls for the same key share one compute: one caller
// runs it, the rest wait for its result. A failed compute is not
// cached — waiting callers retry with their own compute, so a
// canceled leader does not poison its followers. hit reports whether
// this call avoided running a compute to completion for itself (a
// resident entry or a shared in-flight result).
func (c *Cache) Do(key Key, compute func() (*rewrite.FuncPlan, error)) (plan *rewrite.FuncPlan, hit bool, err error) {
	b := telemetry.B()
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.lru.MoveToFront(el)
			plan = el.Value.(*entry).plan
			c.mu.Unlock()
			if b != nil {
				b.ResultHits.Inc()
			}
			return plan, true, nil
		}
		if cl, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			<-cl.done
			if cl.err == nil {
				if b != nil {
					b.ResultHits.Inc()
				}
				return cl.plan, true, nil
			}
			// The leader failed (its request may just have been
			// canceled); take over with our own compute.
			continue
		}
		cl := &call{done: make(chan struct{})}
		c.inflight[key] = cl
		c.mu.Unlock()
		if b != nil {
			b.ResultMisses.Inc()
		}

		cl.plan, cl.err = compute()

		c.mu.Lock()
		delete(c.inflight, key)
		if cl.err == nil {
			c.insertLocked(key, cl.plan, b)
		}
		c.mu.Unlock()
		close(cl.done)
		return cl.plan, false, cl.err
	}
}

// insertLocked adds key → plan and evicts past the bound. Callers hold
// c.mu.
func (c *Cache) insertLocked(key Key, plan *rewrite.FuncPlan, b *telemetry.Builtin) {
	if el, ok := c.entries[key]; ok {
		// A racing leader for the same key landed first; refresh.
		c.lru.MoveToFront(el)
		el.Value.(*entry).plan = plan
		return
	}
	c.entries[key] = c.lru.PushFront(&entry{key: key, plan: plan})
	for c.lru.Len() > c.max {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.entries, last.Value.(*entry).key)
		if b != nil {
			b.ResultEvictions.Inc()
		}
	}
	if b != nil {
		b.ResultEntries.Set(int64(c.lru.Len()))
	}
}
