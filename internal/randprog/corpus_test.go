package randprog

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestCorpusDeterministic: the same (seed, n) yields the same bytes —
// the property that makes load runs replayable.
func TestCorpusDeterministic(t *testing.T) {
	a := Corpus(42, 24)
	b := Corpus(42, 24)
	if len(a) != 24 || len(b) != 24 {
		t.Fatalf("lengths %d/%d, want 24", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("body %d differs between identical corpus calls", i)
		}
	}
	if bytes.Equal(a[0], Corpus(43, 1)[0]) {
		t.Fatal("different seeds produced the same first body")
	}
}

// TestCorpusShape: every body is a JSON object carrying a nonempty
// source, a strategy, and a config, and the rotations actually rotate.
func TestCorpusShape(t *testing.T) {
	bodies := Corpus(7, 12)
	strategies := make(map[string]bool)
	configs := make(map[string]bool)
	for i, body := range bodies {
		var req struct {
			Source   string          `json:"source"`
			Strategy string          `json:"strategy"`
			Config   json.RawMessage `json:"config"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			t.Fatalf("body %d: %v", i, err)
		}
		if req.Source == "" || req.Strategy == "" || len(req.Config) == 0 {
			t.Fatalf("body %d incomplete: %s", i, body)
		}
		strategies[req.Strategy] = true
		configs[string(req.Config)] = true
	}
	if len(strategies) != len(corpusStrategies) {
		t.Fatalf("strategies seen %v, want all of %v", strategies, corpusStrategies)
	}
	if len(configs) != len(corpusConfigs) {
		t.Fatalf("%d distinct configs, want %d", len(configs), len(corpusConfigs))
	}
}
