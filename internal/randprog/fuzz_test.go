package randprog_test

import (
	"testing"

	"repro"
	"repro/internal/freq"
	"repro/internal/interp"
	"repro/internal/randprog"
)

// FuzzDifferential is the fuzzing entry point for the repository's
// master property: for any generated program, every allocator must
// preserve the reference semantics when its allocation is executed at
// machine level. `go test -fuzz=FuzzDifferential ./internal/randprog`
// explores seeds indefinitely; the corpus seeds below run in normal
// test mode.
func FuzzDifferential(f *testing.F) {
	// Seeds map onto shape profiles via randprog.ForSeed (seed mod 5:
	// balanced, EBB-heavy, critical-edge, hole-heavy, call-DAG), so the
	// corpus covers every profile several times over.
	for seed := int64(0); seed < 21; seed++ {
		f.Add(seed)
	}
	strategies := []callcost.Strategy{
		callcost.Chaitin(),
		callcost.Optimistic(),
		callcost.ImprovedAll(),
		callcost.Priority(callcost.PrioritySorting),
		callcost.CBH(),
		callcost.LinearScan(),
		callcost.HybridTiered(),
	}
	configs := []callcost.Config{
		callcost.NewConfig(6, 4, 0, 0),
		callcost.NewConfig(8, 6, 4, 4),
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := randprog.Generate(seed, randprog.ForSeed(seed))
		prog, err := callcost.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: generated program does not compile: %v", seed, err)
		}
		ref, err := interp.Run(prog.IR, interp.Options{MaxSteps: 2_000_000, Profile: true})
		if err != nil {
			return // too expensive or hit a bound; not a correctness issue
		}
		pf := freq.FromProfile(prog.IR, ref.Profile)
		for _, strat := range strategies {
			for _, cfg := range configs {
				alloc, err := prog.Allocate(strat, cfg, pf)
				if err != nil {
					t.Fatalf("seed %d: %s at %s: %v", seed, strat.Name(), cfg, err)
				}
				res, err := alloc.Execute()
				if err != nil {
					t.Fatalf("seed %d: %s at %s: execute: %v", seed, strat.Name(), cfg, err)
				}
				if res.RetInt != ref.RetInt {
					t.Fatalf("seed %d: %s at %s: got %d, reference %d\n%s",
						seed, strat.Name(), cfg, res.RetInt, ref.RetInt, src)
				}
			}
		}
	})
}
