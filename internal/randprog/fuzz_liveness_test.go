package randprog_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/bitset"
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/liverange"
	"repro/internal/randprog"
	"repro/internal/rewrite"
)

// denseSolve is an independent dense round-robin reference solver,
// duplicated from the liveness differential tests on purpose: the fuzz
// target should not share code with the implementation under test.
func denseSolve(fn *ir.Func, g *cfg.Graph) (in, out []*bitset.Set) {
	n := len(fn.Blocks)
	nr := fn.NumRegs()
	use := make([]*bitset.Set, n)
	def := make([]*bitset.Set, n)
	in = make([]*bitset.Set, n)
	out = make([]*bitset.Set, n)
	for i := 0; i < n; i++ {
		use[i] = bitset.New(nr)
		def[i] = bitset.New(nr)
		in[i] = bitset.New(nr)
		out[i] = bitset.New(nr)
	}
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			ins := &b.Instrs[i]
			for _, a := range ins.Args {
				if !def[b.ID].Has(int(a)) {
					use[b.ID].Add(int(a))
				}
			}
			if ins.HasDst() {
				def[b.ID].Add(int(ins.Dst))
			}
		}
	}
	tmp := bitset.New(nr)
	for changed := true; changed; {
		changed = false
		for i := len(g.RPO) - 1; i >= 0; i-- {
			b := g.RPO[i]
			for _, s := range g.Succs[b] {
				if out[b].UnionWith(in[s]) {
					changed = true
				}
			}
			tmp.Copy(out[b])
			tmp.DiffWith(def[b])
			tmp.UnionWith(use[b])
			if !tmp.Equal(in[b]) {
				in[b].Copy(tmp)
				changed = true
			}
		}
	}
	return in, out
}

func setsEq(a, b *bitset.Set) bool {
	eq := true
	a.ForEach(func(i int) {
		if i >= b.Len() || !b.Has(i) {
			eq = false
		}
	})
	b.ForEach(func(i int) {
		if i >= a.Len() || !a.Has(i) {
			eq = false
		}
	})
	return eq
}

// FuzzLivenessDifferential fuzzes the sparse dataflow machinery on
// generated programs: the worklist solver against an independent dense
// reference, then a spill-everywhere rewrite followed by an incremental
// Rebase against a from-scratch Compute, and the incremental live-range
// block map against a full rescan.
// `go test -fuzz=FuzzLivenessDifferential ./internal/randprog` explores
// seeds indefinitely; the corpus seeds run in normal test mode.
func FuzzLivenessDifferential(f *testing.F) {
	for seed := int64(0); seed < 12; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := randprog.Generate(seed, randprog.ForSeed(seed))
		prog, err := callcost.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: generated program does not compile: %v", seed, err)
		}
		for _, fn := range prog.IR.Funcs {
			g := cfg.New(fn)
			info := liveness.Compute(fn, g)

			// Sparse vs dense on the original body.
			in, out := denseSolve(fn, g)
			for i := range fn.Blocks {
				if !info.In[i].Equal(in[i]) || !info.Out[i].Equal(out[i]) {
					t.Fatalf("seed %d %s block %d: sparse solve diverges from dense", seed, fn.Name, i)
				}
			}

			bm := liverange.NewBlockMap(fn, info)

			// Spill every third occurring register, seed-independently
			// deterministic, and rewrite.
			occ := make([]bool, fn.NumRegs())
			for _, b := range fn.Blocks {
				for i := range b.Instrs {
					ins := &b.Instrs[i]
					if ins.HasDst() {
						occ[ins.Dst] = true
					}
					for _, a := range ins.Args {
						occ[a] = true
					}
				}
			}
			spill := make(map[ir.Reg]*ir.Symbol)
			var removed []ir.Reg
			k := 0
			for r := 0; r < len(occ); r++ {
				if !occ[r] {
					continue
				}
				if k++; k%3 != 0 {
					continue
				}
				reg := ir.Reg(r)
				spill[reg] = &ir.Symbol{
					Name:  fmt.Sprintf("%s.t%d", fn.Name, r),
					Class: fn.RegClass(reg),
					Local: true,
					Spill: true,
				}
				removed = append(removed, reg)
			}
			dirty := rewrite.InsertSpills(fn, spill, func(ir.Reg) {})
			if len(dirty) == 0 {
				continue
			}

			// Incremental liveness vs from-scratch Compute.
			g2 := g.Retarget(fn)
			fresh := liveness.Compute(fn, g2)
			rebased, changed := liveness.Rebase(info, fn, g2, dirty, removed, true)
			if changed == nil {
				t.Fatalf("seed %d %s: Rebase declined", seed, fn.Name)
			}
			for i := range fn.Blocks {
				if !setsEq(rebased.In[i], fresh.In[i]) || !setsEq(rebased.Out[i], fresh.Out[i]) {
					t.Fatalf("seed %d %s block %d: Rebase diverges from fresh Compute", seed, fn.Name, i)
				}
			}

			// Incremental block map vs full rescan.
			bm.Rebase(fn, rebased, changed)
			if !bm.Equal(liverange.NewBlockMap(fn, rebased)) {
				t.Fatalf("seed %d %s: rebased block map diverges from fresh scan", seed, fn.Name)
			}
		}
	})
}
