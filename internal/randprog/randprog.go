// Package randprog generates random, well-typed, terminating MC
// programs for differential testing: every generated program compiles,
// runs within a bounded step count, traps on nothing (indices are
// wrapped, divisors are nonzero), and returns a deterministic integer.
//
// The shape knobs lean toward what stresses a register allocator:
// nested counted loops, call-heavy inner loops, mixed int/float
// expressions with many simultaneously-live temporaries, globals, and
// guarded self-recursion.
package randprog

import (
	"fmt"
	"math/rand"
	"strings"
)

// Shape selects the statement mix of the generated control flow, for
// stressing specific CFG structures a register allocator's liveness
// and splitting heuristics care about.
type Shape int

const (
	// ShapeDefault is the balanced mix.
	ShapeDefault Shape = iota
	// ShapeEBBHeavy is branch-rich and loop-free-ish: long chains of
	// deeply nested if/else with rare else branches, producing extended
	// basic blocks with many side exits and join points.
	ShapeEBBHeavy
	// ShapeCriticalEdge is loop-heavy: counted loops and bounded
	// do-while loops with frequent guarded break/continue, producing
	// critical edges (branch out of a block with multiple successors
	// into a block with multiple predecessors) everywhere.
	ShapeCriticalEdge
	// ShapeHoleHeavy is long-straight-line code with many variables and
	// frequent from-scratch rebinds (a variable redefined without
	// reading its old value), producing def-dead-redef lifetime holes
	// and long cold gaps inside hot blocks — the structure the
	// hole-aware linear scan binpacks into.
	ShapeHoleHeavy
	// ShapeCallDAG is call-graph-heavy: a fixed structured topology —
	// a diamond (two helpers sharing a leaf, joined by a common
	// caller), chain layers on top of it, and a guarded mutually
	// recursive pair — so the condensed call graph always has
	// multi-node waves, a nontrivial critical path, and a multi-member
	// SCC. This is the shape that fuzzes the whole-program batch
	// scheduler and its interprocedural summary propagation.
	ShapeCallDAG
)

// Options bound the generated program.
type Options struct {
	// Funcs is the number of helper functions (besides main).
	Funcs int
	// MaxStmts bounds statements per block.
	MaxStmts int
	// MaxDepth bounds statement nesting.
	MaxDepth int
	// MaxLoopTrip bounds loop iteration counts.
	MaxLoopTrip int
	// Shape selects the statement mix (default: balanced).
	Shape Shape
}

// DefaultOptions returns the standard bounds.
func DefaultOptions() Options {
	return Options{Funcs: 4, MaxStmts: 6, MaxDepth: 3, MaxLoopTrip: 9}
}

// EBBHeavyOptions returns bounds tuned for the extended-basic-block
// shape: deeper nesting, more statements, almost no loops.
func EBBHeavyOptions() Options {
	return Options{Funcs: 4, MaxStmts: 7, MaxDepth: 4, MaxLoopTrip: 5, Shape: ShapeEBBHeavy}
}

// CriticalEdgeOptions returns bounds tuned for the critical-edge
// shape: loop-dominated control flow with frequent break/continue.
func CriticalEdgeOptions() Options {
	return Options{Funcs: 4, MaxStmts: 5, MaxDepth: 3, MaxLoopTrip: 7, Shape: ShapeCriticalEdge}
}

// HoleHeavyOptions returns bounds tuned for the hole-heavy shape: long
// blocks of mostly straight-line declarations and rebinds, shallow
// nesting, few loops.
func HoleHeavyOptions() Options {
	return Options{Funcs: 4, MaxStmts: 9, MaxDepth: 2, MaxLoopTrip: 6, Shape: ShapeHoleHeavy}
}

// CallDAGOptions returns bounds tuned for the call-DAG shape: more
// helper functions arranged into the structured topology, small bodies
// and tight loops so layered call-in-loop chains stay cheap to run.
func CallDAGOptions() Options {
	return Options{Funcs: 8, MaxStmts: 5, MaxDepth: 2, MaxLoopTrip: 4, Shape: ShapeCallDAG}
}

// ForSeed maps a fuzz seed onto one of the five shape profiles, so a
// single int64-seeded fuzz target explores all of them: seeds ≡ 1
// (mod 5) generate EBB-heavy programs, seeds ≡ 2 critical-edge ones,
// seeds ≡ 3 hole-heavy ones, and seeds ≡ 4 call-DAG ones.
func ForSeed(seed int64) Options {
	switch ((seed % 5) + 5) % 5 {
	case 1:
		return EBBHeavyOptions()
	case 2:
		return CriticalEdgeOptions()
	case 3:
		return HoleHeavyOptions()
	case 4:
		return CallDAGOptions()
	default:
		return DefaultOptions()
	}
}

// Generate produces a random MC program from the seed.
func Generate(seed int64, opts Options) string {
	if opts.Funcs == 0 {
		opts = DefaultOptions()
	}
	g := &gen{
		rng:  rand.New(rand.NewSource(seed)),
		opts: opts,
	}
	return g.program()
}

type gen struct {
	rng  *rand.Rand
	opts Options
	buf  strings.Builder

	// Current function scope.
	intVars   []string
	floatVars []string
	protected map[string]bool // loop variables: not assignable
	callable  []funcSig       // functions this one may call
	self      *funcSig        // for guarded self-recursion
	selfCalls int             // self-call sites emitted in this function
	depth     int
	nameSeq   int
}

type funcSig struct {
	name      string
	intParams int
	fltParams int
	retFloat  bool
	recursive bool
}

const (
	intArraySize   = 24
	floatArraySize = 16
)

func (g *gen) printf(format string, args ...interface{}) {
	fmt.Fprintf(&g.buf, format, args...)
}

func (g *gen) fresh(prefix string) string {
	g.nameSeq++
	return fmt.Sprintf("%s%d", prefix, g.nameSeq)
}

func (g *gen) pick(n int) int { return g.rng.Intn(n) }

func (g *gen) chance(p float64) bool { return g.rng.Float64() < p }

// program emits globals, helper functions, and main.
func (g *gen) program() string {
	g.printf("int gi0 = %d;\n", g.pick(50))
	g.printf("int gi1 = %d;\n", g.pick(50)+1)
	g.printf("float gf0 = %d.5;\n", g.pick(9))
	g.printf("int garr[%d];\n", intArraySize)
	g.printf("float gfarr[%d];\n\n", floatArraySize)

	var sigs []funcSig
	// Helpers use tighter loop bounds than main so that nested
	// call-in-loop chains cannot explode the total step count.
	mainOpts := g.opts
	g.opts = Options{
		Funcs:       mainOpts.Funcs,
		MaxStmts:    min(mainOpts.MaxStmts, 5),
		MaxDepth:    min(mainOpts.MaxDepth, 2),
		MaxLoopTrip: min(mainOpts.MaxLoopTrip, 4),
		Shape:       mainOpts.Shape,
	}
	if mainOpts.Shape == ShapeCallDAG {
		sigs = g.emitCallDAG()
	} else {
		for i := 0; i < g.opts.Funcs; i++ {
			sig := funcSig{
				name:      fmt.Sprintf("f%d", i),
				intParams: 1 + g.pick(3),
				fltParams: g.pick(3),
				retFloat:  g.chance(0.3),
				recursive: g.chance(0.25),
			}
			g.emitFunc(sig, sigs)
			sigs = append(sigs, sig)
		}
	}
	g.opts = mainOpts
	g.emitMain(sigs)
	return g.buf.String()
}

// emitCallDAG emits the structured call topology of ShapeCallDAG:
//
//	f0        — shared leaf
//	f1, f2    — both call f0 (the diamond's two waists)
//	f3        — calls f1 and f2 (the diamond's join)
//	f4..fN-1  — a chain layer: each calls f3 plus one of f0..f2
//	r0 ⇄ r1   — a guarded mutually recursive pair (one two-member SCC)
//
// Helpers may still be self-recursive (guarded), adding single-node
// SCC self-loops on top of the fixed skeleton. main sees the diamond
// join, the chain layer, and the recursive pair. The returned sigs are
// what main may call.
func (g *gen) emitCallDAG() []funcSig {
	newSig := func(name string) funcSig {
		return funcSig{
			name:      name,
			intParams: 1 + g.pick(3),
			fltParams: g.pick(3),
			retFloat:  g.chance(0.3),
			recursive: g.chance(0.25),
		}
	}
	f0 := newSig("f0")
	g.emitFunc(f0, nil)
	f1 := newSig("f1")
	g.emitFunc(f1, []funcSig{f0}, f0)
	f2 := newSig("f2")
	g.emitFunc(f2, []funcSig{f0}, f0)
	f3 := newSig("f3")
	g.emitFunc(f3, []funcSig{f1, f2}, f1, f2)
	waist := []funcSig{f0, f1, f2}
	mains := []funcSig{f3}
	for i := 4; i < g.opts.Funcs; i++ {
		s := newSig(fmt.Sprintf("f%d", i))
		g.emitFunc(s, []funcSig{f3, waist[g.pick(len(waist))]}, f3)
		mains = append(mains, s)
	}
	r0 := funcSig{name: "r0", intParams: 1 + g.pick(2), fltParams: g.pick(2)}
	r1 := funcSig{name: "r1", intParams: 1 + g.pick(2), fltParams: g.pick(2)}
	g.emitMutualFunc(r0, r1, []funcSig{f0})
	g.emitMutualFunc(r1, r0, []funcSig{f1})
	return append(mains, r0, r1)
}

// emitMutualFunc emits one half of a guarded mutually recursive pair:
// the body runs a normal statement block (which may call the given
// non-recursive helpers), and the return expression calls the partner
// with a strictly smaller first argument under the same depth guard
// self-recursion uses, so the pair's joint recursion is linear and
// bounded regardless of the caller's argument.
func (g *gen) emitMutualFunc(sig, partner funcSig, callable []funcSig) {
	g.intVars = g.intVars[:0]
	g.floatVars = g.floatVars[:0]
	g.protected = map[string]bool{}
	g.callable = callable
	g.depth = 0
	g.selfCalls = 0
	g.self = nil

	g.printf("int %s(", sig.name)
	sep := ""
	for i := 0; i < sig.intParams; i++ {
		p := fmt.Sprintf("p%d", i)
		g.printf("%sint %s", sep, p)
		g.intVars = append(g.intVars, p)
		sep = ", "
	}
	for i := 0; i < sig.fltParams; i++ {
		p := fmt.Sprintf("q%d", i)
		g.printf("%sfloat %s", sep, p)
		g.floatVars = append(g.floatVars, p)
		sep = ", "
	}
	g.printf(") {\n")
	g.printf("\tif (p0 <= 0 || p0 > 12) { return %s; }\n", g.literal(false))
	g.protected["p0"] = true
	g.block(1)
	args := []string{"(p0 - 1)"}
	for i := 1; i < partner.intParams; i++ {
		args = append(args, g.expr(false, 1))
	}
	for i := 0; i < partner.fltParams; i++ {
		args = append(args, g.expr(true, 1))
	}
	g.printf("\treturn (%s(%s) + %s);\n}\n\n", partner.name, strings.Join(args, ", "), g.expr(false, 1))
}

// emitFunc emits one function. Functions in `callable` may be called
// anywhere the statement/expression mix decides to; functions in
// `required` are each called exactly once in the return expression, so
// the call-graph edge is guaranteed rather than probabilistic (the
// call-DAG shape's skeleton depends on this).
func (g *gen) emitFunc(sig funcSig, callable []funcSig, required ...funcSig) {
	ret := "int"
	if sig.retFloat {
		ret = "float"
	}
	g.intVars = g.intVars[:0]
	g.floatVars = g.floatVars[:0]
	g.protected = map[string]bool{}
	g.callable = callable
	g.depth = 0
	g.selfCalls = 0
	if sig.recursive {
		g.self = &sig
	} else {
		g.self = nil
	}

	g.printf("%s %s(", ret, sig.name)
	sep := ""
	for i := 0; i < sig.intParams; i++ {
		p := fmt.Sprintf("p%d", i)
		g.printf("%sint %s", sep, p)
		g.intVars = append(g.intVars, p)
		sep = ", "
	}
	for i := 0; i < sig.fltParams; i++ {
		p := fmt.Sprintf("q%d", i)
		g.printf("%sfloat %s", sep, p)
		g.floatVars = append(g.floatVars, p)
		sep = ", "
	}
	g.printf(") {\n")
	if sig.recursive {
		// Guarded self-recursion on the first int parameter; the upper
		// bound caps recursion depth regardless of the caller's
		// argument. p0 must stay unassigned inside the body or the
		// decreasing-argument guarantee would break.
		g.printf("\tif (p0 <= 0 || p0 > 12) { return %s; }\n", g.literal(sig.retFloat))
		g.protected["p0"] = true
	}
	g.block(1)
	retExpr := g.expr(sig.retFloat, 2)
	for i := range required {
		r := required[i]
		retExpr = fmt.Sprintf("(%s + %s)", g.coerce(g.call(&r), r.retFloat, sig.retFloat), retExpr)
	}
	g.printf("\treturn %s;\n}\n\n", retExpr)
}

func (g *gen) emitMain(sigs []funcSig) {
	g.intVars = g.intVars[:0]
	g.floatVars = g.floatVars[:0]
	g.protected = map[string]bool{}
	g.callable = sigs
	g.self = nil
	g.depth = 0
	g.printf("int main() {\n")
	g.block(1)
	g.printf("\treturn %s;\n}\n", g.expr(false, 3))
}

func (g *gen) indent(level int) string { return strings.Repeat("\t", level) }

func (g *gen) block(level int) {
	n := 1 + g.pick(g.opts.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(level)
	}
}

// stmtMix holds cumulative thresholds out of 10 for the statement
// picker, plus the shape-dependent branch probabilities.
type stmtMix struct {
	decl, assign, ifStmt, loop, doWhile int
	elseChance, breakChance             float64
}

func (g *gen) mix() stmtMix {
	switch g.opts.Shape {
	case ShapeEBBHeavy:
		// Mostly straight-line code punctured by rarely-else ifs: long
		// extended basic blocks with side exits.
		return stmtMix{decl: 2, assign: 4, ifStmt: 8, loop: 8, doWhile: 8,
			elseChance: 0.25, breakChance: 0.4}
	case ShapeCriticalEdge:
		// Loop-dominated, break/continue-rich control flow.
		return stmtMix{decl: 2, assign: 4, ifStmt: 5, loop: 7, doWhile: 9,
			elseChance: 0.5, breakChance: 0.7}
	case ShapeHoleHeavy:
		// Declaration- and rebind-dominated straight-line code: many
		// variables, frequent redefinitions, rare control flow.
		return stmtMix{decl: 3, assign: 8, ifStmt: 9, loop: 10, doWhile: 10,
			elseChance: 0.3, breakChance: 0.3}
	default:
		return stmtMix{decl: 3, assign: 6, ifStmt: 7, loop: 8, doWhile: 9,
			elseChance: 0.5, breakChance: 0.4}
	}
}

func (g *gen) stmt(level int) {
	deep := g.depth >= g.opts.MaxDepth
	m := g.mix()
	switch c := g.pick(10); {
	case c < m.decl: // declaration
		g.declStmt(level)
	case c < m.assign: // assignment
		g.assignStmt(level)
	case c < m.ifStmt && !deep: // if
		g.depth++
		g.printf("%sif (%s) {\n", g.indent(level), g.cond())
		g.nested(level + 1)
		if g.chance(m.elseChance) {
			g.printf("%s} else {\n", g.indent(level))
			g.nested(level + 1)
		}
		g.printf("%s}\n", g.indent(level))
		g.depth--
	case c < m.loop && !deep: // counted loop
		g.loopStmt(level)
	case c < m.doWhile && !deep: // bounded do-while, with optional break/continue
		g.doWhileStmt(level)
	default: // call for effect or extra assignment
		if len(g.callable) > 0 && g.chance(0.6) {
			sig := g.callable[g.pick(len(g.callable))]
			g.printf("%s%s;\n", g.indent(level), g.call(&sig))
			return
		}
		g.assignStmt(level)
	}
}

func (g *gen) declStmt(level int) {
	if g.chance(0.6) {
		v := g.fresh("i")
		g.printf("%sint %s = %s;\n", g.indent(level), v, g.expr(false, 2))
		g.intVars = append(g.intVars, v)
	} else {
		v := g.fresh("x")
		g.printf("%sfloat %s = %s;\n", g.indent(level), v, g.expr(true, 2))
		g.floatVars = append(g.floatVars, v)
	}
}

func (g *gen) assignable(vars []string) []string {
	out := make([]string, 0, len(vars))
	for _, v := range vars {
		if !g.protected[v] {
			out = append(out, v)
		}
	}
	return out
}

// rebindStmt redefines an existing unprotected int variable from an
// expression that never reads it, so the previous value's live range
// ends at its last earlier use and a hole opens before this definition
// — the def-dead-redef pattern that splits a lifetime into segments.
// Returns false when no variable is eligible.
func (g *gen) rebindStmt(level int) bool {
	ints := g.assignable(g.intVars)
	if len(ints) == 0 {
		return false
	}
	v := ints[g.pick(len(ints))]
	src := g.literal(false)
	if len(ints) > 1 && g.chance(0.7) {
		if w := ints[g.pick(len(ints))]; w != v {
			src = w
		}
	}
	g.printf("%s%s = (%s + %s);\n", g.indent(level), v, src, g.literal(false))
	return true
}

func (g *gen) assignStmt(level int) {
	if g.opts.Shape == ShapeHoleHeavy && g.chance(0.6) && g.rebindStmt(level) {
		return
	}
	switch g.pick(5) {
	case 0: // global int
		g.printf("%sgi0 = %s;\n", g.indent(level), g.expr(false, 2))
	case 1: // int array element
		g.printf("%sgarr[%s] = %s;\n", g.indent(level), g.index(intArraySize), g.expr(false, 2))
	case 2: // float array element
		g.printf("%sgfarr[%s] = %s;\n", g.indent(level), g.index(floatArraySize), g.expr(true, 2))
	default:
		ints := g.assignable(g.intVars)
		flts := g.assignable(g.floatVars)
		if len(ints) > 0 && (g.chance(0.6) || len(flts) == 0) {
			v := ints[g.pick(len(ints))]
			g.printf("%s%s = %s;\n", g.indent(level), v, g.expr(false, 3))
		} else if len(flts) > 0 {
			v := flts[g.pick(len(flts))]
			g.printf("%s%s = %s;\n", g.indent(level), v, g.expr(true, 3))
		} else {
			g.declStmt(level)
		}
	}
}

func (g *gen) loopStmt(level int) {
	v := g.fresh("k")
	trip := 2 + g.pick(g.opts.MaxLoopTrip)
	g.printf("%sint %s = 0;\n", g.indent(level), v)
	g.printf("%sfor (%s = 0; %s < %d; %s = %s + 1) {\n", g.indent(level), v, v, trip, v, v)
	g.intVars = append(g.intVars, v)
	g.protected[v] = true
	g.depth++
	g.nested(level + 1)
	g.depth--
	g.printf("%s}\n", g.indent(level))
	delete(g.protected, v)
}

// doWhileStmt emits a strictly bounded do-while loop. With probability
// the body contains a guarded break or continue, covering the lowering
// paths the counted for loops never take.
func (g *gen) doWhileStmt(level int) {
	v := g.fresh("w")
	trip := 2 + g.pick(g.opts.MaxLoopTrip)
	g.printf("%sint %s = 0;\n", g.indent(level), v)
	g.printf("%sdo {\n", g.indent(level))
	g.intVars = append(g.intVars, v)
	g.protected[v] = true
	g.depth++
	ints, flts := len(g.intVars), len(g.floatVars)
	g.printf("%s%s = %s + 1;\n", g.indent(level+1), v, v)
	if g.chance(g.mix().breakChance) {
		if g.chance(0.5) {
			g.printf("%sif (%s == %d) { break; }\n", g.indent(level+1), v, 1+g.pick(trip))
		} else {
			g.printf("%sif (%s %% 3 == 1) { continue; }\n", g.indent(level+1), v)
		}
	}
	g.block(level + 1)
	g.intVars = g.intVars[:ints]
	g.floatVars = g.floatVars[:flts]
	g.depth--
	g.printf("%s} while (%s < %d);\n", g.indent(level), v, trip)
	delete(g.protected, v)
}

// nested emits a block whose declarations go out of scope at its
// closing brace: the generator's visible-variable lists are restored
// afterwards so later statements cannot reference dead names.
func (g *gen) nested(level int) {
	ints, flts := len(g.intVars), len(g.floatVars)
	g.block(level)
	g.intVars = g.intVars[:ints]
	g.floatVars = g.floatVars[:flts]
}

// index produces a guaranteed-in-range index expression.
func (g *gen) index(size int) string {
	return fmt.Sprintf("((%s) %% %d + %d) %% %d", g.expr(false, 1), size, size, size)
}

func (g *gen) literal(float bool) string {
	if float {
		return fmt.Sprintf("%d.%d", g.pick(20), g.pick(10))
	}
	return fmt.Sprintf("%d", g.pick(40))
}

// cond produces an int-typed condition.
func (g *gen) cond() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	op := ops[g.pick(len(ops))]
	if g.chance(0.3) {
		return fmt.Sprintf("%s %s %s", g.expr(true, 1), op, g.expr(true, 1))
	}
	c := fmt.Sprintf("%s %s %s", g.expr(false, 1), op, g.expr(false, 1))
	if g.chance(0.3) {
		junct := "&&"
		if g.chance(0.5) {
			junct = "||"
		}
		c = fmt.Sprintf("(%s) %s (%s)", c, junct, g.cond2())
	}
	return c
}

func (g *gen) cond2() string {
	ops := []string{"<", ">", "=="}
	return fmt.Sprintf("%s %s %s", g.expr(false, 1), ops[g.pick(3)], g.expr(false, 1))
}

// expr produces an expression of the requested type with bounded depth.
func (g *gen) expr(float bool, depth int) string {
	if depth <= 0 {
		return g.atom(float)
	}
	switch g.pick(8) {
	case 0, 1, 2:
		op := []string{"+", "-", "*"}[g.pick(3)]
		return fmt.Sprintf("(%s %s %s)", g.expr(float, depth-1), op, g.expr(float, depth-1))
	case 3:
		// Safe division/modulo by a positive literal.
		if float {
			return fmt.Sprintf("(%s / %d.5)", g.expr(true, depth-1), g.pick(7)+1)
		}
		if g.chance(0.5) {
			return fmt.Sprintf("(%s / %d)", g.expr(false, depth-1), g.pick(9)+1)
		}
		return fmt.Sprintf("(%s %% %d)", g.expr(false, depth-1), g.pick(9)+1)
	case 4:
		if float {
			return fmt.Sprintf("float(%s)", g.expr(false, depth-1))
		}
		return fmt.Sprintf("int(%s)", g.expr(true, depth-1))
	case 5:
		return fmt.Sprintf("(-(%s))", g.expr(float, depth-1))
	case 6:
		if len(g.callable) > 0 || g.self != nil {
			return g.callExpr(float, depth)
		}
		return g.atom(float)
	default:
		return g.atom(float)
	}
}

func (g *gen) callExpr(float bool, depth int) string {
	// Guarded self-recursion gets priority occasionally. Self-calls
	// are only emitted outside loops and at most twice per function, so
	// the recursion tree stays near fib-sized instead of exploding.
	if g.self != nil && g.depth == 0 && g.selfCalls < 2 && g.chance(0.4) {
		g.selfCalls++
		call := g.selfCall()
		return g.coerce(call, g.self.retFloat, float)
	}
	if len(g.callable) == 0 {
		return g.atom(float)
	}
	sig := g.callable[g.pick(len(g.callable))]
	return g.coerce(g.call(&sig), sig.retFloat, float)
}

func (g *gen) coerce(e string, isFloat, wantFloat bool) string {
	if isFloat == wantFloat {
		return e
	}
	if wantFloat {
		return fmt.Sprintf("float(%s)", e)
	}
	return fmt.Sprintf("int(%s)", e)
}

// call builds a call expression with in-range literal-ish arguments.
func (g *gen) call(sig *funcSig) string {
	args := make([]string, 0, sig.intParams+sig.fltParams)
	for i := 0; i < sig.intParams; i++ {
		args = append(args, g.expr(false, 1))
	}
	for i := 0; i < sig.fltParams; i++ {
		args = append(args, g.expr(true, 1))
	}
	return fmt.Sprintf("%s(%s)", sig.name, strings.Join(args, ", "))
}

// selfCall recurses with a strictly smaller nonnegative first argument.
func (g *gen) selfCall() string {
	sig := g.self
	args := make([]string, 0, sig.intParams+sig.fltParams)
	args = append(args, "(p0 - 1)")
	for i := 1; i < sig.intParams; i++ {
		args = append(args, g.expr(false, 1))
	}
	for i := 0; i < sig.fltParams; i++ {
		args = append(args, g.expr(true, 1))
	}
	return fmt.Sprintf("%s(%s)", sig.name, strings.Join(args, ", "))
}

func (g *gen) atom(float bool) string {
	if float {
		switch {
		case len(g.floatVars) > 0 && g.chance(0.5):
			return g.floatVars[g.pick(len(g.floatVars))]
		case g.chance(0.25):
			return "gf0"
		case g.chance(0.3):
			return fmt.Sprintf("gfarr[%s]", g.index(floatArraySize))
		default:
			return g.literal(true)
		}
	}
	switch {
	case len(g.intVars) > 0 && g.chance(0.5):
		return g.intVars[g.pick(len(g.intVars))]
	case g.chance(0.2):
		return "gi0"
	case g.chance(0.2):
		return "gi1"
	case g.chance(0.3):
		return fmt.Sprintf("garr[%s]", g.index(intArraySize))
	default:
		return g.literal(false)
	}
}
