package randprog

import "encoding/json"

// corpusRequest mirrors the allocation daemon's request wire shape
// (internal/server.Request). It is redeclared here rather than
// imported so the generator stays dependency-free; the server's tests
// pin the two shapes against each other.
type corpusRequest struct {
	Source   string       `json:"source"`
	Config   corpusConfig `json:"config"`
	Strategy string       `json:"strategy"`
}

type corpusConfig struct {
	RI int `json:"ri"`
	RF int `json:"rf"`
	EI int `json:"ei"`
	EF int `json:"ef"`
}

// corpusConfigs is the register-pressure rotation of the corpus: tight
// (heavy spilling), the paper's headline split, caller-save only, and
// roomy.
var corpusConfigs = []corpusConfig{
	{RI: 6, RF: 4, EI: 0, EF: 0},
	{RI: 8, RF: 6, EI: 4, EF: 4},
	{RI: 10, RF: 6, EI: 0, EF: 0},
	{RI: 12, RF: 8, EI: 8, EF: 6},
}

// corpusStrategies rotates the allocator families the daemon serves:
// the paper's improved coloring, the graph-free linear scan, and the
// scan-first hybrid.
var corpusStrategies = []string{"improved", "linscan", "hybrid"}

// Corpus returns n serialized allocation-request bodies, ready to POST
// to the daemon's /allocate endpoint. Request i carries the program of
// seed+i under ForSeed's rotating shape, with the register
// configuration and strategy rotating independently. The mapping is
// pure: the same (seed, n) always yields the same bytes, so load runs
// are reproducible and a corpus can be replayed against two builds.
func Corpus(seed int64, n int) [][]byte {
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		s := seed + int64(i)
		req := corpusRequest{
			Source:   Generate(s, ForSeed(s)),
			Config:   corpusConfigs[i%len(corpusConfigs)],
			Strategy: corpusStrategies[i%len(corpusStrategies)],
		}
		body, err := json.Marshal(req)
		if err != nil {
			// Marshal of a plain struct of strings and ints cannot fail.
			panic(err)
		}
		bodies[i] = body
	}
	return bodies
}
