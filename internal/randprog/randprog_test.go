package randprog_test

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/callgraph"
	"repro/internal/freq"
	"repro/internal/interp"
	"repro/internal/randprog"
)

// TestGeneratedProgramsCompile checks that every generated program is
// well-formed MC.
func TestGeneratedProgramsCompile(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		src := randprog.Generate(seed, randprog.DefaultOptions())
		if _, err := callcost.Compile(src); err != nil {
			t.Fatalf("seed %d does not compile: %v\n%s", seed, err, src)
		}
	}
}

// TestGeneratedProgramsTerminate checks the termination discipline
// (bounded loops, guarded recursion) holds in practice: no generated
// program may trap. Long-but-finite programs (nested call-in-loop
// chains are multiplicative) are allowed to hit the step budget and
// are skipped; most seeds must stay cheap.
func TestGeneratedProgramsTerminate(t *testing.T) {
	expensive := 0
	const seeds = 40
	for seed := int64(0); seed < seeds; seed++ {
		src := randprog.Generate(seed, randprog.DefaultOptions())
		prog, err := callcost.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_, err = interp.Run(prog.IR, interp.Options{MaxSteps: 3_000_000})
		if err == interp.ErrStepLimit {
			expensive++
			continue
		}
		if err != nil {
			t.Errorf("seed %d failed to run: %v\n%s", seed, err, src)
		}
	}
	if expensive > seeds/2 {
		t.Errorf("%d of %d seeds exceeded the step budget; generator bounds are too loose", expensive, seeds)
	}
}

// TestShapeProfiles checks that every shape profile generates
// compilable, terminating programs and actually skews the control-flow
// mix the way its name promises.
func TestShapeProfiles(t *testing.T) {
	profiles := map[string]randprog.Options{
		"default":       randprog.DefaultOptions(),
		"ebb-heavy":     randprog.EBBHeavyOptions(),
		"critical-edge": randprog.CriticalEdgeOptions(),
		"hole-heavy":    randprog.HoleHeavyOptions(),
		"call-dag":      randprog.CallDAGOptions(),
	}
	loops := map[string]int{}
	branches := map[string]int{}
	for name, opts := range profiles {
		for seed := int64(0); seed < 20; seed++ {
			src := randprog.Generate(seed, opts)
			prog, err := callcost.Compile(src)
			if err != nil {
				t.Fatalf("%s seed %d does not compile: %v\n%s", name, seed, err, src)
			}
			if _, err := interp.Run(prog.IR, interp.Options{MaxSteps: 3_000_000}); err != nil && err != interp.ErrStepLimit {
				t.Fatalf("%s seed %d failed to run: %v", name, seed, err)
			}
			loops[name] += strings.Count(src, "for (") + strings.Count(src, "do {")
			branches[name] += strings.Count(src, "if (")
		}
	}
	if loops["ebb-heavy"] >= loops["critical-edge"] {
		t.Errorf("ebb-heavy generated %d loops, critical-edge %d; expected fewer",
			loops["ebb-heavy"], loops["critical-edge"])
	}
	if branches["ebb-heavy"] <= branches["critical-edge"] {
		t.Errorf("ebb-heavy generated %d branches, critical-edge %d; expected more",
			branches["ebb-heavy"], branches["critical-edge"])
	}
	// Hole-heavy is straight-line-dominated: less control flow than any
	// other profile.
	for _, other := range []string{"default", "ebb-heavy", "critical-edge"} {
		if h, o := loops["hole-heavy"]+branches["hole-heavy"], loops[other]+branches[other]; h >= o {
			t.Errorf("hole-heavy generated %d control statements, %s %d; expected fewer", h, other, o)
		}
	}
}

// TestDifferentialAllStrategies is the central property test of the
// whole repository: for random programs, every allocator at every
// tested register configuration must preserve the reference semantics
// when the allocated code is executed on the machine-level interpreter
// (which scrambles caller-save registers across calls), and its
// analytic overhead must match the measured overhead.
func TestDifferentialAllStrategies(t *testing.T) {
	seeds := int64(25)
	if testing.Short() {
		seeds = 8
	}
	strategies := map[string]callcost.Strategy{
		"chaitin":    callcost.Chaitin(),
		"optimistic": callcost.Optimistic(),
		"improved":   callcost.ImprovedAll(),
		"improved-firstuse": func() callcost.Strategy {
			s := callcost.ImprovedAll()
			s.CalleeModel = 1 // FirstUseCost
			return s
		}(),
		"priority":     callcost.Priority(callcost.PrioritySorting),
		"priority-ru":  callcost.Priority(callcost.PriorityRemovingUnconstrained),
		"priority-su":  callcost.Priority(callcost.PrioritySortingUnconstrained),
		"cbh":          callcost.CBH(),
		"improved-opt": callcost.ImprovedOptimistic(),
	}
	configs := []callcost.Config{
		callcost.NewConfig(6, 4, 0, 0),
		callcost.NewConfig(6, 4, 3, 3),
		callcost.NewConfig(10, 8, 6, 6),
		callcost.FullMachine(),
	}
	for seed := int64(0); seed < seeds; seed++ {
		// Rotate through all shape profiles (including hole-heavy, which
		// exercises the scan tier's segment binpacking) rather than
		// pinning the balanced mix.
		src := randprog.Generate(seed, randprog.ForSeed(seed))
		prog, err := callcost.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		refRes, err := interp.Run(prog.IR, interp.Options{MaxSteps: 3_000_000, Profile: true})
		if err == interp.ErrStepLimit {
			continue // overly expensive program; skip this seed
		}
		if err != nil {
			t.Fatalf("seed %d: run: %v\n%s", seed, err, src)
		}
		ref := refRes
		pf := freq.FromProfile(prog.IR, refRes.Profile)
		for name, strat := range strategies {
			for _, cfg := range configs {
				alloc, err := prog.Allocate(strat, cfg, pf)
				if err != nil {
					t.Fatalf("seed %d: %s at %s: %v\n%s", seed, name, cfg, err, src)
				}
				res, err := alloc.Execute()
				if err != nil {
					t.Fatalf("seed %d: %s at %s: execute: %v\n%s", seed, name, cfg, err, src)
				}
				if res.RetInt != ref.RetInt {
					t.Fatalf("seed %d: %s at %s: returned %d, reference %d\n%s",
						seed, name, cfg, res.RetInt, ref.RetInt, src)
				}
				analytic := alloc.Overhead(pf).Total()
				measured, _, err := alloc.MeasuredOverhead()
				if err != nil {
					t.Fatalf("seed %d: %s at %s: measure: %v", seed, name, cfg, err)
				}
				if diff := analytic - measured.Total(); diff > 1e-6*analytic+1e-6 || -diff > 1e-6*analytic+1e-6 {
					t.Fatalf("seed %d: %s at %s: analytic overhead %.3f != measured %.3f\n%s",
						seed, name, cfg, analytic, measured.Total(), src)
				}
			}
		}
	}
}

// TestDeterminism: the same seed yields the same source, and the same
// source yields identical allocations and overhead.
func TestDeterminism(t *testing.T) {
	a := randprog.Generate(7, randprog.DefaultOptions())
	b := randprog.Generate(7, randprog.DefaultOptions())
	if a != b {
		t.Fatal("generator is not deterministic")
	}
	prog1, err := callcost.Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := callcost.Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	pf1, _, err := prog1.Profile()
	if err != nil {
		t.Skip("seed too expensive")
	}
	pf2, _, _ := prog2.Profile()
	cfg := callcost.NewConfig(8, 6, 4, 4)
	a1, err := prog1.Allocate(callcost.ImprovedAll(), cfg, pf1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := prog2.Allocate(callcost.ImprovedAll(), cfg, pf2)
	if err != nil {
		t.Fatal(err)
	}
	if o1, o2 := a1.Overhead(pf1), a2.Overhead(pf2); o1 != o2 {
		t.Fatalf("allocation not deterministic: %v vs %v", o1, o2)
	}
}

// TestCallDAGShape checks the structural guarantees of ShapeCallDAG:
// every generated program's condensed call graph contains the diamond
// (f1 and f2 both reached from f3, both reaching f0) and the mutually
// recursive pair as one two-member component — the skeleton the batch
// scheduler's SCC handling and wave depth are fuzzed against.
func TestCallDAGShape(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		src := randprog.Generate(seed, randprog.CallDAGOptions())
		prog, err := callcost.Compile(src)
		if err != nil {
			t.Fatalf("seed %d does not compile: %v\n%s", seed, err, src)
		}
		g := callgraph.Build(prog.IR)
		r0, r1 := g.SCCOf("r0"), g.SCCOf("r1")
		if r0 < 0 || r0 != r1 {
			t.Fatalf("seed %d: r0/r1 components %d/%d, want one shared SCC", seed, r0, r1)
		}
		if !g.Recursive(r0) {
			t.Fatalf("seed %d: the r0/r1 component is not marked recursive", seed)
		}
		for _, pair := range [][2]string{{"f1", "f0"}, {"f2", "f0"}, {"f3", "f1"}, {"f3", "f2"}} {
			callees, _ := g.Callees(pair[0])
			found := false
			for _, c := range callees {
				if c.Name == pair[1] {
					found = true
				}
			}
			if !found {
				t.Fatalf("seed %d: diamond edge %s→%s missing", seed, pair[0], pair[1])
			}
		}
		if _, err := interp.Run(prog.IR, interp.Options{MaxSteps: 3_000_000}); err != nil && err != interp.ErrStepLimit {
			t.Fatalf("seed %d failed to run: %v", seed, err)
		}
	}
}
