package priority_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/compile"
	"repro/internal/freq"
	"repro/internal/interference"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/liverange"
	"repro/internal/machine"
	"repro/internal/priority"
	"repro/internal/regalloc"
)

func context(t *testing.T, src, fn string, config machine.Config, class ir.Class) *regalloc.ClassContext {
	t.Helper()
	prog, err := compile.Source(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := interp.Run(prog, interp.Options{Profile: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	pf := freq.FromProfile(prog, res.Profile)
	f := prog.FuncByName[fn]
	g := cfg.New(f)
	live := liveness.Compute(f, g)
	var graphs [ir.NumClasses]*interference.Graph
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		graphs[c] = interference.Build(f, live, c)
		graphs[c].Coalesce(false, config.Total(c))
	}
	ranges := liverange.Analyze(f, live, &graphs, pf.ByFunc[fn], nil)
	return &regalloc.ClassContext{
		Fn: f, Class: class, Graph: graphs[class], Ranges: ranges, Config: config,
	}
}

const pressureSrc = `
int f(int a, int b, int c) {
	int d = a + b;
	int e = b + c;
	int g = a + c;
	int h = d + e;
	int i = e + g;
	int j = d + g;
	return h + i + j + a + b + c + d + e + g;
}
int main() {
	int k; int s = 0;
	for (k = 0; k < 40; k = k + 1) { s = s + f(k, k + 1, k + 2); }
	return s;
}`

func TestOrderingNames(t *testing.T) {
	cases := map[priority.Ordering]string{
		priority.Sorting:               "priority[sorting]",
		priority.RemovingUnconstrained: "priority[removing-unconstrained]",
		priority.SortingUnconstrained:  "priority[sorting-unconstrained]",
	}
	for o, want := range cases {
		if got := (&priority.Chow{Ordering: o}).Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestEveryOrderingProducesCompleteAllocation(t *testing.T) {
	for _, o := range []priority.Ordering{
		priority.Sorting, priority.RemovingUnconstrained, priority.SortingUnconstrained,
	} {
		for _, cfgRegs := range []machine.Config{machine.NewConfig(6, 4, 0, 0), machine.NewConfig(8, 6, 4, 4)} {
			ctx := context(t, pressureSrc, "f", cfgRegs, ir.ClassInt)
			strat := &priority.Chow{Ordering: o}
			res := strat.Allocate(ctx)
			for _, n := range ctx.Nodes() {
				_, colored := res.Colors[n]
				spilled := false
				for _, s := range res.Spilled {
					if s == n {
						spilled = true
					}
				}
				if colored == spilled {
					t.Errorf("%s at %s: node v%d not exactly-once accounted", o, cfgRegs, n)
				}
			}
			// No two interfering nodes share a color.
			for a, ca := range res.Colors {
				for b, cb := range res.Colors {
					if a < b && ca == cb && ctx.Graph.Interfere(a, b) {
						t.Errorf("%s: v%d and v%d interfere but share %d", o, a, b, ca)
					}
				}
			}
		}
	}
}

func TestHighPriorityRangesGetRegisters(t *testing.T) {
	// Under pressure, the spilled ranges must have lower priority
	// (benefit/size) than the retained ones — the defining property of
	// priority-based coloring with the Sorting ordering.
	ctx := context(t, pressureSrc, "f", machine.NewConfig(6, 4, 0, 0), ir.ClassInt)
	strat := &priority.Chow{Ordering: priority.Sorting}
	res := strat.Allocate(ctx)
	if len(res.Spilled) == 0 {
		t.Skip("no spills at this pressure")
	}
	prio := func(rep ir.Reg) float64 {
		rg := ctx.RangeOf(rep)
		size := rg.Size
		if size < 1 {
			size = 1
		}
		b := rg.BenefitCaller
		if rg.BenefitCallee > b {
			b = rg.BenefitCallee
		}
		return b / float64(size)
	}
	maxSpilled := -1e300
	for _, s := range res.Spilled {
		if p := prio(s); p > maxSpilled {
			maxSpilled = p
		}
	}
	// At least one colored range must outrank every spilled one; in the
	// sorted ordering the top-priority range is colored first and can
	// never be spilled while a register remains.
	outranked := false
	for rep := range res.Colors {
		if prio(rep) >= maxSpilled {
			outranked = true
		}
	}
	if !outranked {
		t.Error("every colored range has lower priority than a spilled one")
	}
}

func TestNegativePriorityStaysInMemory(t *testing.T) {
	// A range crossing a hot call with few references: keeping it in
	// any register costs more than memory, so priority coloring leaves
	// it unallocated.
	src := `
int helper(int v) { return v % 7; }
int hot(int a) {
	int rare = a * 31;
	int i; int acc = 0;
	for (i = 0; i < 60; i = i + 1) { acc = acc + helper(i); }
	return acc + rare;
}
int main() { return hot(5); }`
	ctx := context(t, src, "hot", machine.NewConfig(6, 4, 0, 0), ir.ClassInt)
	strat := &priority.Chow{Ordering: priority.Sorting}
	res := strat.Allocate(ctx)
	var rare ir.Reg = ir.NoReg
	for r := 0; r < ctx.Fn.NumRegs(); r++ {
		if ctx.Fn.RegName(ir.Reg(r)) == "rare" {
			rare = ctx.Graph.Find(ir.Reg(r))
		}
	}
	found := false
	for _, s := range res.Spilled {
		if s == rare {
			found = true
		}
	}
	if !found {
		t.Error("negative-priority range was given a register")
	}
}
