// Package priority implements Chow's priority-based coloring as the
// paper evaluates it (§9): without live-range splitting, so that a live
// range that cannot be colored is spilled.
//
// The priority function is the paper's (§9.1):
//
//	priority(lr) = max(benefit_caller(lr), benefit_callee(lr)) / size(lr)
//
// where size is the number of basic blocks the range spans: the bigger
// the savings the more deserving of a register, the bigger the range
// the more register pressure it causes. Ranges with negative priority
// are not worth a register at all and stay in memory.
//
// Three color orderings are provided (§9.1): removing unconstrained
// ranges (Chow's original), sorting the unconstrained ranges too, and
// sorting everything purely by priority. The paper picks sorting, which
// behaves best on ear and espresso.
package priority

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/regalloc"
)

// Ordering selects how the color stack is built (§9.1).
type Ordering int

const (
	// Sorting pushes every live range onto C in pure priority order
	// (the paper's choice).
	Sorting Ordering = iota
	// RemovingUnconstrained removes unconstrained ranges first (they
	// are pushed deepest), then pushes the rest least-priority first.
	RemovingUnconstrained
	// SortingUnconstrained is RemovingUnconstrained with the
	// unconstrained ranges also pushed in priority order.
	SortingUnconstrained
)

// String names the ordering.
func (o Ordering) String() string {
	switch o {
	case Sorting:
		return "sorting"
	case RemovingUnconstrained:
		return "removing-unconstrained"
	case SortingUnconstrained:
		return "sorting-unconstrained"
	}
	return "unknown"
}

// Chow is the priority-based strategy.
type Chow struct {
	Ordering Ordering
}

// Name implements regalloc.Strategy.
func (c *Chow) Name() string { return "priority[" + c.Ordering.String() + "]" }

// priorityOf computes the priority function.
func priorityOf(ctx *regalloc.ClassContext, rep ir.Reg) float64 {
	rg := ctx.RangeOf(rep)
	if rg == nil {
		return 0
	}
	if rg.NoSpill {
		// Spill temporaries must get registers; give them top priority
		// so they are assigned while the whole register file is free.
		return 1e300
	}
	size := rg.Size
	if size < 1 {
		size = 1
	}
	// The benefit of a register kind that does not exist in this
	// configuration cannot be realized.
	b := rg.BenefitCaller
	if ctx.Config.Callee[ctx.Class] > 0 && rg.BenefitCallee > b {
		b = rg.BenefitCallee
	}
	return b / float64(size)
}

// Allocate implements regalloc.Strategy.
func (c *Chow) Allocate(ctx *regalloc.ClassContext) *regalloc.ClassResult {
	res := regalloc.NewClassResult()
	nodes := ctx.Nodes()
	prio := make(map[ir.Reg]float64, len(nodes))
	for _, r := range nodes {
		prio[r] = priorityOf(ctx, r)
	}
	byPriorityAsc := func(rs []ir.Reg) {
		sort.SliceStable(rs, func(i, j int) bool {
			if prio[rs[i]] != prio[rs[j]] {
				return prio[rs[i]] < prio[rs[j]]
			}
			return rs[i] < rs[j]
		})
	}

	stack := &regalloc.ColorStack{}
	switch c.Ordering {
	case Sorting:
		ordered := append([]ir.Reg(nil), nodes...)
		byPriorityAsc(ordered)
		for _, r := range ordered {
			stack.Push(r)
		}
	case RemovingUnconstrained, SortingUnconstrained:
		unconstrained, constrained := splitUnconstrained(ctx, nodes)
		if c.Ordering == SortingUnconstrained {
			byPriorityAsc(unconstrained)
		}
		// Unconstrained first (deepest — they can always find some
		// register), then the constrained core least-priority first so
		// the highest priority is on top.
		for _, r := range unconstrained {
			stack.Push(r)
		}
		byPriorityAsc(constrained)
		for _, r := range constrained {
			stack.Push(r)
		}
	}

	for {
		rep, ok := stack.Pop()
		if !ok {
			break
		}
		rg := ctx.RangeOf(rep)
		// A range whose best benefit is negative is not worth a
		// register (Chow allocates only profitable ranges).
		if rg != nil && !rg.NoSpill && prio[rep] < 0 {
			res.Spilled = append(res.Spilled, rep)
			ctx.EmitSpill(rep, obs.ReasonNegativePriority, prio[rep])
			continue
		}
		free := ctx.FreeColors(res, rep)
		if len(free) == 0 {
			if rg != nil && rg.NoSpill {
				// Should not happen with realistic configurations; keep
				// the invariant that unspillable temps always get a
				// register by stealing the first bank register. The
				// validator would flag a real conflict.
				ctx.Assign(res, rep, machine.PhysReg(0))
				ctx.EmitAssign(rep, res.Colors[rep], false)
				continue
			}
			res.Spilled = append(res.Spilled, rep)
			ctx.EmitSpill(rep, obs.ReasonNoColor, prio[rep])
			continue
		}
		caller, callee := ctx.SplitFree(free)
		preferCallee := rg != nil && rg.PrefersCallee()
		switch {
		case preferCallee && len(callee) > 0:
			ctx.Assign(res, rep, callee[0])
		case !preferCallee && len(caller) > 0:
			ctx.Assign(res, rep, caller[0])
		case len(caller) > 0:
			ctx.Assign(res, rep, caller[0])
		default:
			ctx.Assign(res, rep, callee[0])
		}
		ctx.EmitAssign(rep, res.Colors[rep], preferCallee)
	}
	return res
}

// splitUnconstrained partitions nodes by iterated unconstrained removal
// (degree < N in the progressively reduced graph), mirroring
// simplification: everything removable that way can always be colored.
func splitUnconstrained(ctx *regalloc.ClassContext, nodes []ir.Reg) (unconstrained, constrained []ir.Reg) {
	n := ctx.N()
	deg := make(map[ir.Reg]int, len(nodes))
	inSet := make(map[ir.Reg]bool, len(nodes))
	for _, r := range nodes {
		inSet[r] = true
	}
	for _, r := range nodes {
		d := 0
		ctx.Graph.Neighbors(r, func(nb ir.Reg) {
			if inSet[nb] {
				d++
			}
		})
		deg[r] = d
	}
	removed := make(map[ir.Reg]bool, len(nodes))
	for {
		changed := false
		for _, r := range nodes {
			if removed[r] || deg[r] >= n {
				continue
			}
			removed[r] = true
			unconstrained = append(unconstrained, r)
			ctx.Graph.Neighbors(r, func(nb ir.Reg) {
				if inSet[nb] && !removed[nb] {
					deg[nb]--
				}
			})
			changed = true
		}
		if !changed {
			break
		}
	}
	for _, r := range nodes {
		if !removed[r] {
			constrained = append(constrained, r)
		}
	}
	return unconstrained, constrained
}
