package server

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// wideBatch builds a batch of identical-cost allocation requests that
// bypass the result cache, so every item pays the full path.
func wideBatch(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			Source:   testSource,
			Config:   ConfigRequest{RI: 8, RF: 6, EI: 4, EF: 4},
			Strategy: "improved",
			NoCache:  true,
		}
	}
	return reqs
}

// timeBatch posts one /batch and returns its wall time and body.
func timeBatch(t *testing.T, url string, reqs []Request) (time.Duration, []byte) {
	t.Helper()
	t0 := time.Now()
	code, body := post(t, url+"/batch", reqs)
	elapsed := time.Since(t0)
	if code != 200 {
		t.Fatalf("batch status %d: %s", code, body)
	}
	return elapsed, body
}

// TestBatchUsesFreeWorkers is the regression gate for batch
// parallelism: a /batch on a 2-worker pool must finish a wide batch of
// uniform items roughly twice as fast as on a 1-worker pool, because
// the batch's own worker enlists the idle one through the pool's
// assist side door. The serialization bug this guards against — every
// item queuing behind the batch's single admission slot — shows up as
// a ratio near 1.
//
// Per-item cost is pinned by the batchItemHook test seam (a sleep), so
// the overlap is visible on any runner, including single-CPU machines
// where CPU-bound work cannot speed up no matter how many workers run.
// The two responses must also be byte-identical: helpers change wall
// time, never bytes.
func TestBatchUsesFreeWorkers(t *testing.T) {
	const itemCost = 40 * time.Millisecond
	batchItemHook = func() { time.Sleep(itemCost) }
	defer func() { batchItemHook = nil }()

	reqs := wideBatch(8)
	_, one := newTestServer(t, Options{Workers: 1})
	_, two := newTestServer(t, Options{Workers: 2})

	seqElapsed, seqBody := timeBatch(t, one.URL, reqs)
	parElapsed, parBody := timeBatch(t, two.URL, reqs)

	if !bytes.Equal(seqBody, parBody) {
		t.Fatalf("batch response differs between 1-worker and 2-worker pools")
	}
	var items []BatchItem
	if err := json.Unmarshal(parBody, &items); err != nil {
		t.Fatal(err)
	}
	if len(items) != len(reqs) {
		t.Fatalf("got %d items, want %d", len(items), len(reqs))
	}
	for i, it := range items {
		if it.Status != 200 {
			t.Fatalf("item %d: status %d (%s)", i, it.Status, it.Error)
		}
	}

	speedup := float64(seqElapsed) / float64(parElapsed)
	t.Logf("wide batch: 1 worker %v, 2 workers %v, speedup %.2fx", seqElapsed, parElapsed, speedup)
	if speedup < 1.5 {
		t.Errorf("2-worker batch speedup %.2fx, want >= 1.5x (batch items serializing on one worker?)", speedup)
	}
	// The single-worker pool must NOT overlap items: its only worker is
	// the batch itself, so wall time is at least the serial item cost.
	if seqElapsed < time.Duration(len(reqs))*itemCost {
		t.Errorf("1-worker batch finished in %v, below the serial floor %v — admission unit leaked extra workers",
			seqElapsed, time.Duration(len(reqs))*itemCost)
	}
}
