package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// LoadStats is the outcome tally of one load run.
type LoadStats struct {
	// Requests is the number of requests sent.
	Requests int
	// OK counts 200s; Shed counts 429s (backpressure working as
	// designed). Everything else lands in Other by status code — any
	// entry there fails the load gate.
	OK    int
	Shed  int
	Other map[int]int
	// CacheHits and CacheMisses sum the per-response cache counters of
	// the 200s.
	CacheHits   int
	CacheMisses int
	// Verified counts responses byte-checked against the in-process
	// oracle.
	Verified int
	// Elapsed is the wall time of the run.
	Elapsed time.Duration
}

// HitRatio returns the cache hit share of the served functions.
func (s *LoadStats) HitRatio() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

func (s *LoadStats) String() string {
	return fmt.Sprintf("%d requests in %v: %d ok, %d shed (429), %d other; cache %d/%d (%.1f%% hits); %d verified",
		s.Requests, s.Elapsed.Round(time.Millisecond), s.OK, s.Shed, other(s.Other),
		s.CacheHits, s.CacheHits+s.CacheMisses, 100*s.HitRatio(), s.Verified)
}

func other(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// RunLoad fires bodies at baseURL's /allocate endpoint from
// concurrency goroutines and tallies the outcomes. When verifyEvery is
// n > 0, every n-th successful response is byte-compared against the
// in-process oracle (ReferenceResult) — the load generator doubles as
// a differential checker. The first verification mismatch or transport
// error aborts the run.
func RunLoad(baseURL string, bodies [][]byte, concurrency, verifyEvery int) (*LoadStats, error) {
	if concurrency <= 0 {
		concurrency = 1
	}
	client := &http.Client{
		Timeout: 120 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        concurrency,
			MaxIdleConnsPerHost: concurrency,
		},
	}
	stats := &LoadStats{Other: make(map[int]int)}
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	var next int64
	var nextMu sync.Mutex
	claim := func() int {
		nextMu.Lock()
		defer nextMu.Unlock()
		i := int(next)
		next++
		if i >= len(bodies) {
			return -1
		}
		return i
	}

	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				aborted := firstErr != nil
				mu.Unlock()
				if aborted {
					return
				}
				i := claim()
				if i < 0 {
					return
				}
				resp, err := client.Post(baseURL+"/allocate", "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					fail(fmt.Errorf("request %d: %w", i, err))
					return
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					fail(fmt.Errorf("request %d: read response: %w", i, err))
					return
				}
				mu.Lock()
				stats.Requests++
				switch resp.StatusCode {
				case http.StatusOK:
					stats.OK++
				case http.StatusTooManyRequests:
					stats.Shed++
				default:
					stats.Other[resp.StatusCode]++
				}
				mu.Unlock()
				if resp.StatusCode != http.StatusOK {
					continue
				}
				var r Response
				if err := json.Unmarshal(raw, &r); err != nil {
					fail(fmt.Errorf("request %d: bad response JSON: %w", i, err))
					return
				}
				mu.Lock()
				stats.CacheHits += r.CacheHits
				stats.CacheMisses += r.CacheMisses
				verify := verifyEvery > 0 && i%verifyEvery == 0
				mu.Unlock()
				if verify {
					if err := verifyAgainstOracle(bodies[i], &r); err != nil {
						fail(fmt.Errorf("request %d: %w", i, err))
						return
					}
					mu.Lock()
					stats.Verified++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	stats.Elapsed = time.Since(t0)
	if firstErr != nil {
		return stats, firstErr
	}
	return stats, nil
}

// RunBatchLoad drives the same corpus through the /batch endpoint:
// the bodies are grouped into arrays of batchSize and each group is
// POSTed as one batch from concurrency goroutines. Per-item outcomes
// tally into the same LoadStats shape (Requests counts items, not
// HTTP posts; a shed batch sheds all of its items). Every
// verifyEvery-th item of the corpus — by its global index, so the
// sample is independent of the grouping — is byte-compared against
// the in-process oracle, exactly like RunLoad's sampling.
func RunBatchLoad(baseURL string, bodies [][]byte, batchSize, concurrency, verifyEvery int) (*LoadStats, error) {
	if batchSize <= 0 {
		batchSize = 1
	}
	if concurrency <= 0 {
		concurrency = 1
	}
	type group struct {
		start int
		body  []byte
	}
	var groups []group
	for start := 0; start < len(bodies); start += batchSize {
		end := start + batchSize
		if end > len(bodies) {
			end = len(bodies)
		}
		// Each corpus body is a JSON object; a batch request is the
		// JSON array of them.
		var buf bytes.Buffer
		buf.WriteByte('[')
		for i := start; i < end; i++ {
			if i > start {
				buf.WriteByte(',')
			}
			buf.Write(bodies[i])
		}
		buf.WriteByte(']')
		groups = append(groups, group{start: start, body: buf.Bytes()})
	}

	client := &http.Client{
		Timeout: 120 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        concurrency,
			MaxIdleConnsPerHost: concurrency,
		},
	}
	stats := &LoadStats{Other: make(map[int]int)}
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	var next int64
	var nextMu sync.Mutex
	claim := func() int {
		nextMu.Lock()
		defer nextMu.Unlock()
		i := int(next)
		next++
		if i >= len(groups) {
			return -1
		}
		return i
	}

	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				aborted := firstErr != nil
				mu.Unlock()
				if aborted {
					return
				}
				gi := claim()
				if gi < 0 {
					return
				}
				g := groups[gi]
				nItems := len(bodies) - g.start
				if nItems > batchSize {
					nItems = batchSize
				}
				resp, err := client.Post(baseURL+"/batch", "application/json", bytes.NewReader(g.body))
				if err != nil {
					fail(fmt.Errorf("batch %d: %w", gi, err))
					return
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					fail(fmt.Errorf("batch %d: read response: %w", gi, err))
					return
				}
				if resp.StatusCode != http.StatusOK {
					// The whole batch was refused at the edge (shed or
					// error) — every item shares the outcome.
					mu.Lock()
					stats.Requests += nItems
					if resp.StatusCode == http.StatusTooManyRequests {
						stats.Shed += nItems
					} else {
						stats.Other[resp.StatusCode] += nItems
					}
					mu.Unlock()
					continue
				}
				var items []BatchItem
				if err := json.Unmarshal(raw, &items); err != nil {
					fail(fmt.Errorf("batch %d: bad response JSON: %w", gi, err))
					return
				}
				if len(items) != nItems {
					fail(fmt.Errorf("batch %d: %d items for %d requests", gi, len(items), nItems))
					return
				}
				for j, item := range items {
					idx := g.start + j
					mu.Lock()
					stats.Requests++
					switch item.Status {
					case http.StatusOK:
						stats.OK++
					case http.StatusTooManyRequests:
						stats.Shed++
					default:
						stats.Other[item.Status]++
					}
					mu.Unlock()
					if item.Status != http.StatusOK || item.Response == nil {
						continue
					}
					mu.Lock()
					stats.CacheHits += item.Response.CacheHits
					stats.CacheMisses += item.Response.CacheMisses
					verify := verifyEvery > 0 && idx%verifyEvery == 0
					mu.Unlock()
					if verify {
						if err := verifyAgainstOracle(bodies[idx], item.Response); err != nil {
							fail(fmt.Errorf("batch %d item %d: %w", gi, j, err))
							return
						}
						mu.Lock()
						stats.Verified++
						mu.Unlock()
					}
				}
			}
		}()
	}
	wg.Wait()
	stats.Elapsed = time.Since(t0)
	if firstErr != nil {
		return stats, firstErr
	}
	return stats, nil
}

// verifyAgainstOracle byte-compares a served result against the
// in-process reference for the same request body.
func verifyAgainstOracle(body []byte, got *Response) error {
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		return fmt.Errorf("decode request for verification: %w", err)
	}
	want, err := ReferenceResult(&req)
	if err != nil {
		return fmt.Errorf("oracle: %w", err)
	}
	wb, err := json.Marshal(want)
	if err != nil {
		return err
	}
	gb, err := json.Marshal(got.Result)
	if err != nil {
		return err
	}
	if !bytes.Equal(wb, gb) {
		return fmt.Errorf("served result differs from in-process oracle:\nserved: %.400s\noracle: %.400s", gb, wb)
	}
	return nil
}
