package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/ir"
	"repro/internal/telemetry"
)

const testSource = `
int table[16];

int leaf(int x) { return x * 3 + 1; }

int hot(int n) {
	int i; int acc = 0;
	for (i = 0; i < n; i = i + 1) {
		int a = i * 2; int b = a + i; int c = b * a - i;
		acc = acc + leaf(c) + a;
		table[i % 16] = acc;
	}
	return acc;
}

int main() { return hot(24) + table[3]; }
`

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out.Bytes()
}

func allocReq() Request {
	return Request{
		Source:   testSource,
		Config:   ConfigRequest{RI: 8, RF: 6, EI: 4, EF: 4},
		Strategy: "improved",
	}
}

func TestAllocateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, body := post(t, ts.URL+"/allocate", allocReq())
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad response JSON: %v", err)
	}
	if resp.Result == nil || len(resp.Result.Funcs) != 3 {
		t.Fatalf("result = %+v, want 3 funcs", resp.Result)
	}
	if !strings.Contains(resp.Result.Assembly, "hot:") {
		t.Fatalf("assembly missing function label:\n%s", resp.Result.Assembly)
	}
	if resp.Result.Overhead.Total <= 0 {
		t.Fatalf("overhead total = %v, want > 0 at (8,6,4,4)", resp.Result.Overhead.Total)
	}
	if resp.CacheMisses != 3 || resp.CacheHits != 0 {
		t.Fatalf("cold request: hits=%d misses=%d, want 0/3", resp.CacheHits, resp.CacheMisses)
	}

	// Warm repeat: every function served from the result cache, bytes
	// identical.
	code2, body2 := post(t, ts.URL+"/allocate", allocReq())
	if code2 != 200 {
		t.Fatalf("warm status %d: %s", code2, body2)
	}
	var warm Response
	if err := json.Unmarshal(body2, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != 3 || warm.CacheMisses != 0 {
		t.Fatalf("warm request: hits=%d misses=%d, want 3/0", warm.CacheHits, warm.CacheMisses)
	}
	r1, _ := json.Marshal(resp.Result)
	r2, _ := json.Marshal(warm.Result)
	if !bytes.Equal(r1, r2) {
		t.Fatalf("warm result differs from cold:\n%s\nvs\n%s", r1, r2)
	}
}

// TestAllocateWireIR: a request carrying the serialized IR must give a
// result byte-identical to the same program sent as source.
func TestAllocateWireIR(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	prog, err := callcost.Compile(testSource)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := ir.EncodeProgram(prog.IR)
	if err != nil {
		t.Fatal(err)
	}
	req := allocReq()
	req.Source = ""
	req.IR = wire

	codeW, bodyW := post(t, ts.URL+"/allocate", req)
	codeS, bodyS := post(t, ts.URL+"/allocate", allocReq())
	if codeW != 200 || codeS != 200 {
		t.Fatalf("status wire=%d source=%d: %s %s", codeW, codeS, bodyW, bodyS)
	}
	var respW, respS Response
	if err := json.Unmarshal(bodyW, &respW); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bodyS, &respS); err != nil {
		t.Fatal(err)
	}
	rw, _ := json.Marshal(respW.Result)
	rs, _ := json.Marshal(respS.Result)
	if !bytes.Equal(rw, rs) {
		t.Fatalf("wire-IR result differs from source result:\n%s\nvs\n%s", rw, rs)
	}
	// The wire request hit the entries the source request populated:
	// the cache is content-addressed, not object-addressed.
	if respS.CacheHits != 3 {
		t.Fatalf("source request after wire request: hits=%d, want 3", respS.CacheHits)
	}
}

func TestAllocateTrace(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, body := post(t, ts.URL+"/allocate?trace=1", allocReq())
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == "" {
		t.Fatal("traced request returned no trace")
	}
	lines := strings.Split(strings.TrimRight(resp.Trace, "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("trace has %d lines, want a full decision stream", len(lines))
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("trace line %d is not JSON: %s", i, line)
		}
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name string
		edit func(r *Request)
	}{
		{"no program", func(r *Request) { r.Source = "" }},
		{"both program forms", func(r *Request) { r.IR = json.RawMessage(`{"v":1}`) }},
		{"unknown strategy", func(r *Request) { r.Strategy = "magic" }},
		{"invalid config", func(r *Request) { r.Config = ConfigRequest{RI: 1, RF: 1} }},
		{"bad freq", func(r *Request) { r.Freq = "guess" }},
		{"compile error", func(r *Request) { r.Source = "int main( {" }},
		{"bad wire ir", func(r *Request) { r.Source = ""; r.IR = json.RawMessage(`{"v":99}`) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := allocReq()
			tc.edit(&req)
			code, body := post(t, ts.URL+"/allocate", req)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", code, body)
			}
		})
	}
}

// TestBackpressure429: with the single worker held and the admission
// queue full, the edge sheds with 429 and records it in the shed
// counter.
func TestBackpressure429(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, ts := newTestServer(t, Options{Workers: 1, QueueSize: 0, Registry: reg})
	gate := make(chan struct{})
	running := make(chan struct{})
	// With a zero-length queue, admission needs a worker concurrently
	// at its receive; retry until the worker goroutine is parked there.
	for {
		err := s.pool.Submit(context.Background(), func(context.Context) {
			close(running)
			<-gate
		})
		if err == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	<-running
	defer close(gate)

	code, body := post(t, ts.URL+"/allocate", allocReq())
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", code, body)
	}
	if n := reg.Snapshot().Counters["server_shed_total"]; n != 1 {
		t.Fatalf("server_shed_total = %d, want 1", n)
	}
}

// TestRequestDeadline: a deadline too short for the allocation maps to
// 504, and the pipeline abandons the run instead of finishing it.
func TestRequestDeadline(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := allocReq()
	req.TimeoutMs = 1
	// Enough repeated work that 1ms cannot complete it.
	req.Source = strings.Replace(testSource, "int main", "int pad0(int x) { return x; }\nint main", 1)
	deadline := time.Now().Add(10 * time.Second)
	for attempt := 0; time.Now().Before(deadline); attempt++ {
		code, body := post(t, ts.URL+"/allocate", req)
		if code == http.StatusGatewayTimeout {
			return
		}
		if code != 200 {
			t.Fatalf("status %d, want 200 or 504: %s", code, body)
		}
		// The machine was fast enough this time; vary the program so the
		// cache cannot answer and try again.
		req.Source = strings.Replace(req.Source, "int main",
			fmt.Sprintf("int pad%d(int x) { return x + %d; }\nint main", attempt+1, attempt), 1)
	}
	t.Skip("allocation always beat the 1ms deadline; cannot exercise 504 on this machine")
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	bad := allocReq()
	bad.Strategy = "magic"
	code, body := post(t, ts.URL+"/batch", []Request{allocReq(), bad, allocReq()})
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var items []BatchItem
	if err := json.Unmarshal(body, &items); err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("%d items, want 3", len(items))
	}
	if items[0].Status != 200 || items[2].Status != 200 {
		t.Fatalf("good items: %+v %+v", items[0], items[2])
	}
	if items[1].Status != http.StatusBadRequest || items[1].Error == "" {
		t.Fatalf("bad item: %+v", items[1])
	}
	// Item 2 repeats item 0 within one batch: full cache hit.
	if items[2].Response.CacheHits != 3 {
		t.Fatalf("repeat item hits = %d, want 3", items[2].Response.CacheHits)
	}
}

func TestHealthzAndTelemetryMounts(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, ts := newTestServer(t, Options{Registry: reg})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	if _, _ = post(t, ts.URL+"/allocate", allocReq()); true {
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body) //nolint:errcheck
	if mresp.StatusCode != 200 || !strings.Contains(buf.String(), "server_requests_total") {
		t.Fatalf("/metrics status %d body %s", mresp.StatusCode, buf.String())
	}
}
