package server

import (
	"sort"

	"repro"
	"repro/internal/freq"
	"repro/internal/machine"
)

// Result is the deterministic payload of one allocation: everything in
// it — colors, spill slots, assembly, analytic overhead — is a pure
// function of the request, independent of caching, scheduling, or
// which worker served it. The differential gate renders an in-process
// allocation through the same code and byte-compares; volatile
// metadata (cache counters, traces) lives on Response, outside Result.
type Result struct {
	Strategy string          `json:"strategy"`
	Config   string          `json:"config"`
	Funcs    []FuncResult    `json:"funcs"`
	Assembly string          `json:"assembly"`
	Overhead OverheadResult  `json:"overhead"`
}

// FuncResult is the per-function allocation outcome, in program order.
type FuncResult struct {
	Name   string  `json:"name"`
	Rounds int     `json:"rounds"`
	// Colors is indexed by virtual register; -1 is unassigned (the
	// register was spilled away or never occurs).
	Colors []int   `json:"colors"`
	Spills []Spill `json:"spills"`
}

// Spill records one spilled virtual register and its stack slot.
type Spill struct {
	Reg  int    `json:"reg"`
	Slot string `json:"slot"`
}

// OverheadResult is the analytic overhead decomposition.
type OverheadResult struct {
	Spill   float64 `json:"spill"`
	Caller  float64 `json:"caller"`
	Callee  float64 `json:"callee"`
	Shuffle float64 `json:"shuffle"`
	Total   float64 `json:"total"`
}

// RenderResult renders a finished allocation into its canonical
// response form under the frequency table that produced it.
func RenderResult(a *callcost.Allocation, pf *freq.ProgramFreq) *Result {
	res := &Result{
		Strategy: a.Strategy,
		Config:   a.Config.String(),
		Assembly: a.Assembly(),
	}
	o := a.Overhead(pf)
	res.Overhead = OverheadResult{
		Spill: o.Spill, Caller: o.Caller, Callee: o.Callee,
		Shuffle: o.Shuffle, Total: o.Total(),
	}
	for _, fn := range a.Program.IR.Funcs {
		plan := a.Plans[fn.Name]
		fa := plan.Alloc
		fr := FuncResult{
			Name:   fn.Name,
			Rounds: fa.Rounds,
			Colors: make([]int, fa.Fn.NumRegs()),
			Spills: make([]Spill, 0, len(fa.SlotOf)),
		}
		for r := range fr.Colors {
			if c := fa.Colors[r]; c == machine.NoPhysReg {
				fr.Colors[r] = -1
			} else {
				fr.Colors[r] = int(c)
			}
		}
		for reg, slot := range fa.SlotOf {
			fr.Spills = append(fr.Spills, Spill{Reg: int(reg), Slot: slot.Name})
		}
		sort.Slice(fr.Spills, func(i, j int) bool { return fr.Spills[i].Reg < fr.Spills[j].Reg })
		res.Funcs = append(res.Funcs, fr)
	}
	return res
}
