// Package server is the allocation service behind cmd/rallocd:
// register allocation as a request/response protocol over HTTP/JSON,
// built from three layers.
//
// The request core is content-addressed: every function of a request
// is keyed by the hash of its exact allocation inputs (IR, frequency
// table, machine configuration, strategy, resolved pass pipeline) and
// served from internal/resultcache when a completed allocation for
// that key is resident — repeat traffic and shared helpers never
// re-color. The execution layer is a bounded worker pool
// (internal/par.Pool): requests are admitted into a bounded queue and
// shed with 429 when it is full, carry per-request deadlines that the
// pass pipeline polls, and drain gracefully on shutdown. The edge is
// plain net/http with deterministic JSON rendering — the same bytes
// for the same request, no matter which worker, cache state, or
// daemon instance served it — with the telemetry introspection
// endpoints (/metrics, /spans, /debug/pprof/) mounted beside the
// service endpoints.
//
// Endpoints:
//
//	POST /allocate   one allocation request (MC source or wire IR)
//	POST /batch      an array of requests, admitted as one unit
//	GET  /healthz    liveness
//	GET  /metrics    telemetry registry snapshot
//	GET  /spans      recent spans
//	/debug/pprof/    runtime profiles
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/freq"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/regalloc"
	"repro/internal/resultcache"
	"repro/internal/rewrite"
	"repro/internal/telemetry"
)

// Request is one allocation request. The program arrives either as MC
// source text or as a wire-format IR program (ir.EncodeProgram);
// exactly one of the two must be set.
type Request struct {
	Source string          `json:"source,omitempty"`
	IR     json.RawMessage `json:"ir,omitempty"`
	// Config is the register configuration in the paper's (Ri,Rf,Ei,Ef)
	// notation.
	Config ConfigRequest `json:"config"`
	// Strategy names the allocator (callcost.Strategies): "chaitin",
	// "optimistic", "improved", "priority", "cbh", "linscan", "hybrid".
	Strategy string `json:"strategy"`
	// Freq selects the frequency table: "static" (default, estimated)
	// or "profile" (run the program on the reference interpreter).
	Freq string `json:"freq,omitempty"`
	// Drop lists pipeline passes to drop — the ablation surface, and
	// part of the cache key.
	Drop []string `json:"drop,omitempty"`
	// MaxRounds overrides the build→color→spill round budget; 0 keeps
	// the default.
	MaxRounds int `json:"maxRounds,omitempty"`
	// NoCache bypasses the result cache (reads and writes).
	NoCache bool `json:"noCache,omitempty"`
	// Trace attaches a request-scoped event trace: the response's Trace
	// field carries the full JSONL decision stream. Traced requests
	// run sequentially and bypass the cache. Also enabled by ?trace=1.
	Trace bool `json:"trace,omitempty"`
	// TimeoutMs overrides the server's per-request deadline.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// ConfigRequest is the (Ri,Rf,Ei,Ef) register-file configuration.
type ConfigRequest struct {
	RI int `json:"ri"`
	RF int `json:"rf"`
	EI int `json:"ei"`
	EF int `json:"ef"`
}

// Response is the reply to one allocation request: the deterministic
// Result plus per-request metadata.
type Response struct {
	Result *Result `json:"result"`
	// CacheHits and CacheMisses count this request's functions served
	// from the result cache vs. colored.
	CacheHits   int `json:"cacheHits"`
	CacheMisses int `json:"cacheMisses"`
	// Trace is the JSONL decision stream of a traced request.
	Trace string `json:"trace,omitempty"`
}

// BatchItem is the outcome of one request of a /batch call.
type BatchItem struct {
	Status   int       `json:"status"`
	Error    string    `json:"error,omitempty"`
	Response *Response `json:"response,omitempty"`
}

// errorBody is the JSON shape of every non-2xx reply.
type errorBody struct {
	Error string `json:"error"`
}

// Options configures New.
type Options struct {
	// Workers is the allocation worker count; <= 0 selects GOMAXPROCS.
	Workers int
	// QueueSize bounds the admission queue beyond the running workers;
	// a full queue sheds with 429. < 0 selects 0.
	QueueSize int
	// CacheEntries bounds the result cache; <= 0 selects
	// resultcache.DefaultMaxEntries.
	CacheEntries int
	// Timeout is the per-request deadline; 0 disables it.
	Timeout time.Duration
	// Registry receives the request telemetry and backs /metrics. Nil
	// uses the globally enabled registry, or a private one when
	// telemetry is disabled.
	Registry *telemetry.Registry
	// Spans, when non-nil, backs /spans.
	Spans *telemetry.SpanRecorder
}

// LatencyBuckets are the upper bounds, in milliseconds, of the request
// latency histogram.
var LatencyBuckets = []float64{0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}

// Server is the allocation service. Construct with New; it implements
// http.Handler. Close drains the worker pool.
type Server struct {
	mux     *http.ServeMux
	pool    *par.Pool
	cache   *resultcache.Cache
	spans   *telemetry.SpanRecorder
	timeout time.Duration

	requests *telemetry.Counter
	shed     *telemetry.Counter
	errors   *telemetry.Counter
	latency  *telemetry.Histogram
	inflight *telemetry.Gauge
}

// New builds a Server.
func New(opts Options) *Server {
	reg := opts.Registry
	if reg == nil {
		if b := telemetry.B(); b != nil {
			reg = b.Reg
		} else {
			reg = telemetry.NewRegistry()
		}
	}
	s := &Server{
		mux:      http.NewServeMux(),
		pool:     par.NewPool(opts.Workers, opts.QueueSize),
		cache:    resultcache.New(opts.CacheEntries),
		spans:    opts.Spans,
		timeout:  opts.Timeout,
		requests: reg.Counter("server_requests_total"),
		shed:     reg.Counter("server_shed_total"),
		errors:   reg.Counter("server_errors_total"),
		latency:  reg.Histogram("server_request_latency_ms", LatencyBuckets),
		inflight: reg.Gauge("server_inflight"),
	}
	s.pool.QueueDepth = reg.Gauge("server_queue_depth")
	s.pool.Busy = reg.Gauge("server_busy_workers")

	telemetry.Register(s.mux, reg, opts.Spans)
	s.mux.HandleFunc("POST /allocate", s.instrument(s.handleAllocate))
	s.mux.HandleFunc("POST /batch", s.instrument(s.handleBatch))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops admission and waits for queued and running requests to
// finish — the graceful-drain path.
func (s *Server) Close() { s.pool.Drain() }

// instrument wraps a handler with the request telemetry: request
// counter, in-flight gauge, latency histogram, shed/error counters.
func (s *Server) instrument(h func(w http.ResponseWriter, r *http.Request) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		s.requests.Inc()
		s.inflight.Add(1)
		status := h(w, r)
		s.inflight.Add(-1)
		s.latency.Observe(float64(time.Since(t0).Nanoseconds()) / 1e6)
		switch {
		case status == http.StatusTooManyRequests:
			s.shed.Inc()
		case status >= 500:
			s.errors.Inc()
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	fmt.Fprint(w, "rallocd endpoints:\n"+
		"  POST /allocate        one allocation request (?trace=1 for the decision stream)\n"+
		"  POST /batch           an array of requests\n"+
		"  GET  /healthz         liveness\n"+
		"  GET  /metrics         telemetry snapshot (JSON; ?format=text)\n"+
		"  GET  /spans           recent spans (JSON; ?format=flame)\n"+
		"  /debug/pprof/         runtime profiles\n")
}

func (s *Server) handleAllocate(w http.ResponseWriter, r *http.Request) int {
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
	}
	if r.URL.Query().Get("trace") == "1" {
		req.Trace = true
	}
	ctx, cancel := s.requestContext(r.Context(), req.TimeoutMs)
	defer cancel()
	v, err := s.dispatch(ctx, func(ctx context.Context) (any, error) {
		return s.run(ctx, &req)
	})
	if err != nil {
		status := statusOf(err)
		return writeJSON(w, status, errorBody{Error: err.Error()})
	}
	return writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) int {
	var reqs []Request
	if err := json.NewDecoder(r.Body).Decode(&reqs); err != nil {
		return writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
	}
	ctx, cancel := s.requestContext(r.Context(), 0)
	defer cancel()
	// The batch is one unit of admission: it occupies one worker slot,
	// which alone runs every item, so a batch can never deadlock the
	// pool against itself. On top of that floor, idle workers are
	// enlisted through the pool's assist side door — items fan out over
	// whatever capacity is spare at this instant, without consuming
	// admission-queue slots or delaying other requests.
	v, err := s.dispatch(ctx, func(ctx context.Context) (any, error) {
		return s.runBatch(ctx, reqs), nil
	})
	if err != nil {
		return writeJSON(w, statusOf(err), errorBody{Error: err.Error()})
	}
	return writeJSON(w, http.StatusOK, v)
}

// batchItemHook, when non-nil, runs as each batch item is claimed — a
// test seam that makes per-item wall time controllable, so the batch
// fan-out regression test can observe item overlap on any machine,
// including single-CPU runners where CPU-bound work cannot speed up.
var batchItemHook func()

// runBatch executes a batch's items on the calling pool worker plus
// any idle workers Assist can enlist — at most one helper per
// remaining item. All participants drain one shared atomic item
// counter, and every result lands in an index-addressed slot, so the
// response is identical to the sequential path regardless of how many
// helpers joined.
func (s *Server) runBatch(ctx context.Context, reqs []Request) []BatchItem {
	items := make([]BatchItem, len(reqs))
	var next atomic.Int64
	drain := func(ctx context.Context) {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(reqs) {
				return
			}
			if batchItemHook != nil {
				batchItemHook()
			}
			if cerr := ctx.Err(); cerr != nil {
				items[i] = BatchItem{Status: statusOf(cerr), Error: cerr.Error()}
				continue
			}
			resp, rerr := s.run(ctx, &reqs[i])
			if rerr != nil {
				items[i] = BatchItem{Status: statusOf(rerr), Error: rerr.Error()}
			} else {
				items[i] = BatchItem{Status: http.StatusOK, Response: resp}
			}
		}
	}
	var wg sync.WaitGroup
	for h := 1; h < len(reqs); h++ {
		wg.Add(1)
		if !s.pool.Assist(ctx, func(ctx context.Context) {
			defer wg.Done()
			drain(ctx)
		}) {
			wg.Done()
			break
		}
	}
	drain(ctx)
	wg.Wait()
	return items
}

// requestContext applies the per-request deadline: the request
// override when given, else the server default, else none.
func (s *Server) requestContext(parent context.Context, timeoutMs int) (context.Context, context.CancelFunc) {
	timeout := s.timeout
	if timeoutMs > 0 {
		timeout = time.Duration(timeoutMs) * time.Millisecond
	}
	if timeout > 0 {
		return context.WithTimeout(parent, timeout)
	}
	return context.WithCancel(parent)
}

type dispatchResult struct {
	v   any
	err error
}

// dispatch admits work into the pool and waits for its result or the
// request's end. A full queue fails fast with par.ErrQueueFull — the
// backpressure the edge maps to 429.
func (s *Server) dispatch(ctx context.Context, work func(ctx context.Context) (any, error)) (any, error) {
	done := make(chan dispatchResult, 1)
	if err := s.pool.Submit(ctx, func(ctx context.Context) {
		v, err := work(ctx)
		done <- dispatchResult{v, err}
	}); err != nil {
		return nil, err
	}
	select {
	case res := <-done:
		return res.v, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// requestError carries an HTTP status with a request-level failure.
type requestError struct {
	status int
	msg    string
}

func (e *requestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &requestError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// statusOf maps a processing error to its HTTP status.
func statusOf(err error) int {
	var re *requestError
	switch {
	case err == nil:
		return http.StatusOK
	case errors.As(err, &re):
		return re.status
	case errors.Is(err, par.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, par.ErrPoolClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// run executes one allocation request on the calling goroutine (a pool
// worker). It is the request core: resolve inputs, consult the
// content-addressed cache per function, color what misses.
// resolved is a request with every input validated and constructed:
// the program, configuration, strategy, frequency table, and
// framework options.
type resolved struct {
	prog   *callcost.Program
	config machine.Config
	strat  callcost.Strategy
	pf     *freq.ProgramFreq
	opts   callcost.AllocOptions
}

// resolveAll validates req and builds every allocation input.
func resolveAll(ctx context.Context, req *Request) (*resolved, error) {
	prog, config, strat, err := resolve(req)
	if err != nil {
		return nil, err
	}
	var pf *freq.ProgramFreq
	switch req.Freq {
	case "", "static":
		pf = prog.StaticFreq()
	case "profile":
		var perr error
		pf, _, perr = prog.Profile()
		if perr != nil {
			return nil, badRequest("profile run failed: %v", perr)
		}
	default:
		return nil, badRequest("unknown freq %q (want static or profile)", req.Freq)
	}
	opts := callcost.DefaultAllocOptions()
	opts.Ctx = ctx
	if req.MaxRounds > 0 {
		opts.MaxRounds = req.MaxRounds
	}
	if len(req.Drop) > 0 {
		pl := callcost.PipelineFor(strat, opts)
		for _, name := range req.Drop {
			pl = pl.Drop(name)
		}
		opts.Pipeline = &pl
	}
	return &resolved{prog: prog, config: config, strat: strat, pf: pf, opts: opts}, nil
}

// ReferenceResult computes req's result through the public in-process
// path — Program.AllocateWithOptions, no result cache, no pool — and
// renders it with the same encoder as the service. It is the oracle of
// the differential gates: a served Response.Result must be
// byte-identical to it.
func ReferenceResult(req *Request) (*Result, error) {
	rv, err := resolveAll(context.Background(), req)
	if err != nil {
		return nil, err
	}
	a, err := rv.prog.AllocateWithOptions(rv.strat, rv.config, rv.pf, rv.opts)
	if err != nil {
		return nil, err
	}
	return RenderResult(a, rv.pf), nil
}

func (s *Server) run(ctx context.Context, req *Request) (*Response, error) {
	rv, err := resolveAll(ctx, req)
	if err != nil {
		return nil, err
	}
	prog, config, strat, pf, opts := rv.prog, rv.config, rv.strat, rv.pf, rv.opts

	if req.Trace {
		// Traced requests bypass the cache — a cached plan has no event
		// stream to replay — and run sequentially so the JSONL stays in
		// program order. When a span recorder is attached, the traced
		// request also feeds /spans.
		var buf bytes.Buffer
		var tracer callcost.Tracer = callcost.NewJSONLSink(&buf)
		if s.spans != nil {
			tracer = callcost.MultiSink(tracer, s.spans)
		}
		a, aerr := prog.AllocateWithOptions(strat, config, pf, callcost.WithTracer(opts, tracer))
		if aerr != nil {
			return nil, aerr
		}
		if s.spans != nil {
			s.spans.Flush()
		}
		return &Response{Result: RenderResult(a, pf), CacheMisses: len(prog.IR.Funcs), Trace: buf.String()}, nil
	}

	pipeNames := pipelineNames(strat, opts)
	prep := prog.Prepare()
	plans := make(map[string]*rewrite.FuncPlan, len(prog.IR.Funcs))
	hits, misses := 0, 0
	for _, fn := range prog.IR.Funcs {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		ff := pf.ByFunc[fn.Name]
		if ff == nil {
			return nil, fmt.Errorf("no frequency info for %s", fn.Name)
		}
		compute := func() (*rewrite.FuncPlan, error) { return allocateFunc(prep, fn, ff, config, strat, opts) }
		var plan *rewrite.FuncPlan
		var hit bool
		if req.NoCache {
			plan, err = compute()
		} else {
			key, kerr := resultcache.KeyFor(fn, ff, config, strat.Name(), pipeNames)
			if kerr != nil {
				return nil, kerr
			}
			plan, hit, err = s.cache.Do(key, compute)
		}
		if err != nil {
			return nil, err
		}
		if hit {
			hits++
		} else {
			misses++
		}
		plans[fn.Name] = plan
	}
	a := &callcost.Allocation{Program: prog, Config: config, Strategy: strat.Name(), Plans: plans}
	return &Response{Result: RenderResult(a, pf), CacheHits: hits, CacheMisses: misses}, nil
}

// allocateFunc colors one function and builds its plan — the compute
// side of a cache miss. The cached plan keeps only what rendering
// needs (the rewritten body, colors, slots, save/restore tables); the
// per-round analysis artifacts are dropped so resident entries stay
// small.
func allocateFunc(prep *callcost.PreparedProgram, fn *ir.Func, ff *freq.FuncFreq,
	config machine.Config, strat callcost.Strategy, opts callcost.AllocOptions) (*rewrite.FuncPlan, error) {
	pfn := prep.Func(fn.Name)
	if pfn == nil {
		pfn = regalloc.Prepare(fn)
	}
	fa, err := regalloc.AllocatePrepared(pfn, ff, config, strat, rewrite.InsertSpills, opts)
	if err != nil {
		return nil, err
	}
	if err := rewrite.Validate(fa); err != nil {
		return nil, fmt.Errorf("%s produced an invalid allocation: %w", strat.Name(), err)
	}
	plan := rewrite.BuildPlan(fa)
	plan.Alloc.Ranges = nil
	plan.Alloc.Live = nil
	plan.Alloc.Graphs = [ir.NumClasses]*interference.Graph{}
	return plan, nil
}

// resolve validates the request's program, configuration, and strategy.
func resolve(req *Request) (*callcost.Program, machine.Config, callcost.Strategy, error) {
	var prog *callcost.Program
	switch {
	case req.Source != "" && len(req.IR) > 0:
		return nil, machine.Config{}, nil, badRequest("request has both source and ir; send exactly one")
	case req.Source != "":
		p, err := callcost.Compile(req.Source)
		if err != nil {
			return nil, machine.Config{}, nil, badRequest("compile: %v", err)
		}
		prog = p
	case len(req.IR) > 0:
		p, err := ir.DecodeProgram(req.IR)
		if err != nil {
			return nil, machine.Config{}, nil, badRequest("decode ir: %v", err)
		}
		prog = &callcost.Program{IR: p}
	default:
		return nil, machine.Config{}, nil, badRequest("request needs source or ir")
	}
	config := machine.NewConfig(req.Config.RI, req.Config.RF, req.Config.EI, req.Config.EF)
	if !config.Valid() {
		return nil, machine.Config{}, nil, badRequest(
			"configuration %s below the calling-convention minimum (%d,%d,0,0)",
			config, machine.MinCallerInt, machine.MinCallerFloat)
	}
	strat := callcost.Strategies()[req.Strategy]
	if strat == nil {
		return nil, machine.Config{}, nil, badRequest("unknown strategy %q (want one of %v)",
			req.Strategy, strategyNames())
	}
	return prog, config, strat, nil
}

// pipelineNames resolves the pass-pipeline names for the cache key:
// the explicit override when one is set, else the pipeline the
// strategy would build under opts.
func pipelineNames(strat callcost.Strategy, opts callcost.AllocOptions) []string {
	if opts.Pipeline != nil {
		return opts.Pipeline.Names()
	}
	return callcost.PipelineFor(strat, opts).Names()
}

func strategyNames() []string {
	names := make([]string, 0, 8)
	for name := range callcost.Strategies() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// writeJSON renders v with a deterministic encoder and returns the
// status for the instrumentation wrapper.
func writeJSON(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // best-effort: the client may be gone
	return status
}
