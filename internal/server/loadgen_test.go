package server

import (
	"encoding/json"
	"testing"

	"repro/internal/randprog"
)

// TestCorpusDecodesAsRequest pins the corpus emitter's wire shape to
// the server's: every body must decode into a Request the server
// accepts. This is the contract test for the redeclared struct in
// internal/randprog.
func TestCorpusDecodesAsRequest(t *testing.T) {
	for i, body := range randprog.Corpus(3, 12) {
		var req Request
		if err := json.Unmarshal(body, &req); err != nil {
			t.Fatalf("body %d does not decode as server.Request: %v", i, err)
		}
		if req.Source == "" || req.Strategy == "" || req.Config.RI == 0 {
			t.Fatalf("body %d decoded incomplete: %+v", i, req)
		}
		if _, _, _, err := resolve(&req); err != nil {
			t.Fatalf("body %d rejected by resolve: %v", i, err)
		}
	}
}

// TestRunLoadSmoke drives a small corpus through the full loadgen path
// — HTTP edge, pool, cache — with every response verified against the
// in-process oracle.
func TestRunLoadSmoke(t *testing.T) {
	_, ts := newTestServer(t, Options{QueueSize: 256})
	bodies := randprog.Corpus(11, 16)
	// Send the corpus twice so the second pass hits the cache.
	bodies = append(bodies, randprog.Corpus(11, 16)...)
	stats, err := RunLoad(ts.URL, bodies, 8, 4)
	if err != nil {
		t.Fatalf("load run failed: %v (stats: %v)", err, stats)
	}
	if stats.OK != len(bodies) {
		t.Fatalf("ok=%d of %d: %v", stats.OK, len(bodies), stats)
	}
	if stats.Verified == 0 {
		t.Fatal("no responses were verified")
	}
	if stats.CacheHits == 0 {
		t.Fatalf("repeated corpus produced no cache hits: %v", stats)
	}
}

// TestRunBatchLoadSmoke drives the corpus through /batch — grouped
// requests over the batch fan-out path — with per-item tallies and
// the same sampled oracle verification as the /allocate path. A group
// size that does not divide the corpus exercises the short last batch.
func TestRunBatchLoadSmoke(t *testing.T) {
	_, ts := newTestServer(t, Options{QueueSize: 256})
	bodies := randprog.Corpus(11, 16)
	bodies = append(bodies, randprog.Corpus(11, 16)...)
	stats, err := RunBatchLoad(ts.URL, bodies, 5, 4, 4)
	if err != nil {
		t.Fatalf("batch load run failed: %v (stats: %v)", err, stats)
	}
	if stats.Requests != len(bodies) {
		t.Fatalf("tallied %d items of %d: %v", stats.Requests, len(bodies), stats)
	}
	if stats.OK != len(bodies) {
		t.Fatalf("ok=%d of %d: %v", stats.OK, len(bodies), stats)
	}
	if want := (len(bodies) + 3) / 4; stats.Verified != want {
		t.Fatalf("verified %d, want %d: %v", stats.Verified, want, stats)
	}
	if stats.CacheHits == 0 {
		t.Fatalf("repeated corpus produced no cache hits: %v", stats)
	}
}
