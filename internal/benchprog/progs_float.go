package benchprog

func init() {
	register(&Program{
		Name: "alvinn",
		Description: "neural-net training: float-bank pressure in nested " +
			"loops, a small activation helper on the inner path; packing " +
			"matters at few registers, calls are cheap enough that both " +
			"improved Chaitin and priority coloring do equally well",
		Class: 0,
		Source: `
float input[32];
float hidden[16];
float wIH[512];
float wHO[16];
float target = 0.75;
int epochs = 40;

float act(float x) {
	// rational sigmoid-like activation
	if (x < 0.0) { return x / (1.0 - x) * 0.5 + 0.5; }
	return x / (1.0 + x) * 0.5 + 0.5;
}

float forward() {
	int h; int i;
	float out = 0.0;
	for (h = 0; h < 16; h = h + 1) {
		float sum = 0.0;
		for (i = 0; i < 32; i = i + 1) {
			sum = sum + input[i] * wIH[h * 32 + i];
		}
		hidden[h] = act(sum);
		out = out + hidden[h] * wHO[h];
	}
	return act(out);
}

void backward(float err) {
	int h; int i;
	float rate = 0.05;
	for (h = 0; h < 16; h = h + 1) {
		float gradO = err * hidden[h];
		wHO[h] = wHO[h] + rate * gradO;
		float gradH = err * wHO[h] * hidden[h] * (1.0 - hidden[h]);
		for (i = 0; i < 32; i = i + 1) {
			wIH[h * 32 + i] = wIH[h * 32 + i] + rate * gradH * input[i];
		}
	}
}

int main() {
	int e; int i;
	for (i = 0; i < 32; i = i + 1) { input[i] = float(i % 7) * 0.125; }
	for (i = 0; i < 512; i = i + 1) { wIH[i] = float(i % 11) * 0.01 - 0.05; }
	for (i = 0; i < 16; i = i + 1) { wHO[i] = float(i % 5) * 0.02; }
	float err = 0.0;
	for (e = 0; e < epochs; e = e + 1) {
		float out = forward();
		err = target - out;
		backward(err);
	}
	return int(err * 100000.0) + int(wHO[3] * 1000.0);
}
`,
	})

	register(&Program{
		Name: "tomcatv",
		Description: "mesh generation: one big call-free function of nested " +
			"float loops — no call cost at all, so no technique changes " +
			"anything (the paper's class 4)",
		Class: 4,
		Source: `
float xm[600];
float ym[600];
float rxm[600];
float rym[600];

int main() {
	int iter; int i; int j;
	for (i = 0; i < 600; i = i + 1) {
		xm[i] = float(i % 25) * 0.04;
		ym[i] = float(i % 24) * 0.04;
	}
	float resid = 0.0;
	for (iter = 0; iter < 30; iter = iter + 1) {
		resid = 0.0;
		for (i = 1; i < 23; i = i + 1) {
			for (j = 1; j < 23; j = j + 1) {
				int p = i * 24 + j;
				float xx = xm[p + 1] - xm[p - 1];
				float yx = ym[p + 1] - ym[p - 1];
				float xy = xm[p + 24] - xm[p - 24];
				float yy = ym[p + 24] - ym[p - 24];
				float a = 0.25 * (xy * xy + yy * yy);
				float b = 0.25 * (xx * xx + yx * yx);
				float c = 0.125 * (xx * xy + yx * yy);
				float qi = a * (xm[p + 1] + xm[p - 1]) + b * (xm[p + 24] + xm[p - 24])
					- c * (xm[p + 25] - xm[p - 23] - xm[p + 23] + xm[p - 25]);
				float qj = a * (ym[p + 1] + ym[p - 1]) + b * (ym[p + 24] + ym[p - 24])
					- c * (ym[p + 25] - ym[p - 23] - ym[p + 23] + ym[p - 25]);
				float d = 2.0 * (a + b);
				rxm[p] = qi / d - xm[p];
				rym[p] = qj / d - ym[p];
				resid = resid + rxm[p] * rxm[p] + rym[p] * rym[p];
			}
		}
		for (i = 1; i < 23; i = i + 1) {
			for (j = 1; j < 23; j = j + 1) {
				int p = i * 24 + j;
				xm[p] = xm[p] + 0.7 * rxm[p];
				ym[p] = ym[p] + 0.7 * rym[p];
			}
		}
	}
	return int(resid * 100000.0) + int(xm[100] * 1000.0);
}
`,
	})

	register(&Program{
		Name: "matrix300",
		Description: "dense matrix multiply: call-free triple loops with a " +
			"setup/driver split; storage-class analysis alone removes the " +
			"wrong-kind penalty (class 2); CBH needs extra callee-save " +
			"registers to catch up",
		Class: 2,
		Source: `
float am[400];
float bm[400];
float cm[400];
int nsize = 20;

void clearm() {
	int i;
	for (i = 0; i < 400; i = i + 1) { cm[i] = 0.0; }
}

float mxm() {
	int i; int j; int k;
	float trace = 0.0;
	for (i = 0; i < nsize; i = i + 1) {
		for (j = 0; j < nsize; j = j + 1) {
			float sum = 0.0;
			for (k = 0; k < nsize; k = k + 1) {
				sum = sum + am[i * 20 + k] * bm[k * 20 + j];
			}
			cm[i * 20 + j] = sum;
		}
		trace = trace + cm[i * 20 + i];
	}
	return trace;
}

void rotate() {
	int i;
	for (i = 0; i < 400; i = i + 1) {
		am[i] = bm[i] * 0.5 + cm[i] * 0.25;
		bm[i] = cm[i] - am[i];
	}
}

int main() {
	int i; int pass;
	for (i = 0; i < 400; i = i + 1) {
		am[i] = float(i % 13) * 0.125;
		bm[i] = float(i % 7) * 0.25;
	}
	float acc = 0.0;
	for (pass = 0; pass < 12; pass = pass + 1) {
		clearm();
		acc = acc + mxm();
		rotate();
	}
	return int(acc * 100.0);
}
`,
	})

	register(&Program{
		Name: "fpppp",
		Description: "quantum chemistry two-electron integrals: enormous " +
			"straight-line float blocks with extreme simultaneous pressure " +
			"and few calls; optimistic coloring helps at few registers, the " +
			"improvements take over as registers grow (Figure 9)",
		Class: 3,
		Source: `
float gout[128];
float geom[64];

float norm(float v) { return v * 0.5 + 0.125; }

float twoel(int base) {
	// Big straight-line float block: more simultaneously-live values
	// than the small float banks hold (optimistic coloring recovers
	// some spills there), absorbed once the bank grows. The cold
	// renormalization tail crosses calls, so at large configurations
	// the base model wastes float callee-save registers on it — where
	// the improved allocator keeps winning.
	float r1 = geom[base];
	float r2 = geom[base + 1];
	float r3 = geom[base + 2];
	float r4 = geom[base + 3];
	float r5 = geom[base + 4];
	float r6 = geom[base + 5];
	float t1 = r1 * r2 + r3 * r4;
	float t2 = r1 * r3 - r2 * r4;
	float t3 = r5 * r6 + r1 * r2;
	float t4 = r5 * r2 - r6 * r3;
	float u1 = t1 * t3 - t2 * t4;
	float u2 = t1 * t4 + t2 * t3;
	float u3 = r1 + r5 - t1;
	float v1 = u1 * u2 - u3 * r4;
	float v2 = u1 * u3 + u2 * r6;
	float w1 = v1 * t1 + v2 * u1 + r2;
	float w2 = v1 * v2 - u2 * t2 + r5;
	float den = 1.0 + v1 * v1 + v2 * v2;
	float res = (w1 * w2 + u1 * u2 + t3 * t4 + r3 * r6) / den;
	if (res > 1000000000.0) {
		float z1 = res * 0.5;
		float z2 = w1 - res;
		float z3 = w2 * res;
		float z4 = den + res;
		z1 = norm(z1) + z2;
		z2 = norm(z2) + z3 + z1;
		z3 = norm(z3) + z4 + z2;
		z4 = norm(z4) + z1 + z3;
		res = z1 + z2 + z3 + z4;
	}
	return res;
}

int main() {
	int i; int pass;
	for (i = 0; i < 64; i = i + 1) { geom[i] = float(i % 9) * 0.11 + 0.3; }
	float total = 0.0;
	for (pass = 0; pass < 120; pass = pass + 1) {
		for (i = 0; i < 56; i = i + 1) {
			gout[i] = twoel(i) * 0.5 + gout[i] * 0.5;
			total = total + gout[i];
		}
	}
	return int(total * 10.0);
}
`,
	})

	register(&Program{
		Name: "doduc",
		Description: "monte-carlo reactor simulation: large mixed float " +
			"expressions, irregular branches in loops, moderate calls; " +
			"preference decision adds nothing (class 3)",
		Class: 3,
		Source: `
float state[48];
int seed = 12345;

int rnd() {
	seed = (seed * 1103 + 12345) % 65536;
	if (seed < 0) { seed = 0 - seed; }
	return seed;
}

float jiggle(float v) { return v * 0.98 + 0.01; }

float refine(float x, int which) {
	// The paper's §4 example, live in the workload: two sequential
	// ranges (a then b) each cross two hot calls but are referenced
	// barely once per entry, so each has negative benefit_callee on its
	// own. Under the first-use model both spill; under the shared model
	// they split one callee-save register's cost and keeping them wins.
	float a = x * 0.5;
	float t = jiggle(x);
	t = jiggle(t + 0.1);
	if (which % 3 == 0) { t = t + a; }
	float b = t * 0.25;
	t = jiggle(t + 0.2);
	t = jiggle(t - 0.3);
	if (which % 3 == 1) { t = t + b; }
	return t;
}

float advance(float x, float y, float z) {
	float a = x * y + z * 0.5;
	float b = y * z - x * 0.25;
	float c = z * x + y * 0.125;
	float d = a * b - c;
	float e = b * c + a;
	if (d > e) { return d * 0.5 + e * 0.25 + a * 0.125; }
	return e * 0.5 - d * 0.25 + c * 0.125;
}

int main() {
	int step; int i;
	for (i = 0; i < 48; i = i + 1) { state[i] = float(i % 11) * 0.2 + 0.1; }
	float energy = 0.0;
	for (step = 0; step < 220; step = step + 1) {
		int cell = rnd() % 46;
		if (cell < 1) { cell = 1; }
		float x = state[cell - 1];
		float y = state[cell];
		float z = state[cell + 1];
		float nx = advance(x, y, z);
		nx = refine(nx, cell);
		float decay = (x + y + z) / 3.0;
		if (rnd() % 4 == 0) {
			state[cell] = nx * 0.9 + decay * 0.1;
		} else {
			if (nx > decay) {
				state[cell] = nx - decay * 0.5;
			} else {
				state[cell] = nx + decay * 0.25;
			}
		}
		energy = energy + state[cell] * 0.01;
	}
	return int(energy * 10000.0) + seed % 100;
}
`,
	})

	register(&Program{
		Name: "nasa7",
		Description: "seven numeric kernels with helper calls between and " +
			"inside loops: every technique contributes (class 1); improved " +
			"Chaitin clearly beats priority-based in the static case",
		Class: 1,
		Source: `
float va[128];
float vb[128];
float vc[128];
float scratch = 0.0;

float dot(int n) {
	int i;
	float s = 0.0;
	for (i = 0; i < n; i = i + 1) { s = s + va[i] * vb[i]; }
	return s;
}

void saxpy(float alpha, int n) {
	int i;
	for (i = 0; i < n; i = i + 1) { vc[i] = vc[i] + alpha * va[i]; }
}

float butterfly(int stride, int n) {
	int i;
	float s = 0.0;
	for (i = 0; i + stride < n; i = i + 1) {
		float even = va[i] + va[i + stride];
		float odd = va[i] - va[i + stride];
		vb[i] = even * 0.5;
		vb[i + stride] = odd * 0.5;
		s = s + even * odd;
	}
	return s;
}

float cholesky_step(int k, int n) {
	int i;
	float pivot = vc[k];
	if (pivot < 0.01) { pivot = 0.01; }
	float s = 0.0;
	for (i = k + 1; i < n; i = i + 1) {
		vc[i] = vc[i] - va[i] * va[k] / pivot;
		s = s + vc[i];
	}
	return s;
}

float gmtry(int n) {
	int i;
	float s = 0.0;
	for (i = 1; i < n; i = i + 1) {
		float d = va[i] - va[i - 1];
		s = s + d * d + dot(8) * 0.001;
	}
	return s;
}

float emit(float x) { scratch = scratch + x; return scratch * 0.125; }

float runpass(int pass, float seed) {
	// The per-pass driver: several accumulators stay live across the
	// seven kernel calls, competing for the scarce callee-save
	// registers — the class-1 situation where storage-class analysis,
	// benefit-driven simplification, AND preference decision all
	// contribute.
	float acc = seed;
	float checksum = seed * 0.5;
	float residual = 0.0;
	float drift = float(pass) * 0.01;
	acc = acc + dot(128);
	checksum = checksum + acc * 0.001;
	saxpy(0.25, 128);
	acc = acc + butterfly(4, 128);
	residual = residual + acc * 0.0001 + drift;
	acc = acc + cholesky_step(pass % 100, 120);
	checksum = checksum + residual;
	acc = acc + gmtry(24);
	acc = acc + emit(acc * 0.0001);
	return acc + checksum * 0.25 + residual - drift;
}

int main() {
	int pass; int i;
	for (i = 0; i < 128; i = i + 1) {
		va[i] = float(i % 17) * 0.1;
		vb[i] = float(i % 13) * 0.2;
		vc[i] = float(i % 7) * 0.3 + 1.0;
	}
	float acc = 0.0;
	for (pass = 0; pass < 14; pass = pass + 1) {
		acc = runpass(pass, acc);
	}
	return int(acc);
}
`,
	})
}
