package benchprog

func init() {
	register(&Program{
		Name: "ear",
		Description: "human auditory model: a cascade of tiny filter " +
			"functions called for every sample of every channel — the " +
			"classic call-cost-dominated program; the paper reports a 45x " +
			"overhead reduction (55x in the conclusion) for improved " +
			"Chaitin (class 1)",
		Class: 1,
		Source: `
float fstate[64];
float outacc[16];
int samples = 120;

float recal(float v) { return v * 0.5 + 0.01; }

int rescale(int v) { return v % 97 + 1; }

float secondOrder(int ch, float x) {
	// Hottest leaf (one entry per sample per channel). The cold
	// overflow tail keeps several float values live across calls: the
	// base model burns float callee-save registers on them, paying
	// this function's entry/exit save on every single sample.
	float s0 = fstate[ch * 2];
	float s1 = fstate[ch * 2 + 1];
	float y = x * 0.2 + s0 * 0.7 - s1 * 0.1;
	if (y > 1000000.0) {
		float a = y * 0.5;
		float b = s0 - 1.0;
		float c = s1 * y;
		float d = y + 2.0;
		float e = s0 * 0.25;
		float f = s1 - 0.5;
		a = recal(a);
		b = recal(b) + a;
		c = recal(c) + b;
		d = recal(d) + c + a;
		e = recal(e) + d + b;
		f = recal(f) + e + c;
		y = a + b + c + d + e + f;
	}
	fstate[ch * 2] = y;
	fstate[ch * 2 + 1] = s0;
	return y;
}

float rectify(float x) {
	if (x < 0.0) { return 0.0 - x * 0.5; }
	return x;
}

float agc(int ch, float x) {
	// Same failure mode in the integer bank: cold crossing int ranges.
	float g = outacc[ch];
	int code = ch * 2 + 1;
	if (g > 1000000.0) {
		int n1 = code * 3;
		int n2 = ch + 7;
		int n3 = code - ch;
		int n4 = code * code;
		n1 = rescale(n1) + n2;
		n2 = rescale(n2) + n3 + n1;
		n3 = rescale(n3) + n4 + n2;
		n4 = rescale(n4) + n1 + n3;
		outacc[0] = outacc[0] + float(n1 + n2 + n3 + n4) * 0.000001;
	}
	return x / (1.0 + g * 0.01) + float(code % 2) * 0.0001;
}

float accumulate(int ch, float y) {
	outacc[ch] = outacc[ch] * 0.99 + y * 0.01;
	return y;
}

float processSample(float x) {
	// Mid-frequency driver (once per sample): the channel loop keeps
	// more call-crossing accumulators live than the float bank has
	// callee-save registers, so the preference decision must pick which
	// of them deserve the scarce callee-save registers — the others are
	// cheaper in caller-save registers (they cross fewer calls).
	int ch;
	float sum = 0.0;
	float env = 0.0;
	float peak = 0.0;
	float energy = 0.0;
	float wobble = 0.125;
	for (ch = 0; ch < 16; ch = ch + 1) {
		float y = secondOrder(ch, x);
		y = rectify(y);
		y = agc(ch, y);
		y = accumulate(ch, y);
		env = env * 0.9 + y * 0.1;
		if (y > peak) { peak = y; }
		energy = energy + y * y * wobble;
		sum = sum + y + env * 0.001;
		x = x * 0.95;
	}
	return sum + peak * 0.01 + energy * 0.001 + wobble;
}

int main() {
	int s; int ch;
	for (ch = 0; ch < 16; ch = ch + 1) { outacc[ch] = 0.1; }
	float total = 0.0;
	for (s = 0; s < samples; s = s + 1) {
		float x = float(s % 17) * 0.125 - 1.0;
		total = total + processSample(x) * 0.01;
	}
	for (ch = 0; ch < 16; ch = ch + 1) { total = total + outacc[ch]; }
	return int(total * 100000.0);
}
`,
	})

	register(&Program{
		Name: "eqntott",
		Description: "truth-table construction: a comparison function " +
			"called from the inner loop of a sort — frequent tiny calls " +
			"with integer pressure; the paper reports a 66x overhead " +
			"reduction; preference decision adds nothing (class 3)",
		Class: 3,
		Source: `
int terms[256];
int perm[256];
int nterm = 256;

int checkrange(int v) { return v % 211; }

int cmppt(int a, int b) {
	// The hottest function of the program, entered tens of thousands
	// of times. Its inputs stay live across a cold diagnostic tail
	// that contains calls: the base model sees "crosses a call",
	// prefers callee-save registers, and pays this function's
	// entry/exit save for every comparison — the paper's headline
	// failure mode. Storage-class analysis sees that the caller-save
	// cost is nearly zero (the crossed calls never execute) and keeps
	// everything in caller-save registers for free.
	int x = terms[a];
	int y = terms[b];
	if (x > 100000) {
		int c1 = a * 3;
		int c2 = b * 5;
		int c3 = x + a;
		int c4 = y - b;
		int c5 = a + b;
		c1 = checkrange(c1) + c2;
		c2 = checkrange(c2) + c3 + c1;
		c3 = checkrange(c3) + c4 + c2;
		c4 = checkrange(c4) + c5 + c3;
		c5 = checkrange(c5) + c1 + c4;
		terms[0] = (c1 + c2 + c3 + c4 + c5) % 199;
	}
	if (x % 4 != y % 4) { return x % 4 - y % 4; }
	if (x < y) { return 0 - 1; }
	if (x > y) { return 1; }
	return 0;
}

void shiftDown(int v, int hi) {
	// Mid-frequency helper (once per element): its control state
	// crossing the hot cmppt calls is the program's irreducible
	// register-allocation overhead.
	int j = hi - 1;
	while (j >= 0 && cmppt(perm[j], v) > 0) {
		perm[j + 1] = perm[j];
		j = j - 1;
	}
	perm[j + 1] = v;
}

void sortpt() {
	int i;
	for (i = 1; i < nterm; i = i + 1) {
		shiftDown(perm[i], i);
	}
}

int buildtt() {
	// Many simultaneously-live accumulators: exceeds the minimum
	// integer bank, so the base allocator must spill here at
	// (6,4,0,0) and stops spilling as registers are added.
	int i;
	int ones = 0;
	int zeros = 0;
	int dcs = 0;
	int parity = 0;
	int runs = 0;
	int weight = 0;
	int prev = 0;
	int span = 1;
	for (i = 0; i < nterm; i = i + 1) {
		int t = terms[perm[i]];
		int bit = (t / 8) % 2;
		int low = t % 4;
		if (bit == 1 || t % 3 == 0) { ones = ones + 1; } else { zeros = zeros + 1; }
		if (low == 3) { dcs = dcs + 1; }
		parity = (parity + bit + low) % 2;
		if (bit != prev) { runs = runs + 1; span = 1; } else { span = span + 1; }
		weight = weight + bit * span + low * runs - parity;
		prev = bit;
	}
	return ones * 3 + zeros + dcs * 2 + parity + runs + weight % 1000;
}

int main() {
	int i; int pass;
	int check = 0;
	for (pass = 0; pass < 3; pass = pass + 1) {
		for (i = 0; i < nterm; i = i + 1) {
			terms[i] = (i * 37 + pass * 11) % 199;
			perm[i] = i;
		}
		sortpt();
		check = check + buildtt();
	}
	return check + perm[10] + terms[perm[200]];
}
`,
	})

	register(&Program{
		Name: "espresso",
		Description: "two-level logic minimization: set operations over " +
			"bit vectors in int arrays, helper functions with moderate " +
			"call frequency; no clear winner between improved Chaitin and " +
			"priority coloring (class 3)",
		Class: 3,
		Source: `
int cubesA[128];
int cubesB[128];
int cover[128];
int width = 128;

int countOnes(int w) {
	int c = 0;
	while (w > 0) {
		c = c + w % 2;
		w = w / 2;
	}
	return c;
}

int setAnd(int i) { return (cubesA[i] / 1) % 1024 * (cubesB[i] % 2) + (cubesA[i] % 512) * ((cubesB[i] / 2) % 2); }

int distance(int i, int j) {
	int d = cubesA[i] - cubesB[j];
	if (d < 0) { d = 0 - d; }
	return countOnes(d % 256);
}

int consensus(int i, int j) {
	if (distance(i, j) == 1) { return (cubesA[i] + cubesB[j]) % 512; }
	return 0;
}

int main() {
	int i; int j; int pass;
	int size = 0;
	for (i = 0; i < width; i = i + 1) {
		cubesA[i] = (i * 73 + 11) % 509;
		cubesB[i] = (i * 131 + 7) % 503;
		cover[i] = 0;
	}
	for (pass = 0; pass < 6; pass = pass + 1) {
		for (i = 0; i < width; i = i + 1) {
			int best = 0;
			for (j = 0; j < 16; j = j + 1) {
				int c = consensus(i, (i + j) % width);
				if (c > best) { best = c; }
			}
			cover[i] = (cover[i] + best + setAnd(i)) % 1021;
			size = size + countOnes(cover[i] % 64);
		}
	}
	return size + cover[9];
}
`,
	})

	register(&Program{
		Name: "compress",
		Description: "LZW compression: hash-table probing in the hot loop " +
			"with small code-output helpers; storage-class analysis gives " +
			"most of the win and CBH lags when using profiles",
		Class: 3,
		Source: `
int htab[512];
int codetab[512];
int outbits = 0;
int outcount = 0;

int hash(int ent, int c) { return (ent * 31 + c * 7 + 1) % 509; }

void output(int code) {
	outbits = (outbits + code) % 65536;
	outcount = outcount + 1;
}

int probe(int h, int key) {
	// Hot hash probe; the cold rehash tail keeps values live across
	// calls, so the base model pays this function's callee-save
	// entry/exit cost on every probe.
	int d = 1;
	int i = h;
	while (htab[i] != 0 && htab[i] != key) {
		i = (i + d) % 509;
		d = d + 2;
		if (d > 17) { return 0 - 1; }
	}
	if (htab[i] > 100000000) {
		int r1 = i * 3;
		int r2 = key - i;
		int r3 = d + h;
		r1 = hash(r1, r2) + r2;
		r2 = hash(r2, r3) + r3 + r1;
		r3 = hash(r3, r1) + r1 + r2;
		htab[0] = (r1 + r2 + r3) % 509;
	}
	return i;
}

int encodeByte(int ent, int c, int next) {
	// Mid-frequency driver (once per input byte): ent/c/next crossing
	// the probe and output calls are the irreducible overhead.
	int key = ent * 64 + c;
	int slot = probe(hash(ent, c), key);
	if (slot >= 0 && htab[slot] == key) {
		return codetab[slot] * 1024 + next;
	}
	output(ent);
	if (slot >= 0 && next < 500) {
		htab[slot] = key;
		codetab[slot] = next;
		return c * 1024 + next + 1;
	}
	return c * 1024 + next;
}

int main() {
	int pos; int i;
	int ent = 1;
	int nextcode = 3;
	for (i = 0; i < 512; i = i + 1) { htab[i] = 0; codetab[i] = 0; }
	for (pos = 0; pos < 900; pos = pos + 1) {
		int c = (pos * 17 + pos / 9) % 64 + 1;
		int packed = encodeByte(ent, c, nextcode);
		ent = packed / 1024;
		nextcode = packed % 1024;
	}
	output(ent);
	return outbits + outcount * 3 + nextcode;
}
`,
	})

	register(&Program{
		Name: "sc",
		Description: "spreadsheet recalculation: per-cell formula helpers " +
			"called from the evaluation sweep, mixed int/float cells; " +
			"storage-class analysis alone is a big win (class 2) and " +
			"improved Chaitin beats priority-based",
		Class: 2,
		Source: `
float cells[240];
int kinds[240];
int ncell = 240;

float getc(int r, int c) {
	// The hottest function of the spreadsheet. Its cold clamp tail
	// keeps values live across calls, so the base model pays its
	// entry/exit callee-save cost on every single cell read.
	if (r < 0 || c < 0) { return 0.0; }
	if (r >= 12 || c >= 20) { return 0.0; }
	float v = cells[r * 20 + c];
	if (v > 1000000000.0) {
		int e1 = r * 20 + c;
		int e2 = r + c;
		int e3 = r - c;
		float e4 = v * 0.5;
		e1 = clampidx(e1) + e2;
		e2 = clampidx(e2) + e3 + e1;
		e3 = clampidx(e3) + e1 + e2;
		e4 = e4 + float(e1 + e2 + e3);
		cells[0] = e4 * 0.000001;
	}
	return v;
}

int clampidx(int i) {
	if (i < 0) { return 0; }
	if (i >= 240) { return 239; }
	return i;
}

float fsum(int r, int c) { return getc(r - 1, c) + getc(r, c - 1); }

float favg(int r, int c) {
	// Accumulator with several references crossing the getc calls:
	// spill cost exceeds the callee-save cost, so a callee-save
	// register is the right choice for every allocator.
	float acc = getc(r - 1, c);
	acc = acc + getc(r + 1, c);
	acc = acc + getc(r, c - 1);
	acc = acc + getc(r, c + 1);
	return acc / 4.0;
}

float fmax2(int r, int c) {
	float a = getc(r - 1, c);
	float b = getc(r, c - 1);
	if (a > b) { return a; }
	return b;
}

int recalc() {
	int r; int c;
	int changed = 0;
	for (r = 0; r < 12; r = r + 1) {
		for (c = 0; c < 20; c = c + 1) {
			int idx = r * 20 + c;
			float old = cells[idx];
			int k = kinds[idx];
			if (k == 1) { cells[idx] = fsum(r, c) * 0.5 + old * 0.5; }
			if (k == 2) { cells[idx] = favg(r, c); }
			if (k == 3) { cells[idx] = fmax2(r, c) * 0.9; }
			float d = cells[idx] - old;
			if (d > 0.0001 || d < (0.0 - 0.0001)) { changed = changed + 1; }
		}
	}
	return changed;
}

int main() {
	int i; int pass;
	int work = 0;
	for (i = 0; i < ncell; i = i + 1) {
		cells[i] = float(i % 23) * 0.5;
		kinds[i] = i % 4;
	}
	for (pass = 0; pass < 18; pass = pass + 1) {
		work = work + recalc();
	}
	return work + int(cells[125] * 100.0);
}
`,
	})

	register(&Program{
		Name: "spice",
		Description: "analog circuit simulation: matrix stamping and a " +
			"Gauss-Seidel sweep with device-model helpers, mixed banks; " +
			"the techniques help modestly and PR adds nothing (class 3)",
		Class: 3,
		Source: `
float gmat[144];
float rhs[12];
float volt[12];
int nnode = 12;

float shape(float e) { return e * 0.001; }

float diode(float v) {
	// Hot device model; the cold overflow tail crosses calls.
	float x = v * 2.0;
	float e = 1.0 + x + x * x * 0.5 + x * x * x * 0.1666;
	if (e < 0.01) { e = 0.01; }
	if (e > 100000000.0) {
		float w1 = e * 0.5;
		float w2 = x - e;
		float w3 = x * e;
		w1 = shape(w1) + w2;
		w2 = shape(w2) + w3 + w1;
		w3 = shape(w3) + w1 + w2;
		gmat[0] = gmat[0] + (w1 + w2 + w3) * 0.000001;
	}
	return shape(e);
}

void stamp(int a, int b, float g) {
	gmat[a * 12 + a] = gmat[a * 12 + a] + g;
	gmat[b * 12 + b] = gmat[b * 12 + b] + g;
	gmat[a * 12 + b] = gmat[a * 12 + b] - g;
	gmat[b * 12 + a] = gmat[b * 12 + a] - g;
}

float sweep() {
	int i; int j;
	float delta = 0.0;
	for (i = 0; i < nnode; i = i + 1) {
		float sum = rhs[i];
		for (j = 0; j < nnode; j = j + 1) {
			if (j != i) { sum = sum - gmat[i * 12 + j] * volt[j]; }
		}
		float d = gmat[i * 12 + i];
		if (d < 0.001) { d = 0.001; }
		float nv = sum / d;
		float ch = nv - volt[i];
		if (ch < 0.0) { ch = 0.0 - ch; }
		delta = delta + ch;
		volt[i] = nv;
	}
	return delta;
}

float newton(int it) {
	// Mid-frequency Newton iteration: its loop state crosses the
	// diode/stamp/sweep calls.
	int i;
	float damp = 1.0 / (1.0 + float(it) * 0.01);
	float total = 0.0;
	for (i = 0; i < 11; i = i + 1) {
		float g = diode(volt[i]);
		stamp(i, (i + 2) % 12, g * 0.05 * damp);
		total = total + g;
	}
	return total * 0.001 + sweep();
}

int main() {
	int it; int i;
	for (i = 0; i < 144; i = i + 1) { gmat[i] = 0.0; }
	for (i = 0; i < nnode; i = i + 1) { rhs[i] = float(i % 5) * 0.1; volt[i] = 0.0; }
	for (i = 0; i < 11; i = i + 1) { stamp(i, i + 1, 0.5 + float(i % 3) * 0.1); }
	float total = 0.0;
	for (it = 0; it < 40; it = it + 1) {
		total = total + newton(it);
	}
	return int(total * 1000.0) + int(volt[5] * 10000.0);
}
`,
	})
}
