package benchprog_test

import (
	"testing"

	"repro"
	"repro/internal/benchprog"
	"repro/internal/interp"
)

func TestSuiteComplete(t *testing.T) {
	want := []string{
		"alvinn", "compress", "doduc", "ear", "eqntott", "espresso",
		"fpppp", "gcc", "li", "matrix300", "nasa7", "sc", "spice",
		"tomcatv",
	}
	got := benchprog.Names()
	if len(got) != len(want) {
		t.Fatalf("suite has %d programs, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("program %d = %s, want %s", i, got[i], want[i])
		}
	}
	if benchprog.ByName("ear") == nil {
		t.Error("ByName(ear) = nil")
	}
	if benchprog.ByName("nope") != nil {
		t.Error("ByName(nope) != nil")
	}
}

func TestAllProgramsCompileAndRun(t *testing.T) {
	for _, p := range benchprog.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog, err := callcost.Compile(p.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			res, err := interp.Run(prog.IR, interp.Options{MaxSteps: 30_000_000, Profile: true})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			// Deterministic and re-runnable.
			res2, err := interp.Run(prog.IR, interp.Options{MaxSteps: 30_000_000})
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if res.RetInt != res2.RetInt {
				t.Fatalf("nondeterministic result: %d vs %d", res.RetInt, res2.RetInt)
			}
			// Enough work to be a meaningful workload, small enough for
			// fast experiments.
			if res.Steps < 10_000 {
				t.Errorf("only %d steps; workload too small", res.Steps)
			}
			if res.Steps > 20_000_000 {
				t.Errorf("%d steps; workload too slow for the experiment sweeps", res.Steps)
			}
		})
	}
}

// TestProgramsHaveCharacter spot-checks the workload axes the suite was
// designed around: tomcatv has no calls outside main-level setup,
// ear/li are call-dominated, fpppp pressures the float bank.
func TestProgramsHaveCharacter(t *testing.T) {
	steps := func(name string) (*interp.Result, *callcost.Program) {
		p := benchprog.ByName(name)
		prog, err := callcost.Compile(p.Source)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := interp.Run(prog.IR, interp.Options{MaxSteps: 30_000_000, Profile: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return res, prog
	}

	// tomcatv: main only; one function in the whole program.
	_, tom := steps("tomcatv")
	if len(tom.IR.Funcs) != 1 {
		t.Errorf("tomcatv has %d functions, want 1 (single big call-free function)", len(tom.IR.Funcs))
	}

	// ear: calls per executed instruction should be high.
	earRes, _ := steps("ear")
	earCalls := 0.0
	for name, n := range earRes.Profile.Entries {
		if name != "main" {
			earCalls += n
		}
	}
	if earCalls < 1000 {
		t.Errorf("ear makes only %.0f calls; should be call-dominated", earCalls)
	}

	// li: recursive evaluator must re-enter eval many times.
	liRes, _ := steps("li")
	if liRes.Profile.Entries["eval"] < 1000 {
		t.Errorf("li eval entered %.0f times; should be deeply recursive", liRes.Profile.Entries["eval"])
	}
}
