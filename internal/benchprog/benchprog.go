// Package benchprog is the workload suite of the reproduction: one MC
// program per SPEC92 program the paper evaluates, engineered to match
// the workload character the paper documents for it — call intensity,
// loop structure, register-bank pressure, and the resulting response
// class (§7):
//
//	class 1: every technique contributes          — nasa7, ear
//	class 2: storage-class analysis dominates     — li, sc, matrix300
//	class 3: preference decision adds nothing     — eqntott, espresso,
//	                                                 compress, spice,
//	                                                 fpppp, doduc
//	class 4: nothing matters (one big function,
//	          no calls)                            — tomcatv
//
// SPEC92 sources and inputs are not available; the allocators only see
// live ranges, costs, and an interference graph, so any program with
// the same call/loop/pressure profile exercises the same decisions.
package benchprog

import (
	"fmt"
	"sort"
)

// Program is one benchmark workload.
type Program struct {
	// Name matches the SPEC92 program it stands in for.
	Name string
	// Description summarizes the workload character being mimicked.
	Description string
	// Class is the paper's §7 response class (1-4), 0 when the paper
	// does not classify the program.
	Class int
	// Source is the MC program text.
	Source string
}

var registry = map[string]*Program{}

func register(p *Program) {
	if _, dup := registry[p.Name]; dup {
		panic(fmt.Sprintf("duplicate benchmark %s", p.Name))
	}
	registry[p.Name] = p
}

// All returns every benchmark, sorted by name.
func All() []*Program {
	out := make([]*Program, 0, len(registry))
	for _, p := range registry {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the benchmark names, sorted.
func Names() []string {
	ps := All()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// ByName returns the named benchmark or nil.
func ByName(name string) *Program { return registry[name] }
