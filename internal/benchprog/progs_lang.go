package benchprog

func init() {
	register(&Program{
		Name: "gcc",
		Description: "compiler workload: a recursive-descent evaluator " +
			"over an encoded token stream — deep call chains, irregular " +
			"branching, integer pressure; both improved Chaitin and " +
			"priority-based do equally well",
		Class: 0,
		Source: `
int toks[512];
int ntok = 512;
int pos = 0;
int folded = 0;

int peek() {
	if (pos >= ntok) { return 0; }
	return toks[pos];
}

int advance() {
	int t = peek();
	pos = pos + 1;
	return t;
}

int parsePrimary() {
	int t = advance();
	if (t % 5 == 4 && pos < ntok - 2) {
		// "parenthesized": nested expression, consume a closer
		int v = parseExpr(2);
		advance();
		return v;
	}
	return t % 97;
}

int parseUnary() {
	if (peek() % 7 == 3) {
		advance();
		return 0 - parsePrimary();
	}
	return parsePrimary();
}

int parseExpr(int depth) {
	int left = parseUnary();
	while (pos < ntok && peek() % 3 == 1 && depth > 0) {
		int op = advance();
		int right = parseUnary();
		if (op % 2 == 0) {
			left = left + right;
			folded = folded + 1;
		} else {
			left = left * (right % 13 + 1);
		}
		left = left % 10007;
	}
	return left;
}

int constProp(int v) {
	if (v % 2 == 0) { return v / 2; }
	return v * 3 + 1;
}

int main() {
	int i; int pass;
	int sum = 0;
	for (pass = 0; pass < 10; pass = pass + 1) {
		for (i = 0; i < ntok; i = i + 1) {
			toks[i] = (i * 29 + pass * 13 + 5) % 211;
		}
		pos = 0;
		while (pos < ntok - 4) {
			int v = parseExpr(6);
			sum = (sum + constProp(v)) % 100003;
		}
	}
	return sum + folded % 1000;
}
`,
	})

	register(&Program{
		Name: "li",
		Description: "lisp interpreter: cons cells in parallel arrays, " +
			"deeply recursive eval with calls on every path — live ranges " +
			"on the hottest paths cross call sites constantly; " +
			"storage-class analysis dominates (class 2) and CBH falls " +
			"behind with profile weights",
		Class: 2,
		Source: `
int carA[512];
int cdrA[512];
int tagA[512];
int freep = 1;
int gcount = 0;

int cons(int a, int d) {
	if (freep >= 511) { freep = 1; gcount = gcount + 1; }
	carA[freep] = a;
	cdrA[freep] = d;
	tagA[freep] = 0;
	freep = freep + 1;
	return freep - 1;
}

int mknum(int v) {
	int c = cons(v, 0);
	tagA[c] = 1;
	return c;
}

int isnum(int c) { return tagA[c] == 1; }

int numval(int c) { return carA[c]; }

int eval(int expr, int depth) {
	if (depth <= 0) { return mknum(1); }
	if (isnum(expr)) { return expr; }
	// op, args, av, r are hot and referenced several times per entry
	// while crossing the recursive calls: a callee-save register is the
	// right (and cheapest) home for them.
	int op = carA[expr];
	int args = cdrA[expr];
	int a = eval(carA[args], depth - 1);
	int av = numval(a);
	int r = av % 9973;
	if (op % 3 == 0) {
		int b = eval(cdrA[args], depth - 1);
		r = (av + numval(b)) % 9973;
	}
	if (op % 3 == 1) { r = (av * 2 + op) % 9973; }
	if (op % 3 == 2) {
		if (av % 2 == 0) { r = av / 2 + args % 3; } else { r = av * 3 + 1; }
	}
	if (r > 2000000000) {
		// Cold error path: values live across calls that never run. The
		// base model burns callee-save registers on them at every eval
		// entry; storage-class analysis spills them for free.
		int d1 = op * 3 + r;
		int d2 = args + depth;
		int d3 = r - av;
		int d4 = op + av;
		d1 = numval(mknum(d1)) + d2;
		d2 = numval(mknum(d2)) + d3 + d1;
		d3 = numval(mknum(d3)) + d4 + d2;
		d4 = numval(mknum(d4)) + d1 + d3;
		gcount = gcount + (d1 + d2 + d3 + d4) % 7;
	}
	return mknum(r);
}

int build(int n) {
	if (n <= 0) { return mknum(n + 7); }
	int left = build(n - 1);
	int right = mknum(n * 5 % 97);
	return cons(n, cons(left, right));
}

int main() {
	int pass; int rep;
	int acc = 0;
	for (pass = 0; pass < 60; pass = pass + 1) {
		freep = 1;
		int tree = build(10);
		for (rep = 0; rep < 3; rep = rep + 1) {
			int r = eval(tree, 14);
			acc = (acc + numval(r) + gcount) % 100003;
		}
	}
	return acc + freep % 97;
}
`,
	})
}
