// Package interp executes MC programs in IR form. It serves three
// roles in the reproduction:
//
//   - reference semantics: the output of every register-allocated,
//     rewritten program must match the interpreter's output (the
//     differential-testing safety net);
//   - profiling: it records per-block execution counts, which become
//     the paper's "dynamic" (profile-based) frequency information;
//   - workload generation: the benchmark programs run under it to
//     produce the dynamic weights used by the evaluation.
package interp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/ir"
)

// Options control execution.
type Options struct {
	// Entry is the function to run; defaults to "main". It must take no
	// parameters.
	Entry string
	// MaxSteps bounds the number of executed instructions (0 means the
	// default of 500 million). Exceeding it returns ErrStepLimit.
	MaxSteps int64
	// Profile enables block-count profiling.
	Profile bool
}

// ErrStepLimit is returned when execution exceeds Options.MaxSteps.
var ErrStepLimit = errors.New("interp: step limit exceeded")

// Profile holds per-block execution counts, keyed by function name.
type Profile struct {
	// Blocks[fn][b] is the number of times block b of function fn
	// executed.
	Blocks map[string][]float64
	// Entries[fn] is the number of calls of fn (including the initial
	// entry call).
	Entries map[string]float64
}

// Result is the outcome of a run.
type Result struct {
	// RetInt / RetFloat hold the entry function's return value.
	RetInt   int64
	RetFloat float64
	// Steps is the number of IR instructions executed.
	Steps int64
	// Profile is non-nil when profiling was requested.
	Profile *Profile
}

// Run executes the program and returns the entry function's result.
func Run(p *ir.Program, opts Options) (*Result, error) {
	entry := opts.Entry
	if entry == "" {
		entry = "main"
	}
	fn := p.FuncByName[entry]
	if fn == nil {
		return nil, fmt.Errorf("interp: no function %q", entry)
	}
	if len(fn.Params) != 0 {
		return nil, fmt.Errorf("interp: entry %q must take no parameters", entry)
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 500_000_000
	}
	m := &machine{
		prog:     p,
		maxSteps: maxSteps,
		globals:  make(map[*ir.Symbol]*storage),
	}
	for _, g := range p.Globals {
		m.globals[g] = newStorage(g)
	}
	if opts.Profile {
		m.prof = &Profile{
			Blocks:  make(map[string][]float64),
			Entries: make(map[string]float64),
		}
		for _, f := range p.Funcs {
			m.prof.Blocks[f.Name] = make([]float64, len(f.Blocks))
		}
	}
	vi, vf, err := m.call(fn, nil, nil)
	if err != nil {
		return nil, err
	}
	res := &Result{Steps: m.steps, Profile: m.prof}
	if fn.HasResult {
		res.RetInt = vi
		res.RetFloat = vf
	}
	return res, nil
}

// storage is the backing memory of one symbol.
type storage struct {
	ints   []int64
	floats []float64
}

func newStorage(s *ir.Symbol) *storage {
	n := s.Size
	if n == 0 {
		n = 1
	}
	st := &storage{}
	if s.Class == ir.ClassFloat {
		st.floats = make([]float64, n)
		if !s.IsArray() {
			st.floats[0] = s.InitFloat
		}
	} else {
		st.ints = make([]int64, n)
		if !s.IsArray() {
			st.ints[0] = s.InitInt
		}
	}
	return st
}

type machine struct {
	prog     *ir.Program
	globals  map[*ir.Symbol]*storage
	steps    int64
	maxSteps int64
	prof     *Profile
	depth    int
}

// maxCallDepth bounds MC recursion so runaway recursion in a generated
// program fails cleanly instead of exhausting the Go stack.
const maxCallDepth = 10_000

// truncToInt converts a float to an int with defined behaviour for NaN
// and out-of-range values (NaN -> 0, saturating at the int64 limits), so
// the reference interpreter and the machine-level interpreter agree
// everywhere.
func truncToInt(f float64) int64 {
	if math.IsNaN(f) {
		return 0
	}
	if f >= math.MaxInt64 {
		return math.MaxInt64
	}
	if f <= math.MinInt64 {
		return math.MinInt64
	}
	return int64(f)
}

func (m *machine) call(fn *ir.Func, argsI []int64, argsF []float64) (int64, float64, error) {
	if m.depth++; m.depth > maxCallDepth {
		return 0, 0, fmt.Errorf("interp: call depth exceeds %d in %s", maxCallDepth, fn.Name)
	}
	defer func() { m.depth-- }()

	if m.prof != nil {
		m.prof.Entries[fn.Name]++
	}
	ints := make([]int64, fn.NumRegs())
	floats := make([]float64, fn.NumRegs())
	ai, af := 0, 0
	for _, p := range fn.Params {
		if fn.RegClass(p) == ir.ClassFloat {
			floats[p] = argsF[af]
			af++
		} else {
			ints[p] = argsI[ai]
			ai++
		}
	}
	locals := make(map[*ir.Symbol]*storage, len(fn.Locals))
	for _, l := range fn.Locals {
		locals[l] = newStorage(l)
	}
	mem := func(s *ir.Symbol) *storage {
		if s.Local {
			return locals[s]
		}
		return m.globals[s]
	}

	var profBlocks []float64
	if m.prof != nil {
		profBlocks = m.prof.Blocks[fn.Name]
	}

	blockID := 0
	for {
		blk := fn.Blocks[blockID]
		if profBlocks != nil {
			profBlocks[blockID]++
		}
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			m.steps++
			if m.steps > m.maxSteps {
				return 0, 0, ErrStepLimit
			}
			switch in.Op {
			case ir.OpNop:
			case ir.OpConstInt:
				ints[in.Dst] = in.IntVal
			case ir.OpConstFloat:
				floats[in.Dst] = in.FloatVal
			case ir.OpMove:
				if fn.RegClass(in.Dst) == ir.ClassFloat {
					floats[in.Dst] = floats[in.Args[0]]
				} else {
					ints[in.Dst] = ints[in.Args[0]]
				}
			case ir.OpI2F:
				floats[in.Dst] = float64(ints[in.Args[0]])
			case ir.OpF2I:
				ints[in.Dst] = truncToInt(floats[in.Args[0]])
			case ir.OpAdd:
				ints[in.Dst] = ints[in.Args[0]] + ints[in.Args[1]]
			case ir.OpSub:
				ints[in.Dst] = ints[in.Args[0]] - ints[in.Args[1]]
			case ir.OpMul:
				ints[in.Dst] = ints[in.Args[0]] * ints[in.Args[1]]
			case ir.OpDiv:
				d := ints[in.Args[1]]
				if d == 0 {
					return 0, 0, fmt.Errorf("interp: %s: division by zero at %s", fn.Name, in.Pos)
				}
				ints[in.Dst] = ints[in.Args[0]] / d
			case ir.OpRem:
				d := ints[in.Args[1]]
				if d == 0 {
					return 0, 0, fmt.Errorf("interp: %s: modulo by zero at %s", fn.Name, in.Pos)
				}
				ints[in.Dst] = ints[in.Args[0]] % d
			case ir.OpNeg:
				ints[in.Dst] = -ints[in.Args[0]]
			case ir.OpFAdd:
				floats[in.Dst] = floats[in.Args[0]] + floats[in.Args[1]]
			case ir.OpFSub:
				floats[in.Dst] = floats[in.Args[0]] - floats[in.Args[1]]
			case ir.OpFMul:
				floats[in.Dst] = floats[in.Args[0]] * floats[in.Args[1]]
			case ir.OpFDiv:
				floats[in.Dst] = floats[in.Args[0]] / floats[in.Args[1]]
			case ir.OpFNeg:
				floats[in.Dst] = -floats[in.Args[0]]
			case ir.OpICmp:
				ints[in.Dst] = boolToInt(cmpInt(in.Cond, ints[in.Args[0]], ints[in.Args[1]]))
			case ir.OpFCmp:
				ints[in.Dst] = boolToInt(cmpFloat(in.Cond, floats[in.Args[0]], floats[in.Args[1]]))
			case ir.OpLoad:
				st := mem(in.Sym)
				idx := 0
				if in.Sym.IsArray() {
					idx = int(ints[in.Args[0]])
					if idx < 0 || idx >= in.Sym.Size {
						return 0, 0, fmt.Errorf("interp: %s: index %d out of range [0,%d) for %s at %s",
							fn.Name, idx, in.Sym.Size, in.Sym.Name, in.Pos)
					}
				}
				if in.Sym.Class == ir.ClassFloat {
					floats[in.Dst] = st.floats[idx]
				} else {
					ints[in.Dst] = st.ints[idx]
				}
			case ir.OpStore:
				st := mem(in.Sym)
				idx := 0
				val := in.Args[len(in.Args)-1]
				if in.Sym.IsArray() {
					idx = int(ints[in.Args[0]])
					if idx < 0 || idx >= in.Sym.Size {
						return 0, 0, fmt.Errorf("interp: %s: index %d out of range [0,%d) for %s at %s",
							fn.Name, idx, in.Sym.Size, in.Sym.Name, in.Pos)
					}
				}
				if in.Sym.Class == ir.ClassFloat {
					st.floats[idx] = floats[val]
				} else {
					st.ints[idx] = ints[val]
				}
			case ir.OpCall:
				callee := m.prog.FuncByName[in.Callee]
				if callee == nil {
					return 0, 0, fmt.Errorf("interp: undefined function %s", in.Callee)
				}
				var ci []int64
				var cf []float64
				for j, a := range in.Args {
					if callee.RegClass(callee.Params[j]) == ir.ClassFloat {
						cf = append(cf, floats[a])
					} else {
						ci = append(ci, ints[a])
					}
				}
				ri, rf, err := m.call(callee, ci, cf)
				if err != nil {
					return 0, 0, err
				}
				if in.HasDst() {
					if fn.RegClass(in.Dst) == ir.ClassFloat {
						floats[in.Dst] = rf
					} else {
						ints[in.Dst] = ri
					}
				}
			case ir.OpRet:
				if len(in.Args) == 1 {
					if fn.ResultClass == ir.ClassFloat {
						return 0, floats[in.Args[0]], nil
					}
					return ints[in.Args[0]], 0, nil
				}
				return 0, 0, nil
			case ir.OpBr:
				if ints[in.Args[0]] != 0 {
					blockID = in.Then
				} else {
					blockID = in.Else
				}
			case ir.OpJmp:
				blockID = in.Then
			default:
				return 0, 0, fmt.Errorf("interp: unknown op %v", in.Op)
			}
		}
	}
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func cmpInt(c ir.Cond, a, b int64) bool {
	switch c {
	case ir.CondEQ:
		return a == b
	case ir.CondNE:
		return a != b
	case ir.CondLT:
		return a < b
	case ir.CondLE:
		return a <= b
	case ir.CondGT:
		return a > b
	case ir.CondGE:
		return a >= b
	}
	return false
}

func cmpFloat(c ir.Cond, a, b float64) bool {
	switch c {
	case ir.CondEQ:
		return a == b
	case ir.CondNE:
		return a != b
	case ir.CondLT:
		return a < b
	case ir.CondLE:
		return a <= b
	case ir.CondGT:
		return a > b
	case ir.CondGE:
		return a >= b
	}
	return false
}
