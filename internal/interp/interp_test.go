package interp_test

import (
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/interp"
)

func run(t *testing.T, src string, opts interp.Options) *interp.Result {
	t.Helper()
	prog, err := compile.Source(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := interp.Run(prog, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestEntryOptions(t *testing.T) {
	src := `
int alt() { return 99; }
int main() { return 1; }`
	if res := run(t, src, interp.Options{}); res.RetInt != 1 {
		t.Errorf("default entry: %d", res.RetInt)
	}
	if res := run(t, src, interp.Options{Entry: "alt"}); res.RetInt != 99 {
		t.Errorf("alt entry: %d", res.RetInt)
	}
	prog, _ := compile.Source(src)
	if _, err := interp.Run(prog, interp.Options{Entry: "missing"}); err == nil {
		t.Error("missing entry accepted")
	}
}

func TestEntryMustBeNullary(t *testing.T) {
	prog, err := compile.Source(`int main() { return f(1); } int f(int x) { return x; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := interp.Run(prog, interp.Options{Entry: "f"}); err == nil ||
		!strings.Contains(err.Error(), "no parameters") {
		t.Errorf("err = %v", err)
	}
}

func TestFloatReturn(t *testing.T) {
	prog, err := compile.Source(`
float main2() { return 2.5; }
int main() { return int(main2() * 2.0); }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(prog, interp.Options{Entry: "main2"})
	if err != nil {
		t.Fatal(err)
	}
	if res.RetFloat != 2.5 {
		t.Errorf("RetFloat = %v", res.RetFloat)
	}
}

func TestStepsCounted(t *testing.T) {
	res := run(t, `int main() { int i; int s = 0; for (i = 0; i < 100; i = i + 1) { s = s + i; } return s; }`, interp.Options{})
	if res.RetInt != 4950 {
		t.Errorf("result %d", res.RetInt)
	}
	if res.Steps < 400 {
		t.Errorf("steps %d implausibly low for a 100-iteration loop", res.Steps)
	}
}

func TestGlobalStateIsolatedBetweenRuns(t *testing.T) {
	src := `
int counter = 10;
int main() { counter = counter + 1; return counter; }`
	prog, err := compile.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := interp.Run(prog, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := interp.Run(prog, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.RetInt != 11 || r2.RetInt != 11 {
		t.Errorf("runs share global state: %d then %d", r1.RetInt, r2.RetInt)
	}
}

func TestTruncationCorners(t *testing.T) {
	// NaN and out-of-range conversions must be deterministic, matching
	// the machine-level interpreter's conventions.
	res := run(t, `
int main() {
	float z = 0.0;
	float nan = z / z;
	float huge = 1.0 / z;
	return int(nan) * 1000 + int(huge) / 1000000 % 1000;
}`, interp.Options{})
	// int(NaN) = 0; int(+Inf) saturates at MaxInt64.
	if res.RetInt != (9223372036854 % 1000) { // MaxInt64/1e6 % 1000
		t.Errorf("got %d", res.RetInt)
	}
}

func TestProfileBlocksMatchSteps(t *testing.T) {
	res := run(t, `
int f(int x) { return x * 2; }
int main() {
	int i; int s = 0;
	for (i = 0; i < 9; i = i + 1) { s = s + f(i); }
	return s;
}`, interp.Options{Profile: true})
	if res.Profile == nil {
		t.Fatal("no profile")
	}
	if res.Profile.Entries["f"] != 9 {
		t.Errorf("f entries %v", res.Profile.Entries["f"])
	}
	// Total block executions x average block size should be in the same
	// ballpark as Steps; at minimum, every function with entries has
	// nonzero block counts.
	for name, blocks := range res.Profile.Blocks {
		if res.Profile.Entries[name] == 0 {
			continue
		}
		sum := 0.0
		for _, c := range blocks {
			sum += c
		}
		if sum == 0 {
			t.Errorf("%s entered but no blocks counted", name)
		}
	}
}
