package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func TestConfigBasics(t *testing.T) {
	c := NewConfig(6, 4, 3, 2)
	if c.Total(ir.ClassInt) != 9 || c.Total(ir.ClassFloat) != 6 {
		t.Fatalf("totals wrong: %v %v", c.Total(ir.ClassInt), c.Total(ir.ClassFloat))
	}
	if c.String() != "(6,4,3,2)" {
		t.Errorf("String = %s", c.String())
	}
	if !c.Valid() {
		t.Error("config should be valid")
	}
	if NewConfig(5, 4, 0, 0).Valid() {
		t.Error("below int minimum should be invalid")
	}
	if NewConfig(6, 3, 0, 0).Valid() {
		t.Error("below float minimum should be invalid")
	}
}

func TestSaveClassPartition(t *testing.T) {
	f := func(callerRaw, calleeRaw uint8) bool {
		caller := int(callerRaw%10) + 6
		callee := int(calleeRaw % 12)
		c := NewConfig(caller, 6, callee, 2)
		for r := 0; r < c.Total(ir.ClassInt); r++ {
			pr := PhysReg(r)
			isCaller := c.IsCallerSave(ir.ClassInt, pr)
			isCallee := c.IsCalleeSave(ir.ClassInt, pr)
			if isCaller == isCallee {
				return false // must be exactly one of the two
			}
			if isCaller != (r < caller) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegLists(t *testing.T) {
	c := NewConfig(7, 5, 3, 2)
	caller := c.CallerSaveRegs(ir.ClassInt)
	callee := c.CalleeSaveRegs(ir.ClassInt)
	if len(caller) != 7 || len(callee) != 3 {
		t.Fatalf("lengths %d %d", len(caller), len(callee))
	}
	if caller[0] != 0 || callee[0] != 7 || callee[2] != 9 {
		t.Errorf("register numbering wrong: %v %v", caller, callee)
	}
	for _, r := range caller {
		if !c.IsCallerSave(ir.ClassInt, r) {
			t.Errorf("reg %d should be caller-save", r)
		}
	}
	for _, r := range callee {
		if !c.IsCalleeSave(ir.ClassInt, r) {
			t.Errorf("reg %d should be callee-save", r)
		}
	}
}

func TestSweepIsValidAndStartsAtMinimum(t *testing.T) {
	sweep := Sweep()
	if len(sweep) < 10 {
		t.Fatalf("sweep too short: %d", len(sweep))
	}
	if sweep[0] != NewConfig(6, 4, 0, 0) {
		t.Errorf("sweep starts at %s, want (6,4,0,0)", sweep[0])
	}
	for _, c := range sweep {
		if !c.Valid() {
			t.Errorf("sweep config %s is invalid", c)
		}
	}
	last := sweep[len(sweep)-1]
	if last != Full {
		t.Errorf("sweep should end at the full machine, ends at %s", last)
	}
	if Full.Total(ir.ClassInt) != 26 || Full.Total(ir.ClassFloat) != 16 {
		t.Errorf("full machine should be 26 int / 16 float, is %d/%d",
			Full.Total(ir.ClassInt), Full.Total(ir.ClassFloat))
	}
}

func TestShortSweepSubset(t *testing.T) {
	for _, c := range ShortSweep() {
		if !c.Valid() {
			t.Errorf("short sweep config %s invalid", c)
		}
	}
}
