// Package machine models the target register file: a MIPS-like RISC
// with two independent register banks (integer and float), each split
// into caller-save and callee-save registers.
//
// The paper's experiments sweep over configurations written
// (Ri, Rf, Ei, Ef): Ri/Rf caller-save and Ei/Ef callee-save registers
// in the integer/float banks. The standard MIPS calling convention
// dedicates 4 integer + 2 float registers to arguments and 2 + 2 to
// results, all caller-save, which is why the smallest configuration the
// paper uses is (6,4,0,0).
package machine

import (
	"fmt"

	"repro/internal/ir"
)

// PhysReg is a physical register number within one bank. Within a bank
// of a Config, registers [0, Caller) are caller-save and
// [Caller, Caller+Callee) are callee-save.
type PhysReg int

// NoPhysReg marks "no register assigned" (the live range is in memory).
const NoPhysReg PhysReg = -1

// Config is one register-file configuration.
type Config struct {
	// Caller[c] is the number of caller-save registers in bank c.
	Caller [ir.NumClasses]int
	// Callee[c] is the number of callee-save registers in bank c.
	Callee [ir.NumClasses]int
}

// NewConfig builds a Config from the paper's (Ri, Rf, Ei, Ef) notation.
func NewConfig(ri, rf, ei, ef int) Config {
	var c Config
	c.Caller[ir.ClassInt] = ri
	c.Caller[ir.ClassFloat] = rf
	c.Callee[ir.ClassInt] = ei
	c.Callee[ir.ClassFloat] = ef
	return c
}

// Total returns the number of allocable registers in bank c.
func (cfg Config) Total(c ir.Class) int { return cfg.Caller[c] + cfg.Callee[c] }

// IsCallerSave reports whether register r of bank c is caller-save.
func (cfg Config) IsCallerSave(c ir.Class, r PhysReg) bool {
	return int(r) < cfg.Caller[c]
}

// IsCalleeSave reports whether register r of bank c is callee-save.
func (cfg Config) IsCalleeSave(c ir.Class, r PhysReg) bool {
	return int(r) >= cfg.Caller[c] && int(r) < cfg.Total(c)
}

// CallerSaveRegs returns the caller-save registers of bank c in order.
func (cfg Config) CallerSaveRegs(c ir.Class) []PhysReg {
	rs := make([]PhysReg, cfg.Caller[c])
	for i := range rs {
		rs[i] = PhysReg(i)
	}
	return rs
}

// CalleeSaveRegs returns the callee-save registers of bank c in order.
func (cfg Config) CalleeSaveRegs(c ir.Class) []PhysReg {
	rs := make([]PhysReg, cfg.Callee[c])
	for i := range rs {
		rs[i] = PhysReg(cfg.Caller[c] + i)
	}
	return rs
}

// String renders the configuration in the paper's (Ri,Rf,Ei,Ef) form.
func (cfg Config) String() string {
	return fmt.Sprintf("(%d,%d,%d,%d)",
		cfg.Caller[ir.ClassInt], cfg.Caller[ir.ClassFloat],
		cfg.Callee[ir.ClassInt], cfg.Callee[ir.ClassFloat])
}

// Valid reports whether the configuration has at least the registers the
// calling convention reserves (6 int, 4 float caller-save) and enough
// room for spill-code temporaries.
func (cfg Config) Valid() bool {
	return cfg.Caller[ir.ClassInt] >= MinCallerInt &&
		cfg.Caller[ir.ClassFloat] >= MinCallerFloat &&
		cfg.Callee[ir.ClassInt] >= 0 && cfg.Callee[ir.ClassFloat] >= 0
}

// The calling-convention minima: 4 int argument + 2 int result
// registers, 2 float argument + 2 float result registers, all
// caller-save.
const (
	MinCallerInt   = 6
	MinCallerFloat = 4
)

// Full is the complete machine: 26 integer and 16 float allocable
// registers, split like the MIPS convention (roughly half caller-save).
var Full = NewConfig(14, 8, 12, 8)

// Sweep is the register-pressure sweep used on the x-axis of the
// paper's figures: starting from the calling-convention minimum
// (6,4,0,0) and growing both the caller-save and callee-save sets up to
// the full machine.
func Sweep() []Config {
	return []Config{
		NewConfig(6, 4, 0, 0),
		NewConfig(6, 4, 1, 1),
		NewConfig(6, 4, 2, 2),
		NewConfig(6, 4, 3, 3),
		NewConfig(6, 4, 4, 4),
		NewConfig(6, 4, 6, 6),
		NewConfig(6, 4, 8, 8),
		NewConfig(8, 6, 0, 0),
		NewConfig(8, 6, 2, 2),
		NewConfig(8, 6, 4, 4),
		NewConfig(8, 6, 6, 6),
		NewConfig(9, 7, 3, 3),
		NewConfig(10, 8, 0, 0),
		NewConfig(10, 8, 2, 2),
		NewConfig(10, 8, 4, 4),
		NewConfig(10, 8, 6, 6),
		NewConfig(12, 8, 8, 8),
		Full,
	}
}

// ShortSweep is a smaller sweep for quick experiments and tests.
func ShortSweep() []Config {
	return []Config{
		NewConfig(6, 4, 0, 0),
		NewConfig(6, 4, 2, 2),
		NewConfig(8, 6, 4, 4),
		NewConfig(10, 8, 6, 6),
		Full,
	}
}
