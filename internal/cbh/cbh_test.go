package cbh_test

import (
	"testing"

	"repro/internal/cbh"
	"repro/internal/cfg"
	"repro/internal/compile"
	"repro/internal/freq"
	"repro/internal/interference"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/liverange"
	"repro/internal/machine"
	"repro/internal/regalloc"
)

func context(t *testing.T, src, fn string, config machine.Config, class ir.Class) *regalloc.ClassContext {
	t.Helper()
	prog, err := compile.Source(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := interp.Run(prog, interp.Options{Profile: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	pf := freq.FromProfile(prog, res.Profile)
	f := prog.FuncByName[fn]
	g := cfg.New(f)
	live := liveness.Compute(f, g)
	var graphs [ir.NumClasses]*interference.Graph
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		graphs[c] = interference.Build(f, live, c)
		graphs[c].Coalesce(false, config.Total(c))
	}
	ranges := liverange.Analyze(f, live, &graphs, pf.ByFunc[fn], nil)
	return &regalloc.ClassContext{
		Fn: f, Class: class, Graph: graphs[class], Ranges: ranges, Config: config,
	}
}

const crossSrc = `
int helper(int v) { return v + 1; }
int hot(int a, int b) {
	int keep = a * 3;
	int more = b * 5;
	int r = helper(a);
	r = r + helper(b);
	return keep + more + r;
}
int main() {
	int i; int s = 0;
	for (i = 0; i < 50; i = i + 1) { s = s + hot(i, i + 1); }
	return s;
}`

func TestCrossingRangesNeverInCallerSave(t *testing.T) {
	// The defining CBH constraint: a live range crossing a call
	// interferes with every caller-save register.
	for _, cfgRegs := range []machine.Config{
		machine.NewConfig(6, 4, 2, 2),
		machine.NewConfig(6, 4, 6, 6),
		machine.NewConfig(10, 8, 4, 4),
	} {
		ctx := context(t, crossSrc, "hot", cfgRegs, ir.ClassInt)
		res := (&cbh.CBH{}).Allocate(ctx)
		for rep, col := range res.Colors {
			rg := ctx.RangeOf(rep)
			if rg != nil && rg.CrossesCall && cfgRegs.IsCallerSave(ir.ClassInt, col) {
				t.Errorf("%s: crossing range v%d in caller-save register %d", cfgRegs, rep, col)
			}
		}
	}
}

func TestCrossingRangesSpillWithoutCalleeRegs(t *testing.T) {
	// With zero callee-save registers, crossing ranges have nowhere to
	// go: CBH must spill them (the over-constraining the paper
	// criticizes).
	cfgRegs := machine.NewConfig(6, 4, 0, 0)
	ctx := context(t, crossSrc, "hot", cfgRegs, ir.ClassInt)
	res := (&cbh.CBH{}).Allocate(ctx)
	spilledCrossing := 0
	for _, rep := range res.Spilled {
		if rg := ctx.RangeOf(rep); rg != nil && rg.CrossesCall {
			spilledCrossing++
		}
	}
	if spilledCrossing == 0 {
		t.Error("expected crossing ranges to spill with no callee-save registers")
	}
}

func TestCalleeRegistersUnlockOnDemand(t *testing.T) {
	// With callee-save registers available and hot crossing ranges,
	// CBH should unlock (pay for) registers rather than spill hot
	// ranges.
	cfgRegs := machine.NewConfig(6, 4, 4, 4)
	ctx := context(t, crossSrc, "hot", cfgRegs, ir.ClassInt)
	res := (&cbh.CBH{}).Allocate(ctx)
	colored := 0
	for rep, col := range res.Colors {
		rg := ctx.RangeOf(rep)
		if rg != nil && rg.CrossesCall && cfgRegs.IsCalleeSave(ir.ClassInt, col) {
			colored++
		}
	}
	if colored == 0 {
		t.Error("no crossing range received a callee-save register despite supply")
	}
}

func TestCompleteAndConflictFree(t *testing.T) {
	for _, cfgRegs := range machine.ShortSweep() {
		ctx := context(t, crossSrc, "hot", cfgRegs, ir.ClassInt)
		res := (&cbh.CBH{}).Allocate(ctx)
		for _, n := range ctx.Nodes() {
			_, colored := res.Colors[n]
			spilled := false
			for _, s := range res.Spilled {
				if s == n {
					spilled = true
				}
			}
			if colored == spilled {
				t.Errorf("%s: node v%d not exactly-once accounted", cfgRegs, n)
			}
		}
		for a, ca := range res.Colors {
			for b, cb := range res.Colors {
				if a < b && ca == cb && ctx.Graph.Interfere(a, b) {
					t.Errorf("%s: v%d and v%d interfere but share %d", cfgRegs, a, b, ca)
				}
			}
		}
	}
}

func TestName(t *testing.T) {
	if (&cbh.CBH{}).Name() != "cbh" {
		t.Error("name")
	}
}
