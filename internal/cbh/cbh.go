// Package cbh implements the CBH (Chaitin/Briggs-Hierarchical) cost
// model the paper compares against in §10, the calling-convention
// extension of Chaitin-style coloring adopted by several production
// compilers of the era (and by hierarchical coloring in the Tera
// compiler):
//
//   - a live range that crosses a call interferes with every
//     caller-save register, so it can only receive a callee-save
//     register or spill;
//
//   - every callee-save register is represented by a
//     callee-save-register live range spanning the whole function, with
//     two references (the save at entry and the restore at exit), hence
//     spill cost 2 × entry frequency. While such a register range is
//     unspilled it owns its register; spilling it means paying the
//     entry/exit save/restore, after which the register becomes
//     available to ordinary live ranges.
//
// When simplification blocks, the cheapest candidate — ordinary or
// register range — spills, so the allocator effectively asks: is
// saving/restoring one more callee-save register cheaper than spilling
// any remaining live range?
package cbh

import (
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/regalloc"
)

// CBH is the strategy.
type CBH struct {
	// Optimistic applies Briggs' optimistic push to ordinary live
	// ranges when simplification blocks and no candidate is cheaper
	// than unlocking a register.
	Optimistic bool
}

// Name implements regalloc.Strategy.
func (s *CBH) Name() string { return "cbh" }

// Allocate implements regalloc.Strategy.
func (s *CBH) Allocate(ctx *regalloc.ClassContext) *regalloc.ClassResult {
	res := regalloc.NewClassResult()
	n := ctx.N()
	nCaller := ctx.Config.Caller[ctx.Class]
	calleeRegs := ctx.Config.CalleeSaveRegs(ctx.Class)

	nodes := ctx.Nodes()
	nodeSet := make(map[ir.Reg]bool, len(nodes))
	for _, r := range nodes {
		nodeSet[r] = true
	}
	crosses := func(rep ir.Reg) bool {
		rg := ctx.RangeOf(rep)
		return rg != nil && rg.CrossesCall
	}

	// Graph degrees among ordinary nodes.
	deg := make(map[ir.Reg]int, len(nodes))
	for _, r := range nodes {
		d := 0
		ctx.Graph.Neighbors(r, func(nb ir.Reg) {
			if nodeSet[nb] {
				d++
			}
		})
		deg[r] = d
	}

	// Callee-save-register live ranges: initially all locked (they own
	// their registers). Spilling one unlocks the register for ordinary
	// ranges at the price of the entry/exit save/restore.
	locked := len(calleeRegs)
	unlocked := make(map[machine.PhysReg]bool)
	regRangeCost := 2 * ctx.Ranges.EntryFreq

	// Effective degree: ordinary neighbors still in the graph, plus the
	// locked register ranges (they span the whole function and so
	// conflict with everything), plus — for ranges crossing calls — all
	// caller-save registers.
	removed := make(map[ir.Reg]bool, len(nodes))
	remaining := len(nodes)
	effDeg := func(r ir.Reg) int {
		d := deg[r] + locked
		if crosses(r) {
			d += nCaller
		}
		return d
	}
	removeNode := func(r ir.Reg) {
		removed[r] = true
		remaining--
		ctx.Graph.Neighbors(r, func(nb ir.Reg) {
			if nodeSet[nb] && !removed[nb] {
				deg[nb]--
			}
		})
	}

	stack := &regalloc.ColorStack{}
	for remaining > 0 {
		// Remove any node with a guaranteed color.
		progressed := false
		for _, r := range nodes {
			if removed[r] || effDeg(r) >= n {
				continue
			}
			removeNode(r)
			stack.Push(r)
			if ctx.Traced() {
				ctx.Emit(obs.Event{Kind: obs.KindSimplifyPop, Reg: r,
					Reason: obs.ReasonUnconstrained, N: stack.Len()})
			}
			progressed = true
		}
		if progressed {
			continue
		}

		// Blocked: following the paper's description of CBH, the
		// candidate with the LEAST spill cost is chosen from the
		// remaining live ranges including the callee-save-register
		// ranges — spilling a register range means its entry/exit
		// save/restore is cheaper than spilling any ordinary range.
		candReg := ir.NoReg
		candKey := 0.0
		for _, r := range nodes {
			if removed[r] {
				continue
			}
			rg := ctx.RangeOf(r)
			if rg == nil || rg.NoSpill {
				continue
			}
			k := rg.SpillCost
			if candReg == ir.NoReg || k < candKey || (k == candKey && r < candReg) {
				candReg, candKey = r, k
			}
		}
		regRangeKey := regRangeCost

		if locked > 0 && (candReg == ir.NoReg || regRangeKey <= candKey) {
			// Spill a callee-save-register live range: unlock the next
			// locked register.
			for _, pr := range calleeRegs {
				if !unlocked[pr] {
					unlocked[pr] = true
					if ctx.Traced() {
						ctx.Emit(obs.Event{Kind: obs.KindSpillChoice, Reg: ir.NoReg,
							Color: pr, Reason: obs.ReasonUnlockCallee, Key: regRangeKey})
					}
					break
				}
			}
			locked--
			continue
		}
		if candReg == ir.NoReg {
			// Only unspillable temporaries remain and no register range
			// is left to unlock; push the lowest-degree one.
			for _, r := range nodes {
				if !removed[r] && (candReg == ir.NoReg || effDeg(r) < effDeg(candReg)) {
					candReg = r
				}
			}
			removeNode(candReg)
			stack.Push(candReg)
			if ctx.Traced() {
				ctx.Emit(obs.Event{Kind: obs.KindSimplifyPop, Reg: candReg,
					Reason: obs.ReasonUnspillable, N: stack.Len()})
			}
			continue
		}
		removeNode(candReg)
		if s.Optimistic {
			stack.Push(candReg)
			if ctx.Traced() {
				ctx.Emit(obs.Event{Kind: obs.KindSimplifyPop, Reg: candReg,
					Key: candKey, Reason: obs.ReasonOptimistic, N: stack.Len()})
			}
		} else {
			res.Spilled = append(res.Spilled, candReg)
			ctx.EmitSpill(candReg, obs.ReasonBlocked, candKey)
		}
	}

	// Color assignment: ordinary Chaitin popping, with the CBH
	// universe: crossing ranges may only use unlocked callee-save
	// registers; others may use caller-save or unlocked callee-save.
	for {
		rep, ok := stack.Pop()
		if !ok {
			break
		}
		free := ctx.FreeColors(res, rep)
		var usable []machine.PhysReg
		for _, pr := range free {
			if ctx.Config.IsCalleeSave(ctx.Class, pr) {
				if unlocked[pr] {
					usable = append(usable, pr)
				}
				continue
			}
			if !crosses(rep) {
				usable = append(usable, pr)
			}
		}
		if len(usable) == 0 {
			rg := ctx.RangeOf(rep)
			if rg != nil && rg.NoSpill && len(free) > 0 {
				// A spill temporary crossing no call always has a
				// caller-save register available in practice; if the
				// universe is empty (degenerate), fall back to any free
				// register rather than looping forever.
				ctx.Assign(res, rep, free[0])
				ctx.EmitAssign(rep, free[0], false)
				continue
			}
			res.Spilled = append(res.Spilled, rep)
			ctx.EmitSpill(rep, obs.ReasonNoColor, 0)
			continue
		}
		// Prefer callee-save for crossing ranges (the only choice),
		// caller-save otherwise, like the base model.
		choice := usable[0]
		if !crosses(rep) {
			for _, pr := range usable {
				if ctx.Config.IsCallerSave(ctx.Class, pr) {
					choice = pr
					break
				}
			}
		}
		ctx.Assign(res, rep, choice)
		ctx.EmitAssign(rep, choice, crosses(rep))
	}
	return res
}
