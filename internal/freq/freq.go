// Package freq produces execution-frequency information, the weights
// behind every cost in the paper's model: spill cost, caller-save cost,
// and callee-save cost are all reference/call counts weighted by how
// often the referencing block executes.
//
// Two providers mirror the paper's "static" and "dynamic" experiments:
//
//   - Static estimates: branch probabilities of 0.5, back edges taken
//     with probability 0.9 (so a loop multiplies its body by ~10, the
//     classic estimate), composed with an interprocedural call-graph
//     propagation from main.
//   - Profile-based: exact block and entry counts recorded by the IR
//     interpreter.
package freq

import (
	"repro/internal/cfg"
	"repro/internal/interp"
	"repro/internal/ir"
)

// FuncFreq holds absolute frequencies for one function.
type FuncFreq struct {
	// Entry is the (estimated or measured) number of invocations.
	Entry float64
	// Block[b] is the absolute execution count of block b across the
	// whole program run.
	Block []float64
}

// ProgramFreq maps every function to its frequencies.
type ProgramFreq struct {
	ByFunc map[string]*FuncFreq
}

// Of returns the frequencies of fn (never nil for functions of the
// program the ProgramFreq was built from).
func (pf *ProgramFreq) Of(fn *ir.Func) *FuncFreq { return pf.ByFunc[fn.Name] }

// FromProfile converts interpreter profile counts into frequencies.
func FromProfile(p *ir.Program, prof *interp.Profile) *ProgramFreq {
	pf := &ProgramFreq{ByFunc: make(map[string]*FuncFreq, len(p.Funcs))}
	for _, fn := range p.Funcs {
		ff := &FuncFreq{Entry: prof.Entries[fn.Name]}
		counts := prof.Blocks[fn.Name]
		ff.Block = make([]float64, len(fn.Blocks))
		copy(ff.Block, counts)
		pf.ByFunc[fn.Name] = ff
	}
	return pf
}

// Static computes estimated frequencies without running the program.
func Static(p *ir.Program) *ProgramFreq {
	// Per-invocation local block frequencies.
	local := make(map[string][]float64, len(p.Funcs))
	graphs := make(map[string]*cfg.Graph, len(p.Funcs))
	for _, fn := range p.Funcs {
		g := cfg.New(fn)
		graphs[fn.Name] = g
		local[fn.Name] = localFrequencies(fn, g)
	}

	// Interprocedural entry counts: main runs once; each call site
	// contributes caller-entry x local-site-frequency. Recursive cycles
	// would diverge, so iteration is capped and growth clamped.
	entries := make(map[string]float64, len(p.Funcs))
	const (
		passes  = 25
		maxFreq = 1e12
	)
	for pass := 0; pass < passes; pass++ {
		next := make(map[string]float64, len(p.Funcs))
		if _, ok := p.FuncByName["main"]; ok {
			next["main"] = 1
		}
		for _, fn := range p.Funcs {
			callerEntry := entries[fn.Name]
			if pass == 0 && fn.Name == "main" {
				callerEntry = 1
			}
			if callerEntry == 0 {
				continue
			}
			lf := local[fn.Name]
			for _, b := range fn.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					if in.Op != ir.OpCall {
						continue
					}
					next[in.Callee] += callerEntry * lf[b.ID]
				}
			}
		}
		for k, v := range next {
			if v > maxFreq {
				next[k] = maxFreq
			}
		}
		converged := len(next) == len(entries)
		if converged {
			for k, v := range next {
				old := entries[k]
				if diff := v - old; diff > 1e-6*v+1e-9 || diff < -(1e-6*v+1e-9) {
					converged = false
					break
				}
			}
		}
		entries = next
		if converged {
			break
		}
	}

	pf := &ProgramFreq{ByFunc: make(map[string]*FuncFreq, len(p.Funcs))}
	for _, fn := range p.Funcs {
		e := entries[fn.Name]
		lf := local[fn.Name]
		ff := &FuncFreq{Entry: e, Block: make([]float64, len(fn.Blocks))}
		for i, w := range lf {
			ff.Block[i] = e * w
		}
		pf.ByFunc[fn.Name] = ff
	}
	return pf
}

// localFrequencies solves the intra-procedural flow equations by damped
// iteration over reverse postorder: entry has frequency 1; every other
// block receives its predecessors' frequency split by edge probability.
// Back edges carry probability backEdgeProb so a simple loop body runs
// about 1/(1-backEdgeProb) = 10 times per entry.
func localFrequencies(fn *ir.Func, g *cfg.Graph) []float64 {
	const (
		backEdgeProb = 0.9
		iterations   = 200
		tolerance    = 1e-9
	)
	n := len(fn.Blocks)
	w := make([]float64, n)

	// Edge probabilities from each block.
	prob := make(map[[2]int]float64)
	for _, b := range fn.Blocks {
		succs := g.Succs[b.ID]
		switch len(succs) {
		case 0:
		case 1:
			prob[[2]int{b.ID, succs[0]}] = 1
		default:
			s0, s1 := succs[0], succs[1]
			back0 := g.Dominates(s0, b.ID)
			back1 := g.Dominates(s1, b.ID)
			// Loop-exit heuristic: an edge that leaves the loop (to a
			// block of smaller loop depth) is predicted not-taken.
			exit0 := g.LoopDepth[s0] < g.LoopDepth[b.ID]
			exit1 := g.LoopDepth[s1] < g.LoopDepth[b.ID]
			switch {
			case back0 && !back1, exit1 && !exit0:
				prob[[2]int{b.ID, s0}] = backEdgeProb
				prob[[2]int{b.ID, s1}] = 1 - backEdgeProb
			case back1 && !back0, exit0 && !exit1:
				prob[[2]int{b.ID, s1}] = backEdgeProb
				prob[[2]int{b.ID, s0}] = 1 - backEdgeProb
			default:
				prob[[2]int{b.ID, s0}] = 0.5
				prob[[2]int{b.ID, s1}] = 0.5
			}
		}
	}

	for iter := 0; iter < iterations; iter++ {
		delta := 0.0
		for _, id := range g.RPO {
			var nw float64
			if id == 0 {
				nw = 1
			}
			for _, p := range g.Preds[id] {
				nw += w[p] * prob[[2]int{p, id}]
			}
			d := nw - w[id]
			if d < 0 {
				d = -d
			}
			delta += d
			w[id] = nw
		}
		if delta < tolerance {
			break
		}
	}
	return w
}
