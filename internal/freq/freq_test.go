package freq_test

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/freq"
	"repro/internal/interp"
	"repro/internal/ir"
)

func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := compile.Source(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func TestStaticLoopMultiplier(t *testing.T) {
	prog := build(t, `
int main() {
	int i; int s = 0;
	for (i = 0; i < 100; i = i + 1) { s = s + i; }
	return s;
}`)
	pf := freq.Static(prog)
	ff := pf.Of(prog.FuncByName["main"])
	if ff.Entry != 1 {
		t.Fatalf("main entry = %v, want 1", ff.Entry)
	}
	// Some block (the loop body) should have frequency near 9-10x the
	// entry block.
	maxW := 0.0
	for _, w := range ff.Block {
		if w > maxW {
			maxW = w
		}
	}
	if maxW < 5 || maxW > 20 {
		t.Errorf("hottest block weight = %v, want ~9-10", maxW)
	}
}

func TestStaticNestedLoops(t *testing.T) {
	prog := build(t, `
int main() {
	int i; int j; int s = 0;
	for (i = 0; i < 9; i = i + 1) {
		for (j = 0; j < 9; j = j + 1) { s = s + 1; }
	}
	return s;
}`)
	pf := freq.Static(prog)
	ff := pf.Of(prog.FuncByName["main"])
	maxW := 0.0
	for _, w := range ff.Block {
		if w > maxW {
			maxW = w
		}
	}
	// Two nested loops: ~10 * ~10 = ~100.
	if maxW < 40 || maxW > 250 {
		t.Errorf("hottest block weight = %v, want ~100", maxW)
	}
}

func TestStaticCallPropagation(t *testing.T) {
	prog := build(t, `
int leaf(int x) { return x + 1; }
int mid(int x) { return leaf(x) + leaf(x + 1); }
int main() {
	int i; int s = 0;
	for (i = 0; i < 50; i = i + 1) { s = s + mid(i); }
	return s;
}`)
	pf := freq.Static(prog)
	midF := pf.ByFunc["mid"]
	leafF := pf.ByFunc["leaf"]
	if midF.Entry <= 1 {
		t.Errorf("mid entry = %v, want > 1 (called in a loop)", midF.Entry)
	}
	// leaf is called twice per mid call.
	ratio := leafF.Entry / midF.Entry
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("leaf/mid entry ratio = %v, want ~2", ratio)
	}
}

func TestStaticRecursionIsBounded(t *testing.T) {
	prog := build(t, `
int f(int n) { if (n <= 0) { return 0; } return f(n - 1) + 1; }
int main() { return f(10); }`)
	pf := freq.Static(prog)
	e := pf.ByFunc["f"].Entry
	if e <= 0 {
		t.Fatalf("recursive f entry = %v, want > 0", e)
	}
	if e > 1e12 {
		t.Fatalf("recursive f entry = %v, not clamped", e)
	}
}

func TestStaticDeadFunctionHasZeroFreq(t *testing.T) {
	prog := build(t, `
int unused(int x) { return x * 2; }
int main() { return 1; }`)
	pf := freq.Static(prog)
	if e := pf.ByFunc["unused"].Entry; e != 0 {
		t.Errorf("dead function entry = %v, want 0", e)
	}
}

func TestFromProfileMatchesInterpreter(t *testing.T) {
	prog := build(t, `
int work(int n) { return n * n; }
int main() {
	int i; int s = 0;
	for (i = 0; i < 13; i = i + 1) { s = s + work(i); }
	return s;
}`)
	res, err := interp.Run(prog, interp.Options{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	pf := freq.FromProfile(prog, res.Profile)
	if e := pf.ByFunc["work"].Entry; e != 13 {
		t.Errorf("work entry = %v, want 13", e)
	}
	if e := pf.ByFunc["main"].Entry; e != 1 {
		t.Errorf("main entry = %v, want 1", e)
	}
	// Block counts must be non-negative and the entry block count 1.
	mainF := pf.ByFunc["main"]
	if mainF.Block[0] != 1 {
		t.Errorf("main entry block = %v, want 1", mainF.Block[0])
	}
	workF := pf.ByFunc["work"]
	total := 0.0
	for _, c := range workF.Block {
		total += c
	}
	if total < 13 {
		t.Errorf("work total block executions = %v, want >= 13", total)
	}
}

func TestBranchHalving(t *testing.T) {
	prog := build(t, `
int main() {
	int x = 3;
	if (x > 0) { x = x + 1; } else { x = x - 1; }
	return x;
}`)
	pf := freq.Static(prog)
	ff := pf.Of(prog.FuncByName["main"])
	// Entry block weight 1; then/else ~0.5 each; join 1.
	half := 0
	for _, w := range ff.Block {
		if w > 0.4 && w < 0.6 {
			half++
		}
	}
	if half != 2 {
		t.Errorf("got %d blocks with ~0.5 weight, want 2 (then/else): %v", half, ff.Block)
	}
}
