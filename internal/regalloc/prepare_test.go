package regalloc_test

import (
	"reflect"
	"testing"

	"repro/internal/cfg"
	"repro/internal/compile"
	"repro/internal/freq"
	"repro/internal/interference"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/machine"
	"repro/internal/regalloc"
	"repro/internal/rewrite"
)

// prepFixture compiles src and returns the function plus its dynamic
// frequency table.
func prepFixture(t *testing.T, src, fn string) (*ir.Func, *freq.FuncFreq) {
	t.Helper()
	prog, err := compile.Source(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := interp.Run(prog, interp.Options{Profile: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	pf := freq.FromProfile(prog, res.Profile)
	return prog.FuncByName[fn], pf.ByFunc[fn]
}

// freshBaseGraphs builds the round-0 graphs of fn from scratch, as the
// oracle for what a FuncCache's bases must still look like after any
// number of allocations consumed them.
func freshBaseGraphs(fn *ir.Func) [ir.NumClasses]*interference.Graph {
	live := liveness.Compute(fn, cfg.New(fn))
	var out [ir.NumClasses]*interference.Graph
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		out[c] = interference.Build(fn, live, c)
	}
	return out
}

// TestNoCoalesceBaseGraphsStayFrozen pins the snapshot fix for the old
// aliasing hazard: with coalescing off, the coloring round used to
// receive the base graph itself, so anything it did (stale-entry
// compaction, union-find path halving, or a later Reconstruct patching
// it in place) reached the graph the next round — and now the prep
// cache — relied on. Snapshot semantics must make that impossible even
// through a spilling multi-round allocation.
func TestNoCoalesceBaseGraphsStayFrozen(t *testing.T) {
	fn, ff := prepFixture(t, pressureSrc, "f")
	prep := regalloc.Prepare(fn)
	opts := regalloc.DefaultOptions()
	opts.Coalesce = false

	config := machine.NewConfig(6, 4, 0, 0)
	fa1, err := regalloc.AllocatePrepared(prep, ff, config, &regalloc.Chaitin{}, rewrite.InsertSpills, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fa1.Rounds < 2 {
		t.Fatalf("fixture no longer spills (rounds=%d); the regression needs a Reconstruct round", fa1.Rounds)
	}
	want := freshBaseGraphs(fn)
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		if !interference.EdgesEqual(prep.BaseGraph(c), want[c]) {
			t.Errorf("class %v: prepared base graph mutated by a no-coalesce allocation", c)
		}
	}

	// A second allocation from the same (now warm) prep must reproduce
	// the first exactly.
	fa2, err := regalloc.AllocatePrepared(prep, ff, config, &regalloc.Chaitin{}, rewrite.InsertSpills, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fa1.Colors, fa2.Colors) || fa1.Rounds != fa2.Rounds {
		t.Error("allocation from a warm prep cache diverged from the cold one")
	}
}

// TestAllocatePreparedMatchesAllocateFunc holds a shared FuncCache
// to the same results as the from-scratch entry point across strategies
// and configurations, including spilling ones.
func TestAllocatePreparedMatchesAllocateFunc(t *testing.T) {
	fn, ff := prepFixture(t, pressureSrc, "f")
	prep := regalloc.Prepare(fn)
	for _, config := range []machine.Config{machine.NewConfig(6, 4, 0, 0), machine.NewConfig(8, 6, 4, 4), machine.Full} {
		for _, mode := range []struct {
			name string
			set  func(*regalloc.Options)
		}{
			{"default", func(o *regalloc.Options) {}},
			{"conservative", func(o *regalloc.Options) { o.ConservativeCoalesce = true }},
			{"no-coalesce", func(o *regalloc.Options) { o.Coalesce = false }},
			{"rebuild", func(o *regalloc.Options) { o.Rebuild = true }},
		} {
			opts := regalloc.DefaultOptions()
			mode.set(&opts)
			for _, strat := range []regalloc.Strategy{&regalloc.Chaitin{}, &regalloc.Chaitin{Optimistic: true}} {
				want, err := regalloc.AllocateFunc(fn, ff, config, strat, rewrite.InsertSpills, opts)
				if err != nil {
					t.Fatalf("%s %s at %s: %v", mode.name, strat.Name(), config, err)
				}
				got, err := regalloc.AllocatePrepared(prep, ff, config, strat, rewrite.InsertSpills, opts)
				if err != nil {
					t.Fatalf("%s %s at %s (prepared): %v", mode.name, strat.Name(), config, err)
				}
				if !reflect.DeepEqual(want.Colors, got.Colors) {
					t.Errorf("%s %s at %s: prepared colors diverge", mode.name, strat.Name(), config)
				}
				if want.Rounds != got.Rounds {
					t.Errorf("%s %s at %s: rounds %d vs %d", mode.name, strat.Name(), config, want.Rounds, got.Rounds)
				}
				if len(want.SlotOf) != len(got.SlotOf) {
					t.Errorf("%s %s at %s: spill counts %d vs %d", mode.name, strat.Name(), config, len(want.SlotOf), len(got.SlotOf))
				}
			}
		}
	}
}

// TestAllocateAliasesOriginalWhenNoSpills pins the lazy-clone contract:
// an allocation that never spills returns the input function itself,
// unchanged; one that spills returns a clone and leaves the input
// untouched.
func TestAllocateAliasesOriginalWhenNoSpills(t *testing.T) {
	fn, ff := prepFixture(t, pressureSrc, "f")
	before := fn.String()

	fa, err := regalloc.AllocateFunc(fn, ff, machine.Full, &regalloc.Chaitin{}, rewrite.InsertSpills, regalloc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fa.SlotOf) != 0 {
		t.Fatalf("full machine unexpectedly spilled")
	}
	if fa.Fn != fn {
		t.Error("spill-free allocation should alias the input function, not clone it")
	}

	fa, err = regalloc.AllocateFunc(fn, ff, machine.NewConfig(6, 4, 0, 0), &regalloc.Chaitin{}, rewrite.InsertSpills, regalloc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fa.SlotOf) == 0 {
		t.Fatal("fixture no longer spills under pressure")
	}
	if fa.Fn == fn {
		t.Error("spilling allocation must work on a clone")
	}
	if fn.String() != before {
		t.Error("input function mutated")
	}
}

// TestPreparedFuncConcurrentAllocations allocates from one shared
// FuncCache on many goroutines at once — the shape of a parallel
// figure sweep. Meaningful chiefly under -race: it proves the frozen
// artifacts really are read without writes. Results must all agree.
func TestPreparedFuncConcurrentAllocations(t *testing.T) {
	fn, ff := prepFixture(t, pressureSrc, "f")
	prep := regalloc.Prepare(fn)
	configs := []machine.Config{machine.NewConfig(6, 4, 0, 0), machine.NewConfig(8, 6, 4, 4)}

	const rounds = 4
	type result struct {
		fa  *regalloc.FuncAlloc
		err error
	}
	results := make([]result, rounds*len(configs))
	done := make(chan struct{})
	for i := range results {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			config := configs[i%len(configs)]
			fa, err := regalloc.AllocatePrepared(prep, ff, config, &regalloc.Chaitin{}, rewrite.InsertSpills, regalloc.DefaultOptions())
			results[i] = result{fa, err}
		}(i)
	}
	for range results {
		<-done
	}
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("goroutine %d: %v", i, r.err)
		}
		ref := results[i%len(configs)]
		if !reflect.DeepEqual(r.fa.Colors, ref.fa.Colors) || r.fa.Rounds != ref.fa.Rounds {
			t.Errorf("goroutine %d: concurrent allocation diverged from its twin", i)
		}
	}
	close(done)
}
