package regalloc

import (
	"repro/internal/ir"
	"repro/internal/pipeline"
)

// PreparedFunc is the shared per-function prep cache, now owned by the
// pipeline's analysis layer as pipeline.FuncCache. The alias keeps the
// established regalloc surface (Prepare/AllocatePrepared and the
// Program-level cache in the public API) unchanged.
type PreparedFunc = pipeline.FuncCache

// Prepare wraps fn in an empty cache; artifacts are built lazily on
// first use.
func Prepare(fn *ir.Func) *PreparedFunc { return pipeline.NewFuncCache(fn) }
