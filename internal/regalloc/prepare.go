package regalloc

import (
	"repro/internal/ir"
	"repro/internal/pipeline"
)

// Prepare wraps fn in an empty shared prep cache (pipeline.FuncCache);
// artifacts are built lazily on first use. The cache layer has one
// name: pipeline.FuncCache owns the round-0 analysis artifacts, and
// internal/resultcache owns completed allocations, content-addressed
// across requests.
func Prepare(fn *ir.Func) *pipeline.FuncCache { return pipeline.NewFuncCache(fn) }
