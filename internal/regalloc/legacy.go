package regalloc

import (
	"fmt"
	"time"

	"repro/internal/cfg"
	"repro/internal/freq"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/liverange"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// AllocateLegacy is the pre-pipeline allocation driver, preserved
// verbatim (modulo the exported FuncCache accessors) as the reference
// implementation for the pipeline differential tests: the pass
// pipeline behind AllocatePrepared must be byte-identical to this loop
// — colors, spill slots, round counts, assembly, and the traced event
// stream — on every benchmark program. It is not part of the public
// allocation surface and ignores opts.Pipeline.
func AllocateLegacy(prep *pipeline.FuncCache, ff *freq.FuncFreq, config machine.Config, strat Strategy, insertSpills SpillInserter, opts Options) (*FuncAlloc, error) {
	if opts.MaxRounds == 0 {
		opts.MaxRounds = DefaultMaxRounds
	}
	fn := prep.Fn
	work := fn // cloned lazily, right before the first spill rewrite
	cloned := false
	noSpill := make(map[ir.Reg]bool)
	slotOf := make(map[ir.Reg]*ir.Symbol)
	isNoSpill := func(r ir.Reg) bool { return noSpill[r] }

	// State for the graph-reconstruction phase: the uncoalesced graphs
	// of the previous round, the registers spilled last round, and the
	// temporaries the spill rewrite introduced.
	var baseGraphs [ir.NumClasses]*interference.Graph
	var lastSpilled map[ir.Reg]*ir.Symbol
	lastTemps := make(map[ir.Reg]bool)

	tr := opts.Tracer
	traced := tr != nil && tr.Enabled()
	var t0 time.Time

	// The round-0 aggressive-coalesce result and the round-0 range
	// analysis are strategy- and configuration-independent too (the
	// aggressive merge loop never reads k, and round 0 has no spill
	// temporaries), so the default untraced configuration shares them
	// across cells as well.
	cachedRound0 := opts.Coalesce && !opts.ConservativeCoalesce && !traced

	for round := 0; round < opts.MaxRounds; round++ {
		var live *liveness.Info
		if round == 0 {
			if traced {
				t0 = phaseStart(tr, work.Name, round, obs.PhaseLiveness)
			}
			liveHit := !prep.EnsureLive()
			live = prep.Liveness().Fork()
			if traced {
				phaseEnd(tr, work.Name, round, obs.PhaseLiveness, t0)
				t0 = phaseStart(tr, work.Name, round, obs.PhaseBuild)
			}
			baseHit := !prep.EnsureBase()
			for c := ir.Class(0); c < ir.NumClasses; c++ {
				baseGraphs[c] = prep.BaseGraph(c).Snapshot()
			}
			if traced {
				phaseEnd(tr, work.Name, round, obs.PhaseBuild, t0)
				if liveHit && baseHit {
					tr.Emit(obs.Event{Kind: obs.KindPrepCache, Fn: work.Name, Round: round})
				}
			}
		} else {
			if traced {
				t0 = phaseStart(tr, work.Name, round, obs.PhaseLiveness)
			}
			g := cfg.New(work)
			live = liveness.Compute(work, g)
			if traced {
				phaseEnd(tr, work.Name, round, obs.PhaseLiveness, t0)
				t0 = phaseStart(tr, work.Name, round, obs.PhaseBuild)
			}
			for c := ir.Class(0); c < ir.NumClasses; c++ {
				if opts.Rebuild {
					baseGraphs[c] = interference.Build(work, live, c)
				} else {
					baseGraphs[c] = interference.Reconstruct(baseGraphs[c], work, live, lastSpilled,
						func(r ir.Reg) bool { return lastTemps[r] })
				}
			}
			if traced {
				phaseEnd(tr, work.Name, round, obs.PhaseBuild, t0)
			}
		}
		if traced {
			t0 = phaseStart(tr, work.Name, round, obs.PhaseCoalesce)
		}
		var graphs [ir.NumClasses]*interference.Graph
		if round == 0 && cachedRound0 {
			cg := prep.Coalesced()
			for c := ir.Class(0); c < ir.NumClasses; c++ {
				graphs[c] = cg[c].Snapshot()
			}
		} else {
			for c := ir.Class(0); c < ir.NumClasses; c++ {
				if opts.Coalesce {
					graphs[c] = baseGraphs[c].Snapshot()
					if traced {
						class, rnd := c, round
						graphs[c].TraceMerge = func(kept, gone ir.Reg) {
							tr.Emit(obs.Event{Kind: obs.KindCoalesceMerge, Fn: work.Name,
								Class: class, Round: rnd, Reg: kept, With: gone})
						}
					}
					graphs[c].Coalesce(opts.ConservativeCoalesce, config.Total(c))
					graphs[c].TraceMerge = nil
				} else {
					// A snapshot, never the base itself: nothing the
					// coloring round does to graphs[c] may reach the base
					// graph that Reconstruct patches next round.
					graphs[c] = baseGraphs[c].Snapshot()
				}
			}
		}
		if traced {
			phaseEnd(tr, work.Name, round, obs.PhaseCoalesce, t0)
			t0 = phaseStart(tr, work.Name, round, obs.PhaseRanges)
		}
		var ranges *liverange.Set
		if round == 0 && cachedRound0 {
			ranges = prep.RangesFor(ff)
		} else {
			ranges = liverange.Analyze(work, live, &graphs, ff, isNoSpill)
		}
		if traced {
			phaseEnd(tr, work.Name, round, obs.PhaseRanges, t0)
			t0 = phaseStart(tr, work.Name, round, obs.PhaseColor)
		}

		spillSet := make(map[ir.Reg]*ir.Symbol)
		colors := make([]machine.PhysReg, work.NumRegs())
		for i := range colors {
			colors[i] = machine.NoPhysReg
		}
		for c := ir.Class(0); c < ir.NumClasses; c++ {
			ctx := &ClassContext{
				Fn:     work,
				Class:  c,
				Graph:  graphs[c],
				Ranges: ranges,
				Config: config,
				Round:  round,
				Tracer: tr,
			}
			res := strat.Allocate(ctx)
			for rep, col := range res.Colors {
				for _, m := range graphs[c].Members(rep) {
					colors[m] = col
				}
			}
			for _, rep := range res.Spilled {
				slot := &ir.Symbol{
					Name:  fmt.Sprintf("%s.spill.%d", work.Name, len(slotOf)+len(spillSet)),
					Class: c,
					Local: true,
					Spill: true,
				}
				members := graphs[c].Members(rep)
				for _, m := range members {
					spillSet[m] = slot
				}
				if traced {
					tr.Emit(obs.Event{Kind: obs.KindRewriteInsert, Fn: work.Name,
						Class: c, Round: round, Reg: rep, Slot: slot.Name, N: len(members)})
				}
			}
		}
		if traced {
			phaseEnd(tr, work.Name, round, obs.PhaseColor, t0)
		}

		if len(spillSet) == 0 {
			return &FuncAlloc{
				Fn:     work,
				Colors: colors,
				SlotOf: slotOf,
				Rounds: round + 1,
				Ranges: ranges,
				Live:   live,
				Graphs: graphs,
				Config: config,
			}, nil
		}

		for r, slot := range spillSet {
			slotOf[r] = slot
		}
		lastSpilled = spillSet
		lastTemps = make(map[ir.Reg]bool)
		if traced {
			t0 = phaseStart(tr, work.Name, round, obs.PhaseRewrite)
		}
		if !cloned {
			// Round 0 ran entirely on copy-on-write views of the
			// original; only a spill rewrite needs a private body.
			work = fn.Clone()
			cloned = true
		}
		insertSpills(work, spillSet, func(t ir.Reg) {
			noSpill[t] = true
			lastTemps[t] = true
		})
		if traced {
			phaseEnd(tr, work.Name, round, obs.PhaseRewrite, t0)
		}
	}
	return nil, fmt.Errorf("regalloc: %s did not converge on %s after %d rounds", strat.Name(), fn.Name, opts.MaxRounds)
}

// phaseStart emits the PhaseStart event and opens the timing window.
// Callers guard on the tracer being enabled.
func phaseStart(tr obs.Tracer, fn string, round int, phase string) time.Time {
	tr.Emit(obs.Event{Kind: obs.KindPhaseStart, Fn: fn, Round: round, Phase: phase})
	return time.Now()
}

// phaseEnd emits the PhaseEnd event carrying the measured wall time.
func phaseEnd(tr obs.Tracer, fn string, round int, phase string, t0 time.Time) {
	tr.Emit(obs.Event{Kind: obs.KindPhaseEnd, Fn: fn, Round: round, Phase: phase, Dur: time.Since(t0)})
}
