package regalloc_test

import (
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/compile"
	"repro/internal/freq"
	"repro/internal/interference"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/liverange"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/regalloc"
	"repro/internal/rewrite"
)

// context builds a ClassContext for fn under dynamic weights.
func context(t *testing.T, src, fn string, config machine.Config, class ir.Class) *regalloc.ClassContext {
	t.Helper()
	prog, err := compile.Source(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := interp.Run(prog, interp.Options{Profile: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	pf := freq.FromProfile(prog, res.Profile)
	f := prog.FuncByName[fn]
	g := cfg.New(f)
	live := liveness.Compute(f, g)
	var graphs [ir.NumClasses]*interference.Graph
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		graphs[c] = interference.Build(f, live, c)
		graphs[c].Coalesce(false, config.Total(c))
	}
	ranges := liverange.Analyze(f, live, &graphs, pf.ByFunc[fn], nil)
	return &regalloc.ClassContext{
		Fn:     f,
		Class:  class,
		Graph:  graphs[class],
		Ranges: ranges,
		Config: config,
	}
}

func TestColorStackLIFO(t *testing.T) {
	var s regalloc.ColorStack
	if _, ok := s.Pop(); ok {
		t.Fatal("empty stack popped")
	}
	s.Push(1)
	s.Push(2)
	s.Push(3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	for want := ir.Reg(3); want >= 1; want-- {
		got, ok := s.Pop()
		if !ok || got != want {
			t.Fatalf("popped %v, want %v", got, want)
		}
	}
}

const pressureSrc = `
int f(int a, int b, int c) {
	int d = a + b;
	int e = b + c;
	int g = a + c;
	int h = d + e;
	int i = e + g;
	int j = d + g;
	return h + i + j + a + b + c + d + e + g;
}
int main() { return f(1, 2, 3); }`

func TestSimplifierColorsEverythingWithEnoughRegisters(t *testing.T) {
	ctx := context(t, pressureSrc, "f", machine.NewConfig(14, 4, 12, 0), ir.ClassInt)
	s := regalloc.NewSimplifier(ctx)
	stack, spilled := s.Run(regalloc.SimplifyOptions{})
	if len(spilled) != 0 {
		t.Fatalf("spilled %v with a huge register file", spilled)
	}
	if stack.Len() != len(ctx.Nodes()) {
		t.Fatalf("stack %d != nodes %d", stack.Len(), len(ctx.Nodes()))
	}
}

func TestSimplifierSpillsUnderPressure(t *testing.T) {
	// With very few registers the clique in f cannot be colored.
	ctx := context(t, pressureSrc, "f", machine.NewConfig(6, 4, 0, 0), ir.ClassInt)
	s := regalloc.NewSimplifier(ctx)
	_, spilled := s.Run(regalloc.SimplifyOptions{})
	if len(spilled) == 0 {
		t.Skip("pressure too low to force a spill in this configuration")
	}
	// Spill candidates must be spillable.
	for _, rep := range spilled {
		if rg := ctx.RangeOf(rep); rg != nil && rg.NoSpill {
			t.Errorf("spilled unspillable v%d", rep)
		}
	}
}

func TestSimplifierOptimisticPushesInsteadOfSpilling(t *testing.T) {
	ctx := context(t, pressureSrc, "f", machine.NewConfig(6, 4, 0, 0), ir.ClassInt)
	s := regalloc.NewSimplifier(ctx)
	stack, spilled := s.Run(regalloc.SimplifyOptions{Optimistic: true})
	if len(spilled) != 0 {
		t.Fatalf("optimistic simplification spilled %v", spilled)
	}
	if stack.Len() != len(ctx.Nodes()) {
		t.Fatalf("stack %d != nodes %d", stack.Len(), len(ctx.Nodes()))
	}
}

func TestSimplifierKeyOrdersRemoval(t *testing.T) {
	ctx := context(t, pressureSrc, "f", machine.NewConfig(14, 4, 12, 0), ir.ClassInt)
	s := regalloc.NewSimplifier(ctx)
	// Key = register number: with everything unconstrained the stack
	// bottom must be the smallest register.
	stack, _ := s.Run(regalloc.SimplifyOptions{
		Key: func(rep ir.Reg) float64 { return float64(rep) },
	})
	var order []ir.Reg
	for {
		r, ok := stack.Pop()
		if !ok {
			break
		}
		order = append(order, r)
	}
	// Popped top-first: must be in descending register order.
	for i := 1; i < len(order); i++ {
		if order[i-1] < order[i] {
			t.Fatalf("stack order not driven by key: %v", order)
		}
	}
}

func TestFreeColorsRespectsNeighbors(t *testing.T) {
	ctx := context(t, pressureSrc, "f", machine.NewConfig(6, 4, 2, 0), ir.ClassInt)
	nodes := ctx.Nodes()
	if len(nodes) < 2 {
		t.Fatal("expected at least two nodes")
	}
	res := regalloc.NewClassResult()
	// FreeColors returns ctx-owned scratch; copy before the next call.
	free0 := append([]machine.PhysReg(nil), ctx.FreeColors(res, nodes[0])...)
	if len(free0) != ctx.N() {
		t.Fatalf("initial free colors %d != N %d", len(free0), ctx.N())
	}
	// Color one node; a neighbor must lose exactly that color.
	var neighbor ir.Reg = ir.NoReg
	ctx.Graph.Neighbors(nodes[0], func(n ir.Reg) {
		if neighbor == ir.NoReg {
			neighbor = n
		}
	})
	if neighbor == ir.NoReg {
		t.Skip("node 0 has no neighbors")
	}
	ctx.Assign(res, nodes[0], free0[0])
	freeN := ctx.FreeColors(res, neighbor)
	for _, c := range freeN {
		if c == free0[0] {
			t.Fatal("neighbor still sees the taken color")
		}
	}
	caller, callee := ctx.SplitFree(freeN)
	for _, c := range caller {
		if !ctx.Config.IsCallerSave(ctx.Class, c) {
			t.Error("SplitFree misclassified caller reg")
		}
	}
	for _, c := range callee {
		if !ctx.Config.IsCalleeSave(ctx.Class, c) {
			t.Error("SplitFree misclassified callee reg")
		}
	}
}

func TestChaitinPrefersKindByCrossing(t *testing.T) {
	src := `
int g(int v) { return v + 1; }
int f(int a) {
	int crossing = a * 3;
	int r = g(a);
	return crossing + r;
}
int main() { return f(4); }`
	ctx := context(t, src, "f", machine.NewConfig(6, 4, 4, 4), ir.ClassInt)
	strat := &regalloc.Chaitin{}
	res := strat.Allocate(ctx)
	if len(res.Spilled) != 0 {
		t.Fatalf("unexpected spills %v", res.Spilled)
	}
	for rep, col := range res.Colors {
		rg := ctx.RangeOf(rep)
		if rg == nil {
			continue
		}
		// The base rule: crossing ranges get callee-save when one is
		// free. With this little pressure, preferences are honored.
		if rg.CrossesCall && !ctx.Config.IsCalleeSave(ir.ClassInt, col) {
			t.Errorf("crossing range v%d in caller-save reg %d", rep, col)
		}
		if !rg.CrossesCall && !ctx.Config.IsCallerSave(ir.ClassInt, col) {
			t.Errorf("non-crossing range v%d in callee-save reg %d", rep, col)
		}
	}
}

func TestAllocateFuncConvergesAndValidates(t *testing.T) {
	prog, err := compile.Source(pressureSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(prog, interp.Options{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	pf := freq.FromProfile(prog, res.Profile)
	for _, cfgRegs := range []machine.Config{machine.NewConfig(6, 4, 0, 0), machine.Full} {
		for _, strat := range []regalloc.Strategy{&regalloc.Chaitin{}, &regalloc.Chaitin{Optimistic: true}} {
			fa, err := regalloc.AllocateFunc(prog.FuncByName["f"], pf.ByFunc["f"], cfgRegs, strat,
				rewrite.InsertSpills, regalloc.DefaultOptions())
			if err != nil {
				t.Fatalf("%s at %s: %v", strat.Name(), cfgRegs, err)
			}
			if err := rewrite.Validate(fa); err != nil {
				t.Errorf("%s at %s: invalid: %v", strat.Name(), cfgRegs, err)
			}
			if fa.Rounds < 1 {
				t.Error("rounds not counted")
			}
		}
	}
}

func TestAllocateFuncDoesNotMutateOriginal(t *testing.T) {
	prog, err := compile.Source(pressureSrc)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.FuncByName["f"]
	before := f.String()
	res, _ := interp.Run(prog, interp.Options{Profile: true})
	pf := freq.FromProfile(prog, res.Profile)
	_, err = regalloc.AllocateFunc(f, pf.ByFunc["f"], machine.NewConfig(6, 4, 0, 0),
		&regalloc.Chaitin{}, rewrite.InsertSpills, regalloc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if f.String() != before {
		t.Error("AllocateFunc mutated the input function")
	}
}

func TestStrategyNames(t *testing.T) {
	if n := (&regalloc.Chaitin{}).Name(); n != "chaitin" {
		t.Errorf("name %q", n)
	}
	if n := (&regalloc.Chaitin{Optimistic: true}).Name(); !strings.Contains(n, "optimistic") {
		t.Errorf("name %q", n)
	}
}

// TestUntracedEmitAllocatesNothing pins the zero-cost contract of the
// emission helpers: with no tracer attached (the default), Emit,
// EmitAssign, and EmitSpill must not construct events or allocate.
func TestUntracedEmitAllocatesNothing(t *testing.T) {
	ctx := context(t, pressureSrc, "f", machine.NewConfig(6, 4, 0, 0), ir.ClassInt)
	if ctx.Traced() {
		t.Fatal("fresh context must be untraced")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if ctx.Traced() {
			ctx.Emit(obs.Event{Kind: obs.KindSimplifyPop, Reg: 1, Key: 2})
		}
		ctx.EmitAssign(1, 0, false)
		ctx.EmitSpill(1, obs.ReasonBlocked, 3)
	})
	if allocs != 0 {
		t.Errorf("untraced emission allocated %v times per run, want 0", allocs)
	}
}
