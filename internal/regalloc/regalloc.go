// Package regalloc is the register-allocation framework of the
// reproduction, mirroring the structure of the paper's Figure 1:
//
//	graph construction → live-range coalescing → color ordering →
//	color assignment → graph reconstruction → spill-code insertion →
//	shuffle-code insertion
//
// The framework hosts pluggable Strategy implementations (the paper's
// Table 1): base Chaitin-style and optimistic coloring live here;
// the improved allocator (package core), priority-based coloring
// (package priority), and the CBH model (package cbh) plug in through
// the same interface, so all approaches share graph construction,
// coalescing, spill-code insertion, and measurement — the "fair
// comparison" property the paper's framework argues for.
//
// The two data structures the paper names are explicit: the color
// stack C (ColorStack) connecting color ordering to color assignment,
// and the spill pool S (the Spilled sets flowing back to spill-code
// insertion).
package regalloc

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/freq"
	"repro/internal/interference"
	"repro/internal/interproc"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/liverange"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
)

// Strategy is one register-allocation approach: it performs the color
// ordering and color assignment phases for the live ranges of one
// register bank.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Allocate colors the nodes of ctx.Graph. Every node must either
	// receive a color in the result or appear in Spilled.
	Allocate(ctx *ClassContext) *ClassResult
}

// ClassContext is everything a strategy sees for one bank of one
// function in one allocation round.
type ClassContext struct {
	Fn     *ir.Func
	Class  ir.Class
	Graph  *interference.Graph
	Ranges *liverange.Set
	Config machine.Config
	// Round is the allocation round (0-based); spill code from earlier
	// rounds is already in Fn.
	Round int
	// Tracer receives the strategy's decision events; nil disables
	// tracing. Strategies emit through Traced/Emit so the disabled
	// path constructs nothing.
	Tracer obs.Tracer

	// Scratch buffers backing FreeColors and SplitFree. The assignment
	// loop calls both once per popped node, so the buffers turn the two
	// hottest per-node queries into zero-allocation operations.
	freeTaken     []bool
	freeScratch   []machine.PhysReg
	callerScratch []machine.PhysReg
	calleeScratch []machine.PhysReg

	// colorOf mirrors the result's Colors map as a flat register-indexed
	// table — the copy FreeColors actually reads, because the map probe
	// per neighbor was the hottest line of color assignment. Maintained
	// by Assign/Unassign; allocated on first use.
	colorOf []machine.PhysReg
}

// Assign records rep's color in res and in the flat lookup table
// backing FreeColors. Strategies must route every coloring decision
// through Assign/Unassign — writing res.Colors directly would leave
// FreeColors blind to the neighbor's color.
func (ctx *ClassContext) Assign(res *ClassResult, rep ir.Reg, col machine.PhysReg) {
	res.Colors[rep] = col
	ctx.ensureColorOf()
	ctx.colorOf[rep] = col
}

// Unassign removes rep's color (spill-by-choice revoking a tentative
// assignment).
func (ctx *ClassContext) Unassign(res *ClassResult, rep ir.Reg) {
	delete(res.Colors, rep)
	if int(rep) < len(ctx.colorOf) {
		ctx.colorOf[rep] = machine.NoPhysReg
	}
}

func (ctx *ClassContext) ensureColorOf() {
	if ctx.colorOf == nil {
		ctx.colorOf = make([]machine.PhysReg, ctx.Fn.NumRegs())
		for i := range ctx.colorOf {
			ctx.colorOf[i] = machine.NoPhysReg
		}
	}
}

// Traced reports whether decision events should be emitted. Strategies
// guard every emission on it so an untraced run pays nothing.
func (ctx *ClassContext) Traced() bool { return ctx.Tracer != nil && ctx.Tracer.Enabled() }

// Emit stamps ev with the context's function, bank, and round and
// sends it to the tracer. Safe to call untraced (it is a no-op), but
// call sites should guard with Traced to skip event construction.
func (ctx *ClassContext) Emit(ev obs.Event) {
	if ctx.Tracer == nil || !ctx.Tracer.Enabled() {
		return
	}
	ev.Fn = ctx.Fn.Name
	ev.Class = ctx.Class
	ev.Round = ctx.Round
	ctx.Tracer.Emit(ev)
}

// EmitAssign emits the ColorAssign event for rep: the color, the kind
// wanted and taken, and the benefit evidence behind the choice.
func (ctx *ClassContext) EmitAssign(rep ir.Reg, color machine.PhysReg, wantCallee bool) {
	if !ctx.Traced() {
		return
	}
	ev := obs.Event{
		Kind:   obs.KindColorAssign,
		Reg:    rep,
		Color:  color,
		Wanted: kindName(wantCallee),
		Chosen: kindName(ctx.Config.IsCalleeSave(ctx.Class, color)),
	}
	if rg := ctx.RangeOf(rep); rg != nil {
		ev.Cost, ev.BenefitCaller, ev.BenefitCallee = rg.SpillCost, rg.BenefitCaller, rg.BenefitCallee
	}
	ctx.Emit(ev)
}

// EmitSpill emits the SpillChoice event for rep with the reason and
// the heuristic key that condemned it, plus the range's cost evidence.
func (ctx *ClassContext) EmitSpill(rep ir.Reg, reason string, key float64) {
	if !ctx.Traced() {
		return
	}
	ev := obs.Event{Kind: obs.KindSpillChoice, Reg: rep, Reason: reason, Key: key}
	if rg := ctx.RangeOf(rep); rg != nil {
		ev.Cost, ev.BenefitCaller, ev.BenefitCallee = rg.SpillCost, rg.BenefitCaller, rg.BenefitCallee
	}
	ctx.Emit(ev)
}

func kindName(callee bool) string {
	if callee {
		return obs.KindCallee
	}
	return obs.KindCaller
}

// N returns the number of allocable registers in this bank.
func (ctx *ClassContext) N() int { return ctx.Config.Total(ctx.Class) }

// RangeOf returns the cost record of representative rep.
func (ctx *ClassContext) RangeOf(rep ir.Reg) *liverange.Range {
	return ctx.Ranges.Of(rep)
}

// Nodes returns the bank's live-range representatives in deterministic
// order.
func (ctx *ClassContext) Nodes() []ir.Reg { return ctx.Graph.Nodes() }

// ClassResult is a strategy's output for one bank.
type ClassResult struct {
	// Colors maps representatives to physical registers.
	Colors map[ir.Reg]machine.PhysReg
	// Spilled lists representatives sent to the spill pool S; they will
	// be rewritten to memory and the allocation restarted.
	Spilled []ir.Reg
}

// NewClassResult returns an empty result.
func NewClassResult() *ClassResult {
	return &ClassResult{Colors: make(map[ir.Reg]machine.PhysReg)}
}

// ---------------------------------------------------------------------
// Color stack and free-color computation

// ColorStack is the paper's color stack C: live ranges pushed during
// color ordering and popped (last-in, first-out) during color
// assignment, so the top of the stack chooses registers first.
type ColorStack struct {
	items []ir.Reg
}

// Push adds a live range to the top of the stack.
func (s *ColorStack) Push(r ir.Reg) { s.items = append(s.items, r) }

// Pop removes and returns the top; the boolean is false when empty.
func (s *ColorStack) Pop() (ir.Reg, bool) {
	if len(s.items) == 0 {
		return 0, false
	}
	r := s.items[len(s.items)-1]
	s.items = s.items[:len(s.items)-1]
	return r, true
}

// Len returns the number of stacked live ranges.
func (s *ColorStack) Len() int { return len(s.items) }

// FreeColors returns the physical registers of the bank not taken by
// any already-colored neighbor of rep, in increasing order (caller-save
// first, then callee-save, matching the bank layout). Colors count as
// taken when recorded through Assign on this context (res is accepted
// for signature symmetry with Assign and future-proofing; the fast
// flat table is what is consulted).
//
// The returned slice is scratch owned by ctx: it is overwritten by the
// next FreeColors call, so callers must not retain it across calls.
func (ctx *ClassContext) FreeColors(res *ClassResult, rep ir.Reg) []machine.PhysReg {
	n := ctx.N()
	if cap(ctx.freeTaken) < n {
		ctx.freeTaken = make([]bool, n)
	}
	taken := ctx.freeTaken[:n]
	for i := range taken {
		taken[i] = false
	}
	ctx.ensureColorOf()
	colorOf := ctx.colorOf
	ctx.Graph.Neighbors(rep, func(nb ir.Reg) {
		if c := colorOf[nb]; c != machine.NoPhysReg {
			taken[c] = true
		}
	})
	free := ctx.freeScratch[:0]
	for i := 0; i < n; i++ {
		if !taken[i] {
			free = append(free, machine.PhysReg(i))
		}
	}
	ctx.freeScratch = free
	return free
}

// SplitFree partitions free colors into caller-save and callee-save.
//
// Like FreeColors, the returned slices are ctx-owned scratch and are
// overwritten by the next SplitFree call.
func (ctx *ClassContext) SplitFree(free []machine.PhysReg) (caller, callee []machine.PhysReg) {
	caller, callee = ctx.callerScratch[:0], ctx.calleeScratch[:0]
	for _, r := range free {
		if ctx.Config.IsCallerSave(ctx.Class, r) {
			caller = append(caller, r)
		} else {
			callee = append(callee, r)
		}
	}
	ctx.callerScratch, ctx.calleeScratch = caller, callee
	return caller, callee
}

// ---------------------------------------------------------------------
// Simplification (shared by Chaitin-style strategies)

// Simplifier runs Chaitin simplification over the bank's graph with a
// pluggable ordering key and spill heuristic.
//
// Selection is worklist-driven: two binary heaps replace the original
// whole-slice rescans, making Run near-linear (O(E + V log V)) instead
// of quadratic, while popping nodes in exactly the same order.
type Simplifier struct {
	ctx     *ClassContext
	sc      *simpScratch
	nodes   []ir.Reg
	deg     []int32 // indexed by register, valid for members
	removed []bool  // indexed by register
	member  []bool  // indexed by register: node of this run
}

// simpScratch is the per-run storage of a Simplifier, pooled across
// runs (classes, rounds, and functions — the pool is safe under the
// parallel per-function driver). One allocation round runs one
// Simplifier per bank, so without pooling the register-indexed slices
// and both heaps were reallocated every round.
type simpScratch struct {
	deg       []int32
	removed   []bool
	member    []bool
	nodes     []ir.Reg
	simplify  regHeap
	spillable regHeap
	stack     []ir.Reg
}

var simpPool = sync.Pool{New: func() any {
	if b := telemetry.B(); b != nil {
		b.PoolNews.Inc()
	}
	return new(simpScratch)
}}

// NewSimplifier prepares simplification state for ctx. Pair with
// Release (after the returned stack is drained) to recycle the
// scratch; skipping Release costs allocations, never correctness.
func NewSimplifier(ctx *ClassContext) *Simplifier {
	n := ctx.Fn.NumRegs()
	if b := telemetry.B(); b != nil {
		b.PoolGets.Inc()
	}
	sc := simpPool.Get().(*simpScratch)
	if cap(sc.deg) < n {
		sc.deg = make([]int32, n)
		sc.removed = make([]bool, n)
		sc.member = make([]bool, n)
	}
	s := &Simplifier{
		ctx:     ctx,
		sc:      sc,
		nodes:   ctx.Graph.AppendNodes(sc.nodes[:0]),
		deg:     sc.deg[:n],
		removed: sc.removed[:n],
		member:  sc.member[:n],
	}
	for i := range s.removed {
		s.removed[i] = false
	}
	for i := range s.member {
		s.member[i] = false
	}
	sc.nodes = s.nodes
	for _, r := range s.nodes {
		s.member[r] = true
	}
	for _, r := range s.nodes {
		d := int32(0)
		ctx.Graph.Neighbors(r, func(nb ir.Reg) {
			if s.member[nb] {
				d++
			}
		})
		s.deg[r] = d
	}
	return s
}

// regHeap is a binary min-heap of (key, reg) pairs ordered
// lexicographically — smallest key first, ties to the smaller register.
// That ordering is exactly the tie-break rule of the original
// linear-scan selection, so heap pops reproduce its choices.
type regHeap []regHeapItem

type regHeapItem struct {
	key float64
	reg ir.Reg
}

func (h regHeap) less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].reg < h[j].reg
}

func (h *regHeap) push(it regHeapItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *regHeap) pop() regHeapItem {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && h.less(l, m) {
			m = l
		}
		if r < last && h.less(r, m) {
			m = r
		}
		if m == i {
			break
		}
		old[i], old[m] = old[m], old[i]
		i = m
	}
	return top
}

// SpillHeuristic selects how the blocked-simplification spill candidate
// is chosen (the paper cites a line of work on better heuristics [17,
// 2, 5]; Chaitin's cost/degree is the classic default).
type SpillHeuristic int

const (
	// CostOverDegree spills the minimum spill_cost/degree (Chaitin).
	CostOverDegree SpillHeuristic = iota
	// PlainCost spills the minimum spill_cost, ignoring degree.
	PlainCost
	// CostOverDegreeSq spills minimum spill_cost/degree², biasing
	// harder toward high-degree ranges (Bernstein et al.'s family).
	CostOverDegreeSq
)

// String names the heuristic.
func (h SpillHeuristic) String() string {
	switch h {
	case CostOverDegree:
		return "cost/degree"
	case PlainCost:
		return "cost"
	case CostOverDegreeSq:
		return "cost/degree2"
	}
	return "unknown"
}

// Options for Run.
type SimplifyOptions struct {
	// Key orders unconstrained nodes: the node with the smallest key is
	// removed first (ends up deepest in the stack). Nil means removal
	// in register order (plain Chaitin). Key must be a pure function of
	// rep for the duration of the run — the worklist caches its value
	// when a node becomes unconstrained.
	Key func(rep ir.Reg) float64
	// Optimistic pushes would-be spills onto the stack ("optimistic
	// coloring", Briggs) instead of spilling immediately.
	Optimistic bool
	// SpillCost overrides the numerator of the spill heuristic
	// cost/degree. Nil uses the live range's SpillCost.
	SpillCost func(rep ir.Reg) float64
	// Heuristic selects the blocked-spill choice rule.
	Heuristic SpillHeuristic
}

// Run simplifies the graph to an ordering. It returns the color stack
// and the representatives spilled when simplification blocked (empty
// when Optimistic).
//
// The unconstrained worklist is exact because degrees only fall: a node
// crosses the degree-<N threshold at most once, and its ordering key is
// static (SimplifyOptions.Key), so heap order equals rescan order. The
// spill heap is lazily rekeyed: cost/degree keys only grow as neighbor
// removal shrinks degrees, so a stored key is a lower bound and
// pop-recompute-reinsert terminates with the exact minimum.
func (s *Simplifier) Run(opts SimplifyOptions) (*ColorStack, []ir.Reg) {
	n := s.ctx.N()
	stack := &ColorStack{items: s.sc.stack[:0]}
	var spilled []ir.Reg
	remaining := len(s.nodes)

	spillCostOf := opts.SpillCost
	if spillCostOf == nil {
		spillCostOf = func(rep ir.Reg) float64 {
			if rg := s.ctx.RangeOf(rep); rg != nil {
				return rg.SpillCost
			}
			return 0
		}
	}
	keyOf := func(r ir.Reg) float64 {
		if opts.Key != nil {
			return opts.Key(r)
		}
		return 0
	}
	heurKey := func(r ir.Reg) float64 {
		d := int(s.deg[r])
		if d <= 0 {
			d = 1
		}
		switch opts.Heuristic {
		case PlainCost:
			return spillCostOf(r)
		case CostOverDegreeSq:
			return spillCostOf(r) / float64(d*d)
		default:
			return spillCostOf(r) / float64(d)
		}
	}

	// simplify holds every currently unconstrained node; spillable
	// holds every spillable node still in the graph (keys possibly
	// stale, never overestimates).
	simplify := s.sc.simplify[:0]
	spillable := s.sc.spillable[:0]
	for _, r := range s.nodes {
		if int(s.deg[r]) < n {
			simplify.push(regHeapItem{keyOf(r), r})
		}
		if rg := s.ctx.RangeOf(r); rg == nil || !rg.NoSpill {
			spillable.push(regHeapItem{heurKey(r), r})
		}
	}

	remove := func(r ir.Reg) {
		s.removed[r] = true
		remaining--
		s.ctx.Graph.Neighbors(r, func(nb ir.Reg) {
			if s.member[nb] && !s.removed[nb] {
				s.deg[nb]--
				if int(s.deg[nb]) == n-1 {
					simplify.push(regHeapItem{keyOf(nb), nb})
				}
			}
		})
	}

	for remaining > 0 {
		// Unconstrained node with the smallest key.
		if len(simplify) > 0 {
			it := simplify.pop()
			remove(it.reg)
			stack.Push(it.reg)
			if s.ctx.Traced() {
				s.ctx.Emit(obs.Event{Kind: obs.KindSimplifyPop, Reg: it.reg,
					Key: it.key, Reason: obs.ReasonUnconstrained, N: stack.Len()})
			}
			continue
		}

		// Simplification blocked: every remaining node has degree >= n.
		// Choose a spill candidate by min cost/degree among spillable
		// nodes, fixing stale keys as they surface.
		cand := ir.NoReg
		candKey := 0.0
		for len(spillable) > 0 {
			top := spillable[0]
			if s.removed[top.reg] {
				spillable.pop()
				continue
			}
			if k := heurKey(top.reg); k != top.key {
				spillable.pop()
				spillable.push(regHeapItem{k, top.reg})
				continue
			}
			cand, candKey = top.reg, top.key
			spillable.pop()
			break
		}
		if cand == ir.NoReg {
			// Only unspillable nodes remain; push the lowest-degree one
			// and hope assignment finds a color (it will for realistic
			// configurations, since spill temporaries have tiny
			// degree).
			for _, r := range s.nodes {
				if !s.removed[r] && (cand == ir.NoReg || s.deg[r] < s.deg[cand]) {
					cand = r
				}
			}
			remove(cand)
			stack.Push(cand)
			if s.ctx.Traced() {
				s.ctx.Emit(obs.Event{Kind: obs.KindSimplifyPop, Reg: cand,
					Reason: obs.ReasonUnspillable, N: stack.Len()})
			}
			continue
		}
		remove(cand)
		if opts.Optimistic {
			stack.Push(cand)
			if s.ctx.Traced() {
				s.ctx.Emit(obs.Event{Kind: obs.KindSimplifyPop, Reg: cand,
					Key: candKey, Reason: obs.ReasonOptimistic, N: stack.Len()})
			}
		} else {
			spilled = append(spilled, cand)
			s.ctx.EmitSpill(cand, obs.ReasonBlocked, candKey)
		}
	}
	s.sc.simplify, s.sc.spillable = simplify[:0], spillable[:0]
	return stack, spilled
}

// Release hands the simplifier's pooled scratch back, including the
// storage of the (by now drained) color stack Run returned. The
// Simplifier and the stack must not be used afterwards. Optional:
// without it the scratch is simply garbage-collected.
func (s *Simplifier) Release(stack *ColorStack) {
	sc := s.sc
	if sc == nil {
		return
	}
	s.sc = nil
	if stack != nil {
		sc.stack = stack.items[:0]
	}
	simpPool.Put(sc)
}

// ---------------------------------------------------------------------
// Base Chaitin-style and optimistic strategies (paper §3.1, §8)

// Chaitin is the paper's base model: plain simplification, spill by
// cost/degree when blocked, and a simple storage-class rule during
// assignment — a live range crossing a call prefers callee-save
// registers, one that does not prefers caller-save, falling back to the
// other kind when the preferred kind is exhausted.
type Chaitin struct {
	// Optimistic delays spill decisions to the assignment phase
	// (Briggs' optimistic coloring).
	Optimistic bool
	// Heuristic selects the blocked-spill choice rule (default
	// cost/degree).
	Heuristic SpillHeuristic
}

// Name implements Strategy.
func (c *Chaitin) Name() string {
	if c.Optimistic {
		return "optimistic"
	}
	return "chaitin"
}

// Allocate implements Strategy.
func (c *Chaitin) Allocate(ctx *ClassContext) *ClassResult {
	res := NewClassResult()
	simp := NewSimplifier(ctx)
	stack, spilled := simp.Run(SimplifyOptions{Optimistic: c.Optimistic, Heuristic: c.Heuristic})
	res.Spilled = append(res.Spilled, spilled...)

	for {
		rep, ok := stack.Pop()
		if !ok {
			break
		}
		free := ctx.FreeColors(res, rep)
		if len(free) == 0 {
			// Only possible for optimistically pushed nodes.
			res.Spilled = append(res.Spilled, rep)
			ctx.EmitSpill(rep, obs.ReasonNoColor, 0)
			continue
		}
		caller, callee := ctx.SplitFree(free)
		rg := ctx.RangeOf(rep)
		preferCallee := rg != nil && rg.CrossesCall
		ctx.Assign(res, rep, pickPreferred(caller, callee, preferCallee))
		ctx.EmitAssign(rep, res.Colors[rep], preferCallee)
	}
	simp.Release(stack)
	return res
}

// pickPreferred picks from the preferred kind when available, falling
// back to the other kind.
func pickPreferred(caller, callee []machine.PhysReg, preferCallee bool) machine.PhysReg {
	if preferCallee {
		if len(callee) > 0 {
			return callee[0]
		}
		return caller[0]
	}
	if len(caller) > 0 {
		return caller[0]
	}
	return callee[0]
}

// ---------------------------------------------------------------------
// Driver

// Options configure an allocation run.
type Options struct {
	// Coalesce enables live-range coalescing (on in every configuration
	// of the paper's framework). Default true via DefaultOptions.
	Coalesce bool
	// ConservativeCoalesce uses the Briggs test instead of aggressive
	// coalescing.
	ConservativeCoalesce bool
	// Rebuild disables the incremental spill-round analyses: after
	// spill-code insertion the interference graph is rebuilt from
	// scratch instead of patched, and liveness (with the CFG and the
	// live-range block map) is re-solved densely instead of updated
	// from the rewritten blocks. The incremental paths (the default)
	// are the framework's compile-time optimization; both modes produce
	// byte-identical allocations (checked by the test suite), so
	// Rebuild exists for the compile-time ablation benchmarks.
	Rebuild bool
	// MaxRounds bounds build→color→spill iterations.
	MaxRounds int
	// Ctx, when non-nil, bounds the allocation with a deadline or
	// cancellation: the pipeline runner polls it between passes and
	// the per-function driver loop checks it before dispatching each
	// function, so a canceled request stops consuming CPU at the next
	// pass boundary. Nil — the default — costs one nil check per pass.
	Ctx context.Context
	// Tracer receives decision events and phase timings (package obs).
	// Nil — the default — disables tracing; every emission site is
	// guarded, so the untraced path adds no work and no allocations.
	Tracer obs.Tracer
	// Parallel bounds the per-function worker pool used by
	// Program.AllocateWithOptions: 0 selects GOMAXPROCS, 1 forces the
	// sequential path, n > 1 caps the pool at n. Output is
	// byte-identical either way; a non-nil Tracer forces sequential so
	// the event stream stays in program order (see TraceParallel).
	Parallel int
	// TraceParallel keeps the Parallel worker pool even when a Tracer
	// is attached. Events from different functions then interleave in
	// emission order rather than program order; each event's Seq field
	// still records a total order, and sinks must be concurrency-safe
	// (all the shipped sinks are). Off by default so traced streams and
	// their goldens stay deterministic.
	TraceParallel bool
	// NoPrepCache disables Program-level sharing of prepared round-0
	// artifacts (CFG, liveness, base interference graphs): every
	// allocation rebuilds from scratch. Exists for A/B benchmarking.
	NoPrepCache bool
	// Interproc attaches a whole-program interprocedural summary table
	// (package interproc): the liverange cost analysis replaces the
	// paper's static caller_save_cost estimate at call sites whose
	// callee has a published summary, and the save/restore plan prunes
	// saves the callee provably does not need. Nil — the default —
	// keeps the paper's intraprocedural model exactly. Set by the
	// whole-program batch driver; a non-nil table bypasses the shared
	// round-0 range cache (the cached analysis assumes static costs).
	Interproc *interproc.Table
	// Pipeline overrides the pass pipeline. Nil — the default — runs
	// BuildPipeline(strat, insertSpills, opts), i.e. the standard
	// liveness → build-graph → coalesce → liverange → color →
	// spill-rewrite sequence with the coalescing and rebuild options
	// applied. Ablations set a derived pipeline (Replace/Drop) here;
	// when set, the Coalesce, ConservativeCoalesce, and Rebuild fields
	// are ignored — the pipeline already encodes them.
	Pipeline *pipeline.Pipeline
}

// DefaultMaxRounds is the default bound on build→color→spill rounds
// (pipeline.DefaultMaxRounds).
const DefaultMaxRounds = pipeline.DefaultMaxRounds

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{Coalesce: true, MaxRounds: DefaultMaxRounds}
}

// FuncAlloc is the final allocation of one function.
type FuncAlloc struct {
	// Fn is the allocated function. When spill code was needed it is a
	// rewritten clone of the original (block IDs are preserved, so
	// frequency tables for the original remain valid); when no live
	// range spilled it aliases the original function unchanged.
	Fn *ir.Func
	// Colors assigns every virtual register of Fn a physical register
	// in its bank; spilled registers were rewritten away and map to
	// machine.NoPhysReg only if they no longer occur.
	Colors []machine.PhysReg
	// SlotOf maps spilled virtual registers to their stack slots.
	SlotOf map[ir.Reg]*ir.Symbol
	// Rounds is the number of build→color→spill iterations executed.
	Rounds int
	// Ranges is the live-range analysis of the final round.
	Ranges *liverange.Set
	// Live is the liveness of Fn from the final round. Consumers that
	// need liveness of the allocated function (rewrite.Validate,
	// rewrite.BuildPlan) reuse it — through their own Fork — instead of
	// recomputing. Nil for hand-constructed FuncAllocs.
	Live *liveness.Info
	// Graphs holds the final interference graphs per bank.
	Graphs [ir.NumClasses]*interference.Graph
	// Config echoes the register configuration used.
	Config machine.Config
	// Escalated reports that a tiered strategy abandoned its cheap tier
	// for this function (the hybrid linear-scan strategy escalating to
	// graph coloring). Always false for single-tier strategies.
	Escalated bool
}

// ColorOf returns the physical register of virtual register r.
func (fa *FuncAlloc) ColorOf(r ir.Reg) machine.PhysReg { return fa.Colors[r] }

// SpillInserter abstracts the spill-code insertion phase; it lives in
// package rewrite and is injected here to keep the framework free of a
// dependency cycle. The returned slice lists the IDs of the blocks the
// rewrite modified, in increasing order — the dirty seeds of the
// incremental dataflow update. A nil return means "unknown" (the
// rewrite may have changed anything, including block structure) and
// forces the next round to recompute liveness from scratch.
type SpillInserter func(fn *ir.Func, spill map[ir.Reg]*ir.Symbol, newTemp func(ir.Reg)) []int

// AllocateFunc runs the full framework loop on fn: build, coalesce,
// color (via strat), and iterate through spill-code insertion until no
// live range spills. fn itself is not modified; when spill code is
// needed the returned FuncAlloc holds a rewritten clone, otherwise it
// aliases fn unchanged.
func AllocateFunc(fn *ir.Func, ff *freq.FuncFreq, config machine.Config, strat Strategy, insertSpills SpillInserter, opts Options) (*FuncAlloc, error) {
	return AllocatePrepared(Prepare(fn), ff, config, strat, insertSpills, opts)
}

// AllocatePrepared is AllocateFunc consuming a shared pipeline.FuncCache: the
// round-0 CFG, liveness, and base interference graphs come from the
// cache (built on first use) instead of being rebuilt, and are consumed
// through copy-on-write Snapshot views so the cached artifacts stay
// frozen. Many goroutines may allocate from the same FuncCache
// concurrently; the result is byte-identical to AllocateFunc on a
// fresh function.
//
// The allocation itself is a pass pipeline (package pipeline): by
// default the one BuildPipeline assembles from opts, or the pipeline
// opts.Pipeline overrides it with. The runner emits the per-pass phase
// events; a run that exhausts the round budget returns an error
// wrapping pipeline.ErrRoundLimit.
func AllocatePrepared(prep *pipeline.FuncCache, ff *freq.FuncFreq, config machine.Config, strat Strategy, insertSpills SpillInserter, opts Options) (*FuncAlloc, error) {
	pl := opts.Pipeline
	if pl == nil {
		def := BuildPipeline(strat, insertSpills, opts)
		pl = &def
	}
	s := pipeline.NewState(prep, ff, config, opts.Tracer)
	s.Ctx = opts.Ctx
	runner := &pipeline.Runner{Passes: pl.Passes(), MaxRounds: opts.MaxRounds}
	rounds, err := runner.Run(s)
	if err != nil {
		if errors.Is(err, pipeline.ErrRoundLimit) {
			return nil, fmt.Errorf("regalloc: %s did not converge on %s: %w", strat.Name(), prep.Fn.Name, err)
		}
		return nil, fmt.Errorf("regalloc: %s on %s: %w", strat.Name(), prep.Fn.Name, err)
	}
	return &FuncAlloc{
		Fn:        s.Fn,
		Colors:    s.Colors,
		SlotOf:    s.SlotOf,
		Rounds:    rounds,
		Ranges:    s.Ranges,
		Live:      s.Live,
		Graphs:    s.Graphs,
		Config:    config,
		Escalated: s.Escalated,
	}, nil
}

// SortRegs sorts a register slice in increasing order (a convenience
// for strategies that need deterministic iteration).
func SortRegs(rs []ir.Reg) {
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
}
