package regalloc_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/regalloc"
	"repro/internal/rewrite"
)

// TestRoundBudgetExhausted pins the named-budget contract: when the
// round loop hits MaxRounds without a spill-free coloring, the error is
// descriptive (strategy + function) and matchable via errors.Is.
func TestRoundBudgetExhausted(t *testing.T) {
	fn, ff := prepFixture(t, pressureSrc, "f")
	config := machine.NewConfig(6, 4, 0, 0)
	opts := regalloc.DefaultOptions()
	opts.MaxRounds = 1 // the pressure fixture needs at least two rounds

	_, err := regalloc.AllocatePrepared(regalloc.Prepare(fn), ff, config,
		&regalloc.Chaitin{}, rewrite.InsertSpills, opts)
	if err == nil {
		t.Fatal("1-round budget on a spilling function succeeded")
	}
	if !errors.Is(err, pipeline.ErrRoundLimit) {
		t.Errorf("err = %v, not matchable as ErrRoundLimit", err)
	}
	for _, want := range []string{"chaitin", "f", "1 rounds"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}

	// The same allocation under the named default budget converges.
	opts.MaxRounds = 0 // 0 selects pipeline.DefaultMaxRounds
	alloc, err := regalloc.AllocatePrepared(regalloc.Prepare(fn), ff, config,
		&regalloc.Chaitin{}, rewrite.InsertSpills, opts)
	if err != nil {
		t.Fatalf("default budget: %v", err)
	}
	if alloc.Rounds < 2 || alloc.Rounds > pipeline.DefaultMaxRounds {
		t.Errorf("rounds = %d, want within (1, %d]", alloc.Rounds, pipeline.DefaultMaxRounds)
	}
}

// TestFreeColorsScratchReuse pins the documented ownership contract:
// the slice FreeColors returns is ctx-owned scratch, overwritten by the
// next call — retaining it across calls observes the new answer.
func TestFreeColorsScratchReuse(t *testing.T) {
	ctx := context(t, pressureSrc, "f", machine.NewConfig(6, 4, 0, 0), ir.ClassInt)

	// Pick a node with at least one neighbor so coloring it changes the
	// free set.
	var rep, nb ir.Reg
	found := false
	for _, r := range ctx.Nodes() {
		ctx.Graph.Neighbors(r, func(n ir.Reg) {
			if !found {
				rep, nb, found = r, n, true
			}
		})
		if found {
			break
		}
	}
	if !found {
		t.Fatal("fixture graph has no edges")
	}

	res := regalloc.NewClassResult()
	first := ctx.FreeColors(res, rep)
	if len(first) != ctx.N() {
		t.Fatalf("with nothing colored, free = %d, want the full bank %d", len(first), ctx.N())
	}

	ctx.Assign(res, nb, 0)
	second := ctx.FreeColors(res, rep)
	if len(second) != ctx.N()-1 || second[0] != 1 {
		t.Fatalf("with neighbor on color 0, free = %v", second)
	}
	if &first[0] != &second[0] {
		t.Error("second call did not reuse the scratch backing array")
	}
	if first[0] != second[0] {
		t.Error("retained slice kept its old contents; the contract says it is clobbered")
	}
}

// TestSplitFreeScratchReuse pins the same contract for SplitFree: both
// returned slices are ctx-owned scratch.
func TestSplitFreeScratchReuse(t *testing.T) {
	// Two callee-save registers per bank so both partitions are non-empty.
	config := machine.NewConfig(6, 4, 2, 2)
	ctx := context(t, pressureSrc, "f", config, ir.ClassInt)

	free := make([]machine.PhysReg, ctx.N())
	for i := range free {
		free[i] = machine.PhysReg(i)
	}
	caller1, callee1 := ctx.SplitFree(free)
	if len(caller1)+len(callee1) != len(free) {
		t.Fatalf("partition lost registers: %d + %d != %d", len(caller1), len(callee1), len(free))
	}
	if len(caller1) == 0 || len(callee1) == 0 {
		t.Fatalf("config %v should yield both partitions, got caller=%v callee=%v", config, caller1, callee1)
	}
	for _, r := range caller1 {
		if !ctx.Config.IsCallerSave(ctx.Class, r) {
			t.Errorf("caller partition holds callee-save r%d", r)
		}
	}
	for _, r := range callee1 {
		if ctx.Config.IsCallerSave(ctx.Class, r) {
			t.Errorf("callee partition holds caller-save r%d", r)
		}
	}

	caller2, callee2 := ctx.SplitFree(free)
	if &caller1[0] != &caller2[0] || &callee1[0] != &callee2[0] {
		t.Error("second call did not reuse the scratch backing arrays")
	}
}

// TestColorStackReusesBacking pins that a drained stack's capacity is
// reused: steady-state push/pop cycles allocate nothing.
func TestColorStackReusesBacking(t *testing.T) {
	var s regalloc.ColorStack
	cycle := func() {
		for r := ir.Reg(0); r < 64; r++ {
			s.Push(r)
		}
		for {
			if _, ok := s.Pop(); !ok {
				break
			}
		}
	}
	cycle() // grow the backing array once
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Errorf("steady-state push/pop allocates %.0f times per cycle, want 0", allocs)
	}
}

// TestDropCoalescePipelineMatchesNoCoalesceOption checks that the two
// ways of turning coalescing off — the option flag (which runs the
// coalesce pass in its "off" mode) and the pipeline edit that removes
// the pass entirely — produce the same allocation. This is what makes
// Drop a well-formed ablation: downstream passes materialize the
// missing working graphs themselves.
func TestDropCoalescePipelineMatchesNoCoalesceOption(t *testing.T) {
	fn, ff := prepFixture(t, pressureSrc, "f")
	config := machine.NewConfig(6, 4, 0, 0)
	strat := &regalloc.Chaitin{}

	optOff := regalloc.DefaultOptions()
	optOff.Coalesce = false
	want, err := regalloc.AllocatePrepared(regalloc.Prepare(fn), ff, config,
		strat, rewrite.InsertSpills, optOff)
	if err != nil {
		t.Fatal(err)
	}

	dropped := regalloc.BuildPipeline(strat, rewrite.InsertSpills, regalloc.DefaultOptions()).
		Drop(obs.PhaseCoalesce)
	optDrop := regalloc.DefaultOptions()
	optDrop.Pipeline = &dropped
	got, err := regalloc.AllocatePrepared(regalloc.Prepare(fn), ff, config,
		strat, rewrite.InsertSpills, optDrop)
	if err != nil {
		t.Fatal(err)
	}

	if got.Rounds != want.Rounds {
		t.Errorf("rounds: drop=%d off=%d", got.Rounds, want.Rounds)
	}
	if len(got.Colors) != len(want.Colors) {
		t.Fatalf("colors length: drop=%d off=%d", len(got.Colors), len(want.Colors))
	}
	for r := range want.Colors {
		if got.Colors[r] != want.Colors[r] {
			t.Errorf("v%d: drop=%v off=%v", r, got.Colors[r], want.Colors[r])
		}
	}
	if len(got.SlotOf) != len(want.SlotOf) {
		t.Errorf("spill slots: drop=%d off=%d", len(got.SlotOf), len(want.SlotOf))
	}
}
