package regalloc

import (
	"fmt"

	"repro/internal/interproc"
	"repro/internal/ir"
	"repro/internal/liverange"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
)

// This file defines the concrete passes of the allocation pipeline —
// the stages of the paper's Figure 1, each a pipeline.Pass the runner
// times and traces automatically. BuildPipeline assembles the default
// order:
//
//	liveness → build-graph → coalesce → liverange → color → spill-rewrite
//
// Ablations edit a Pipeline value instead of threading booleans:
// Replace(obs.PhaseCoalesce, CoalescePass(BriggsCoalesce)) switches the
// coalescing test, Drop(obs.PhaseCoalesce) removes coalescing
// entirely, Replace(obs.PhaseBuild, BuildGraphPass(true)) disables
// incremental graph reconstruction.

// LivenessPass materializes the CFG and liveness of the working
// function. At round 0 it is served as a fork of the shared cached
// solution; after a spill rewrite the previous round's solution is
// updated incrementally from the rewritten blocks (liveness.Rebase,
// with the CFG reused through a retargeted view) — or re-solved from
// scratch when rebuild is set, the compile-time ablation mirroring
// BuildGraphPass(true).
func LivenessPass(rebuild bool) pipeline.Pass { return livenessPass{rebuild: rebuild} }

type livenessPass struct{ rebuild bool }

func (livenessPass) Name() string                    { return obs.PhaseLiveness }
func (livenessPass) Preserves() pipeline.AnalysisSet { return pipeline.PreserveAll }

func (p livenessPass) Run(s *pipeline.State) error {
	s.Live, s.LiveHit = s.AM.Liveness(p.rebuild)
	return nil
}

// PostPhase reports how the round's liveness was obtained — full solve
// or incremental update, and how many blocks the worklist visited —
// after the phase timing window closes. Nothing is emitted when the
// solution came from the already-built shared cache without solving.
func (livenessPass) PostPhase(s *pipeline.State) {
	if !s.Traced() {
		return
	}
	mode, visited, total := s.AM.LiveStat()
	if mode == "" {
		return
	}
	s.Tracer.Emit(obs.Event{Kind: obs.KindLiveness, Fn: s.Fn.Name, Round: s.Round,
		Reason: mode, N: visited, Total: total})
}

// BuildGraphPass materializes the per-class base interference graphs:
// copy-on-write views of the shared cache at round 0, incremental
// reconstruction from the previous round's graphs after a spill
// rewrite — or a from-scratch rebuild when rebuild is set (the
// compile-time ablation of the paper's reconstruction optimization).
func BuildGraphPass(rebuild bool) pipeline.Pass { return buildGraphPass{rebuild: rebuild} }

type buildGraphPass struct{ rebuild bool }

func (buildGraphPass) Name() string                    { return obs.PhaseBuild }
func (buildGraphPass) Preserves() pipeline.AnalysisSet { return pipeline.PreserveAll }

func (p buildGraphPass) Run(s *pipeline.State) error {
	s.BaseHit = s.AM.Interference(p.rebuild)
	return nil
}

// PostPhase reports a full prep-cache hit — both liveness and base
// graphs served from already-built shared artifacts — after the build
// phase window closes.
func (buildGraphPass) PostPhase(s *pipeline.State) {
	if s.Round == 0 && s.LiveHit && s.BaseHit && s.Traced() {
		s.Tracer.Emit(obs.Event{Kind: obs.KindPrepCache, Fn: s.Fn.Name, Round: s.Round})
	}
}

// CoalesceMode selects the live-range coalescing test of the coalesce
// pass.
type CoalesceMode int

const (
	// AggressiveCoalesce merges every move-related pair (Chaitin; the
	// paper's framework default).
	AggressiveCoalesce CoalesceMode = iota
	// BriggsCoalesce merges only when the combined node stays
	// conservatively colorable (the Briggs test).
	BriggsCoalesce
	// NoCoalesce performs no merging; the working graphs are plain
	// snapshots of the base graphs.
	NoCoalesce
)

// String names the mode.
func (m CoalesceMode) String() string {
	switch m {
	case AggressiveCoalesce:
		return "aggressive"
	case BriggsCoalesce:
		return "briggs"
	case NoCoalesce:
		return "off"
	}
	return "unknown"
}

// CoalescePass derives this round's working graphs from the base
// graphs: snapshot, then coalesce under the selected mode. The
// aggressive untraced round 0 is served straight from the shared
// coalesced cache (the merge loop never reads k, so one result fits
// every configuration); traced runs always re-coalesce so the merge
// events appear in the stream.
func CoalescePass(mode CoalesceMode) pipeline.Pass { return coalescePass{mode: mode} }

type coalescePass struct{ mode CoalesceMode }

func (coalescePass) Name() string                    { return obs.PhaseCoalesce }
func (coalescePass) Preserves() pipeline.AnalysisSet { return pipeline.PreserveAll }

func (p coalescePass) Run(s *pipeline.State) error {
	if p.mode == AggressiveCoalesce && s.Round == 0 && !s.Traced() && s.AM.FromCache() {
		s.Graphs = s.AM.CoalescedSnapshots()
		s.SharedRound0 = true
		return nil
	}
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		// Always a snapshot, never the base itself: nothing the
		// coloring round does to the working graph may reach the frozen
		// graph that Reconstruct patches next round.
		g := s.AM.Base(c).Snapshot()
		if p.mode != NoCoalesce {
			if s.Traced() {
				class, rnd, name, tr := c, s.Round, s.Fn.Name, s.Tracer
				g.TraceMerge = func(kept, gone ir.Reg) {
					tr.Emit(obs.Event{Kind: obs.KindCoalesceMerge, Fn: name,
						Class: class, Round: rnd, Reg: kept, With: gone})
				}
			}
			g.Coalesce(p.mode == BriggsCoalesce, s.Config.Total(c))
			g.TraceMerge = nil
		}
		s.Graphs[c] = g
	}
	return nil
}

// RangesPass runs the live-range cost/benefit analysis over this
// round's working graphs. When the round is served from the shared
// round-0 artifacts the analysis comes from the shared per-frequency
// cache as well.
func RangesPass() pipeline.Pass { return rangesPass{} }

// RangesCostPass is RangesPass under an interprocedural summary table:
// call-site caller-save costs come from the callees' published clobber
// summaries instead of the paper's static estimate. A non-nil table
// also bypasses the shared per-frequency range cache — the cached
// analysis was computed with static costs, and summary tables are
// per-batch-run state that must not leak between programs. Nil is
// exactly RangesPass.
func RangesCostPass(cc *interproc.Table) pipeline.Pass { return rangesPass{cc: cc} }

type rangesPass struct{ cc *interproc.Table }

func (rangesPass) Name() string                    { return obs.PhaseRanges }
func (rangesPass) Preserves() pipeline.AnalysisSet { return pipeline.PreserveAll }

func (p rangesPass) Run(s *pipeline.State) error {
	if s.SharedRound0 && p.cc == nil {
		s.Ranges = s.AM.CachedRanges(s.FF)
	} else {
		s.Ranges = liverange.AnalyzeCosts(s.AM.BlockMap(), s.Fn, s.Live, s.WorkGraphs(), s.FF, s.IsNoSpill, p.cc)
	}
	s.AM.MarkValid(pipeline.AnalysisLiveRanges)
	return nil
}

// ColorPass runs the strategy's color ordering and assignment per
// bank, producing the round's coloring and spill set. Spilled
// representatives get their stack slots named here so slot numbering
// stays in decision order.
func ColorPass(strat Strategy) pipeline.Pass { return colorPass{strat: strat} }

type colorPass struct{ strat Strategy }

func (colorPass) Name() string                    { return obs.PhaseColor }
func (colorPass) Preserves() pipeline.AnalysisSet { return pipeline.PreserveAll }

func (p colorPass) Run(s *pipeline.State) error {
	graphs := s.WorkGraphs()
	spillSet := make(map[ir.Reg]*ir.Symbol)
	// Intermediate rounds' colorings are dead the moment the next round
	// overwrites them, so the slice's backing array is recycled across
	// rounds; only the final round's contents escape into the result.
	n := s.Fn.NumRegs()
	colors := s.Colors
	if cap(colors) < n {
		colors = make([]machine.PhysReg, n)
	} else {
		colors = colors[:n]
	}
	for i := range colors {
		colors[i] = machine.NoPhysReg
	}
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		ctx := &ClassContext{
			Fn:     s.Fn,
			Class:  c,
			Graph:  graphs[c],
			Ranges: s.Ranges,
			Config: s.Config,
			Round:  s.Round,
			Tracer: s.Tracer,
		}
		res := p.strat.Allocate(ctx)
		for rep, col := range res.Colors {
			graphs[c].ForEachMember(rep, func(m ir.Reg) { colors[m] = col })
		}
		for _, rep := range res.Spilled {
			slot := &ir.Symbol{
				Name:  fmt.Sprintf("%s.spill.%d", s.Fn.Name, len(s.SlotOf)+len(spillSet)),
				Class: c,
				Local: true,
				Spill: true,
			}
			members := 0
			graphs[c].ForEachMember(rep, func(m ir.Reg) {
				spillSet[m] = slot
				members++
			})
			if s.Traced() {
				s.Tracer.Emit(obs.Event{Kind: obs.KindRewriteInsert, Fn: s.Fn.Name,
					Class: c, Round: s.Round, Reg: rep, Slot: slot.Name, N: members})
			}
		}
	}
	s.SpillSet = spillSet
	s.Colors = colors
	if b := telemetry.B(); b != nil {
		b.ColorRounds.Inc()
	}
	return nil
}

// SpillRewritePass commits the round's spill decisions: it records the
// slots, clones the function if this is the first rewrite, and inserts
// the spill code. It skips entirely — no phase events, no
// invalidation — when the round converged, and preserves nothing when
// it runs: the rewrite changed the function, so every analysis must be
// redone next round.
func SpillRewritePass(insert SpillInserter) pipeline.Pass { return spillRewritePass{insert: insert} }

type spillRewritePass struct{ insert SpillInserter }

func (spillRewritePass) Name() string                    { return obs.PhaseRewrite }
func (spillRewritePass) Preserves() pipeline.AnalysisSet { return pipeline.PreserveNone }
func (spillRewritePass) Skip(s *pipeline.State) bool     { return len(s.SpillSet) == 0 }

func (p spillRewritePass) Run(s *pipeline.State) error {
	for r, slot := range s.SpillSet {
		s.SlotOf[r] = slot
	}
	// Rounds before the first rewrite run entirely on copy-on-write
	// views of the original; only a spill rewrite needs a private body.
	s.CloneFn()
	temps := make(map[ir.Reg]bool)
	dirty := p.insert(s.Fn, s.SpillSet, func(t ir.Reg) {
		s.NoSpill[t] = true
		temps[t] = true
	})
	s.AM.RecordRewrite(s.SpillSet, temps, dirty)
	return nil
}

// PipelineBuilder is an optional Strategy extension: a strategy whose
// natural pipeline is not the standard six-pass coloring sequence
// (e.g. the graph-free linear scan, which has no build/coalesce/color
// phases) supplies its own. BuildPipeline — and through it every
// driver that leaves Options.Pipeline nil — consults it before
// assembling the default.
type PipelineBuilder interface {
	BuildPipeline(insertSpills SpillInserter, opts Options) pipeline.Pipeline
}

// BuildPipeline assembles the default allocation pipeline for strat
// under opts, mapping the option booleans onto pass variants. A
// strategy implementing PipelineBuilder supplies its own pipeline
// instead. Callers wanting a non-standard pipeline derive one from
// this with Replace and Drop (or assemble their own) and set
// Options.Pipeline.
func BuildPipeline(strat Strategy, insertSpills SpillInserter, opts Options) pipeline.Pipeline {
	if pb, ok := strat.(PipelineBuilder); ok {
		return pb.BuildPipeline(insertSpills, opts)
	}
	mode := AggressiveCoalesce
	switch {
	case !opts.Coalesce:
		mode = NoCoalesce
	case opts.ConservativeCoalesce:
		mode = BriggsCoalesce
	}
	return pipeline.New(
		LivenessPass(opts.Rebuild),
		BuildGraphPass(opts.Rebuild),
		CoalescePass(mode),
		RangesCostPass(opts.Interproc),
		ColorPass(strat),
		SpillRewritePass(insertSpills),
	)
}
