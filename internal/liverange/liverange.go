// Package liverange computes the per-live-range costs at the heart of
// the paper's model (§3-§4):
//
//	spill_cost(lr)   — weighted count of the loads/stores spill code
//	                   would execute if lr lived in memory;
//	caller_cost(lr)  — weighted save/restore operations if lr lived in
//	                   a caller-save register: two memory operations
//	                   per execution of every call lr is live across;
//	callee_cost(f)   — two memory operations per invocation of the
//	                   function, the entry/exit save/restore of one
//	                   callee-save register;
//
// and from them the two benefit functions:
//
//	benefit_caller(lr) = spill_cost(lr) − caller_cost(lr)
//	benefit_callee(lr) = spill_cost(lr) − callee_cost(f)
//
// All weights come from a freq.FuncFreq, so the same analysis serves the
// "static" (estimated) and "dynamic" (profiled) experiments.
package liverange

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/freq"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// Range aggregates the allocation-relevant facts of one live range
// (one representative node of the interference graph).
type Range struct {
	Rep   ir.Reg
	Class ir.Class

	// SpillCost is the weighted number of memory operations spill code
	// for this range would execute.
	SpillCost float64
	// CallerCost is the weighted number of save/restore operations if
	// the range lives in a caller-save register.
	CallerCost float64
	// CalleeCost is the weighted entry/exit save/restore cost of one
	// callee-save register of the enclosing function.
	CalleeCost float64

	// BenefitCaller = SpillCost - CallerCost (paper §4).
	BenefitCaller float64
	// BenefitCallee = SpillCost - CalleeCost (paper §4).
	BenefitCallee float64

	// Refs counts static occurrences (defs+uses).
	Refs int
	// Size is the number of basic blocks the range is live in or
	// referenced in — the denominator of Chow's priority function.
	Size int
	// CrossesCall reports whether the range is live across any call.
	CrossesCall bool
	// NoSpill marks spill-code temporaries that must stay in registers.
	NoSpill bool
}

// PrefersCallee reports the storage class this range would pick with
// both kinds available (paper §4: callee-save iff benefit_callee >
// benefit_caller).
func (r *Range) PrefersCallee() bool { return r.BenefitCallee > r.BenefitCaller }

// CallSite describes one call instruction and the live ranges crossing
// it, used by the preference-decision pass (paper §6).
type CallSite struct {
	Block *ir.Block
	Index int
	// Freq is the weighted execution frequency of the call.
	Freq float64
	// Crossing lists the representative live ranges live across the
	// call, per register bank, in increasing register order.
	Crossing [ir.NumClasses][]ir.Reg
}

// Set is the result of analyzing one function under one frequency
// model.
type Set struct {
	Fn     *ir.Func
	Ranges map[ir.Reg]*Range
	Calls  []CallSite
	// EntryFreq is the function's invocation count/estimate.
	EntryFreq float64
}

// Of returns the Range of the representative rep (nil if rep is not a
// node).
func (s *Set) Of(rep ir.Reg) *Range { return s.Ranges[rep] }

// Analyze computes the ranges of fn. graphs supplies the per-bank
// interference graphs (used for the representative mapping), ff the
// frequencies, and noSpill the set of spill-temporary registers.
func Analyze(fn *ir.Func, live *liveness.Info, graphs *[ir.NumClasses]*interference.Graph, ff *freq.FuncFreq, noSpill func(ir.Reg) bool) *Set {
	s := &Set{
		Fn:        fn,
		Ranges:    make(map[ir.Reg]*Range),
		EntryFreq: ff.Entry,
	}
	find := func(r ir.Reg) ir.Reg { return graphs[fn.RegClass(r)].Find(r) }
	rangeOf := func(r ir.Reg) *Range {
		rep := find(r)
		rg := s.Ranges[rep]
		if rg == nil {
			rg = &Range{
				Rep:           rep,
				Class:         fn.RegClass(rep),
				CalleeCost:    2 * ff.Entry,
				BenefitCallee: -2 * ff.Entry,
			}
			s.Ranges[rep] = rg
		}
		return rg
	}

	// Reference counts and spill cost: one memory operation per def
	// (store) and per distinct use in an instruction (load), weighted
	// by block frequency.
	for _, b := range fn.Blocks {
		w := ff.Block[b.ID]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			seen := make(map[ir.Reg]bool, len(in.Args))
			for _, a := range in.Args {
				rep := find(a)
				if seen[rep] {
					continue
				}
				seen[rep] = true
				rg := rangeOf(a)
				rg.Refs++
				rg.SpillCost += w
				if noSpill != nil && noSpill(a) {
					rg.NoSpill = true
				}
			}
			if in.HasDst() {
				rg := rangeOf(in.Dst)
				rg.Refs++
				rg.SpillCost += w
				if noSpill != nil && noSpill(in.Dst) {
					rg.NoSpill = true
				}
			}
		}
	}

	// Size: blocks where the range is live-in, live-out, or referenced.
	sizeSets := make(map[ir.Reg]*bitset.Set)
	touch := func(r ir.Reg, blockID int) {
		rep := find(r)
		if s.Ranges[rep] == nil {
			return
		}
		bs := sizeSets[rep]
		if bs == nil {
			bs = bitset.New(len(fn.Blocks))
			sizeSets[rep] = bs
		}
		bs.Add(blockID)
	}
	for _, b := range fn.Blocks {
		live.In[b.ID].ForEach(func(i int) { touch(ir.Reg(i), b.ID) })
		live.Out[b.ID].ForEach(func(i int) { touch(ir.Reg(i), b.ID) })
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for _, a := range in.Args {
				touch(a, b.ID)
			}
			if in.HasDst() {
				touch(in.Dst, b.ID)
			}
		}
	}
	for rep, bs := range sizeSets {
		s.Ranges[rep].Size = bs.Count()
	}

	// Call crossings: caller-save cost is two memory operations per
	// crossed call execution.
	live.LiveAcrossCalls(func(b *ir.Block, idx int, call *ir.Instr, crossing *bitset.Set) {
		w := ff.Block[b.ID]
		site := CallSite{Block: b, Index: idx, Freq: w}
		crossReps := make(map[ir.Reg]bool)
		crossing.ForEach(func(i int) {
			r := ir.Reg(i)
			rep := find(r)
			if crossReps[rep] {
				return
			}
			crossReps[rep] = true
			rg := s.Ranges[rep]
			if rg == nil {
				// Live range with no references (possible only for
				// unused params); skip.
				return
			}
			rg.CrossesCall = true
			rg.CallerCost += 2 * w
			site.Crossing[rg.Class] = append(site.Crossing[rg.Class], rep)
		})
		for c := range site.Crossing {
			sort.Slice(site.Crossing[c], func(i, j int) bool {
				return site.Crossing[c][i] < site.Crossing[c][j]
			})
		}
		s.Calls = append(s.Calls, site)
	})

	// Benefits.
	for _, rg := range s.Ranges {
		rg.BenefitCaller = rg.SpillCost - rg.CallerCost
		rg.BenefitCallee = rg.SpillCost - rg.CalleeCost
	}

	// Deterministic call ordering: by block, then index.
	sort.Slice(s.Calls, func(i, j int) bool {
		if s.Calls[i].Block.ID != s.Calls[j].Block.ID {
			return s.Calls[i].Block.ID < s.Calls[j].Block.ID
		}
		return s.Calls[i].Index < s.Calls[j].Index
	})
	return s
}
