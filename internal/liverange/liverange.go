// Package liverange computes the per-live-range costs at the heart of
// the paper's model (§3-§4):
//
//	spill_cost(lr)   — weighted count of the loads/stores spill code
//	                   would execute if lr lived in memory;
//	caller_cost(lr)  — weighted save/restore operations if lr lived in
//	                   a caller-save register: two memory operations
//	                   per execution of every call lr is live across;
//	callee_cost(f)   — two memory operations per invocation of the
//	                   function, the entry/exit save/restore of one
//	                   callee-save register;
//
// and from them the two benefit functions:
//
//	benefit_caller(lr) = spill_cost(lr) − caller_cost(lr)
//	benefit_callee(lr) = spill_cost(lr) − callee_cost(f)
//
// All weights come from a freq.FuncFreq, so the same analysis serves the
// "static" (estimated) and "dynamic" (profiled) experiments.
package liverange

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/freq"
	"repro/internal/interference"
	"repro/internal/interproc"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// Range aggregates the allocation-relevant facts of one live range
// (one representative node of the interference graph).
type Range struct {
	Rep   ir.Reg
	Class ir.Class

	// SpillCost is the weighted number of memory operations spill code
	// for this range would execute.
	SpillCost float64
	// CallerCost is the weighted number of save/restore operations if
	// the range lives in a caller-save register.
	CallerCost float64
	// CalleeCost is the weighted entry/exit save/restore cost of one
	// callee-save register of the enclosing function.
	CalleeCost float64

	// BenefitCaller = SpillCost - CallerCost (paper §4).
	BenefitCaller float64
	// BenefitCallee = SpillCost - CalleeCost (paper §4).
	BenefitCallee float64

	// Refs counts static occurrences (defs+uses).
	Refs int
	// Size is the number of basic blocks the range is live in or
	// referenced in — the denominator of Chow's priority function.
	Size int
	// CrossesCall reports whether the range is live across any call.
	CrossesCall bool
	// NoSpill marks spill-code temporaries that must stay in registers.
	NoSpill bool
}

// PrefersCallee reports the storage class this range would pick with
// both kinds available (paper §4: callee-save iff benefit_callee >
// benefit_caller).
func (r *Range) PrefersCallee() bool { return r.BenefitCallee > r.BenefitCaller }

// CallSite describes one call instruction and the live ranges crossing
// it, used by the preference-decision pass (paper §6).
type CallSite struct {
	Block *ir.Block
	Index int
	// Freq is the weighted execution frequency of the call.
	Freq float64
	// Crossing lists the representative live ranges live across the
	// call, per register bank, in increasing register order.
	Crossing [ir.NumClasses][]ir.Reg
}

// Set is the result of analyzing one function under one frequency
// model.
type Set struct {
	Fn     *ir.Func
	Ranges map[ir.Reg]*Range
	Calls  []CallSite
	// EntryFreq is the function's invocation count/estimate.
	EntryFreq float64

	// byRep is Ranges as a flat register-indexed slice — the allocator
	// looks ranges up in its hottest loops (simplify keys, spill
	// heuristics), where a map access is measurable.
	byRep []*Range
}

// Of returns the Range of the representative rep (nil if rep is not a
// node).
func (s *Set) Of(rep ir.Reg) *Range {
	if int(rep) < len(s.byRep) {
		return s.byRep[rep]
	}
	return s.Ranges[rep]
}

// Analyze computes the ranges of fn. graphs supplies the per-bank
// interference graphs (used for the representative mapping), ff the
// frequencies, and noSpill the set of spill-temporary registers.
func Analyze(fn *ir.Func, live *liveness.Info, graphs *[ir.NumClasses]*interference.Graph, ff *freq.FuncFreq, noSpill func(ir.Reg) bool) *Set {
	return AnalyzeWith(nil, fn, live, graphs, ff, noSpill)
}

// AnalyzeWith is Analyze consuming a prebuilt (possibly incrementally
// rebased) BlockMap for the Size metric; bm must cover fn's current
// blocks and registers. A nil bm builds one on the spot, which is how
// Analyze runs — so the full and incremental paths share every line of
// the cost computation and can only differ if the block map itself
// does (pinned by the differential tests).
func AnalyzeWith(bm *BlockMap, fn *ir.Func, live *liveness.Info, graphs *[ir.NumClasses]*interference.Graph, ff *freq.FuncFreq, noSpill func(ir.Reg) bool) *Set {
	return AnalyzeCosts(bm, fn, live, graphs, ff, noSpill, nil)
}

// AnalyzeCosts is AnalyzeWith under an interprocedural summary table:
// at call sites whose callee has a published summary, the static
// caller_save_cost estimate (2 per crossing) is replaced by the
// callee's measured clobber factor. A factor of 0 — the callee
// provably preserves the whole bank — means the site is not a crossing
// for ranges of that bank at all: no CrossesCall, no CallerCost, no
// entry in the site's Crossing list (so the §6 preference pass ignores
// it too). A nil table reproduces AnalyzeWith bit for bit.
func AnalyzeCosts(bm *BlockMap, fn *ir.Func, live *liveness.Info, graphs *[ir.NumClasses]*interference.Graph, ff *freq.FuncFreq, noSpill func(ir.Reg) bool, cc *interproc.Table) *Set {
	nr := fn.NumRegs()
	s := &Set{
		Fn:        fn,
		Ranges:    make(map[ir.Reg]*Range),
		byRep:     make([]*Range, nr),
		EntryFreq: ff.Entry,
	}
	// The representative of a register is stable for the whole analysis,
	// and the loops below resolve every operand occurrence — memoize the
	// union-find lookups in a flat slice.
	repOf := make([]ir.Reg, nr)
	for i := range repOf {
		repOf[i] = ir.NoReg
	}
	find := func(r ir.Reg) ir.Reg {
		rep := repOf[r]
		if rep == ir.NoReg {
			rep = graphs[fn.RegClass(r)].Find(r)
			repOf[r] = rep
		}
		return rep
	}
	// Range structs are carved from chunked backing arrays (pointers
	// must stay stable once handed out) instead of one heap object per
	// range.
	var chunk []Range
	rangeOf := func(rep ir.Reg) *Range {
		rg := s.byRep[rep]
		if rg == nil {
			if len(chunk) == cap(chunk) {
				chunk = make([]Range, 0, 64)
			}
			chunk = append(chunk, Range{
				Rep:           rep,
				Class:         fn.RegClass(rep),
				CalleeCost:    2 * ff.Entry,
				BenefitCallee: -2 * ff.Entry,
			})
			rg = &chunk[len(chunk)-1]
			s.byRep[rep] = rg
			s.Ranges[rep] = rg
		}
		return rg
	}

	// Reference counts and spill cost: one memory operation per def
	// (store) and per distinct use in an instruction (load), weighted
	// by block frequency. seen dedups an instruction's uses by
	// representative; instructions have a handful of operands, so a
	// linear scan beats a map.
	seen := make([]ir.Reg, 0, 16)
	for _, b := range fn.Blocks {
		w := ff.Block[b.ID]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			seen = seen[:0]
		args:
			for _, a := range in.Args {
				rep := find(a)
				for _, p := range seen {
					if p == rep {
						continue args
					}
				}
				seen = append(seen, rep)
				rg := rangeOf(rep)
				rg.Refs++
				rg.SpillCost += w
				if noSpill != nil && noSpill(a) {
					rg.NoSpill = true
				}
			}
			if in.HasDst() {
				rg := rangeOf(find(in.Dst))
				rg.Refs++
				rg.SpillCost += w
				if noSpill != nil && noSpill(in.Dst) {
					rg.NoSpill = true
				}
			}
		}
	}

	// Size: blocks where the range is live-in, live-out, or referenced.
	// A range's block set is the union of its coalesced members' rows in
	// the block map (every register in a live set or an instruction
	// resolves to its representative through find, so the member union
	// reproduces the classic per-representative scan exactly).
	if bm == nil {
		bm = NewBlockMap(fn, live)
	}
	sizeScratch := bitset.New(len(fn.Blocks))
	for rep, rg := range s.Ranges {
		rg.Size = bm.sizeOfRange(graphs[rg.Class], rep, sizeScratch)
	}

	// Call crossings: caller-save cost is two memory operations per
	// crossed call execution. The per-site representative dedup reuses a
	// flat flag array, reset through the touched list.
	crossFlag := make([]bool, nr)
	touched := make([]ir.Reg, 0, 32)
	live.LiveAcrossCalls(func(b *ir.Block, idx int, call *ir.Instr, crossing *bitset.Set) {
		w := ff.Block[b.ID]
		site := CallSite{Block: b, Index: idx, Freq: w}
		var factor [ir.NumClasses]float64
		for c := range factor {
			factor[c] = 2
		}
		if cc != nil {
			for c := range factor {
				factor[c] = cc.CrossFactor(call.Callee, ir.Class(c))
			}
		}
		for _, r := range touched {
			crossFlag[r] = false
		}
		touched = touched[:0]
		crossing.ForEach(func(i int) {
			rep := find(ir.Reg(i))
			if crossFlag[rep] {
				return
			}
			crossFlag[rep] = true
			touched = append(touched, rep)
			rg := s.byRep[rep]
			if rg == nil {
				// Live range with no references (possible only for
				// unused params); skip.
				return
			}
			if factor[rg.Class] == 0 {
				// The callee preserves this whole bank: the range does
				// not cross this call in any cost-relevant sense.
				return
			}
			rg.CrossesCall = true
			rg.CallerCost += factor[rg.Class] * w
			site.Crossing[rg.Class] = append(site.Crossing[rg.Class], rep)
		})
		for c := range site.Crossing {
			sort.Slice(site.Crossing[c], func(i, j int) bool {
				return site.Crossing[c][i] < site.Crossing[c][j]
			})
		}
		s.Calls = append(s.Calls, site)
	})

	// Benefits.
	for _, rg := range s.Ranges {
		rg.BenefitCaller = rg.SpillCost - rg.CallerCost
		rg.BenefitCallee = rg.SpillCost - rg.CalleeCost
	}

	// Deterministic call ordering: by block, then index.
	sort.Slice(s.Calls, func(i, j int) bool {
		if s.Calls[i].Block.ID != s.Calls[j].Block.ID {
			return s.Calls[i].Block.ID < s.Calls[j].Block.ID
		}
		return s.Calls[i].Index < s.Calls[j].Index
	})
	return s
}
