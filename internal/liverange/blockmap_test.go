package liverange_test

import (
	"fmt"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/cfg"
	"repro/internal/compile"
	"repro/internal/freq"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/liverange"
	"repro/internal/rewrite"
)

// spillThird rewrites fn with spill-everywhere code for every third
// occurring register, mirroring what a spill round does, and returns
// rewrite.InsertSpills' dirty-block report plus the removed registers.
func spillThird(fn *ir.Func) (dirty []int, removed []ir.Reg) {
	occ := make([]bool, fn.NumRegs())
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.HasDst() {
				occ[in.Dst] = true
			}
			for _, a := range in.Args {
				occ[a] = true
			}
		}
	}
	spill := make(map[ir.Reg]*ir.Symbol)
	k := 0
	for r := 0; r < len(occ); r++ {
		if !occ[r] {
			continue
		}
		if k++; k%3 != 0 {
			continue
		}
		reg := ir.Reg(r)
		spill[reg] = &ir.Symbol{
			Name:  fmt.Sprintf("%s.t%d", fn.Name, r),
			Class: fn.RegClass(reg),
			Local: true,
			Spill: true,
		}
		removed = append(removed, reg)
	}
	dirty = rewrite.InsertSpills(fn, spill, func(ir.Reg) {})
	return dirty, removed
}

// TestBlockMapRebaseMatchesFresh pins the incremental Size update: a
// BlockMap rebased over only the blocks the liveness update changed
// must equal a from-scratch NewBlockMap over the rewritten function,
// on every function of the benchmark suite.
func TestBlockMapRebaseMatchesFresh(t *testing.T) {
	exercised := 0
	for _, name := range benchprog.Names() {
		prog, err := compile.Source(benchprog.ByName(name).Source)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, fn := range prog.Funcs {
			g := cfg.New(fn)
			live := liveness.Compute(fn, g)
			bm := liverange.NewBlockMap(fn, live)

			dirty, removed := spillThird(fn)
			if len(dirty) == 0 {
				continue
			}
			exercised++
			live2, changed := liveness.Rebase(live, fn, g.Retarget(fn), dirty, removed, true)
			if changed == nil {
				t.Fatalf("%s/%s: Rebase declined", name, fn.Name)
			}
			bm.Rebase(fn, live2, changed)
			fresh := liverange.NewBlockMap(fn, live2)
			if !bm.Equal(fresh) {
				t.Errorf("%s/%s: rebased block map diverges from fresh scan", name, fn.Name)
			}
		}
	}
	if exercised == 0 {
		t.Fatal("no function exercised the rebase path")
	}
}

// TestAnalyzeWithSharedMap pins that Analyze through a prebuilt (or
// rebased) BlockMap produces identical Size metrics to the plain path,
// which derives the map itself.
func TestAnalyzeWithSharedMap(t *testing.T) {
	for _, name := range benchprog.Names() {
		prog, err := compile.Source(benchprog.ByName(name).Source)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pf := freq.Static(prog)
		for _, fn := range prog.Funcs {
			g := cfg.New(fn)
			live := liveness.Compute(fn, g)
			var graphs [ir.NumClasses]*interference.Graph
			for c := ir.Class(0); c < ir.NumClasses; c++ {
				graphs[c] = interference.Build(fn, live, c)
				graphs[c].Coalesce(false, 8)
			}
			ff := pf.ByFunc[fn.Name]
			plain := liverange.Analyze(fn, live, &graphs, ff, nil)
			shared := liverange.AnalyzeWith(liverange.NewBlockMap(fn, live), fn, live, &graphs, ff, nil)
			for rep, rg := range plain.Ranges {
				org, ok := shared.Ranges[rep]
				if !ok {
					t.Fatalf("%s/%s: range v%d missing from shared-map analysis", name, fn.Name, rep)
				}
				if rg.Size != org.Size || rg.SpillCost != org.SpillCost ||
					rg.CallerCost != org.CallerCost || rg.CalleeCost != org.CalleeCost {
					t.Errorf("%s/%s v%d: shared-map metrics diverge (size %d vs %d)",
						name, fn.Name, rep, rg.Size, org.Size)
				}
			}
		}
	}
}
