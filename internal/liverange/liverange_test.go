package liverange_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/compile"
	"repro/internal/freq"
	"repro/internal/interference"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/liverange"
)

// analyze compiles src, profiles it, and runs the live-range analysis
// on fn under the dynamic weights.
func analyze(t *testing.T, src, fn string) (*ir.Func, *liverange.Set, *freq.FuncFreq) {
	t.Helper()
	prog, err := compile.Source(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := interp.Run(prog, interp.Options{Profile: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	pf := freq.FromProfile(prog, res.Profile)
	f := prog.FuncByName[fn]
	g := cfg.New(f)
	live := liveness.Compute(f, g)
	var graphs [ir.NumClasses]*interference.Graph
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		graphs[c] = interference.Build(f, live, c)
		graphs[c].Coalesce(false, 8)
	}
	set := liverange.Analyze(f, live, &graphs, pf.ByFunc[fn], nil)
	return f, set, pf.ByFunc[fn]
}

// rangeByName returns the range whose representative is the named
// register. The tests only name registers that survive coalescing as
// representatives.
func rangeByName(t *testing.T, f *ir.Func, s *liverange.Set, name string) *liverange.Range {
	t.Helper()
	for r := 0; r < f.NumRegs(); r++ {
		if f.RegName(ir.Reg(r)) != name {
			continue
		}
		if rg, ok := s.Ranges[ir.Reg(r)]; ok {
			return rg
		}
		t.Fatalf("register %s (v%d) is not a representative; it was coalesced", name, r)
	}
	t.Fatalf("no register named %s", name)
	return nil
}

const src1 = `
int g(int v) { return v + 1; }
int f(int a) {
	int keep = a * 3;
	int r = 0;
	int i = 0;
	for (i = 0; i < 10; i = i + 1) {
		r = r + g(i);
	}
	return keep + r;
}
int main() {
	int j;
	int s = 0;
	for (j = 0; j < 5; j = j + 1) { s = s + f(j); }
	return s;
}`

func TestCalleeCostIsEntryBased(t *testing.T) {
	_, set, ff := analyze(t, src1, "f")
	if ff.Entry != 5 {
		t.Fatalf("f entered %v times, want 5", ff.Entry)
	}
	for _, rg := range set.Ranges {
		if rg.CalleeCost != 2*ff.Entry {
			t.Errorf("callee cost %v, want %v", rg.CalleeCost, 2*ff.Entry)
		}
	}
	if set.EntryFreq != ff.Entry {
		t.Errorf("EntryFreq %v != %v", set.EntryFreq, ff.Entry)
	}
}

func TestCallerCostCountsCrossings(t *testing.T) {
	f, set, _ := analyze(t, src1, "f")
	keep := rangeByName(t, f, set, "keep")
	// keep crosses g() 10 times per invocation of f, f runs 5 times:
	// caller cost = 2 * 50 = 100.
	if keep.CallerCost != 100 {
		t.Errorf("keep caller cost = %v, want 100", keep.CallerCost)
	}
	if !keep.CrossesCall {
		t.Error("keep should cross calls")
	}
}

func TestBenefitDefinitions(t *testing.T) {
	f, set, _ := analyze(t, src1, "f")
	keep := rangeByName(t, f, set, "keep")
	if keep.BenefitCaller != keep.SpillCost-keep.CallerCost {
		t.Error("benefit_caller != spill - caller")
	}
	if keep.BenefitCallee != keep.SpillCost-keep.CalleeCost {
		t.Error("benefit_callee != spill - callee")
	}
	// keep is referenced twice (def + one use) at frequency 5: spill
	// cost 10. Caller cost 100 >> 10, callee cost 10: callee preferred
	// or neutral, caller clearly bad.
	if keep.BenefitCaller >= keep.BenefitCallee {
		t.Errorf("keep should prefer callee: caller %v callee %v",
			keep.BenefitCaller, keep.BenefitCallee)
	}
	if !keep.PrefersCallee() {
		t.Error("PrefersCallee should be true for keep")
	}
}

func TestHotRangeSpillCost(t *testing.T) {
	f, set, ff := analyze(t, src1, "f")
	// r is referenced in the loop (def + uses) with block frequency
	// about 50 (10 iterations x 5 entries): spill cost far above keep's.
	r := rangeByName(t, f, set, "r")
	keep := rangeByName(t, f, set, "keep")
	if r.SpillCost <= keep.SpillCost {
		t.Errorf("loop-resident r (%v) should out-cost keep (%v)", r.SpillCost, keep.SpillCost)
	}
	_ = ff
}

func TestCallSitesCollected(t *testing.T) {
	_, set, _ := analyze(t, src1, "f")
	if len(set.Calls) != 1 {
		t.Fatalf("%d call sites, want 1", len(set.Calls))
	}
	site := set.Calls[0]
	if site.Freq != 50 {
		t.Errorf("call freq %v, want 50", site.Freq)
	}
	if len(site.Crossing[ir.ClassInt]) == 0 {
		t.Error("call site should have int crossings")
	}
}

func TestSizeCountsBlocks(t *testing.T) {
	f, set, _ := analyze(t, src1, "f")
	keep := rangeByName(t, f, set, "keep")
	r := rangeByName(t, f, set, "r")
	if keep.Size < 3 {
		t.Errorf("keep spans %d blocks, expected several (defined at entry, used at exit)", keep.Size)
	}
	if r.Size < 2 {
		t.Errorf("r spans %d blocks", r.Size)
	}
}

func TestNoSpillMarking(t *testing.T) {
	prog, err := compile.Source(`int f(int a) { return a * 2; } int main() { return f(21); }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(prog, interp.Options{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	pf := freq.FromProfile(prog, res.Profile)
	f := prog.FuncByName["f"]
	g := cfg.New(f)
	live := liveness.Compute(f, g)
	var graphs [ir.NumClasses]*interference.Graph
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		graphs[c] = interference.Build(f, live, c)
	}
	// Mark the param unspillable.
	set := liverange.Analyze(f, live, &graphs, pf.ByFunc["f"], func(r ir.Reg) bool { return r == f.Params[0] })
	rep := graphs[ir.ClassInt].Find(f.Params[0])
	if !set.Ranges[rep].NoSpill {
		t.Error("NoSpill not propagated")
	}
}

func TestStaticAndDynamicDiffer(t *testing.T) {
	prog, err := compile.Source(src1)
	if err != nil {
		t.Fatal(err)
	}
	stat := freq.Static(prog)
	res, err := interp.Run(prog, interp.Options{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	dyn := freq.FromProfile(prog, res.Profile)
	// Static estimates a loop at ~10 iterations; dynamic knows main's
	// loop runs 5 times. They must both be positive but generally
	// different.
	fs := stat.ByFunc["f"].Entry
	fd := dyn.ByFunc["f"].Entry
	if fs <= 0 || fd != 5 {
		t.Errorf("entries: static %v dynamic %v", fs, fd)
	}
}
