package liverange

import (
	"repro/internal/bitset"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// BlockMap is the liveness-shaped half of the live-range Size metric:
// for every virtual register, the set of blocks where it is live-in,
// live-out, or referenced. Analyze derives a range's Size by unioning
// the per-register sets of the range's coalesced members and counting —
// exactly the block set the classic per-representative scan touches.
//
// The map exists so spill rounds can update Size incrementally: a
// spill rewrite changes liveness only in the blocks it modified plus
// whatever the worklist propagation reached (liveness.Rebase reports
// both), so only those columns need re-scanning. A frozen round-0
// BlockMap may be shared by many goroutines; incremental updates go
// through Clone first (pipeline.AnalysisManager owns that discipline).
type BlockMap struct {
	// perReg[r] holds the blocks where register r is live or
	// referenced; sets are sized to the function's block count.
	perReg []*bitset.Set
	// perBlock[b] is the transpose — the registers live or referenced
	// in block b — kept so a column update can diff old against new
	// without consulting any other column.
	perBlock []*bitset.Set

	col *bitset.Set // scratch column for Rebase
}

// NewBlockMap scans fn under live and builds the full map.
func NewBlockMap(fn *ir.Func, live *liveness.Info) *BlockMap {
	nb := len(fn.Blocks)
	nr := fn.NumRegs()
	bm := &BlockMap{
		perReg:   make([]*bitset.Set, nr),
		perBlock: make([]*bitset.Set, nb),
	}
	for r := range bm.perReg {
		bm.perReg[r] = bitset.New(nb)
	}
	for _, b := range fn.Blocks {
		col := bitset.New(nr)
		fillColumn(col, fn, live, b)
		bm.perBlock[b.ID] = col
		id := b.ID
		col.ForEach(func(r int) { bm.perReg[r].Add(id) })
	}
	return bm
}

// fillColumn computes the live-or-referenced register set of block b.
func fillColumn(col *bitset.Set, fn *ir.Func, live *liveness.Info, b *ir.Block) {
	col.UnionWith(live.In[b.ID])
	col.UnionWith(live.Out[b.ID])
	for i := range b.Instrs {
		in := &b.Instrs[i]
		for _, a := range in.Args {
			col.Add(int(a))
		}
		if in.HasDst() {
			col.Add(int(in.Dst))
		}
	}
}

// Clone returns a deep, privately-owned copy of bm (the scratch column
// is not shared).
func (bm *BlockMap) Clone() *BlockMap {
	c := &BlockMap{
		perReg:   make([]*bitset.Set, len(bm.perReg)),
		perBlock: make([]*bitset.Set, len(bm.perBlock)),
	}
	for i, s := range bm.perReg {
		c.perReg[i] = s.Clone()
	}
	for i, s := range bm.perBlock {
		c.perBlock[i] = s.Clone()
	}
	return c
}

// Blocks reports how many blocks the map covers.
func (bm *BlockMap) Blocks() int { return len(bm.perBlock) }

// Of returns the set of blocks where register r is live or referenced.
// The set is shared with the map; callers must treat it as read-only.
// Out of range (a register newer than the map) returns nil, which reads
// as the empty set.
func (bm *BlockMap) Of(r ir.Reg) *bitset.Set {
	if int(r) >= len(bm.perReg) {
		return nil
	}
	return bm.perReg[r]
}

// Rebase updates bm — which must be privately owned — to the current
// fn and live by re-scanning only the listed blocks (unique IDs; the
// changed set liveness.Rebase reports). New registers get empty rows
// first; each listed column is recomputed and diffed against the old
// column, flipping only the row bits that actually changed.
func (bm *BlockMap) Rebase(fn *ir.Func, live *liveness.Info, blocks []int) {
	nb := len(bm.perBlock)
	nr := fn.NumRegs()
	for r := len(bm.perReg); r < nr; r++ {
		bm.perReg = append(bm.perReg, bitset.New(nb))
	}
	if bm.col == nil || bm.col.Len() < nr {
		bm.col = bitset.New(nr)
	}
	for _, id := range blocks {
		old := bm.perBlock[id]
		old.Grow(nr)
		col := bm.col
		col.Clear()
		fillColumn(col, fn, live, fn.Blocks[id])
		blockID := id
		col.ForEach(func(r int) {
			if !old.Has(r) {
				bm.perReg[r].Add(blockID)
			}
		})
		old.ForEach(func(r int) {
			if !col.Has(r) {
				bm.perReg[r].Remove(blockID)
			}
		})
		old.Copy(col)
	}
}

// Equal reports whether two maps describe the same live-or-referenced
// relation. Set widths may differ (Rebase grows columns lazily, so an
// untouched column keeps its old register capacity); the comparison is
// over contents. It exists for the differential tests that pin the
// incremental Rebase against a from-scratch NewBlockMap.
func (bm *BlockMap) Equal(o *BlockMap) bool {
	if len(bm.perReg) != len(o.perReg) || len(bm.perBlock) != len(o.perBlock) {
		return false
	}
	for i, s := range bm.perReg {
		if !setsEqual(s, o.perReg[i]) {
			return false
		}
	}
	for i, s := range bm.perBlock {
		if !setsEqual(s, o.perBlock[i]) {
			return false
		}
	}
	return true
}

// setsEqual compares set contents regardless of capacity.
func setsEqual(a, b *bitset.Set) bool {
	eq := true
	a.ForEach(func(i int) {
		if i >= b.Len() || !b.Has(i) {
			eq = false
		}
	})
	b.ForEach(func(i int) {
		if i >= a.Len() || !a.Has(i) {
			eq = false
		}
	})
	return eq
}

// sizeOf counts the blocks where any of the member registers is live
// or referenced, accumulating into scratch (sized to the block count).
func (bm *BlockMap) sizeOf(members []ir.Reg, scratch *bitset.Set) int {
	scratch.Clear()
	for _, m := range members {
		scratch.UnionWith(bm.perReg[m])
	}
	return scratch.Count()
}

// sizeOfRange is sizeOf over the members of rep's live range, walking
// the graph's member cycle directly instead of materializing the
// member slice (union is order-insensitive, so the unsorted walk gives
// the same count).
func (bm *BlockMap) sizeOfRange(g *interference.Graph, rep ir.Reg, scratch *bitset.Set) int {
	scratch.Clear()
	g.ForEachMember(rep, func(m ir.Reg) {
		scratch.UnionWith(bm.perReg[m])
	})
	return scratch.Count()
}
