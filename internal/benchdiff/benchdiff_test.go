package benchdiff

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlattenLeavesAndMeans(t *testing.T) {
	var doc any
	raw := `{
		"pr": 5,
		"note": "ignored",
		"spill_round": {
			"round1_plus_us_per_op": {
				"fpppp/twoel": {"update": [291.5, 303.1], "seed": [410.6, 407.0]}
			},
			"speedup_update_vs_seed": {"fpppp/twoel": 1.37}
		},
		"mixed": [1, "two", 3]
	}`
	if err := json.Unmarshal([]byte(raw), &doc); err != nil {
		t.Fatal(err)
	}
	flat := Flatten(doc)
	if got := flat["spill_round.round1_plus_us_per_op.fpppp/twoel.update"]; got != 297.3 {
		t.Fatalf("two-run array mean = %g, want 297.3", got)
	}
	if got := flat["spill_round.speedup_update_vs_seed.fpppp/twoel"]; got != 1.37 {
		t.Fatalf("scalar leaf = %g", got)
	}
	if got := flat["pr"]; got != 5 {
		t.Fatalf("pr = %g", got)
	}
	if _, ok := flat["note"]; ok {
		t.Fatal("strings must not flatten")
	}
	// A mixed array indexes its numeric members instead of averaging.
	if flat["mixed.0"] != 1 || flat["mixed.2"] != 3 {
		t.Fatalf("mixed array: %v", flat)
	}
}

func TestDirectionOf(t *testing.T) {
	cases := []struct {
		path string
		want Direction
	}{
		{"spill_round.round1_plus_us_per_op.fpppp/twoel.update", LowerIsBetter},
		{"liveness_solver.sparse_ns_op", LowerIsBetter},
		{"spill_round.speedup_update_vs_seed.fpppp/twoel", HigherIsBetter},
		{"bench.SpillRound/fpppp_twoel/update.ns/op", LowerIsBetter},
		{"pareto.overhead.li.linscan", LowerIsBetter},
		{"pareto.escalated.li.hybrid", LowerIsBetter},
		{"pr", Neutral},
	}
	for _, c := range cases {
		if got := DirectionOf(c.path); got != c.want {
			t.Errorf("DirectionOf(%s) = %d, want %d", c.path, got, c.want)
		}
	}
}

// TestCompareFlagsInjectedRegression is the acceptance test: a wall
// time pushed 30% past the baseline must fail the gate (nonzero exit),
// the same value inside the noise band must pass.
func TestCompareFlagsInjectedRegression(t *testing.T) {
	base := map[string]float64{
		"spill_round.round1_plus_us_per_op.fpppp/twoel.update": 300,
		"spill_round.speedup_update_vs_seed.fpppp/twoel":       1.4,
		"pr": 5,
	}
	cur := map[string]float64{
		"spill_round.round1_plus_us_per_op.fpppp/twoel.update": 390, // +30% wall time
		"spill_round.speedup_update_vs_seed.fpppp/twoel":       1.4,
		"pr": 6,
	}
	rep := Compare(base, cur, 0.10)
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Path != "spill_round.round1_plus_us_per_op.fpppp/twoel.update" {
		t.Fatalf("regressions = %+v, want exactly the slowed metric", regs)
	}
	if rep.ExitCode() != 1 {
		t.Fatalf("exit code = %d, want 1 on regression", rep.ExitCode())
	}
	// The neutral "pr" delta must never flag.
	for _, d := range rep.Deltas {
		if d.Path == "pr" && d.Regression {
			t.Fatal("neutral metric flagged as regression")
		}
	}

	// Inside the noise band the same direction of change is fine.
	cur["spill_round.round1_plus_us_per_op.fpppp/twoel.update"] = 320 // +6.7%
	rep = Compare(base, cur, 0.10)
	if rep.ExitCode() != 0 {
		t.Fatalf("noise-band delta flagged: %+v", rep.Regressions())
	}
}

func TestCompareFlagsSpeedupDrop(t *testing.T) {
	base := map[string]float64{"speedup": 1.4}
	cur := map[string]float64{"speedup": 1.0}
	if rep := Compare(base, cur, 0.10); len(rep.Regressions()) != 1 {
		t.Fatal("a speedup drop must regress")
	}
	cur["speedup"] = 1.6
	if rep := Compare(base, cur, 0.10); len(rep.Regressions()) != 0 {
		t.Fatal("a speedup gain must not regress")
	}
}

func TestCompareTracksOneSidedMetrics(t *testing.T) {
	rep := Compare(map[string]float64{"a_ns": 1, "gone_ns": 2},
		map[string]float64{"a_ns": 1, "new_ns": 3}, 0.1)
	if len(rep.BaseOnly) != 1 || rep.BaseOnly[0] != "gone_ns" {
		t.Fatalf("BaseOnly = %v", rep.BaseOnly)
	}
	if len(rep.CurOnly) != 1 || rep.CurOnly[0] != "new_ns" {
		t.Fatalf("CurOnly = %v", rep.CurOnly)
	}
}

func TestParseBenchOutput(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: repro
BenchmarkSpillRound/fpppp_twoel/update-8         	    2000	    612803 ns/op	       295.1 round1+_us/op
BenchmarkSpillRound/fpppp_twoel/update-8         	    2000	    612805 ns/op	       296.9 round1+_us/op
BenchmarkSpillRound/tomcatv_main/rebuild-8       	    2000	    901234 ns/op	       470.0 round1+_us/op
BenchmarkAllocateProgram/fpppp-8                 	     100	  11939553 ns/op	 4567 B/op	      12 allocs/op
PASS
`
	got, err := ParseBenchOutput(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if v := got["bench.SpillRound/fpppp_twoel/update.round1+_us/op"]; v != 296 {
		t.Fatalf("repeat runs must average: %g, want 296", v)
	}
	if v := got["bench.SpillRound/tomcatv_main/rebuild.ns/op"]; v != 901234 {
		t.Fatalf("ns/op = %g", v)
	}
	if v := got["bench.AllocateProgram/fpppp.allocs/op"]; v != 12 {
		t.Fatalf("allocs/op = %g", v)
	}
}

func TestCanonicalizeSpillRound(t *testing.T) {
	in := map[string]float64{
		"bench.SpillRound/fpppp_twoel/update.round1+_us/op": 295.1,
		"bench.SpillRound/fpppp_twoel/update.ns/op":         612803,
		"bench.AllocateProgram/fpppp.ns/op":                 11939553,
	}
	out := CanonicalizeSpillRound(in)
	if v := out["spill_round.round1_plus_us_per_op.fpppp/twoel.update"]; v != 295.1 {
		t.Fatalf("canonical key missing: %v", out)
	}
	if _, ok := out["bench.SpillRound/fpppp_twoel/update.ns/op"]; !ok {
		t.Fatal("non-round1+ metrics must pass through")
	}
	if _, ok := out["bench.AllocateProgram/fpppp.ns/op"]; !ok {
		t.Fatal("other benchmarks must pass through")
	}
}

// TestCanonicalizePareto: AllocateStrategy's custom overhead and
// escalated units re-key under the baseline's pareto section; the
// wall-time unit of the same cell keeps its allocate_strategy path.
func TestCanonicalizePareto(t *testing.T) {
	in := map[string]float64{
		"bench.AllocateStrategy/li/linscan.ns/op":    165000,
		"bench.AllocateStrategy/li/linscan.overhead": 123456.5,
		"bench.AllocateStrategy/li/hybrid.escalated": 1,
		"bench.AllocateStrategy/li/hybrid.overhead":  98765,
	}
	out := Canonicalize(in)
	want := map[string]float64{
		"allocate_strategy.ns_per_op.li.linscan": 165000,
		"pareto.overhead.li.linscan":             123456.5,
		"pareto.escalated.li.hybrid":             1,
		"pareto.overhead.li.hybrid":              98765,
	}
	for k, v := range want {
		if out[k] != v {
			t.Errorf("%s = %g, want %g (out: %v)", k, out[k], v, out)
		}
	}
	if len(out) != len(want) {
		t.Fatalf("Canonicalize left stray keys: %v", out)
	}
}

// TestCanonicalizeServerAllocate: the rallocd request-cost benchmark
// re-keys under the server_allocate section; non-ns units pass through.
func TestCanonicalizeServerAllocate(t *testing.T) {
	in := map[string]float64{
		"bench.ServerAllocate/ear/cold.ns/op":     1852509,
		"bench.ServerAllocate/ear/warm.ns/op":     911650,
		"bench.ServerAllocate/ear/warm.allocs/op": 42,
	}
	out := Canonicalize(in)
	if v := out["server_allocate.ns_per_op.ear.cold"]; v != 1852509 {
		t.Fatalf("cold key missing: %v", out)
	}
	if v := out["server_allocate.ns_per_op.ear.warm"]; v != 911650 {
		t.Fatalf("warm key missing: %v", out)
	}
	if _, ok := out["bench.ServerAllocate/ear/warm.allocs/op"]; !ok {
		t.Fatalf("non-ns unit must pass through: %v", out)
	}
}

// TestCanonicalizeBatch: the batch driver benchmark re-keys under the
// batch section — wall times per mode, plus the schedule speedup and
// ready-peak metrics the dag cell reports. The speedup must classify
// as higher-is-better so a schedule regression is flagged.
func TestCanonicalizeBatch(t *testing.T) {
	in := map[string]float64{
		"bench.BatchAllocate/calldag/seq.ns/op":            5415700,
		"bench.BatchAllocate/calldag/dag.ns/op":            5345671,
		"bench.BatchAllocate/calldag/dag.sched_speedup_x4": 3.29,
		"bench.BatchAllocate/calldag/dag.ready_peak":       20,
	}
	out := Canonicalize(in)
	if v := out["batch.ns_per_op.calldag.seq"]; v != 5415700 {
		t.Fatalf("seq key missing: %v", out)
	}
	if v := out["batch.ns_per_op.calldag.dag"]; v != 5345671 {
		t.Fatalf("dag key missing: %v", out)
	}
	if v := out["batch.sched_speedup_x4.calldag"]; v != 3.29 {
		t.Fatalf("speedup key missing: %v", out)
	}
	if v := out["batch.ready_peak.calldag"]; v != 20 {
		t.Fatalf("ready_peak key missing: %v", out)
	}
	if DirectionOf("batch.sched_speedup_x4.calldag") != HigherIsBetter {
		t.Fatal("schedule speedup must be higher-is-better")
	}
	if DirectionOf("batch.ns_per_op.calldag.dag") != LowerIsBetter {
		t.Fatal("batch wall time must be lower-is-better")
	}
}

// TestDiffAgainstCheckedInBaseline exercises the exact CI shape: the
// repo's BENCH_5.json baseline vs. a synthetic current run, via files.
func TestDiffAgainstCheckedInBaseline(t *testing.T) {
	baseline := filepath.Join("..", "..", "BENCH_5.json")
	flat, err := LoadFlat(baseline)
	if err != nil {
		t.Fatal(err)
	}
	key := "spill_round.round1_plus_us_per_op.fpppp/twoel.update"
	baseVal, ok := flat[key]
	if !ok {
		t.Fatalf("baseline lost %s: %v", key, flat)
	}

	cur := map[string]float64{key: baseVal * 3} // grossly regressed
	curFile := filepath.Join(t.TempDir(), "cur.json")
	raw, _ := json.Marshal(map[string]any{
		"spill_round": map[string]any{
			"round1_plus_us_per_op": map[string]any{
				"fpppp/twoel": map[string]any{"update": cur[key]},
			},
		},
	})
	if err := os.WriteFile(curFile, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := DiffFiles(baseline, curFile, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExitCode() != 1 {
		t.Fatal("3x slowdown over baseline must exit nonzero")
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("report text lacks the REGRESSION marker:\n%s", buf.String())
	}
}

func TestZeroBaselineDelta(t *testing.T) {
	rep := Compare(map[string]float64{"x_ns": 0}, map[string]float64{"x_ns": 5}, 0.1)
	if !math.IsInf(rep.Deltas[0].Pct, 1) || !rep.Deltas[0].Regression {
		t.Fatalf("zero baseline growing must regress: %+v", rep.Deltas[0])
	}
}

func TestRestrict(t *testing.T) {
	m := map[string]float64{"spill_round.a": 1, "liveness_solver.b": 2, "pr": 5}
	got := Restrict(m, "spill_round.")
	if len(got) != 1 || got["spill_round.a"] != 1 {
		t.Fatalf("Restrict = %v", got)
	}
}
