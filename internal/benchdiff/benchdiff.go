// Package benchdiff compares two sets of benchmark measurements and
// decides — mechanically, with a noise threshold — whether the second
// one regressed. It is the library behind cmd/benchdiff, which CI runs
// as a smoke gate against the checked-in BENCH_*.json baselines.
//
// Measurements come from two sources with different shapes:
//
//   - The BENCH_*.json files each PR checks in, which are free-form
//     JSON documents. Flatten walks one and keeps every numeric leaf
//     under its dot-joined path ("spill_round.round1_plus_us_per_op.
//     fpppp/twoel.update"); an array of numbers collapses to its mean,
//     so the two-run convention ([291.5, 303.1]) just works.
//   - Raw `go test -bench` output, parsed by ParseBenchOutput into
//     "bench.<name>.<unit>" entries, one per reported metric.
//
// Whether a delta is a regression depends on the metric's direction:
// wall times regress upward, speedups downward. DirectionOf infers the
// direction from the path's tokens (ns/us/op → lower is better;
// speedup/ratio → higher is better); unknown metrics are neutral and
// reported but never flagged.
package benchdiff

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// Direction says which way a metric improves.
type Direction int

const (
	// Neutral metrics (metadata like "pr") are compared but never
	// flagged as regressions.
	Neutral Direction = 0
	// LowerIsBetter: wall times, byte counts, miss counts.
	LowerIsBetter Direction = -1
	// HigherIsBetter: speedups, ratios, hit counts, throughput.
	HigherIsBetter Direction = 1
)

// lowerTokens and higherTokens classify a metric path by the tokens of
// its last segments. Lower wins ties (a "speedup_ns" metric would be
// nonsense anyway).
var (
	lowerTokens = map[string]bool{
		"ns": true, "us": true, "ms": true, "op": true, "time": true,
		"bytes": true, "b": true, "allocs": true, "misses": true,
		"depth": true, "rounds": true, "spills": true,
		"overhead": true, "escalated": true,
	}
	higherTokens = map[string]bool{
		"speedup": true, "speedups": true, "ratio": true, "rate": true,
		"hits": true, "throughput": true, "ops": true,
	}
)

// DirectionOf infers how the metric at path improves from its name
// tokens (split on the path and word separators).
func DirectionOf(path string) Direction {
	tokens := strings.FieldsFunc(strings.ToLower(path), func(r rune) bool {
		switch r {
		case '.', '/', '_', '-', '+':
			return true
		}
		return false
	})
	dir := Neutral
	for _, tok := range tokens {
		if lowerTokens[tok] {
			return LowerIsBetter
		}
		if higherTokens[tok] {
			dir = HigherIsBetter
		}
	}
	return dir
}

// Flatten extracts every numeric leaf of a decoded JSON document into
// path → value. Object keys join with "."; arrays whose elements are
// all numbers collapse to their mean (the repo's N-runs convention),
// other arrays index as path.0, path.1, …; strings and booleans are
// dropped.
func Flatten(doc any) map[string]float64 {
	out := make(map[string]float64)
	flattenInto(out, "", doc)
	return out
}

func flattenInto(out map[string]float64, prefix string, v any) {
	join := func(k string) string {
		if prefix == "" {
			return k
		}
		return prefix + "." + k
	}
	switch x := v.(type) {
	case float64:
		out[prefix] = x
	case json.Number:
		if f, err := x.Float64(); err == nil {
			out[prefix] = f
		}
	case map[string]any:
		for k, e := range x {
			flattenInto(out, join(k), e)
		}
	case []any:
		if mean, ok := numericMean(x); ok {
			out[prefix] = mean
			return
		}
		for i, e := range x {
			flattenInto(out, join(fmt.Sprint(i)), e)
		}
	}
}

// numericMean returns the mean of a when every element is a number.
func numericMean(a []any) (float64, bool) {
	if len(a) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, e := range a {
		f, ok := e.(float64)
		if !ok {
			return 0, false
		}
		sum += f
	}
	return sum / float64(len(a)), true
}

// Delta is one metric's baseline-to-current comparison.
type Delta struct {
	Path      string
	Direction Direction
	Base, Cur float64
	// Pct is the relative change (Cur-Base)/|Base|; +Inf when the
	// baseline is zero and the current value is not.
	Pct float64
	// Regression marks a change against the metric's direction beyond
	// the report's threshold.
	Regression bool
}

// Report is the outcome of one Compare call.
type Report struct {
	// Threshold is the relative noise band: |Pct| <= Threshold is
	// never a regression.
	Threshold float64
	// Deltas holds every metric present in both sets, sorted by path.
	Deltas []Delta
	// BaseOnly and CurOnly list metrics present in exactly one set —
	// surfaced so a renamed benchmark cannot silently drop coverage.
	BaseOnly, CurOnly []string
}

// Compare diffs current against base with the given relative noise
// threshold (0.10 = 10%). Only metrics present in both maps produce
// deltas; the one-sided remainders are recorded on the report.
func Compare(base, cur map[string]float64, threshold float64) *Report {
	rep := &Report{Threshold: threshold}
	for path, bv := range base {
		cv, ok := cur[path]
		if !ok {
			rep.BaseOnly = append(rep.BaseOnly, path)
			continue
		}
		d := Delta{Path: path, Direction: DirectionOf(path), Base: bv, Cur: cv}
		switch {
		case bv != 0:
			d.Pct = (cv - bv) / math.Abs(bv)
		case cv != 0:
			d.Pct = math.Inf(1)
		}
		worse := float64(d.Direction) * d.Pct
		d.Regression = d.Direction != Neutral && worse < 0 && math.Abs(d.Pct) > threshold
		rep.Deltas = append(rep.Deltas, d)
	}
	for path := range cur {
		if _, ok := base[path]; !ok {
			rep.CurOnly = append(rep.CurOnly, path)
		}
	}
	sort.Slice(rep.Deltas, func(i, j int) bool { return rep.Deltas[i].Path < rep.Deltas[j].Path })
	sort.Strings(rep.BaseOnly)
	sort.Strings(rep.CurOnly)
	return rep
}

// Regressions returns the flagged deltas.
func (r *Report) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// ExitCode is the process exit status cmd/benchdiff reports: 0 when no
// metric regressed, 1 otherwise.
func (r *Report) ExitCode() int {
	if len(r.Regressions()) > 0 {
		return 1
	}
	return 0
}

// WriteText renders the report as an aligned table, regressions marked
// with "REGRESSION", followed by the one-sided metric lists.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-60s %14s %14s %9s\n", "metric", "base", "current", "delta"); err != nil {
		return err
	}
	for _, d := range r.Deltas {
		mark := ""
		if d.Regression {
			mark = "  REGRESSION"
		}
		arrow := ""
		switch d.Direction {
		case LowerIsBetter:
			arrow = " (lower=better)"
		case HigherIsBetter:
			arrow = " (higher=better)"
		}
		if _, err := fmt.Fprintf(w, "%-60s %14.4g %14.4g %+8.1f%%%s%s\n",
			d.Path, d.Base, d.Cur, 100*d.Pct, arrow, mark); err != nil {
			return err
		}
	}
	for _, p := range r.BaseOnly {
		if _, err := fmt.Fprintf(w, "baseline-only: %s\n", p); err != nil {
			return err
		}
	}
	// A current-only metric means the run measured something the
	// baseline cannot gate — typically a benchmark added without
	// refreshing the baseline. Warn loudly so it gets a baseline entry
	// instead of passing silently forever.
	for _, p := range r.CurOnly {
		if _, err := fmt.Fprintf(w, "WARNING: current-only (ungated, add to baseline): %s\n", p); err != nil {
			return err
		}
	}
	n := len(r.Regressions())
	_, err := fmt.Fprintf(w, "%d metrics compared, %d regressions, %d ungated current-only (threshold %.0f%%)\n",
		len(r.Deltas), n, len(r.CurOnly), 100*r.Threshold)
	return err
}

// LoadFlat reads a JSON file and flattens it.
func LoadFlat(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return Flatten(doc), nil
}

// DiffFiles flattens and compares two JSON measurement files.
func DiffFiles(basePath, curPath string, threshold float64) (*Report, error) {
	base, err := LoadFlat(basePath)
	if err != nil {
		return nil, err
	}
	cur, err := LoadFlat(curPath)
	if err != nil {
		return nil, err
	}
	return Compare(base, cur, threshold), nil
}
