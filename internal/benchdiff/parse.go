package benchdiff

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// ParseBenchOutput reads `go test -bench` output and returns one entry
// per reported metric, keyed "bench.<name>.<unit>" with the -cpu
// suffix stripped from the name:
//
//	BenchmarkSpillRound/fpppp_twoel/update-8   2000   612803 ns/op   295.1 round1+_us/op
//
// becomes bench.SpillRound/fpppp_twoel/update.ns/op = 612803 and
// bench.SpillRound/fpppp_twoel/update.round1+_us/op = 295.1. A
// benchmark that ran more than once keeps the mean of its runs.
func ParseBenchOutput(r io.Reader) (map[string]float64, error) {
	sums := make(map[string]float64)
	counts := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// fields[1] is the iteration count; value/unit pairs follow.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			key := "bench." + name + "." + fields[i+1]
			sums[key] += v
			counts[key]++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(sums))
	for k, sum := range sums {
		out[k] = sum / float64(counts[k])
	}
	return out, nil
}

// CanonicalizeSpillRound re-keys parsed BenchmarkSpillRound metrics to
// the paths the checked-in BENCH_5.json baseline uses, so a fresh
// short-form run can be compared against it:
//
//	bench.SpillRound/fpppp_twoel/update.round1+_us/op
//	  → spill_round.round1_plus_us_per_op.fpppp/twoel.update
//
// (the sub-benchmark name joins program and function with "_" because
// "/" would open another sub-benchmark level; the baseline spells it
// "fpppp/twoel"). Entries that are not SpillRound round1+ metrics pass
// through unchanged.
func CanonicalizeSpillRound(metrics map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(metrics))
	for key, v := range metrics {
		rest, ok := strings.CutPrefix(key, "bench.SpillRound/")
		if !ok || !strings.HasSuffix(rest, ".round1+_us/op") {
			out[key] = v
			continue
		}
		rest = strings.TrimSuffix(rest, ".round1+_us/op")
		progFn, mode, ok := strings.Cut(rest, "/")
		if !ok {
			out[key] = v
			continue
		}
		progFn = strings.Replace(progFn, "_", "/", 1)
		out["spill_round.round1_plus_us_per_op."+progFn+"."+mode] = v
	}
	return out
}

// Canonicalize re-keys every parsed benchmark metric that has a
// checked-in baseline section to that section's paths, so one fresh
// run can gate against all of them at once. It applies the SpillRound
// rule (see CanonicalizeSpillRound) plus:
//
//	bench.SpillRound/<prog>_<fn>/<mode>.ns/op
//	  → spill_round.ns_per_op.<prog>/<fn>.<mode>
//	bench.AllocateProgram/<mode>.ns/op
//	  → allocate_program.ns_per_op.<mode>
//	bench.AllocateStrategy/<prog>/<strat>.ns/op
//	  → allocate_strategy.ns_per_op.<prog>.<strat>
//	bench.AllocateStrategy/<prog>/<strat>.overhead
//	  → pareto.overhead.<prog>.<strat>
//	bench.AllocateStrategy/<prog>/<strat>.escalated
//	  → pareto.escalated.<prog>.<strat>
//	bench.ServerAllocate/<prog>/<mode>.ns/op
//	  → server_allocate.ns_per_op.<prog>.<mode>
//	bench.BatchAllocate/<prog>/<mode>.ns/op
//	  → batch.ns_per_op.<prog>.<mode>
//	bench.BatchAllocate/<prog>/dag.sched_speedup_x4
//	  → batch.sched_speedup_x4.<prog>
//	bench.BatchAllocate/<prog>/dag.ready_peak
//	  → batch.ready_peak.<prog>
//
// The pareto pair are the sweep's quality axes (analytic total
// overhead; hybrid escalation count), reported by the benchmark as
// custom units so the quality side of the frontier is gated, not just
// the wall time; ServerAllocate is the rallocd request cost through
// the whole HTTP/pool/cache stack, cold and warm. Entries matching no
// rule pass through unchanged.
func Canonicalize(metrics map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(metrics))
	for key, v := range CanonicalizeSpillRound(metrics) {
		if rest, ok := strings.CutPrefix(key, "bench.SpillRound/"); ok {
			if rest, ok := strings.CutSuffix(rest, ".ns/op"); ok {
				if progFn, mode, ok := strings.Cut(rest, "/"); ok && !strings.Contains(mode, "/") {
					out["spill_round.ns_per_op."+strings.Replace(progFn, "_", "/", 1)+"."+mode] = v
					continue
				}
			}
		}
		if rest, ok := strings.CutPrefix(key, "bench.AllocateProgram/"); ok {
			if mode, ok := strings.CutSuffix(rest, ".ns/op"); ok && !strings.Contains(mode, "/") {
				out["allocate_program.ns_per_op."+mode] = v
				continue
			}
		}
		if rest, ok := strings.CutPrefix(key, "bench.AllocateStrategy/"); ok {
			if rest, ok := strings.CutSuffix(rest, ".ns/op"); ok {
				if prog, strat, ok := strings.Cut(rest, "/"); ok && !strings.Contains(strat, "/") {
					out["allocate_strategy.ns_per_op."+prog+"."+strat] = v
					continue
				}
			}
			if canonicalizeParetoUnit(out, rest, ".overhead", "pareto.overhead.", v) ||
				canonicalizeParetoUnit(out, rest, ".escalated", "pareto.escalated.", v) {
				continue
			}
		}
		if rest, ok := strings.CutPrefix(key, "bench.ServerAllocate/"); ok {
			if rest, ok := strings.CutSuffix(rest, ".ns/op"); ok {
				if prog, mode, ok := strings.Cut(rest, "/"); ok && !strings.Contains(mode, "/") {
					out["server_allocate.ns_per_op."+prog+"."+mode] = v
					continue
				}
			}
		}
		if rest, ok := strings.CutPrefix(key, "bench.BatchAllocate/"); ok {
			if rest, ok := strings.CutSuffix(rest, ".ns/op"); ok {
				if prog, mode, ok := strings.Cut(rest, "/"); ok && !strings.Contains(mode, "/") {
					out["batch.ns_per_op."+prog+"."+mode] = v
					continue
				}
			}
			if rest, ok := strings.CutSuffix(rest, ".sched_speedup_x4"); ok {
				if prog, mode, ok := strings.Cut(rest, "/"); ok && mode == "dag" {
					out["batch.sched_speedup_x4."+prog] = v
					continue
				}
			}
			if rest, ok := strings.CutSuffix(rest, ".ready_peak"); ok {
				if prog, mode, ok := strings.Cut(rest, "/"); ok && mode == "dag" {
					out["batch.ready_peak."+prog] = v
					continue
				}
			}
		}
		out[key] = v
	}
	return out
}

// canonicalizeParetoUnit re-keys one AllocateStrategy quality metric
// ("<prog>/<strat>.<unit>" with the prefix already cut) under the
// pareto section, reporting whether it matched.
func canonicalizeParetoUnit(out map[string]float64, rest, suffix, section string, v float64) bool {
	rest, ok := strings.CutSuffix(rest, suffix)
	if !ok {
		return false
	}
	prog, strat, ok := strings.Cut(rest, "/")
	if !ok || strings.Contains(strat, "/") {
		return false
	}
	out[section+prog+"."+strat] = v
	return true
}

// Restrict returns the entries of m whose path starts with any of the
// given prefixes. cmd/benchdiff uses it to compare a fresh bench run
// against only the baseline section that run re-measures.
func Restrict(m map[string]float64, prefixes ...string) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range m {
		for _, p := range prefixes {
			if strings.HasPrefix(k, p) {
				out[k] = v
				break
			}
		}
	}
	return out
}
