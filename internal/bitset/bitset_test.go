package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if s.Count() != 0 {
		t.Fatal("new set not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Add(i)
		if !s.Has(i) {
			t.Errorf("Has(%d) = false after Add", i)
		}
	}
	if s.Count() != 8 {
		t.Errorf("Count = %d, want 8", s.Count())
	}
	s.Remove(64)
	if s.Has(64) {
		t.Error("Has(64) after Remove")
	}
	s.Clear()
	if s.Count() != 0 {
		t.Error("Clear left elements")
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 130, 199}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("element %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

// refSet is the oracle implementation for the property tests.
type refSet map[int]bool

func buildBoth(elems []uint16, n int) (*Set, refSet) {
	s := New(n)
	r := refSet{}
	for _, e := range elems {
		i := int(e) % n
		s.Add(i)
		r[i] = true
	}
	return s, r
}

func TestQuickAddHasCount(t *testing.T) {
	f := func(elems []uint16) bool {
		const n = 300
		s, r := buildBoth(elems, n)
		if s.Count() != len(r) {
			return false
		}
		for i := 0; i < n; i++ {
			if s.Has(i) != r[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionDiff(t *testing.T) {
	f := func(a, b []uint16) bool {
		const n = 300
		sa, ra := buildBoth(a, n)
		sb, rb := buildBoth(b, n)

		union := sa.Clone()
		union.UnionWith(sb)
		diff := sa.Clone()
		diff.DiffWith(sb)
		for i := 0; i < n; i++ {
			if union.Has(i) != (ra[i] || rb[i]) {
				return false
			}
			if diff.Has(i) != (ra[i] && !rb[i]) {
				return false
			}
		}
		// UnionWith reports change correctly: a second identical union
		// must be a no-op.
		if union.UnionWith(sb) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCloneIndependence(t *testing.T) {
	f := func(a []uint16, extra uint16) bool {
		const n = 256
		s, _ := buildBoth(a, n)
		c := s.Clone()
		if !c.Equal(s) {
			return false
		}
		i := int(extra) % n
		c.Add(i)
		c.Remove((i + 1) % n)
		// s unchanged where c changed.
		return s.Has(i) == (func() bool { var r bool; s.ForEach(func(j int) { r = r || j == i }); return r })()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualAndCopy(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Add(5)
	a.Add(99)
	if a.Equal(b) {
		t.Error("different sets compare equal")
	}
	b.Copy(a)
	if !a.Equal(b) {
		t.Error("Copy did not make sets equal")
	}
	c := New(164)
	if a.Equal(c) {
		t.Error("different capacities compare equal")
	}
}

func BenchmarkUnionWith(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := New(4096)
	y := New(4096)
	for i := 0; i < 1000; i++ {
		x.Add(rng.Intn(4096))
		y.Add(rng.Intn(4096))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.UnionWith(y)
	}
}
