// Package bitset provides a dense bit set used by the dataflow and
// interference-graph code, where sets of virtual registers are unioned
// and intersected millions of times per compilation.
package bitset

import "math/bits"

// Set is a fixed-capacity bit set. The zero value is an empty set of
// capacity 0; use New to size it.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set able to hold values in [0, n).
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity of the set.
func (s *Set) Len() int { return s.n }

// Add inserts i.
func (s *Set) Add(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Remove deletes i.
func (s *Set) Remove(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Clear empties the set.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Copy replaces the contents of s with those of t (same capacity).
func (s *Set) Copy(t *Set) { copy(s.words, t.words) }

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CloneGrown returns an independent copy of s with capacity at least n.
// The incremental liveness update uses it to rebase a shared (frozen)
// set onto a function that has since gained registers.
func (s *Set) CloneGrown(n int) *Set {
	if n < s.n {
		n = s.n
	}
	c := &Set{words: make([]uint64, (n+63)/64), n: n}
	copy(c.words, s.words)
	return c
}

// Grow extends the capacity of s to hold values in [0, n), preserving
// its contents. Shrinking is a no-op.
func (s *Set) Grow(n int) {
	if n <= s.n {
		return
	}
	s.n = n
	need := (n + 63) / 64
	if need > len(s.words) {
		if need <= cap(s.words) {
			s.words = s.words[:need]
		} else {
			w := make([]uint64, need, need+need/2)
			copy(w, s.words)
			s.words = w
		}
	}
}

// Intersects reports whether s and t share any element. The sets may
// have different capacities.
func (s *Set) Intersects(t *Set) bool {
	w := s.words
	if len(t.words) < len(w) {
		w = w[:len(t.words)]
	}
	for i, x := range w {
		if x&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// UnionWith adds every element of t to s and reports whether s changed.
func (s *Set) UnionWith(t *Set) bool {
	changed := false
	for i, w := range t.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// DiffWith removes every element of t from s.
func (s *Set) DiffWith(t *Set) {
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// Count returns the number of elements.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEach calls f for every element in increasing order.
func (s *Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi<<6 + b)
			w &= w - 1
		}
	}
}

// Triangular is a bit matrix over unordered pairs {a, b} of values in
// [0, n), a ≠ b — the membership half of Chaitin's dual interference
// representation. Storage is the strict lower triangle, packed row by
// row: pair {a, b} with a > b lives at bit a*(a-1)/2 + b, so the whole
// matrix costs n*(n-1)/2 bits.
type Triangular struct {
	words []uint64
	n     int
}

// NewTriangular returns an empty pair matrix over [0, n).
func NewTriangular(n int) *Triangular {
	return &Triangular{words: make([]uint64, (pairIndex(n, 0)+63)/64), n: n}
}

// pairIndex maps the unordered pair {a, b}, a > b, to its bit index.
func pairIndex(a, b int) int { return a*(a-1)/2 + b }

func order(a, b int) (int, int) {
	if a < b {
		return b, a
	}
	return a, b
}

// Len returns the capacity of the matrix.
func (t *Triangular) Len() int { return t.n }

// Grow extends the matrix to cover values in [0, n). Existing pairs are
// preserved (the triangular layout appends rows; no re-indexing).
func (t *Triangular) Grow(n int) {
	if n <= t.n {
		return
	}
	t.n = n
	need := (pairIndex(n, 0) + 63) / 64
	if need > len(t.words) {
		if need <= cap(t.words) {
			t.words = t.words[:need]
		} else {
			w := make([]uint64, need, need+need/2)
			copy(w, t.words)
			t.words = w
		}
	}
}

// Set inserts the pair {a, b}. Setting a == b is a no-op.
func (t *Triangular) Set(a, b int) {
	if a == b {
		return
	}
	hi, lo := order(a, b)
	i := pairIndex(hi, lo)
	t.words[i>>6] |= 1 << (uint(i) & 63)
}

// Unset removes the pair {a, b}.
func (t *Triangular) Unset(a, b int) {
	if a == b {
		return
	}
	hi, lo := order(a, b)
	i := pairIndex(hi, lo)
	t.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Has reports whether the pair {a, b} is present. Has(a, a) is false.
func (t *Triangular) Has(a, b int) bool {
	if a == b {
		return false
	}
	hi, lo := order(a, b)
	i := pairIndex(hi, lo)
	return t.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Clone returns an independent copy of t.
func (t *Triangular) Clone() *Triangular {
	c := &Triangular{words: make([]uint64, len(t.words)), n: t.n}
	copy(c.words, t.words)
	return c
}

// Equal reports whether s and t contain the same elements.
func (s *Set) Equal(t *Set) bool {
	if len(s.words) != len(t.words) {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}
