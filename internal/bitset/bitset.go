// Package bitset provides a dense bit set used by the dataflow and
// interference-graph code, where sets of virtual registers are unioned
// and intersected millions of times per compilation.
package bitset

import "math/bits"

// Set is a fixed-capacity bit set. The zero value is an empty set of
// capacity 0; use New to size it.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set able to hold values in [0, n).
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity of the set.
func (s *Set) Len() int { return s.n }

// Add inserts i.
func (s *Set) Add(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Remove deletes i.
func (s *Set) Remove(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Clear empties the set.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Copy replaces the contents of s with those of t (same capacity).
func (s *Set) Copy(t *Set) { copy(s.words, t.words) }

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// UnionWith adds every element of t to s and reports whether s changed.
func (s *Set) UnionWith(t *Set) bool {
	changed := false
	for i, w := range t.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// DiffWith removes every element of t from s.
func (s *Set) DiffWith(t *Set) {
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// Count returns the number of elements.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEach calls f for every element in increasing order.
func (s *Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi<<6 + b)
			w &= w - 1
		}
	}
}

// Equal reports whether s and t contain the same elements.
func (s *Set) Equal(t *Set) bool {
	if len(s.words) != len(t.words) {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}
