// Package codegen emits MIPS-flavored assembly for register-allocated
// programs: the final stage a compiler built on this allocator would
// ship. The output makes every cost the allocator reasoned about
// visible in the text — spill loads/stores against frame slots,
// caller-save saves/restores bracketing calls, callee-save
// saves/restores in prologue/epilogue — so a reader can audit an
// allocation decision by looking at the assembly.
//
// Register naming follows the MIPS convention adapted to the
// parameterized register file:
//
//	$t0..$tN    caller-save integer registers (allocated)
//	$s0..$sN    callee-save integer registers (allocated)
//	$ft*/$fs*   the float bank, same split
//	$a0..$a5    integer argument registers, $f12.. float arguments
//	$v0 / $fv0  integer / float results
//	$at, $fat   assembler temporaries (address computation)
//
// A few pseudo-instructions keep the text readable (li.s, seq/sne/...,
// mov.s); a real MIPS assembler expands each to a short fixed sequence.
// The output is documentation-quality assembly: semantics are executed
// and verified by the machine-level interpreter (package minterp), not
// by assembling this text.
package codegen

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/rewrite"
)

// Program emits assembly for every function of prog under plans (as
// produced by one Allocation), preceded by a data section for the
// globals.
func Program(prog *ir.Program, plans map[string]*rewrite.FuncPlan, config machine.Config) string {
	var b strings.Builder
	b.WriteString("\t.data\n")
	for _, g := range prog.Globals {
		emitGlobal(&b, g)
	}
	b.WriteString("\n\t.text\n")
	names := make([]string, 0, len(plans))
	for name := range plans {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		Func(&b, plans[name], config)
		b.WriteString("\n")
	}
	return b.String()
}

func emitGlobal(b *strings.Builder, g *ir.Symbol) {
	if g.IsArray() {
		fmt.Fprintf(b, "%s:\t.space %d\t# %s[%d]\n", g.Name, g.Size*4, g.Class, g.Size)
		return
	}
	if g.Class == ir.ClassFloat {
		fmt.Fprintf(b, "%s:\t.float %g\n", g.Name, g.InitFloat)
		return
	}
	fmt.Fprintf(b, "%s:\t.word %d\n", g.Name, g.InitInt)
}

// RegName renders physical register pr of bank c under config.
func RegName(config machine.Config, c ir.Class, pr machine.PhysReg) string {
	if c == ir.ClassFloat {
		if config.IsCallerSave(c, pr) {
			return fmt.Sprintf("$ft%d", int(pr))
		}
		return fmt.Sprintf("$fs%d", int(pr)-config.Caller[c])
	}
	if config.IsCallerSave(c, pr) {
		return fmt.Sprintf("$t%d", int(pr))
	}
	return fmt.Sprintf("$s%d", int(pr)-config.Caller[c])
}

// frame lays out a function's stack frame: spill slots and local
// arrays, the callee-save area, and per-call caller-save areas (one
// shared area sized for the largest call).
type frame struct {
	size      int
	slotOff   map[*ir.Symbol]int
	calleeOff int // start of the callee-save area
	callerOff int // start of the caller-save area
	raOff     int
}

func layoutFrame(plan *rewrite.FuncPlan) *frame {
	f := &frame{slotOff: make(map[*ir.Symbol]int)}
	off := 0
	for _, l := range plan.Alloc.Fn.Locals {
		f.slotOff[l] = off
		n := l.Size
		if n == 0 {
			n = 1
		}
		off += n * 4
	}
	f.calleeOff = off
	off += 4 * (len(plan.CalleeUsed[ir.ClassInt]) + len(plan.CalleeUsed[ir.ClassFloat]))
	maxSave := 0
	for _, cs := range plan.CallSaves {
		if n := cs.Count(); n > maxSave {
			maxSave = n
		}
	}
	f.callerOff = off
	off += 4 * maxSave
	f.raOff = off
	off += 4
	// Align to 8.
	f.size = (off + 7) &^ 7
	return f
}

type emitter struct {
	b      *strings.Builder
	plan   *rewrite.FuncPlan
	config machine.Config
	fn     *ir.Func
	frame  *frame
}

// Func emits one function.
func Func(b *strings.Builder, plan *rewrite.FuncPlan, config machine.Config) {
	e := &emitter{
		b:      b,
		plan:   plan,
		config: config,
		fn:     plan.Alloc.Fn,
		frame:  layoutFrame(plan),
	}
	e.emit()
}

func (e *emitter) reg(r ir.Reg) string {
	return RegName(e.config, e.fn.RegClass(r), e.plan.Alloc.Colors[r])
}

func (e *emitter) ins(format string, args ...interface{}) {
	fmt.Fprintf(e.b, "\t%s\n", fmt.Sprintf(format, args...))
}

func (e *emitter) label(blockID int) string {
	return fmt.Sprintf(".L%s_%d", e.fn.Name, blockID)
}

func (e *emitter) emit() {
	fn := e.fn
	fmt.Fprintf(e.b, "\t.globl %s\n%s:\n", fn.Name, fn.Name)

	// Prologue: frame, return address, callee-save area, arguments.
	e.ins("addiu $sp, $sp, -%d", e.frame.size)
	e.ins("sw $ra, %d($sp)", e.frame.raOff)
	off := e.frame.calleeOff
	for _, pr := range e.plan.CalleeUsed[ir.ClassInt] {
		e.ins("sw %s, %d($sp)\t# callee-save", RegName(e.config, ir.ClassInt, pr), off)
		off += 4
	}
	for _, pr := range e.plan.CalleeUsed[ir.ClassFloat] {
		e.ins("s.s %s, %d($sp)\t# callee-save", RegName(e.config, ir.ClassFloat, pr), off)
		off += 4
	}
	ai, af := 0, 0
	for _, p := range fn.Params {
		if fn.RegClass(p) == ir.ClassFloat {
			if e.plan.Alloc.Colors[p] != machine.NoPhysReg {
				e.ins("mov.s %s, $f%d", e.reg(p), 12+af)
			}
			af++
		} else {
			if e.plan.Alloc.Colors[p] != machine.NoPhysReg {
				e.ins("move %s, $a%d", e.reg(p), ai)
			}
			ai++
		}
	}

	for _, blk := range fn.Blocks {
		fmt.Fprintf(e.b, "%s:\n", e.label(blk.ID))
		for i := range blk.Instrs {
			e.instr(blk, i, &blk.Instrs[i])
		}
	}
}

func (e *emitter) epilogue() {
	off := e.frame.calleeOff
	for _, pr := range e.plan.CalleeUsed[ir.ClassInt] {
		e.ins("lw %s, %d($sp)\t# callee-restore", RegName(e.config, ir.ClassInt, pr), off)
		off += 4
	}
	for _, pr := range e.plan.CalleeUsed[ir.ClassFloat] {
		e.ins("l.s %s, %d($sp)\t# callee-restore", RegName(e.config, ir.ClassFloat, pr), off)
		off += 4
	}
	e.ins("lw $ra, %d($sp)", e.frame.raOff)
	e.ins("addiu $sp, $sp, %d", e.frame.size)
	e.ins("jr $ra")
}

// address renders the memory operand of a load/store and emits index
// scaling when needed; it returns the operand text.
func (e *emitter) address(in *ir.Instr) string {
	sym := in.Sym
	if sym.Local {
		base := e.frame.slotOff[sym]
		if !sym.IsArray() {
			return fmt.Sprintf("%d($sp)", base)
		}
		e.ins("sll $at, %s, 2", e.reg(in.Args[0]))
		e.ins("addu $at, $at, $sp")
		return fmt.Sprintf("%d($at)", base)
	}
	if !sym.IsArray() {
		return sym.Name
	}
	e.ins("sll $at, %s, 2", e.reg(in.Args[0]))
	return fmt.Sprintf("%s($at)", sym.Name)
}

var intOps = map[ir.Op]string{
	ir.OpAdd: "addu", ir.OpSub: "subu", ir.OpMul: "mul",
	ir.OpDiv: "div", ir.OpRem: "rem",
}

var floatOps = map[ir.Op]string{
	ir.OpFAdd: "add.s", ir.OpFSub: "sub.s", ir.OpFMul: "mul.s", ir.OpFDiv: "div.s",
}

var condOps = map[ir.Cond]string{
	ir.CondEQ: "seq", ir.CondNE: "sne", ir.CondLT: "slt",
	ir.CondLE: "sle", ir.CondGT: "sgt", ir.CondGE: "sge",
}

func (e *emitter) instr(blk *ir.Block, idx int, in *ir.Instr) {
	switch in.Op {
	case ir.OpNop:
		e.ins("nop")
	case ir.OpConstInt:
		e.ins("li %s, %d", e.reg(in.Dst), in.IntVal)
	case ir.OpConstFloat:
		e.ins("li.s %s, %g", e.reg(in.Dst), in.FloatVal)
	case ir.OpMove:
		if e.reg(in.Dst) == e.reg(in.Args[0]) {
			return // coalesced away
		}
		if e.fn.RegClass(in.Dst) == ir.ClassFloat {
			e.ins("mov.s %s, %s", e.reg(in.Dst), e.reg(in.Args[0]))
		} else {
			e.ins("move %s, %s", e.reg(in.Dst), e.reg(in.Args[0]))
		}
	case ir.OpI2F:
		e.ins("mtc1 %s, %s", e.reg(in.Args[0]), e.reg(in.Dst))
		e.ins("cvt.s.w %s, %s", e.reg(in.Dst), e.reg(in.Dst))
	case ir.OpF2I:
		e.ins("trunc.w.s $fat, %s", e.reg(in.Args[0]))
		e.ins("mfc1 %s, $fat", e.reg(in.Dst))
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem:
		e.ins("%s %s, %s, %s", intOps[in.Op], e.reg(in.Dst), e.reg(in.Args[0]), e.reg(in.Args[1]))
	case ir.OpNeg:
		e.ins("negu %s, %s", e.reg(in.Dst), e.reg(in.Args[0]))
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		e.ins("%s %s, %s, %s", floatOps[in.Op], e.reg(in.Dst), e.reg(in.Args[0]), e.reg(in.Args[1]))
	case ir.OpFNeg:
		e.ins("neg.s %s, %s", e.reg(in.Dst), e.reg(in.Args[0]))
	case ir.OpICmp:
		e.ins("%s %s, %s, %s", condOps[in.Cond], e.reg(in.Dst), e.reg(in.Args[0]), e.reg(in.Args[1]))
	case ir.OpFCmp:
		e.ins("%s.s %s, %s, %s", condOps[in.Cond], e.reg(in.Dst), e.reg(in.Args[0]), e.reg(in.Args[1]))
	case ir.OpLoad:
		mem := e.address(in)
		if in.Sym.Class == ir.ClassFloat {
			e.ins("l.s %s, %s%s", e.reg(in.Dst), mem, spillComment(in))
		} else {
			e.ins("lw %s, %s%s", e.reg(in.Dst), mem, spillComment(in))
		}
	case ir.OpStore:
		mem := e.address(in)
		val := in.Args[len(in.Args)-1]
		if in.Sym.Class == ir.ClassFloat {
			e.ins("s.s %s, %s%s", e.reg(val), mem, spillComment(in))
		} else {
			e.ins("sw %s, %s%s", e.reg(val), mem, spillComment(in))
		}
	case ir.OpCall:
		e.call(blk, idx, in)
	case ir.OpRet:
		if len(in.Args) == 1 {
			if e.fn.ResultClass == ir.ClassFloat {
				e.ins("mov.s $fv0, %s", e.reg(in.Args[0]))
			} else {
				e.ins("move $v0, %s", e.reg(in.Args[0]))
			}
		}
		e.epilogue()
	case ir.OpBr:
		e.ins("bnez %s, %s", e.reg(in.Args[0]), e.label(in.Then))
		e.ins("j %s", e.label(in.Else))
	case ir.OpJmp:
		e.ins("j %s", e.label(in.Then))
	}
}

func spillComment(in *ir.Instr) string {
	if in.Sym.Spill {
		return "\t# spill"
	}
	return ""
}

func (e *emitter) call(blk *ir.Block, idx int, in *ir.Instr) {
	cs := e.plan.CallSaves[[2]int{blk.ID, idx}]
	// Caller-save saves.
	off := e.frame.callerOff
	if cs != nil {
		for _, pr := range cs.Regs[ir.ClassInt] {
			e.ins("sw %s, %d($sp)\t# caller-save", RegName(e.config, ir.ClassInt, pr), off)
			off += 4
		}
		for _, pr := range cs.Regs[ir.ClassFloat] {
			e.ins("s.s %s, %d($sp)\t# caller-save", RegName(e.config, ir.ClassFloat, pr), off)
			off += 4
		}
	}
	// Arguments.
	ai, af := 0, 0
	for _, a := range in.Args {
		if e.fn.RegClass(a) == ir.ClassFloat {
			e.ins("mov.s $f%d, %s", 12+af, e.reg(a))
			af++
		} else {
			e.ins("move $a%d, %s", ai, e.reg(a))
			ai++
		}
	}
	e.ins("jal %s", in.Callee)
	// Caller-save restores.
	if cs != nil {
		off = e.frame.callerOff
		for _, pr := range cs.Regs[ir.ClassInt] {
			e.ins("lw %s, %d($sp)\t# caller-restore", RegName(e.config, ir.ClassInt, pr), off)
			off += 4
		}
		for _, pr := range cs.Regs[ir.ClassFloat] {
			e.ins("l.s %s, %d($sp)\t# caller-restore", RegName(e.config, ir.ClassFloat, pr), off)
			off += 4
		}
	}
	if in.HasDst() {
		if e.fn.RegClass(in.Dst) == ir.ClassFloat {
			e.ins("mov.s %s, $fv0", e.reg(in.Dst))
		} else {
			e.ins("move %s, $v0", e.reg(in.Dst))
		}
	}
}
