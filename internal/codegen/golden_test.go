package codegen_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/codegen"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGolden pins the full assembly of a small program under a fixed
// strategy and configuration. The pipeline is deterministic, so any
// diff is a real change in allocation or emission behavior; run with
// -update to accept an intentional one.
func TestGolden(t *testing.T) {
	const src = `
int g = 5;
float fscale = 1.5;
int grid[4];

int helper(int v, float w) { return v * 2 + int(w); }

int main() {
	int i;
	int sum = 0;
	for (i = 0; i < 4; i = i + 1) {
		grid[i] = helper(i, fscale) + g;
		sum = sum + grid[i];
	}
	return sum;
}`
	prog, err := callcost.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	pf, _, err := prog.Profile()
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := prog.Allocate(callcost.ImprovedAll(), callcost.NewConfig(6, 4, 2, 2), pf)
	if err != nil {
		t.Fatal(err)
	}
	got := codegen.Program(prog.IR, alloc.Plans, alloc.Config)

	golden := filepath.Join("testdata", "quickstart.s")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if string(want) != got {
		t.Errorf("assembly differs from golden file; run with -update if intentional\n--- got ---\n%s", got)
	}
}
