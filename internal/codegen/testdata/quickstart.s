	.data
g:	.word 5
fscale:	.float 1.5
grid:	.space 16	# int[4]

	.text
	.globl helper
helper:
	addiu $sp, $sp, -8
	sw $ra, 0($sp)
	move $t1, $a0
	mov.s $ft0, $f12
.Lhelper_0:
	li $t0, 2
	mul $t1, $t1, $t0
	trunc.w.s $fat, $ft0
	mfc1 $t0, $fat
	addu $t0, $t1, $t0
	move $v0, $t0
	lw $ra, 0($sp)
	addiu $sp, $sp, 8
	jr $ra

	.globl main
main:
	addiu $sp, $sp, -16
	sw $ra, 8($sp)
	sw $s0, 0($sp)	# callee-save
	sw $s1, 4($sp)	# callee-save
.Lmain_0:
	li $s1, 0
	li $s0, 0
	li $s1, 0
	j .Lmain_1
.Lmain_1:
	li $t0, 4
	slt $t0, $s1, $t0
	bnez $t0, .Lmain_2
	j .Lmain_4
.Lmain_2:
	l.s $ft0, fscale
	move $a0, $s1
	mov.s $f12, $ft0
	jal helper
	move $t1, $v0
	lw $t0, g
	addu $t0, $t1, $t0
	sll $at, $s1, 2
	sw $t0, grid($at)
	sll $at, $s1, 2
	lw $t0, grid($at)
	addu $s0, $s0, $t0
	j .Lmain_3
.Lmain_3:
	li $t0, 1
	addu $s1, $s1, $t0
	j .Lmain_1
.Lmain_4:
	move $v0, $s0
	lw $s0, 0($sp)	# callee-restore
	lw $s1, 4($sp)	# callee-restore
	lw $ra, 8($sp)
	addiu $sp, $sp, 16
	jr $ra

