package codegen_test

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/machine"
)

const src = `
int g = 7;
float scale = 0.5;
int table[8];

int helper(int v, float w) { return v + int(w); }

int work(int a, int b) {
	int keep = a * 3;
	int r = helper(b, scale);
	table[a % 8] = r;
	return keep + r;
}

int main() {
	int i; int s = 0;
	for (i = 0; i < 20; i = i + 1) { s = s + work(i, i + 1); }
	return s;
}`

func emit(t *testing.T, strat callcost.Strategy, cfg callcost.Config) string {
	t.Helper()
	prog, err := callcost.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	pf, _, err := prog.Profile()
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := prog.Allocate(strat, cfg, pf)
	if err != nil {
		t.Fatal(err)
	}
	return codegen.Program(prog.IR, alloc.Plans, cfg)
}

func TestStructure(t *testing.T) {
	asm := emit(t, callcost.Chaitin(), callcost.NewConfig(6, 4, 2, 2))
	for _, want := range []string{
		"\t.data", "\t.text",
		"g:\t.word 7", "scale:\t.float 0.5", "table:\t.space 32",
		"\t.globl main", "main:", "work:", "helper:",
		"jal work", "jal helper",
		"jr $ra",
	} {
		if !strings.Contains(asm, want) {
			t.Errorf("assembly lacks %q", want)
		}
	}
	// Every function has exactly one prologue frame adjustment and each
	// return restores it.
	if strings.Count(asm, ".globl") != 3 {
		t.Errorf("expected 3 globl directives")
	}
}

func TestPrologueEpilogueBalanced(t *testing.T) {
	asm := emit(t, callcost.Chaitin(), callcost.NewConfig(6, 4, 2, 2))
	down := strings.Count(asm, "addiu $sp, $sp, -")
	up := 0
	for _, line := range strings.Split(asm, "\n") {
		s := strings.TrimSpace(line)
		if strings.HasPrefix(s, "addiu $sp, $sp, ") && !strings.Contains(s, "-") {
			up++
		}
	}
	if down == 0 {
		t.Fatal("no frame allocation")
	}
	if up < down {
		t.Errorf("frames allocated %d times but released %d times", down, up)
	}
	if strings.Count(asm, "sw $ra") != strings.Count(asm, "lw $ra") {
		t.Error("return-address save/restore unbalanced")
	}
}

func TestCalleeSavesMatchPlan(t *testing.T) {
	cfg := callcost.NewConfig(6, 4, 4, 4)
	prog, err := callcost.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	pf, _, err := prog.Profile()
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := prog.Allocate(callcost.Chaitin(), cfg, pf)
	if err != nil {
		t.Fatal(err)
	}
	asm := codegen.Program(prog.IR, alloc.Plans, cfg)
	wantSaves := 0
	for _, plan := range alloc.Plans {
		wantSaves += len(plan.CalleeUsed[ir.ClassInt]) + len(plan.CalleeUsed[ir.ClassFloat])
	}
	if got := strings.Count(asm, "# callee-save"); got != wantSaves {
		t.Errorf("%d callee-save stores in assembly, plan requires %d", got, wantSaves)
	}
	// Restores appear once per save per return site; at least as many
	// as saves.
	if got := strings.Count(asm, "# callee-restore"); got < wantSaves {
		t.Errorf("%d callee restores < %d saves", got, wantSaves)
	}
}

func TestCallerSavesBracketCalls(t *testing.T) {
	cfg := callcost.NewConfig(6, 4, 0, 0) // no callee regs: crossing values use caller-save
	asm := emit(t, callcost.Chaitin(), cfg)
	saves := strings.Count(asm, "# caller-save")
	restores := strings.Count(asm, "# caller-restore")
	if saves == 0 {
		t.Fatal("expected caller saves at (6,4,0,0)")
	}
	if saves != restores {
		t.Errorf("caller saves %d != restores %d", saves, restores)
	}
}

func TestSpillAnnotations(t *testing.T) {
	// Force spilling with a high-pressure function.
	pressure := `
int f(int a, int b, int c) {
	int d = a + b; int e = b + c; int g2 = a + c;
	int h = d + e; int i = e + g2; int j = d + g2;
	return h + i + j + a + b + c + d + e + g2;
}
int main() { return f(1, 2, 3); }`
	prog, err := callcost.Compile(pressure)
	if err != nil {
		t.Fatal(err)
	}
	pf, _, err := prog.Profile()
	if err != nil {
		t.Fatal(err)
	}
	cfg := callcost.NewConfig(6, 4, 0, 0)
	alloc, err := prog.Allocate(callcost.Chaitin(), cfg, pf)
	if err != nil {
		t.Fatal(err)
	}
	asm := codegen.Program(prog.IR, alloc.Plans, cfg)
	if !strings.Contains(asm, "# spill") {
		t.Skip("no spill at this pressure; nothing to check")
	}
	if !strings.Contains(asm, "($sp)\t# spill") {
		t.Error("spill accesses should target frame slots")
	}
}

func TestRegNames(t *testing.T) {
	cfg := callcost.NewConfig(6, 4, 3, 2)
	cases := []struct {
		class ir.Class
		pr    machine.PhysReg
		want  string
	}{
		{ir.ClassInt, 0, "$t0"},
		{ir.ClassInt, 5, "$t5"},
		{ir.ClassInt, 6, "$s0"},
		{ir.ClassInt, 8, "$s2"},
		{ir.ClassFloat, 0, "$ft0"},
		{ir.ClassFloat, 4, "$fs0"},
		{ir.ClassFloat, 5, "$fs1"},
	}
	for _, tc := range cases {
		if got := codegen.RegName(cfg, tc.class, tc.pr); got != tc.want {
			t.Errorf("RegName(%v, %d) = %q, want %q", tc.class, tc.pr, got, tc.want)
		}
	}
}

func TestImprovedUsesFewerCalleeSaves(t *testing.T) {
	// The allocation difference must be visible in the emitted text:
	// the improved allocator's assembly contains fewer callee-save
	// stores on this cold-crossing workload.
	cold := `
int check(int v) { return v % 17; }
int hot(int x) {
	int a = x * 3; int b = x + 11;
	if (a > 1000000) {
		int e1 = a + b; int e2 = a - b;
		e1 = check(e1) + e2;
		e2 = check(e2) + e1;
		return e1 + e2;
	}
	return a + b;
}
int main() {
	int i; int s = 0;
	for (i = 0; i < 100; i = i + 1) { s = s + hot(i); }
	return s;
}`
	prog, err := callcost.Compile(cold)
	if err != nil {
		t.Fatal(err)
	}
	pf, _, err := prog.Profile()
	if err != nil {
		t.Fatal(err)
	}
	cfg := callcost.NewConfig(6, 4, 4, 4)
	base, err := prog.Allocate(callcost.Chaitin(), cfg, pf)
	if err != nil {
		t.Fatal(err)
	}
	impr, err := prog.Allocate(callcost.ImprovedAll(), cfg, pf)
	if err != nil {
		t.Fatal(err)
	}
	baseAsm := codegen.Program(prog.IR, base.Plans, cfg)
	imprAsm := codegen.Program(prog.IR, impr.Plans, cfg)
	b := strings.Count(baseAsm, "# callee-save")
	i := strings.Count(imprAsm, "# callee-save")
	if i >= b {
		t.Errorf("improved uses %d callee saves, base %d; expected fewer", i, b)
	}
}
