package interference

import (
	"repro/internal/bitset"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// Clone returns an independent copy of the graph (same nodes, edges,
// and union-find state).
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Fn:     g.Fn,
		Class:  g.Class,
		parent: append([]ir.Reg(nil), g.parent...),
		next:   append([]ir.Reg(nil), g.next...),
		adj:    make([][]ir.Reg, len(g.adj)),
		deg:    append([]int32(nil), g.deg...),
		matrix: g.matrix.Clone(),
		occurs: append([]bool(nil), g.occurs...),
		nodes:  append([]ir.Reg(nil), g.nodes...),
		listed: append([]bool(nil), g.listed...),
	}
	for i, l := range g.adj {
		if len(l) > 0 {
			c.adj[i] = append([]ir.Reg(nil), l...)
		}
	}
	return c
}

// grow extends the graph's tables to cover registers created after it
// was built.
func (g *Graph) grow(n int) {
	g.privatize()
	g.matrix.Grow(n)
	if g.mark != nil {
		for len(g.mark) < n {
			g.mark = append(g.mark, 0)
		}
	}
	for len(g.parent) < n {
		g.parent = append(g.parent, ir.Reg(len(g.parent)))
		g.next = append(g.next, ir.Reg(len(g.next)))
		g.adj = append(g.adj, nil)
		g.deg = append(g.deg, 0)
		g.occurs = append(g.occurs, false)
		g.listed = append(g.listed, false)
	}
}

// removeNode deletes a register's edges and marks it non-occurring.
// Edge bits are cleared so the adjacency entries pointing back at r go
// stale; the vectors themselves compact lazily on iteration.
func (g *Graph) removeNode(r ir.Reg) {
	g.privatize()
	for _, n := range g.adj[r] {
		if g.alive(r, n) {
			g.matrix.Unset(int(r), int(n))
			g.deg[n]--
		}
	}
	g.adj[r] = nil
	g.deg[r] = 0
	g.occurs[r] = false
}

// Reconstruct implements the framework's graph-reconstruction phase
// (the paper's compile-time optimization): after spill-code insertion
// replaced the spilled live ranges with short unspillable temporaries,
// the existing graph is patched instead of rebuilt from scratch.
//
// Spilling does not change the liveness of the surviving ranges, so the
// surviving subgraph is already correct; the update only
//
//   - removes the spilled registers (all their occurrences are gone),
//   - adds nodes for the new temporaries, and
//   - adds the temporaries' edges, found with one pass over the
//     rewritten body: at every definition, any edge involving a new
//     register is recorded (edges between two old registers already
//     exist).
//
// fn must be the rewritten function, live its fresh liveness, spilled
// the removed registers, and isNew must report registers created by the
// spill rewrite.
//
// prev is patched in place; pass a Snapshot when the original must
// survive — the first mutation privatizes the snapshot's storage and
// the snapshotted base stays intact.
func Reconstruct(prev *Graph, fn *ir.Func, live *liveness.Info, spilled map[ir.Reg]*ir.Symbol, isNew func(ir.Reg) bool) *Graph {
	g := prev
	g.Fn = fn
	g.grow(fn.NumRegs())
	for r := range spilled {
		if fn.RegClass(r) == g.Class {
			g.removeNode(r)
		}
	}

	mine := func(r ir.Reg) bool { return fn.RegClass(r) == g.Class }

	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.HasDst() && mine(in.Dst) && isNew(in.Dst) {
				g.setOccurs(in.Dst)
			}
			for _, a := range in.Args {
				if mine(a) && isNew(a) {
					g.setOccurs(a)
				}
			}
		}
	}

	for _, b := range fn.Blocks {
		live.WalkBlock(b, func(in *ir.Instr, after *bitset.Set) {
			if !in.HasDst() || !mine(in.Dst) {
				return
			}
			d := in.Dst
			var moveSrc ir.Reg = ir.NoReg
			if in.Op == ir.OpMove {
				moveSrc = in.Args[0]
			}
			dNew := isNew(d)
			after.ForEach(func(ri int) {
				r := ir.Reg(ri)
				if r == d || r == moveSrc || !mine(r) {
					return
				}
				// Old-old edges are already present.
				if !dNew && !isNew(r) {
					return
				}
				g.addEdge(g.Find(d), g.Find(r))
			})
		})
	}

	// Spilled parameters were replaced with fresh temporaries that are
	// defined simultaneously with the other parameters at entry. Like
	// Build, the clique covers every occurring parameter — the entry
	// receive writes dead-on-entry ones too. Old-old pairs carry over
	// from the previous graph.
	params := make([]ir.Reg, 0, len(fn.Params))
	for _, p := range fn.Params {
		if mine(p) && g.occurs[p] {
			params = append(params, p)
		}
	}
	for i, p := range params {
		for _, q := range params[i+1:] {
			if !isNew(p) && !isNew(q) {
				continue
			}
			g.addEdge(g.Find(p), g.Find(q))
		}
	}
	return g
}

// EdgesEqual reports whether two graphs have identical node sets and
// edges, resolving union-find representatives on both sides. It is the
// oracle check used to validate Reconstruct against a full rebuild.
func EdgesEqual(a, b *Graph) bool {
	na, nb := a.Nodes(), b.Nodes()
	// Node sets must agree up to representative choice: compare the
	// partition of occurring registers and the edge relation over
	// original registers.
	occA := make(map[ir.Reg]bool)
	for _, r := range na {
		occA[r] = true
	}
	occB := make(map[ir.Reg]bool)
	for _, r := range nb {
		occB[r] = true
	}
	max := len(a.parent)
	if len(b.parent) > max {
		max = len(b.parent)
	}
	inA := func(r ir.Reg) bool { return int(r) < len(a.parent) && occA[a.Find(r)] }
	inB := func(r ir.Reg) bool { return int(r) < len(b.parent) && occB[b.Find(r)] }
	for r := 0; r < max; r++ {
		if inA(ir.Reg(r)) != inB(ir.Reg(r)) {
			return false
		}
	}
	for r := 0; r < max; r++ {
		for s := r + 1; s < max; s++ {
			rr, ss := ir.Reg(r), ir.Reg(s)
			if !inA(rr) || !inA(ss) {
				continue
			}
			if a.Interfere(rr, ss) != b.Interfere(rr, ss) {
				return false
			}
		}
	}
	return true
}
