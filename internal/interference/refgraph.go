package interference

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// RefGraph is the retained reference implementation of the interference
// graph: per-node Go map adjacency, exactly the pre-bit-matrix design.
// It exists only as the executable specification for the differential
// tests — the production Graph must agree with it on edges, degrees,
// and coalescing decisions — and is not used by the allocator.
type RefGraph struct {
	Fn    *ir.Func
	Class ir.Class

	parent []ir.Reg
	adj    []map[ir.Reg]struct{}
	occurs []bool

	// TraceMerge observes each coalescing merge, like Graph.TraceMerge.
	TraceMerge func(kept, gone ir.Reg)
}

// BuildRef constructs the reference graph for the given bank.
func BuildRef(fn *ir.Func, live *liveness.Info, class ir.Class) *RefGraph {
	n := fn.NumRegs()
	g := &RefGraph{
		Fn:     fn,
		Class:  class,
		parent: make([]ir.Reg, n),
		adj:    make([]map[ir.Reg]struct{}, n),
		occurs: make([]bool, n),
	}
	for i := range g.parent {
		g.parent[i] = ir.Reg(i)
	}

	mine := func(r ir.Reg) bool { return fn.RegClass(r) == class }

	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.HasDst() && mine(in.Dst) {
				g.occurs[in.Dst] = true
			}
			for _, a := range in.Args {
				if mine(a) {
					g.occurs[a] = true
				}
			}
		}
	}

	for _, b := range fn.Blocks {
		live.WalkBlock(b, func(in *ir.Instr, after *bitset.Set) {
			if !in.HasDst() || !mine(in.Dst) {
				return
			}
			d := in.Dst
			var moveSrc ir.Reg = ir.NoReg
			if in.Op == ir.OpMove {
				moveSrc = in.Args[0]
			}
			after.ForEach(func(i int) {
				r := ir.Reg(i)
				if r == d || r == moveSrc || !mine(r) {
					return
				}
				g.addEdge(d, r)
			})
		})
	}

	// Every occurring parameter interferes with every other: the entry
	// receive writes all of their registers, dead-on-entry or not.
	params := make([]ir.Reg, 0, len(fn.Params))
	for _, p := range fn.Params {
		if mine(p) && g.occurs[p] {
			params = append(params, p)
		}
	}
	for i, p := range params {
		for _, q := range params[i+1:] {
			g.addEdge(p, q)
		}
	}
	return g
}

func (g *RefGraph) addEdge(a, b ir.Reg) {
	if a == b {
		return
	}
	if g.adj[a] == nil {
		g.adj[a] = make(map[ir.Reg]struct{})
	}
	if g.adj[b] == nil {
		g.adj[b] = make(map[ir.Reg]struct{})
	}
	g.adj[a][b] = struct{}{}
	g.adj[b][a] = struct{}{}
}

// Find returns the representative live range of r.
func (g *RefGraph) Find(r ir.Reg) ir.Reg {
	for g.parent[r] != r {
		g.parent[r] = g.parent[g.parent[r]]
		r = g.parent[r]
	}
	return r
}

// Interfere reports whether the live ranges of a and b conflict.
func (g *RefGraph) Interfere(a, b ir.Reg) bool {
	ra, rb := g.Find(a), g.Find(b)
	if ra == rb {
		return false
	}
	_, ok := g.adj[ra][rb]
	return ok
}

// Union merges the live range of b into that of a.
func (g *RefGraph) Union(a, b ir.Reg) ir.Reg {
	ra, rb := g.Find(a), g.Find(b)
	if ra == rb {
		return ra
	}
	if len(g.adj[rb]) > len(g.adj[ra]) {
		ra, rb = rb, ra
	}
	g.parent[rb] = ra
	if g.occurs[rb] {
		g.occurs[ra] = true
	}
	for n := range g.adj[rb] {
		delete(g.adj[n], rb)
		if n != ra {
			g.addEdge(ra, n)
		}
	}
	g.adj[rb] = nil
	return ra
}

// Degree returns the number of distinct neighboring live ranges.
func (g *RefGraph) Degree(r ir.Reg) int { return len(g.adj[g.Find(r)]) }

// Nodes returns the occurring representatives in increasing order.
func (g *RefGraph) Nodes() []ir.Reg {
	var out []ir.Reg
	for r := 0; r < len(g.parent); r++ {
		reg := ir.Reg(r)
		if g.Fn.RegClass(reg) != g.Class {
			continue
		}
		if g.Find(reg) != reg || !g.occurs[g.Find(reg)] {
			continue
		}
		out = append(out, reg)
	}
	return out
}

// Members returns the virtual registers represented by rep.
func (g *RefGraph) Members(rep ir.Reg) []ir.Reg {
	var out []ir.Reg
	for r := range g.parent {
		if g.Find(ir.Reg(r)) == rep {
			out = append(out, ir.Reg(r))
		}
	}
	return out
}

// Coalesce performs the same aggressive or Briggs-conservative
// coalescing as Graph.Coalesce, with the reference data structures.
func (g *RefGraph) Coalesce(conservative bool, k int) int {
	merged := 0
	for changed := true; changed; {
		changed = false
		for _, b := range g.Fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.OpMove || g.Fn.RegClass(in.Dst) != g.Class {
					continue
				}
				d, s := g.Find(in.Dst), g.Find(in.Args[0])
				if d == s || g.Interfere(d, s) {
					continue
				}
				if conservative && !g.briggsOK(d, s, k) {
					continue
				}
				kept := g.Union(d, s)
				if g.TraceMerge != nil {
					gone := d
					if kept == d {
						gone = s
					}
					g.TraceMerge(kept, gone)
				}
				merged++
				changed = true
			}
		}
	}
	return merged
}

func (g *RefGraph) briggsOK(a, b ir.Reg, k int) bool {
	seen := make(map[ir.Reg]struct{})
	high := 0
	count := func(r ir.Reg) {
		for n := range g.adj[r] {
			if _, dup := seen[n]; dup {
				continue
			}
			seen[n] = struct{}{}
			deg := len(g.adj[n])
			_, na := g.adj[a][n]
			_, nb := g.adj[b][n]
			if na && nb {
				deg--
			}
			if deg >= k {
				high++
			}
		}
	}
	count(a)
	count(b)
	return high < k
}

// SortedNeighbors returns the neighbors of the representative of r in
// increasing order.
func (g *RefGraph) SortedNeighbors(r ir.Reg) []ir.Reg {
	rep := g.Find(r)
	ns := make([]ir.Reg, 0, len(g.adj[rep]))
	for n := range g.adj[rep] {
		ns = append(ns, n)
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns
}
