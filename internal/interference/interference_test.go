package interference_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/compile"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/liveness"
)

func build(t *testing.T, src, fn string, class ir.Class) (*ir.Func, *interference.Graph) {
	t.Helper()
	prog, err := compile.Source(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f := prog.FuncByName[fn]
	g := cfg.New(f)
	live := liveness.Compute(f, g)
	return f, interference.Build(f, live, class)
}

func regByName(f *ir.Func, name string) ir.Reg {
	for r := 0; r < f.NumRegs(); r++ {
		if f.RegName(ir.Reg(r)) == name {
			return ir.Reg(r)
		}
	}
	return ir.NoReg
}

func TestSimultaneouslyLiveInterfere(t *testing.T) {
	f, g := build(t, `
int f(int n) {
	int a = n * 2;
	int b = n * 3;
	return a + b;
}`, "f", ir.ClassInt)
	a, b := regByName(f, "a"), regByName(f, "b")
	if !g.Interfere(a, b) {
		t.Error("a and b live together; must interfere")
	}
	if !g.Interfere(b, a) {
		t.Error("interference must be symmetric")
	}
}

func TestSequentialValuesDoNotInterfere(t *testing.T) {
	f, g := build(t, `
int f(int n) {
	int a = n * 2;
	int a2 = a + 1;
	int b = a2 * 3;
	int b2 = b + 1;
	return b2;
}`, "f", ir.ClassInt)
	a, b2 := regByName(f, "a"), regByName(f, "b2")
	if g.Interfere(a, b2) {
		t.Error("a dies before b2 is born; must not interfere")
	}
}

func TestParamsInterfere(t *testing.T) {
	f, g := build(t, `int f(int a, int b, int c) { return a + b + c; }`, "f", ir.ClassInt)
	a, b, c := regByName(f, "a"), regByName(f, "b"), regByName(f, "c")
	for _, pair := range [][2]ir.Reg{{a, b}, {a, c}, {b, c}} {
		if !g.Interfere(pair[0], pair[1]) {
			t.Errorf("params v%d and v%d must interfere", pair[0], pair[1])
		}
	}
}

// TestDeadParamInterferes: b's incoming value is overwritten before any
// read, but the entry receive still writes b's register, so b must
// interfere with the other parameters all the same — sharing a register
// with a would let the receive clobber a's live value.
func TestDeadParamInterferes(t *testing.T) {
	f, g := build(t, `int f(int a, int b) { b = a; return b * 10 + a; }`, "f", ir.ClassInt)
	a, b := regByName(f, "a"), regByName(f, "b")
	if !g.Interfere(a, b) {
		t.Error("dead-on-entry param b must interfere with live param a")
	}
}

func TestClassesAreSeparate(t *testing.T) {
	f, gInt := build(t, `
int f(int a) {
	float x = float(a) * 2.0;
	int b = a + 1;
	return b + int(x);
}`, "f", ir.ClassInt)
	x := regByName(f, "x")
	b := regByName(f, "b")
	// x is a float: it must not appear in the int graph's nodes.
	for _, n := range gInt.Nodes() {
		if n == x {
			t.Error("float register in int graph")
		}
	}
	if gInt.Degree(b) == 0 {
		t.Error("b should have int neighbors")
	}
}

func TestMoveDoesNotCreateEdge(t *testing.T) {
	// x = y; with both used afterwards: y and x hold the same value at
	// the move, so the move itself must not force an edge... but the
	// later redefinition of y WILL create one.
	f, g := build(t, `
int f(int y) {
	int x = y;
	return x + y;
}`, "f", ir.ClassInt)
	x, y := regByName(f, "x"), regByName(f, "y")
	if g.Interfere(x, y) {
		t.Error("x=y copy with no later conflicting def must not interfere")
	}
	// And coalescing should merge them.
	merged := g.Coalesce(false, 8)
	if merged == 0 {
		t.Error("expected the copy to coalesce")
	}
	if g.Find(x) != g.Find(y) {
		t.Error("x and y should share a representative after coalescing")
	}
}

func TestMoveWithLaterRedefinitionInterferes(t *testing.T) {
	f, g := build(t, `
int f(int y) {
	int x = y;
	y = y + 1;
	return x + y;
}`, "f", ir.ClassInt)
	x, y := regByName(f, "x"), regByName(f, "y")
	if !g.Interfere(x, y) {
		t.Error("y redefined while x live: must interfere")
	}
	if n := g.Coalesce(false, 8); n != 0 {
		t.Errorf("coalesced %d interfering moves", n)
	}
}

func TestUnionMergesAdjacency(t *testing.T) {
	f, g := build(t, `
int f(int n) {
	int a = n + 1;
	int b = n + 2;
	int c = n + 3;
	return a + b + c;
}`, "f", ir.ClassInt)
	a, b, c := regByName(f, "a"), regByName(f, "b"), regByName(f, "c")
	_ = c
	degA := g.Degree(a)
	degB := g.Degree(b)
	if degA == 0 || degB == 0 {
		t.Fatal("expected nonzero degrees")
	}
	rep := g.Union(a, b) // not semantically meaningful; tests bookkeeping
	if g.Find(a) != rep || g.Find(b) != rep {
		t.Error("find after union broken")
	}
	// The union's neighbors are the union of both adjacency sets minus
	// each other.
	if g.Degree(rep) < degA-1 {
		t.Errorf("merged degree %d suspiciously small", g.Degree(rep))
	}
	// Old edges now point at the representative.
	if !g.Interfere(rep, c) {
		t.Error("edge to c lost in union")
	}
}

func TestNodesDeterministicAndOccurring(t *testing.T) {
	f, g := build(t, `
int f(int used, int dead) {
	return used * 2;
}`, "f", ir.ClassInt)
	dead := regByName(f, "dead")
	nodes := g.Nodes()
	for _, n := range nodes {
		if n == dead {
			t.Error("dead param must not be a node")
		}
	}
	// Deterministic: same call twice.
	nodes2 := g.Nodes()
	if len(nodes) != len(nodes2) {
		t.Fatal("Nodes changed between calls")
	}
	for i := range nodes {
		if nodes[i] != nodes2[i] {
			t.Error("Nodes not deterministic")
		}
	}
}

func TestConservativeCoalescingIsMoreCautious(t *testing.T) {
	src := `
int f(int n) {
	int a = n;
	int b = a + 1;
	int c = b + n;
	int d = c + a;
	int e = d + b;
	return e + c + d;
}`
	_, g1 := build(t, src, "f", ir.ClassInt)
	aggressive := g1.Coalesce(false, 2)
	_, g2 := build(t, src, "f", ir.ClassInt)
	conservative := g2.Coalesce(true, 2)
	if conservative > aggressive {
		t.Errorf("conservative (%d) coalesced more than aggressive (%d)", conservative, aggressive)
	}
}

func TestNeighborsSortedMatchesDegree(t *testing.T) {
	f, g := build(t, `
int f(int a, int b, int c, int d) {
	return a + b + c + d;
}`, "f", ir.ClassInt)
	a := regByName(f, "a")
	ns := g.NeighborsSorted(a)
	if len(ns) != g.Degree(a) {
		t.Errorf("NeighborsSorted %d entries, Degree %d", len(ns), g.Degree(a))
	}
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Error("neighbors not sorted")
		}
	}
}
