package interference

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// Region is a set of blocks that fusion-style graph construction
// treats as a unit (paper Table 1: fusion-style coloring "identifies
// regions, constructs the interference graph for each region, and then
// fuses graphs together to get the interference graph of the
// function"). Regions here are the natural-loop nesting: innermost
// loops first, then their enclosing loops, then the remaining blocks.
type Region struct {
	Blocks []int
	// Depth is the loop depth of the region (0 = straight-line rest).
	Depth int
}

// Regions partitions fn's blocks by loop-nesting depth, deepest first —
// the order fusion processes them, so the hottest code's interference
// structure is in place before colder context is fused around it.
func Regions(g *cfg.Graph) []Region {
	byDepth := map[int][]int{}
	maxDepth := 0
	for b, d := range g.LoopDepth {
		byDepth[d] = append(byDepth[d], b)
		if d > maxDepth {
			maxDepth = d
		}
	}
	var out []Region
	for d := maxDepth; d >= 0; d-- {
		if blocks, ok := byDepth[d]; ok {
			sort.Ints(blocks)
			out = append(out, Region{Blocks: blocks, Depth: d})
		}
	}
	return out
}

// BuildFused constructs the function's interference graph
// region-by-region and fuses the partial graphs, reproducing the
// fusion-style graph-construction phase of the framework. Without
// live-range splitting (which the paper excludes), the fused result is
// identical to a monolithic Build — the test suite holds the two equal
// — so its value is construction locality, not allocation quality.
func BuildFused(fn *ir.Func, g *cfg.Graph, live *liveness.Info, class ir.Class) *Graph {
	fused := newGraph(fn, class, fn.NumRegs())
	for _, region := range Regions(g) {
		partial := buildRegion(fn, live, class, region.Blocks)
		fuse(fused, partial)
	}
	// Parameters are defined simultaneously at entry; the entry block
	// belongs to some region, but the parameter clique is a
	// whole-function property, added at the final fuse like Build does
	// — over every occurring parameter, dead-on-entry ones included,
	// because the receive sequence writes all of their registers.
	mine := func(r ir.Reg) bool { return fn.RegClass(r) == class }
	params := make([]ir.Reg, 0, len(fn.Params))
	for _, p := range fn.Params {
		if mine(p) && fused.occurs[p] {
			params = append(params, p)
		}
	}
	for i, p := range params {
		for _, q := range params[i+1:] {
			fused.addEdge(p, q)
		}
	}
	return fused
}

// buildRegion builds the partial graph contributed by one region's
// blocks: occurrences and definition-point edges within those blocks.
// Liveness is the function-global solution — a value live into the
// region from outside keeps its edges, which is exactly what makes the
// later fusion a plain union.
func buildRegion(fn *ir.Func, live *liveness.Info, class ir.Class, blocks []int) *Graph {
	p := newGraph(fn, class, fn.NumRegs())
	mine := func(r ir.Reg) bool { return fn.RegClass(r) == class }
	for _, id := range blocks {
		b := fn.Blocks[id]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.HasDst() && mine(in.Dst) {
				p.setOccurs(in.Dst)
			}
			for _, a := range in.Args {
				if mine(a) {
					p.setOccurs(a)
				}
			}
		}
		live.WalkBlock(b, func(in *ir.Instr, after *bitset.Set) {
			if !in.HasDst() || !mine(in.Dst) {
				return
			}
			d := in.Dst
			var moveSrc ir.Reg = ir.NoReg
			if in.Op == ir.OpMove {
				moveSrc = in.Args[0]
			}
			after.ForEach(func(ri int) {
				r := ir.Reg(ri)
				if r == d || r == moveSrc || !mine(r) {
					return
				}
				p.addEdge(d, r)
			})
		})
	}
	return p
}

// fuse merges the partial graph src into dst: node occurrences and
// edges are unioned.
func fuse(dst, src *Graph) {
	for _, r := range src.nodes {
		dst.setOccurs(r)
	}
	src.forEachEdge(func(a, b ir.Reg) { dst.addEdge(a, b) })
}
