package interference_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro"
	"repro/internal/cfg"
	"repro/internal/compile"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/randprog"
	"repro/internal/rewrite"
)

// graphsMatch asserts two bit-matrix graphs agree structurally: node
// set, degrees, sorted neighbor lists, and the pairwise relation.
func graphsMatch(t *testing.T, tag string, a, b *interference.Graph) {
	t.Helper()
	an, bn := a.Nodes(), b.Nodes()
	if !regsEqual(an, bn) {
		t.Fatalf("%s: nodes diverged\na: %v\nb: %v", tag, an, bn)
	}
	for _, r := range an {
		if ad, bd := a.Degree(r), b.Degree(r); ad != bd {
			t.Fatalf("%s: degree(%v) = %d vs %d", tag, r, ad, bd)
		}
		if as, bs := a.NeighborsSorted(r), b.NeighborsSorted(r); !regsEqual(as, bs) {
			t.Fatalf("%s: neighbors(%v) diverged\na: %v\nb: %v", tag, r, as, bs)
		}
	}
	for i, x := range an {
		for _, y := range an[i+1:] {
			if ai, bi := a.Interfere(x, y), b.Interfere(x, y); ai != bi {
				t.Fatalf("%s: Interfere(%v,%v) = %v vs %v", tag, x, y, ai, bi)
			}
		}
	}
}

// TestSnapshotCOWUnderCoalesce runs every coalescing mode on a Snapshot
// and on a Clone of the same base graph over generated programs: the
// merge sequences and resulting graphs must be identical, and the base
// must come out of all of it exactly equal to a fresh Build.
func TestSnapshotCOWUnderCoalesce(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		src := randprog.Generate(seed, randprog.DefaultOptions())
		prog, err := callcost.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, fn := range prog.IR.Funcs {
			live := liveness.Compute(fn, cfg.New(fn))
			for c := ir.Class(0); c < ir.NumClasses; c++ {
				tag := fmt.Sprintf("seed %d fn %s class %v", seed, fn.Name, c)
				base := interference.Build(fn, live, c)
				for _, mode := range []struct {
					name         string
					conservative bool
					k            int
				}{
					{"aggressive k=4", false, 4},
					{"briggs k=4", true, 4},
					{"briggs k=8", true, 8},
				} {
					cl := base.Clone()
					sn := base.Snapshot()
					if !sn.Shared() {
						t.Fatalf("%s: fresh snapshot not marked shared", tag)
					}
					var clMerges, snMerges [][2]ir.Reg
					cl.TraceMerge = func(kept, gone ir.Reg) { clMerges = append(clMerges, [2]ir.Reg{kept, gone}) }
					sn.TraceMerge = func(kept, gone ir.Reg) { snMerges = append(snMerges, [2]ir.Reg{kept, gone}) }
					cm := cl.Coalesce(mode.conservative, mode.k)
					sm := sn.Coalesce(mode.conservative, mode.k)
					if cm != sm {
						t.Fatalf("%s %s: clone merged %d, snapshot merged %d", tag, mode.name, cm, sm)
					}
					if !reflect.DeepEqual(clMerges, snMerges) {
						t.Fatalf("%s %s: merge sequences diverged\nclone:    %v\nsnapshot: %v",
							tag, mode.name, clMerges, snMerges)
					}
					if sm > 0 && sn.Shared() {
						t.Fatalf("%s %s: snapshot merged %d moves but never privatized", tag, mode.name, sm)
					}
					graphsMatch(t, tag+" "+mode.name, sn, cl)
				}
				// The base survived every mode untouched.
				fresh := interference.Build(fn, live, c)
				graphsMatch(t, tag+" base-after", base, fresh)
				if !interference.EdgesEqual(base, fresh) {
					t.Fatalf("%s: base edges changed under snapshot coalescing", tag)
				}
			}
		}
	}
}

// TestSnapshotReadsDoNotPrivatize pins the write-free shared read
// paths: reading a snapshot (nodes, degrees, neighbors, membership,
// interference) must return the base's answers without ever triggering
// a copy.
func TestSnapshotReadsDoNotPrivatize(t *testing.T) {
	prog, err := compile.Source(reconstructSrc)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.FuncByName["f"]
	live := liveness.Compute(fn, cfg.New(fn))
	base := interference.Build(fn, live, ir.ClassInt)
	base.Coalesce(false, 8) // give the union-find some structure
	sn := base.Snapshot()
	for _, r := range sn.Nodes() {
		if sn.Degree(r) != base.Degree(r) {
			t.Fatalf("degree(%v) differs from base", r)
		}
		if !regsEqual(sn.NeighborsSorted(r), base.NeighborsSorted(r)) {
			t.Fatalf("neighbors(%v) differ from base", r)
		}
		if !regsEqual(sn.Members(r), base.Members(r)) {
			t.Fatalf("members(%v) differ from base", r)
		}
	}
	if !interference.EdgesEqual(sn, base) {
		t.Fatal("snapshot edge relation differs from base")
	}
	if !sn.Shared() {
		t.Fatal("pure reads privatized the snapshot")
	}
}

// TestReconstructOnSharedSnapshot patches a Snapshot through the real
// spill rewriter and checks the result against a fresh Build — while
// the snapshotted base keeps answering for the original function.
func TestReconstructOnSharedSnapshot(t *testing.T) {
	prog, err := compile.Source(reconstructSrc)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.FuncByName["f"].Clone()
	live := liveness.Compute(f, cfg.New(f))
	base := interference.Build(f, live, ir.ClassInt)
	baseOracle := interference.Build(f, live, ir.ClassInt)

	spill := make(map[ir.Reg]*ir.Symbol)
	for r := 0; r < f.NumRegs(); r++ {
		if f.RegName(ir.Reg(r)) == "keep" {
			spill[ir.Reg(r)] = &ir.Symbol{Name: "spill.keep", Class: ir.ClassInt, Local: true, Spill: true}
		}
	}
	if len(spill) != 1 {
		t.Fatal("fixture register not found")
	}
	rewritten := f.Clone()
	temps := make(map[ir.Reg]bool)
	rewrite.InsertSpills(rewritten, spill, func(r ir.Reg) { temps[r] = true })
	live2 := liveness.Compute(rewritten, cfg.New(rewritten))

	sn := base.Snapshot()
	patched := interference.Reconstruct(sn, rewritten, live2, spill, func(r ir.Reg) bool { return temps[r] })
	if patched.Shared() {
		t.Fatal("Reconstruct left the snapshot unprivatized")
	}
	rebuilt := interference.Build(rewritten, live2, ir.ClassInt)
	if !interference.EdgesEqual(patched, rebuilt) {
		t.Error("reconstructed snapshot differs from a fresh build")
	}
	graphsMatch(t, "base after snapshot-reconstruct", base, baseOracle)
}

// TestSnapshotConcurrentReaders hammers one frozen base from many
// goroutines, each through its own snapshot — reads plus a private
// coalesce — and relies on -race to prove the shared storage is never
// written.
func TestSnapshotConcurrentReaders(t *testing.T) {
	src := randprog.Generate(3, randprog.DefaultOptions())
	prog, err := callcost.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.IR.Funcs[0]
	live := liveness.Compute(fn, cfg.New(fn))
	base := interference.Build(fn, live, ir.ClassInt)
	want := base.Snapshot().NeighborsSorted(func() ir.Reg {
		nodes := base.Nodes()
		if len(nodes) == 0 {
			t.Skip("no int nodes in generated function")
		}
		return nodes[0]
	}())

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sn := base.Snapshot()
			for _, r := range sn.Nodes() {
				sn.Degree(r)
				sn.Neighbors(r, func(ir.Reg) {})
				sn.Members(r)
			}
			sn.Coalesce(false, 4) // privatizes only this goroutine's view
			_ = sn.Nodes()
		}()
	}
	wg.Wait()
	got := base.Snapshot().NeighborsSorted(base.Nodes()[0])
	if !regsEqual(got, want) {
		t.Error("concurrent snapshot use changed the base graph")
	}
}
