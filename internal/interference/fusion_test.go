package interference_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/compile"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/randprog"
)

// TestFusedEqualsMonolithic is the oracle for fusion-style graph
// construction: without live-range splitting, fusing per-region graphs
// must yield exactly the monolithic interference graph (the paper's
// Table 1 models fusion as differing only in the construction phase).
func TestFusedEqualsMonolithic(t *testing.T) {
	sources := []string{
		`
int f(int n) {
	int acc = 0;
	int i = 0;
	while (i < n) {
		int j = 0;
		while (j < n) { acc = acc + i * j; j = j + 1; }
		i = i + 1;
	}
	return acc;
}
int main() { return f(5); }`,
		`
int g(int v) { return v + 1; }
int f(int a, int b) {
	int keep = a * 3;
	int r = g(b);
	if (r > 5) { r = r + keep; } else { r = r - keep; }
	return r + a;
}
int main() { return f(2, 3); }`,
	}
	for _, src := range sources {
		prog, err := compile.Source(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, fn := range prog.Funcs {
			g := cfg.New(fn)
			live := liveness.Compute(fn, g)
			for c := ir.Class(0); c < ir.NumClasses; c++ {
				mono := interference.Build(fn, live, c)
				fused := interference.BuildFused(fn, g, live, c)
				if !interference.EdgesEqual(mono, fused) {
					t.Errorf("%s/%v: fused graph differs from monolithic build", fn.Name, c)
				}
			}
		}
	}
}

// TestFusedEqualsMonolithicRandom extends the oracle over generated
// programs.
func TestFusedEqualsMonolithicRandom(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		src := randprog.Generate(seed, randprog.DefaultOptions())
		prog, err := compile.Source(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, fn := range prog.Funcs {
			g := cfg.New(fn)
			live := liveness.Compute(fn, g)
			for c := ir.Class(0); c < ir.NumClasses; c++ {
				mono := interference.Build(fn, live, c)
				fused := interference.BuildFused(fn, g, live, c)
				if !interference.EdgesEqual(mono, fused) {
					t.Fatalf("seed %d %s/%v: fused differs from monolithic\n%s", seed, fn.Name, c, src)
				}
			}
		}
	}
}

// TestRegionsPartitionBlocks: every block appears in exactly one
// region, deepest regions first.
func TestRegionsPartitionBlocks(t *testing.T) {
	prog, err := compile.Source(`
int main() {
	int i; int j; int s = 0;
	for (i = 0; i < 4; i = i + 1) {
		for (j = 0; j < 4; j = j + 1) { s = s + 1; }
	}
	while (s > 0) { s = s - 3; }
	return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.FuncByName["main"]
	g := cfg.New(fn)
	regions := interference.Regions(g)
	seen := map[int]bool{}
	prevDepth := 1 << 30
	for _, r := range regions {
		if r.Depth > prevDepth {
			t.Error("regions not ordered deepest-first")
		}
		prevDepth = r.Depth
		for _, b := range r.Blocks {
			if seen[b] {
				t.Errorf("block %d in two regions", b)
			}
			seen[b] = true
			if g.LoopDepth[b] != r.Depth {
				t.Errorf("block %d depth %d in region of depth %d", b, g.LoopDepth[b], r.Depth)
			}
		}
	}
	if len(seen) != len(fn.Blocks) {
		t.Errorf("regions cover %d of %d blocks", len(seen), len(fn.Blocks))
	}
	if regions[0].Depth != 2 {
		t.Errorf("deepest region depth %d, want 2", regions[0].Depth)
	}
}
