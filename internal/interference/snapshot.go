package interference

import (
	"repro/internal/ir"
	"repro/internal/telemetry"
)

// Snapshot returns a copy-on-write view of g. The view shares every
// storage slice and the bit matrix with the snapshotted base until the
// first mutation (Coalesce, Union, Reconstruct, removeNode, grow),
// which privatizes the storage; until then the view costs one struct
// copy. While shared, every read path is write-free — Find skips path
// halving and Neighbors skips stale-entry compaction — so any number of
// snapshots of the same frozen base may be read concurrently.
//
// Snapshotting a snapshot shares the original base, never a chain.
func (g *Graph) Snapshot() *Graph {
	if b := telemetry.B(); b != nil {
		b.Snapshots.Inc()
	}
	base := g
	if base.cow != nil {
		base = base.cow
	}
	s := new(Graph)
	*s = *g
	s.cow = base
	s.mark = nil // briggsOK scratch must never be shared
	s.epoch = 0
	s.TraceMerge = nil
	return s
}

// Shared reports whether g is an unprivatized snapshot still aliasing
// its base's storage.
func (g *Graph) Shared() bool { return g.cow != nil }

// privatize materializes a private copy of the snapshotted storage.
// Every mutator calls it first; adjacency inner slices are deep-copied
// too, because an append into shared spare capacity would be visible to
// every other snapshot of the same base.
func (g *Graph) privatize() {
	if g.cow == nil {
		return
	}
	if b := telemetry.B(); b != nil {
		b.SnapshotPrivatized.Inc()
	}
	g.cow = nil
	g.parent = append([]ir.Reg(nil), g.parent...)
	g.next = append([]ir.Reg(nil), g.next...)
	adj := make([][]ir.Reg, len(g.adj))
	for i, l := range g.adj {
		if len(l) > 0 {
			adj[i] = append([]ir.Reg(nil), l...)
		}
	}
	g.adj = adj
	g.deg = append([]int32(nil), g.deg...)
	g.matrix = g.matrix.Clone()
	g.occurs = append([]bool(nil), g.occurs...)
	g.nodes = append([]ir.Reg(nil), g.nodes...)
	g.listed = append([]bool(nil), g.listed...)
	g.mark = nil
}

// Compress fully flattens the union-find, so snapshots of a frozen
// graph resolve Find in one hop without needing path-halving writes.
// Called on a graph about to be frozen and shared; a no-op on an
// unprivatized snapshot (its base's parent array is already whatever
// the base froze at).
func (g *Graph) Compress() {
	if g.cow != nil {
		return
	}
	for r := range g.parent {
		root := ir.Reg(r)
		for g.parent[root] != root {
			root = g.parent[root]
		}
		g.parent[r] = root
	}
}
