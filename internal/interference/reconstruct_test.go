package interference_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/compile"
	"repro/internal/freq"
	"repro/internal/interference"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/machine"
	"repro/internal/regalloc"
	"repro/internal/rewrite"
)

// spillSomething compiles src, builds the graph of fn, spills the given
// named registers via the real spill rewriter, and returns everything
// needed to compare Reconstruct against a fresh Build.
func reconstructCase(t *testing.T, src, fn string, spillNames []string) (old *interference.Graph, rebuilt *interference.Graph, patched *interference.Graph) {
	t.Helper()
	prog, err := compile.Source(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f := prog.FuncByName[fn].Clone()
	g := cfg.New(f)
	live := liveness.Compute(f, g)
	old = interference.Build(f, live, ir.ClassInt)

	spill := make(map[ir.Reg]*ir.Symbol)
	for _, name := range spillNames {
		for r := 0; r < f.NumRegs(); r++ {
			if f.RegName(ir.Reg(r)) == name {
				spill[ir.Reg(r)] = &ir.Symbol{
					Name: "spill." + name, Class: f.RegClass(ir.Reg(r)), Local: true, Spill: true,
				}
			}
		}
	}
	if len(spill) != len(spillNames) {
		t.Fatalf("found %d of %d registers", len(spill), len(spillNames))
	}
	temps := make(map[ir.Reg]bool)
	rewrite.InsertSpills(f, spill, func(r ir.Reg) { temps[r] = true })

	g2 := cfg.New(f)
	live2 := liveness.Compute(f, g2)
	rebuilt = interference.Build(f, live2, ir.ClassInt)
	patched = interference.Reconstruct(old.Clone(), f, live2, spill, func(r ir.Reg) bool { return temps[r] })
	return old, rebuilt, patched
}

const reconstructSrc = `
int g(int v) { return v + 1; }
int f(int a, int b, int c) {
	int keep = a * 3 + b;
	int more = b * 5 + c;
	int r = 0;
	int i = 0;
	for (i = 0; i < 10; i = i + 1) {
		r = r + g(i) + keep;
	}
	return keep + more + r + a;
}
int main() { return f(1, 2, 3); }`

func TestReconstructMatchesRebuild(t *testing.T) {
	cases := [][]string{
		{"keep"},
		{"more"},
		{"keep", "more"},
		{"r"},
		{"a"}, // spilled parameter path
		{"keep", "r", "a"},
	}
	for _, names := range cases {
		_, rebuilt, patched := reconstructCase(t, reconstructSrc, "f", names)
		if !interference.EdgesEqual(rebuilt, patched) {
			t.Errorf("spilling %v: reconstructed graph differs from rebuild", names)
		}
	}
}

func TestEdgesEqualDetectsDifferences(t *testing.T) {
	old, rebuilt, _ := reconstructCase(t, reconstructSrc, "f", []string{"keep"})
	if interference.EdgesEqual(old, rebuilt) {
		t.Error("pre- and post-spill graphs should differ")
	}
}

// TestReconstructionGivesIdenticalAllocations runs the full driver both
// ways on a program that spills repeatedly.
func TestReconstructionGivesIdenticalAllocations(t *testing.T) {
	prog, err := compile.Source(reconstructSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(prog, interp.Options{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	pf := freq.FromProfile(prog, res.Profile)
	config := machine.NewConfig(6, 4, 0, 0)

	optsRecon := regalloc.DefaultOptions()
	optsRebuild := regalloc.DefaultOptions()
	optsRebuild.Rebuild = true

	for _, strat := range []regalloc.Strategy{&regalloc.Chaitin{}, &regalloc.Chaitin{Optimistic: true}} {
		fa1, err := regalloc.AllocateFunc(prog.FuncByName["f"], pf.ByFunc["f"], config, strat,
			rewrite.InsertSpills, optsRecon)
		if err != nil {
			t.Fatal(err)
		}
		fa2, err := regalloc.AllocateFunc(prog.FuncByName["f"], pf.ByFunc["f"], config, strat,
			rewrite.InsertSpills, optsRebuild)
		if err != nil {
			t.Fatal(err)
		}
		if fa1.Rounds != fa2.Rounds {
			t.Errorf("%s: rounds differ: %d vs %d", strat.Name(), fa1.Rounds, fa2.Rounds)
		}
		if len(fa1.Colors) != len(fa2.Colors) {
			t.Fatalf("%s: register counts differ", strat.Name())
		}
		for r := range fa1.Colors {
			if fa1.Colors[r] != fa2.Colors[r] {
				t.Errorf("%s: v%d colored %d vs %d", strat.Name(), r, fa1.Colors[r], fa2.Colors[r])
			}
		}
	}
}
