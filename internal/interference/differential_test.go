package interference_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro"
	"repro/internal/cfg"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/randprog"
)

// TestDifferentialGraphVsReference holds the bit-matrix graph equal to
// the retained map-based reference implementation over generated
// programs: same nodes, same degrees, same neighbor sets, same pairwise
// interference, and — clone by clone — the same coalescing decision
// sequence under both the aggressive and the Briggs-conservative test.
func TestDifferentialGraphVsReference(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		src := randprog.Generate(seed, randprog.DefaultOptions())
		prog, err := callcost.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: generated program does not compile: %v", seed, err)
		}
		for _, fn := range prog.IR.Funcs {
			g := cfg.New(fn)
			live := liveness.Compute(fn, g)
			for c := ir.Class(0); c < ir.NumClasses; c++ {
				tag := fmt.Sprintf("seed %d fn %s class %v", seed, fn.Name, c)
				fast := interference.Build(fn, live, c)
				ref := interference.BuildRef(fn, live, c)
				compareGraphs(t, tag+" build", fast, ref)

				for _, mode := range []struct {
					name         string
					conservative bool
					k            int
				}{
					{"aggressive k=4", false, 4},
					{"aggressive k=8", false, 8},
					{"briggs k=4", true, 4},
					{"briggs k=8", true, 8},
				} {
					fc := fast.Clone()
					rc := interference.BuildRef(fn, live, c)
					var fastMerges, refMerges [][2]ir.Reg
					fc.TraceMerge = func(kept, gone ir.Reg) {
						fastMerges = append(fastMerges, [2]ir.Reg{kept, gone})
					}
					rc.TraceMerge = func(kept, gone ir.Reg) {
						refMerges = append(refMerges, [2]ir.Reg{kept, gone})
					}
					fm := fc.Coalesce(mode.conservative, mode.k)
					rm := rc.Coalesce(mode.conservative, mode.k)
					if fm != rm {
						t.Fatalf("%s %s: merged %d live ranges, reference merged %d",
							tag, mode.name, fm, rm)
					}
					if !reflect.DeepEqual(fastMerges, refMerges) {
						t.Fatalf("%s %s: merge sequence diverged\nfast: %v\nref:  %v",
							tag, mode.name, fastMerges, refMerges)
					}
					compareGraphs(t, tag+" "+mode.name, fc, rc)

					// The copy-on-write snapshot must behave exactly like
					// the deep clone.
					sc := fast.Snapshot()
					var snapMerges [][2]ir.Reg
					sc.TraceMerge = func(kept, gone ir.Reg) {
						snapMerges = append(snapMerges, [2]ir.Reg{kept, gone})
					}
					if sm := sc.Coalesce(mode.conservative, mode.k); sm != rm {
						t.Fatalf("%s %s: snapshot merged %d live ranges, reference merged %d",
							tag, mode.name, sm, rm)
					}
					if !reflect.DeepEqual(snapMerges, refMerges) {
						t.Fatalf("%s %s: snapshot merge sequence diverged\nsnap: %v\nref:  %v",
							tag, mode.name, snapMerges, refMerges)
					}
					compareGraphs(t, tag+" "+mode.name+" snapshot", sc, rc)
				}
				// Every clone and snapshot above left the base graph
				// exactly as built.
				compareGraphs(t, tag+" base-after-modes", fast, ref)
			}
		}
	}
}

// regsEqual compares register slices element-wise, treating nil and
// empty as equal.
func regsEqual(a, b []ir.Reg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// slotNames projects a spill-slot map to its stable content (the slot
// symbols are freshly allocated pointers each run).
func slotNames(slots map[ir.Reg]*ir.Symbol) map[ir.Reg]string {
	out := make(map[ir.Reg]string, len(slots))
	for r, s := range slots {
		out[r] = s.Name
	}
	return out
}

// compareGraphs asserts structural equality of the two representations.
func compareGraphs(t *testing.T, tag string, fast *interference.Graph, ref *interference.RefGraph) {
	t.Helper()
	fn, rn := fast.Nodes(), ref.Nodes()
	if !regsEqual(fn, rn) {
		t.Fatalf("%s: nodes diverged\nfast: %v\nref:  %v", tag, fn, rn)
	}
	for _, r := range fn {
		if fd, rd := fast.Degree(r), ref.Degree(r); fd != rd {
			t.Fatalf("%s: degree(%v) = %d, reference %d", tag, r, fd, rd)
		}
		if fns, rns := fast.NeighborsSorted(r), ref.SortedNeighbors(r); !regsEqual(fns, rns) {
			t.Fatalf("%s: neighbors(%v) diverged\nfast: %v\nref:  %v", tag, r, fns, rns)
		}
	}
	for i, a := range fn {
		for _, b := range fn[i+1:] {
			if fi, ri := fast.Interfere(a, b), ref.Interfere(a, b); fi != ri {
				t.Fatalf("%s: Interfere(%v,%v) = %v, reference %v", tag, a, b, fi, ri)
			}
		}
	}
}

// TestDifferentialAllocationDeterministic extends the differential
// property to whole allocations: allocating the same generated program
// twice must produce identical plans, pinning the data-structure
// rewrite to byte-stable allocator decisions.
func TestDifferentialAllocationDeterministic(t *testing.T) {
	cfgs := []callcost.Config{
		callcost.NewConfig(6, 4, 0, 0),
		callcost.NewConfig(8, 6, 4, 4),
	}
	for seed := int64(0); seed < 4; seed++ {
		src := randprog.Generate(seed, randprog.DefaultOptions())
		prog, err := callcost.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pf := prog.StaticFreq()
		for _, strat := range []callcost.Strategy{callcost.Chaitin(), callcost.ImprovedAll()} {
			for _, cfg := range cfgs {
				a1, err := prog.Allocate(strat, cfg, pf)
				if err != nil {
					t.Fatalf("seed %d: %s at %s: %v", seed, strat.Name(), cfg, err)
				}
				a2, err := prog.Allocate(strat, cfg, pf)
				if err != nil {
					t.Fatalf("seed %d: %s at %s (rerun): %v", seed, strat.Name(), cfg, err)
				}
				for name, p1 := range a1.Plans {
					p2 := a2.Plans[name]
					if p2 == nil {
						t.Fatalf("seed %d: %s at %s: %s missing from rerun", seed, strat.Name(), cfg, name)
					}
					if !reflect.DeepEqual(p1.Alloc.Colors, p2.Alloc.Colors) {
						t.Fatalf("seed %d: %s at %s: %s colors changed between identical runs\n%v\n%v",
							seed, strat.Name(), cfg, name, p1.Alloc.Colors, p2.Alloc.Colors)
					}
					if !reflect.DeepEqual(slotNames(p1.Alloc.SlotOf), slotNames(p2.Alloc.SlotOf)) {
						t.Fatalf("seed %d: %s at %s: %s spill slots changed between identical runs",
							seed, strat.Name(), cfg, name)
					}
					if !reflect.DeepEqual(p1.CalleeUsed, p2.CalleeUsed) {
						t.Fatalf("seed %d: %s at %s: %s callee-save usage changed between identical runs",
							seed, strat.Name(), cfg, name)
					}
				}
			}
		}
	}
}
