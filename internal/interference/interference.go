// Package interference builds and maintains the interference graph of a
// function, one graph per register bank. Nodes are live ranges
// (virtual registers merged by coalescing); an edge joins two ranges
// that are simultaneously live somewhere, i.e. that cannot share a
// physical register.
//
// The construction is Chaitin's: walking each block backwards, a
// definition interferes with everything live after it — except, for a
// move, the move's source, which is what makes copy coalescing possible.
// Function parameters are all defined at entry simultaneously, so the
// parameters live into the entry block mutually interfere.
//
// The representation is Chaitin's dual one: a triangular bit matrix
// answers Interfere in O(1), and per-node adjacency vectors drive
// iteration. Adjacency vectors are append-only; an entry goes stale
// when its node is merged away by coalescing or removed by spilling,
// and iteration skips (and compacts) stale entries by checking that the
// entry is still a union-find representative whose edge bit is set.
// Degrees are maintained incrementally, so Degree is O(1).
//
// The graph embeds a union-find so that coalescing (merging the two
// ends of a copy) updates interference in place; Find maps any virtual
// register to the representative of its live range. Each union-find
// class is additionally threaded on a circular member list, making
// Members O(|class|) instead of a scan over every register.
package interference

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// Graph is the interference graph of one register bank of one function.
type Graph struct {
	Fn    *ir.Func
	Class ir.Class

	parent []ir.Reg
	next   []ir.Reg   // circular member list per union-find class
	adj    [][]ir.Reg // adjacency vectors; may hold stale entries
	deg    []int32    // live distinct-neighbor count per representative
	matrix *bitset.Triangular
	occurs []bool   // vreg appears in the code (def, use, or live param)
	nodes  []ir.Reg // every reg of this bank that ever occurred
	listed []bool   // reg already appended to nodes

	// cow, when non-nil, marks this graph as an unprivatized
	// copy-on-write snapshot of cow: every slice and the bit matrix
	// alias the base's storage. Mutators call privatize first; readers
	// (Find, Neighbors) take write-free paths while cow is set. See
	// Snapshot in snapshot.go.
	cow *Graph

	// briggsOK scratch: epoch-stamped visited marks.
	mark  []uint32
	epoch uint32

	// TraceMerge, when non-nil, observes each coalescing merge: kept is
	// the surviving representative, gone the representative merged into
	// it. Set by the framework when a tracer is attached; never set on
	// the untraced path.
	TraceMerge func(kept, gone ir.Reg)
}

// newGraph returns an empty graph over n registers.
func newGraph(fn *ir.Func, class ir.Class, n int) *Graph {
	g := &Graph{
		Fn:     fn,
		Class:  class,
		parent: make([]ir.Reg, n),
		next:   make([]ir.Reg, n),
		adj:    make([][]ir.Reg, n),
		deg:    make([]int32, n),
		matrix: bitset.NewTriangular(n),
		occurs: make([]bool, n),
		listed: make([]bool, n),
	}
	for i := range g.parent {
		g.parent[i] = ir.Reg(i)
		g.next[i] = ir.Reg(i)
	}
	return g
}

// setOccurs marks r as occurring and registers it as a node candidate.
func (g *Graph) setOccurs(r ir.Reg) {
	if g.occurs[r] && g.listed[r] {
		return
	}
	g.privatize()
	g.occurs[r] = true
	if !g.listed[r] {
		g.listed[r] = true
		g.nodes = append(g.nodes, r)
	}
}

// Build constructs the graph for the given bank from liveness info.
func Build(fn *ir.Func, live *liveness.Info, class ir.Class) *Graph {
	g := newGraph(fn, class, fn.NumRegs())

	mine := func(r ir.Reg) bool { return fn.RegClass(r) == class }

	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.HasDst() && mine(in.Dst) {
				g.setOccurs(in.Dst)
			}
			for _, a := range in.Args {
				if mine(a) {
					g.setOccurs(a)
				}
			}
		}
	}

	for _, b := range fn.Blocks {
		live.WalkBlock(b, func(in *ir.Instr, after *bitset.Set) {
			if !in.HasDst() || !mine(in.Dst) {
				return
			}
			d := in.Dst
			var moveSrc ir.Reg = ir.NoReg
			if in.Op == ir.OpMove {
				moveSrc = in.Args[0]
			}
			after.ForEach(func(i int) {
				r := ir.Reg(i)
				if r == d || r == moveSrc || !mine(r) {
					return
				}
				g.addEdge(d, r)
			})
		})
	}

	// Parameters are defined together at function entry: the receive
	// sequence writes every colored parameter's register, so any two
	// parameters that occur anywhere in the function interfere — even
	// one whose incoming value is dead on arrival. Its register is
	// still written by the receive, which would clobber a neighbor
	// sharing it (the executors and codegen all receive uncondition-
	// ally), so dead-on-entry parameters cannot share with live ones.
	params := make([]ir.Reg, 0, len(fn.Params))
	for _, p := range fn.Params {
		if mine(p) && g.occurs[p] {
			params = append(params, p)
		}
	}
	for i, p := range params {
		for _, q := range params[i+1:] {
			g.addEdge(p, q)
		}
	}
	return g
}

// addEdge records the edge a–b (both must currently be representatives
// or freshly built original registers). O(1): one matrix test, two
// vector appends, two degree bumps.
func (g *Graph) addEdge(a, b ir.Reg) {
	if a == b || g.matrix.Has(int(a), int(b)) {
		return
	}
	g.privatize()
	g.matrix.Set(int(a), int(b))
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	g.deg[a]++
	g.deg[b]++
}

// Find returns the representative live range of r.
func (g *Graph) Find(r ir.Reg) ir.Reg {
	if g.cow != nil {
		// Shared storage: walk without path halving so concurrent
		// snapshot readers never write.
		for g.parent[r] != r {
			r = g.parent[r]
		}
		return r
	}
	for g.parent[r] != r {
		g.parent[r] = g.parent[g.parent[r]] // path halving
		r = g.parent[r]
	}
	return r
}

// Interfere reports whether the live ranges of a and b conflict.
func (g *Graph) Interfere(a, b ir.Reg) bool {
	ra, rb := g.Find(a), g.Find(b)
	if ra == rb {
		return false
	}
	return g.matrix.Has(int(ra), int(rb))
}

// alive reports whether an adjacency entry x of representative rep is
// still current: x must itself be a representative and the edge bit
// must still be set (removeNode clears bits; merged-away nodes stop
// being representatives).
func (g *Graph) alive(rep, x ir.Reg) bool {
	return g.parent[x] == x && g.matrix.Has(int(rep), int(x))
}

// Union merges the live range of b into that of a (both are resolved to
// representatives first). The merged range keeps a's representative and
// the union of both adjacency sets. Union of interfering ranges is the
// caller's bug; the graph keeps the edges consistent regardless.
func (g *Graph) Union(a, b ir.Reg) ir.Reg {
	ra, rb := g.Find(a), g.Find(b)
	if ra == rb {
		return ra
	}
	g.privatize()
	// Merge the smaller adjacency set into the larger.
	if g.deg[rb] > g.deg[ra] {
		ra, rb = rb, ra
	}
	g.parent[rb] = ra
	g.next[ra], g.next[rb] = g.next[rb], g.next[ra] // splice member cycles
	if g.occurs[rb] {
		g.setOccurs(ra)
	}
	for _, n := range g.adj[rb] {
		if g.parent[n] != n || !g.matrix.Has(int(rb), int(n)) {
			continue // stale entry
		}
		if n == ra {
			// The (buggy-caller) case of uniting interfering ranges:
			// the ra–rb edge disappears into the merged node.
			g.matrix.Unset(int(ra), int(rb))
			g.deg[ra]--
			continue
		}
		if g.matrix.Has(int(ra), int(n)) {
			// n was adjacent to both; it loses one distinct neighbor.
			g.deg[n]--
		} else {
			g.matrix.Set(int(ra), int(n))
			g.adj[ra] = append(g.adj[ra], n)
			g.adj[n] = append(g.adj[n], ra)
			g.deg[ra]++
			// deg[n] is unchanged: neighbor rb was replaced by ra.
		}
	}
	g.adj[rb] = nil
	g.deg[rb] = 0
	return ra
}

// Degree returns the number of distinct neighboring live ranges of the
// representative r. O(1).
func (g *Graph) Degree(r ir.Reg) int { return int(g.deg[g.Find(r)]) }

// Neighbors calls f for each neighbor of the representative r. Stale
// adjacency entries are compacted away in place as a side effect, so
// repeated iteration after heavy coalescing stays linear in the live
// degree. f must not mutate the graph.
func (g *Graph) Neighbors(r ir.Reg, f func(n ir.Reg)) {
	rep := g.Find(r)
	list := g.adj[rep]
	if g.cow != nil {
		// Shared storage: iterate without compacting.
		for _, n := range list {
			if g.alive(rep, n) {
				f(n)
			}
		}
		return
	}
	w := 0
	for _, n := range list {
		if !g.alive(rep, n) {
			continue
		}
		list[w] = n
		w++
		f(n)
	}
	if w != len(list) {
		g.adj[rep] = list[:w]
	}
}

// NeighborsSorted returns the neighbors in increasing register order,
// for deterministic iteration.
func (g *Graph) NeighborsSorted(r ir.Reg) []ir.Reg {
	ns := make([]ir.Reg, 0, g.Degree(r))
	g.Neighbors(r, func(n ir.Reg) { ns = append(ns, n) })
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns
}

// Nodes returns the representatives of this bank that occur in the code,
// in increasing register order (deterministic). Only registers that
// ever occurred are scanned, not the whole register space.
func (g *Graph) Nodes() []ir.Reg {
	return g.AppendNodes(make([]ir.Reg, 0, len(g.nodes)))
}

// AppendNodes is Nodes into caller-owned storage: the representatives
// are appended to buf (which should arrive empty, typically a reused
// buffer resliced to [:0]) and the grown, sorted slice is returned.
func (g *Graph) AppendNodes(buf []ir.Reg) []ir.Reg {
	for _, r := range g.nodes {
		if g.parent[r] == r && g.occurs[r] {
			buf = append(buf, r)
		}
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf
}

// Members returns all virtual registers whose live range is represented
// by rep, including rep itself, in increasing register order. The walk
// follows the class's member cycle, so the cost is O(|members|), not a
// scan over every register.
func (g *Graph) Members(rep ir.Reg) []ir.Reg {
	out := []ir.Reg{rep}
	for r := g.next[rep]; r != rep; r = g.next[r] {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForEachMember calls f for every member of rep's live range, rep
// included, in member-cycle order — unsorted and allocation-free. Use
// Members where a deterministic order matters.
func (g *Graph) ForEachMember(rep ir.Reg, f func(m ir.Reg)) {
	f(rep)
	for r := g.next[rep]; r != rep; r = g.next[r] {
		f(r)
	}
}

// Coalesce performs aggressive Chaitin-style coalescing: every move
// whose source and destination live ranges do not interfere is merged.
// It returns the number of moves coalesced. Passing conservative=true
// applies the Briggs test instead (merge only when the combined range
// has fewer than k neighbors of significant degree), which never
// increases spilling.
func (g *Graph) Coalesce(conservative bool, k int) int {
	// One pass over the body collects this bank's moves in program
	// order; the fixpoint rounds then rescan only those.
	type move struct{ dst, src ir.Reg }
	var moves []move
	for _, b := range g.Fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpMove && g.Fn.RegClass(in.Dst) == g.Class {
				moves = append(moves, move{in.Dst, in.Args[0]})
			}
		}
	}
	merged := 0
	for changed := true; changed; {
		changed = false
		for _, mv := range moves {
			d, s := g.Find(mv.dst), g.Find(mv.src)
			if d == s || g.matrix.Has(int(d), int(s)) {
				continue
			}
			if conservative && !g.briggsOK(d, s, k) {
				continue
			}
			kept := g.Union(d, s)
			if g.TraceMerge != nil {
				gone := d
				if kept == d {
					gone = s
				}
				g.TraceMerge(kept, gone)
			}
			merged++
			changed = true
		}
	}
	return merged
}

// briggsOK implements the Briggs conservative-coalescing test. The
// visited set is an epoch-stamped scratch array on the graph, so the
// test allocates nothing after the first call.
func (g *Graph) briggsOK(a, b ir.Reg, k int) bool {
	if g.mark == nil {
		g.mark = make([]uint32, len(g.parent))
	}
	g.epoch++
	high := 0
	count := func(r ir.Reg) {
		g.Neighbors(r, func(n ir.Reg) {
			if g.mark[n] == g.epoch {
				return
			}
			g.mark[n] = g.epoch
			deg := int(g.deg[n])
			// If n neighbors both a and b, its degree in the merged
			// graph drops by one.
			if g.matrix.Has(int(a), int(n)) && g.matrix.Has(int(b), int(n)) {
				deg--
			}
			if deg >= k {
				high++
			}
		})
	}
	count(a)
	count(b)
	return high < k
}

// forEachEdge calls f(a, b) once per live edge, with a < b.
func (g *Graph) forEachEdge(f func(a, b ir.Reg)) {
	for r := range g.adj {
		rep := ir.Reg(r)
		if g.parent[rep] != rep {
			continue
		}
		for _, n := range g.adj[rep] {
			if rep < n && g.alive(rep, n) {
				f(rep, n)
			}
		}
	}
}
