// Package interference builds and maintains the interference graph of a
// function, one graph per register bank. Nodes are live ranges
// (virtual registers merged by coalescing); an edge joins two ranges
// that are simultaneously live somewhere, i.e. that cannot share a
// physical register.
//
// The construction is Chaitin's: walking each block backwards, a
// definition interferes with everything live after it — except, for a
// move, the move's source, which is what makes copy coalescing possible.
// Function parameters are all defined at entry simultaneously, so the
// parameters live into the entry block mutually interfere.
//
// The graph embeds a union-find so that coalescing (merging the two
// ends of a copy) updates interference in place; Find maps any virtual
// register to the representative of its live range.
package interference

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// Graph is the interference graph of one register bank of one function.
type Graph struct {
	Fn    *ir.Func
	Class ir.Class

	parent []ir.Reg
	adj    []map[ir.Reg]struct{}
	occurs []bool // vreg appears in the code (def, use, or live param)

	// TraceMerge, when non-nil, observes each coalescing merge: kept is
	// the surviving representative, gone the representative merged into
	// it. Set by the framework when a tracer is attached; never set on
	// the untraced path.
	TraceMerge func(kept, gone ir.Reg)
}

// Build constructs the graph for the given bank from liveness info.
func Build(fn *ir.Func, live *liveness.Info, class ir.Class) *Graph {
	n := fn.NumRegs()
	g := &Graph{
		Fn:     fn,
		Class:  class,
		parent: make([]ir.Reg, n),
		adj:    make([]map[ir.Reg]struct{}, n),
		occurs: make([]bool, n),
	}
	for i := range g.parent {
		g.parent[i] = ir.Reg(i)
	}

	mine := func(r ir.Reg) bool { return fn.RegClass(r) == class }

	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.HasDst() && mine(in.Dst) {
				g.occurs[in.Dst] = true
			}
			for _, a := range in.Args {
				if mine(a) {
					g.occurs[a] = true
				}
			}
		}
	}

	for _, b := range fn.Blocks {
		live.WalkBlock(b, func(in *ir.Instr, after *bitset.Set) {
			if !in.HasDst() || !mine(in.Dst) {
				return
			}
			d := in.Dst
			var moveSrc ir.Reg = ir.NoReg
			if in.Op == ir.OpMove {
				moveSrc = in.Args[0]
			}
			after.ForEach(func(i int) {
				r := ir.Reg(i)
				if r == d || r == moveSrc || !mine(r) {
					return
				}
				g.addEdge(d, r)
			})
		})
	}

	// Parameters are defined together at function entry.
	params := make([]ir.Reg, 0, len(fn.Params))
	for _, p := range fn.Params {
		if mine(p) {
			params = append(params, p)
			if live.In[0].Has(int(p)) {
				g.occurs[p] = true
			}
		}
	}
	for i, p := range params {
		for _, q := range params[i+1:] {
			if live.In[0].Has(int(p)) && live.In[0].Has(int(q)) {
				g.addEdge(p, q)
			}
		}
	}
	return g
}

func (g *Graph) addEdge(a, b ir.Reg) {
	if a == b {
		return
	}
	if g.adj[a] == nil {
		g.adj[a] = make(map[ir.Reg]struct{})
	}
	if g.adj[b] == nil {
		g.adj[b] = make(map[ir.Reg]struct{})
	}
	g.adj[a][b] = struct{}{}
	g.adj[b][a] = struct{}{}
}

// Find returns the representative live range of r.
func (g *Graph) Find(r ir.Reg) ir.Reg {
	for g.parent[r] != r {
		g.parent[r] = g.parent[g.parent[r]] // path halving
		r = g.parent[r]
	}
	return r
}

// Interfere reports whether the live ranges of a and b conflict.
func (g *Graph) Interfere(a, b ir.Reg) bool {
	ra, rb := g.Find(a), g.Find(b)
	if ra == rb {
		return false
	}
	_, ok := g.adj[ra][rb]
	return ok
}

// Union merges the live range of b into that of a (both are resolved to
// representatives first). The merged range keeps a's representative and
// the union of both adjacency sets. Union of interfering ranges is the
// caller's bug; the graph keeps the edges consistent regardless.
func (g *Graph) Union(a, b ir.Reg) ir.Reg {
	ra, rb := g.Find(a), g.Find(b)
	if ra == rb {
		return ra
	}
	// Merge the smaller adjacency set into the larger.
	if len(g.adj[rb]) > len(g.adj[ra]) {
		ra, rb = rb, ra
	}
	g.parent[rb] = ra
	if g.occurs[rb] {
		g.occurs[ra] = true
	}
	for n := range g.adj[rb] {
		delete(g.adj[n], rb)
		if n != ra {
			g.addEdge(ra, n)
		}
	}
	g.adj[rb] = nil
	return ra
}

// Degree returns the number of distinct neighboring live ranges of the
// representative r.
func (g *Graph) Degree(r ir.Reg) int { return len(g.adj[g.Find(r)]) }

// Neighbors calls f for each neighbor of the representative r.
func (g *Graph) Neighbors(r ir.Reg, f func(n ir.Reg)) {
	for n := range g.adj[g.Find(r)] {
		f(n)
	}
}

// NeighborsSorted returns the neighbors in increasing register order,
// for deterministic iteration.
func (g *Graph) NeighborsSorted(r ir.Reg) []ir.Reg {
	ns := make([]ir.Reg, 0, len(g.adj[g.Find(r)]))
	for n := range g.adj[g.Find(r)] {
		ns = append(ns, n)
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns
}

// Nodes returns the representatives of this bank that occur in the code,
// in increasing register order (deterministic).
func (g *Graph) Nodes() []ir.Reg {
	var out []ir.Reg
	for r := 0; r < len(g.parent); r++ {
		reg := ir.Reg(r)
		if g.Fn.RegClass(reg) != g.Class {
			continue
		}
		if g.Find(reg) != reg || !g.occurs[g.Find(reg)] {
			continue
		}
		out = append(out, reg)
	}
	return out
}

// Members returns all virtual registers whose live range is represented
// by rep, including rep itself.
func (g *Graph) Members(rep ir.Reg) []ir.Reg {
	var out []ir.Reg
	for r := range g.parent {
		if g.Find(ir.Reg(r)) == rep {
			out = append(out, ir.Reg(r))
		}
	}
	return out
}

// Coalesce performs aggressive Chaitin-style coalescing: every move
// whose source and destination live ranges do not interfere is merged.
// It returns the number of moves coalesced. Passing conservative=true
// applies the Briggs test instead (merge only when the combined range
// has fewer than k neighbors of significant degree), which never
// increases spilling.
func (g *Graph) Coalesce(conservative bool, k int) int {
	merged := 0
	for changed := true; changed; {
		changed = false
		for _, b := range g.Fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.OpMove || g.Fn.RegClass(in.Dst) != g.Class {
					continue
				}
				d, s := g.Find(in.Dst), g.Find(in.Args[0])
				if d == s || g.Interfere(d, s) {
					continue
				}
				if conservative && !g.briggsOK(d, s, k) {
					continue
				}
				kept := g.Union(d, s)
				if g.TraceMerge != nil {
					gone := d
					if kept == d {
						gone = s
					}
					g.TraceMerge(kept, gone)
				}
				merged++
				changed = true
			}
		}
	}
	return merged
}

// briggsOK implements the Briggs conservative-coalescing test.
func (g *Graph) briggsOK(a, b ir.Reg, k int) bool {
	seen := make(map[ir.Reg]struct{})
	high := 0
	count := func(r ir.Reg) {
		for n := range g.adj[r] {
			if _, dup := seen[n]; dup {
				continue
			}
			seen[n] = struct{}{}
			deg := len(g.adj[n])
			// If n neighbors both a and b, its degree in the merged
			// graph drops by one.
			_, na := g.adj[a][n]
			_, nb := g.adj[b][n]
			if na && nb {
				deg--
			}
			if deg >= k {
				high++
			}
		}
	}
	count(a)
	count(b)
	return high < k
}
