package core_test

import (
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/freq"
	"repro/internal/interference"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/liverange"
	"repro/internal/machine"
	"repro/internal/regalloc"
)

func context(t *testing.T, src, fn string, config machine.Config, class ir.Class) *regalloc.ClassContext {
	t.Helper()
	prog, err := compile.Source(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := interp.Run(prog, interp.Options{Profile: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	pf := freq.FromProfile(prog, res.Profile)
	f := prog.FuncByName[fn]
	g := cfg.New(f)
	live := liveness.Compute(f, g)
	var graphs [ir.NumClasses]*interference.Graph
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		graphs[c] = interference.Build(f, live, c)
		graphs[c].Coalesce(false, config.Total(c))
	}
	ranges := liverange.Analyze(f, live, &graphs, pf.ByFunc[fn], nil)
	return &regalloc.ClassContext{
		Fn: f, Class: class, Graph: graphs[class], Ranges: ranges, Config: config,
	}
}

func regByName(f *ir.Func, name string) ir.Reg {
	for r := 0; r < f.NumRegs(); r++ {
		if f.RegName(ir.Reg(r)) == name {
			return ir.Reg(r)
		}
	}
	return ir.NoReg
}

func TestNames(t *testing.T) {
	if n := core.All().Name(); n != "improved[SC+BS+PR]" {
		t.Errorf("name %q", n)
	}
	if n := (&core.Improved{}).Name(); !strings.Contains(n, "none") {
		t.Errorf("name %q", n)
	}
	opt := core.All()
	opt.Optimistic = true
	if n := opt.Name(); !strings.Contains(n, "OPT") {
		t.Errorf("name %q", n)
	}
}

// coldCrossSrc has a hot function with a cold call-crossing tail: the
// signature storage-class-analysis situation.
const coldCrossSrc = `
int helper(int v) { return v % 7; }
int hot(int a, int b) {
	int x = a * 2;
	int y = b * 3;
	if (x > 1000000) {
		int c1 = x + 1;
		int c2 = y + 2;
		c1 = helper(c1) + c2;
		c2 = helper(c2) + c1;
		return c1 + c2;
	}
	return x + y;
}
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 200; i = i + 1) { s = s + hot(i, i + 1); }
	return s;
}`

func TestStorageClassAvoidsCalleeForColdCrossings(t *testing.T) {
	cfgRegs := machine.NewConfig(6, 4, 4, 4)
	ctx := context(t, coldCrossSrc, "hot", cfgRegs, ir.ClassInt)
	sc := &core.Improved{StorageClass: true}
	res := sc.Allocate(ctx)
	// The cold crossing ranges (c1, c2) must not occupy callee-save
	// registers: their caller-save cost is ~0 while callee-save costs
	// 2x200 entries.
	f := ctx.Fn
	for _, name := range []string{"c1", "c2"} {
		r := regByName(f, name)
		if r == ir.NoReg {
			t.Fatalf("no register for %s", name)
		}
		rep := ctx.Graph.Find(r)
		if col, ok := res.Colors[rep]; ok && cfgRegs.IsCalleeSave(ir.ClassInt, col) {
			t.Errorf("%s placed in callee-save register %d; caller-save was free", name, col)
		}
	}
}

func TestBaseModelWastesCalleeOnColdCrossings(t *testing.T) {
	// The contrast that motivates the paper: the base rule sees
	// "crosses a call" and burns callee-save registers on c1/c2.
	cfgRegs := machine.NewConfig(6, 4, 4, 4)
	ctx := context(t, coldCrossSrc, "hot", cfgRegs, ir.ClassInt)
	base := &regalloc.Chaitin{}
	res := base.Allocate(ctx)
	f := ctx.Fn
	calleeCount := 0
	for _, name := range []string{"c1", "c2"} {
		rep := ctx.Graph.Find(regByName(f, name))
		if col, ok := res.Colors[rep]; ok && cfgRegs.IsCalleeSave(ir.ClassInt, col) {
			calleeCount++
		}
	}
	if calleeCount == 0 {
		t.Error("expected the base model to give cold crossing ranges callee-save registers")
	}
}

func TestSpillByChoice(t *testing.T) {
	// A range whose every placement costs more than memory: crosses a
	// hot call, is referenced rarely relative to the function's entry
	// count... with zero callee-save registers, caller-save is the only
	// kind; benefit_caller < 0 must spill it even though registers are
	// free.
	src := `
int helper(int v) { return v % 7; }
int hot(int a) {
	int rare = a * 31;
	int i;
	int acc = 0;
	for (i = 0; i < 50; i = i + 1) {
		acc = acc + helper(i);
	}
	return acc + rare;
}
int main() { return hot(3); }`
	cfgRegs := machine.NewConfig(6, 4, 0, 0)
	ctx := context(t, src, "hot", cfgRegs, ir.ClassInt)
	sc := &core.Improved{StorageClass: true}
	res := sc.Allocate(ctx)
	rare := ctx.Graph.Find(regByName(ctx.Fn, "rare"))
	spilled := false
	for _, s := range res.Spilled {
		if s == rare {
			spilled = true
		}
	}
	if !spilled {
		rg := ctx.RangeOf(rare)
		t.Errorf("rare should spill by choice (spill=%v caller=%v callee=%v)",
			rg.SpillCost, rg.CallerCost, rg.CalleeCost)
	}
	// The base model would keep it in a register (no spill-by-choice).
	base := &regalloc.Chaitin{}
	bres := base.Allocate(ctx)
	if _, ok := bres.Colors[rare]; !ok {
		t.Error("base model unexpectedly spilled rare")
	}
}

func TestSharedModelGroupSpill(t *testing.T) {
	// Two cold ranges forced into one callee-save register's orbit:
	// under the shared model, a register whose users' spill costs sum
	// below the save/restore cost is vacated.
	src := `
int helper(int v) { return v % 7; }
int hot(int a) {
	// cold1/cold2 interfere with each other and cross the call, with
	// tiny spill costs; entry count makes callee-save expensive.
	int cold1 = a + 1;
	int cold2 = a + 2;
	int r = helper(a);
	return r + cold1 + cold2;
}
int main() {
	int i; int s = 0;
	for (i = 0; i < 300; i = i + 1) { s = s + hot(i); }
	return s;
}`
	cfgRegs := machine.NewConfig(6, 4, 6, 6)
	ctx := context(t, src, "hot", cfgRegs, ir.ClassInt)

	shared := &core.Improved{StorageClass: true, CalleeModel: core.SharedCost}
	sres := shared.Allocate(ctx)
	// cold1/cold2: spill cost 2x300=600 each (def + one use at entry
	// frequency 300), callerCost 600 each, calleeCost 600. All equal —
	// they go SOMEWHERE; this test only pins the invariant that every
	// node is either colored or spilled.
	nodes := ctx.Nodes()
	for _, n := range nodes {
		_, colored := sres.Colors[n]
		spilled := false
		for _, s := range sres.Spilled {
			if s == n {
				spilled = true
			}
		}
		if colored == spilled {
			t.Errorf("node v%d: colored=%v spilled=%v (must be exactly one)", n, colored, spilled)
		}
	}
}

func TestFirstUseModelSpillsUnprofitableFirstUser(t *testing.T) {
	ctx := context(t, coldCrossSrc, "hot", machine.NewConfig(6, 4, 4, 4), ir.ClassInt)
	firstUse := &core.Improved{StorageClass: true, CalleeModel: core.FirstUseCost}
	res := firstUse.Allocate(ctx)
	// Every node accounted for.
	for _, n := range ctx.Nodes() {
		_, colored := res.Colors[n]
		spilled := false
		for _, s := range res.Spilled {
			if s == n {
				spilled = true
			}
		}
		if colored == spilled {
			t.Errorf("node v%d not exactly-once accounted", n)
		}
	}
}

func TestPreferenceDecisionForcesLeastDeserving(t *testing.T) {
	// More callee-preferring crossing ranges at one hot call than
	// callee-save registers: PR must force the least deserving to
	// caller-save.
	src := `
int helper(int v) { return v % 7; }
int hot(int a, int b, int c) {
	int x = a * 2 + b;
	int y = b * 3 + c;
	int z = c * 5 + a;
	int w = a + b + c;
	int r = helper(a);
	return x + y + z + w + r + x * y + z * w;
}
int main() {
	int i; int s = 0;
	for (i = 0; i < 100; i = i + 1) { s = s + hot(i, i + 1, i + 2); }
	return s;
}`
	cfgRegs := machine.NewConfig(8, 4, 2, 2) // only 2 int callee-save
	ctxPR := context(t, src, "hot", cfgRegs, ir.ClassInt)
	withPR := &core.Improved{StorageClass: true, BenefitSimplify: true, Preference: true}
	noPR := &core.Improved{StorageClass: true, BenefitSimplify: true}
	resPR := withPR.Allocate(ctxPR)
	resNo := noPR.Allocate(ctxPR)
	countCallee := func(res *regalloc.ClassResult) int {
		n := 0
		for _, col := range res.Colors {
			if cfgRegs.IsCalleeSave(ir.ClassInt, col) {
				n++
			}
		}
		return n
	}
	// PR cannot increase callee-save usage beyond the supply, and both
	// allocations must be complete.
	if countCallee(resPR) > 2*4 { // 2 regs, generous sharing bound
		t.Errorf("PR used implausibly many callee assignments")
	}
	if len(resPR.Colors)+len(resPR.Spilled) != len(ctxPR.Nodes()) {
		t.Error("PR result incomplete")
	}
	if len(resNo.Colors)+len(resNo.Spilled) != len(ctxPR.Nodes()) {
		t.Error("no-PR result incomplete")
	}
}

func TestKeyStrategies(t *testing.T) {
	ctx := context(t, coldCrossSrc, "hot", machine.NewConfig(6, 4, 2, 2), ir.ClassInt)
	delta := &core.Improved{StorageClass: true, BenefitSimplify: true, Key: core.KeyDelta}
	maxk := &core.Improved{StorageClass: true, BenefitSimplify: true, Key: core.KeyMax}
	r1 := delta.Allocate(ctx)
	r2 := maxk.Allocate(ctx)
	// Both must produce complete allocations; the ablation experiment
	// measures which is better.
	if len(r1.Colors)+len(r1.Spilled) != len(ctx.Nodes()) {
		t.Error("delta-key allocation incomplete")
	}
	if len(r2.Colors)+len(r2.Spilled) != len(ctx.Nodes()) {
		t.Error("max-key allocation incomplete")
	}
}
