// Package core implements the paper's contribution: a Chaitin-style
// register allocator improved with the three call-cost directed
// techniques of §4-§6.
//
//   - Storage-class analysis (SC): each live range has two benefit
//     functions, benefit_caller = spill_cost − caller_save_cost and
//     benefit_callee = spill_cost − callee_save_cost. Color assignment
//     prefers the kind of register with the larger benefit, and spills
//     by choice when keeping the range in the only kind available would
//     cost more than spilling it — registers may go unused on purpose.
//     Two models of callee-save cost are provided: the first user of a
//     callee-save register pays the whole entry/exit save cost
//     (FirstUse), or all ranges packed into the register share it
//     (Shared, the paper's better-performing default), decided after
//     the whole bank is colored.
//
//   - Benefit-driven simplification (BS): when more than one node is
//     unconstrained, the one with the smallest key is removed first, so
//     large-key ranges end up near the top of the color stack where
//     both kinds of register are still free. The default key is the
//     paper's strategy 2 — the penalty delta |benefit_caller −
//     benefit_callee| when both benefits are nonnegative, otherwise
//     max(benefit_caller, benefit_callee) — because what matters for a
//     Chaitin-style allocator is the penalty of getting the wrong KIND
//     of register, not the magnitude of the savings (strategy 1, kept
//     for the ablation experiment).
//
//   - Preference decision (PR): before assignment, call sites are
//     visited in decreasing weighted frequency. When L live ranges
//     crossing a call prefer callee-save registers but only M < L
//     callee-save registers exist, the L−M ranges with the smallest
//     keys (caller_cost if benefit_caller > 0, else spill_cost) are
//     re-annotated to prefer caller-save, keeping the scarce callee-save
//     registers for the ranges that need them most.
package core

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/regalloc"
)

// CalleeCostModel selects how storage-class analysis charges the
// callee-save entry/exit cost (paper §4).
type CalleeCostModel int

const (
	// SharedCost spreads a callee-save register's save/restore cost
	// over all live ranges that share it; the spill decision for the
	// register's users is made after color assignment. The paper's
	// experiments favor this model.
	SharedCost CalleeCostModel = iota
	// FirstUseCost charges the whole cost to the first live range that
	// uses each callee-save register; later users ride for free.
	FirstUseCost
)

// SimplifyKey selects the benefit-driven simplification key (paper §5).
type SimplifyKey int

const (
	// KeyDelta is strategy 2: the penalty delta between the two kinds
	// of register when both placements beat memory, otherwise the best
	// benefit. This is the paper's choice for Chaitin-style coloring.
	KeyDelta SimplifyKey = iota
	// KeyMax is strategy 1, the priority-style max(benefit_caller,
	// benefit_callee); kept for the ablation.
	KeyMax
)

// Improved is the enhanced Chaitin-style strategy. The three booleans
// toggle the paper's techniques independently (its Figure 6 compares
// SC, SC+BS, and SC+BS+PR against the base allocator).
type Improved struct {
	StorageClass    bool // SC (§4)
	BenefitSimplify bool // BS (§5)
	Preference      bool // PR (§6)

	// CalleeModel selects the callee-save cost model (default
	// SharedCost).
	CalleeModel CalleeCostModel
	// Key selects the simplification key (default KeyDelta).
	Key SimplifyKey
	// Optimistic integrates optimistic coloring (§8): blocked nodes are
	// pushed optimistically instead of spilled during simplification.
	Optimistic bool
}

// All returns the paper's headline configuration: SC+BS+PR with the
// shared callee-cost model.
func All() *Improved {
	return &Improved{StorageClass: true, BenefitSimplify: true, Preference: true}
}

// Name implements regalloc.Strategy.
func (im *Improved) Name() string {
	n := "improved["
	sep := ""
	add := func(s string) { n += sep + s; sep = "+" }
	if im.StorageClass {
		add("SC")
	}
	if im.BenefitSimplify {
		add("BS")
	}
	if im.Preference {
		add("PR")
	}
	if im.Optimistic {
		add("OPT")
	}
	if sep == "" {
		add("none")
	}
	return n + "]"
}

// Allocate implements regalloc.Strategy.
func (im *Improved) Allocate(ctx *regalloc.ClassContext) *regalloc.ClassResult {
	res := regalloc.NewClassResult()

	prefersCallee := im.preferenceFunc(ctx)

	// Color ordering: benefit-driven simplification.
	simp := regalloc.NewSimplifier(ctx)
	opts := regalloc.SimplifyOptions{Optimistic: im.Optimistic}
	if im.BenefitSimplify {
		opts.Key = func(rep ir.Reg) float64 { return im.simplifyKey(ctx, rep) }
	}
	stack, spilled := simp.Run(opts)
	res.Spilled = append(res.Spilled, spilled...)

	// Color assignment with storage-class analysis.
	usedCallee := make(map[machine.PhysReg]bool)
	calleeUsers := make(map[machine.PhysReg][]ir.Reg)
	for {
		rep, ok := stack.Pop()
		if !ok {
			break
		}
		free := ctx.FreeColors(res, rep)
		if len(free) == 0 {
			res.Spilled = append(res.Spilled, rep) // optimistic push failed
			ctx.EmitSpill(rep, obs.ReasonNoColor, 0)
			continue
		}
		caller, callee := ctx.SplitFree(free)
		rg := ctx.RangeOf(rep)

		wantCallee := prefersCallee(rep)
		var color machine.PhysReg
		kindCallee := false
		switch {
		case wantCallee && len(callee) > 0:
			color, kindCallee = pickCallee(callee, usedCallee), true
		case wantCallee:
			color = caller[0]
		case len(caller) > 0:
			color = caller[0]
		default:
			color, kindCallee = pickCallee(callee, usedCallee), true
		}

		if im.StorageClass && rg != nil && !rg.NoSpill {
			// Spill-by-choice: a register that costs more than memory
			// is declined (§4).
			if !kindCallee && rg.BenefitCaller < 0 {
				res.Spilled = append(res.Spilled, rep)
				ctx.EmitSpill(rep, obs.ReasonNegativeBenefit, rg.BenefitCaller)
				continue
			}
			if kindCallee && im.CalleeModel == FirstUseCost && !usedCallee[color] && rg.BenefitCallee < 0 {
				res.Spilled = append(res.Spilled, rep)
				ctx.EmitSpill(rep, obs.ReasonNegativeBenefit, rg.BenefitCallee)
				continue
			}
			// SharedCost defers the decision to the post-pass below.
		}

		ctx.Assign(res, rep, color)
		ctx.EmitAssign(rep, color, wantCallee)
		if kindCallee {
			usedCallee[color] = true
			calleeUsers[color] = append(calleeUsers[color], rep)
		}
	}

	// Shared callee-save cost model: a register whose users' combined
	// spill cost is below the save/restore cost was not worth
	// occupying; spill all of its users (§4).
	if im.StorageClass && im.CalleeModel == SharedCost {
		calleeCost := 2 * ctx.Ranges.EntryFreq
		regs := make([]machine.PhysReg, 0, len(calleeUsers))
		for r := range calleeUsers {
			regs = append(regs, r)
		}
		sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
		for _, r := range regs {
			users := calleeUsers[r]
			sum := 0.0
			spillable := true
			for _, u := range users {
				rg := ctx.RangeOf(u)
				if rg == nil || rg.NoSpill {
					spillable = false
					break
				}
				sum += rg.SpillCost
			}
			if spillable && sum < calleeCost {
				for _, u := range users {
					ctx.Unassign(res, u)
					res.Spilled = append(res.Spilled, u)
					// Key: the combined spill cost of every user of the
					// register, the quantity that lost to calleeCost.
					ctx.EmitSpill(u, obs.ReasonSharedCallee, sum)
				}
			}
		}
	}
	simp.Release(stack)
	return res
}

// pickCallee chooses a callee-save register, preferring one already in
// use so that its entry/exit cost is shared (and, under the first-use
// model, free for this range).
func pickCallee(callee []machine.PhysReg, used map[machine.PhysReg]bool) machine.PhysReg {
	for _, r := range callee {
		if used[r] {
			return r
		}
	}
	return callee[0]
}

// simplifyKey computes the benefit-driven simplification key (§5).
func (im *Improved) simplifyKey(ctx *regalloc.ClassContext, rep ir.Reg) float64 {
	rg := ctx.RangeOf(rep)
	if rg == nil {
		return 0
	}
	bc, be := rg.BenefitCaller, rg.BenefitCallee
	if im.Key == KeyMax {
		return max(bc, be)
	}
	// Strategy 2: both kinds beat memory — only the wrong-kind penalty
	// matters; otherwise fall back to the best benefit.
	if bc >= 0 && be > 0 {
		d := bc - be
		if d < 0 {
			d = -d
		}
		return d
	}
	return max(bc, be)
}

// preferenceFunc returns the "prefers callee-save" predicate for this
// bank, applying the preference-decision pre-pass when enabled (§6).
func (im *Improved) preferenceFunc(ctx *regalloc.ClassContext) func(ir.Reg) bool {
	base := func(rep ir.Reg) bool {
		rg := ctx.RangeOf(rep)
		if rg == nil {
			return false
		}
		if im.StorageClass {
			return rg.PrefersCallee()
		}
		return rg.CrossesCall
	}
	if !im.Preference {
		return base
	}

	forcedCaller := make(map[ir.Reg]bool)
	m := ctx.Config.Callee[ctx.Class]

	// Call sites in decreasing weighted frequency (ties broken by
	// program order for determinism).
	calls := make([]int, len(ctx.Ranges.Calls))
	for i := range calls {
		calls[i] = i
	}
	sort.SliceStable(calls, func(a, b int) bool {
		return ctx.Ranges.Calls[calls[a]].Freq > ctx.Ranges.Calls[calls[b]].Freq
	})

	for _, ci := range calls {
		site := &ctx.Ranges.Calls[ci]
		var wantCallee []ir.Reg
		for _, rep := range site.Crossing[ctx.Class] {
			if !forcedCaller[rep] && base(rep) {
				wantCallee = append(wantCallee, rep)
			}
		}
		l := len(wantCallee)
		if l <= m {
			continue
		}
		// At least L−M of these must end up caller-save; force the ones
		// with the smallest keys (§6: caller_cost when benefit_caller >
		// 0, else spill_cost — the penalty for not getting a
		// callee-save register).
		key := func(rep ir.Reg) float64 {
			rg := ctx.RangeOf(rep)
			if rg == nil {
				return 0
			}
			if rg.BenefitCaller > 0 {
				return rg.CallerCost
			}
			return rg.SpillCost
		}
		sort.SliceStable(wantCallee, func(a, b int) bool {
			ka, kb := key(wantCallee[a]), key(wantCallee[b])
			if ka != kb {
				return ka < kb
			}
			return wantCallee[a] < wantCallee[b]
		})
		for _, rep := range wantCallee[:l-m] {
			forcedCaller[rep] = true
			if ctx.Traced() {
				ctx.Emit(obs.Event{Kind: obs.KindPrefDecide, Reg: rep,
					Key: key(rep), Reason: obs.ReasonForcedCaller, N: l - m})
			}
		}
	}

	return func(rep ir.Reg) bool {
		if forcedCaller[rep] {
			return false
		}
		return base(rep)
	}
}
