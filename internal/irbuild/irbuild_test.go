package irbuild_test

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/interp"
	"repro/internal/ir"
)

// run compiles and interprets src, returning main's integer result.
func run(t *testing.T, src string) int64 {
	t.Helper()
	prog, err := compile.Source(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("invalid IR: %v", err)
	}
	res, err := interp.Run(prog, interp.Options{})
	if err != nil {
		t.Fatalf("run: %v\nIR:\n%s", err, prog)
	}
	return res.RetInt
}

func expect(t *testing.T, src string, want int64) {
	t.Helper()
	if got := run(t, src); got != want {
		t.Errorf("program returned %d, want %d", got, want)
	}
}

func TestArithmetic(t *testing.T) {
	expect(t, `int main() { return 2 + 3 * 4 - 6 / 2; }`, 11)
	expect(t, `int main() { return 17 % 5; }`, 2)
	expect(t, `int main() { return -7 + 3; }`, -4)
	expect(t, `int main() { return (2 + 3) * 4; }`, 20)
}

func TestFloatArithmetic(t *testing.T) {
	expect(t, `int main() { return int(2.5 * 4.0); }`, 10)
	expect(t, `int main() { return int(7.0 / 2.0); }`, 3)
	expect(t, `int main() { float x = 1.5; float y = 2.5; return int(x + y); }`, 4)
	expect(t, `int main() { return int(-(1.5) * -2.0); }`, 3)
}

func TestMixedPromotion(t *testing.T) {
	expect(t, `int main() { return int(1 + 0.5); }`, 1)
	expect(t, `int main() { float x = 3; return int(x * 2); }`, 6)
	expect(t, `int main() { return 1 < 1.5; }`, 1)
	expect(t, `int main() { return 2.0 == 2; }`, 1)
}

func TestComparisons(t *testing.T) {
	expect(t, `int main() { return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3) + (1 == 1) + (1 != 1); }`, 4)
}

func TestLogical(t *testing.T) {
	expect(t, `int main() { return 1 && 2; }`, 1)
	expect(t, `int main() { return 1 && 0; }`, 0)
	expect(t, `int main() { return 0 || 3; }`, 1)
	expect(t, `int main() { return 0 || 0; }`, 0)
	expect(t, `int main() { return !0 + !5; }`, 1)
}

func TestShortCircuitSkipsCalls(t *testing.T) {
	// g() would trap via division by zero; short circuit must skip it.
	expect(t, `
int zero = 0;
int g() { return 1 / zero; }
int main() { return 0 && g(); }`, 0)
	expect(t, `
int zero = 0;
int g() { return 1 / zero; }
int main() { return 1 || g(); }`, 1)
}

func TestShortCircuitEvaluatesWhenNeeded(t *testing.T) {
	expect(t, `
int calls = 0;
int g() { calls = calls + 1; return 1; }
int main() { int r = g() && g(); return calls * 10 + r; }`, 21)
}

func TestIfElseChains(t *testing.T) {
	src := `
int classify(int x) {
	if (x < 0) { return 0 - 1; }
	else if (x == 0) { return 0; }
	else if (x < 10) { return 1; }
	else { return 2; }
}
int main() {
	return classify(-5) * 1000 + classify(0) * 100 + classify(5) * 10 + classify(50);
}`
	expect(t, src, -1000+0+10+2)
}

func TestWhileLoop(t *testing.T) {
	expect(t, `
int main() {
	int i = 0;
	int sum = 0;
	while (i < 10) { sum = sum + i; i = i + 1; }
	return sum;
}`, 45)
}

func TestDoWhile(t *testing.T) {
	expect(t, `
int main() {
	int i = 10;
	int n = 0;
	do { n = n + 1; i = i - 1; } while (i > 0);
	return n;
}`, 10)
	// Body runs at least once even when the condition is false.
	expect(t, `
int main() {
	int n = 0;
	do { n = n + 1; } while (0);
	return n;
}`, 1)
}

func TestForLoop(t *testing.T) {
	expect(t, `
int main() {
	int i;
	int sum = 0;
	for (i = 1; i <= 5; i = i + 1) { sum = sum + i * i; }
	return sum;
}`, 55)
}

func TestNestedLoops(t *testing.T) {
	expect(t, `
int main() {
	int i; int j; int c = 0;
	for (i = 0; i < 4; i = i + 1) {
		for (j = 0; j < 5; j = j + 1) {
			c = c + 1;
		}
	}
	return c;
}`, 20)
}

func TestBreakContinue(t *testing.T) {
	expect(t, `
int main() {
	int i; int sum = 0;
	for (i = 0; i < 100; i = i + 1) {
		if (i == 10) { break; }
		if (i % 2 == 0) { continue; }
		sum = sum + i;
	}
	return sum;
}`, 1+3+5+7+9)
	expect(t, `
int main() {
	int i = 0; int n = 0;
	while (1) {
		i = i + 1;
		if (i > 5) { break; }
		n = n + i;
	}
	return n;
}`, 15)
}

func TestBreakInNestedLoopOnlyExitsInner(t *testing.T) {
	expect(t, `
int main() {
	int i; int j; int c = 0;
	for (i = 0; i < 3; i = i + 1) {
		for (j = 0; j < 10; j = j + 1) {
			if (j == 2) { break; }
			c = c + 1;
		}
	}
	return c;
}`, 6)
}

func TestGlobals(t *testing.T) {
	expect(t, `
int counter = 5;
int bump(int by) { counter = counter + by; return counter; }
int main() {
	bump(3);
	bump(2);
	return counter;
}`, 10)
}

func TestGlobalInitializerExpressions(t *testing.T) {
	expect(t, `
int a = 2 * 3 + 1;
int b = a * 10;
float c = b / 2;
int main() { return b + int(c); }`, 70+35)
}

func TestArrays(t *testing.T) {
	expect(t, `
int a[10];
int main() {
	int i;
	for (i = 0; i < 10; i = i + 1) { a[i] = i * i; }
	return a[7];
}`, 49)
	expect(t, `
int main() {
	float v[4];
	v[0] = 1.5;
	v[1] = 2.5;
	v[2] = v[0] + v[1];
	return int(v[2] * 2.0);
}`, 8)
}

func TestLocalArraysAreZeroed(t *testing.T) {
	expect(t, `
int main() {
	int a[5];
	return a[0] + a[4];
}`, 0)
}

func TestArrayIndexOutOfRangeTraps(t *testing.T) {
	prog, err := compile.Source(`
int a[4];
int main() { return a[9]; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := interp.Run(prog, interp.Options{}); err == nil {
		t.Fatal("expected out-of-range trap")
	}
}

func TestDivisionByZeroTraps(t *testing.T) {
	prog, err := compile.Source(`
int z = 0;
int main() { return 1 / z; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := interp.Run(prog, interp.Options{}); err == nil {
		t.Fatal("expected division trap")
	}
}

func TestRecursion(t *testing.T) {
	expect(t, `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }`, 144)
}

func TestMutualRecursion(t *testing.T) {
	// Forward references need no prototypes: the checker resolves all
	// function names in a first pass.
	expect(t, `
int isEven(int n) { if (n == 0) { return 1; } return isOdd(n - 1); }
int isOdd(int n) { if (n == 0) { return 0; } return isEven(n - 1); }
int main() { return isEven(10) * 10 + isOdd(7); }`, 11)
}

func TestVoidFunctions(t *testing.T) {
	expect(t, `
int acc = 0;
void add(int x) { acc = acc + x; if (x > 100) { return; } acc = acc + 1; }
int main() { add(1); add(200); return acc; }`, 1+1+200)
}

func TestFloatParamsAndResults(t *testing.T) {
	expect(t, `
float scale(float x, float s) { return x * s; }
int main() { return int(scale(3.0, 2.5)); }`, 7)
}

func TestManyParams(t *testing.T) {
	// More parameters than argument registers, mixing classes.
	expect(t, `
int many(int a, int b, int c, int d, int e, int f, float x, float y, float z) {
	return a + b + c + d + e + f + int(x + y + z);
}
int main() { return many(1, 2, 3, 4, 5, 6, 1.5, 2.5, 3.0); }`, 21+7)
}

func TestFallOffEndReturnsZero(t *testing.T) {
	expect(t, `int main() { int x = 5; x = x + 1; }`, 0)
}

func TestDeadCodeAfterReturn(t *testing.T) {
	expect(t, `
int main() {
	return 7;
	return 8;
}`, 7)
}

func TestShadowing(t *testing.T) {
	expect(t, `
int x = 100;
int main() {
	int x = 1;
	{
		int x = 2;
		{ x = x + 10; }
	}
	return x;
}`, 1)
}

func TestCastTruncation(t *testing.T) {
	expect(t, `int main() { return int(3.9); }`, 3)
	expect(t, `int main() { return int(-3.9); }`, -3)
	expect(t, `int main() { float f = 7; return int(f / 2.0); }`, 3)
}

func TestCallArgumentPromotion(t *testing.T) {
	expect(t, `
float half(float x) { return x / 2.0; }
int main() { return int(half(9)); }`, 4)
}

func TestIRIsValid(t *testing.T) {
	// A program exercising every lowering path must produce valid IR.
	src := `
int g = 3;
float gf = 1.5;
int data[16];
float fdata[8];
int helper(int a, float b) { return a + int(b); }
void side(int x) { g = g + x; }
int main() {
	int i;
	float acc = 0.0;
	for (i = 0; i < 16; i = i + 1) {
		data[i] = helper(i, gf) + g;
		if (i % 3 == 0 && i > 2) { continue; }
		if (i > 12 || data[i] < 0) { break; }
		acc = acc + float(data[i]);
	}
	do { side(1); } while (g < 10);
	while (g < 20) { g = g + 3; }
	fdata[0] = acc;
	return int(fdata[0]) + g;
}`
	prog, err := compile.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("invalid IR: %v\n%s", err, prog)
	}
	// All blocks must be reachable after pruning.
	for _, fn := range prog.Funcs {
		g := reachable(fn)
		for id := range fn.Blocks {
			if !g[id] {
				t.Errorf("%s: block b%d unreachable after pruning", fn.Name, id)
			}
		}
	}
}

func reachable(fn *ir.Func) []bool {
	seen := make([]bool, len(fn.Blocks))
	seen[0] = true
	work := []int{0}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range fn.Blocks[b].Succs() {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

func TestRetargetPeepholeKeepsSemantics(t *testing.T) {
	// x = x + 1 style updates exercise the retargeting peephole.
	expect(t, `
int main() {
	int x = 1;
	x = x + 1;
	x = x * x;
	int y = x;
	y = y - x / 2;
	return y * 10 + x;
}`, 24)
}

func TestProfileCounts(t *testing.T) {
	prog, err := compile.Source(`
int work(int n) { return n * 2; }
int main() {
	int i; int s = 0;
	for (i = 0; i < 7; i = i + 1) { s = s + work(i); }
	return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(prog, interp.Options{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.RetInt != 42 {
		t.Fatalf("result = %d, want 42", res.RetInt)
	}
	if got := res.Profile.Entries["work"]; got != 7 {
		t.Errorf("work entries = %v, want 7", got)
	}
	if got := res.Profile.Entries["main"]; got != 1 {
		t.Errorf("main entries = %v, want 1", got)
	}
	// Entry block of main runs exactly once.
	if got := res.Profile.Blocks["main"][0]; got != 1 {
		t.Errorf("main entry block count = %v, want 1", got)
	}
}

func TestStepLimit(t *testing.T) {
	prog, err := compile.Source(`int main() { while (1) { } return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = interp.Run(prog, interp.Options{MaxSteps: 1000})
	if err != interp.ErrStepLimit {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	prog, err := compile.Source(`
int down(int n) { return down(n + 1); }
int main() { return down(0); }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := interp.Run(prog, interp.Options{}); err == nil {
		t.Fatal("expected call depth error")
	}
}
