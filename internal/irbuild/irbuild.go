// Package irbuild lowers a type-checked MC AST into the IR of package
// ir. Scalar locals and parameters become virtual registers; global
// scalars and all arrays become memory symbols accessed with explicit
// loads and stores, which is how the register-allocation problem the
// paper studies is set up: every scalar computation value is a live
// range competing for registers.
package irbuild

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/token"
	"repro/internal/types"
)

// Build lowers prog to IR. The info must come from a successful
// types.Check of the same program.
func Build(prog *ast.Program, info *types.Info) (*ir.Program, error) {
	b := &builder{
		info:    info,
		out:     &ir.Program{},
		symbols: make(map[*types.Object]*ir.Symbol),
	}
	if err := b.globals(prog); err != nil {
		return nil, err
	}
	for _, fd := range prog.Funcs {
		if err := b.function(fd); err != nil {
			return nil, err
		}
	}
	if err := b.out.Validate(); err != nil {
		return nil, fmt.Errorf("irbuild produced invalid IR: %w", err)
	}
	return b.out, nil
}

type builder struct {
	info    *types.Info
	out     *ir.Program
	symbols map[*types.Object]*ir.Symbol

	// Per-function state.
	fn    *ir.Func
	cur   *ir.Block
	vars  map[*types.Object]ir.Reg
	loops []loopCtx
	// exprTemps tracks registers created while lowering the current
	// top-level expression, enabling the retargeting peephole that
	// avoids a move for "x = a + b".
	exprTemps map[ir.Reg]bool
}

type loopCtx struct {
	breakTo    int
	continueTo int
}

func classOf(t ast.BaseType) ir.Class {
	if t == ast.FloatType {
		return ir.ClassFloat
	}
	return ir.ClassInt
}

// ---------------------------------------------------------------------
// Globals

func (b *builder) globals(prog *ast.Program) error {
	vals := make(map[*types.Object]constVal)
	for _, g := range prog.Globals {
		obj := b.info.Objects[g]
		if obj == nil {
			return fmt.Errorf("missing object for global %s", g.Name)
		}
		sym := &ir.Symbol{
			Name:  g.Name,
			Class: classOf(g.Type.Base),
			Size:  g.Type.ArrayLen,
		}
		if g.Init != nil {
			v, err := b.evalConst(g.Init, vals)
			if err != nil {
				return err
			}
			v = v.convert(classOf(g.Type.Base))
			sym.InitInt = v.i
			sym.InitFloat = v.f
			vals[obj] = v
		} else {
			vals[obj] = constVal{class: sym.Class}
		}
		b.symbols[obj] = sym
		b.out.Globals = append(b.out.Globals, sym)
	}
	return nil
}

// constVal is a compile-time constant for global initializers.
type constVal struct {
	class ir.Class
	i     int64
	f     float64
}

func (v constVal) convert(to ir.Class) constVal {
	if v.class == to {
		return v
	}
	if to == ir.ClassFloat {
		return constVal{class: to, f: float64(v.i)}
	}
	return constVal{class: to, i: int64(v.f)}
}

func (b *builder) evalConst(e ast.Expr, vals map[*types.Object]constVal) (constVal, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return constVal{class: ir.ClassInt, i: e.Value}, nil
	case *ast.FloatLit:
		return constVal{class: ir.ClassFloat, f: e.Value}, nil
	case *ast.Ident:
		obj := b.info.Uses[e]
		if v, ok := vals[obj]; ok {
			return v, nil
		}
		return constVal{}, fmt.Errorf("%s: global initializer references %s before its definition", e.Pos(), e.Name)
	case *ast.UnaryExpr:
		v, err := b.evalConst(e.X, vals)
		if err != nil {
			return constVal{}, err
		}
		switch e.Op {
		case token.MINUS:
			if v.class == ir.ClassFloat {
				return constVal{class: v.class, f: -v.f}, nil
			}
			return constVal{class: v.class, i: -v.i}, nil
		case token.NOT:
			if v.i == 0 {
				return constVal{class: ir.ClassInt, i: 1}, nil
			}
			return constVal{class: ir.ClassInt, i: 0}, nil
		}
	case *ast.CastExpr:
		v, err := b.evalConst(e.X, vals)
		if err != nil {
			return constVal{}, err
		}
		return v.convert(classOf(e.To)), nil
	case *ast.BinaryExpr:
		x, err := b.evalConst(e.X, vals)
		if err != nil {
			return constVal{}, err
		}
		y, err := b.evalConst(e.Y, vals)
		if err != nil {
			return constVal{}, err
		}
		return constBinary(e, x, y)
	}
	return constVal{}, fmt.Errorf("%s: unsupported expression in global initializer", e.Pos())
}

func constBinary(e *ast.BinaryExpr, x, y constVal) (constVal, error) {
	isFloat := x.class == ir.ClassFloat || y.class == ir.ClassFloat
	boolVal := func(ok bool) (constVal, error) {
		if ok {
			return constVal{class: ir.ClassInt, i: 1}, nil
		}
		return constVal{class: ir.ClassInt, i: 0}, nil
	}
	if isFloat {
		xf, yf := x.convert(ir.ClassFloat).f, y.convert(ir.ClassFloat).f
		switch e.Op {
		case token.PLUS:
			return constVal{class: ir.ClassFloat, f: xf + yf}, nil
		case token.MINUS:
			return constVal{class: ir.ClassFloat, f: xf - yf}, nil
		case token.STAR:
			return constVal{class: ir.ClassFloat, f: xf * yf}, nil
		case token.SLASH:
			if yf == 0 {
				return constVal{}, fmt.Errorf("%s: division by zero in global initializer", e.Pos())
			}
			return constVal{class: ir.ClassFloat, f: xf / yf}, nil
		case token.EQ:
			return boolVal(xf == yf)
		case token.NE:
			return boolVal(xf != yf)
		case token.LT:
			return boolVal(xf < yf)
		case token.LE:
			return boolVal(xf <= yf)
		case token.GT:
			return boolVal(xf > yf)
		case token.GE:
			return boolVal(xf >= yf)
		}
		return constVal{}, fmt.Errorf("%s: invalid float operator in global initializer", e.Pos())
	}
	xi, yi := x.i, y.i
	switch e.Op {
	case token.PLUS:
		return constVal{class: ir.ClassInt, i: xi + yi}, nil
	case token.MINUS:
		return constVal{class: ir.ClassInt, i: xi - yi}, nil
	case token.STAR:
		return constVal{class: ir.ClassInt, i: xi * yi}, nil
	case token.SLASH:
		if yi == 0 {
			return constVal{}, fmt.Errorf("%s: division by zero in global initializer", e.Pos())
		}
		return constVal{class: ir.ClassInt, i: xi / yi}, nil
	case token.PERCENT:
		if yi == 0 {
			return constVal{}, fmt.Errorf("%s: division by zero in global initializer", e.Pos())
		}
		return constVal{class: ir.ClassInt, i: xi % yi}, nil
	case token.EQ:
		return boolVal(xi == yi)
	case token.NE:
		return boolVal(xi != yi)
	case token.LT:
		return boolVal(xi < yi)
	case token.LE:
		return boolVal(xi <= yi)
	case token.GT:
		return boolVal(xi > yi)
	case token.GE:
		return boolVal(xi >= yi)
	case token.AND:
		return boolVal(xi != 0 && yi != 0)
	case token.OR:
		return boolVal(xi != 0 || yi != 0)
	}
	return constVal{}, fmt.Errorf("%s: invalid operator in global initializer", e.Pos())
}

// ---------------------------------------------------------------------
// Functions

func (b *builder) function(fd *ast.FuncDecl) error {
	fn := &ir.Func{Name: fd.Name}
	if fd.Result != ast.VoidType {
		fn.HasResult = true
		fn.ResultClass = classOf(fd.Result)
	}
	b.fn = fn
	b.vars = make(map[*types.Object]ir.Reg)
	b.loops = b.loops[:0]
	b.cur = fn.NewBlock()

	for _, p := range fd.Params {
		obj := b.info.Objects[p]
		r := fn.NewReg(classOf(p.Type), p.Name)
		fn.Params = append(fn.Params, r)
		b.vars[obj] = r
	}

	b.stmtList(fd.Body.List)

	// Fall-off-the-end: supply an implicit return.
	if b.cur.Terminator() == nil {
		b.implicitReturn()
	}
	b.pruneUnreachable()
	b.out.AddFunc(fn)
	return nil
}

func (b *builder) implicitReturn() {
	if !b.fn.HasResult {
		b.emit(ir.Instr{Op: ir.OpRet, Dst: ir.NoReg})
		return
	}
	z := b.zero(b.fn.ResultClass)
	b.emit(ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, Args: []ir.Reg{z}})
}

func (b *builder) zero(c ir.Class) ir.Reg {
	t := b.temp(c)
	if c == ir.ClassFloat {
		b.emit(ir.Instr{Op: ir.OpConstFloat, Dst: t})
	} else {
		b.emit(ir.Instr{Op: ir.OpConstInt, Dst: t})
	}
	return t
}

func (b *builder) emit(in ir.Instr) {
	if in.Args == nil {
		in.Args = []ir.Reg{}
	}
	b.cur.Instrs = append(b.cur.Instrs, in)
}

func (b *builder) temp(c ir.Class) ir.Reg {
	r := b.fn.NewReg(c, "")
	if b.exprTemps != nil {
		b.exprTemps[r] = true
	}
	return r
}

// startBlock makes a fresh block current. The caller is responsible for
// having terminated the previous one (or accepting that it becomes
// unreachable and is pruned).
func (b *builder) startBlock() *ir.Block {
	blk := b.fn.NewBlock()
	b.cur = blk
	return blk
}

// jumpTo terminates the current block with a jump to target if it is not
// already terminated.
func (b *builder) jumpTo(target int) {
	if b.cur.Terminator() == nil {
		b.emit(ir.Instr{Op: ir.OpJmp, Dst: ir.NoReg, Then: target})
	}
}

// ---------------------------------------------------------------------
// Statements

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.DeclStmt:
		b.declStmt(s.Decl)
	case *ast.AssignStmt:
		b.assign(s)
	case *ast.ExprStmt:
		b.exprStmtValue(s.X)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.WhileStmt:
		b.whileStmt(s)
	case *ast.DoWhileStmt:
		b.doWhileStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.ReturnStmt:
		b.returnStmt(s)
	case *ast.BreakStmt:
		if len(b.loops) > 0 {
			loopIdx := len(b.loops) - 1
			if b.cur.Terminator() == nil {
				b.emit(ir.Instr{Op: ir.OpJmp, Dst: ir.NoReg, Then: breakSentinel - loopIdx})
			}
			b.startBlock()
		}
	case *ast.ContinueStmt:
		if len(b.loops) > 0 {
			b.jumpTo(b.loops[len(b.loops)-1].continueTo)
			b.startBlock()
		}
	}
}

func (b *builder) returnStmt(s *ast.ReturnStmt) {
	if s.Value == nil || !b.fn.HasResult {
		b.emit(ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, Pos: s.Pos()})
	} else {
		v := b.exprValue(s.Value, b.fn.ResultClass)
		b.emit(ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, Args: []ir.Reg{v}, Pos: s.Pos()})
	}
	// Code following a return in the same block is unreachable; give it
	// a fresh block that pruning will remove if it stays empty.
	b.startBlock()
}

func (b *builder) declStmt(d *ast.VarDecl) {
	obj := b.info.Objects[d]
	if d.Type.IsArray() {
		sym := &ir.Symbol{
			Name:  fmt.Sprintf("%s.%s.%d", b.fn.Name, d.Name, len(b.fn.Locals)),
			Class: classOf(d.Type.Base),
			Size:  d.Type.ArrayLen,
			Local: true,
		}
		b.fn.Locals = append(b.fn.Locals, sym)
		b.symbols[obj] = sym
		return
	}
	r := b.fn.NewReg(classOf(d.Type.Base), d.Name)
	b.vars[obj] = r
	if d.Init != nil {
		b.exprInto(r, d.Init, classOf(d.Type.Base))
	} else {
		// MC gives locals a defined zero value, keeping the language
		// deterministic for differential testing.
		if classOf(d.Type.Base) == ir.ClassFloat {
			b.emit(ir.Instr{Op: ir.OpConstFloat, Dst: r})
		} else {
			b.emit(ir.Instr{Op: ir.OpConstInt, Dst: r})
		}
	}
}

func (b *builder) assign(s *ast.AssignStmt) {
	obj := b.info.Uses[s.Target]
	if obj == nil {
		return // checker already reported
	}
	targetClass := classOf(obj.Type.Base)
	if s.Target.Index != nil {
		sym := b.symbols[obj]
		idx := b.exprValue(s.Target.Index, ir.ClassInt)
		val := b.exprValue(s.Value, targetClass)
		b.emit(ir.Instr{Op: ir.OpStore, Dst: ir.NoReg, Sym: sym, Args: []ir.Reg{idx, val}, Pos: s.Target.Pos()})
		return
	}
	switch obj.Kind {
	case types.GlobalVar:
		sym := b.symbols[obj]
		val := b.exprValue(s.Value, targetClass)
		b.emit(ir.Instr{Op: ir.OpStore, Dst: ir.NoReg, Sym: sym, Args: []ir.Reg{val}, Pos: s.Target.Pos()})
	default:
		r := b.vars[obj]
		b.exprInto(r, s.Value, targetClass)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	cond := b.exprValue(s.Cond, ir.ClassInt)
	condBlock := b.cur
	condIdx := len(condBlock.Instrs)
	b.emit(ir.Instr{Op: ir.OpBr, Dst: ir.NoReg, Args: []ir.Reg{cond}})

	thenBlk := b.startBlock()
	b.stmtList(s.Then.List)
	thenEnd := b.cur

	var elseBlk *ir.Block
	var elseEnd *ir.Block
	if s.Else != nil {
		elseBlk = b.startBlock()
		b.stmt(s.Else)
		elseEnd = b.cur
	}

	join := b.startBlock()
	condBlock.Instrs[condIdx].Then = thenBlk.ID
	if elseBlk != nil {
		condBlock.Instrs[condIdx].Else = elseBlk.ID
	} else {
		condBlock.Instrs[condIdx].Else = join.ID
	}
	terminateInto := func(blk *ir.Block) {
		if blk.Terminator() == nil {
			blk.Instrs = append(blk.Instrs, ir.Instr{Op: ir.OpJmp, Dst: ir.NoReg, Args: []ir.Reg{}, Then: join.ID})
		}
	}
	terminateInto(thenEnd)
	if elseEnd != nil {
		terminateInto(elseEnd)
	}
}

func (b *builder) whileStmt(s *ast.WhileStmt) {
	condBlk := b.fn.NewBlock()
	b.jumpTo(condBlk.ID)
	b.cur = condBlk
	cond := b.exprValue(s.Cond, ir.ClassInt)
	condEnd := b.cur
	brIdx := len(condEnd.Instrs)
	b.emit(ir.Instr{Op: ir.OpBr, Dst: ir.NoReg, Args: []ir.Reg{cond}})

	body := b.startBlock()
	b.loops = append(b.loops, loopCtx{breakTo: -1, continueTo: condBlk.ID})
	loopIdx := len(b.loops) - 1
	b.stmtList(s.Body.List)
	b.jumpTo(condBlk.ID)

	exit := b.startBlock()
	condEnd.Instrs[brIdx].Then = body.ID
	condEnd.Instrs[brIdx].Else = exit.ID
	b.patchBreaks(loopIdx, exit.ID)
	b.loops = b.loops[:loopIdx]
}

func (b *builder) doWhileStmt(s *ast.DoWhileStmt) {
	body := b.fn.NewBlock()
	b.jumpTo(body.ID)
	b.cur = body

	condBlk := b.fn.NewBlock()
	b.loops = append(b.loops, loopCtx{breakTo: -1, continueTo: condBlk.ID})
	loopIdx := len(b.loops) - 1
	b.stmtList(s.Body.List)
	b.jumpTo(condBlk.ID)

	b.cur = condBlk
	cond := b.exprValue(s.Cond, ir.ClassInt)
	condEnd := b.cur
	brIdx := len(condEnd.Instrs)
	b.emit(ir.Instr{Op: ir.OpBr, Dst: ir.NoReg, Args: []ir.Reg{cond}})

	exit := b.startBlock()
	condEnd.Instrs[brIdx].Then = body.ID
	condEnd.Instrs[brIdx].Else = exit.ID
	b.patchBreaks(loopIdx, exit.ID)
	b.loops = b.loops[:loopIdx]
}

func (b *builder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.assign(s.Init)
	}
	condBlk := b.fn.NewBlock()
	b.jumpTo(condBlk.ID)
	b.cur = condBlk

	var condEnd *ir.Block
	brIdx := -1
	if s.Cond != nil {
		cond := b.exprValue(s.Cond, ir.ClassInt)
		condEnd = b.cur
		brIdx = len(condEnd.Instrs)
		b.emit(ir.Instr{Op: ir.OpBr, Dst: ir.NoReg, Args: []ir.Reg{cond}})
	}

	body := b.startBlock()
	if s.Cond == nil {
		// condBlk just falls through to body.
		condBlk.Instrs = append(condBlk.Instrs, ir.Instr{Op: ir.OpJmp, Dst: ir.NoReg, Args: []ir.Reg{}, Then: body.ID})
	}

	// The post block is the continue target.
	postBlk := b.fn.NewBlock()
	b.loops = append(b.loops, loopCtx{breakTo: -1, continueTo: postBlk.ID})
	loopIdx := len(b.loops) - 1
	b.stmtList(s.Body.List)
	b.jumpTo(postBlk.ID)

	b.cur = postBlk
	if s.Post != nil {
		b.assign(s.Post)
	}
	b.jumpTo(condBlk.ID)

	exit := b.startBlock()
	if brIdx >= 0 {
		condEnd.Instrs[brIdx].Then = body.ID
		condEnd.Instrs[brIdx].Else = exit.ID
	}
	b.patchBreaks(loopIdx, exit.ID)
	b.loops = b.loops[:loopIdx]
}

// patchBreaks rewires the placeholder jumps emitted for break statements
// of loop loopIdx to the loop's exit block. Break jumps are emitted with
// target breakTo==-1 recorded in the loop context; since the exit block
// does not exist while the body is being lowered, break emits a jump to
// a sentinel that is fixed here.
func (b *builder) patchBreaks(loopIdx, exitID int) {
	for _, blk := range b.fn.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			if in.Op == ir.OpJmp && in.Then == breakSentinel-loopIdx {
				in.Then = exitID
			}
		}
	}
}

// breakSentinel encodes "break from loop i" as the out-of-range block id
// breakSentinel-i until patched.
const breakSentinel = -1000
