package irbuild

import (
	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/token"
	"repro/internal/types"
)

// exprValue lowers e and returns a register of class want, inserting a
// conversion when the expression's own class differs.
func (b *builder) exprValue(e ast.Expr, want ir.Class) ir.Reg {
	outer := b.exprTemps == nil
	if outer {
		b.exprTemps = make(map[ir.Reg]bool)
		defer func() { b.exprTemps = nil }()
	}
	r := b.lower(e)
	return b.convert(r, want, e)
}

// exprInto lowers e into the existing register dst (of class want).
// When possible it retargets the instruction that produced the value,
// avoiding a move; otherwise it emits an explicit move. The moves that
// remain are exactly the copies the framework's coalescing phase exists
// to remove.
func (b *builder) exprInto(dst ir.Reg, e ast.Expr, want ir.Class) {
	outer := b.exprTemps == nil
	if outer {
		b.exprTemps = make(map[ir.Reg]bool)
		defer func() { b.exprTemps = nil }()
	}
	r := b.lower(e)
	r = b.convert(r, want, e)
	if b.retarget(r, dst) {
		return
	}
	b.emit(ir.Instr{Op: ir.OpMove, Dst: dst, Args: []ir.Reg{r}, Pos: e.Pos()})
}

// retarget rewrites the defining instruction of r to write dst instead,
// when r is a temporary defined by the last instruction of the current
// block. It reports whether it succeeded.
func (b *builder) retarget(r, dst ir.Reg) bool {
	if !b.exprTemps[r] || len(b.cur.Instrs) == 0 {
		return false
	}
	last := &b.cur.Instrs[len(b.cur.Instrs)-1]
	if last.Dst != r {
		return false
	}
	last.Dst = dst
	return true
}

// exprStmtValue lowers a top-level expression statement (a call).
func (b *builder) exprStmtValue(e ast.Expr) {
	b.exprTemps = make(map[ir.Reg]bool)
	defer func() { b.exprTemps = nil }()
	if call, ok := e.(*ast.CallExpr); ok {
		b.lowerCall(call, false)
		return
	}
	b.lower(e)
}

// convert inserts an int<->float conversion when needed.
func (b *builder) convert(r ir.Reg, want ir.Class, e ast.Expr) ir.Reg {
	have := b.fn.RegClass(r)
	if have == want {
		return r
	}
	t := b.temp(want)
	op := ir.OpI2F
	if want == ir.ClassInt {
		op = ir.OpF2I
	}
	b.emit(ir.Instr{Op: op, Dst: t, Args: []ir.Reg{r}, Pos: e.Pos()})
	return t
}

func (b *builder) lower(e ast.Expr) ir.Reg {
	switch e := e.(type) {
	case *ast.IntLit:
		t := b.temp(ir.ClassInt)
		b.emit(ir.Instr{Op: ir.OpConstInt, Dst: t, IntVal: e.Value, Pos: e.Pos()})
		return t
	case *ast.FloatLit:
		t := b.temp(ir.ClassFloat)
		b.emit(ir.Instr{Op: ir.OpConstFloat, Dst: t, FloatVal: e.Value, Pos: e.Pos()})
		return t
	case *ast.Ident:
		obj := b.info.Uses[e]
		if obj.Kind == types.GlobalVar {
			sym := b.symbols[obj]
			t := b.temp(sym.Class)
			b.emit(ir.Instr{Op: ir.OpLoad, Dst: t, Sym: sym, Pos: e.Pos()})
			return t
		}
		return b.vars[obj]
	case *ast.IndexExpr:
		obj := b.info.Uses[e]
		sym := b.symbols[obj]
		idx := b.lowerTo(e.Index, ir.ClassInt)
		t := b.temp(sym.Class)
		b.emit(ir.Instr{Op: ir.OpLoad, Dst: t, Sym: sym, Args: []ir.Reg{idx}, Pos: e.Pos()})
		return t
	case *ast.CallExpr:
		return b.lowerCall(e, true)
	case *ast.CastExpr:
		r := b.lower(e.X)
		return b.convert(r, classOf(e.To), e)
	case *ast.UnaryExpr:
		return b.lowerUnary(e)
	case *ast.BinaryExpr:
		return b.lowerBinary(e)
	}
	// Unreachable for type-checked programs; produce a defined value.
	t := b.temp(ir.ClassInt)
	b.emit(ir.Instr{Op: ir.OpConstInt, Dst: t})
	return t
}

// lowerTo lowers e and converts to class want.
func (b *builder) lowerTo(e ast.Expr, want ir.Class) ir.Reg {
	return b.convert(b.lower(e), want, e)
}

func (b *builder) lowerCall(e *ast.CallExpr, wantResult bool) ir.Reg {
	obj := b.info.Uses[e]
	sig := obj.Sig
	args := make([]ir.Reg, 0, len(e.Args))
	for i, a := range e.Args {
		want := ir.ClassInt
		if i < len(sig.Params) {
			want = classOf(sig.Params[i])
		}
		args = append(args, b.lowerTo(a, want))
	}
	dst := ir.NoReg
	if wantResult && sig.Result != ast.VoidType {
		dst = b.temp(classOf(sig.Result))
	}
	b.emit(ir.Instr{Op: ir.OpCall, Dst: dst, Callee: e.Name, Args: args, Pos: e.Pos()})
	if dst == ir.NoReg && wantResult {
		// Void call in value position — checker reported it; recover.
		z := b.temp(ir.ClassInt)
		b.emit(ir.Instr{Op: ir.OpConstInt, Dst: z})
		return z
	}
	return dst
}

func (b *builder) lowerUnary(e *ast.UnaryExpr) ir.Reg {
	switch e.Op {
	case token.MINUS:
		x := b.lower(e.X)
		c := b.fn.RegClass(x)
		t := b.temp(c)
		op := ir.OpNeg
		if c == ir.ClassFloat {
			op = ir.OpFNeg
		}
		b.emit(ir.Instr{Op: op, Dst: t, Args: []ir.Reg{x}, Pos: e.Pos()})
		return t
	case token.NOT:
		x := b.lowerTo(e.X, ir.ClassInt)
		z := b.zero(ir.ClassInt)
		t := b.temp(ir.ClassInt)
		b.emit(ir.Instr{Op: ir.OpICmp, Cond: ir.CondEQ, Dst: t, Args: []ir.Reg{x, z}, Pos: e.Pos()})
		return t
	}
	return b.lower(e.X)
}

func (b *builder) lowerBinary(e *ast.BinaryExpr) ir.Reg {
	switch e.Op {
	case token.AND, token.OR:
		return b.lowerShortCircuit(e)
	}
	xt := b.info.Types[e.X]
	yt := b.info.Types[e.Y]
	isFloat := xt == ast.FloatType || yt == ast.FloatType
	operand := ir.ClassInt
	if isFloat {
		operand = ir.ClassFloat
	}
	x := b.lowerTo(e.X, operand)
	y := b.lowerTo(e.Y, operand)

	if cond, isCmp := cmpCond(e.Op); isCmp {
		t := b.temp(ir.ClassInt)
		op := ir.OpICmp
		if isFloat {
			op = ir.OpFCmp
		}
		b.emit(ir.Instr{Op: op, Cond: cond, Dst: t, Args: []ir.Reg{x, y}, Pos: e.Pos()})
		return t
	}

	t := b.temp(operand)
	var op ir.Op
	switch e.Op {
	case token.PLUS:
		op = ir.OpAdd
	case token.MINUS:
		op = ir.OpSub
	case token.STAR:
		op = ir.OpMul
	case token.SLASH:
		op = ir.OpDiv
	case token.PERCENT:
		op = ir.OpRem
	default:
		op = ir.OpAdd
	}
	if isFloat {
		switch op {
		case ir.OpAdd:
			op = ir.OpFAdd
		case ir.OpSub:
			op = ir.OpFSub
		case ir.OpMul:
			op = ir.OpFMul
		case ir.OpDiv:
			op = ir.OpFDiv
		}
	}
	b.emit(ir.Instr{Op: op, Dst: t, Args: []ir.Reg{x, y}, Pos: e.Pos()})
	return t
}

func cmpCond(k token.Kind) (ir.Cond, bool) {
	switch k {
	case token.EQ:
		return ir.CondEQ, true
	case token.NE:
		return ir.CondNE, true
	case token.LT:
		return ir.CondLT, true
	case token.LE:
		return ir.CondLE, true
	case token.GT:
		return ir.CondGT, true
	case token.GE:
		return ir.CondGE, true
	}
	return 0, false
}

// lowerShortCircuit lowers && and || with control flow, preserving C
// semantics (the right operand is evaluated only when needed). The
// result register is 0 or 1.
func (b *builder) lowerShortCircuit(e *ast.BinaryExpr) ir.Reg {
	// The result register must not be an expression temp of the current
	// block for retargeting purposes: it is defined in two blocks.
	result := b.fn.NewReg(ir.ClassInt, "")

	x := b.lowerTo(e.X, ir.ClassInt)
	firstEnd := b.cur
	brIdx := len(firstEnd.Instrs)
	b.emit(ir.Instr{Op: ir.OpBr, Dst: ir.NoReg, Args: []ir.Reg{x}, Pos: e.Pos()})

	// rhs block: result = (y != 0)
	rhs := b.startBlock()
	y := b.lowerTo(e.Y, ir.ClassInt)
	z := b.zero(ir.ClassInt)
	b.emit(ir.Instr{Op: ir.OpICmp, Cond: ir.CondNE, Dst: result, Args: []ir.Reg{y, z}, Pos: e.Pos()})
	rhsEnd := b.cur
	rhsJmpIdx := len(rhsEnd.Instrs)
	b.emit(ir.Instr{Op: ir.OpJmp, Dst: ir.NoReg})

	// short block: result = 0 (for &&) or 1 (for ||)
	short := b.startBlock()
	shortVal := int64(0)
	if e.Op == token.OR {
		shortVal = 1
	}
	b.emit(ir.Instr{Op: ir.OpConstInt, Dst: result, IntVal: shortVal, Pos: e.Pos()})
	shortJmpIdx := len(b.cur.Instrs)
	b.emit(ir.Instr{Op: ir.OpJmp, Dst: ir.NoReg})
	shortEnd := b.cur

	join := b.startBlock()
	if e.Op == token.AND {
		firstEnd.Instrs[brIdx].Then = rhs.ID
		firstEnd.Instrs[brIdx].Else = short.ID
	} else {
		firstEnd.Instrs[brIdx].Then = short.ID
		firstEnd.Instrs[brIdx].Else = rhs.ID
	}
	rhsEnd.Instrs[rhsJmpIdx].Then = join.ID
	shortEnd.Instrs[shortJmpIdx].Then = join.ID
	return result
}

// pruneUnreachable removes blocks not reachable from the entry block and
// renumbers the rest, fixing branch targets. Lowering of break/return
// inside nested control flow can leave empty unreachable blocks behind.
func (b *builder) pruneUnreachable() {
	f := b.fn
	// Unterminated unreachable blocks would fail validation; terminate
	// them before reachability so Succs works, then drop them.
	for _, blk := range f.Blocks {
		if blk.Terminator() == nil {
			blk.Instrs = append(blk.Instrs, ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, Args: []ir.Reg{}})
			if f.HasResult {
				// Cannot synthesize a value here without a register;
				// mark unreachable returns as returning a fresh zero.
				blk.Instrs = blk.Instrs[:len(blk.Instrs)-1]
				z := f.NewReg(f.ResultClass, "")
				op := ir.OpConstInt
				if f.ResultClass == ir.ClassFloat {
					op = ir.OpConstFloat
				}
				blk.Instrs = append(blk.Instrs,
					ir.Instr{Op: op, Dst: z, Args: []ir.Reg{}},
					ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, Args: []ir.Reg{z}},
				)
			}
		}
	}
	reach := make([]bool, len(f.Blocks))
	stack := []int{0}
	reach[0] = true
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Blocks[id].Succs() {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	remap := make([]int, len(f.Blocks))
	var kept []*ir.Block
	for id, blk := range f.Blocks {
		if reach[id] {
			remap[id] = len(kept)
			blk.ID = len(kept)
			kept = append(kept, blk)
		} else {
			remap[id] = -1
		}
	}
	for _, blk := range kept {
		t := &blk.Instrs[len(blk.Instrs)-1]
		switch t.Op {
		case ir.OpJmp:
			t.Then = remap[t.Then]
		case ir.OpBr:
			t.Then = remap[t.Then]
			t.Else = remap[t.Else]
		}
	}
	f.Blocks = kept
}
