package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Server is a live introspection endpoint over a registry and a span
// recorder:
//
//	/metrics        registry snapshot (JSON; ?format=text for the
//	                Prometheus-flavored text form)
//	/spans          recent completed spans (JSON; ?format=flame for the
//	                indented flame-style tree)
//	/debug/pprof/   the standard net/http/pprof handlers
//
// It exists so long sweeps (cmd/experiments, rallocc -sweep) are
// inspectable mid-run: attach with -listen, then curl the endpoints or
// point `go tool pprof` at /debug/pprof/profile while the run is hot.
type Server struct {
	// Addr is the bound address, e.g. "127.0.0.1:43671" — useful when
	// listening on port 0.
	Addr string

	srv    *http.Server
	ln     net.Listener
	closed chan struct{}
}

// handlers serves the introspection endpoints for one (registry, span
// recorder) pair. It backs both the standalone Server and muxes that
// mount the endpoints next to their own (cmd/rallocd).
type handlers struct {
	reg   *Registry
	spans *SpanRecorder
}

// Register mounts the introspection endpoints — /metrics, /spans, and
// /debug/pprof/ — on mux, so servers with their own endpoints (e.g.
// cmd/rallocd) expose telemetry beside them. A nil reg serves the
// globally enabled registry (telemetry.Enable) as of each request; a
// nil spans serves an empty span list. The root index is not claimed;
// callers own "/".
func Register(mux *http.ServeMux, reg *Registry, spans *SpanRecorder) {
	h := &handlers{reg: reg, spans: spans}
	mux.HandleFunc("/metrics", h.handleMetrics)
	mux.HandleFunc("/spans", h.handleSpans)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Serve binds addr and starts serving introspection endpoints in a
// background goroutine. A nil reg serves the globally enabled registry
// (telemetry.Enable) as of each request; a nil spans serves an empty
// span list. Close shuts the server down.
func Serve(addr string, reg *Registry, spans *SpanRecorder) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{Addr: ln.Addr().String(), ln: ln, closed: make(chan struct{})}
	mux := http.NewServeMux()
	Register(mux, reg, spans)
	mux.HandleFunc("/", handleIndex)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		defer close(s.closed)
		s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	}()
	return s, nil
}

// Close stops the server and waits for the serve loop to exit.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.closed
	return err
}

// registry resolves the registry to expose: the one bound at Register,
// or the globally enabled one.
func (h *handlers) registry() *Registry {
	if h.reg != nil {
		return h.reg
	}
	if b := B(); b != nil {
		return b.Reg
	}
	return nil
}

func (h *handlers) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := h.registry()
	if reg == nil {
		http.Error(w, "telemetry disabled: no registry enabled", http.StatusServiceUnavailable)
		return
	}
	snap := reg.Snapshot()
	if wantsText(r) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		snap.WriteText(w) //nolint:errcheck // best-effort exposition
		return
	}
	w.Header().Set("Content-Type", "application/json")
	snap.WriteJSON(w) //nolint:errcheck // best-effort exposition
}

func (h *handlers) handleSpans(w http.ResponseWriter, r *http.Request) {
	if h.spans == nil {
		http.Error(w, "no span recorder attached", http.StatusServiceUnavailable)
		return
	}
	if r.URL.Query().Get("format") == "flame" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		h.spans.WriteFlame(w) //nolint:errcheck // best-effort exposition
		return
	}
	w.Header().Set("Content-Type", "application/json")
	h.spans.WriteJSON(w) //nolint:errcheck // best-effort exposition
}

func handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, "telemetry endpoints:\n"+
		"  /metrics              registry snapshot (JSON; ?format=text)\n"+
		"  /spans                recent spans (JSON; ?format=flame)\n"+
		"  /debug/pprof/         runtime profiles\n")
}

// wantsText reports whether the request prefers the text exposition.
func wantsText(r *http.Request) bool {
	if r.URL.Query().Get("format") == "text" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json")
}
