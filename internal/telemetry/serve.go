package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Server is a live introspection endpoint over a registry and a span
// recorder:
//
//	/metrics        registry snapshot (JSON; ?format=text for the
//	                Prometheus-flavored text form)
//	/spans          recent completed spans (JSON; ?format=flame for the
//	                indented flame-style tree)
//	/debug/pprof/   the standard net/http/pprof handlers
//
// It exists so long sweeps (cmd/experiments, rallocc -sweep) are
// inspectable mid-run: attach with -listen, then curl the endpoints or
// point `go tool pprof` at /debug/pprof/profile while the run is hot.
type Server struct {
	// Addr is the bound address, e.g. "127.0.0.1:43671" — useful when
	// listening on port 0.
	Addr string

	reg    *Registry
	spans  *SpanRecorder
	srv    *http.Server
	ln     net.Listener
	closed chan struct{}
}

// Serve binds addr and starts serving introspection endpoints in a
// background goroutine. A nil reg serves the globally enabled registry
// (telemetry.Enable) as of each request; a nil spans serves an empty
// span list. Close shuts the server down.
func Serve(addr string, reg *Registry, spans *SpanRecorder) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{Addr: ln.Addr().String(), reg: reg, spans: spans, ln: ln,
		closed: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/spans", s.handleSpans)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", s.handleIndex)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		defer close(s.closed)
		s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	}()
	return s, nil
}

// Close stops the server and waits for the serve loop to exit.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.closed
	return err
}

// registry resolves the registry to expose: the one bound at Serve, or
// the globally enabled one.
func (s *Server) registry() *Registry {
	if s.reg != nil {
		return s.reg
	}
	if b := B(); b != nil {
		return b.Reg
	}
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.registry()
	if reg == nil {
		http.Error(w, "telemetry disabled: no registry enabled", http.StatusServiceUnavailable)
		return
	}
	snap := reg.Snapshot()
	if wantsText(r) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		snap.WriteText(w) //nolint:errcheck // best-effort exposition
		return
	}
	w.Header().Set("Content-Type", "application/json")
	snap.WriteJSON(w) //nolint:errcheck // best-effort exposition
}

func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	if s.spans == nil {
		http.Error(w, "no span recorder attached", http.StatusServiceUnavailable)
		return
	}
	if r.URL.Query().Get("format") == "flame" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.spans.WriteFlame(w) //nolint:errcheck // best-effort exposition
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.spans.WriteJSON(w) //nolint:errcheck // best-effort exposition
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, "telemetry endpoints:\n"+
		"  /metrics              registry snapshot (JSON; ?format=text)\n"+
		"  /spans                recent spans (JSON; ?format=flame)\n"+
		"  /debug/pprof/         runtime profiles\n")
}

// wantsText reports whether the request prefers the text exposition.
func wantsText(r *http.Request) bool {
	if r.URL.Query().Get("format") == "text" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json")
}
