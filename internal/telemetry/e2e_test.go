// Live end-to-end test: a real allocation feeding the enabled
// registry and a span recorder, inspected over HTTP while the server
// is up. Lives in package telemetry_test so it can drive the public
// callcost API (package telemetry sits below the allocator).
package telemetry_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/benchprog"
	"repro/internal/experiments"
	"repro/internal/obs/obstest"
	"repro/internal/telemetry"
)

func httpGet(t *testing.T, url string) string {
	t.Helper()
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, body)
	}
	return string(body)
}

func TestLiveAllocationOverHTTP(t *testing.T) {
	defer telemetry.Disable()
	telemetry.Enable(nil)
	spans := telemetry.NewSpanRecorder(0)
	srv, err := telemetry.Serve("127.0.0.1:0", nil, spans)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	prog, err := callcost.Compile(benchprog.ByName("tomcatv").Source)
	if err != nil {
		t.Fatal(err)
	}
	opts := callcost.WithTracer(callcost.DefaultAllocOptions(), spans)
	if _, err := prog.AllocateWithOptions(callcost.ImprovedAll(),
		callcost.NewConfig(6, 4, 0, 0), prog.StaticFreq(), opts); err != nil {
		t.Fatal(err)
	}
	spans.Flush()

	var metrics struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, base+"/metrics")), &metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Counters["alloc_funcs_total"] == 0 || metrics.Counters["pass_runs_total"] == 0 {
		t.Fatalf("/metrics shows no allocation activity: %v", metrics.Counters)
	}
	if metrics.Counters["alloc_spilled_regs_total"] == 0 {
		t.Fatalf("tomcatv at (6,4,0,0) must spill: %v", metrics.Counters)
	}

	spansBody := httpGet(t, base+"/spans")
	for _, want := range []string{`"kind": "program"`, `"kind": "pass"`, `"name": "color"`} {
		if !strings.Contains(spansBody, want) {
			t.Errorf("/spans missing %s:\n%.400s", want, spansBody)
		}
	}
	flame := httpGet(t, base+"/spans?format=flame")
	if !strings.Contains(flame, "liveness") || !strings.Contains(flame, "allocation") {
		t.Errorf("flame view incomplete:\n%s", flame)
	}
	if body := httpGet(t, base+"/metrics?format=text"); !strings.Contains(body, "alloc_funcs_total") {
		t.Errorf("text exposition incomplete:\n%.200s", body)
	}
}

// TestLiveExperimentSweepOverHTTP drives a real experiments-registry
// sweep (Figure 2 — the same code path cmd/experiments -exp fig2 runs)
// with the introspection server up: /metrics, /spans, and pprof must
// all serve live data from the sweep. A JSONL sink rides alongside the
// span recorder so the span derivation can be cross-checked against
// the raw event stream, canonicalized with the shared obstest scrubber.
func TestLiveExperimentSweepOverHTTP(t *testing.T) {
	defer telemetry.Disable()
	telemetry.Enable(nil)
	spans := telemetry.NewSpanRecorder(1 << 17)
	srv, err := telemetry.Serve("127.0.0.1:0", nil, spans)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	var jsonl bytes.Buffer
	env := experiments.NewEnv()
	env.SetTracer(callcost.MultiSink(callcost.NewJSONLSink(&jsonl), spans))
	exp := experiments.ByID("fig2")
	if exp == nil {
		t.Fatal("fig2 experiment not registered")
	}
	var table bytes.Buffer
	if err := exp.Run(env, &table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "eqntott") {
		t.Fatalf("fig2 produced no table:\n%.200s", table.String())
	}
	spans.Flush()

	var metrics struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, base+"/metrics")), &metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Counters["alloc_funcs_total"] == 0 || metrics.Counters["alloc_rounds_total"] == 0 {
		t.Fatalf("/metrics shows no sweep activity: %v", metrics.Counters)
	}
	if !strings.Contains(httpGet(t, base+"/spans"), `"kind": "round"`) {
		t.Error("/spans has no round spans from the sweep")
	}
	if body := httpGet(t, base+"/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index not serving:\n%.200s", body)
	}

	// Cross-check the derived spans against the raw stream: one pass
	// span per phase_end event. Seq restarts at 1 for every program run
	// of the sweep, so it is scrubbed along with wall time.
	scrubbed := obstest.Scrub(t, jsonl.Bytes(), "dur_us", "seq")
	phaseEnds := strings.Count(scrubbed, `"kind":"phase_end"`)
	passSpans := 0
	for _, s := range spans.Spans() {
		if s.Kind == telemetry.SpanPass {
			passSpans++
		}
	}
	if phaseEnds == 0 || passSpans != phaseEnds {
		t.Errorf("span derivation out of sync with event stream: %d pass spans vs %d phase_end events",
			passSpans, phaseEnds)
	}
}
