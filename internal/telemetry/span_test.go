package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// emitRun feeds r a synthetic two-round allocation of fn.
func emitRun(r *SpanRecorder, fn string, rounds int) {
	for round := 0; round < rounds; round++ {
		for _, phase := range []string{obs.PhaseLiveness, obs.PhaseColor} {
			r.Emit(obs.Event{Kind: obs.KindPhaseStart, Fn: fn, Round: round, Phase: phase})
			r.Emit(obs.Event{Kind: obs.KindPhaseEnd, Fn: fn, Round: round, Phase: phase,
				Dur: time.Millisecond})
		}
	}
}

func TestSpanHierarchy(t *testing.T) {
	r := NewSpanRecorder(0)
	emitRun(r, "f", 2)
	emitRun(r, "g", 1)
	r.Flush()

	spans := r.Spans()
	byKind := map[string][]Span{}
	byID := map[uint64]Span{}
	for _, sp := range spans {
		byKind[sp.Kind] = append(byKind[sp.Kind], sp)
		byID[sp.ID] = sp
	}
	if n := len(byKind[SpanProgram]); n != 1 {
		t.Fatalf("program spans = %d, want 1", n)
	}
	if n := len(byKind[SpanFunction]); n != 2 {
		t.Fatalf("function spans = %d, want 2", n)
	}
	if n := len(byKind[SpanRound]); n != 3 {
		t.Fatalf("round spans = %d, want 3 (2 for f, 1 for g)", n)
	}
	if n := len(byKind[SpanPass]); n != 6 {
		t.Fatalf("pass spans = %d, want 6", n)
	}
	prog := byKind[SpanProgram][0]
	for _, fs := range byKind[SpanFunction] {
		if fs.Parent != prog.ID {
			t.Errorf("function %s parent = %d, want program %d", fs.Name, fs.Parent, prog.ID)
		}
	}
	for _, rs := range byKind[SpanRound] {
		parent, ok := byID[rs.Parent]
		if !ok || parent.Kind != SpanFunction || parent.Fn != rs.Fn {
			t.Errorf("round %q (fn %s) has wrong parent %+v", rs.Name, rs.Fn, parent)
		}
	}
	for _, ps := range byKind[SpanPass] {
		parent, ok := byID[ps.Parent]
		if !ok || parent.Kind != SpanRound || parent.Round != ps.Round {
			t.Errorf("pass %q has wrong parent %+v", ps.Name, parent)
		}
		if ps.Dur != time.Millisecond {
			t.Errorf("pass %q dur = %v, want the emitted 1ms", ps.Name, ps.Dur)
		}
	}
}

// TestSpanRecorderConcurrentFunctions is the parallel-allocation shape:
// many goroutines, one function each, interleaving into one recorder.
// Every function must still get a coherent span tree.
func TestSpanRecorderConcurrentFunctions(t *testing.T) {
	r := NewSpanRecorder(0)
	var wg sync.WaitGroup
	fns := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, fn := range fns {
		wg.Add(1)
		go func(fn string) {
			defer wg.Done()
			emitRun(r, fn, 3)
		}(fn)
	}
	wg.Wait()
	r.Flush()
	spans := r.Spans()
	rounds := map[string]int{}
	passes := map[string]int{}
	for _, sp := range spans {
		switch sp.Kind {
		case SpanRound:
			rounds[sp.Fn]++
		case SpanPass:
			passes[sp.Fn]++
		}
	}
	for _, fn := range fns {
		if rounds[fn] != 3 || passes[fn] != 6 {
			t.Errorf("fn %s: rounds=%d passes=%d, want 3/6", fn, rounds[fn], passes[fn])
		}
	}
}

func TestSpanRingEviction(t *testing.T) {
	r := NewSpanRecorder(4)
	emitRun(r, "f", 3) // 6 pass spans complete during the run
	r.Flush()
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want capacity 4", len(spans))
	}
	if r.Total() != 11 { // 6 passes + 3 rounds + 1 fn + 1 program
		t.Fatalf("total = %d, want 11", r.Total())
	}
	// The ring keeps the last spans to COMPLETE. Spans close leaf-first,
	// so the tail of a run is: last pass, last round, function, program.
	want := []string{SpanPass, SpanRound, SpanFunction, SpanProgram}
	for i, k := range want {
		if spans[i].Kind != k {
			t.Fatalf("ring[%d].Kind = %s, want %s (ring: %+v)", i, spans[i].Kind, k, spans)
		}
	}
}

func TestSpanJSONAndFlame(t *testing.T) {
	r := NewSpanRecorder(0)
	emitRun(r, "main", 1)
	r.Flush()

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Total uint64 `json:"total"`
		Spans []struct {
			Kind  string  `json:"kind"`
			Name  string  `json:"name"`
			DurUS float64 `json:"dur_us"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("span JSON invalid: %v\n%s", err, buf.String())
	}
	if doc.Total != 5 || len(doc.Spans) != 5 {
		t.Fatalf("total=%d spans=%d, want 5/5", doc.Total, len(doc.Spans))
	}

	buf.Reset()
	if err := r.WriteFlame(&buf); err != nil {
		t.Fatal(err)
	}
	flame := buf.String()
	for _, want := range []string{"allocation", "main", "round 0", obs.PhaseLiveness, obs.PhaseColor} {
		if !strings.Contains(flame, want) {
			t.Errorf("flame output missing %q:\n%s", want, flame)
		}
	}
	// The pass lines must be indented deeper than the function line.
	if !strings.Contains(flame, "      "+obs.PhaseLiveness) {
		t.Errorf("flame output not nested:\n%s", flame)
	}
}

func TestRecorderReusableAcrossRuns(t *testing.T) {
	r := NewSpanRecorder(0)
	emitRun(r, "f", 1)
	r.Flush()
	emitRun(r, "f", 1)
	r.Flush()
	programs := 0
	for _, sp := range r.Spans() {
		if sp.Kind == SpanProgram {
			programs++
		}
	}
	if programs != 2 {
		t.Fatalf("got %d program spans after two runs, want 2", programs)
	}
}
