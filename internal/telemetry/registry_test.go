package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c_total") != c {
		t.Fatal("same name must return the same handle")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got := h.Sum(); got != 1066.5 {
		t.Fatalf("sum = %g, want 1066.5", got)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("buckets = %v / %v", bounds, counts)
	}
	// le=1: {0.5, 1}; le=10: {5, 10}; le=100: {50}; +Inf: {1000}.
	want := []int64{2, 2, 1, 1}
	for i, n := range want {
		if counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, counts[i], n, counts)
		}
	}
}

func TestNilHandlesAreFreeNoOps(t *testing.T) {
	var (
		r *Registry
		c *Counter
		g *Gauge
		h *Histogram
	)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		c.Inc()
		g.Set(3)
		g.Add(1)
		h.Observe(2)
		if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
			t.Fatal("nil registry must hand out nil instruments")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil-handle operations allocated %v per run, want 0", allocs)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
}

// TestDisabledGlobalPathZeroAlloc pins the telemetry-disabled contract:
// the guard every instrumentation site uses — one atomic load of the
// global bundle, nil-check, skip — allocates nothing and mutates
// nothing.
func TestDisabledGlobalPathZeroAlloc(t *testing.T) {
	Disable()
	allocs := testing.AllocsPerRun(1000, func() {
		if b := B(); b != nil {
			b.AllocFuncs.Inc()
		}
		b := B()
		b.PhaseDur(obs.PhaseColor).Observe(1)
		b.PhaseDur("custom-pass").Observe(1)
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry path allocated %v per run, want 0", allocs)
	}
}

func TestEnableDisableSwapsBundle(t *testing.T) {
	defer Disable()
	b := Enable(nil)
	if B() != b {
		t.Fatal("B() must return the enabled bundle")
	}
	b.AllocFuncs.Add(3)
	if got := b.Reg.Counter("alloc_funcs_total").Value(); got != 3 {
		t.Fatalf("builtin handle not registered: %d", got)
	}
	b2 := Enable(nil)
	if b2 == b || B() != b2 {
		t.Fatal("re-Enable must install a fresh bundle")
	}
	if got := b2.AllocFuncs.Value(); got != 0 {
		t.Fatalf("fresh bundle carries old counts: %d", got)
	}
	Disable()
	if B() != nil {
		t.Fatal("Disable must clear the bundle")
	}
}

func TestPhaseDurStandardAndCustom(t *testing.T) {
	defer Disable()
	b := Enable(nil)
	std := b.PhaseDur(obs.PhaseBuild)
	if std == nil || std != b.PhaseDur(obs.PhaseBuild) {
		t.Fatal("standard phase histogram must be a stable handle")
	}
	std.Observe(3)
	snap := b.Reg.Snapshot()
	if snap.Histograms["phase_build_graph_us"].Count != 1 {
		t.Fatalf("phase histogram not registered under sanitized name: %v", snap.Histograms)
	}
	custom := b.PhaseDur("my-pass")
	custom.Observe(1)
	if b.Reg.Snapshot().Histograms["phase_my_pass_us"].Count != 1 {
		t.Fatal("custom phase histogram missing")
	}
}

func TestSnapshotJSONAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(2)
	r.Gauge("depth").Set(7)
	h := r.Histogram("lat_us", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(100)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("snapshot JSON invalid: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), `"+Inf"`) {
		t.Fatalf("overflow bucket must render as \"+Inf\":\n%s", buf.String())
	}

	buf.Reset()
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"a_total 2", "depth 7",
		`lat_us_bucket{le="1"} 1`, `lat_us_bucket{le="+Inf"} 2`,
		"lat_us_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text exposition missing %q:\n%s", want, text)
		}
	}
}

func TestConcurrentInstrumentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total")
	h := r.Histogram("v", []float64{50})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 100))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: counter=%d hist=%d", c.Value(), h.Count())
	}
	if math.IsNaN(h.Sum()) {
		t.Fatal("histogram sum corrupted")
	}
}
