// Package telemetry is the allocator's aggregate observability layer:
// a process-lifetime metrics registry (atomic counters, gauges, and
// fixed-bucket histograms with JSON and text exposition), hierarchical
// span tracing derived from the obs event stream, and an opt-in HTTP
// introspection server (/metrics, /spans, net/http/pprof).
//
// Package obs answers "what did this one allocation decide, and why";
// telemetry answers "what has this process been doing" — how many
// functions were allocated, how the phase wall time distributes, how
// often the prep cache hits, how many copy-on-write snapshots were
// privatized, how busy the worker pool runs. The paper's contribution
// is a measured cost model; this package applies the same discipline to
// the allocator's own time and decisions.
//
// Telemetry is strictly opt-in and free when off. Instrumentation
// sites hold nil-safe handles (a nil *Counter's Add is a no-op) or
// consult the global Builtin bundle (B), which is a single atomic
// pointer load that returns nil until Enable installs a registry. The
// disabled path performs no allocation and no atomic read-modify-write
// — the test suite pins this.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing instrument. The zero value is
// ready to use; a nil Counter discards every operation, which is the
// disabled fast path.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil handle.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil handle.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level: queue depth, busy workers. A nil
// Gauge discards every operation.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level. No-op on a nil handle.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the level by n (use negative n to decrease). No-op on a
// nil handle.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current level (0 on a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution: observations are counted
// into the first bucket whose upper bound is >= the value, with an
// implicit +Inf overflow bucket, plus a running sum and count. All
// operations are atomic; a nil Histogram discards every observation.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	count  atomic.Int64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds. The bounds slice is copied.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. No-op on a nil handle.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil handle).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on a nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns the upper bounds and the per-bucket counts; the last
// count is the +Inf overflow bucket.
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	bounds = h.bounds
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// Registry is a named collection of instruments. Instruments are
// created on first request and live for the registry's lifetime, so
// callers hold the returned handles rather than re-looking them up on
// hot paths. All methods are safe for concurrent use, and every
// instrument accessor is nil-safe: a nil *Registry returns nil handles,
// whose operations are no-ops — the disabled fast path needs no
// branches beyond one nil check.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls ignore bounds). Returns nil
// on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is the exposition form of one histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets []BucketSnapshot `json:"buckets"`
}

// BucketSnapshot is one histogram bucket: the upper bound (+Inf for the
// overflow bucket, rendered as "+Inf") and its count.
type BucketSnapshot struct {
	UpperBound float64 `json:"le"`
	N          int64   `json:"n"`
}

// Snapshot is a point-in-time copy of every instrument, with
// deterministic (sorted) ordering — the exposition format of /metrics
// and the -metrics dumps.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current value of every instrument. Returns an
// empty snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		bounds, counts := h.Buckets()
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		for i, n := range counts {
			ub := math.Inf(1)
			if i < len(bounds) {
				ub = bounds[i]
			}
			hs.Buckets = append(hs.Buckets, BucketSnapshot{UpperBound: ub, N: n})
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON. Map keys marshal in
// sorted order, so the output is deterministic for fixed values.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// MarshalJSON renders +Inf bucket bounds as the string "+Inf" (JSON has
// no infinity literal).
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.UpperBound, 1) {
		return json.Marshal(struct {
			UpperBound string `json:"le"`
			N          int64  `json:"n"`
		}{"+Inf", b.N})
	}
	return json.Marshal(struct {
		UpperBound float64 `json:"le"`
		N          int64   `json:"n"`
	}{b.UpperBound, b.N})
}

// WriteText writes the snapshot in a Prometheus-flavored text format:
// one "name value" line per counter and gauge, and per-histogram
// cumulative bucket lines plus _sum and _count.
func (s Snapshot) WriteText(w io.Writer) error {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", n, s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", n, s.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.N
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b.UpperBound), "0"), ".")
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", n, h.Sum, n, h.Count); err != nil {
			return err
		}
	}
	return nil
}
