package telemetry

import (
	"strings"
	"sync/atomic"

	"repro/internal/obs"
)

// Builtin bundles the allocator's well-known instruments as direct
// handles, so instrumentation sites pay one global atomic pointer load
// (B) plus one atomic add — no map lookups, no allocation. The fields
// are registered on Reg under the stable names in parentheses, which is
// how they appear in /metrics and the -metrics dumps.
type Builtin struct {
	// Reg is the registry every handle is registered on.
	Reg *Registry

	// Allocation totals (pipeline.Runner).

	// AllocFuncs counts completed function allocations
	// (alloc_funcs_total).
	AllocFuncs *Counter
	// AllocRounds counts executed build→color→spill rounds
	// (alloc_rounds_total).
	AllocRounds *Counter
	// SpilledRegs counts virtual registers sent to memory, summed over
	// rounds (alloc_spilled_regs_total).
	SpilledRegs *Counter
	// Rounds is the rounds-to-converge distribution per function
	// allocation (alloc_rounds).
	Rounds *Histogram
	// PassRuns counts executed (non-skipped) pass runs
	// (pass_runs_total).
	PassRuns *Counter

	// Strategy tiers (packages linscan and regalloc).

	// ScanRounds counts allocation rounds completed by the graph-free
	// linear-scan tier (alloc_scan_rounds_total); ColorRounds the rounds
	// completed by a graph-coloring color pass
	// (alloc_color_rounds_total). Together they split alloc_rounds_total
	// by tier: for the hybrid strategy, the coloring share is exactly
	// the escalated work.
	ScanRounds, ColorRounds *Counter
	// ScanHoleAssigns counts live ranges the scan binpacked into a
	// lifetime hole of an occupied register at first chance
	// (alloc_scan_hole_assigns_total); ScanSecondChance counts ranges
	// re-seated by the second-chance pass after losing their register
	// (alloc_scan_second_chance_total). Both measure spills the segment
	// refinement avoided that hull-overlap scanning would have taken.
	ScanHoleAssigns, ScanSecondChance *Counter
	// HybridEscalations counts functions whose hybrid scan tier spilled
	// (or exceeded its overhead budget) and escalated to graph coloring
	// (hybrid_escalations_total). The escalation rate is
	// hybrid_escalations_total / alloc_funcs_total of a hybrid run.
	HybridEscalations *Counter

	// Prep-cache behavior (pipeline.AnalysisManager).

	// PrepLiveHits / PrepLiveMisses count round-0 liveness requests
	// served from an already-built shared artifact vs. having to build
	// it (prep_live_hits_total, prep_live_misses_total).
	PrepLiveHits, PrepLiveMisses *Counter
	// PrepGraphHits / PrepGraphMisses are the same split for the base
	// interference graphs (prep_graph_hits_total,
	// prep_graph_misses_total).
	PrepGraphHits, PrepGraphMisses *Counter

	// Copy-on-write interference snapshots (package interference).

	// Snapshots counts Snapshot() views taken of shared graphs
	// (cow_snapshots_total); SnapshotPrivatized counts the subset whose
	// first mutation forced a private copy of the storage
	// (cow_privatized_total). The gap is what copy-on-write saves.
	Snapshots, SnapshotPrivatized *Counter

	// Scratch recycling (regalloc's simplifier pool).

	// PoolGets counts simplifier-scratch pool checkouts
	// (pool_simplifier_gets_total); PoolNews the subset that had to
	// allocate fresh scratch (pool_simplifier_news_total). The recycle
	// rate is 1 − news/gets.
	PoolGets, PoolNews *Counter

	// Content-addressed result cache (internal/resultcache).

	// ResultHits / ResultMisses count allocation requests served from a
	// completed cached allocation vs. having to color
	// (result_cache_hits_total, result_cache_misses_total);
	// ResultEvictions counts entries the LRU bound pushed out
	// (result_cache_evictions_total). ResultEntries is the current
	// resident entry count (result_cache_entries).
	ResultHits, ResultMisses, ResultEvictions *Counter
	// ResultEntries is the result cache's resident-entry gauge.
	ResultEntries *Gauge

	// Worker pool (internal/par).

	// ParLoops counts ForEachIndexed invocations (par_loops_total);
	// ParTasks the tasks they executed (par_tasks_total).
	ParLoops, ParTasks *Counter
	// ParQueueDepth is the number of tasks not yet claimed by a worker
	// in the most recent loop (par_queue_depth); ParBusyWorkers the
	// number of workers currently executing a task (par_busy_workers).
	// Together they expose utilization during a sweep.
	ParQueueDepth, ParBusyWorkers *Gauge

	// Whole-program batch driver (callcost.AllocateProgramBatch).

	// BatchWaves counts call-graph scheduling waves across batch runs
	// (batch_waves_total): one wave per lock-step level of the condensed
	// call graph, so waves/batches is the mean call-chain depth.
	BatchWaves *Counter
	// InterprocSummaryHits counts call sites whose caller consumed a
	// published callee clobber summary instead of the paper's static
	// estimate (interproc_summary_hits_total).
	InterprocSummaryHits *Counter
	// BatchReadyPeak is the peak number of simultaneously ready
	// components in the most recent batch DAG run (batch_dag_ready_peak)
	// — the parallelism the program's call-graph shape exposed.
	BatchReadyPeak *Gauge

	// phase maps the standard pipeline phase names to their wall-time
	// histograms; built once at Enable and read-only afterwards.
	phase map[string]*Histogram
}

// PhaseBuckets are the upper bounds, in microseconds, of the per-phase
// wall-time histograms.
var PhaseBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 50000}

// RoundsBuckets are the upper bounds of the rounds-to-converge
// histogram (DefaultMaxRounds is 32).
var RoundsBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}

// PhaseDur returns the wall-time histogram of one pipeline phase, in
// microseconds. The six standard phases resolve through a prebuilt
// read-only map; unknown (custom pass) names fall back to a registry
// lookup. Nil-safe: returns nil on a nil Builtin.
func (b *Builtin) PhaseDur(phase string) *Histogram {
	if b == nil {
		return nil
	}
	if h := b.phase[phase]; h != nil {
		return h
	}
	return b.Reg.Histogram(phaseMetricName(phase), PhaseBuckets)
}

// phaseMetricName maps a pass name to its histogram name:
// "build-graph" → "phase_build_graph_us".
func phaseMetricName(phase string) string {
	return "phase_" + strings.ReplaceAll(phase, "-", "_") + "_us"
}

// newBuiltin registers the well-known instruments on r.
func newBuiltin(r *Registry) *Builtin {
	b := &Builtin{
		Reg:                  r,
		AllocFuncs:           r.Counter("alloc_funcs_total"),
		AllocRounds:          r.Counter("alloc_rounds_total"),
		SpilledRegs:          r.Counter("alloc_spilled_regs_total"),
		Rounds:               r.Histogram("alloc_rounds", RoundsBuckets),
		PassRuns:             r.Counter("pass_runs_total"),
		ScanRounds:           r.Counter("alloc_scan_rounds_total"),
		ScanHoleAssigns:      r.Counter("alloc_scan_hole_assigns_total"),
		ScanSecondChance:     r.Counter("alloc_scan_second_chance_total"),
		ColorRounds:          r.Counter("alloc_color_rounds_total"),
		HybridEscalations:    r.Counter("hybrid_escalations_total"),
		PrepLiveHits:         r.Counter("prep_live_hits_total"),
		PrepLiveMisses:       r.Counter("prep_live_misses_total"),
		PrepGraphHits:        r.Counter("prep_graph_hits_total"),
		PrepGraphMisses:      r.Counter("prep_graph_misses_total"),
		Snapshots:            r.Counter("cow_snapshots_total"),
		SnapshotPrivatized:   r.Counter("cow_privatized_total"),
		PoolGets:             r.Counter("pool_simplifier_gets_total"),
		PoolNews:             r.Counter("pool_simplifier_news_total"),
		ResultHits:           r.Counter("result_cache_hits_total"),
		ResultMisses:         r.Counter("result_cache_misses_total"),
		ResultEvictions:      r.Counter("result_cache_evictions_total"),
		ResultEntries:        r.Gauge("result_cache_entries"),
		ParLoops:             r.Counter("par_loops_total"),
		ParTasks:             r.Counter("par_tasks_total"),
		ParQueueDepth:        r.Gauge("par_queue_depth"),
		ParBusyWorkers:       r.Gauge("par_busy_workers"),
		BatchWaves:           r.Counter("batch_waves_total"),
		InterprocSummaryHits: r.Counter("interproc_summary_hits_total"),
		BatchReadyPeak:       r.Gauge("batch_dag_ready_peak"),
		phase:                make(map[string]*Histogram),
	}
	for _, p := range []string{obs.PhaseLiveness, obs.PhaseBuild, obs.PhaseCoalesce,
		obs.PhaseRanges, obs.PhaseColor, obs.PhaseRewrite, obs.PhaseScan} {
		b.phase[p] = r.Histogram(phaseMetricName(p), PhaseBuckets)
	}
	return b
}

// global holds the enabled Builtin bundle; nil means telemetry is off.
var global atomic.Pointer[Builtin]

// B returns the globally enabled instrument bundle, or nil when
// telemetry is disabled. This is the hot-path guard every
// instrumentation site uses:
//
//	if b := telemetry.B(); b != nil { b.AllocFuncs.Inc() }
//
// One atomic pointer load when disabled; no allocation either way.
func B() *Builtin { return global.Load() }

// Enable installs a fresh registry (or r, when non-nil) as the global
// telemetry target and returns its instrument bundle. Instrumentation
// all over the allocator starts feeding it immediately. Calling Enable
// again swaps in a new bundle; counts do not carry over.
func Enable(r *Registry) *Builtin {
	if r == nil {
		r = NewRegistry()
	}
	b := newBuiltin(r)
	global.Store(b)
	return b
}

// Disable turns global telemetry off; instrumentation reverts to the
// free nil path. The previously enabled registry remains readable by
// whoever holds it.
func Disable() { global.Store(nil) }
