package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Span kinds, from root to leaf: one program allocation contains
// function spans, a function contains its build→color→spill rounds,
// and a round contains the pipeline pass executions.
const (
	SpanProgram  = "program"
	SpanFunction = "function"
	SpanRound    = "round"
	SpanPass     = "pass"
)

// Span is one node of the hierarchical trace: a program, function,
// round, or pass execution, linked to its parent by ID.
type Span struct {
	ID     uint64
	Parent uint64
	Kind   string
	Name   string // function name, "round N", or pass name
	Fn     string // enclosing function (empty on the program span)
	Round  int
	Seq    uint64 // sequence number of the opening event, if stamped
	Start  time.Time
	Dur    time.Duration
}

// MarshalJSON renders the span with a flat, stable field set (dur_us
// like the obs JSONL stream).
func (s Span) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		ID     uint64  `json:"id"`
		Parent uint64  `json:"parent"`
		Kind   string  `json:"kind"`
		Name   string  `json:"name"`
		Fn     string  `json:"fn,omitempty"`
		Round  int     `json:"round"`
		Seq    uint64  `json:"seq,omitempty"`
		Start  string  `json:"start"`
		DurUS  float64 `json:"dur_us"`
	}{s.ID, s.Parent, s.Kind, s.Name, s.Fn, s.Round, s.Seq,
		s.Start.Format(time.RFC3339Nano), float64(s.Dur.Nanoseconds()) / 1e3})
}

// openFn is the in-flight span state of one function. Events of one
// function are emitted by a single goroutine in pipeline order, so this
// state machine is sequential per function; the recorder's mutex makes
// interleaved functions (Options.TraceParallel) safe.
type openFn struct {
	span      Span
	round     Span
	roundOpen bool
	pass      Span
	passOpen  bool
	last      time.Time
}

// DefaultSpanCapacity bounds the completed-span ring buffer of a
// recorder built with NewSpanRecorder(0).
const DefaultSpanCapacity = 4096

// SpanRecorder is an obs.Tracer that derives the span hierarchy from
// the allocator's event stream: phase_start/phase_end events open and
// close pass spans, round and function spans are inferred from the
// event fields, and everything nests under one program span per run.
// Completed spans land in a fixed-capacity ring buffer (the /spans
// endpoint serves it); Flush closes whatever is still open at the end
// of a run.
//
// The recorder is safe for concurrent emission: state is keyed by
// function, and one function's events always come from one goroutine.
type SpanRecorder struct {
	mu      sync.Mutex
	nextID  uint64
	program Span
	open    bool
	fns     map[string]*openFn
	order   []string // function discovery order, for Flush determinism

	ring  []Span
	head  int
	total uint64
}

// NewSpanRecorder returns a recorder keeping the last capacity
// completed spans (DefaultSpanCapacity when capacity <= 0).
func NewSpanRecorder(capacity int) *SpanRecorder {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &SpanRecorder{
		fns:  make(map[string]*openFn),
		ring: make([]Span, 0, capacity),
	}
}

// Enabled implements obs.Tracer.
func (r *SpanRecorder) Enabled() bool { return true }

// Emit implements obs.Tracer.
func (r *SpanRecorder) Emit(ev obs.Event) {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.open {
		r.program = Span{ID: r.id(), Kind: SpanProgram, Name: "allocation", Start: now}
		r.open = true
	}
	f := r.fns[ev.Fn]
	if f == nil {
		f = &openFn{span: Span{
			ID: r.id(), Parent: r.program.ID, Kind: SpanFunction,
			Name: ev.Fn, Fn: ev.Fn, Seq: ev.Seq, Start: now,
		}}
		r.fns[ev.Fn] = f
		r.order = append(r.order, ev.Fn)
	}
	f.last = now
	switch ev.Kind {
	case obs.KindPhaseStart:
		if f.roundOpen && f.round.Round != ev.Round {
			r.finish(f.round, now)
			f.roundOpen = false
		}
		if !f.roundOpen {
			f.round = Span{
				ID: r.id(), Parent: f.span.ID, Kind: SpanRound,
				Name: fmt.Sprintf("round %d", ev.Round), Fn: ev.Fn,
				Round: ev.Round, Seq: ev.Seq, Start: now,
			}
			f.roundOpen = true
		}
		f.pass = Span{
			ID: r.id(), Parent: f.round.ID, Kind: SpanPass,
			Name: ev.Phase, Fn: ev.Fn, Round: ev.Round, Seq: ev.Seq, Start: now,
		}
		f.passOpen = true
	case obs.KindPhaseEnd:
		if f.passOpen {
			sp := f.pass
			sp.Dur = ev.Dur
			if sp.Dur <= 0 {
				sp.Dur = now.Sub(sp.Start)
			}
			r.push(sp)
			f.passOpen = false
		}
	}
}

// Flush closes every open span — passes, rounds, functions, and the
// program — and resets the recorder for the next run. Call it after an
// allocation completes; the completed spans stay in the ring.
func (r *SpanRecorder) Flush() {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.fns[name]
		if f.passOpen {
			r.finish(f.pass, now)
		}
		if f.roundOpen {
			r.finish(f.round, f.last)
		}
		r.finish(f.span, f.last)
	}
	if r.open {
		r.finish(r.program, now)
	}
	r.fns = make(map[string]*openFn)
	r.order = nil
	r.open = false
}

// Spans returns the completed spans, oldest first.
func (r *SpanRecorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) < cap(r.ring) {
		return append([]Span(nil), r.ring...)
	}
	out := make([]Span, 0, len(r.ring))
	out = append(out, r.ring[r.head:]...)
	return append(out, r.ring[:r.head]...)
}

// Total returns how many spans have completed over the recorder's
// lifetime (including any evicted from the ring).
func (r *SpanRecorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// WriteJSON writes the completed spans as one JSON document.
func (r *SpanRecorder) WriteJSON(w io.Writer) error {
	spans := r.Spans()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Total uint64 `json:"total"`
		Spans []Span `json:"spans"`
	}{r.Total(), spans})
}

// WriteFlame renders the completed spans as an indented flame-style
// tree: every span under its parent, with wall time and a bar scaled to
// the enclosing program span. Orphans (parents evicted from the ring)
// render as roots.
func (r *SpanRecorder) WriteFlame(w io.Writer) error {
	spans := r.Spans()
	children := make(map[uint64][]int, len(spans))
	byID := make(map[uint64]bool, len(spans))
	for _, sp := range spans {
		byID[sp.ID] = true
	}
	var roots []int
	for i, sp := range spans {
		if sp.Parent == 0 || !byID[sp.Parent] {
			roots = append(roots, i)
		} else {
			children[sp.Parent] = append(children[sp.Parent], i)
		}
	}
	var render func(i, depth int, scale time.Duration) error
	render = func(i, depth int, scale time.Duration) error {
		sp := spans[i]
		if depth == 0 && sp.Dur > 0 {
			scale = sp.Dur
		}
		bar := ""
		if scale > 0 {
			n := int(40 * sp.Dur / scale)
			if n > 40 {
				n = 40
			}
			bar = strings.Repeat("▇", n)
		}
		label := sp.Name
		if sp.Kind == SpanRound {
			label = fmt.Sprintf("%s (%s)", sp.Name, sp.Fn)
		}
		if _, err := fmt.Fprintf(w, "%s%-*s %10.1fµs  %s\n",
			strings.Repeat("  ", depth), 28-2*depth, label,
			float64(sp.Dur.Nanoseconds())/1e3, bar); err != nil {
			return err
		}
		kids := children[sp.ID]
		sort.SliceStable(kids, func(a, b int) bool {
			return spans[kids[a]].Start.Before(spans[kids[b]].Start)
		})
		for _, k := range kids {
			if err := render(k, depth+1, scale); err != nil {
				return err
			}
		}
		return nil
	}
	for _, root := range roots {
		if err := render(root, 0, spans[root].Dur); err != nil {
			return err
		}
	}
	return nil
}

// id allocates the next span ID (caller holds the mutex).
func (r *SpanRecorder) id() uint64 {
	r.nextID++
	return r.nextID
}

// finish completes sp at end and pushes it to the ring (caller holds
// the mutex).
func (r *SpanRecorder) finish(sp Span, end time.Time) {
	sp.Dur = end.Sub(sp.Start)
	r.push(sp)
}

// push appends one completed span to the ring (caller holds the mutex).
func (r *SpanRecorder) push(sp Span) {
	r.total++
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, sp)
		return
	}
	r.ring[r.head] = sp
	r.head = (r.head + 1) % cap(r.ring)
}
