package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("alloc_funcs_total").Add(9)
	spans := NewSpanRecorder(0)
	spans.Emit(obs.Event{Kind: obs.KindPhaseStart, Fn: "f", Phase: obs.PhaseColor})
	spans.Emit(obs.Event{Kind: obs.KindPhaseEnd, Fn: "f", Phase: obs.PhaseColor, Dur: time.Millisecond})
	spans.Flush()

	srv, err := Serve("127.0.0.1:0", reg, spans)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	if code, body := get(t, base+"/metrics"); code != 200 || !strings.Contains(body, `"alloc_funcs_total": 9`) {
		t.Fatalf("/metrics JSON: code=%d body=%s", code, body)
	}
	if code, body := get(t, base+"/metrics?format=text"); code != 200 || !strings.Contains(body, "alloc_funcs_total 9") {
		t.Fatalf("/metrics text: code=%d body=%s", code, body)
	}
	if code, body := get(t, base+"/spans"); code != 200 || !strings.Contains(body, `"kind": "pass"`) {
		t.Fatalf("/spans: code=%d body=%s", code, body)
	}
	if code, body := get(t, base+"/spans?format=flame"); code != 200 || !strings.Contains(body, obs.PhaseColor) {
		t.Fatalf("/spans flame: code=%d body=%s", code, body)
	}
	if code, body := get(t, base+"/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: code=%d body=%s", code, body)
	}
	if code, _ := get(t, base+"/debug/pprof/heap?debug=1"); code != 200 {
		t.Fatalf("/debug/pprof/heap: code=%d", code)
	}
	if code, body := get(t, base+"/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: code=%d body=%s", code, body)
	}
}

// TestServeFallsBackToGlobalRegistry covers the cmd wiring shape:
// Serve(addr, nil, nil) exposes whatever registry Enable installed.
func TestServeFallsBackToGlobalRegistry(t *testing.T) {
	defer Disable()
	srv, err := Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	Disable()
	if code, _ := get(t, base+"/metrics"); code != http.StatusServiceUnavailable {
		t.Fatalf("disabled telemetry should 503, got %d", code)
	}
	b := Enable(nil)
	b.SpilledRegs.Add(4)
	if code, body := get(t, base+"/metrics"); code != 200 || !strings.Contains(body, `"alloc_spilled_regs_total": 4`) {
		t.Fatalf("global registry not served: code=%d body=%s", code, body)
	}
	if code, _ := get(t, base+"/spans"); code != http.StatusServiceUnavailable {
		t.Fatalf("no recorder should 503, got %d", code)
	}
}
