// Package ir defines the three-address intermediate representation that
// the register allocators operate on.
//
// The IR is deliberately close to what the paper's cmcc compiler exposes
// to its allocator: a control-flow graph of basic blocks over an
// unbounded set of typed virtual registers, split into two register
// classes (integer and float) matching the MIPS banks. Scalar locals and
// parameters live in virtual registers; arrays and global scalars live
// in memory and are accessed with explicit loads and stores.
//
// The IR is not SSA: virtual registers may be redefined, and a live
// range is a virtual register (coalescing may later merge several).
package ir

import (
	"fmt"
	"strings"

	"repro/internal/source"
)

// Class is a register class (bank).
type Class int

// The register classes: the MIPS-like target has an integer bank and a
// float bank that are allocated independently.
const (
	ClassInt Class = iota
	ClassFloat
	NumClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassInt:
		return "int"
	case ClassFloat:
		return "float"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Reg identifies a virtual register within a function. NoReg means
// "absent" (e.g. the destination of a void call).
type Reg int

// NoReg is the absent register.
const NoReg Reg = -1

// Op is an IR operation.
type Op int

// The IR operations.
const (
	OpNop Op = iota

	// Constants.
	OpConstInt   // dst = IntVal
	OpConstFloat // dst = FloatVal

	// Copies and conversions.
	OpMove // dst = arg0 (same class)
	OpI2F  // dst(float) = float(arg0(int))
	OpF2I  // dst(int) = int(arg0(float)), truncating

	// Integer arithmetic.
	OpAdd // dst = arg0 + arg1
	OpSub
	OpMul
	OpDiv
	OpRem
	OpNeg // dst = -arg0

	// Float arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg

	// Comparisons; both yield an int 0/1.
	OpICmp // dst = arg0 <Cond> arg1 over ints
	OpFCmp // dst = arg0 <Cond> arg1 over floats

	// Memory. Sym names a global scalar, global array, or local
	// (frame) array. Arrays take an index operand, scalars do not.
	OpLoad  // dst = Sym[arg0?]
	OpStore // Sym[arg0?] = argN (value is the last operand)

	// Calls and control flow.
	OpCall // dst? = Callee(args...)
	OpRet  // return arg0?
	OpBr   // if arg0 != 0 goto Then else goto Else
	OpJmp  // goto Then
)

var opNames = [...]string{
	OpNop: "nop", OpConstInt: "const", OpConstFloat: "fconst",
	OpMove: "move", OpI2F: "i2f", OpF2I: "f2i",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpNeg:  "neg",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFNeg: "fneg",
	OpICmp: "icmp", OpFCmp: "fcmp",
	OpLoad: "load", OpStore: "store",
	OpCall: "call", OpRet: "ret", OpBr: "br", OpJmp: "jmp",
}

// String names the operation.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Cond is a comparison condition for OpICmp/OpFCmp.
type Cond int

// The comparison conditions.
const (
	CondEQ Cond = iota
	CondNE
	CondLT
	CondLE
	CondGT
	CondGE
)

// String renders the condition as its C operator.
func (c Cond) String() string {
	switch c {
	case CondEQ:
		return "=="
	case CondNE:
		return "!="
	case CondLT:
		return "<"
	case CondLE:
		return "<="
	case CondGT:
		return ">"
	case CondGE:
		return ">="
	}
	return "?"
}

// Symbol is a memory-resident object: a global scalar, a global array,
// or a local (frame-allocated) array.
type Symbol struct {
	Name  string
	Class Class // element class
	Size  int   // 0 = scalar, > 0 = array length
	Local bool  // true for frame arrays and spill slots
	// Spill marks stack slots introduced by spill-code insertion, so
	// the cost accounting can attribute their loads/stores to spill
	// overhead.
	Spill bool

	// InitInt/InitFloat give the initial value for global scalars.
	InitInt   int64
	InitFloat float64
}

// IsArray reports whether the symbol is an array (takes an index).
func (s *Symbol) IsArray() bool { return s.Size > 0 }

// Instr is one IR instruction. Which fields are meaningful depends on Op;
// Validate in this package enforces the shapes.
type Instr struct {
	Op       Op
	Dst      Reg
	Args     []Reg
	IntVal   int64
	FloatVal float64
	Cond     Cond
	Sym      *Symbol
	Callee   string
	Then     int // Br: taken target; Jmp: target
	Else     int // Br: fall-through target
	Pos      source.Pos
}

// HasDst reports whether the instruction defines a register.
func (in *Instr) HasDst() bool { return in.Dst != NoReg }

// IsTerminator reports whether the instruction ends a block.
func (in *Instr) IsTerminator() bool {
	switch in.Op {
	case OpRet, OpBr, OpJmp:
		return true
	}
	return false
}

// Uses appends the registers read by the instruction to dst and returns
// the extended slice.
func (in *Instr) Uses(dst []Reg) []Reg {
	return append(dst, in.Args...)
}

// Block is a basic block. Blocks are identified by their index in
// Func.Blocks; the entry block is index 0.
type Block struct {
	ID     int
	Instrs []Instr
}

// Terminator returns the block's final instruction, or nil for a
// malformed empty/unterminated block.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	in := &b.Instrs[len(b.Instrs)-1]
	if !in.IsTerminator() {
		return nil
	}
	return in
}

// Succs returns the IDs of the block's successor blocks.
func (b *Block) Succs() []int {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	switch t.Op {
	case OpRet:
		return nil
	case OpJmp:
		return []int{t.Then}
	case OpBr:
		if t.Then == t.Else {
			return []int{t.Then}
		}
		return []int{t.Then, t.Else}
	}
	return nil
}

// Func is a function in IR form.
type Func struct {
	Name   string
	Params []Reg // parameter virtual registers, in declaration order
	// HasResult and ResultClass describe the return value.
	HasResult   bool
	ResultClass Class

	Blocks []*Block
	Locals []*Symbol // frame arrays

	regClass []Class
	regName  []string
}

// NumRegs returns the number of virtual registers allocated so far.
func (f *Func) NumRegs() int { return len(f.regClass) }

// RegClass returns the class of virtual register r.
func (f *Func) RegClass(r Reg) Class { return f.regClass[r] }

// RegName returns the debug name of r ("" for compiler temporaries).
func (f *Func) RegName(r Reg) string {
	if int(r) < len(f.regName) {
		return f.regName[r]
	}
	return ""
}

// NewReg allocates a fresh virtual register of the given class. name is
// for debugging only and may be empty.
func (f *Func) NewReg(c Class, name string) Reg {
	r := Reg(len(f.regClass))
	f.regClass = append(f.regClass, c)
	f.regName = append(f.regName, name)
	return r
}

// NewBlock appends a fresh empty block and returns it.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// Clone returns a deep copy of the function: blocks and instructions
// are copied so the clone can be rewritten (spill code inserted, blocks
// appended) without touching the original. Symbols are shared — they
// are immutable — but the Locals slice itself is copied so the clone
// can grow it.
func (f *Func) Clone() *Func {
	c := &Func{
		Name:        f.Name,
		Params:      append([]Reg(nil), f.Params...),
		HasResult:   f.HasResult,
		ResultClass: f.ResultClass,
		Locals:      append([]*Symbol(nil), f.Locals...),
		regClass:    append([]Class(nil), f.regClass...),
		regName:     append([]string(nil), f.regName...),
	}
	c.Blocks = make([]*Block, len(f.Blocks))
	for i, b := range f.Blocks {
		nb := &Block{ID: b.ID, Instrs: make([]Instr, len(b.Instrs))}
		copy(nb.Instrs, b.Instrs)
		for j := range nb.Instrs {
			nb.Instrs[j].Args = append([]Reg(nil), nb.Instrs[j].Args...)
		}
		c.Blocks[i] = nb
	}
	return c
}

// Program is a whole compiled MC program in IR form.
type Program struct {
	Funcs      []*Func
	FuncByName map[string]*Func
	Globals    []*Symbol
}

// AddFunc appends f to the program and indexes it by name.
func (p *Program) AddFunc(f *Func) {
	if p.FuncByName == nil {
		p.FuncByName = make(map[string]*Func)
	}
	p.Funcs = append(p.Funcs, f)
	p.FuncByName[f.Name] = f
}

// ---------------------------------------------------------------------
// Printing

// String renders the function as readable IR for debugging and golden
// tests.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", f.regString(p), f.RegClass(p))
	}
	b.WriteString(")")
	if f.HasResult {
		fmt.Fprintf(&b, " %s", f.ResultClass)
	}
	b.WriteString(" {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "b%d:\n", blk.ID)
		for i := range blk.Instrs {
			fmt.Fprintf(&b, "\t%s\n", f.InstrString(&blk.Instrs[i]))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func (f *Func) regString(r Reg) string {
	if r == NoReg {
		return "_"
	}
	if n := f.RegName(r); n != "" {
		return fmt.Sprintf("v%d(%s)", int(r), n)
	}
	return fmt.Sprintf("v%d", int(r))
}

// InstrString renders one instruction.
func (f *Func) InstrString(in *Instr) string {
	var b strings.Builder
	if in.HasDst() {
		fmt.Fprintf(&b, "%s = ", f.regString(in.Dst))
	}
	b.WriteString(in.Op.String())
	switch in.Op {
	case OpConstInt:
		fmt.Fprintf(&b, " %d", in.IntVal)
	case OpConstFloat:
		fmt.Fprintf(&b, " %g", in.FloatVal)
	case OpICmp, OpFCmp:
		fmt.Fprintf(&b, " %s %s %s", f.regString(in.Args[0]), in.Cond, f.regString(in.Args[1]))
		return b.String()
	case OpLoad:
		fmt.Fprintf(&b, " %s", in.Sym.Name)
		if len(in.Args) > 0 {
			fmt.Fprintf(&b, "[%s]", f.regString(in.Args[0]))
		}
		return b.String()
	case OpStore:
		fmt.Fprintf(&b, " %s", in.Sym.Name)
		if in.Sym.IsArray() {
			fmt.Fprintf(&b, "[%s]", f.regString(in.Args[0]))
		}
		fmt.Fprintf(&b, " <- %s", f.regString(in.Args[len(in.Args)-1]))
		return b.String()
	case OpCall:
		fmt.Fprintf(&b, " %s(", in.Callee)
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.regString(a))
		}
		b.WriteString(")")
		return b.String()
	case OpBr:
		fmt.Fprintf(&b, " %s, b%d, b%d", f.regString(in.Args[0]), in.Then, in.Else)
		return b.String()
	case OpJmp:
		fmt.Fprintf(&b, " b%d", in.Then)
		return b.String()
	}
	for _, a := range in.Args {
		fmt.Fprintf(&b, " %s", f.regString(a))
	}
	return b.String()
}

// String renders the whole program.
func (p *Program) String() string {
	var b strings.Builder
	for _, g := range p.Globals {
		if g.IsArray() {
			fmt.Fprintf(&b, "global %s %s[%d]\n", g.Class, g.Name, g.Size)
		} else if g.Class == ClassFloat {
			fmt.Fprintf(&b, "global %s %s = %g\n", g.Class, g.Name, g.InitFloat)
		} else {
			fmt.Fprintf(&b, "global %s %s = %d\n", g.Class, g.Name, g.InitInt)
		}
	}
	for _, f := range p.Funcs {
		b.WriteString(f.String())
	}
	return b.String()
}
