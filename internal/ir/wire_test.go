package ir_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/compile"
	"repro/internal/ir"
	"repro/internal/randprog"
)

// TestWireRoundTrip: encode → decode must preserve the program
// exactly — the String rendering covers blocks, instructions, register
// numbering and debug names, and symbol identity is checked via the
// re-encoding (shared symbols must stay shared for the bytes to
// match).
func TestWireRoundTrip(t *testing.T) {
	srcs := map[string]string{}
	for _, p := range benchprog.All() {
		srcs[p.Name] = p.Source
	}
	for seed := int64(0); seed < 8; seed++ {
		srcs[fmt.Sprintf("randprog%d", seed)] = randprog.Generate(seed, randprog.ForSeed(seed))
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			prog, err := compile.Source(src)
			if err != nil {
				t.Fatal(err)
			}
			data, err := ir.EncodeProgram(prog)
			if err != nil {
				t.Fatal(err)
			}
			back, err := ir.DecodeProgram(data)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := back.String(), prog.String(); got != want {
				t.Fatalf("round trip changed the program:\n--- original\n%s\n--- decoded\n%s", want, got)
			}
			data2, err := ir.EncodeProgram(back)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, data2) {
				t.Fatal("re-encoding the decoded program produced different bytes")
			}
		})
	}
}

// TestWireEncodeDeterministic: two compiles of the same source must
// encode to identical bytes — the property the content-addressed
// result cache keys rely on.
func TestWireEncodeDeterministic(t *testing.T) {
	src := benchprog.ByName("li").Source
	a, err := compile.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := compile.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	ea, err := ir.EncodeProgram(a)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := ir.EncodeProgram(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Fatal("identical source compiled twice encodes differently")
	}
	for i, fn := range a.Funcs {
		fa, err := ir.EncodeFunc(fn)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := ir.EncodeFunc(b.Funcs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fa, fb) {
			t.Fatalf("function %s encodes differently across compiles", fn.Name)
		}
	}
}

// TestWireVersionGate: a version the codec does not speak must be
// rejected, not misread.
func TestWireVersionGate(t *testing.T) {
	prog, err := compile.Source(benchprog.ByName("compress").Source)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ir.EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(data, []byte(`{"version":1`), []byte(`{"version":999`), 1)
	if _, err := ir.DecodeProgram(bad); err == nil {
		t.Fatal("decoding a future wire version succeeded")
	}
}

// TestWireFuncDigestDistinguishes: EncodeFunc must differ for
// different functions (the cache-key injectivity smoke check).
func TestWireFuncDigestDistinguishes(t *testing.T) {
	prog, err := compile.Source(benchprog.ByName("eqntott").Source)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for _, fn := range prog.Funcs {
		data, err := ir.EncodeFunc(fn)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[string(data)]; dup {
			t.Fatalf("functions %s and %s encode identically", prev, fn.Name)
		}
		seen[string(data)] = fn.Name
	}
}
