package ir

import "fmt"

// Validate checks structural well-formedness of the function: every
// block is terminated exactly at its end, branch targets exist, register
// operands are in range with the classes each operation requires, and
// memory operations match their symbol's shape. It returns the first
// problem found.
func (f *Func) Validate() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("func %s: no blocks", f.Name)
	}
	for i, b := range f.Blocks {
		if b.ID != i {
			return fmt.Errorf("func %s: block %d has ID %d", f.Name, i, b.ID)
		}
		if len(b.Instrs) == 0 {
			return fmt.Errorf("func %s: block b%d is empty", f.Name, i)
		}
		for j := range b.Instrs {
			in := &b.Instrs[j]
			last := j == len(b.Instrs)-1
			if in.IsTerminator() != last {
				if last {
					return fmt.Errorf("func %s: b%d does not end in a terminator", f.Name, i)
				}
				return fmt.Errorf("func %s: b%d instr %d: terminator %s in block middle", f.Name, i, j, in.Op)
			}
			if err := f.validateInstr(in); err != nil {
				return fmt.Errorf("func %s: b%d instr %d (%s): %w", f.Name, i, j, f.InstrString(in), err)
			}
		}
	}
	for _, p := range f.Params {
		if err := f.checkReg(p); err != nil {
			return fmt.Errorf("func %s: param: %w", f.Name, err)
		}
	}
	return nil
}

func (f *Func) checkReg(r Reg) error {
	if r < 0 || int(r) >= f.NumRegs() {
		return fmt.Errorf("register v%d out of range [0,%d)", int(r), f.NumRegs())
	}
	return nil
}

func (f *Func) checkClass(r Reg, c Class) error {
	if err := f.checkReg(r); err != nil {
		return err
	}
	if f.RegClass(r) != c {
		return fmt.Errorf("register v%d has class %s, want %s", int(r), f.RegClass(r), c)
	}
	return nil
}

func (f *Func) checkTarget(id int) error {
	if id < 0 || id >= len(f.Blocks) {
		return fmt.Errorf("branch target b%d out of range", id)
	}
	return nil
}

func (f *Func) validateInstr(in *Instr) error {
	wantArgs := func(n int) error {
		if len(in.Args) != n {
			return fmt.Errorf("want %d operands, have %d", n, len(in.Args))
		}
		return nil
	}
	binary := func(c Class) error {
		if err := wantArgs(2); err != nil {
			return err
		}
		if err := f.checkClass(in.Args[0], c); err != nil {
			return err
		}
		if err := f.checkClass(in.Args[1], c); err != nil {
			return err
		}
		return f.checkClass(in.Dst, c)
	}
	unary := func(from, to Class) error {
		if err := wantArgs(1); err != nil {
			return err
		}
		if err := f.checkClass(in.Args[0], from); err != nil {
			return err
		}
		return f.checkClass(in.Dst, to)
	}
	switch in.Op {
	case OpNop:
		return nil
	case OpConstInt:
		if err := wantArgs(0); err != nil {
			return err
		}
		return f.checkClass(in.Dst, ClassInt)
	case OpConstFloat:
		if err := wantArgs(0); err != nil {
			return err
		}
		return f.checkClass(in.Dst, ClassFloat)
	case OpMove:
		if err := wantArgs(1); err != nil {
			return err
		}
		if err := f.checkReg(in.Args[0]); err != nil {
			return err
		}
		if err := f.checkReg(in.Dst); err != nil {
			return err
		}
		if f.RegClass(in.Dst) != f.RegClass(in.Args[0]) {
			return fmt.Errorf("move between classes %s and %s", f.RegClass(in.Args[0]), f.RegClass(in.Dst))
		}
		return nil
	case OpI2F:
		return unary(ClassInt, ClassFloat)
	case OpF2I:
		return unary(ClassFloat, ClassInt)
	case OpAdd, OpSub, OpMul, OpDiv, OpRem:
		return binary(ClassInt)
	case OpNeg:
		return unary(ClassInt, ClassInt)
	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		return binary(ClassFloat)
	case OpFNeg:
		return unary(ClassFloat, ClassFloat)
	case OpICmp:
		if err := wantArgs(2); err != nil {
			return err
		}
		if err := f.checkClass(in.Args[0], ClassInt); err != nil {
			return err
		}
		if err := f.checkClass(in.Args[1], ClassInt); err != nil {
			return err
		}
		return f.checkClass(in.Dst, ClassInt)
	case OpFCmp:
		if err := wantArgs(2); err != nil {
			return err
		}
		if err := f.checkClass(in.Args[0], ClassFloat); err != nil {
			return err
		}
		if err := f.checkClass(in.Args[1], ClassFloat); err != nil {
			return err
		}
		return f.checkClass(in.Dst, ClassInt)
	case OpLoad:
		if in.Sym == nil {
			return fmt.Errorf("load without symbol")
		}
		if in.Sym.IsArray() {
			if err := wantArgs(1); err != nil {
				return err
			}
			if err := f.checkClass(in.Args[0], ClassInt); err != nil {
				return err
			}
		} else if err := wantArgs(0); err != nil {
			return err
		}
		return f.checkClass(in.Dst, in.Sym.Class)
	case OpStore:
		if in.Sym == nil {
			return fmt.Errorf("store without symbol")
		}
		if in.HasDst() {
			return fmt.Errorf("store must not define a register")
		}
		if in.Sym.IsArray() {
			if err := wantArgs(2); err != nil {
				return err
			}
			if err := f.checkClass(in.Args[0], ClassInt); err != nil {
				return err
			}
			return f.checkClass(in.Args[1], in.Sym.Class)
		}
		if err := wantArgs(1); err != nil {
			return err
		}
		return f.checkClass(in.Args[0], in.Sym.Class)
	case OpCall:
		if in.Callee == "" {
			return fmt.Errorf("call without callee")
		}
		for _, a := range in.Args {
			if err := f.checkReg(a); err != nil {
				return err
			}
		}
		if in.HasDst() {
			return f.checkReg(in.Dst)
		}
		return nil
	case OpRet:
		if len(in.Args) > 1 {
			return fmt.Errorf("ret with %d operands", len(in.Args))
		}
		if len(in.Args) == 1 {
			if !f.HasResult {
				return fmt.Errorf("value return from void function")
			}
			return f.checkClass(in.Args[0], f.ResultClass)
		}
		if f.HasResult {
			return fmt.Errorf("missing return value")
		}
		return nil
	case OpBr:
		if err := wantArgs(1); err != nil {
			return err
		}
		if err := f.checkClass(in.Args[0], ClassInt); err != nil {
			return err
		}
		if err := f.checkTarget(in.Then); err != nil {
			return err
		}
		return f.checkTarget(in.Else)
	case OpJmp:
		if err := wantArgs(0); err != nil {
			return err
		}
		return f.checkTarget(in.Then)
	}
	return fmt.Errorf("unknown op %v", in.Op)
}

// Validate checks every function in the program.
func (p *Program) Validate() error {
	seen := make(map[string]bool)
	for _, f := range p.Funcs {
		if seen[f.Name] {
			return fmt.Errorf("duplicate function %s", f.Name)
		}
		seen[f.Name] = true
		if err := f.Validate(); err != nil {
			return err
		}
		// Call targets must exist with matching shapes.
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != OpCall {
					continue
				}
				callee := p.FuncByName[in.Callee]
				if callee == nil {
					return fmt.Errorf("func %s calls undefined %s", f.Name, in.Callee)
				}
				if len(in.Args) != len(callee.Params) {
					return fmt.Errorf("func %s calls %s with %d args, want %d",
						f.Name, in.Callee, len(in.Args), len(callee.Params))
				}
				for j, a := range in.Args {
					if f.RegClass(a) != callee.RegClass(callee.Params[j]) {
						return fmt.Errorf("func %s calls %s: arg %d class mismatch", f.Name, in.Callee, j)
					}
				}
				if in.HasDst() {
					if !callee.HasResult {
						return fmt.Errorf("func %s uses result of void %s", f.Name, in.Callee)
					}
					if f.RegClass(in.Dst) != callee.ResultClass {
						return fmt.Errorf("func %s calls %s: result class mismatch", f.Name, in.Callee)
					}
				}
			}
		}
	}
	return nil
}
