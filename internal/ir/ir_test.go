package ir

import (
	"strings"
	"testing"
)

// buildAddFunc constructs: func add(a, b int) int { return a + b }
func buildAddFunc() *Func {
	f := &Func{Name: "add", HasResult: true, ResultClass: ClassInt}
	a := f.NewReg(ClassInt, "a")
	b := f.NewReg(ClassInt, "b")
	f.Params = []Reg{a, b}
	t := f.NewReg(ClassInt, "")
	blk := f.NewBlock()
	blk.Instrs = []Instr{
		{Op: OpAdd, Dst: t, Args: []Reg{a, b}},
		{Op: OpRet, Dst: NoReg, Args: []Reg{t}},
	}
	return f
}

func TestValidateOK(t *testing.T) {
	f := buildAddFunc()
	if err := f.Validate(); err != nil {
		t.Fatalf("valid function rejected: %v", err)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(f *Func)
		wants string
	}{
		{"empty block", func(f *Func) { f.NewBlock() }, "empty"},
		{"unterminated", func(f *Func) {
			f.Blocks[0].Instrs = f.Blocks[0].Instrs[:1]
		}, "terminator"},
		{"terminator in middle", func(f *Func) {
			f.Blocks[0].Instrs = append([]Instr{{Op: OpJmp, Dst: NoReg, Then: 0}}, f.Blocks[0].Instrs...)
		}, "in block middle"},
		{"class mismatch", func(f *Func) {
			x := f.NewReg(ClassFloat, "")
			f.Blocks[0].Instrs[0].Args[0] = x
		}, "class"},
		{"register out of range", func(f *Func) {
			f.Blocks[0].Instrs[0].Args[0] = Reg(99)
		}, "out of range"},
		{"bad branch target", func(f *Func) {
			cond := f.Blocks[0].Instrs[0].Dst
			f.Blocks[0].Instrs[1] = Instr{Op: OpBr, Dst: NoReg, Args: []Reg{cond}, Then: 7, Else: 0}
		}, "target"},
		{"void return of value", func(f *Func) {
			f.HasResult = false
		}, "value return"},
		{"store with dst", func(f *Func) {
			sym := &Symbol{Name: "g", Class: ClassInt}
			f.Blocks[0].Instrs[0] = Instr{Op: OpStore, Dst: f.Blocks[0].Instrs[0].Dst, Sym: sym, Args: []Reg{0}}
		}, "store must not define"},
		{"array load without index", func(f *Func) {
			sym := &Symbol{Name: "arr", Class: ClassInt, Size: 8}
			f.Blocks[0].Instrs[0] = Instr{Op: OpLoad, Dst: f.Blocks[0].Instrs[0].Dst, Sym: sym, Args: []Reg{}}
		}, "operands"},
	}
	for _, tc := range cases {
		f := buildAddFunc()
		tc.mut(f)
		err := f.Validate()
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wants) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.wants)
		}
	}
}

func TestProgramValidateCallShapes(t *testing.T) {
	add := buildAddFunc()
	caller := &Func{Name: "main", HasResult: true, ResultClass: ClassInt}
	x := caller.NewReg(ClassInt, "")
	y := caller.NewReg(ClassInt, "")
	r := caller.NewReg(ClassInt, "")
	blk := caller.NewBlock()
	blk.Instrs = []Instr{
		{Op: OpConstInt, Dst: x, IntVal: 1},
		{Op: OpConstInt, Dst: y, IntVal: 2},
		{Op: OpCall, Dst: r, Callee: "add", Args: []Reg{x, y}},
		{Op: OpRet, Dst: NoReg, Args: []Reg{r}},
	}
	p := &Program{}
	p.AddFunc(add)
	p.AddFunc(caller)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}

	// Arity mismatch.
	blk.Instrs[2].Args = []Reg{x}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "1 args") {
		t.Errorf("arity mismatch not caught: %v", err)
	}
	blk.Instrs[2].Args = []Reg{x, y}

	// Unknown callee.
	blk.Instrs[2].Callee = "nope"
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Errorf("unknown callee not caught: %v", err)
	}
	blk.Instrs[2].Callee = "add"

	// Duplicate function.
	p2 := &Program{}
	p2.AddFunc(buildAddFunc())
	p2.Funcs = append(p2.Funcs, buildAddFunc())
	if err := p2.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate not caught: %v", err)
	}
}

func TestSuccs(t *testing.T) {
	f := &Func{Name: "f"}
	c := f.NewReg(ClassInt, "")
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b0.Instrs = []Instr{
		{Op: OpConstInt, Dst: c},
		{Op: OpBr, Dst: NoReg, Args: []Reg{c}, Then: 1, Else: 2},
	}
	b1.Instrs = []Instr{{Op: OpJmp, Dst: NoReg, Then: 2}}
	b2.Instrs = []Instr{{Op: OpRet, Dst: NoReg}}
	if s := b0.Succs(); len(s) != 2 || s[0] != 1 || s[1] != 2 {
		t.Errorf("br succs = %v", s)
	}
	if s := b1.Succs(); len(s) != 1 || s[0] != 2 {
		t.Errorf("jmp succs = %v", s)
	}
	if s := b2.Succs(); len(s) != 0 {
		t.Errorf("ret succs = %v", s)
	}
	// Br with equal targets deduplicates.
	b0.Instrs[1].Else = 1
	if s := b0.Succs(); len(s) != 1 {
		t.Errorf("same-target br succs = %v", s)
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := buildAddFunc()
	c := f.Clone()
	// Mutating the clone must not touch the original.
	c.Blocks[0].Instrs[0].Args[0] = Reg(1)
	c.NewReg(ClassFloat, "extra")
	c.Blocks[0].Instrs = append(c.Blocks[0].Instrs, Instr{Op: OpNop})
	c.Locals = append(c.Locals, &Symbol{Name: "slot", Class: ClassInt, Local: true})

	if f.Blocks[0].Instrs[0].Args[0] != Reg(0) {
		t.Error("clone shares Args slices")
	}
	if f.NumRegs() != 3 {
		t.Errorf("clone shares register table: %d", f.NumRegs())
	}
	if len(f.Blocks[0].Instrs) != 2 {
		t.Error("clone shares instruction slices")
	}
	if len(f.Locals) != 0 {
		t.Error("clone shares Locals")
	}
	if err := f.Validate(); err != nil {
		t.Errorf("original invalid after clone mutation: %v", err)
	}
}

func TestStringRendering(t *testing.T) {
	f := buildAddFunc()
	out := f.String()
	for _, want := range []string{"func add(", "v0(a)", "v1(b)", "add", "ret"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering lacks %q:\n%s", want, out)
		}
	}
	p := &Program{Globals: []*Symbol{
		{Name: "g", Class: ClassInt, InitInt: 7},
		{Name: "arr", Class: ClassFloat, Size: 4},
	}}
	p.AddFunc(f)
	ps := p.String()
	if !strings.Contains(ps, "global int g = 7") || !strings.Contains(ps, "global float arr[4]") {
		t.Errorf("program rendering wrong:\n%s", ps)
	}
}

func TestSymbolIsArray(t *testing.T) {
	if (&Symbol{Size: 0}).IsArray() {
		t.Error("scalar reported as array")
	}
	if !(&Symbol{Size: 3}).IsArray() {
		t.Error("array reported as scalar")
	}
}
