package ir

import (
	"encoding/json"
	"fmt"
)

// Wire form of the IR: a canonical, self-contained JSON encoding of a
// Program. It exists for two consumers with the same requirement —
// deterministic bytes for identical IR:
//
//   - the allocation service (internal/server), whose /allocate
//     endpoint accepts a serialized program instead of MC source, and
//   - the content-addressed result cache (internal/resultcache), whose
//     keys hash the canonical encoding of one function.
//
// Determinism comes for free from encoding/json over structs and
// slices (no maps): identical IR encodes to identical bytes within one
// build of the codec. The encoding is versioned so a decoder can
// reject bytes from an incompatible codec instead of misreading them.

// WireVersion identifies the wire encoding. Bump it on any change to
// the wire structs or their meaning; it is hashed into result-cache
// keys, so stale cross-version entries can never be served.
const WireVersion = 1

// wireProgram mirrors Program.
type wireProgram struct {
	Version int           `json:"version"`
	Globals []*wireSymbol `json:"globals,omitempty"`
	Funcs   []*wireFunc   `json:"funcs"`
}

// wireSymbol mirrors Symbol.
type wireSymbol struct {
	Name      string  `json:"name"`
	Class     Class   `json:"class"`
	Size      int     `json:"size,omitempty"`
	Local     bool    `json:"local,omitempty"`
	Spill     bool    `json:"spill,omitempty"`
	InitInt   int64   `json:"init_int,omitempty"`
	InitFloat float64 `json:"init_float,omitempty"`
}

// wireFunc mirrors Func. Register classes and debug names are encoded
// positionally: RegClasses[r] is the class of virtual register r.
type wireFunc struct {
	Name        string       `json:"name"`
	Params      []Reg        `json:"params,omitempty"`
	HasResult   bool         `json:"has_result,omitempty"`
	ResultClass Class        `json:"result_class,omitempty"`
	RegClasses  []Class      `json:"reg_classes"`
	RegNames    []string     `json:"reg_names,omitempty"`
	Locals      []int        `json:"locals,omitempty"` // indices into the program symbol table
	Blocks      []*wireBlock `json:"blocks"`
}

// wireBlock mirrors Block; its ID is its index.
type wireBlock struct {
	Instrs []wireInstr `json:"instrs"`
}

// wireInstr mirrors Instr. Sym references the program-wide symbol
// table by index (-1 = none), so shared symbols stay shared after a
// round trip and spill slots (function locals) encode like any other
// symbol.
type wireInstr struct {
	Op       Op      `json:"op"`
	Dst      Reg     `json:"dst"`
	Args     []Reg   `json:"args,omitempty"`
	IntVal   int64   `json:"int_val,omitempty"`
	FloatVal float64 `json:"float_val,omitempty"`
	Cond     Cond    `json:"cond,omitempty"`
	Sym      int     `json:"sym"`
	Callee   string  `json:"callee,omitempty"`
	Then     int     `json:"then,omitempty"`
	Else     int     `json:"else,omitempty"`
}

// symTable assigns stable indices to every symbol a program references.
type symTable struct {
	index map[*Symbol]int
	syms  []*Symbol
}

func (t *symTable) add(s *Symbol) int {
	if s == nil {
		return -1
	}
	if i, ok := t.index[s]; ok {
		return i
	}
	i := len(t.syms)
	t.index[s] = i
	t.syms = append(t.syms, s)
	return i
}

// EncodeProgram renders p in the canonical wire form. Identical
// programs (same structure, same symbol contents) produce identical
// bytes.
func EncodeProgram(p *Program) ([]byte, error) {
	tab := &symTable{index: make(map[*Symbol]int)}
	wp := &wireProgram{Version: WireVersion}
	// Seed the table with the globals in program order so their indices
	// are position-independent of instruction order.
	for _, g := range p.Globals {
		tab.add(g)
	}
	wp.Funcs = make([]*wireFunc, len(p.Funcs))
	for i, fn := range p.Funcs {
		wf, err := encodeFunc(fn, tab)
		if err != nil {
			return nil, err
		}
		wp.Funcs[i] = wf
	}
	wp.Globals = make([]*wireSymbol, len(tab.syms))
	for i, s := range tab.syms {
		wp.Globals[i] = &wireSymbol{
			Name: s.Name, Class: s.Class, Size: s.Size, Local: s.Local,
			Spill: s.Spill, InitInt: s.InitInt, InitFloat: s.InitFloat,
		}
	}
	return json.Marshal(wp)
}

// EncodeFunc renders one function in the canonical wire form, with a
// private symbol table. It is the hashing form resultcache keys use:
// two functions with identical structure and identical referenced
// symbols encode identically, regardless of which program they came
// from.
func EncodeFunc(fn *Func) ([]byte, error) {
	tab := &symTable{index: make(map[*Symbol]int)}
	wf, err := encodeFunc(fn, tab)
	if err != nil {
		return nil, err
	}
	syms := make([]*wireSymbol, len(tab.syms))
	for i, s := range tab.syms {
		syms[i] = &wireSymbol{
			Name: s.Name, Class: s.Class, Size: s.Size, Local: s.Local,
			Spill: s.Spill, InitInt: s.InitInt, InitFloat: s.InitFloat,
		}
	}
	return json.Marshal(struct {
		Version int           `json:"version"`
		Syms    []*wireSymbol `json:"syms,omitempty"`
		Func    *wireFunc     `json:"func"`
	}{WireVersion, syms, wf})
}

func encodeFunc(fn *Func, tab *symTable) (*wireFunc, error) {
	wf := &wireFunc{
		Name:        fn.Name,
		Params:      fn.Params,
		HasResult:   fn.HasResult,
		ResultClass: fn.ResultClass,
		RegClasses:  make([]Class, fn.NumRegs()),
		RegNames:    make([]string, fn.NumRegs()),
	}
	named := false
	for r := 0; r < fn.NumRegs(); r++ {
		wf.RegClasses[r] = fn.RegClass(Reg(r))
		wf.RegNames[r] = fn.RegName(Reg(r))
		named = named || wf.RegNames[r] != ""
	}
	if !named {
		wf.RegNames = nil
	}
	for _, l := range fn.Locals {
		wf.Locals = append(wf.Locals, tab.add(l))
	}
	wf.Blocks = make([]*wireBlock, len(fn.Blocks))
	for i, b := range fn.Blocks {
		if b.ID != i {
			return nil, fmt.Errorf("ir: encode %s: block %d has ID %d", fn.Name, i, b.ID)
		}
		wb := &wireBlock{Instrs: make([]wireInstr, len(b.Instrs))}
		for j := range b.Instrs {
			in := &b.Instrs[j]
			wb.Instrs[j] = wireInstr{
				Op: in.Op, Dst: in.Dst, Args: in.Args,
				IntVal: in.IntVal, FloatVal: in.FloatVal, Cond: in.Cond,
				Sym: tab.add(in.Sym), Callee: in.Callee,
				Then: in.Then, Else: in.Else,
			}
		}
		wf.Blocks[i] = wb
	}
	return wf, nil
}

// DecodeProgram parses the wire form back into a validated Program.
// The result is structurally equal to the encoded one: same block IDs,
// same virtual-register numbering, same symbol sharing — so an
// allocation of the decoded program is byte-identical to one of the
// original.
func DecodeProgram(data []byte) (*Program, error) {
	var wp wireProgram
	if err := json.Unmarshal(data, &wp); err != nil {
		return nil, fmt.Errorf("ir: decode program: %w", err)
	}
	if wp.Version != WireVersion {
		return nil, fmt.Errorf("ir: decode program: wire version %d, want %d", wp.Version, WireVersion)
	}
	syms := make([]*Symbol, len(wp.Globals))
	for i, ws := range wp.Globals {
		syms[i] = &Symbol{
			Name: ws.Name, Class: ws.Class, Size: ws.Size, Local: ws.Local,
			Spill: ws.Spill, InitInt: ws.InitInt, InitFloat: ws.InitFloat,
		}
	}
	p := &Program{}
	for _, g := range syms {
		if !g.Local {
			p.Globals = append(p.Globals, g)
		}
	}
	for _, wf := range wp.Funcs {
		fn, err := decodeFunc(wf, syms)
		if err != nil {
			return nil, err
		}
		p.AddFunc(fn)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("ir: decoded program invalid: %w", err)
	}
	return p, nil
}

func decodeFunc(wf *wireFunc, syms []*Symbol) (*Func, error) {
	fn := &Func{
		Name:        wf.Name,
		Params:      wf.Params,
		HasResult:   wf.HasResult,
		ResultClass: wf.ResultClass,
	}
	for r, c := range wf.RegClasses {
		if c < 0 || c >= NumClasses {
			return nil, fmt.Errorf("ir: decode %s: register v%d has class %d", wf.Name, r, c)
		}
		name := ""
		if r < len(wf.RegNames) {
			name = wf.RegNames[r]
		}
		fn.NewReg(c, name)
	}
	symAt := func(i int) (*Symbol, error) {
		if i == -1 {
			return nil, nil
		}
		if i < 0 || i >= len(syms) {
			return nil, fmt.Errorf("ir: decode %s: symbol index %d out of range [0,%d)", wf.Name, i, len(syms))
		}
		return syms[i], nil
	}
	for _, li := range wf.Locals {
		s, err := symAt(li)
		if err != nil {
			return nil, err
		}
		if s == nil {
			return nil, fmt.Errorf("ir: decode %s: nil local symbol", wf.Name)
		}
		fn.Locals = append(fn.Locals, s)
	}
	for i, wb := range wf.Blocks {
		b := fn.NewBlock()
		if b.ID != i {
			return nil, fmt.Errorf("ir: decode %s: block ID drift", wf.Name)
		}
		b.Instrs = make([]Instr, len(wb.Instrs))
		for j := range wb.Instrs {
			wi := &wb.Instrs[j]
			sym, err := symAt(wi.Sym)
			if err != nil {
				return nil, err
			}
			b.Instrs[j] = Instr{
				Op: wi.Op, Dst: wi.Dst, Args: wi.Args,
				IntVal: wi.IntVal, FloatVal: wi.FloatVal, Cond: wi.Cond,
				Sym: sym, Callee: wi.Callee,
				Then: wi.Then, Else: wi.Else,
			}
		}
	}
	return fn, nil
}
