package types

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return Check(prog)
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("check error: %v", err)
	}
	return info
}

func wantErr(t *testing.T, src, sub string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("%q: expected error containing %q", src, sub)
	}
	if !strings.Contains(err.Error(), sub) {
		t.Fatalf("%q: error %q does not contain %q", src, err.Error(), sub)
	}
}

func TestValidProgram(t *testing.T) {
	mustCheck(t, `
int g = 10;
float scale = 2.5;
int data[64];

int helper(int x, float w) {
	float t = w * 2.0;
	if (x > 0) { return x + int(t); }
	return 0;
}

int main() {
	int i;
	int sum = 0;
	for (i = 0; i < 64; i = i + 1) {
		data[i] = helper(i, scale);
		sum = sum + data[i];
	}
	return sum;
}
`)
}

func TestUndefined(t *testing.T) {
	wantErr(t, `int f() { return nothere; }`, "undefined: nothere")
	wantErr(t, `int f() { nope(); return 0; }`, "undefined function: nope")
	wantErr(t, `int f() { x = 1; return 0; }`, "undefined: x")
}

func TestRedeclaration(t *testing.T) {
	wantErr(t, "int x; float x;", "redeclared")
	wantErr(t, "int x; int x() { return 0; }", "redeclared")
	wantErr(t, "int f() { return 0; } int f() { return 1; }", "redeclared")
	wantErr(t, "int f() { int a; int a; return 0; }", "redeclared in this block")
	wantErr(t, "int f(int a, float a) { return 0; }", "duplicate parameter")
}

func TestShadowingIsLegal(t *testing.T) {
	mustCheck(t, `
int x;
int f(int x) {
	{ float x = 1.0; x = x * 2.0; }
	return x;
}`)
}

func TestArrayRules(t *testing.T) {
	wantErr(t, "int a[4]; int f() { return a; }", "array a must be indexed")
	wantErr(t, "int x; int f() { return x[0]; }", "x is not an array")
	wantErr(t, "int a[4]; int f() { a = 1; return 0; }", "cannot assign to array")
	wantErr(t, "int a[4]; int f(float i) { return a[i]; }", "array index must be int")
	wantErr(t, "int a[4]; int f(float i) { a[i] = 1; return 0; }", "array index must be int")
	mustCheck(t, "float a[4]; int f(int i) { a[i] = 0.5; return int(a[i+1]); }")
}

func TestCallRules(t *testing.T) {
	wantErr(t, "int g(int x) { return x; } int f() { return g(); }", "expects 1 arguments, got 0")
	wantErr(t, "int g(int x) { return x; } int f() { return g(1, 2); }", "expects 1 arguments, got 2")
	wantErr(t, "int g(int x) { return x; } int f(float y) { return g(y); }", "cannot use float value as int in argument")
	wantErr(t, "int x; int f() { return x(); }", "x is not a function")
	wantErr(t, "int g() { return 0; } int f() { return g + 1; }", "g is a function")
	// int promotes to float implicitly.
	mustCheck(t, "float g(float x) { return x; } int f() { return int(g(3)); }")
}

func TestConversionRules(t *testing.T) {
	wantErr(t, "int f(float y) { int x = y; return x; }", "cannot use float value as int")
	wantErr(t, "int f(float y) { return y; }", "cannot use float value as int in return")
	mustCheck(t, "float f(int y) { return y; }")              // int -> float ok
	mustCheck(t, "int f(float y) { return int(y); }")         // explicit cast ok
	mustCheck(t, "float f(int y) { float x = y; return x; }") // promotion at init
}

func TestConditionMustBeInt(t *testing.T) {
	wantErr(t, "int f(float y) { if (y) { return 1; } return 0; }", "condition must be int")
	wantErr(t, "int f(float y) { while (y) { } return 0; }", "condition must be int")
	mustCheck(t, "int f(float y) { if (y > 0.0) { return 1; } return 0; }")
}

func TestOperatorRules(t *testing.T) {
	wantErr(t, "int f(float y) { return int(y % 2.0); }", "requires int operands")
	wantErr(t, "int f(float y) { return (y > 0.0) && y; }", "requires int operands")
	wantErr(t, "int f(float y) { return !y; }", "requires int")
	mustCheck(t, "int f(int y) { return y % 3 + (y > 1 && y < 5) - !y; }")
	// Mixed arithmetic promotes to float.
	info := mustCheck(t, "float f(int a, float b) { return a + b; }")
	_ = info
}

func TestVoidRules(t *testing.T) {
	wantErr(t, "void f() { return 1; }", "void function cannot return a value")
	wantErr(t, "int f() { return; }", "missing return value")
	wantErr(t, "void g() { } int f() { return g(); }", "cannot use void value")
	wantErr(t, "void g() { } int f() { return g() + 1; }", "void value used as operand")
	wantErr(t, "void g() { } int f() { return int(g()); }", "cannot cast void value")
	mustCheck(t, "void g() { return; } int f() { g(); return 0; }")
}

func TestBreakContinueOutsideLoop(t *testing.T) {
	wantErr(t, "int f() { break; return 0; }", "break outside loop")
	wantErr(t, "int f() { continue; return 0; }", "continue outside loop")
	mustCheck(t, "int f() { while (1) { if (1) { break; } continue; } return 0; }")
}

func TestGlobalInitializers(t *testing.T) {
	wantErr(t, "int g() { return 1; } int x = g();", "calls are not allowed in global initializers")
	wantErr(t, "float pi = 3.14; int x = pi;", "cannot use float value as int")
	mustCheck(t, "int a = 2; int b = a * 3 + 1; float c = b;")
}

func TestInfoRecordsTypes(t *testing.T) {
	prog, err := parser.Parse("float f(int a, float b) { return a + b * 2.0; }")
	if err != nil {
		t.Fatal(err)
	}
	info, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	ret := prog.Funcs[0].Body.List[0].(*ast.ReturnStmt)
	add := ret.Value.(*ast.BinaryExpr)
	if info.Types[add] != ast.FloatType {
		t.Errorf("a + b*2.0 type = %v, want float", info.Types[add])
	}
	if info.Types[add.X] != ast.IntType {
		t.Errorf("a type = %v, want int", info.Types[add.X])
	}
	if info.Types[add.Y] != ast.FloatType {
		t.Errorf("b*2.0 type = %v, want float", info.Types[add.Y])
	}
}

func TestInfoRecordsUses(t *testing.T) {
	prog, err := parser.Parse(`
int g;
int f(int p) {
	int l = p;
	g = l;
	return g;
}`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	assign := prog.Funcs[0].Body.List[1].(*ast.AssignStmt)
	obj := info.Uses[assign.Target]
	if obj == nil || obj.Kind != GlobalVar || obj.Name != "g" {
		t.Errorf("target of g=l resolved to %+v, want global g", obj)
	}
	if v, ok := assign.Value.(*ast.Ident); ok {
		if got := info.Uses[v]; got == nil || got.Kind != LocalVar {
			t.Errorf("l resolved to %+v, want local", got)
		}
	} else {
		t.Fatal("value should be an Ident")
	}
	if info.FuncByName["f"] == nil {
		t.Error("FuncByName missing f")
	}
}

func TestForScopesInitVariable(t *testing.T) {
	// The for-init assignment targets an outer variable; MC for-init is
	// an assignment, not a declaration, so the variable must exist.
	wantErr(t, "int f() { for (i = 0; i < 3; i = i + 1) { } return 0; }", "undefined: i")
	mustCheck(t, "int f() { int i; for (i = 0; i < 3; i = i + 1) { } return i; }")
}
