// Package types implements the MC type checker. It resolves names,
// verifies type rules, and records the information the IR builder needs:
// the type of every expression and the symbol behind every name use.
//
// MC's conversion rules are a simplified C: int promotes implicitly to
// float in arithmetic, assignments, arguments, and returns; converting
// float to int always requires an explicit int(...) cast.
package types

import (
	"repro/internal/ast"
	"repro/internal/source"
	"repro/internal/token"
)

// ObjKind classifies a named program object.
type ObjKind int

// The object kinds.
const (
	BadObj ObjKind = iota
	GlobalVar
	LocalVar
	ParamVar
	FuncObj
)

// String names the kind for diagnostics.
func (k ObjKind) String() string {
	switch k {
	case GlobalVar:
		return "global"
	case LocalVar:
		return "local"
	case ParamVar:
		return "parameter"
	case FuncObj:
		return "function"
	}
	return "bad"
}

// Object is a resolved program entity: a variable, parameter, or
// function.
type Object struct {
	Name string
	Kind ObjKind
	Type ast.Type // for variables and parameters
	Sig  *FuncSig // for functions
	Decl ast.Node // declaring node
}

// FuncSig is a function's type: result and parameter base types.
type FuncSig struct {
	Result ast.BaseType
	Params []ast.BaseType
}

// Info carries the results of type checking, consumed by the IR builder.
type Info struct {
	// Types records the type each expression evaluates to, before any
	// context-driven conversion.
	Types map[ast.Expr]ast.BaseType
	// Uses resolves every name-bearing node (Ident, IndexExpr, LValue,
	// CallExpr) to its object.
	Uses map[ast.Node]*Object
	// Objects maps each VarDecl and FuncDecl to the object it creates.
	Objects map[ast.Node]*Object
	// FuncByName indexes the program's functions.
	FuncByName map[string]*ast.FuncDecl
}

// Check type-checks prog and returns the collected Info. The returned
// error, when non-nil, is a *source.ErrorList with every diagnostic.
func Check(prog *ast.Program) (*Info, error) {
	c := &checker{
		info: &Info{
			Types:      make(map[ast.Expr]ast.BaseType),
			Uses:       make(map[ast.Node]*Object),
			Objects:    make(map[ast.Node]*Object),
			FuncByName: make(map[string]*ast.FuncDecl),
		},
		errs:    &source.ErrorList{},
		globals: make(map[string]*Object),
	}
	c.checkProgram(prog)
	c.errs.Sort()
	return c.info, c.errs.Err()
}

type checker struct {
	info    *Info
	errs    *source.ErrorList
	globals map[string]*Object // globals and functions share a namespace

	// Per-function state.
	scopes    []map[string]*Object
	result    ast.BaseType
	loopDepth int
}

func (c *checker) errorf(pos source.Pos, format string, args ...interface{}) {
	c.errs.Add(pos, format, args...)
}

func (c *checker) checkProgram(prog *ast.Program) {
	// First pass: declare all globals and functions so calls may be
	// forward references.
	for _, g := range prog.Globals {
		if prev, ok := c.globals[g.Name]; ok {
			c.errorf(g.Pos(), "%s redeclared (previous declaration as %s)", g.Name, prev.Kind)
			continue
		}
		obj := &Object{Name: g.Name, Kind: GlobalVar, Type: g.Type, Decl: g}
		c.globals[g.Name] = obj
		c.info.Objects[g] = obj
	}
	for _, f := range prog.Funcs {
		if prev, ok := c.globals[f.Name]; ok {
			c.errorf(f.Pos(), "%s redeclared (previous declaration as %s)", f.Name, prev.Kind)
			continue
		}
		sig := &FuncSig{Result: f.Result}
		for _, p := range f.Params {
			sig.Params = append(sig.Params, p.Type)
		}
		obj := &Object{Name: f.Name, Kind: FuncObj, Sig: sig, Decl: f}
		c.globals[f.Name] = obj
		c.info.Objects[f] = obj
		c.info.FuncByName[f.Name] = f
	}
	// Global initializers must be constant-free of calls and of other
	// globals? MC allows literals and arithmetic on literals only; the
	// simplest sound rule: initializers are checked as expressions that
	// may reference previously declared globals but not call functions.
	for _, g := range prog.Globals {
		if g.Init != nil {
			t := c.checkExpr(g.Init)
			c.checkNoCalls(g.Init)
			c.assignable(g.Pos(), g.Type.Base, t, "initializer")
		}
	}
	for _, f := range prog.Funcs {
		c.checkFunc(f)
	}
}

func (c *checker) checkNoCalls(e ast.Expr) {
	switch e := e.(type) {
	case *ast.CallExpr:
		c.errorf(e.Pos(), "calls are not allowed in global initializers")
	case *ast.BinaryExpr:
		c.checkNoCalls(e.X)
		c.checkNoCalls(e.Y)
	case *ast.UnaryExpr:
		c.checkNoCalls(e.X)
	case *ast.CastExpr:
		c.checkNoCalls(e.X)
	case *ast.IndexExpr:
		c.checkNoCalls(e.Index)
	}
}

// Parameter-count limits: MC passes all arguments in registers, so a
// call's arguments are simultaneously live. The smallest register file
// the machine model supports is (6,4,0,0); capping parameters at that
// size keeps every call colorable in every configuration.
const (
	maxIntParams   = 6
	maxFloatParams = 4
)

func (c *checker) checkFunc(f *ast.FuncDecl) {
	c.scopes = c.scopes[:0]
	c.result = f.Result
	c.loopDepth = 0
	c.pushScope()
	ints, floats := 0, 0
	for _, p := range f.Params {
		if p.Type == ast.FloatType {
			floats++
		} else {
			ints++
		}
	}
	if ints > maxIntParams {
		c.errorf(f.Pos(), "function %s has %d int parameters; MC allows at most %d (arguments are passed in registers)", f.Name, ints, maxIntParams)
	}
	if floats > maxFloatParams {
		c.errorf(f.Pos(), "function %s has %d float parameters; MC allows at most %d (arguments are passed in registers)", f.Name, floats, maxFloatParams)
	}
	for _, p := range f.Params {
		obj := &Object{Name: p.Name, Kind: ParamVar, Type: ast.Type{Base: p.Type}, Decl: p}
		if !c.declare(obj) {
			c.errorf(p.Pos(), "duplicate parameter %s", p.Name)
		}
		c.info.Objects[p] = obj
	}
	c.checkBlock(f.Body, false)
	c.popScope()
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]*Object)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(obj *Object) bool {
	top := c.scopes[len(c.scopes)-1]
	if _, ok := top[obj.Name]; ok {
		return false
	}
	top[obj.Name] = obj
	return true
}

func (c *checker) lookup(name string) *Object {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if obj, ok := c.scopes[i][name]; ok {
			return obj
		}
	}
	return c.globals[name]
}

// assignable reports (and diagnoses) whether a value of type 'from' may
// flow into a location of type 'to' in the named context. int→float is
// implicit; float→int is not.
func (c *checker) assignable(pos source.Pos, to, from ast.BaseType, what string) bool {
	if from == ast.Invalid || to == ast.Invalid {
		return true // already diagnosed
	}
	if to == from {
		return true
	}
	if to == ast.FloatType && from == ast.IntType {
		return true
	}
	c.errorf(pos, "cannot use %s value as %s in %s (use an explicit cast)", from, to, what)
	return false
}

// ---------------------------------------------------------------------
// Statements

func (c *checker) checkBlock(b *ast.BlockStmt, newScope bool) {
	if newScope {
		c.pushScope()
		defer c.popScope()
	}
	for _, s := range b.List {
		c.checkStmt(s)
	}
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.checkBlock(s, true)
	case *ast.DeclStmt:
		d := s.Decl
		if d.Init != nil {
			t := c.checkExpr(d.Init)
			c.assignable(d.Pos(), d.Type.Base, t, "initializer")
		}
		obj := &Object{Name: d.Name, Kind: LocalVar, Type: d.Type, Decl: d}
		if !c.declare(obj) {
			c.errorf(d.Pos(), "%s redeclared in this block", d.Name)
		}
		c.info.Objects[d] = obj
	case *ast.AssignStmt:
		to := c.checkLValue(s.Target)
		from := c.checkExpr(s.Value)
		c.assignable(s.Target.Pos(), to, from, "assignment")
	case *ast.ExprStmt:
		c.checkExpr(s.X)
	case *ast.IfStmt:
		c.condition(s.Cond)
		c.checkBlock(s.Then, true)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
	case *ast.WhileStmt:
		c.condition(s.Cond)
		c.loopDepth++
		c.checkBlock(s.Body, true)
		c.loopDepth--
	case *ast.DoWhileStmt:
		c.loopDepth++
		c.checkBlock(s.Body, true)
		c.loopDepth--
		c.condition(s.Cond)
	case *ast.ForStmt:
		c.pushScope()
		if s.Init != nil {
			c.checkStmt(s.Init)
		}
		if s.Cond != nil {
			c.condition(s.Cond)
		}
		if s.Post != nil {
			c.checkStmt(s.Post)
		}
		c.loopDepth++
		c.checkBlock(s.Body, true)
		c.loopDepth--
		c.popScope()
	case *ast.ReturnStmt:
		if c.result == ast.VoidType {
			if s.Value != nil {
				c.errorf(s.Pos(), "void function cannot return a value")
				c.checkExpr(s.Value)
			}
			return
		}
		if s.Value == nil {
			c.errorf(s.Pos(), "missing return value (function returns %s)", c.result)
			return
		}
		t := c.checkExpr(s.Value)
		c.assignable(s.Pos(), c.result, t, "return")
	case *ast.BreakStmt:
		if c.loopDepth == 0 {
			c.errorf(s.Pos(), "break outside loop")
		}
	case *ast.ContinueStmt:
		if c.loopDepth == 0 {
			c.errorf(s.Pos(), "continue outside loop")
		}
	}
}

func (c *checker) condition(e ast.Expr) {
	t := c.checkExpr(e)
	if t != ast.IntType && t != ast.Invalid {
		c.errorf(e.Pos(), "condition must be int, found %s (use a comparison)", t)
	}
}

func (c *checker) checkLValue(lv *ast.LValue) ast.BaseType {
	obj := c.lookup(lv.Name)
	if obj == nil {
		c.errorf(lv.Pos(), "undefined: %s", lv.Name)
		return ast.Invalid
	}
	if obj.Kind == FuncObj {
		c.errorf(lv.Pos(), "cannot assign to function %s", lv.Name)
		return ast.Invalid
	}
	c.info.Uses[lv] = obj
	if lv.Index != nil {
		if !obj.Type.IsArray() {
			c.errorf(lv.Pos(), "%s is not an array", lv.Name)
		}
		it := c.checkExpr(lv.Index)
		if it != ast.IntType && it != ast.Invalid {
			c.errorf(lv.Index.Pos(), "array index must be int, found %s", it)
		}
		return obj.Type.Base
	}
	if obj.Type.IsArray() {
		c.errorf(lv.Pos(), "cannot assign to array %s without an index", lv.Name)
	}
	return obj.Type.Base
}

// ---------------------------------------------------------------------
// Expressions

func (c *checker) checkExpr(e ast.Expr) ast.BaseType {
	t := c.exprType(e)
	c.info.Types[e] = t
	return t
}

func (c *checker) exprType(e ast.Expr) ast.BaseType {
	switch e := e.(type) {
	case *ast.IntLit:
		return ast.IntType
	case *ast.FloatLit:
		return ast.FloatType
	case *ast.Ident:
		obj := c.lookup(e.Name)
		if obj == nil {
			c.errorf(e.Pos(), "undefined: %s", e.Name)
			return ast.Invalid
		}
		if obj.Kind == FuncObj {
			c.errorf(e.Pos(), "%s is a function; call it", e.Name)
			return ast.Invalid
		}
		if obj.Type.IsArray() {
			c.errorf(e.Pos(), "array %s must be indexed", e.Name)
			return ast.Invalid
		}
		c.info.Uses[e] = obj
		return obj.Type.Base
	case *ast.IndexExpr:
		obj := c.lookup(e.Name)
		if obj == nil {
			c.errorf(e.Pos(), "undefined: %s", e.Name)
			c.checkExpr(e.Index)
			return ast.Invalid
		}
		if obj.Kind == FuncObj || !obj.Type.IsArray() {
			c.errorf(e.Pos(), "%s is not an array", e.Name)
			c.checkExpr(e.Index)
			return ast.Invalid
		}
		c.info.Uses[e] = obj
		it := c.checkExpr(e.Index)
		if it != ast.IntType && it != ast.Invalid {
			c.errorf(e.Index.Pos(), "array index must be int, found %s", it)
		}
		return obj.Type.Base
	case *ast.CallExpr:
		obj := c.lookup(e.Name)
		if obj == nil {
			c.errorf(e.Pos(), "undefined function: %s", e.Name)
			for _, a := range e.Args {
				c.checkExpr(a)
			}
			return ast.Invalid
		}
		if obj.Kind != FuncObj {
			c.errorf(e.Pos(), "%s is not a function", e.Name)
			for _, a := range e.Args {
				c.checkExpr(a)
			}
			return ast.Invalid
		}
		c.info.Uses[e] = obj
		sig := obj.Sig
		if len(e.Args) != len(sig.Params) {
			c.errorf(e.Pos(), "%s expects %d arguments, got %d", e.Name, len(sig.Params), len(e.Args))
		}
		for i, a := range e.Args {
			at := c.checkExpr(a)
			if i < len(sig.Params) {
				c.assignable(a.Pos(), sig.Params[i], at, "argument")
			}
		}
		return sig.Result
	case *ast.BinaryExpr:
		xt := c.checkExpr(e.X)
		yt := c.checkExpr(e.Y)
		return c.binaryType(e, xt, yt)
	case *ast.UnaryExpr:
		xt := c.checkExpr(e.X)
		if xt == ast.Invalid {
			return ast.Invalid
		}
		switch e.Op {
		case token.MINUS:
			return xt
		case token.NOT:
			if xt != ast.IntType {
				c.errorf(e.Pos(), "operator ! requires int, found %s", xt)
				return ast.Invalid
			}
			return ast.IntType
		}
		return ast.Invalid
	case *ast.CastExpr:
		xt := c.checkExpr(e.X)
		if xt == ast.VoidType {
			c.errorf(e.Pos(), "cannot cast void value")
			return ast.Invalid
		}
		return e.To
	}
	return ast.Invalid
}

func (c *checker) binaryType(e *ast.BinaryExpr, xt, yt ast.BaseType) ast.BaseType {
	if xt == ast.Invalid || yt == ast.Invalid {
		return ast.Invalid
	}
	if xt == ast.VoidType || yt == ast.VoidType {
		c.errorf(e.Pos(), "void value used as operand of %s", e.Op)
		return ast.Invalid
	}
	switch e.Op {
	case token.PLUS, token.MINUS, token.STAR, token.SLASH:
		if xt == ast.FloatType || yt == ast.FloatType {
			return ast.FloatType
		}
		return ast.IntType
	case token.PERCENT:
		if xt != ast.IntType || yt != ast.IntType {
			c.errorf(e.Pos(), "operator %% requires int operands")
			return ast.Invalid
		}
		return ast.IntType
	case token.EQ, token.NE, token.LT, token.LE, token.GT, token.GE:
		// Comparisons promote and yield int.
		return ast.IntType
	case token.AND, token.OR:
		if xt != ast.IntType || yt != ast.IntType {
			c.errorf(e.Pos(), "operator %s requires int operands", e.Op)
			return ast.Invalid
		}
		return ast.IntType
	}
	c.errorf(e.Pos(), "invalid binary operator %s", e.Op)
	return ast.Invalid
}
