package parser

import (
	"testing"

	"repro/internal/irbuild"
	"repro/internal/types"
)

// FuzzParse feeds arbitrary text through the whole front end: the
// lexer, parser, and type checker must never panic, and anything that
// passes all three must lower to structurally valid IR.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"int main() { return 0; }",
		"int a[4]; float f(int x, float y) { return y + float(x); }",
		"int f() { while (1) { if (2) { break; } continue; } return 3; }",
		"void v() { } int main() { v(); return 0; }",
		"int f() { return 1 +",
		"int 3x; float float;",
		"int f(int a) { int a; { int a = a; } return a; }",
		"int g = 1 / 0;",
		"do while for if else",
		"int f() { for (;;) { } }",
		"/* unterminated",
		"int x = ---3;",
		"float f() { return 1e; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		info, err := types.Check(prog)
		if err != nil {
			return
		}
		ir, err := irbuild.Build(prog, info)
		if err != nil {
			// The builder may reject programs on its own diagnostics
			// (constant division by zero in a global initializer,
			// forward global references); a clean error is fine — only
			// panics and invalid IR are bugs.
			return
		}
		if err := ir.Validate(); err != nil {
			t.Fatalf("lowered IR invalid: %v\n%s", err, src)
		}
	})
}
