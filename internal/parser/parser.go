// Package parser implements a recursive-descent parser for the MC
// language, producing the AST defined in package ast.
package parser

import (
	"strconv"

	"repro/internal/ast"
	"repro/internal/lexer"
	"repro/internal/source"
	"repro/internal/token"
)

// Parse parses a complete MC translation unit. On failure it returns the
// (possibly partial) program together with a non-nil error carrying all
// diagnostics.
func Parse(src string) (*ast.Program, error) {
	return ParseFile("", src)
}

// ParseFile is Parse with a file name attached to diagnostics.
func ParseFile(filename, src string) (*ast.Program, error) {
	errs := &source.ErrorList{File: filename}
	p := &parser{lex: lexer.New(src, errs), errs: errs}
	p.next()
	prog := p.parseProgram()
	errs.Sort()
	return prog, errs.Err()
}

type parser struct {
	lex   *lexer.Lexer
	errs  *source.ErrorList
	tok   lexer.Token  // current token
	ahead *lexer.Token // one-token lookahead buffer
}

func (p *parser) next() {
	if p.ahead != nil {
		p.tok = *p.ahead
		p.ahead = nil
		return
	}
	p.tok = p.lex.Next()
}

// peek returns the token after the current one without consuming it.
func (p *parser) peek() lexer.Token {
	if p.ahead == nil {
		t := p.lex.Next()
		p.ahead = &t
	}
	return *p.ahead
}

func (p *parser) errorf(pos source.Pos, format string, args ...interface{}) {
	p.errs.Add(pos, format, args...)
}

// expect consumes the current token when it has kind k and reports an
// error (without consuming) otherwise. It returns the token either way.
func (p *parser) expect(k token.Kind) lexer.Token {
	t := p.tok
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		return t
	}
	p.next()
	return t
}

// got consumes the current token when it has kind k.
func (p *parser) got(k token.Kind) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

// sync skips tokens until a likely statement/declaration boundary, to
// recover from a parse error without cascading.
func (p *parser) sync() {
	for {
		switch p.tok.Kind {
		case token.EOF, token.SEMI, token.RBRACE:
			p.got(token.SEMI)
			return
		case token.INT, token.FLOAT, token.VOID, token.IF, token.WHILE,
			token.FOR, token.DO, token.RETURN, token.BREAK, token.CONTINUE:
			return
		}
		p.next()
	}
}

// ---------------------------------------------------------------------
// Declarations

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	for p.tok.Kind != token.EOF {
		switch p.tok.Kind {
		case token.INT, token.FLOAT, token.VOID:
			base := p.baseType()
			name := p.expect(token.IDENT)
			if p.tok.Kind == token.LPAREN {
				prog.Funcs = append(prog.Funcs, p.parseFuncRest(base, name))
			} else {
				if base == ast.VoidType {
					p.errorf(name.Pos, "variable %s cannot have type void", name.Lit)
					base = ast.IntType
				}
				prog.Globals = append(prog.Globals, p.parseVarRest(base, name))
			}
		default:
			p.errorf(p.tok.Pos, "expected declaration, found %s", p.tok)
			p.next()
			p.sync()
		}
	}
	return prog
}

func (p *parser) baseType() ast.BaseType {
	switch p.tok.Kind {
	case token.INT:
		p.next()
		return ast.IntType
	case token.FLOAT:
		p.next()
		return ast.FloatType
	case token.VOID:
		p.next()
		return ast.VoidType
	}
	p.errorf(p.tok.Pos, "expected type, found %s", p.tok)
	p.next()
	return ast.Invalid
}

// parseVarRest parses the remainder of a variable declaration after the
// base type and name have been consumed: optional array length, optional
// initializer, and the terminating semicolon.
func (p *parser) parseVarRest(base ast.BaseType, name lexer.Token) *ast.VarDecl {
	d := &ast.VarDecl{Name: name.Lit, Type: ast.Type{Base: base}, NamePos: name.Pos}
	if p.got(token.LBRACK) {
		lenTok := p.expect(token.INTLIT)
		n, err := strconv.Atoi(lenTok.Lit)
		if err != nil || n <= 0 {
			p.errorf(lenTok.Pos, "array length must be a positive integer literal")
			n = 1
		}
		d.Type.ArrayLen = n
		p.expect(token.RBRACK)
	}
	if p.got(token.ASSIGN) {
		if d.Type.IsArray() {
			p.errorf(p.tok.Pos, "arrays cannot have initializers")
		}
		d.Init = p.parseExpr()
	}
	p.expect(token.SEMI)
	return d
}

func (p *parser) parseFuncRest(result ast.BaseType, name lexer.Token) *ast.FuncDecl {
	f := &ast.FuncDecl{Name: name.Lit, Result: result, NamePos: name.Pos}
	p.expect(token.LPAREN)
	if p.tok.Kind != token.RPAREN {
		for {
			base := p.baseType()
			if base == ast.VoidType {
				p.errorf(p.tok.Pos, "parameters cannot have type void")
				base = ast.IntType
			}
			id := p.expect(token.IDENT)
			f.Params = append(f.Params, &ast.Param{Name: id.Lit, Type: base, NamePos: id.Pos})
			if !p.got(token.COMMA) {
				break
			}
		}
	}
	p.expect(token.RPAREN)
	f.Body = p.parseBlock()
	return f
}

// ---------------------------------------------------------------------
// Statements

func (p *parser) parseBlock() *ast.BlockStmt {
	b := &ast.BlockStmt{Brace: p.tok.Pos}
	p.expect(token.LBRACE)
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		before := p.tok
		b.List = append(b.List, p.parseStmt())
		if p.tok == before {
			// No progress — defensive against error loops.
			p.next()
		}
	}
	p.expect(token.RBRACE)
	return b
}

func (p *parser) parseStmt() ast.Stmt {
	switch p.tok.Kind {
	case token.INT, token.FLOAT:
		// A declaration — unless this is a cast expression statement
		// like "int(f());" which MC does not allow at statement level,
		// so types always start declarations here.
		base := p.baseType()
		name := p.expect(token.IDENT)
		return &ast.DeclStmt{Decl: p.parseVarRest(base, name)}
	case token.LBRACE:
		return p.parseBlock()
	case token.IF:
		return p.parseIf()
	case token.WHILE:
		pos := p.tok.Pos
		p.next()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		return &ast.WhileStmt{Cond: cond, Body: p.parseBlock(), While: pos}
	case token.DO:
		pos := p.tok.Pos
		p.next()
		body := p.parseBlock()
		p.expect(token.WHILE)
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		p.expect(token.SEMI)
		return &ast.DoWhileStmt{Body: body, Cond: cond, Do: pos}
	case token.FOR:
		return p.parseFor()
	case token.RETURN:
		pos := p.tok.Pos
		p.next()
		var val ast.Expr
		if p.tok.Kind != token.SEMI {
			val = p.parseExpr()
		}
		p.expect(token.SEMI)
		return &ast.ReturnStmt{Value: val, Return: pos}
	case token.BREAK:
		pos := p.tok.Pos
		p.next()
		p.expect(token.SEMI)
		return &ast.BreakStmt{Break: pos}
	case token.CONTINUE:
		pos := p.tok.Pos
		p.next()
		p.expect(token.SEMI)
		return &ast.ContinueStmt{Continue: pos}
	case token.IDENT:
		if p.peek().Kind == token.LPAREN {
			call := p.parseExpr()
			p.expect(token.SEMI)
			return &ast.ExprStmt{X: call}
		}
		s := p.parseAssign()
		p.expect(token.SEMI)
		return s
	}
	p.errorf(p.tok.Pos, "expected statement, found %s", p.tok)
	p.sync()
	return &ast.BlockStmt{Brace: p.tok.Pos}
}

func (p *parser) parseIf() ast.Stmt {
	pos := p.tok.Pos
	p.next()
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseBlock()
	var els ast.Stmt
	if p.got(token.ELSE) {
		if p.tok.Kind == token.IF {
			els = p.parseIf()
		} else {
			els = p.parseBlock()
		}
	}
	return &ast.IfStmt{Cond: cond, Then: then, Else: els, If: pos}
}

func (p *parser) parseFor() ast.Stmt {
	pos := p.tok.Pos
	p.next()
	p.expect(token.LPAREN)
	f := &ast.ForStmt{For: pos}
	if p.tok.Kind != token.SEMI {
		f.Init = p.parseAssign()
	}
	p.expect(token.SEMI)
	if p.tok.Kind != token.SEMI {
		f.Cond = p.parseExpr()
	}
	p.expect(token.SEMI)
	if p.tok.Kind != token.RPAREN {
		f.Post = p.parseAssign()
	}
	p.expect(token.RPAREN)
	f.Body = p.parseBlock()
	return f
}

func (p *parser) parseAssign() *ast.AssignStmt {
	name := p.expect(token.IDENT)
	lv := &ast.LValue{Name: name.Lit, NamePos: name.Pos}
	if p.got(token.LBRACK) {
		lv.Index = p.parseExpr()
		p.expect(token.RBRACK)
	}
	p.expect(token.ASSIGN)
	return &ast.AssignStmt{Target: lv, Value: p.parseExpr()}
}

// ---------------------------------------------------------------------
// Expressions

func (p *parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		prec := p.tok.Kind.Precedence()
		if prec < minPrec {
			return x
		}
		op := p.tok.Kind
		p.next()
		y := p.parseBinary(prec + 1)
		x = &ast.BinaryExpr{Op: op, X: x, Y: y}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.tok.Kind {
	case token.MINUS:
		pos := p.tok.Pos
		p.next()
		return &ast.UnaryExpr{Op: token.MINUS, X: p.parseUnary(), OpPos: pos}
	case token.NOT:
		pos := p.tok.Pos
		p.next()
		return &ast.UnaryExpr{Op: token.NOT, X: p.parseUnary(), OpPos: pos}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() ast.Expr {
	switch p.tok.Kind {
	case token.INTLIT:
		t := p.tok
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errorf(t.Pos, "integer literal %s out of range", t.Lit)
		}
		return &ast.IntLit{Value: v, LitPos: t.Pos}
	case token.FLOATLIT:
		t := p.tok
		p.next()
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid float literal %s", t.Lit)
		}
		return &ast.FloatLit{Value: v, LitPos: t.Pos}
	case token.INT, token.FLOAT:
		// Cast: int(expr) or float(expr).
		pos := p.tok.Pos
		to := ast.IntType
		if p.tok.Kind == token.FLOAT {
			to = ast.FloatType
		}
		p.next()
		p.expect(token.LPAREN)
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return &ast.CastExpr{To: to, X: x, CastPo: pos}
	case token.IDENT:
		t := p.tok
		p.next()
		switch p.tok.Kind {
		case token.LPAREN:
			p.next()
			call := &ast.CallExpr{Name: t.Lit, NamePos: t.Pos}
			if p.tok.Kind != token.RPAREN {
				for {
					call.Args = append(call.Args, p.parseExpr())
					if !p.got(token.COMMA) {
						break
					}
				}
			}
			p.expect(token.RPAREN)
			return call
		case token.LBRACK:
			p.next()
			idx := p.parseExpr()
			p.expect(token.RBRACK)
			return &ast.IndexExpr{Name: t.Lit, Index: idx, NamePos: t.Pos}
		}
		return &ast.Ident{Name: t.Lit, NamePos: t.Pos}
	case token.LPAREN:
		p.next()
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return x
	}
	p.errorf(p.tok.Pos, "expected expression, found %s", p.tok)
	t := p.tok
	p.next()
	return &ast.IntLit{Value: 0, LitPos: t.Pos}
}
