package parser

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/token"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return prog
}

func TestEmptyProgram(t *testing.T) {
	prog := mustParse(t, "")
	if len(prog.Funcs) != 0 || len(prog.Globals) != 0 {
		t.Fatal("expected empty program")
	}
}

func TestGlobals(t *testing.T) {
	prog := mustParse(t, `
int x;
int y = 3;
float f = 1.5;
int arr[100];
float mat[64];
`)
	if len(prog.Globals) != 5 {
		t.Fatalf("got %d globals, want 5", len(prog.Globals))
	}
	if prog.Globals[1].Init == nil {
		t.Error("y should have an initializer")
	}
	if prog.Globals[3].Type.ArrayLen != 100 {
		t.Errorf("arr length = %d, want 100", prog.Globals[3].Type.ArrayLen)
	}
	if prog.Globals[4].Type.Base != ast.FloatType {
		t.Errorf("mat base = %v, want float", prog.Globals[4].Type.Base)
	}
}

func TestFunctionHeader(t *testing.T) {
	prog := mustParse(t, `
void noargs() { }
int two(int a, float b) { return a; }
float one(float x) { return x; }
`)
	if len(prog.Funcs) != 3 {
		t.Fatalf("got %d funcs, want 3", len(prog.Funcs))
	}
	f := prog.Funcs[1]
	if f.Name != "two" || f.Result != ast.IntType || len(f.Params) != 2 {
		t.Errorf("two parsed wrong: %+v", f)
	}
	if f.Params[1].Type != ast.FloatType {
		t.Errorf("param b type = %v, want float", f.Params[1].Type)
	}
}

func TestStatements(t *testing.T) {
	prog := mustParse(t, `
int main() {
	int i;
	int a[10];
	i = 0;
	a[i] = i + 1;
	if (i < 10) { i = 1; } else if (i > 20) { i = 2; } else { i = 3; }
	while (i < 10) { i = i + 1; }
	do { i = i - 1; } while (i > 0);
	for (i = 0; i < 10; i = i + 1) { a[i] = i; }
	for (;;) { break; }
	while (1) { continue; }
	main();
	return i;
}
`)
	body := prog.Funcs[0].Body.List
	wantTypes := []string{
		"*ast.DeclStmt", "*ast.DeclStmt", "*ast.AssignStmt", "*ast.AssignStmt",
		"*ast.IfStmt", "*ast.WhileStmt", "*ast.DoWhileStmt", "*ast.ForStmt",
		"*ast.ForStmt", "*ast.WhileStmt", "*ast.ExprStmt", "*ast.ReturnStmt",
	}
	if len(body) != len(wantTypes) {
		t.Fatalf("got %d statements, want %d", len(body), len(wantTypes))
	}
	for i, s := range body {
		if got := typeName(s); got != wantTypes[i] {
			t.Errorf("stmt %d: got %s, want %s", i, got, wantTypes[i])
		}
	}
}

func typeName(v interface{}) string {
	switch v.(type) {
	case *ast.DeclStmt:
		return "*ast.DeclStmt"
	case *ast.AssignStmt:
		return "*ast.AssignStmt"
	case *ast.IfStmt:
		return "*ast.IfStmt"
	case *ast.WhileStmt:
		return "*ast.WhileStmt"
	case *ast.DoWhileStmt:
		return "*ast.DoWhileStmt"
	case *ast.ForStmt:
		return "*ast.ForStmt"
	case *ast.ExprStmt:
		return "*ast.ExprStmt"
	case *ast.ReturnStmt:
		return "*ast.ReturnStmt"
	case *ast.BlockStmt:
		return "*ast.BlockStmt"
	case *ast.BreakStmt:
		return "*ast.BreakStmt"
	case *ast.ContinueStmt:
		return "*ast.ContinueStmt"
	}
	return "?"
}

func TestPrecedence(t *testing.T) {
	prog := mustParse(t, `int f() { return 1 + 2 * 3; }`)
	ret := prog.Funcs[0].Body.List[0].(*ast.ReturnStmt)
	add, ok := ret.Value.(*ast.BinaryExpr)
	if !ok || add.Op != token.PLUS {
		t.Fatalf("top op = %v, want +", ret.Value)
	}
	mul, ok := add.Y.(*ast.BinaryExpr)
	if !ok || mul.Op != token.STAR {
		t.Fatalf("rhs = %v, want 2*3", add.Y)
	}
}

func TestPrecedenceFull(t *testing.T) {
	// a || b && c == d < e + f * g  parses as a || (b && ((c == (d < (e + (f*g))))))
	prog := mustParse(t, `int f() { return a || b && c == d < e + f * g; }`)
	ret := prog.Funcs[0].Body.List[0].(*ast.ReturnStmt)
	or := ret.Value.(*ast.BinaryExpr)
	if or.Op != token.OR {
		t.Fatalf("top = %v, want ||", or.Op)
	}
	and := or.Y.(*ast.BinaryExpr)
	if and.Op != token.AND {
		t.Fatalf("next = %v, want &&", and.Op)
	}
	eq := and.Y.(*ast.BinaryExpr)
	if eq.Op != token.EQ {
		t.Fatalf("next = %v, want ==", eq.Op)
	}
	lt := eq.Y.(*ast.BinaryExpr)
	if lt.Op != token.LT {
		t.Fatalf("next = %v, want <", lt.Op)
	}
}

func TestLeftAssociativity(t *testing.T) {
	prog := mustParse(t, `int f() { return 10 - 4 - 3; }`)
	ret := prog.Funcs[0].Body.List[0].(*ast.ReturnStmt)
	outer := ret.Value.(*ast.BinaryExpr)
	if outer.Op != token.MINUS {
		t.Fatal("want -")
	}
	if _, ok := outer.X.(*ast.BinaryExpr); !ok {
		t.Fatal("want (10-4)-3, left side should be binary")
	}
	if lit, ok := outer.Y.(*ast.IntLit); !ok || lit.Value != 3 {
		t.Fatal("right side should be 3")
	}
}

func TestUnaryAndCast(t *testing.T) {
	prog := mustParse(t, `int f(float x) { return int(-x) + !0; }`)
	ret := prog.Funcs[0].Body.List[0].(*ast.ReturnStmt)
	add := ret.Value.(*ast.BinaryExpr)
	cast, ok := add.X.(*ast.CastExpr)
	if !ok || cast.To != ast.IntType {
		t.Fatalf("lhs = %T, want int cast", add.X)
	}
	if _, ok := cast.X.(*ast.UnaryExpr); !ok {
		t.Fatal("cast operand should be unary minus")
	}
	if u, ok := add.Y.(*ast.UnaryExpr); !ok || u.Op != token.NOT {
		t.Fatal("rhs should be !0")
	}
}

func TestCallsAndIndex(t *testing.T) {
	prog := mustParse(t, `int f(int n) { return g(n, a[n+1], 2.5) + a[f(0)]; }`)
	ret := prog.Funcs[0].Body.List[0].(*ast.ReturnStmt)
	add := ret.Value.(*ast.BinaryExpr)
	call, ok := add.X.(*ast.CallExpr)
	if !ok || call.Name != "g" || len(call.Args) != 3 {
		t.Fatalf("lhs call parsed wrong: %+v", add.X)
	}
	idx, ok := add.Y.(*ast.IndexExpr)
	if !ok || idx.Name != "a" {
		t.Fatalf("rhs index parsed wrong: %+v", add.Y)
	}
	if _, ok := idx.Index.(*ast.CallExpr); !ok {
		t.Fatal("index expression should be a call")
	}
}

func TestDanglingElse(t *testing.T) {
	prog := mustParse(t, `
int f(int x) {
	if (x > 0) { if (x > 1) { return 2; } else { return 1; } }
	return 0;
}`)
	outer := prog.Funcs[0].Body.List[0].(*ast.IfStmt)
	if outer.Else != nil {
		t.Fatal("outer if should have no else")
	}
	inner := outer.Then.List[0].(*ast.IfStmt)
	if inner.Else == nil {
		t.Fatal("inner if should own the else")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"int;", "expected IDENT"},
		{"int f( { }", "expected type"},
		{"int f() { return 1 }", "expected ;"},
		{"int f() { x = ; }", "expected expression"},
		{"int f() { if x { } }", "expected ("},
		{"int a[0];", "array length must be a positive"},
		{"int a[-1];", "array length must be a positive"},
		{"int a[10] = 3;", "arrays cannot have initializers"},
		{"void x;", "cannot have type void"},
		{"int f(void v) { }", "parameters cannot have type void"},
		{"@", "expected declaration"},
	}
	for _, tt := range cases {
		_, err := Parse(tt.src)
		if err == nil {
			t.Errorf("%q: expected error containing %q, got none", tt.src, tt.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tt.wantSub) {
			t.Errorf("%q: error %q does not contain %q", tt.src, err.Error(), tt.wantSub)
		}
	}
}

func TestErrorRecoveryKeepsParsing(t *testing.T) {
	// Even with an error in the first function, the second function
	// should still be parsed.
	prog, err := Parse(`
int f() { x = ; }
int g() { return 1; }
`)
	if err == nil {
		t.Fatal("expected errors")
	}
	if len(prog.Funcs) != 2 {
		t.Fatalf("got %d funcs despite recovery, want 2", len(prog.Funcs))
	}
}

func TestForVariants(t *testing.T) {
	prog := mustParse(t, `
int f() {
	int i;
	for (i = 0; i < 4; i = i + 1) { }
	for (; i < 8;) { i = i + 1; }
	return i;
}`)
	f1 := prog.Funcs[0].Body.List[1].(*ast.ForStmt)
	if f1.Init == nil || f1.Cond == nil || f1.Post == nil {
		t.Error("full for should have all three parts")
	}
	f2 := prog.Funcs[0].Body.List[2].(*ast.ForStmt)
	if f2.Init != nil || f2.Cond == nil || f2.Post != nil {
		t.Error("sparse for parsed wrong")
	}
}

func TestNestedBlocksAndShadowDecl(t *testing.T) {
	prog := mustParse(t, `
int f() {
	int x = 1;
	{
		int x = 2;
		{ int x = 3; }
	}
	return x;
}`)
	if len(prog.Funcs[0].Body.List) != 3 {
		t.Fatalf("got %d stmts", len(prog.Funcs[0].Body.List))
	}
}

func TestFileNameInErrors(t *testing.T) {
	_, err := ParseFile("prog.mc", "int;")
	if err == nil || !strings.Contains(err.Error(), "prog.mc:") {
		t.Fatalf("error should carry file name, got %v", err)
	}
}
