package liveness_test

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/cfg"
	"repro/internal/compile"
	"repro/internal/ir"
	"repro/internal/liveness"
)

func analyze(t *testing.T, src, fn string) (*ir.Func, *liveness.Info, *cfg.Graph) {
	t.Helper()
	prog, err := compile.Source(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f := prog.FuncByName[fn]
	if f == nil {
		t.Fatalf("no function %s", fn)
	}
	g := cfg.New(f)
	return f, liveness.Compute(f, g), g
}

// regByName finds the virtual register of a named variable.
func regByName(f *ir.Func, name string) ir.Reg {
	for r := 0; r < f.NumRegs(); r++ {
		if f.RegName(ir.Reg(r)) == name {
			return ir.Reg(r)
		}
	}
	return ir.NoReg
}

func TestParamLiveIntoEntry(t *testing.T) {
	f, info, _ := analyze(t, `int f(int a, int b) { return a + b; }`, "f")
	for _, p := range f.Params {
		if !info.In[0].Has(int(p)) {
			t.Errorf("param v%d not live into entry", p)
		}
	}
}

func TestDeadParamNotLive(t *testing.T) {
	f, info, _ := analyze(t, `int f(int a, int unused) { return a; }`, "f")
	u := regByName(f, "unused")
	if u == ir.NoReg {
		t.Fatal("no reg for unused")
	}
	if info.In[0].Has(int(u)) {
		t.Error("unused param live into entry")
	}
}

func TestLoopCarriedValueLiveAroundLoop(t *testing.T) {
	f, info, g := analyze(t, `
int f(int n) {
	int acc = 0;
	int i = 0;
	while (i < n) { acc = acc + i; i = i + 1; }
	return acc;
}`, "f")
	acc := regByName(f, "acc")
	// acc must be live on the loop back edge: live-out of every block
	// inside the loop that reaches the header.
	found := false
	for _, b := range f.Blocks {
		if g.LoopDepth[b.ID] > 0 && info.Out[b.ID].Has(int(acc)) {
			found = true
		}
	}
	if !found {
		t.Error("loop-carried acc not live inside the loop")
	}
}

func TestValueDeadAfterLastUse(t *testing.T) {
	f, info, _ := analyze(t, `
int f(int a) {
	int tmp = a * 2;
	int out = tmp + 1;
	return out;
}`, "f")
	tmp := regByName(f, "tmp")
	// tmp is consumed before the final return; it must not be live out
	// of the (single) block... it is all one block, so check per
	// instruction via WalkBlock: after its last use, tmp is not live.
	blk := f.Blocks[0]
	sawUse := false
	info.WalkBlock(blk, func(in *ir.Instr, after *bitset.Set) {
		// Walk is backwards: the first time we see tmp used, everything
		// visited earlier (later in program order) must not have tmp
		// live.
		for _, a := range in.Args {
			if a == tmp {
				sawUse = true
			}
		}
		if !sawUse && after.Has(int(tmp)) {
			t.Error("tmp live after its last use")
		}
	})
	if !sawUse {
		t.Fatal("never saw a use of tmp")
	}
}

func TestBranchMerge(t *testing.T) {
	f, info, _ := analyze(t, `
int f(int c) {
	int x = 1;
	int y = 2;
	if (c > 0) { x = y + 1; } else { y = x + 1; }
	return x + y;
}`, "f")
	x, y := regByName(f, "x"), regByName(f, "y")
	// Both x and y are live at the join; find the block executing the
	// final add: x and y must be live into it.
	for _, b := range f.Blocks {
		if tm := b.Terminator(); tm != nil && tm.Op == ir.OpRet {
			if !info.In[b.ID].Has(int(x)) || !info.In[b.ID].Has(int(y)) {
				t.Error("x and y should be live into the return block")
			}
		}
	}
}

func TestLiveAcrossCalls(t *testing.T) {
	f, info, _ := analyze(t, `
int g(int v) { return v + 1; }
int f(int a, int b) {
	int keep = a * 7;
	int r = g(b);
	return keep + r;
}`, "f")
	keep := regByName(f, "keep")
	calls := 0
	info.LiveAcrossCalls(func(b *ir.Block, idx int, call *ir.Instr, crossing *bitset.Set) {
		calls++
		if call.Callee != "g" {
			t.Errorf("unexpected callee %s", call.Callee)
		}
		if !crossing.Has(int(keep)) {
			t.Error("keep should be live across the call")
		}
		if call.HasDst() && crossing.Has(int(call.Dst)) {
			t.Error("call result must not count as crossing")
		}
	})
	if calls != 1 {
		t.Fatalf("visited %d calls, want 1", calls)
	}
}

func TestArgsNotLiveAcrossWhenDeadAfter(t *testing.T) {
	f, info, _ := analyze(t, `
int g(int v) { return v + 1; }
int f(int a) {
	int r = g(a);
	return r;
}`, "f")
	a := regByName(f, "a")
	info.LiveAcrossCalls(func(b *ir.Block, idx int, call *ir.Instr, crossing *bitset.Set) {
		if crossing.Has(int(a)) {
			t.Error("a is dead after the call; must not cross")
		}
	})
}

func TestChainedCallsCrossing(t *testing.T) {
	// v is redefined through the chain, so nothing of the chain crosses;
	// but the accumulator does.
	f, info, _ := analyze(t, `
int g(int v) { return v + 1; }
int f(int a, int n) {
	int acc = n * 3;
	int v = g(a);
	v = g(v);
	v = g(v);
	return acc + v;
}`, "f")
	acc := regByName(f, "acc")
	v := regByName(f, "v")
	crossCountAcc, crossCountV := 0, 0
	info.LiveAcrossCalls(func(b *ir.Block, idx int, call *ir.Instr, crossing *bitset.Set) {
		if crossing.Has(int(acc)) {
			crossCountAcc++
		}
		if crossing.Has(int(v)) {
			crossCountV++
		}
	})
	if crossCountAcc != 3 {
		t.Errorf("acc crosses %d calls, want 3", crossCountAcc)
	}
	if crossCountV != 0 {
		t.Errorf("v crosses %d calls, want 0 (redefined by each)", crossCountV)
	}
}

func TestGlobalsNeverInLiveSets(t *testing.T) {
	// Globals live in memory; only virtual registers appear in liveness.
	f, info, _ := analyze(t, `
int g = 5;
int f() { g = g + 1; return g; }`, "f")
	// All live-in registers at entry must be valid vregs (trivially true
	// by typing) and entry live-in should be empty: no params.
	if got := info.In[0].Count(); got != 0 {
		t.Errorf("entry live-in = %d registers, want 0", got)
	}
	_ = f
}
