// Package liveness computes per-block live-variable information for IR
// functions with the standard backward dataflow:
//
//	in[b]  = use[b] ∪ (out[b] − def[b])
//	out[b] = ∪ over successors s of in[s]
//
// It also provides a backward per-instruction walk, which the
// interference builder and the call-crossing analysis share.
package liveness

import (
	"repro/internal/bitset"
	"repro/internal/cfg"
	"repro/internal/ir"
)

// Info holds the liveness sets of one function, indexed by block ID.
type Info struct {
	Fn  *ir.Func
	In  []*bitset.Set
	Out []*bitset.Set

	// Scratch reused across WalkBlock and LiveAcrossCalls calls, so the
	// per-block walks allocate nothing after warm-up. Each walker owns
	// its own sets (WalkBlock inside a LiveAcrossCalls visit is fine),
	// but neither walker may be re-entered from its own visit callback,
	// and an Info must not be walked from two goroutines at once.
	walk     *bitset.Set
	callWalk *bitset.Set
	cross    *bitset.Set
	callIdx  []int
	callLive []*bitset.Set
}

// Fork returns a view of info sharing the immutable In/Out sets but
// owning fresh walk scratch, so several goroutines can walk one
// computed liveness result concurrently — each through its own fork.
// The sets themselves must no longer be mutated once forked.
func (info *Info) Fork() *Info {
	return &Info{Fn: info.Fn, In: info.In, Out: info.Out}
}

// Compute runs the dataflow to fixpoint.
func Compute(fn *ir.Func, g *cfg.Graph) *Info {
	n := len(fn.Blocks)
	nr := fn.NumRegs()
	info := &Info{Fn: fn, In: make([]*bitset.Set, n), Out: make([]*bitset.Set, n)}
	use := make([]*bitset.Set, n)
	def := make([]*bitset.Set, n)
	for i := 0; i < n; i++ {
		info.In[i] = bitset.New(nr)
		info.Out[i] = bitset.New(nr)
		use[i] = bitset.New(nr)
		def[i] = bitset.New(nr)
	}

	// Local use/def: a use counts only when upward-exposed (not
	// preceded by a def in the same block).
	for _, b := range fn.Blocks {
		u, d := use[b.ID], def[b.ID]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for _, a := range in.Args {
				if !d.Has(int(a)) {
					u.Add(int(a))
				}
			}
			if in.HasDst() {
				d.Add(int(in.Dst))
			}
		}
	}

	// Iterate to fixpoint in postorder (reverse of RPO) for fast
	// convergence of the backward problem.
	order := make([]int, len(g.RPO))
	for i, b := range g.RPO {
		order[len(g.RPO)-1-i] = b
	}
	tmp := bitset.New(nr)
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			out := info.Out[b]
			for _, s := range g.Succs[b] {
				if out.UnionWith(info.In[s]) {
					changed = true
				}
			}
			tmp.Copy(out)
			tmp.DiffWith(def[b])
			tmp.UnionWith(use[b])
			if !tmp.Equal(info.In[b]) {
				info.In[b].Copy(tmp)
				changed = true
			}
		}
	}
	return info
}

// WalkBlock visits the instructions of block b backwards, calling visit
// with each instruction and the set of registers live immediately after
// it. The set passed to visit is reused between calls; clone it to keep
// it. The walk mutates its own working set only.
func (info *Info) WalkBlock(b *ir.Block, visit func(in *ir.Instr, liveAfter *bitset.Set)) {
	if info.walk == nil {
		info.walk = bitset.New(info.Fn.NumRegs())
	}
	live := info.walk
	live.Copy(info.Out[b.ID])
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		in := &b.Instrs[i]
		visit(in, live)
		if in.HasDst() {
			live.Remove(int(in.Dst))
		}
		for _, a := range in.Args {
			live.Add(int(a))
		}
	}
}

// LiveAcrossCalls returns, for every call instruction, the set of
// registers that are live across it (live immediately after the call and
// not defined by it): these are the ranges that would need caller-save
// save/restore if kept in caller-save registers. The callback receives
// the block, the instruction index, the call instruction, and the
// crossing set (reused; clone to keep).
func (info *Info) LiveAcrossCalls(visit func(b *ir.Block, idx int, call *ir.Instr, crossing *bitset.Set)) {
	nr := info.Fn.NumRegs()
	if info.cross == nil {
		info.cross = bitset.New(nr)
		info.callWalk = bitset.New(nr)
	}
	cross := info.cross
	for _, b := range info.Fn.Blocks {
		// Gather instruction indices of calls, then a single backward
		// walk computing live-after at each call. The index slice and
		// the per-call live sets are pooled on info.
		calls := info.callIdx[:0]
		live := info.callWalk
		live.Copy(info.Out[b.ID])
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			if in.Op == ir.OpCall {
				if len(calls) == len(info.callLive) {
					info.callLive = append(info.callLive, bitset.New(nr))
				}
				info.callLive[len(calls)].Copy(live)
				calls = append(calls, i)
			}
			if in.HasDst() {
				live.Remove(int(in.Dst))
			}
			for _, a := range in.Args {
				live.Add(int(a))
			}
		}
		info.callIdx = calls
		// Visit in forward order for deterministic iteration.
		for i := len(calls) - 1; i >= 0; i-- {
			idx := calls[i]
			call := &b.Instrs[idx]
			cross.Copy(info.callLive[i])
			if call.HasDst() {
				cross.Remove(int(call.Dst))
			}
			visit(b, idx, call, cross)
		}
	}
}
