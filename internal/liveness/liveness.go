// Package liveness computes per-block live-variable information for IR
// functions with the standard backward dataflow:
//
//	in[b]  = use[b] ∪ (out[b] − def[b])
//	out[b] = ∪ over successors s of in[s]
//
// The solver is a sparse worklist iteration: blocks are seeded in
// postorder (the fast order for a backward problem) and a block's
// predecessors are re-enqueued only when its in[b] set actually
// changes. The union lattice gives the system a unique least fixpoint
// from the empty initialization, so the worklist schedule produces
// sets byte-identical to a dense round-robin sweep — a property the
// differential tests pin.
//
// After a spill-everywhere rewrite the solution can also be updated
// incrementally (Rebase): spill code has strictly block-local dataflow
// effect — it removes every occurrence of the spilled registers and
// introduces fresh block-local temporaries — so only the rewritten
// blocks need new use/def sets and the worklist restarts from those
// seeds alone.
//
// It also provides a backward per-instruction walk, which the
// interference builder and the call-crossing analysis share.
package liveness

import (
	"repro/internal/bitset"
	"repro/internal/cfg"
	"repro/internal/ir"
)

// Info holds the liveness sets of one function, indexed by block ID.
type Info struct {
	Fn  *ir.Func
	In  []*bitset.Set
	Out []*bitset.Set

	// Visited counts the block visits of the solve that produced this
	// Info — the sparse solver's work metric, surfaced by the obs
	// `liveness` event (blocks visited vs. len(Fn.Blocks)).
	Visited int

	// use/def are the per-block local sets (use upward-exposed). They
	// are kept on the Info — rather than rebuilt per solve — both to
	// pool the allocation across rounds and because Rebase needs the
	// previous round's sets for every block it does not re-scan. Forks
	// share them read-only.
	use []*bitset.Set
	def []*bitset.Set

	// Worklist scratch (solve): FIFO queue, in-queue flags, reachable
	// flags, changed-block marks, and the transfer-function temporary.
	queue []int
	inQ   []bool
	reach []bool
	chg   []bool
	tmp   *bitset.Set

	// Scratch reused across WalkBlock and LiveAcrossCalls calls, so the
	// per-block walks allocate nothing after warm-up. Each walker owns
	// its own sets (WalkBlock inside a LiveAcrossCalls visit is fine),
	// but neither walker may be re-entered from its own visit callback,
	// and an Info must not be walked from two goroutines at once.
	walk     *bitset.Set
	callWalk *bitset.Set
	cross    *bitset.Set
	callIdx  []int
	callLive []*bitset.Set
}

// Fork returns a view of info sharing the immutable In/Out/use/def
// sets but owning fresh walk scratch, so several goroutines can walk
// one computed liveness result concurrently — each through its own
// fork. The sets themselves must no longer be mutated once forked;
// Rebase honors this by copying when handed a shared Info.
func (info *Info) Fork() *Info {
	return &Info{Fn: info.Fn, In: info.In, Out: info.Out,
		use: info.use, def: info.def, Visited: info.Visited}
}

// newInfo allocates an Info with empty sets for n blocks of nr
// registers.
func newInfo(fn *ir.Func, n, nr int) *Info {
	info := &Info{
		Fn:  fn,
		In:  make([]*bitset.Set, n),
		Out: make([]*bitset.Set, n),
		use: make([]*bitset.Set, n),
		def: make([]*bitset.Set, n),
	}
	for i := 0; i < n; i++ {
		info.In[i] = bitset.New(nr)
		info.Out[i] = bitset.New(nr)
		info.use[i] = bitset.New(nr)
		info.def[i] = bitset.New(nr)
	}
	return info
}

// localSets (re)computes the use/def sets of block b. A use counts
// only when upward-exposed (not preceded by a def in the same block).
func (info *Info) localSets(b *ir.Block) {
	u, d := info.use[b.ID], info.def[b.ID]
	u.Clear()
	d.Clear()
	for i := range b.Instrs {
		in := &b.Instrs[i]
		for _, a := range in.Args {
			if !d.Has(int(a)) {
				u.Add(int(a))
			}
		}
		if in.HasDst() {
			d.Add(int(in.Dst))
		}
	}
}

// ensureScratch sizes the worklist scratch for n blocks and nr
// registers, and derives the reachable-block flags from g.RPO. Only
// reachable blocks participate in the iteration — exactly the blocks a
// dense sweep over the reverse postorder would visit — so unreachable
// blocks keep empty In/Out sets.
func (info *Info) ensureScratch(g *cfg.Graph, n, nr int) {
	if cap(info.queue) < n {
		info.queue = make([]int, 0, 2*n)
	}
	info.queue = info.queue[:0]
	if len(info.inQ) < n {
		info.inQ = make([]bool, n)
		info.reach = make([]bool, n)
		info.chg = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		info.inQ[i] = false
		info.reach[i] = false
		info.chg[i] = false
	}
	for _, b := range g.RPO {
		info.reach[b] = true
	}
	if info.tmp == nil || info.tmp.Len() < nr {
		info.tmp = bitset.New(nr)
	}
}

// enqueue appends a reachable block to the worklist unless it is
// already pending.
func (info *Info) enqueue(b int) {
	if !info.inQ[b] && info.reach[b] {
		info.inQ[b] = true
		info.queue = append(info.queue, b)
	}
}

// solve runs the worklist to fixpoint from the currently enqueued
// seeds, recording visit counts and marking blocks whose In or Out set
// changed. Out sets only ever grow here; callers that need a set to
// shrink (Rebase's spilled registers) clear those bits before seeding.
func (info *Info) solve(g *cfg.Graph) {
	visited := 0
	tmp := info.tmp
	for head := 0; head < len(info.queue); head++ {
		b := info.queue[head]
		info.inQ[b] = false
		visited++
		out := info.Out[b]
		for _, s := range g.Succs[b] {
			if out.UnionWith(info.In[s]) {
				info.chg[b] = true
			}
		}
		tmp.Copy(out)
		tmp.DiffWith(info.def[b])
		tmp.UnionWith(info.use[b])
		if !tmp.Equal(info.In[b]) {
			info.In[b].Copy(tmp)
			info.chg[b] = true
			for _, p := range g.Preds[b] {
				info.enqueue(p)
			}
		}
	}
	info.queue = info.queue[:0]
	info.Visited = visited
}

// Compute runs the dataflow to fixpoint.
func Compute(fn *ir.Func, g *cfg.Graph) *Info {
	n := len(fn.Blocks)
	nr := fn.NumRegs()
	info := newInfo(fn, n, nr)
	for _, b := range fn.Blocks {
		info.localSets(b)
	}
	info.ensureScratch(g, n, nr)
	// Seed every reachable block in postorder (reverse of RPO) for fast
	// convergence of the backward problem.
	for i := len(g.RPO) - 1; i >= 0; i-- {
		info.enqueue(g.RPO[i])
	}
	info.solve(g)
	return info
}

// Rebase updates prev — the liveness of fn before an in-place
// spill-everywhere rewrite — to the rewritten body, re-solving only
// from the blocks the rewrite modified. It returns the updated Info
// and the sorted list of blocks whose sets may differ from prev (the
// dirty seeds plus every block the propagation changed); a nil changed
// list means the update could not be performed incrementally and the
// function was recomputed from scratch.
//
// The contract matches what rewrite.InsertSpills does: the block
// structure (count, IDs, terminators) is unchanged, every occurrence
// of the registers in removed has been rewritten away, and all newly
// introduced registers are fresh (numbered at or above prev's register
// capacity). Under that contract the liveness of every surviving
// register is unchanged, the removed registers are live nowhere, and
// the new temporaries only add bits — so clearing the removed bits and
// running the monotone worklist from the dirty seeds lands exactly on
// the full solution (pinned by the differential tests).
//
// When mutate is false prev is treated as shared (e.g. a Fork of a
// cached round-0 artifact) and left untouched; the result is a fresh
// Info. When mutate is true prev is updated in place and returned.
func Rebase(prev *Info, fn *ir.Func, g *cfg.Graph, dirty []int, removed []ir.Reg, mutate bool) (*Info, []int) {
	n := len(fn.Blocks)
	if len(prev.In) != n || prev.use == nil || dirty == nil {
		// Structure changed, or prev carries no local sets: no
		// incremental contract to exploit.
		return Compute(fn, g), nil
	}
	nr := fn.NumRegs()
	var info *Info
	if mutate {
		info = prev
		info.Fn = fn
		for i := 0; i < n; i++ {
			info.In[i].Grow(nr)
			info.Out[i].Grow(nr)
			info.use[i].Grow(nr)
			info.def[i].Grow(nr)
		}
		// The pooled walk scratch was sized for the old register count;
		// grow it with the sets it is copied from.
		for _, s := range []*bitset.Set{info.walk, info.callWalk, info.cross} {
			if s != nil {
				s.Grow(nr)
			}
		}
		for _, s := range info.callLive {
			s.Grow(nr)
		}
	} else {
		info = &Info{
			Fn:  fn,
			In:  make([]*bitset.Set, n),
			Out: make([]*bitset.Set, n),
			use: make([]*bitset.Set, n),
			def: make([]*bitset.Set, n),
		}
		for i := 0; i < n; i++ {
			info.In[i] = prev.In[i].CloneGrown(nr)
			info.Out[i] = prev.Out[i].CloneGrown(nr)
			info.use[i] = prev.use[i].CloneGrown(nr)
			info.def[i] = prev.def[i].CloneGrown(nr)
		}
	}
	info.ensureScratch(g, n, nr)

	// The removed registers no longer occur anywhere, so their correct
	// liveness is empty: clear their bits wholesale. (Their stale bits
	// cannot be removed by iteration alone — around a loop they would
	// sustain themselves.)
	if len(removed) > 0 {
		rm := info.tmp
		rm.Clear()
		for _, r := range removed {
			rm.Add(int(r))
		}
		for i := 0; i < n; i++ {
			if info.In[i].Intersects(rm) {
				info.In[i].DiffWith(rm)
				info.chg[i] = true
			}
			if info.Out[i].Intersects(rm) {
				info.Out[i].DiffWith(rm)
				info.chg[i] = true
			}
		}
	}

	// Re-scan the rewritten blocks' local sets and seed the worklist
	// from them. Dirty blocks are always reported as changed: even if
	// their liveness sets end up identical, their instructions did not,
	// and downstream incremental consumers (the live-range block map)
	// must re-scan them.
	for _, b := range dirty {
		info.localSets(fn.Blocks[b])
		info.chg[b] = true
		info.enqueue(b)
	}
	info.solve(g)

	changed := make([]int, 0, len(dirty)+8)
	for i := 0; i < n; i++ {
		if info.chg[i] {
			changed = append(changed, i)
		}
	}
	return info, changed
}

// WalkBlock visits the instructions of block b backwards, calling visit
// with each instruction and the set of registers live immediately after
// it. The set passed to visit is reused between calls; clone it to keep
// it. The walk mutates its own working set only.
func (info *Info) WalkBlock(b *ir.Block, visit func(in *ir.Instr, liveAfter *bitset.Set)) {
	info.WalkBlockIndexed(b, func(_ int, in *ir.Instr, liveAfter *bitset.Set) {
		visit(in, liveAfter)
	})
}

// WalkBlockIndexed is WalkBlock with the instruction's index in the
// block passed to visit, for clients that map instructions to layout
// positions (the linear-scan segment builder). The same reuse contract
// applies: liveAfter is a pooled set, clone it to keep it.
func (info *Info) WalkBlockIndexed(b *ir.Block, visit func(i int, in *ir.Instr, liveAfter *bitset.Set)) {
	if info.walk == nil {
		info.walk = bitset.New(info.Fn.NumRegs())
	}
	live := info.walk
	live.Copy(info.Out[b.ID])
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		in := &b.Instrs[i]
		visit(i, in, live)
		if in.HasDst() {
			live.Remove(int(in.Dst))
		}
		for _, a := range in.Args {
			live.Add(int(a))
		}
	}
}

// LiveAcrossCalls returns, for every call instruction, the set of
// registers that are live across it (live immediately after the call and
// not defined by it): these are the ranges that would need caller-save
// save/restore if kept in caller-save registers. The callback receives
// the block, the instruction index, the call instruction, and the
// crossing set (reused; clone to keep).
func (info *Info) LiveAcrossCalls(visit func(b *ir.Block, idx int, call *ir.Instr, crossing *bitset.Set)) {
	nr := info.Fn.NumRegs()
	if info.cross == nil {
		info.cross = bitset.New(nr)
		info.callWalk = bitset.New(nr)
	}
	cross := info.cross
	for _, b := range info.Fn.Blocks {
		// Gather instruction indices of calls, then a single backward
		// walk computing live-after at each call. The index slice and
		// the per-call live sets are pooled on info.
		calls := info.callIdx[:0]
		live := info.callWalk
		live.Copy(info.Out[b.ID])
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			if in.Op == ir.OpCall {
				if len(calls) == len(info.callLive) {
					info.callLive = append(info.callLive, bitset.New(nr))
				}
				info.callLive[len(calls)].Copy(live)
				calls = append(calls, i)
			}
			if in.HasDst() {
				live.Remove(int(in.Dst))
			}
			for _, a := range in.Args {
				live.Add(int(a))
			}
		}
		info.callIdx = calls
		// Visit in forward order for deterministic iteration.
		for i := len(calls) - 1; i >= 0; i-- {
			idx := calls[i]
			call := &b.Instrs[idx]
			cross.Copy(info.callLive[i])
			if call.HasDst() {
				cross.Remove(int(call.Dst))
			}
			visit(b, idx, call, cross)
		}
	}
}
