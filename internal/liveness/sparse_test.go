package liveness_test

import (
	"fmt"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/bitset"
	"repro/internal/cfg"
	"repro/internal/compile"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/rewrite"
)

// denseSolve is the retired dense solver, kept verbatim as the
// differential reference: round-robin sweeps over the reverse postorder
// until a full sweep changes nothing. The union lattice has a unique
// least fixpoint from the empty initialization, so the sparse worklist
// in liveness.Compute must produce byte-identical sets.
func denseSolve(fn *ir.Func, g *cfg.Graph) (in, out []*bitset.Set) {
	n := len(fn.Blocks)
	nr := fn.NumRegs()
	use := make([]*bitset.Set, n)
	def := make([]*bitset.Set, n)
	in = make([]*bitset.Set, n)
	out = make([]*bitset.Set, n)
	for i := 0; i < n; i++ {
		use[i] = bitset.New(nr)
		def[i] = bitset.New(nr)
		in[i] = bitset.New(nr)
		out[i] = bitset.New(nr)
	}
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			ins := &b.Instrs[i]
			for _, a := range ins.Args {
				if !def[b.ID].Has(int(a)) {
					use[b.ID].Add(int(a))
				}
			}
			if ins.HasDst() {
				def[b.ID].Add(int(ins.Dst))
			}
		}
	}
	tmp := bitset.New(nr)
	for changed := true; changed; {
		changed = false
		for i := len(g.RPO) - 1; i >= 0; i-- {
			b := g.RPO[i]
			for _, s := range g.Succs[b] {
				if out[b].UnionWith(in[s]) {
					changed = true
				}
			}
			tmp.Copy(out[b])
			tmp.DiffWith(def[b])
			tmp.UnionWith(use[b])
			if !tmp.Equal(in[b]) {
				in[b].Copy(tmp)
				changed = true
			}
		}
	}
	return in, out
}

// setsEq compares set contents regardless of capacity (an Info kept
// across a Rebase grows its sets lazily).
func setsEq(a, b *bitset.Set) bool {
	eq := true
	a.ForEach(func(i int) {
		if i >= b.Len() || !b.Has(i) {
			eq = false
		}
	})
	b.ForEach(func(i int) {
		if i >= a.Len() || !a.Has(i) {
			eq = false
		}
	})
	return eq
}

// suiteFuncs compiles every benchmark program and yields each function
// to f, tagged program/function.
func suiteFuncs(t *testing.T, f func(tag string, fn *ir.Func)) {
	t.Helper()
	for _, name := range benchprog.Names() {
		prog, err := compile.Source(benchprog.ByName(name).Source)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, fn := range prog.Funcs {
			f(fmt.Sprintf("%s/%s", name, fn.Name), fn)
		}
	}
}

// TestSparseMatchesDense pins the tentpole equivalence: the sparse
// worklist solver produces sets byte-identical to the dense
// reverse-postorder sweep on every function of the benchmark suite.
func TestSparseMatchesDense(t *testing.T) {
	suiteFuncs(t, func(tag string, fn *ir.Func) {
		g := cfg.New(fn)
		info := liveness.Compute(fn, g)
		in, out := denseSolve(fn, g)
		for i := range fn.Blocks {
			if !info.In[i].Equal(in[i]) {
				t.Errorf("%s block %d: sparse In diverges from dense", tag, i)
			}
			if !info.Out[i].Equal(out[i]) {
				t.Errorf("%s block %d: sparse Out diverges from dense", tag, i)
			}
		}
		if info.Visited < len(g.RPO) {
			t.Errorf("%s: visited %d blocks, below the %d reachable", tag, info.Visited, len(g.RPO))
		}
	})
}

// spillSome rewrites fn with a deterministic spill-everywhere pass over
// every third occurring register, returning what rewrite.InsertSpills
// reported plus the registers removed.
func spillSome(fn *ir.Func) (dirty []int, removed []ir.Reg) {
	occ := make([]bool, fn.NumRegs())
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.HasDst() {
				occ[in.Dst] = true
			}
			for _, a := range in.Args {
				occ[a] = true
			}
		}
	}
	spill := make(map[ir.Reg]*ir.Symbol)
	k := 0
	for r := 0; r < len(occ); r++ {
		if !occ[r] {
			continue
		}
		if k++; k%3 != 0 {
			continue
		}
		reg := ir.Reg(r)
		spill[reg] = &ir.Symbol{
			Name:  fmt.Sprintf("%s.t%d", fn.Name, r),
			Class: fn.RegClass(reg),
			Local: true,
			Spill: true,
		}
		removed = append(removed, reg)
	}
	dirty = rewrite.InsertSpills(fn, spill, func(ir.Reg) {})
	return dirty, removed
}

// TestRebaseMatchesFreshCompute pins the incremental update: after a
// spill-everywhere rewrite, Rebase seeded from the dirty blocks must
// land on exactly the sets a from-scratch Compute finds — through both
// the copy-on-write path (a shared Fork, mutate=false) and the in-place
// path (mutate=true) — and the changed list must cover every block
// whose sets differ from the pre-rewrite solution.
func TestRebaseMatchesFreshCompute(t *testing.T) {
	rebased := 0
	suiteFuncs(t, func(tag string, fn *ir.Func) {
		g := cfg.New(fn)
		prev := liveness.Compute(fn, g)
		fork := prev.Fork()

		dirty, removed := spillSome(fn)
		if len(dirty) == 0 {
			return
		}
		rebased++
		// Spill code never changes block structure, so the CFG is reused
		// through a retargeted view — the manager's exact sequence.
		g2 := g.Retarget(fn)
		fresh := liveness.Compute(fn, g2)

		check := func(mode string, got *liveness.Info, changed []int) {
			t.Helper()
			if changed == nil {
				t.Fatalf("%s (%s): Rebase fell back to a full recompute", tag, mode)
			}
			inChanged := make(map[int]bool, len(changed))
			for _, b := range changed {
				inChanged[b] = true
			}
			for i := range fn.Blocks {
				if !setsEq(got.In[i], fresh.In[i]) || !setsEq(got.Out[i], fresh.Out[i]) {
					t.Errorf("%s (%s) block %d: rebased sets diverge from fresh Compute", tag, mode, i)
				}
				if !inChanged[i] &&
					(!setsEq(got.In[i], fork.In[i]) || !setsEq(got.Out[i], fork.Out[i])) {
					t.Errorf("%s (%s) block %d: sets changed but block not in changed list", tag, mode, i)
				}
			}
		}

		// Copy-on-write: the shared fork must be left untouched.
		cow, changed := liveness.Rebase(fork, fn, g2, dirty, removed, false)
		check("cow", cow, changed)
		for i := range fn.Blocks {
			if fork.In[i].Len() != prev.In[i].Len() {
				t.Fatalf("%s block %d: mutate=false grew the shared fork", tag, i)
			}
		}

		// In-place: prev is still the pre-rewrite solution.
		inPlace, changed2 := liveness.Rebase(prev, fn, g2, dirty, removed, true)
		check("in-place", inPlace, changed2)
		if inPlace != prev {
			t.Errorf("%s: mutate=true did not update in place", tag)
		}
	})
	if rebased == 0 {
		t.Fatal("no function exercised the rebase path")
	}
}

// TestRebaseDeclines pins the fallback contract: a nil dirty list (an
// inserter that could not bound its effect) or a changed block count
// yields a full recompute, signalled by a nil changed list.
func TestRebaseDeclines(t *testing.T) {
	prog, err := compile.Source(`int f(int a, int b) { return a + b; }`)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.FuncByName["f"]
	g := cfg.New(fn)
	prev := liveness.Compute(fn, g)
	got, changed := liveness.Rebase(prev, fn, g, nil, nil, false)
	if changed != nil {
		t.Error("nil dirty list did not force a full recompute")
	}
	for i := range fn.Blocks {
		if !got.In[i].Equal(prev.In[i]) || !got.Out[i].Equal(prev.Out[i]) {
			t.Errorf("block %d: fallback recompute diverges", i)
		}
	}
}
