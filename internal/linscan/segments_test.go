package linscan

// White-box tests for the lifetime-segment representation: construction
// from liveness block facts (holes at def-dead-redef gaps inside one
// block, holes across blocks where a register is dead, continuity over
// live-through boundary slots) and the segment-set intersection
// primitive the scan's conflict test is built on.

import (
	"testing"

	"repro/internal/benchprog"
	"repro/internal/bitset"
	"repro/internal/cfg"
	"repro/internal/compile"
	"repro/internal/freq"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/liverange"
	"repro/internal/machine"
)

func TestSegListIntersects(t *testing.T) {
	cases := []struct {
		name string
		a, b segList
		want bool
	}{
		{"both empty", nil, nil, false},
		{"one empty", segList{{0, 4}}, nil, false},
		{"disjoint ordered", segList{{0, 2}, {6, 8}}, segList{{3, 5}, {9, 11}}, false},
		{"interleaved holes", segList{{0, 1}, {10, 12}}, segList{{2, 9}}, false},
		{"touching endpoints", segList{{0, 4}}, segList{{4, 8}}, true},
		{"overlap in later segments", segList{{0, 1}, {20, 30}}, segList{{2, 3}, {25, 26}}, true},
		{"containment", segList{{5, 6}}, segList{{0, 100}}, true},
		{"point vs point", segList{{7, 7}}, segList{{7, 7}}, true},
		{"point in hole", segList{{7, 7}}, segList{{0, 6}, {8, 10}}, false},
	}
	for _, c := range cases {
		if got := c.a.intersects(c.b); got != c.want {
			t.Errorf("%s: intersects = %v, want %v", c.name, got, c.want)
		}
		if got := c.b.intersects(c.a); got != c.want {
			t.Errorf("%s (flipped): intersects = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSegListCovers(t *testing.T) {
	s := segList{{2, 4}, {8, 8}, {12, 20}}
	for slot, want := range map[int32]bool{
		0: false, 1: false, 2: true, 3: true, 4: true, 5: false,
		7: false, 8: true, 9: false,
		11: false, 12: true, 20: true, 21: false,
	} {
		if got := s.covers(slot); got != want {
			t.Errorf("covers(%d) = %v, want %v", slot, got, want)
		}
	}
	if segList(nil).covers(0) {
		t.Error("empty list covers a slot")
	}
}

// layout mirrors analyze's block walk: block bi spans slots
// [2*start[bi], 2*boundary[bi]] in the doubled slot space, where the
// even boundary slot holds the live-out set.
type layout struct {
	start, boundary []int32
}

func layoutOf(fn *ir.Func) layout {
	l := layout{
		start:    make([]int32, len(fn.Blocks)),
		boundary: make([]int32, len(fn.Blocks)),
	}
	pos := int32(0)
	for bi, b := range fn.Blocks {
		l.start[bi] = pos
		l.boundary[bi] = pos + int32(len(b.Instrs))
		pos = l.boundary[bi] + 1
	}
	return l
}

// intervalsFor compiles src and runs the segment analysis on fname.
func intervalsFor(t *testing.T, src, fname string) (*ir.Func, *liveness.Info, *funcIntervals) {
	t.Helper()
	prog, err := compile.Source(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	fn := prog.FuncByName[fname]
	if fn == nil {
		t.Fatalf("no function %q", fname)
	}
	live := liveness.Compute(fn, cfg.New(fn))
	pf := freq.Static(prog)
	var sb segBuilder
	fi := analyze(fn, live, pf.ByFunc[fname], machine.NewConfig(8, 6, 4, 4), &sb, nil)
	return fn, live, fi
}

// regByName resolves a named local to its virtual register.
func regByName(t *testing.T, fn *ir.Func, name string) ir.Reg {
	t.Helper()
	for r := 0; r < fn.NumRegs(); r++ {
		if fn.RegName(ir.Reg(r)) == name {
			return ir.Reg(r)
		}
	}
	t.Fatalf("no register named %q in %s", name, fn.Name)
	return ir.NoReg
}

// findInstr returns the layout index of the first instruction for which
// match returns true, walking blocks in layout order.
func findInstr(t *testing.T, fn *ir.Func, what string, match func(in *ir.Instr) bool) int32 {
	t.Helper()
	pos := int32(0)
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			if match(&b.Instrs[i]) {
				return pos + int32(i)
			}
		}
		pos += int32(len(b.Instrs)) + 1
	}
	t.Fatalf("no instruction matching %s in %s", what, fn.Name)
	return -1
}

// TestSingleBlockHole: x is defined, dies, and is redefined later in the
// same block; its segment set must split in two with the cold middle
// instruction uncovered, while the hull (a single span) would cover it.
func TestSingleBlockHole(t *testing.T) {
	const src = `
int f(int a) {
	int x = a + 1;
	int y = x + a;
	int z = y + y;
	int w = z + z;
	x = w + a;
	return x + y;
}
int main() { return f(3); }`
	fn, _, fi := intervalsFor(t, src, "f")
	x := regByName(t, fn, "x")
	segs := fi.segs[x]
	if len(segs) != 2 {
		t.Fatalf("x has %d segments %v, want 2 (def-dead-redef hole)", len(segs), segs)
	}
	// The instruction computing z sits inside x's dead gap: neither its
	// read nor its write slot may be covered.
	z := regByName(t, fn, "z")
	zIP := findInstr(t, fn, "def of z", func(in *ir.Instr) bool { return in.HasDst() && in.Dst == z })
	for _, slot := range []int32{readSlot(zIP), writeSlot(zIP)} {
		if fi.segs[x].covers(slot) {
			t.Errorf("x covers slot %d inside its dead gap (segments %v)", slot, segs)
		}
	}
	// The hull still spans the hole: start/end bracket both segments.
	if fi.start[x] != segs[0].from || fi.end[x] != segs[1].to {
		t.Errorf("hull [%d,%d] does not match segment extremes %v", fi.start[x], fi.end[x], segs)
	}
	// y is live straight through the gap, so the hole-aware conflict
	// test must still report a conflict with x.
	y := regByName(t, fn, "y")
	if !fi.conflicts(int(x), int(y)) {
		t.Error("x and y should conflict: y is live through x's hole region")
	}
}

// TestBlockGapHole: x dies before a conditional and is reborn after it,
// so the branch body's block must fall entirely inside a hole.
func TestBlockGapHole(t *testing.T) {
	const src = `
int f(int a, int b) {
	int x = a + 1;
	int t = x + 1;
	if (b > 0) {
		t = t + b;
	}
	x = t + 2;
	return x;
}
int main() { return f(1, 2); }`
	fn, _, fi := intervalsFor(t, src, "f")
	x := regByName(t, fn, "x")
	tt := regByName(t, fn, "t")
	if len(fi.segs[x]) < 2 {
		t.Fatalf("x has segments %v, want a cross-block hole (>= 2 segments)", fi.segs[x])
	}
	// Locate the branch body: the block containing t's redefinition
	// (t = t + b reads and writes t in one instruction).
	bodyIP := findInstr(t, fn, "redef of t", func(in *ir.Instr) bool {
		if !in.HasDst() || in.Dst != tt {
			return false
		}
		for _, a := range in.Args {
			if a == tt {
				return true
			}
		}
		return false
	})
	l := layoutOf(fn)
	body := -1
	for bi := range fn.Blocks {
		if l.start[bi] <= bodyIP && bodyIP < l.boundary[bi] {
			body = bi
			break
		}
	}
	if body < 0 {
		t.Fatal("could not locate branch body block")
	}
	for slot := readSlot(l.start[body]); slot <= boundarySlot(l.boundary[body]); slot++ {
		if fi.segs[x].covers(slot) {
			t.Errorf("x covers slot %d inside the branch body block %d (segments %v)",
				slot, body, fi.segs[x])
		}
	}
	// t hands through the same region: one merged segment covering the
	// body block's entry boundary, despite the use+redefine handoff.
	if len(fi.segs[tt]) != 1 {
		t.Errorf("t has segments %v, want one merged live-through segment", fi.segs[tt])
	}
	if !fi.segs[tt].covers(boundarySlot(l.boundary[0])) {
		t.Errorf("t's segment %v does not cover the entry block's boundary slot %d",
			fi.segs[tt], boundarySlot(l.boundary[0]))
	}
	// Disjoint segment sets in the same bank: x and t never conflict
	// even though their hulls overlap.
	if fi.segs[x].intersects(fi.segs[tt]) {
		// x is reborn from t (x = t + 2): the read slot belongs to t,
		// the write slot to x. They must not share either.
		t.Errorf("x (%v) and t (%v) segment sets intersect", fi.segs[x], fi.segs[tt])
	}
}

// TestDeadDefPointSegment: a definition that is never used before the
// register is redefined still occupies its own write slot — the
// physical register is clobbered there — as a degenerate one-slot
// segment.
func TestDeadDefPointSegment(t *testing.T) {
	const src = `
int f(int a) {
	int x = a + 1;
	int y = a + 2;
	x = y + a;
	return x;
}
int main() { return f(4); }`
	fn, _, fi := intervalsFor(t, src, "f")
	x := regByName(t, fn, "x")
	segs := fi.segs[x]
	if len(segs) != 2 {
		t.Fatalf("x has segments %v, want a point segment plus the live span", segs)
	}
	first := segs[0]
	if first.from != first.to {
		t.Errorf("dead def of x should be a point segment, got %v", first)
	}
	if first.from%2 != 1 {
		t.Errorf("dead def segment %v should sit on an odd write slot", first)
	}
}

// TestSegmentInvariants cross-validates the segment sets of every
// benchmark program against the liveness facts they were built from and
// against liverange's independent BlockMap:
//
//   - ordering: segments are sorted, disjoint, and separated by genuine
//     holes (gap >= 3 slots; anything closer is a continuation and must
//     have been merged),
//   - soundness: every use covers its read slot, every definition its
//     write slot, everything live after an instruction the following
//     write slot, and every live-out register its block boundary slot,
//   - hull consistency: start/end equal the segment extremes,
//   - block coverage: the set of blocks a register's segments touch is
//     exactly liverange.BlockMap's live-or-referenced set.
func TestSegmentInvariants(t *testing.T) {
	for _, name := range benchprog.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prog, err := compile.Source(benchprog.ByName(name).Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			pf := freq.Static(prog)
			for _, fn := range prog.Funcs {
				live := liveness.Compute(fn, cfg.New(fn))
				var sb segBuilder
				fi := analyze(fn, live, pf.ByFunc[fn.Name], machine.NewConfig(8, 6, 4, 4), &sb, nil)
				checkSegmentInvariants(t, fn, live, fi)
			}
		})
	}
}

func checkSegmentInvariants(t *testing.T, fn *ir.Func, live *liveness.Info, fi *funcIntervals) {
	t.Helper()
	nr := fn.NumRegs()
	for r := 0; r < nr; r++ {
		segs := fi.segs[r]
		for i, s := range segs {
			if s.from > s.to {
				t.Errorf("%s r%d segment %d inverted: %v", fn.Name, r, i, s)
			}
			if i > 0 && s.from-segs[i-1].to <= 2 {
				t.Errorf("%s r%d segments %d,%d not merged: %v then %v",
					fn.Name, r, i-1, i, segs[i-1], s)
			}
		}
		if len(segs) > 0 {
			if fi.start[r] != segs[0].from || fi.end[r] != segs[len(segs)-1].to {
				t.Errorf("%s r%d hull [%d,%d] != segment extremes %v",
					fn.Name, r, fi.start[r], fi.end[r], segs)
			}
		} else if fi.live(r) {
			t.Errorf("%s r%d live per hull [%d,%d] but has no segments",
				fn.Name, r, fi.start[r], fi.end[r])
		}
	}

	l := layoutOf(fn)
	touched := make([]map[int]bool, nr)
	for r := range touched {
		touched[r] = make(map[int]bool)
	}
	for bi, b := range fn.Blocks {
		bi, b := bi, b
		live.Out[b.ID].ForEach(func(r int) {
			if !fi.segs[r].covers(boundarySlot(l.boundary[bi])) {
				t.Errorf("%s r%d live-out of block %d but segments %v miss boundary slot %d",
					fn.Name, r, b.ID, fi.segs[r], boundarySlot(l.boundary[bi]))
			}
		})
		live.WalkBlockIndexed(b, func(i int, in *ir.Instr, liveAfter *bitset.Set) {
			ip := l.start[bi] + int32(i)
			liveAfter.ForEach(func(r int) {
				if !fi.segs[r].covers(writeSlot(ip)) {
					t.Errorf("%s r%d live after instr %d but segments %v miss slot %d",
						fn.Name, r, ip, fi.segs[r], writeSlot(ip))
				}
			})
			if in.HasDst() && !fi.segs[in.Dst].covers(writeSlot(ip)) {
				t.Errorf("%s r%d defined at instr %d but segments %v miss write slot %d",
					fn.Name, in.Dst, ip, fi.segs[in.Dst], writeSlot(ip))
			}
			for _, a := range in.Args {
				if !fi.segs[a].covers(readSlot(ip)) {
					t.Errorf("%s r%d used at instr %d but segments %v miss read slot %d",
						fn.Name, a, ip, fi.segs[a], readSlot(ip))
				}
			}
		})
		// Record which blocks each register's segments touch.
		lo, hi := readSlot(l.start[bi]), boundarySlot(l.boundary[bi])
		for r := 0; r < nr; r++ {
			block := segList{{from: lo, to: hi}}
			if fi.segs[r].intersects(block) {
				touched[r][b.ID] = true
			}
		}
	}

	// Independent cross-check: segment block coverage == BlockMap's
	// live-or-referenced set.
	bm := liverange.NewBlockMap(fn, live)
	for r := 0; r < nr; r++ {
		want := bm.Of(ir.Reg(r))
		for id := range touched[r] {
			if !want.Has(id) {
				t.Errorf("%s r%d segments touch block %d but BlockMap says dead there",
					fn.Name, r, id)
			}
		}
		want.ForEach(func(id int) {
			if !touched[r][id] {
				t.Errorf("%s r%d live-or-referenced in block %d per BlockMap but no segment touches it",
					fn.Name, r, id)
			}
		})
	}
}
