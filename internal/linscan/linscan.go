// Package linscan implements a graph-free linear-scan register
// allocator in the LuaJIT/Mono tradition: blocks are walked backward so
// liveness falls out of the walk, no interference graph is built and no
// simplify stack is kept, and each virtual register is summarized by an
// ordered set of live segments (with holes at def-dead-redef gaps and
// across blocks where it is not live) plus the conservative [start,end]
// hull over them. Scanning the intervals once assigns registers; the
// paper's benefit_caller/benefit_callee split (Lueh & Gross §4) steers
// every choice between a caller-save and a callee-save register, and
// move-affinity plus call-site argument hints place values
// optimistically where a later instruction wants them. When a bank is
// blocked the scan binpacks second-chance style (Traub et al.): a
// register may be assigned into a hole of an already-occupied physical
// register when their segment sets are disjoint, and a conflicting
// resident that blocks the bank is displaced and immediately re-seated
// into another register's holes when one accepts it — the bank
// reshuffles instead of spilling. Ranges that lose their register
// outright get one more pass against the committed assignment before
// they fall to memory.
//
// The allocator plugs into the same pass pipeline as the coloring
// strategies (liveness → scan → spill-rewrite); the Hybrid strategy
// adds a second tier that escalates to full graph coloring for the
// functions the scan would spill.
package linscan

import (
	"math"
	"sort"

	"repro/internal/bitset"
	"repro/internal/freq"
	"repro/internal/interproc"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/machine"
)

// funcIntervals is the product of one backward analysis walk: the live
// segments, conservative hull, spill/caller costs, and placement hints
// of every virtual register of one function.
type funcIntervals struct {
	// segs[r] is r's ordered set of disjoint live segments in the
	// doubled slot space (see segments.go).
	segs []segList
	// start/end bound each register's segment hull in slots
	// (start > end means the register never occurs live).
	start, end []int32
	// spillCost is the paper's weighted spill cost: one store per
	// definition plus one load per distinct use per instruction, each
	// weighted by block frequency.
	spillCost []float64
	// callerCost is 2×freq per call site the register is live across.
	callerCost []float64
	// crossesCall marks registers live across at least one call.
	crossesCall []bool
	// affinity links a move's source and destination; taking the
	// partner's register makes the move a no-op shuffle.
	affinity []ir.Reg
	// hint is the optimistic placement wish: call arguments and
	// parameters prefer the caller-save register of their argument
	// position.
	hint []machine.PhysReg
	// entry is the function's entry frequency; the callee-save benefit
	// is spillCost − 2×entry (one save and one restore per invocation).
	entry float64
	// hullOnly disables the segment refinement: conflict falls back to
	// hull overlap and the blocked path spills instead of binpacking —
	// the PR 7 behavior, kept as an ablation and differential baseline.
	hullOnly bool
}

// live reports whether r ever occurs or is live.
func (fi *funcIntervals) live(r int) bool { return fi.start[r] <= fi.end[r] }

// analyze performs the single backward walk. Positions number the
// instructions in block layout order, doubled into read/write slots
// with one extra boundary slot per block covering its live-out set
// (segments.go), so the segments of a register cover every slot where
// it is live or written: a register live at a point is either
// upward-exposed there (its segment reaches the block start), defined
// earlier in the block (the defining write slot opens a segment), or
// live-out (the boundary slot covers the block end). Two
// simultaneously-live registers therefore always have intersecting
// segments — the conservative superset of true interference that makes
// the scan sound without a graph — while registers that are never live
// at once keep disjoint segment sets the scan can pack into one
// physical register.
// cc, when non-nil, replaces the static 2×freq caller-save charge at
// call sites whose callee has a published interprocedural summary with
// the callee's measured clobber factor (0 — the callee preserves the
// bank — means the site is not a crossing for that bank at all).
func analyze(fn *ir.Func, live *liveness.Info, ff *freq.FuncFreq, config machine.Config, sb *segBuilder, cc *interproc.Table) *funcIntervals {
	nr := fn.NumRegs()
	fi := &funcIntervals{
		start:       make([]int32, nr),
		end:         make([]int32, nr),
		spillCost:   make([]float64, nr),
		callerCost:  make([]float64, nr),
		crossesCall: make([]bool, nr),
		affinity:    make([]ir.Reg, nr),
		hint:        make([]machine.PhysReg, nr),
		entry:       ff.Entry,
	}
	for r := 0; r < nr; r++ {
		fi.start[r] = math.MaxInt32
		fi.end[r] = -1
		fi.affinity[r] = ir.NoReg
		fi.hint[r] = machine.NoPhysReg
	}

	// Parameters arrive in order; hint each one at the caller-save
	// register of its position in its bank, so a parameter that dies
	// before the first call tends to stay where it arrived.
	var paramIdx [ir.NumClasses]int
	for _, p := range fn.Params {
		c := fn.RegClass(p)
		if i := paramIdx[c]; i < config.Caller[c] {
			fi.hint[p] = machine.PhysReg(i)
		}
		paramIdx[c]++
	}

	sb.reset(nr)
	pos := int32(0)
	for _, b := range fn.Blocks {
		n := int32(len(b.Instrs))
		boundary := pos + n
		w := ff.Block[b.ID]
		live.Out[b.ID].ForEach(func(r int) { sb.open(ir.Reg(r), boundarySlot(boundary)) })

		live.WalkBlockIndexed(b, func(i int, in *ir.Instr, liveAfter *bitset.Set) {
			ip := pos + int32(i)
			if in.Op == ir.OpCall {
				// liveAfter at a call is exactly the set of registers
				// live across the call site.
				dst := ir.NoReg
				if in.HasDst() {
					dst = in.Dst
				}
				var factor [ir.NumClasses]float64
				for c := range factor {
					factor[c] = 2
				}
				if cc != nil {
					for c := range factor {
						factor[c] = cc.CrossFactor(in.Callee, ir.Class(c))
					}
				}
				liveAfter.ForEach(func(r int) {
					if ir.Reg(r) == dst {
						return
					}
					f := factor[fn.RegClass(ir.Reg(r))]
					if f == 0 {
						return
					}
					fi.callerCost[r] += f * w
					fi.crossesCall[r] = true
				})
				// Arguments are consumed in caller-save registers; hint
				// each at the register of its position so the value is
				// already there when the call needs it.
				var argIdx [ir.NumClasses]int
				for _, a := range in.Args {
					c := fn.RegClass(a)
					j := argIdx[c]
					argIdx[c]++
					if fi.hint[a] == machine.NoPhysReg && j < config.Caller[c] {
						fi.hint[a] = machine.PhysReg(j)
					}
				}
			}
			if in.Op == ir.OpMove {
				fi.affinity[in.Dst] = in.Args[0]
				fi.affinity[in.Args[0]] = in.Dst
			}
			if in.HasDst() {
				fi.spillCost[in.Dst] += w
				sb.close(in.Dst, writeSlot(ip))
			}
			for ai, a := range in.Args {
				sb.open(a, readSlot(ip))
				dup := false
				for _, prev := range in.Args[:ai] {
					if prev == a {
						dup = true
						break
					}
				}
				if !dup {
					fi.spillCost[a] += w
				}
			}
		})
		sb.flushBlock(readSlot(pos))
		pos = boundary + 1
	}

	fi.segs = sb.finalize()

	// The entry receive writes every colored parameter's register,
	// dead-on-entry or not, so every occurring parameter occupies the
	// pre-entry write slot. Without this, a parameter whose incoming
	// value is dead (overwritten before any read) could share a
	// register with a live one, and the receive would clobber it.
	const entrySlot = int32(-1)
	for _, p := range fn.Params {
		s := fi.segs[p]
		if len(s) == 0 || s[0].from <= entrySlot {
			continue
		}
		if s[0].from-entrySlot <= 2 {
			// Adjacent to the first segment: extend it (the merge
			// invariant of finalize — gaps of at most two slots are
			// handoffs, not holes — holds for the entry slot too).
			s[0].from = entrySlot
		} else {
			fi.segs[p] = append(segList{{from: entrySlot, to: entrySlot}}, s...)
		}
	}

	for r := 0; r < nr; r++ {
		if s := fi.segs[r]; len(s) > 0 {
			fi.start[r] = s[0].from
			fi.end[r] = s[len(s)-1].to
		}
	}
	return fi
}

// conflicts reports whether registers a and b may need distinct
// physical registers: hull overlap under the conservative ablation,
// segment intersection otherwise.
func (fi *funcIntervals) conflicts(a, b int) bool {
	if fi.start[a] > fi.end[b] || fi.start[b] > fi.end[a] {
		return false
	}
	if fi.hullOnly {
		return true
	}
	return fi.segs[a].intersects(fi.segs[b])
}

// benefits returns the paper's two benefit functions for register r:
// what keeping it in a caller-save register saves over memory, and the
// same for a callee-save register.
func (fi *funcIntervals) benefits(r int) (benefitCaller, benefitCallee float64) {
	return fi.spillCost[r] - fi.callerCost[r], fi.spillCost[r] - 2*fi.entry
}

// prefersCallee applies the storage-class rule: a register wants
// callee-save exactly when that benefit strictly beats the caller-save
// benefit (only possible for call-crossing ranges).
func (fi *funcIntervals) prefersCallee(r int) bool {
	bcaller, bcallee := fi.benefits(r)
	return fi.crossesCall[r] && bcallee > bcaller
}

// Assignment paths recorded per register, for the obs events and the
// telemetry counters.
const (
	viaScan   uint8 = iota // free register at first chance
	viaHole                // binpacked into a hole of an occupied register
	viaSecond              // assigned by the second-chance pass after losing its first
)

// scanOutcome is the result of scanning one function's intervals: the
// flat coloring, the registers to spill (in decision order, so stack
// slots number deterministically), and the estimated overhead of the
// allocation (the hybrid tier's escalation signal).
type scanOutcome struct {
	colors       []machine.PhysReg
	spilled      []ir.Reg
	spillReasons []string
	// via records each colored register's assignment path.
	via []uint8
	// holeAssigns/secondChance count the binpacking decisions.
	holeAssigns, secondChance int
	// pressureSpills counts the spills forced by register pressure
	// (reasonPressure) as opposed to chosen by the cost model; only
	// these signal that the scan's packing failed.
	pressureSpills int
	// estOverhead approximates the allocation's weighted memory-op
	// overhead: caller-save saves around calls, callee-save entry/exit
	// saves (paid once per callee-save register however many ranges
	// share it), and the spill cost of everything sent to memory.
	estOverhead float64
}

// errUnspillable reports a bank whose pressure from unspillable spill
// temporaries alone exceeds the register file — impossible under the
// machine model's minimum configuration, but reported rather than
// looped on.
type errUnspillable struct {
	fn    string
	class ir.Class
}

func (e errUnspillable) Error() string {
	return "linscan: " + e.fn + ": unspillable " + e.class.String() + " pressure exceeds the register bank"
}

// scanItem is one interval entering the scan, ordered by decreasing
// end position: the scan mirrors the backward walk, sweeping from the
// function's last position toward its entry.
type scanItem struct {
	reg        ir.Reg
	start, end int32
}

// occupant is one register resident in a physical register whose hull
// still overlaps the sweep point.
type occupant struct {
	reg   ir.Reg
	start int32
}

// scan allocates one bank's intervals. noSpill marks registers that
// must never be sent to memory (spill temporaries of earlier rounds).
func (fi *funcIntervals) scan(fn *ir.Func, class ir.Class, config machine.Config, noSpill func(ir.Reg) bool, out *scanOutcome) error {
	n := config.Total(class)
	items := make([]scanItem, 0, 32)
	for r := 0; r < fn.NumRegs(); r++ {
		if fn.RegClass(ir.Reg(r)) != class || !fi.live(r) {
			continue
		}
		items = append(items, scanItem{reg: ir.Reg(r), start: fi.start[r], end: fi.end[r]})
	}
	// Decreasing end, ties by register number: deterministic and in
	// reverse execution order, matching the analysis walk.
	sortItems(items)

	// Per-color occupancy. occ holds the active residents — hulls still
	// overlapping the sweep point, mirroring the classic active list —
	// while assigned keeps every committed resident for the
	// second-chance pass at the end. taken caches len(occ) > 0 for the
	// free-register pick.
	occ := make([][]occupant, n)
	assigned := make([][]ir.Reg, n)
	taken := make([]bool, n)
	var pending []ir.Reg

	spill := func(r ir.Reg, reason string) {
		out.spilled = append(out.spilled, r)
		out.spillReasons = append(out.spillReasons, reason)
		out.estOverhead += fi.spillCost[r]
		if reason == reasonPressure {
			out.pressureSpills++
		}
	}
	place := func(r ir.Reg, col machine.PhysReg, start int32, via uint8) {
		out.colors[r] = col
		out.via[r] = via
		occ[col] = append(occ[col], occupant{reg: r, start: start})
		assigned[col] = append(assigned[col], r)
		taken[col] = true
	}

	for _, it := range items {
		r := int(it.reg)
		// Expire: an active interval starting above the current end can
		// no longer overlap anything, because every remaining interval
		// ends at or below this one.
		for col := range occ {
			o := occ[col]
			for j := 0; j < len(o); {
				if o[j].start > it.end {
					o[j] = o[len(o)-1]
					o = o[:len(o)-1]
				} else {
					j++
				}
			}
			occ[col] = o
			taken[col] = len(o) > 0
		}

		bcaller, bcallee := fi.benefits(r)
		// Spill by choice (§4): a call-crossing range whose residence in
		// either register kind costs more than memory goes to memory.
		if fi.crossesCall[r] && !noSpill(it.reg) && bcaller < 0 && bcallee < 0 {
			spill(it.reg, reasonChoice)
			continue
		}

		preferCallee := fi.prefersCallee(r)
		free := func(col machine.PhysReg) bool { return !taken[col] }
		if col := fi.pickBy(it.reg, class, config, n, out.colors, preferCallee, free); col != machine.NoPhysReg {
			place(it.reg, col, it.start, viaScan)
			continue
		}

		// Every register is occupied. First chance, hole assignment:
		// binpack the range into a register whose residents' segments
		// are all disjoint from its own.
		if !fi.hullOnly {
			hole := func(col machine.PhysReg) bool {
				for _, o := range occ[col] {
					if fi.segs[o.reg].intersects(fi.segs[r]) {
						return false
					}
				}
				return true
			}
			if col := fi.pickBy(it.reg, class, config, n, out.colors, preferCallee, hole); col != machine.NoPhysReg {
				place(it.reg, col, it.start, viaHole)
				out.holeAssigns++
				continue
			}
		}

		// Blocked: find the cheapest way to clear one register for the
		// item. A conflicting resident that can re-seat into a hole of
		// another register — checked against the committed assignment of
		// that register, so the move is always valid — displaces for
		// free: the bank reshuffles instead of spilling. A register whose
		// conflicts include an immovable unspillable temporary cannot be
		// cleared. The cheapest clearing is compared against surrendering
		// the item itself.
		reseatTarget := func(vr ir.Reg, exclude machine.PhysReg) machine.PhysReg {
			return fi.pickBy(vr, class, config, n, out.colors, fi.prefersCallee(int(vr)),
				func(col machine.PhysReg) bool {
					if col == exclude {
						return false
					}
					for _, a := range assigned[col] {
						if fi.segs[a].intersects(fi.segs[vr]) {
							return false
						}
					}
					return true
				})
		}
		evictCol, evictCost := machine.NoPhysReg, math.Inf(1)
		for i := 0; i < n; i++ {
			col := machine.PhysReg(i)
			cost, clear := 0.0, true
			for _, o := range occ[col] {
				if !fi.hullOnly && !fi.segs[o.reg].intersects(fi.segs[r]) {
					continue
				}
				if !fi.hullOnly && reseatTarget(o.reg, col) != machine.NoPhysReg {
					continue
				}
				if noSpill(o.reg) {
					clear = false
					break
				}
				cost += fi.spillCost[o.reg]
			}
			if clear && cost < evictCost {
				evictCol, evictCost = col, cost
			}
		}
		selfCost := math.Inf(1)
		if !noSpill(it.reg) {
			selfCost = fi.spillCost[r]
		}
		if evictCol == machine.NoPhysReg && math.IsInf(selfCost, 1) {
			return errUnspillable{fn: fn.Name, class: class}
		}
		if selfCost <= evictCost {
			// The item is the cheapest loser; it gets a second chance
			// against the committed assignment before going to memory.
			fi.surrender(it.reg, &pending, spill)
			continue
		}
		o := occ[evictCol]
		var displaced []ir.Reg
		for j := 0; j < len(o); {
			vr := o[j].reg
			if !fi.hullOnly && !fi.segs[vr].intersects(fi.segs[r]) {
				j++
				continue
			}
			out.colors[vr] = machine.NoPhysReg
			assigned[evictCol] = removeReg(assigned[evictCol], vr)
			displaced = append(displaced, vr)
			o[j] = o[len(o)-1]
			o = o[:len(o)-1]
		}
		occ[evictCol] = o
		place(it.reg, evictCol, it.start, viaScan)
		// Second chance, taken immediately: each displaced range re-seats
		// into a hole of another register if one accepts its whole
		// segment set. The evictor is already committed, so its old
		// register rejects it naturally; displaced residents of one
		// register are pairwise disjoint, so earlier re-seats never block
		// later ones. Whatever cannot re-seat falls back to the pending
		// pass (memory under the hull ablation).
		for _, vr := range displaced {
			if !fi.hullOnly {
				if col := reseatTarget(vr, machine.NoPhysReg); col != machine.NoPhysReg {
					place(vr, col, fi.start[vr], viaSecond)
					out.secondChance++
					continue
				}
			}
			fi.surrender(vr, &pending, spill)
		}
	}

	// Last call: surrendered ranges (and displaced ones that found no
	// hole at eviction time) get one more pass against the final
	// committed assignment — a later eviction may have cleared exactly
	// the residents that blocked them — before they fall to memory.
	for _, r := range pending {
		fit := func(col machine.PhysReg) bool {
			for _, a := range assigned[col] {
				if fi.segs[a].intersects(fi.segs[int(r)]) {
					return false
				}
			}
			return true
		}
		col := fi.pickBy(r, class, config, n, out.colors, fi.prefersCallee(int(r)), fit)
		if col == machine.NoPhysReg {
			spill(r, reasonPressure)
			continue
		}
		out.colors[r] = col
		out.via[r] = viaSecond
		assigned[col] = append(assigned[col], r)
		out.secondChance++
	}

	// Price the bank's outcome: one save/restore pair per callee-save
	// register used — shared by every range binpacked into it, which is
	// how hole assignment amortizes the 2×entry cost the benefit split
	// charges — plus the caller-save cost of each call-crossing
	// resident. Spill costs were added as the decisions were made.
	calleeUsed := make([]bool, n)
	for _, it := range items {
		col := out.colors[it.reg]
		if col == machine.NoPhysReg {
			continue
		}
		if config.IsCalleeSave(class, col) {
			if !calleeUsed[col] {
				calleeUsed[col] = true
				out.estOverhead += 2 * fi.entry
			}
		} else if fi.crossesCall[int(it.reg)] {
			out.estOverhead += fi.callerCost[it.reg]
		}
	}
	return nil
}

// surrender routes a range that lost its register: under the hull
// ablation it spills immediately (the PR 7 behavior); otherwise it
// joins the pending list for the second-chance pass.
func (fi *funcIntervals) surrender(r ir.Reg, pending *[]ir.Reg, spill func(ir.Reg, string)) {
	if fi.hullOnly {
		spill(r, reasonPressure)
		return
	}
	*pending = append(*pending, r)
}

// removeReg deletes the first occurrence of r by swap-removal.
func removeReg(s []ir.Reg, r ir.Reg) []ir.Reg {
	for i, a := range s {
		if a == r {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// pickBy chooses a register for r among the ones fits accepts: the
// move partner's register first (a no-op shuffle), then the positional
// hint — both only within the benefit-preferred save kind, because
// optimistic placement must not override the storage-class decision —
// then the first fitting register of the preferred kind, falling back
// to the first fitting register of any kind. NoPhysReg means nothing
// fits.
func (fi *funcIntervals) pickBy(r ir.Reg, class ir.Class, config machine.Config, ncol int, colors []machine.PhysReg, preferCallee bool, fits func(machine.PhysReg) bool) machine.PhysReg {
	usable := func(col machine.PhysReg) bool {
		return col != machine.NoPhysReg && int(col) < ncol &&
			config.IsCalleeSave(class, col) == preferCallee && fits(col)
	}
	if p := fi.affinity[r]; p != ir.NoReg {
		if col := colors[p]; usable(col) {
			return col
		}
	}
	if col := fi.hint[r]; usable(col) {
		return col
	}
	first := machine.NoPhysReg
	for i := 0; i < ncol; i++ {
		col := machine.PhysReg(i)
		if !fits(col) {
			continue
		}
		if first == machine.NoPhysReg {
			first = col
		}
		if config.IsCalleeSave(class, col) == preferCallee {
			return col
		}
	}
	return first
}

// sortItems orders by decreasing end, then increasing register.
func sortItems(items []scanItem) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].end != items[j].end {
			return items[i].end > items[j].end
		}
		return items[i].reg < items[j].reg
	})
}

// Spill reasons carried into the obs SpillChoice events.
const (
	reasonChoice   = "negative-benefit"
	reasonPressure = "blocked"
)
