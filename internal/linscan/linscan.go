// Package linscan implements a graph-free linear-scan register
// allocator in the LuaJIT/Mono tradition: blocks are walked backward so
// liveness falls out of the walk, no interference graph is built and no
// simplify stack is kept, and each virtual register is summarized by a
// conservative position interval (its hull over the block layout
// order). Scanning the intervals once assigns registers; the paper's
// benefit_caller/benefit_callee split (Lueh & Gross §4) steers every
// choice between a caller-save and a callee-save register, and
// move-affinity plus call-site argument hints place values
// optimistically where a later instruction wants them.
//
// The allocator plugs into the same pass pipeline as the coloring
// strategies (liveness → scan → spill-rewrite); the Hybrid strategy
// adds a second tier that escalates to full graph coloring for the
// functions the scan would spill.
package linscan

import (
	"math"
	"sort"

	"repro/internal/bitset"
	"repro/internal/freq"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/machine"
)

// funcIntervals is the product of one backward analysis walk: the
// conservative live interval, spill/caller costs, and placement hints
// of every virtual register of one function.
type funcIntervals struct {
	// start/end bound each register's interval in layout positions
	// (start > end means the register never occurs live).
	start, end []int32
	// spillCost is the paper's weighted spill cost: one store per
	// definition plus one load per distinct use per instruction, each
	// weighted by block frequency.
	spillCost []float64
	// callerCost is 2×freq per call site the register is live across.
	callerCost []float64
	// crossesCall marks registers live across at least one call.
	crossesCall []bool
	// affinity links a move's source and destination; taking the
	// partner's register makes the move a no-op shuffle.
	affinity []ir.Reg
	// hint is the optimistic placement wish: call arguments and
	// parameters prefer the caller-save register of their argument
	// position.
	hint []machine.PhysReg
	// entry is the function's entry frequency; the callee-save benefit
	// is spillCost − 2×entry (one save and one restore per invocation).
	entry float64
}

// live reports whether r ever occurs or is live.
func (fi *funcIntervals) live(r int) bool { return fi.start[r] <= fi.end[r] }

func (fi *funcIntervals) extend(r int, pos int32) {
	if pos < fi.start[r] {
		fi.start[r] = pos
	}
	if pos > fi.end[r] {
		fi.end[r] = pos
	}
}

// analyze performs the single backward walk. Positions number the
// instructions in block layout order, with one extra boundary slot per
// block covering its live-out set, so the interval hull of a register
// covers every point where it is live: a register live at a point is
// either upward-exposed there (its block's live-in covers the block
// start), defined earlier in the block (the definition extends the
// hull), or live-out (the boundary slot covers the block end). Two
// simultaneously-live registers therefore always have overlapping
// hulls — the conservative superset of true interference that makes
// the scan sound without a graph.
func analyze(fn *ir.Func, live *liveness.Info, ff *freq.FuncFreq, config machine.Config, scratch *bitset.Set) *funcIntervals {
	nr := fn.NumRegs()
	fi := &funcIntervals{
		start:       make([]int32, nr),
		end:         make([]int32, nr),
		spillCost:   make([]float64, nr),
		callerCost:  make([]float64, nr),
		crossesCall: make([]bool, nr),
		affinity:    make([]ir.Reg, nr),
		hint:        make([]machine.PhysReg, nr),
		entry:       ff.Entry,
	}
	for r := 0; r < nr; r++ {
		fi.start[r] = math.MaxInt32
		fi.end[r] = -1
		fi.affinity[r] = ir.NoReg
		fi.hint[r] = machine.NoPhysReg
	}

	// Parameters arrive in order; hint each one at the caller-save
	// register of its position in its bank, so a parameter that dies
	// before the first call tends to stay where it arrived.
	var paramIdx [ir.NumClasses]int
	for _, p := range fn.Params {
		c := fn.RegClass(p)
		if i := paramIdx[c]; i < config.Caller[c] {
			fi.hint[p] = machine.PhysReg(i)
		}
		paramIdx[c]++
	}

	pos := int32(0)
	for _, b := range fn.Blocks {
		n := int32(len(b.Instrs))
		boundary := pos + n
		w := ff.Block[b.ID]
		out := live.Out[b.ID]
		out.ForEach(func(r int) { fi.extend(r, boundary) })

		// The walk's live set starts as the block's live-out and is
		// updated per instruction; at a call it is exactly the set of
		// registers live across the call site.
		scratch.Clear()
		scratch.UnionWith(out)
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			ip := pos + int32(i)
			if in.Op == ir.OpCall {
				dst := ir.NoReg
				if in.HasDst() {
					dst = in.Dst
				}
				scratch.ForEach(func(r int) {
					if ir.Reg(r) == dst {
						return
					}
					fi.callerCost[r] += 2 * w
					fi.crossesCall[r] = true
				})
				// Arguments are consumed in caller-save registers; hint
				// each at the register of its position so the value is
				// already there when the call needs it.
				var argIdx [ir.NumClasses]int
				for _, a := range in.Args {
					c := fn.RegClass(a)
					j := argIdx[c]
					argIdx[c]++
					if fi.hint[a] == machine.NoPhysReg && j < config.Caller[c] {
						fi.hint[a] = machine.PhysReg(j)
					}
				}
			}
			if in.Op == ir.OpMove {
				fi.affinity[in.Dst] = in.Args[0]
				fi.affinity[in.Args[0]] = in.Dst
			}
			if in.HasDst() {
				fi.extend(int(in.Dst), ip)
				fi.spillCost[in.Dst] += w
				scratch.Remove(int(in.Dst))
			}
			for ai, a := range in.Args {
				fi.extend(int(a), ip)
				scratch.Add(int(a))
				dup := false
				for _, prev := range in.Args[:ai] {
					if prev == a {
						dup = true
						break
					}
				}
				if !dup {
					fi.spillCost[a] += w
				}
			}
		}
		live.In[b.ID].ForEach(func(r int) { fi.extend(r, pos) })
		pos = boundary + 1
	}
	return fi
}

// benefits returns the paper's two benefit functions for register r:
// what keeping it in a caller-save register saves over memory, and the
// same for a callee-save register.
func (fi *funcIntervals) benefits(r int) (benefitCaller, benefitCallee float64) {
	return fi.spillCost[r] - fi.callerCost[r], fi.spillCost[r] - 2*fi.entry
}

// prefersCallee applies the storage-class rule: a register wants
// callee-save exactly when that benefit strictly beats the caller-save
// benefit (only possible for call-crossing ranges).
func (fi *funcIntervals) prefersCallee(r int) bool {
	bcaller, bcallee := fi.benefits(r)
	return fi.crossesCall[r] && bcallee > bcaller
}

// scanOutcome is the result of scanning one function's intervals: the
// flat coloring, the registers to spill (in decision order, so stack
// slots number deterministically), and the estimated overhead of the
// allocation (the hybrid tier's escalation signal).
type scanOutcome struct {
	colors       []machine.PhysReg
	spilled      []ir.Reg
	spillReasons []string
	// estOverhead approximates the allocation's weighted memory-op
	// overhead: caller-save saves around calls, callee-save entry/exit
	// saves, and the spill cost of everything sent to memory.
	estOverhead float64
}

// errUnspillable reports a bank whose pressure from unspillable spill
// temporaries alone exceeds the register file — impossible under the
// machine model's minimum configuration, but reported rather than
// looped on.
type errUnspillable struct {
	fn    string
	class ir.Class
}

func (e errUnspillable) Error() string {
	return "linscan: " + e.fn + ": unspillable " + e.class.String() + " pressure exceeds the register bank"
}

// scanItem is one interval entering the scan, ordered by decreasing
// end position: the scan mirrors the backward walk, sweeping from the
// function's last position toward its entry.
type scanItem struct {
	reg        ir.Reg
	start, end int32
}

// scan allocates one bank's intervals. noSpill marks registers that
// must never be sent to memory (spill temporaries of earlier rounds).
func (fi *funcIntervals) scan(fn *ir.Func, class ir.Class, config machine.Config, noSpill func(ir.Reg) bool, out *scanOutcome) error {
	n := config.Total(class)
	items := make([]scanItem, 0, 32)
	for r := 0; r < fn.NumRegs(); r++ {
		if fn.RegClass(ir.Reg(r)) != class || !fi.live(r) {
			continue
		}
		items = append(items, scanItem{reg: ir.Reg(r), start: fi.start[r], end: fi.end[r]})
	}
	// Decreasing end, ties by register number: deterministic and in
	// reverse execution order, matching the analysis walk.
	sortItems(items)

	taken := make([]bool, n)
	type activeItem struct {
		reg   ir.Reg
		start int32
		col   machine.PhysReg
	}
	active := make([]activeItem, 0, n)

	spill := func(r ir.Reg, reason string) {
		out.spilled = append(out.spilled, r)
		out.spillReasons = append(out.spillReasons, reason)
		out.estOverhead += fi.spillCost[r]
	}

	calleeUsed := make([]bool, n)
	for _, it := range items {
		r := int(it.reg)
		// Expire: an active interval starting above the current end can
		// no longer overlap anything, because every remaining interval
		// ends at or below this one.
		for j := 0; j < len(active); {
			if active[j].start > it.end {
				taken[active[j].col] = false
				active[j] = active[len(active)-1]
				active = active[:len(active)-1]
			} else {
				j++
			}
		}

		bcaller, bcallee := fi.benefits(r)
		// Spill by choice (§4): a call-crossing range whose residence in
		// either register kind costs more than memory goes to memory.
		if fi.crossesCall[r] && !noSpill(it.reg) && bcaller < 0 && bcallee < 0 {
			spill(it.reg, reasonChoice)
			continue
		}

		col := machine.NoPhysReg
		if free := n - len(active); free == 0 {
			// Blocked: evict the cheapest spillable holder (or give up
			// on this interval if it is itself the cheapest).
			vreg, vcost := ir.NoReg, math.Inf(1)
			vidx := -1
			if !noSpill(it.reg) {
				vreg, vcost = it.reg, fi.spillCost[r]
			}
			for j, a := range active {
				if noSpill(a.reg) {
					continue
				}
				if c := fi.spillCost[a.reg]; c < vcost || (c == vcost && a.reg < vreg) {
					vreg, vcost, vidx = a.reg, c, j
				}
			}
			if vreg == ir.NoReg {
				return errUnspillable{fn: fn.Name, class: class}
			}
			if vreg == it.reg {
				spill(it.reg, reasonPressure)
				continue
			}
			col = active[vidx].col
			out.colors[vreg] = machine.NoPhysReg
			spill(vreg, reasonPressure)
			active[vidx] = active[len(active)-1]
			active = active[:len(active)-1]
			taken[col] = false
		}

		preferCallee := fi.prefersCallee(r)
		if col == machine.NoPhysReg {
			col = fi.pick(it.reg, class, config, taken, out.colors, preferCallee)
		}
		out.colors[it.reg] = col
		taken[col] = true
		active = append(active, activeItem{reg: it.reg, start: it.start, col: col})
		if config.IsCalleeSave(class, col) {
			if !calleeUsed[col] {
				calleeUsed[col] = true
				out.estOverhead += 2 * fi.entry
			}
		} else if fi.crossesCall[r] {
			out.estOverhead += fi.callerCost[r]
		}
	}
	return nil
}

// pick chooses a free register for r: the move partner's register
// first (a no-op shuffle), then the positional hint, then the first
// free register of the benefit-preferred kind, falling back to the
// other kind. Hinted choices are taken only within the preferred kind —
// optimistic placement must not override the storage-class decision.
func (fi *funcIntervals) pick(r ir.Reg, class ir.Class, config machine.Config, taken []bool, colors []machine.PhysReg, preferCallee bool) machine.PhysReg {
	usable := func(col machine.PhysReg) bool {
		return col != machine.NoPhysReg && !taken[col] &&
			config.IsCalleeSave(class, col) == preferCallee
	}
	if p := fi.affinity[r]; p != ir.NoReg {
		if col := colors[p]; usable(col) {
			return col
		}
	}
	if col := fi.hint[r]; usable(col) {
		return col
	}
	n := len(taken)
	first := machine.NoPhysReg
	for i := 0; i < n; i++ {
		if taken[i] {
			continue
		}
		col := machine.PhysReg(i)
		if first == machine.NoPhysReg {
			first = col
		}
		if config.IsCalleeSave(class, col) == preferCallee {
			return col
		}
	}
	return first
}

// sortItems orders by decreasing end, then increasing register.
func sortItems(items []scanItem) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].end != items[j].end {
			return items[i].end > items[j].end
		}
		return items[i].reg < items[j].reg
	})
}

// Spill reasons carried into the obs SpillChoice events.
const (
	reasonChoice   = "negative-benefit"
	reasonPressure = "blocked"
)
