package linscan

import (
	"fmt"
	"math"

	"repro/internal/interproc"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/regalloc"
	"repro/internal/telemetry"
)

// Scan is the graph-free linear-scan strategy. As a PipelineBuilder it
// replaces the six-pass coloring pipeline with three passes —
//
//	liveness → scan → spill-rewrite
//
// — dropping build-graph, coalesce, liverange, and color entirely: the
// scan pass derives segments, costs, and hints from one backward walk
// and assigns registers in a single sweep with hole-aware second-chance
// binpacking. The zero value is ready to use and safe for concurrent
// allocations.
type Scan struct {
	// ConservativeHulls disables the segment refinement: conflict falls
	// back to the PR 7 hull-overlap test and the blocked path spills
	// instead of binpacking. Kept as an ablation and as the baseline of
	// the hole-vs-hull overhead differential; the registered "linscan"
	// strategy leaves it false.
	ConservativeHulls bool
}

// Name implements Strategy.
func (*Scan) Name() string { return "linscan" }

// BuildPipeline implements regalloc.PipelineBuilder. The coalescing
// options have no meaning without a graph and are ignored; Rebuild
// keeps its usual effect on the liveness pass.
func (sc *Scan) BuildPipeline(insertSpills regalloc.SpillInserter, opts regalloc.Options) pipeline.Pipeline {
	return pipeline.New(
		regalloc.LivenessPass(opts.Rebuild),
		scanPass{hulls: sc.ConservativeHulls, cc: opts.Interproc},
		regalloc.SpillRewritePass(insertSpills),
	)
}

// Allocate implements Strategy for the rare case of Scan dropped into
// a graph-coloring pipeline (Options.Pipeline with a ColorPass(Scan)):
// a single greedy sweep over the graph's nodes applying the same
// benefit split, evicting the cheapest spillable holder when blocked.
// The native path — the scan pass installed by BuildPipeline — never
// calls this.
func (sc *Scan) Allocate(ctx *regalloc.ClassContext) *regalloc.ClassResult {
	res := regalloc.NewClassResult()
	cost := func(r ir.Reg) float64 {
		if rg := ctx.RangeOf(r); rg != nil {
			return rg.SpillCost
		}
		return 0
	}
	for _, rep := range ctx.Nodes() {
		rg := ctx.RangeOf(rep)
		if rg != nil && !rg.NoSpill && rg.CrossesCall && rg.BenefitCaller < 0 && rg.BenefitCallee < 0 {
			res.Spilled = append(res.Spilled, rep)
			ctx.EmitSpill(rep, obs.ReasonNegativeBenefit, rg.SpillCost)
			continue
		}
		for {
			free := ctx.FreeColors(res, rep)
			if len(free) > 0 {
				caller, callee := ctx.SplitFree(free)
				prefer := rg != nil && rg.PrefersCallee()
				var col machine.PhysReg
				switch {
				case prefer && len(callee) > 0:
					col = callee[0]
				case !prefer && len(caller) > 0:
					col = caller[0]
				default:
					col = free[0]
				}
				ctx.Assign(res, rep, col)
				ctx.EmitAssign(rep, col, prefer)
				break
			}
			victim, vcost := ir.NoReg, math.Inf(1)
			if rg == nil || !rg.NoSpill {
				victim, vcost = rep, cost(rep)
			}
			ctx.Graph.Neighbors(rep, func(nb ir.Reg) {
				if _, colored := res.Colors[nb]; !colored {
					return
				}
				if nrg := ctx.RangeOf(nb); nrg != nil && nrg.NoSpill {
					return
				}
				if c := cost(nb); c < vcost || (c == vcost && nb < victim) {
					victim, vcost = nb, c
				}
			})
			if victim == ir.NoReg {
				// Every holder is an unspillable temporary; spilling rep
				// anyway at least terminates the sweep (the round limit
				// catches a configuration this pathological).
				victim = rep
			}
			if victim == rep {
				res.Spilled = append(res.Spilled, rep)
				ctx.EmitSpill(rep, obs.ReasonBlocked, vcost)
				break
			}
			ctx.Unassign(res, victim)
			res.Spilled = append(res.Spilled, victim)
			ctx.EmitSpill(victim, obs.ReasonBlocked, vcost)
		}
	}
	return res
}

// runScan performs the analysis walk and the per-bank scans against
// the pipeline state, without committing anything. hulls selects the
// conservative hull-overlap ablation.
func runScan(s *pipeline.State, hulls bool, cc *interproc.Table) (*funcIntervals, *scanOutcome, error) {
	nr := s.Fn.NumRegs()
	// The segment arena parks on the state between rounds, so spill
	// rounds reuse the round-0 allocations.
	sb, ok := s.Scratch.(*segBuilder)
	if !ok {
		sb = new(segBuilder)
		s.Scratch = sb
	}
	fi := analyze(s.Fn, s.Live, s.FF, s.Config, sb, cc)
	fi.hullOnly = hulls
	// Recycle the colors backing array across rounds, like the color
	// pass: only the final round's contents escape into the result.
	colors := s.Colors
	if cap(colors) < nr {
		colors = make([]machine.PhysReg, nr)
	} else {
		colors = colors[:nr]
	}
	for i := range colors {
		colors[i] = machine.NoPhysReg
	}
	out := &scanOutcome{colors: colors, via: make([]uint8, nr)}
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		if err := fi.scan(s.Fn, c, s.Config, s.IsNoSpill, out); err != nil {
			return fi, out, err
		}
	}
	return fi, out, nil
}

// commit publishes a scan outcome to the state: the coloring, the
// spill set with its deterministically numbered slots, the decision
// events, and the tier telemetry.
func commit(s *pipeline.State, fi *funcIntervals, out *scanOutcome) {
	spillSet := make(map[ir.Reg]*ir.Symbol, len(out.spilled))
	for i, r := range out.spilled {
		slot := &ir.Symbol{
			Name:  fmt.Sprintf("%s.spill.%d", s.Fn.Name, len(s.SlotOf)+i),
			Class: s.Fn.RegClass(r),
			Local: true,
			Spill: true,
		}
		spillSet[r] = slot
		if s.Traced() {
			bcaller, bcallee := fi.benefits(int(r))
			s.Tracer.Emit(obs.Event{Kind: obs.KindSpillChoice, Fn: s.Fn.Name,
				Class: s.Fn.RegClass(r), Round: s.Round, Reg: r,
				Reason: out.spillReasons[i], Key: fi.spillCost[r],
				Cost: fi.spillCost[r], BenefitCaller: bcaller, BenefitCallee: bcallee})
			s.Tracer.Emit(obs.Event{Kind: obs.KindRewriteInsert, Fn: s.Fn.Name,
				Class: s.Fn.RegClass(r), Round: s.Round, Reg: r, Slot: slot.Name, N: 1})
		}
	}
	if s.Traced() {
		for r := 0; r < len(out.colors); r++ {
			col := out.colors[r]
			if col == machine.NoPhysReg {
				continue
			}
			c := s.Fn.RegClass(ir.Reg(r))
			bcaller, bcallee := fi.benefits(r)
			s.Tracer.Emit(obs.Event{Kind: obs.KindColorAssign, Fn: s.Fn.Name,
				Class: c, Round: s.Round, Reg: ir.Reg(r), Color: col,
				Wanted: kindName(fi.prefersCallee(r)),
				Chosen: kindName(s.Config.IsCalleeSave(c, col)),
				Cost:   fi.spillCost[r], BenefitCaller: bcaller, BenefitCallee: bcallee})
			// Binpacking decisions ride directly behind their assignment:
			// a hole event for a range packed into an occupied register at
			// first chance, a second-chance event for one that lost its
			// register and was re-seated against the committed assignment.
			// N carries the range's segment count (≥ 2 means real holes).
			switch out.via[r] {
			case viaHole:
				s.Tracer.Emit(obs.Event{Kind: obs.KindHoleAssign, Fn: s.Fn.Name,
					Class: c, Round: s.Round, Reg: ir.Reg(r), Color: col,
					Cost: fi.spillCost[r], N: len(fi.segs[r])})
			case viaSecond:
				s.Tracer.Emit(obs.Event{Kind: obs.KindSecondChance, Fn: s.Fn.Name,
					Class: c, Round: s.Round, Reg: ir.Reg(r), Color: col,
					Cost: fi.spillCost[r], N: len(fi.segs[r])})
			}
		}
	}
	s.SpillSet = spillSet
	s.Colors = out.colors
	if b := telemetry.B(); b != nil {
		b.ScanRounds.Inc()
		if out.holeAssigns > 0 {
			b.ScanHoleAssigns.Add(int64(out.holeAssigns))
		}
		if out.secondChance > 0 {
			b.ScanSecondChance.Add(int64(out.secondChance))
		}
	}
}

func kindName(callee bool) string {
	if callee {
		return obs.KindCallee
	}
	return obs.KindCaller
}

// scanPass is the Scan strategy's single allocation pass.
type scanPass struct {
	// hulls selects the conservative hull-overlap ablation.
	hulls bool
	// cc supplies interprocedural call costs (nil = static estimates).
	cc *interproc.Table
}

func (scanPass) Name() string                    { return obs.PhaseScan }
func (scanPass) Preserves() pipeline.AnalysisSet { return pipeline.PreserveAll }

func (p scanPass) Run(s *pipeline.State) error {
	fi, out, err := runScan(s, p.hulls, p.cc)
	if err != nil {
		return err
	}
	commit(s, fi, out)
	return nil
}

// DefaultMaxScanOverhead is the escalation bar callcost.HybridTiered
// installs. Re-derived for the segment-refined scan from the knee of
// the benchprog bar sweep (cmd/experiments -exp pareto): above ~20000
// estimated weighted memory operations, full coloring reliably recovers
// meaningful quality over the scan (the long tail of hot spill-heavy
// functions); below it, escalations stop paying for themselves (at a
// bar of 25000 an extra function escalates with zero total-overhead
// gain over 30000). The hull-based scan could not afford a finite bar
// at all — every spill escalated; the sharper segments both raised the
// bar and cut benchprog escalations from 7/76 to 6/76 at 333745 total
// overhead (vs 487666), within 4% of improved coloring.
const DefaultMaxScanOverhead = 20000

// Hybrid is the two-tier strategy: run the linear scan first and keep
// its result when it is clean; escalate to graph coloring — once, for
// the whole rest of the function's allocation — when the scan would
// take a pressure spill or its estimated overhead exceeds the budget.
// Spill-light functions (the common case) pay only the scan; the hard
// ones get the full coloring treatment they were going to need anyway.
type Hybrid struct {
	// Escalate is the graph-coloring strategy of the expensive tier.
	// Nil falls back to base Chaitin; callers usually install the
	// paper's improved allocator.
	Escalate regalloc.Strategy
	// MaxScanOverhead, when positive, additionally escalates functions
	// whose scan allocation's estimated overhead (weighted memory
	// operations) exceeds it, even if nothing spilled. Zero escalates
	// on spills only.
	MaxScanOverhead float64
}

// Name implements Strategy.
func (*Hybrid) Name() string { return "hybrid" }

// escalate returns the expensive-tier strategy.
func (h *Hybrid) escalate() regalloc.Strategy {
	if h.Escalate != nil {
		return h.Escalate
	}
	return &regalloc.Chaitin{}
}

// Allocate implements Strategy by delegating to the expensive tier
// (meaningful only when Hybrid is dropped into a plain coloring
// pipeline; the native tiered pipeline decides per function).
func (h *Hybrid) Allocate(ctx *regalloc.ClassContext) *regalloc.ClassResult {
	return h.escalate().Allocate(ctx)
}

// BuildPipeline implements regalloc.PipelineBuilder: the standard
// coloring pipeline of the escalation strategy (honoring the
// coalescing and rebuild options), with the scan pass inserted after
// liveness and every coloring pass gated on State.Escalated. A
// function whose scan commits cleanly converges without ever running
// build-graph; one that escalates runs the full coloring sequence in
// the same round and stays in that tier for all later rounds.
func (h *Hybrid) BuildPipeline(insertSpills regalloc.SpillInserter, opts regalloc.Options) pipeline.Pipeline {
	coloring := regalloc.BuildPipeline(h.escalate(), insertSpills, opts)
	passes := []pipeline.Pass{
		regalloc.LivenessPass(opts.Rebuild),
		hybridScanPass{h: h, cc: opts.Interproc},
	}
	for _, p := range coloring.Passes() {
		switch p.Name() {
		case obs.PhaseLiveness:
			// Already first; both tiers share it.
		case obs.PhaseRewrite:
			// Both tiers spill through the same rewrite (it skips on
			// converged rounds either way).
			passes = append(passes, p)
		default:
			passes = append(passes, escalatedOnly{inner: p})
		}
	}
	return pipeline.New(passes...)
}

// hybridScanPass runs the scan tier at round 0 and decides whether to
// keep the result or escalate.
type hybridScanPass struct {
	h  *Hybrid
	cc *interproc.Table
}

func (hybridScanPass) Name() string                    { return obs.PhaseScan }
func (hybridScanPass) Preserves() pipeline.AnalysisSet { return pipeline.PreserveAll }

// Skip keeps the scan out of every round after an escalation.
func (hybridScanPass) Skip(s *pipeline.State) bool { return s.Escalated }

func (p hybridScanPass) Run(s *pipeline.State) error {
	fi, out, err := runScan(s, false, p.cc)
	reason := ""
	switch {
	case err != nil:
		// Unspillable pressure the scan cannot express; coloring can.
		reason = "scan-error"
	case out.pressureSpills > 0:
		// Only pressure spills signal that the scan's packing failed.
		// Spills by choice are the cost model speaking — the coloring
		// tier's §4 machinery makes the same negative-benefit call — so
		// they are not worth a full coloring run by themselves.
		reason = "spill"
	case p.h.MaxScanOverhead > 0 && out.estOverhead > p.h.MaxScanOverhead:
		reason = "overhead"
	}
	if reason != "" {
		s.Escalated = true
		if b := telemetry.B(); b != nil {
			b.HybridEscalations.Inc()
		}
		if s.Traced() {
			s.Tracer.Emit(obs.Event{Kind: obs.KindEscalate, Fn: s.Fn.Name,
				Round: s.Round, Reason: reason, N: len(out.spilled)})
		}
		return nil
	}
	commit(s, fi, out)
	return nil
}

// escalatedOnly gates a coloring pass on the hybrid's escalation flag,
// delegating everything else (including the pass's own Skip and
// PostPhase) to the wrapped pass.
type escalatedOnly struct{ inner pipeline.Pass }

func (e escalatedOnly) Name() string                    { return e.inner.Name() }
func (e escalatedOnly) Preserves() pipeline.AnalysisSet { return e.inner.Preserves() }
func (e escalatedOnly) Run(s *pipeline.State) error     { return e.inner.Run(s) }

func (e escalatedOnly) Skip(s *pipeline.State) bool {
	if !s.Escalated {
		return true
	}
	if sk, ok := e.inner.(pipeline.Skipper); ok {
		return sk.Skip(s)
	}
	return false
}

func (e escalatedOnly) PostPhase(s *pipeline.State) {
	if pp, ok := e.inner.(pipeline.PostPhaser); ok {
		pp.PostPhase(s)
	}
}
