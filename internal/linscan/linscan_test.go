package linscan_test

import (
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/compile"
	"repro/internal/freq"
	"repro/internal/interference"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/linscan"
	"repro/internal/liveness"
	"repro/internal/liverange"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/regalloc"
	"repro/internal/rewrite"
)

const pressureSrc = `
int f(int a, int b, int c) {
	int d = a + b;
	int e = b + c;
	int g = a + c;
	int h = d + e;
	int i = e + g;
	int j = d + g;
	return h + i + j + a + b + c + d + e + g;
}
int main() { return f(1, 2, 3); }`

const callSrc = `
int g(int x) { return x + 1; }
int f(int a) {
	g(7);
	return a;
}
int main() { return f(5); }`

// alloc compiles src and allocates fn with strat, returning the result.
func alloc(t *testing.T, src, fn string, strat regalloc.Strategy, config machine.Config, opts regalloc.Options) *regalloc.FuncAlloc {
	t.Helper()
	prog, err := compile.Source(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := interp.Run(prog, interp.Options{Profile: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	pf := freq.FromProfile(prog, res.Profile)
	fa, err := regalloc.AllocatePrepared(regalloc.Prepare(prog.FuncByName[fn]), pf.ByFunc[fn], config, strat, rewrite.InsertSpills, opts)
	if err != nil {
		t.Fatalf("allocate: %v", err)
	}
	if err := rewrite.Validate(fa); err != nil {
		t.Fatalf("invalid allocation: %v", err)
	}
	return fa
}

func TestScanPipelineShape(t *testing.T) {
	pl := regalloc.BuildPipeline(&linscan.Scan{}, rewrite.InsertSpills, regalloc.DefaultOptions())
	if got, want := strings.Join(pl.Names(), " "), "liveness scan spill-rewrite"; got != want {
		t.Fatalf("scan pipeline = %q, want %q", got, want)
	}
	pl = regalloc.BuildPipeline(&linscan.Hybrid{}, rewrite.InsertSpills, regalloc.DefaultOptions())
	want := []string{obs.PhaseLiveness, obs.PhaseScan, obs.PhaseBuild, obs.PhaseCoalesce,
		obs.PhaseRanges, obs.PhaseColor, obs.PhaseRewrite}
	if got := pl.Names(); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("hybrid pipeline = %v, want %v", got, want)
	}
}

func TestScanCleanAllocation(t *testing.T) {
	fa := alloc(t, pressureSrc, "f", &linscan.Scan{}, machine.NewConfig(14, 8, 12, 8), regalloc.DefaultOptions())
	if len(fa.SlotOf) != 0 {
		t.Fatalf("spilled %d ranges with a full machine", len(fa.SlotOf))
	}
	if fa.Rounds != 1 {
		t.Fatalf("clean scan took %d rounds, want 1", fa.Rounds)
	}
	if fa.Escalated {
		t.Fatal("single-tier scan reported Escalated")
	}
}

func TestScanSpillsUnderPressure(t *testing.T) {
	fa := alloc(t, pressureSrc, "f", &linscan.Scan{}, machine.NewConfig(6, 4, 0, 0), regalloc.DefaultOptions())
	if len(fa.SlotOf) == 0 {
		t.Fatal("expected spills at 6 integer registers")
	}
	if fa.Rounds < 2 {
		t.Fatalf("spilling allocation converged in %d rounds", fa.Rounds)
	}
}

func TestScanSpillByChoice(t *testing.T) {
	// In f, a is live across the call to g but barely used: spillCost 1
	// (one use) < callerCost 2 and < 2×entry, so both benefits are
	// negative and the scan spills it by choice even with registers free.
	stats := obs.NewStats()
	opts := regalloc.DefaultOptions()
	opts.Tracer = stats
	fa := alloc(t, callSrc, "f", &linscan.Scan{}, machine.NewConfig(8, 6, 4, 4), opts)
	if len(fa.SlotOf) != 1 {
		t.Fatalf("SlotOf = %v, want exactly the across-call range spilled", fa.SlotOf)
	}
	if stats.Count(obs.KindSpillChoice) == 0 {
		t.Fatal("no spill-choice event emitted")
	}
}

func TestScanParamHint(t *testing.T) {
	// With no calls and no pressure, parameter a should keep its
	// incoming argument register: PhysReg 0 of the caller-save bank.
	fa := alloc(t, `int f(int a, int b) { return a; } int main() { return f(1, 2); }`,
		"f", &linscan.Scan{}, machine.NewConfig(8, 6, 4, 4), regalloc.DefaultOptions())
	p := fa.Fn.Params[0]
	if got := fa.Colors[p]; got != machine.PhysReg(0) {
		t.Fatalf("param colored %v, want hinted register 0", got)
	}
}

func TestHybridEscalatesOnSpill(t *testing.T) {
	stats := obs.NewStats()
	opts := regalloc.DefaultOptions()
	opts.Tracer = stats
	h := &linscan.Hybrid{Escalate: &regalloc.Chaitin{}}
	fa := alloc(t, pressureSrc, "f", h, machine.NewConfig(6, 4, 0, 0), opts)
	if !fa.Escalated {
		t.Fatal("pressure function did not escalate to coloring")
	}
	if stats.Count(obs.KindEscalate) != 1 {
		t.Fatalf("escalate events = %d, want 1", stats.Count(obs.KindEscalate))
	}
}

func TestHybridStaysInScanTier(t *testing.T) {
	stats := obs.NewStats()
	opts := regalloc.DefaultOptions()
	opts.Tracer = stats
	h := &linscan.Hybrid{Escalate: &regalloc.Chaitin{}}
	fa := alloc(t, pressureSrc, "f", h, machine.NewConfig(14, 8, 12, 8), opts)
	if fa.Escalated {
		t.Fatal("spill-free function escalated")
	}
	if fa.Rounds != 1 {
		t.Fatalf("scan-tier allocation took %d rounds, want 1", fa.Rounds)
	}
	if stats.Count(obs.KindEscalate) != 0 {
		t.Fatal("unexpected escalate event")
	}
}

func TestHybridOverheadBudget(t *testing.T) {
	// A spill-free allocation that still pays save/restore traffic (s
	// and a are live across the call and worth keeping): with an
	// absurdly small overhead budget the hybrid must escalate anyway.
	src := `
int g(int x) { return x + 1; }
int f(int a) {
	int s = a + a;
	g(1);
	s = s + a;
	return s;
}
int main() { return f(5); }`
	h := &linscan.Hybrid{Escalate: &regalloc.Chaitin{}, MaxScanOverhead: 1e-9}
	fa := alloc(t, src, "f", h, machine.NewConfig(8, 6, 4, 4), regalloc.DefaultOptions())
	if !fa.Escalated {
		t.Fatal("overhead budget did not force escalation")
	}
	// The same function under no budget stays in the scan tier.
	h = &linscan.Hybrid{Escalate: &regalloc.Chaitin{}}
	fa = alloc(t, src, "f", h, machine.NewConfig(8, 6, 4, 4), regalloc.DefaultOptions())
	if fa.Escalated {
		t.Fatal("escalated without a budget or spills")
	}
}

// TestScanFallbackAllocate drives Scan.Allocate through a standard
// coloring pipeline (the non-native path) and checks the coloring it
// produces respects interference.
func TestScanFallbackAllocate(t *testing.T) {
	prog, err := compile.Source(pressureSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := interp.Run(prog, interp.Options{Profile: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	pf := freq.FromProfile(prog, res.Profile)
	f := prog.FuncByName["f"]
	config := machine.NewConfig(8, 6, 4, 4)
	live := liveness.Compute(f, cfg.New(f))
	var graphs [ir.NumClasses]*interference.Graph
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		graphs[c] = interference.Build(f, live, c)
		graphs[c].Coalesce(false, config.Total(c))
	}
	ranges := liverange.Analyze(f, live, &graphs, pf.ByFunc["f"], nil)
	ctx := &regalloc.ClassContext{
		Fn:     f,
		Class:  ir.ClassInt,
		Graph:  graphs[ir.ClassInt],
		Ranges: ranges,
		Config: config,
	}
	out := (&linscan.Scan{}).Allocate(ctx)
	spilled := make(map[ir.Reg]bool, len(out.Spilled))
	for _, r := range out.Spilled {
		spilled[r] = true
	}
	for _, rep := range ctx.Nodes() {
		col, colored := out.Colors[rep]
		if !colored && !spilled[rep] {
			t.Fatalf("node %v neither colored nor spilled", rep)
		}
		if !colored {
			continue
		}
		if col < 0 || int(col) >= config.Total(ir.ClassInt) {
			t.Fatalf("node %v got out-of-bank color %v", rep, col)
		}
		ctx.Graph.Neighbors(rep, func(nb ir.Reg) {
			if nc, ok := out.Colors[nb]; ok && nc == col {
				t.Fatalf("neighbors %v and %v share color %v", rep, nb, col)
			}
		})
	}
}
