package linscan

import (
	"sort"

	"repro/internal/ir"
)

// Lifetime segments (Traub et al.'s second-chance binpacking): instead
// of one conservative [start,end] hull per register, each register
// carries an ordered set of disjoint live segments with holes at
// def-dead-redef gaps and across blocks where the register is not
// live. Two registers whose hulls overlap but whose segment sets are
// disjoint are never simultaneously live and never clobber each other,
// so they can share a physical register — the scan exploits exactly
// that when a bank is blocked.
//
// Positions use a doubled slot space over the block layout order:
// instruction i occupies a read slot 2i (its arguments) and a write
// slot 2i+1 (its destination), and each block gets one even boundary
// slot past its last instruction covering the live-out set. A use
// therefore ends a segment at the read slot and a definition opens one
// at the write slot, so a register dying at an instruction and the
// register that instruction defines occupy disjoint slots — the same
// read-before-write refinement Chaitin-style interference applies via
// its live-at-definition rule.

// readSlot and writeSlot map an instruction's layout index into the
// doubled slot space; boundarySlot covers a block's live-out set.
func readSlot(ip int32) int32     { return 2 * ip }
func writeSlot(ip int32) int32    { return 2*ip + 1 }
func boundarySlot(ip int32) int32 { return 2 * ip }

// seg is one closed range [from,to] of slots where a register is live
// (or occupied by a dead definition's write).
type seg struct {
	from, to int32
}

// segList is a register's ordered set of disjoint live segments.
type segList []seg

// intersects reports whether two segment sets share any slot, by a
// two-pointer sweep over the sorted lists.
func (s segList) intersects(o segList) bool {
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		if s[i].to < o[j].from {
			i++
			continue
		}
		if o[j].to < s[i].from {
			j++
			continue
		}
		return true
	}
	return false
}

// covers reports whether any segment contains the slot.
func (s segList) covers(slot int32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i].to >= slot })
	return i < len(s) && s[i].from <= slot
}

// segBuilder accumulates segments during the backward analysis walk.
// Segments are pushed per block in decreasing order (the walk runs
// backward) with blocks visited in increasing layout order; finalize
// sorts each register's list and merges continuations.
type segBuilder struct {
	segs [][]seg
	// openEnd[r] is the end slot of r's currently open segment, or -1.
	// Going backward, a segment opens at the last slot where r is live
	// (a use, or the block boundary when live-out) and closes at the
	// defining write slot or the block start.
	openEnd []int32
	// opened lists the registers opened in the current block, so the
	// block flush does not scan every register.
	opened []ir.Reg
}

func (sb *segBuilder) reset(nr int) {
	if cap(sb.segs) < nr {
		sb.segs = make([][]seg, nr)
		sb.openEnd = make([]int32, nr)
	} else {
		sb.segs = sb.segs[:nr]
		for r := range sb.segs {
			sb.segs[r] = sb.segs[r][:0]
		}
		sb.openEnd = sb.openEnd[:nr]
	}
	for r := range sb.openEnd {
		sb.openEnd[r] = -1
	}
	sb.opened = sb.opened[:0]
}

// open starts a segment ending at slot unless r already has one open.
func (sb *segBuilder) open(r ir.Reg, slot int32) {
	if sb.openEnd[r] >= 0 {
		return
	}
	sb.openEnd[r] = slot
	sb.opened = append(sb.opened, r)
}

// close ends r's open segment at slot (a defining write). With no open
// segment the definition is dead and occupies just its own write slot —
// the register file is still written there, so the slot must conflict.
func (sb *segBuilder) close(r ir.Reg, slot int32) {
	if end := sb.openEnd[r]; end >= 0 {
		sb.segs[r] = append(sb.segs[r], seg{from: slot, to: end})
		sb.openEnd[r] = -1
	} else {
		sb.segs[r] = append(sb.segs[r], seg{from: slot, to: slot})
	}
}

// flushBlock closes every still-open segment at the block's first read
// slot: anything open here is live-in (or upward-exposed in unreachable
// code) and its segment reaches the block start.
func (sb *segBuilder) flushBlock(blockStart int32) {
	for _, r := range sb.opened {
		if end := sb.openEnd[r]; end >= 0 {
			sb.segs[r] = append(sb.segs[r], seg{from: blockStart, to: end})
			sb.openEnd[r] = -1
		}
	}
	sb.opened = sb.opened[:0]
}

// finalize sorts each register's segments and merges continuations: a
// gap of at most two slots is a handoff inside one liveness span (a
// live-through block boundary, or a same-instruction use+redefine),
// never a genuine hole — a dead gap always spans at least one whole
// read/write slot pair plus the reopening write.
func (sb *segBuilder) finalize() []segList {
	out := make([]segList, len(sb.segs))
	for r, segs := range sb.segs {
		if len(segs) == 0 {
			continue
		}
		sort.Slice(segs, func(i, j int) bool { return segs[i].from < segs[j].from })
		merged := segs[:1]
		for _, s := range segs[1:] {
			if last := &merged[len(merged)-1]; s.from-last.to <= 2 {
				if s.to > last.to {
					last.to = s.to
				}
			} else {
				merged = append(merged, s)
			}
		}
		out[r] = segList(merged)
	}
	return out
}
