package experiments

import (
	"fmt"
	"io"

	"repro"
)

// Fig6Combos are the technique combinations of Figure 6, compared
// against the base allocator.
var Fig6Combos = []struct {
	Label string
	Strat func() callcost.Strategy
}{
	{"SC", func() callcost.Strategy { return callcost.Improved(true, false, false) }},
	{"SC+PR", func() callcost.Strategy { return callcost.Improved(true, false, true) }},
	{"SC+BS", func() callcost.Strategy { return callcost.Improved(true, true, false) }},
	{"SC+BS+PR", func() callcost.Strategy { return callcost.Improved(true, true, true) }},
}

// Fig6Row is base/improved for each combination at one configuration.
type Fig6Row struct {
	Config callcost.Config
	Ratio  []float64 // indexed like Fig6Combos
}

// ImprovementRatios computes Figure 6 for one program under the given
// weights.
func ImprovementRatios(env *Env, program string, dynamic bool) ([]Fig6Row, error) {
	p, err := env.Get(program)
	if err != nil {
		return nil, err
	}
	pf := p.Freq(dynamic)
	cfgs := sweep()
	rows := make([]Fig6Row, len(cfgs))
	err = forEachIndexed(len(cfgs), func(i int) error {
		cfg := cfgs[i]
		base, err := p.Overhead(callcost.Chaitin(), cfg, pf)
		if err != nil {
			return err
		}
		row := Fig6Row{Config: cfg}
		for _, combo := range Fig6Combos {
			o, err := p.Overhead(combo.Strat(), cfg, pf)
			if err != nil {
				return err
			}
			row.Ratio = append(row.Ratio, callcost.Ratio(base.Total(), o.Total()))
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig6Programs are the programs shown in the paper's Figure 6, plus
// tomcatv as the flat class-4 witness.
var Fig6Programs = []string{"nasa7", "ear", "li", "sc", "eqntott", "espresso", "tomcatv"}

func init() {
	register(&Experiment{
		ID: "fig6",
		Title: "Figure 6: improvement of SC / SC+BS / SC+BS+PR over base " +
			"Chaitin as a function of register pressure (ratios > 1 mean " +
			"less overhead); programs fall into the paper's four classes",
		Run: func(env *Env, w io.Writer) error {
			header(w, "Figure 6 — improvement ratios over base Chaitin (dynamic weights)")
			// Compute every program's rows in parallel, print in order.
			byProg := make([][]Fig6Row, len(Fig6Programs))
			err := forEachIndexed(len(Fig6Programs), func(i int) error {
				rows, err := ImprovementRatios(env, Fig6Programs[i], true)
				byProg[i] = rows
				return err
			})
			if err != nil {
				return err
			}
			for pi, prog := range Fig6Programs {
				rows := byProg[pi]
				fmt.Fprintf(w, "\n%s\n%-14s", prog, "(Ri,Rf,Ei,Ef)")
				for _, c := range Fig6Combos {
					fmt.Fprintf(w, " %8s", c.Label)
				}
				fmt.Fprintln(w)
				for _, r := range rows {
					fmt.Fprintf(w, "%-14s", r.Config)
					for _, v := range r.Ratio {
						fmt.Fprintf(w, " %8.2f", v)
					}
					fmt.Fprintln(w)
				}
			}
			return nil
		},
	})
}
