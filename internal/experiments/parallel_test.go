package experiments

import (
	"bytes"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachIndexedFillsEverySlot(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	got := make([]int, 100)
	if err := forEachIndexed(len(got), func(i int) error {
		got[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestForEachIndexedReturnsLowestIndexError(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	err3 := errors.New("item 3")
	err7 := errors.New("item 7")
	err := forEachIndexed(10, func(i int) error {
		switch i {
		case 3:
			return err3
		case 7:
			return err7
		}
		return nil
	})
	if err != err3 {
		t.Fatalf("got %v, want the lowest-index error %v", err, err3)
	}
}

func TestForEachIndexedBoundsWorkers(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	var active, peak int64
	err := forEachIndexed(64, func(i int) error {
		n := atomic.AddInt64(&active, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
				break
			}
		}
		atomic.AddInt64(&active, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&peak); got > 4 {
		t.Fatalf("observed %d concurrent items, pool bound is 4", got)
	}
}

// TestExperimentOutputDeterministic runs a parallelized experiment
// twice with extra workers and requires byte-identical output: the
// worker pool must only change wall time, never rows or their order.
func TestExperimentOutputDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	e := ByID("fig2")
	if e == nil {
		t.Fatal("fig2 not registered")
	}
	env := NewEnv()
	var first, second bytes.Buffer
	if err := e.Run(env, &first); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(env, &second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("experiment output changed between runs:\n--- first\n%s\n--- second\n%s",
			first.String(), second.String())
	}
}
