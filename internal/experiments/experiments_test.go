package experiments_test

import (
	"io"
	"strings"
	"testing"

	"repro"
	"repro/internal/experiments"
)

// env is shared across tests: compiling and profiling the suite once.
var env = experiments.NewEnv()

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablation-callee", "ablation-coalesce", "ablation-key",
		"ablation-priority", "ablation-rebuild", "ablation-spillheur",
		"fig10", "fig11", "fig2", "fig6", "fig7", "fig9",
		"interproc", "pareto", "pareto-smoke", "tab2", "tab3", "tab4",
	}
	all := experiments.All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if experiments.ByID("fig2") == nil || experiments.ByID("nope") != nil {
		t.Error("ByID broken")
	}
}

// TestFigure2Shape pins the headline observation: the base allocator's
// spill cost falls to (near) zero as registers are added while its
// call cost persists — and for eqntott MORE registers INCREASE total
// overhead.
func TestFigure2Shape(t *testing.T) {
	rows, err := experiments.CostDecomposition(env, "eqntott", callcost.Chaitin())
	if err != nil {
		t.Fatal(err)
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.Config.String() != "(6,4,0,0)" {
		t.Fatalf("sweep starts at %s", first.Config)
	}
	if first.Cost.Spill == 0 {
		t.Error("expected spilling at the minimum configuration")
	}
	if last.Cost.Spill > first.Cost.Spill/10 {
		t.Errorf("spill did not collapse: %0.f -> %.0f", first.Cost.Spill, last.Cost.Spill)
	}
	if first.Cost.Caller == 0 {
		t.Error("caller-save cost should dominate at (6,4,0,0)")
	}
	if last.Cost.Total() <= first.Cost.Total() {
		t.Errorf("eqntott base should get WORSE with more registers: %.0f -> %.0f",
			first.Cost.Total(), last.Cost.Total())
	}
}

// TestFigure7Headline pins the paper's headline factor: improved
// Chaitin removes a large multiple of the base allocator's overhead on
// ear and eqntott (the paper reports 45x and 66x).
func TestFigure7Headline(t *testing.T) {
	for _, prog := range []string{"ear", "eqntott"} {
		base, err := experiments.CostDecomposition(env, prog, callcost.Chaitin())
		if err != nil {
			t.Fatal(err)
		}
		impr, err := experiments.CostDecomposition(env, prog, callcost.ImprovedAll())
		if err != nil {
			t.Fatal(err)
		}
		last := len(base) - 1
		ratio := callcost.Ratio(base[last].Cost.Total(), impr[last].Cost.Total())
		if ratio < 10 {
			t.Errorf("%s: full-machine base/improved = %.1f, want a large multiple", prog, ratio)
		}
		// Improved never worse than base anywhere on the sweep.
		for i := range base {
			if impr[i].Cost.Total() > base[i].Cost.Total()*1.02+1 {
				t.Errorf("%s at %s: improved %.0f exceeds base %.0f", prog,
					base[i].Config, impr[i].Cost.Total(), base[i].Cost.Total())
			}
		}
	}
}

// TestFigure6Classes pins the four program classes of §7.
func TestFigure6Classes(t *testing.T) {
	get := func(prog string) []experiments.Fig6Row {
		rows, err := experiments.ImprovementRatios(env, prog, true)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	maxRatio := func(rows []experiments.Fig6Row, col int) float64 {
		m := 0.0
		for _, r := range rows {
			if r.Ratio[col] > m {
				m = r.Ratio[col]
			}
		}
		return m
	}
	// Column indices per Fig6Combos: 0=SC 1=SC+PR 2=SC+BS 3=SC+BS+PR.
	// Class 4: tomcatv — one call-free function, everything flat at 1.
	for _, r := range get("tomcatv") {
		for _, v := range r.Ratio {
			if v < 0.99 || v > 1.01 {
				t.Errorf("tomcatv should be flat, got %v at %s", v, r.Config)
			}
		}
	}
	// Class 2: sc and li — storage-class analysis alone is a clear win.
	for _, prog := range []string{"sc", "li"} {
		if m := maxRatio(get(prog), 0); m < 1.2 {
			t.Errorf("%s: SC alone tops out at %.2f, expected a dramatic improvement", prog, m)
		}
	}
	// Class 1: ear and nasa7 — the combination keeps adding.
	for _, prog := range []string{"ear", "nasa7"} {
		rows := get(prog)
		if m := maxRatio(rows, 3); m <= maxRatio(rows, 0) {
			t.Errorf("%s: SC+BS+PR (%.2f) should beat SC alone (%.2f) somewhere",
				prog, m, maxRatio(rows, 0))
		}
	}
	// All ratios are >= ~1: the improvements never hurt.
	for _, prog := range experiments.Fig6Programs {
		for _, r := range get(prog) {
			for ci, v := range r.Ratio {
				if v < 0.9 {
					t.Errorf("%s %s combo %d: ratio %.2f < 1 (improvement hurt)", prog, r.Config, ci, v)
				}
			}
		}
	}
}

// TestOptimisticTables pins Tables 2-3: optimistic coloring barely
// moves the needle for most programs (entries 1.00) and matters most
// for fpppp.
func TestOptimisticTables(t *testing.T) {
	cfg := callcost.NewConfig(6, 4, 2, 2)
	ones := 0
	progs := []string{"alvinn", "compress", "ear", "li", "tomcatv", "gcc", "sc", "spice"}
	for _, prog := range progs {
		r, err := experiments.OptimisticRatio(env, prog, cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		if r > 0.99 && r < 1.01 {
			ones++
		}
	}
	if ones < len(progs)/2 {
		t.Errorf("optimistic changed most programs (%d/%d unchanged); the paper finds it mostly neutral",
			ones, len(progs))
	}
	// fpppp, static, mid-size: the one place optimistic shines.
	shines := false
	for _, cfg := range []callcost.Config{
		callcost.NewConfig(6, 4, 4, 4), callcost.NewConfig(8, 6, 6, 6), callcost.FullMachine(),
	} {
		r, err := experiments.OptimisticRatio(env, "fpppp", cfg, false)
		if err != nil {
			t.Fatal(err)
		}
		if r > 1.02 {
			shines = true
		}
	}
	if !shines {
		t.Error("optimistic coloring should visibly help fpppp somewhere (the paper's 36% case)")
	}
}

// TestFigure10Shape: improved Chaitin at least matches priority-based
// coloring across the suite, and clearly beats it on the class the
// paper calls out (ear, sc, nasa7).
func TestFigure10Shape(t *testing.T) {
	for _, prog := range []string{"ear", "sc", "nasa7"} {
		rows, err := experiments.PriorityComparison(env, prog, true)
		if err != nil {
			t.Fatal(err)
		}
		beats := false
		for _, r := range rows {
			if r.Improved > r.Priority*1.05 {
				beats = true
			}
			if r.Priority > r.Improved*1.5+0.5 {
				t.Errorf("%s at %s: priority (%.2f) far ahead of improved (%.2f)",
					prog, r.Config, r.Priority, r.Improved)
			}
		}
		if !beats {
			t.Errorf("%s: improved never clearly beats priority-based", prog)
		}
	}
}

// TestFigure11Shape: the CBH model trails improved Chaitin and even
// falls below the BASE model somewhere (ratio < 1), the paper's
// central criticism of CBH.
func TestFigure11Shape(t *testing.T) {
	sawBelowBase := false
	for _, prog := range []string{"ear", "li", "eqntott"} {
		rows, err := experiments.CBHComparison(env, prog, true)
		if err != nil {
			t.Fatal(err)
		}
		trails := false
		for _, r := range rows {
			if r.CBH < r.Improved*0.95 {
				trails = true
			}
			if r.CBH < 0.999 {
				sawBelowBase = true
			}
		}
		if !trails {
			t.Errorf("%s: CBH never trails improved Chaitin", prog)
		}
	}
	if !sawBelowBase {
		t.Error("CBH should fall below the base model somewhere (over-constrained coloring)")
	}
}

// TestTable4Speedups: improved Chaitin is at least as fast as
// optimistic coloring on every Table 4 program at the full machine.
func TestTable4Speedups(t *testing.T) {
	rows, err := experiments.Speedups(env, experiments.Tab4Programs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	positive := 0
	for _, r := range rows {
		if r.SpeedupPercent < -0.5 {
			t.Errorf("%s: improved slower than optimistic by %.1f%%", r.Program, -r.SpeedupPercent)
		}
		if r.SpeedupPercent > 0.5 {
			positive++
		}
	}
	if positive < 3 {
		t.Errorf("only %d programs sped up; the paper reports speedups on all five", positive)
	}
}

// TestAblations: the paper's preferred choices win (or tie) on average.
func TestAblations(t *testing.T) {
	calleeRows, err := experiments.CalleeModelAblation(env)
	if err != nil {
		t.Fatal(err)
	}
	sum, n := 0.0, 0
	for _, r := range calleeRows {
		for _, v := range r.Ratio {
			sum += v
			n++
		}
	}
	if avg := sum / float64(n); avg < 0.98 {
		t.Errorf("shared callee model loses on average (%.3f); the paper finds it never worse", avg)
	}

	// Key strategies: compare aggregate overhead (weighting by
	// magnitude) — per-program ratios on near-zero overheads are noise.
	keyRows, err := experiments.KeyStrategyAblation(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(keyRows) == 0 {
		t.Fatal("no key ablation rows")
	}
	var s1, s2 float64
	for _, r := range keyRows {
		p, err := env.Get(r.Program)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []callcost.Config{callcost.NewConfig(6, 4, 1, 1), callcost.NewConfig(6, 4, 3, 3), callcost.NewConfig(8, 6, 4, 4), callcost.FullMachine()} {
			delta := callcost.ImprovedAll()
			maxk := callcost.ImprovedAll()
			maxk.Key = 1 // core.KeyMax
			od, err := p.Overhead(delta, cfg, p.Dynamic)
			if err != nil {
				t.Fatal(err)
			}
			om, err := p.Overhead(maxk, cfg, p.Dynamic)
			if err != nil {
				t.Fatal(err)
			}
			s2 += od.Total()
			s1 += om.Total()
		}
	}
	if s2 > s1*1.02 {
		t.Errorf("key strategy 2 loses in aggregate: delta=%.0f max=%.0f", s2, s1)
	}

	prioRows, err := experiments.PriorityOrderingAblation(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range prioRows {
		if r.Sorting < 0 || r.Removing < 0 || r.SortUnc < 0 {
			t.Error("negative overhead")
		}
	}
}

// TestOptimisticIntegration pins the paper's §8 finding: incorporating
// optimistic coloring into the improved allocator leaves the results
// almost identical to improved alone under dynamic weights (the
// storage-class spilling undoes optimistic's recoveries).
func TestOptimisticIntegration(t *testing.T) {
	cfg := callcost.NewConfig(8, 6, 4, 4)
	for _, prog := range []string{"ear", "li", "sc", "eqntott", "compress", "tomcatv"} {
		p, err := env.Get(prog)
		if err != nil {
			t.Fatal(err)
		}
		impr, err := p.Overhead(callcost.ImprovedAll(), cfg, p.Dynamic)
		if err != nil {
			t.Fatal(err)
		}
		both, err := p.Overhead(callcost.ImprovedOptimistic(), cfg, p.Dynamic)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := impr.Total()*0.9-1, impr.Total()*1.1+1
		if both.Total() < lo || both.Total() > hi {
			t.Errorf("%s: improved+optimistic %.0f diverges from improved %.0f", prog, both.Total(), impr.Total())
		}
	}
}

// TestEveryExperimentRuns smoke-tests the printing path of each
// experiment.
func TestInterprocSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	rows, err := experiments.InterprocSweep(env, callcost.NewConfig(8, 6, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	improved := 0
	hits := 0
	for _, r := range rows {
		if len(r.Static) != len(experiments.InterprocStrategies) ||
			len(r.Interproc) != len(experiments.InterprocStrategies) {
			t.Fatalf("%s: row has %d/%d entries", r.Program, len(r.Static), len(r.Interproc))
		}
		if r.Interproc[0] < r.Static[0] {
			improved++
		}
		hits += r.SummaryHits
	}
	if improved < 3 {
		t.Errorf("interprocedural costs improved only %d programs, want at least 3", improved)
	}
	if hits == 0 {
		t.Error("no call site ever consumed a callee summary")
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	for _, e := range experiments.All() {
		var sb strings.Builder
		if err := e.Run(env, &sb); err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if len(sb.String()) < 100 {
			t.Errorf("%s produced almost no output", e.ID)
		}
	}
}

// TestUnknownBenchmark covers the error path.
func TestUnknownBenchmark(t *testing.T) {
	if _, err := env.Get("not-a-benchmark"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
	_ = io.Discard
}
