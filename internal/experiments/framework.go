package experiments

import (
	"fmt"
	"io"

	"repro"
	"repro/internal/benchprog"
	"repro/internal/obs"
	"repro/internal/regalloc"
)

// CoalescingRow compares the framework's coalescing modes for one
// program at one configuration: the paper's framework coalesces
// aggressively (Chaitin), and the shuffle component is what coalescing
// exists to remove.
type CoalescingRow struct {
	Program    string
	Config     callcost.Config
	Aggressive callcost.Overhead
	Briggs     callcost.Overhead
	None       callcost.Overhead
}

// CoalescingAblation measures the three coalescing modes under the
// improved allocator, one (program, configuration) cell per worker.
//
// The modes are pipeline edits, not option plumbing: the Briggs
// variant replaces the coalesce pass, the no-coalescing variant drops
// it from the pipeline entirely.
func CoalescingAblation(env *Env) ([]CoalescingRow, error) {
	names := benchprog.Names()
	cfgs := []callcost.Config{callcost.NewConfig(6, 4, 2, 2), callcost.FullMachine()}
	rows := make([]CoalescingRow, len(names)*len(cfgs))
	err := forEachIndexed(len(rows), func(i int) error {
		name, cfg := names[i/len(cfgs)], cfgs[i%len(cfgs)]
		p, err := env.Get(name)
		if err != nil {
			return err
		}
		strat := callcost.ImprovedAll()
		base := callcost.PipelineFor(strat, p.Opts)
		measure := func(pl callcost.PassPipeline) (callcost.Overhead, error) {
			opts := p.Opts
			opts.Pipeline = &pl
			alloc, err := p.Program.AllocateWithOptions(strat, cfg, p.Dynamic, opts)
			if err != nil {
				return callcost.Overhead{}, err
			}
			return alloc.Overhead(p.Dynamic), nil
		}
		a, err := measure(base)
		if err != nil {
			return err
		}
		b, err := measure(base.Replace(obs.PhaseCoalesce, regalloc.CoalescePass(regalloc.BriggsCoalesce)))
		if err != nil {
			return err
		}
		n, err := measure(base.Drop(obs.PhaseCoalesce))
		if err != nil {
			return err
		}
		rows[i] = CoalescingRow{
			Program: name, Config: cfg,
			Aggressive: a, Briggs: b, None: n,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// SpillHeuristicRow compares blocked-spill choice rules under the base
// allocator at a small configuration (where spilling actually happens).
type SpillHeuristicRow struct {
	Program       string
	Config        callcost.Config
	CostOverDeg   float64
	Plain         float64
	CostOverDegSq float64
}

// SpillHeuristicAblation measures the three spill heuristics, one
// program per worker.
func SpillHeuristicAblation(env *Env) ([]SpillHeuristicRow, error) {
	names := benchprog.Names()
	rows := make([]SpillHeuristicRow, len(names))
	err := forEachIndexed(len(names), func(i int) error {
		name := names[i]
		p, err := env.Get(name)
		if err != nil {
			return err
		}
		cfg := callcost.NewConfig(6, 4, 0, 0)
		measure := func(h regalloc.SpillHeuristic) (float64, error) {
			alloc, err := p.Program.AllocateWithOptions(&regalloc.Chaitin{Heuristic: h}, cfg, p.Dynamic, p.Opts)
			if err != nil {
				return 0, err
			}
			return alloc.Overhead(p.Dynamic).Total(), nil
		}
		cd, err := measure(regalloc.CostOverDegree)
		if err != nil {
			return err
		}
		pl, err := measure(regalloc.PlainCost)
		if err != nil {
			return err
		}
		sq, err := measure(regalloc.CostOverDegreeSq)
		if err != nil {
			return err
		}
		rows[i] = SpillHeuristicRow{
			Program: name, Config: cfg,
			CostOverDeg: cd, Plain: pl, CostOverDegSq: sq,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func init() {
	register(&Experiment{
		ID: "ablation-coalesce",
		Title: "framework ablation: aggressive (Chaitin) vs conservative " +
			"(Briggs) vs no coalescing under the improved allocator — " +
			"coalescing removes the shuffle component",
		Run: func(env *Env, w io.Writer) error {
			header(w, "Ablation — coalescing modes")
			rows, err := CoalescingAblation(env)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s %-14s %22s %22s %22s %10s\n",
				"program", "(Ri,Rf,Ei,Ef)", "aggressive(tot/shuf)", "briggs(tot/shuf)", "none(tot/shuf)", "removed")
			for _, r := range rows {
				// removed: the shuffle overhead aggressive coalescing
				// eliminates relative to no coalescing.
				fmt.Fprintf(w, "%-10s %-14s %14.0f /%6.0f %14.0f /%6.0f %14.0f /%6.0f %10.0f\n",
					r.Program, r.Config,
					r.Aggressive.Total(), r.Aggressive.Shuffle,
					r.Briggs.Total(), r.Briggs.Shuffle,
					r.None.Total(), r.None.Shuffle,
					r.None.Sub(r.Aggressive).Shuffle)
			}
			return nil
		},
	})
	register(&Experiment{
		ID: "ablation-spillheur",
		Title: "framework ablation: blocked-spill heuristics (cost/degree " +
			"— Chaitin's — vs plain cost vs cost/degree²) on the base " +
			"allocator at the minimum configuration",
		Run: func(env *Env, w io.Writer) error {
			header(w, "Ablation — spill heuristics at (6,4,0,0)")
			rows, err := SpillHeuristicAblation(env)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s %14s %14s %14s\n", "program", "cost/degree", "cost", "cost/degree2")
			for _, r := range rows {
				fmt.Fprintf(w, "%-10s %14.0f %14.0f %14.0f\n",
					r.Program, r.CostOverDeg, r.Plain, r.CostOverDegSq)
			}
			return nil
		},
	})
}
