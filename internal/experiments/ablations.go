package experiments

import (
	"fmt"
	"io"

	"repro"
	"repro/internal/benchprog"
	"repro/internal/core"
)

// ablationConfigs is a compact pressure range for the ablation tables.
func ablationConfigs() []callcost.Config {
	return []callcost.Config{
		callcost.NewConfig(6, 4, 1, 1),
		callcost.NewConfig(6, 4, 3, 3),
		callcost.NewConfig(8, 6, 4, 4),
		callcost.FullMachine(),
	}
}

// CalleeModelRow compares the two callee-save cost models of §4
// (overhead ratio shared/first-use: > 1.00 means the shared model is
// better, matching the paper's finding that it helps on some programs
// and never hurts).
type CalleeModelRow struct {
	Program string
	// Ratio[i] is firstUse/shared at ablationConfigs()[i] — above 1.00
	// when the shared model wins.
	Ratio []float64
}

// CalleeModelAblation measures §4's first-use vs shared comparison,
// one program per worker.
func CalleeModelAblation(env *Env) ([]CalleeModelRow, error) {
	names := benchprog.Names()
	rows := make([]CalleeModelRow, len(names))
	err := forEachIndexed(len(names), func(i int) error {
		name := names[i]
		p, err := env.Get(name)
		if err != nil {
			return err
		}
		row := CalleeModelRow{Program: name}
		for _, cfg := range ablationConfigs() {
			shared := core.All()
			firstUse := core.All()
			firstUse.CalleeModel = core.FirstUseCost
			so, err := p.Overhead(shared, cfg, p.Dynamic)
			if err != nil {
				return err
			}
			fo, err := p.Overhead(firstUse, cfg, p.Dynamic)
			if err != nil {
				return err
			}
			row.Ratio = append(row.Ratio, callcost.Ratio(fo.Total(), so.Total()))
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// KeyStrategyRow compares the two simplification keys of §5 (ratio
// strategy1/strategy2: above 1.00 when the paper's strategy 2 — the
// penalty delta — wins).
type KeyStrategyRow struct {
	Program string
	Ratio   []float64
}

// KeyStrategyAblation measures §5's key comparison, one program per
// worker.
func KeyStrategyAblation(env *Env) ([]KeyStrategyRow, error) {
	names := benchprog.Names()
	rows := make([]KeyStrategyRow, len(names))
	err := forEachIndexed(len(names), func(i int) error {
		name := names[i]
		p, err := env.Get(name)
		if err != nil {
			return err
		}
		row := KeyStrategyRow{Program: name}
		for _, cfg := range ablationConfigs() {
			delta := core.All()
			maxk := core.All()
			maxk.Key = core.KeyMax
			do, err := p.Overhead(delta, cfg, p.Dynamic)
			if err != nil {
				return err
			}
			mo, err := p.Overhead(maxk, cfg, p.Dynamic)
			if err != nil {
				return err
			}
			row.Ratio = append(row.Ratio, callcost.Ratio(mo.Total(), do.Total()))
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// PriorityOrderingRow compares the three priority-coloring orderings of
// §9.1, reporting each ordering's overhead relative to "sorting" (the
// paper's pick).
type PriorityOrderingRow struct {
	Program  string
	Config   callcost.Config
	Sorting  float64
	Removing float64
	SortUnc  float64
}

// PriorityOrderingAblation measures §9.1, one (program, configuration)
// cell per worker.
func PriorityOrderingAblation(env *Env) ([]PriorityOrderingRow, error) {
	names := benchprog.Names()
	cfgs := ablationConfigs()
	rows := make([]PriorityOrderingRow, len(names)*len(cfgs))
	err := forEachIndexed(len(rows), func(i int) error {
		name, cfg := names[i/len(cfgs)], cfgs[i%len(cfgs)]
		p, err := env.Get(name)
		if err != nil {
			return err
		}
		s, err := p.Overhead(callcost.Priority(callcost.PrioritySorting), cfg, p.Dynamic)
		if err != nil {
			return err
		}
		r, err := p.Overhead(callcost.Priority(callcost.PriorityRemovingUnconstrained), cfg, p.Dynamic)
		if err != nil {
			return err
		}
		su, err := p.Overhead(callcost.Priority(callcost.PrioritySortingUnconstrained), cfg, p.Dynamic)
		if err != nil {
			return err
		}
		rows[i] = PriorityOrderingRow{
			Program:  name,
			Config:   cfg,
			Sorting:  s.Total(),
			Removing: r.Total(),
			SortUnc:  su.Total(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func printRatioTable(w io.Writer, label string, programs []string, ratios func(i int) []float64) {
	fmt.Fprintf(w, "%-10s", "program")
	for _, c := range ablationConfigs() {
		fmt.Fprintf(w, " %13s", c.String())
	}
	fmt.Fprintln(w)
	for i, name := range programs {
		fmt.Fprintf(w, "%-10s", name)
		for _, v := range ratios(i) {
			fmt.Fprintf(w, " %13.2f", v)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "(%s)\n", label)
}

func init() {
	register(&Experiment{
		ID: "ablation-callee",
		Title: "§4 ablation: shared vs first-use callee-save cost model " +
			"(ratio first-use/shared; above 1.00 the shared model wins, " +
			"as the paper reports for some SPEC92 programs)",
		Run: func(env *Env, w io.Writer) error {
			header(w, "Ablation — callee-save cost models (§4)")
			rows, err := CalleeModelAblation(env)
			if err != nil {
				return err
			}
			names := make([]string, len(rows))
			for i, r := range rows {
				names[i] = r.Program
			}
			printRatioTable(w, "first-use/shared overhead ratio, dynamic weights", names,
				func(i int) []float64 { return rows[i].Ratio })
			return nil
		},
	})
	register(&Experiment{
		ID: "ablation-key",
		Title: "§5 ablation: simplification key strategy 1 (max) vs " +
			"strategy 2 (penalty delta); above 1.00 strategy 2 wins, " +
			"matching the paper's argument",
		Run: func(env *Env, w io.Writer) error {
			header(w, "Ablation — benefit-driven simplification keys (§5)")
			rows, err := KeyStrategyAblation(env)
			if err != nil {
				return err
			}
			names := make([]string, len(rows))
			for i, r := range rows {
				names[i] = r.Program
			}
			printRatioTable(w, "strategy1/strategy2 overhead ratio, dynamic weights", names,
				func(i int) []float64 { return rows[i].Ratio })
			return nil
		},
	})
	register(&Experiment{
		ID: "ablation-priority",
		Title: "§9.1 ablation: the three priority-based color orderings " +
			"(absolute overhead; the paper finds them within ~10% with " +
			"sorting best on ear and espresso)",
		Run: func(env *Env, w io.Writer) error {
			header(w, "Ablation — priority-based color orderings (§9.1)")
			rows, err := PriorityOrderingAblation(env)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s %-14s %12s %12s %12s\n",
				"program", "(Ri,Rf,Ei,Ef)", "sorting", "removing", "sort-unc")
			for _, r := range rows {
				fmt.Fprintf(w, "%-10s %-14s %12.0f %12.0f %12.0f\n",
					r.Program, r.Config, r.Sorting, r.Removing, r.SortUnc)
			}
			return nil
		},
	})
}
