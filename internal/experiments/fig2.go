package experiments

import (
	"fmt"
	"io"

	"repro"
)

// Fig2Row is one register configuration's cost decomposition.
type Fig2Row struct {
	Config callcost.Config
	Cost   callcost.Overhead
}

// CostDecomposition runs the Figure 2/Figure 7 measurement: the
// overhead decomposition of one strategy across the register sweep
// under dynamic weights.
func CostDecomposition(env *Env, program string, strat callcost.Strategy) ([]Fig2Row, error) {
	p, err := env.Get(program)
	if err != nil {
		return nil, err
	}
	cfgs := sweep()
	rows := make([]Fig2Row, len(cfgs))
	err = forEachIndexed(len(cfgs), func(i int) error {
		o, err := p.Overhead(strat, cfgs[i], p.Dynamic)
		if err != nil {
			return err
		}
		rows[i] = Fig2Row{Config: cfgs[i], Cost: o}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func printDecomposition(w io.Writer, program string, rows []Fig2Row) {
	fmt.Fprintf(w, "\n%s (dynamic weights; overhead memory operations)\n", program)
	fmt.Fprintf(w, "%-14s %12s %12s %12s %12s %12s\n",
		"(Ri,Rf,Ei,Ef)", "spill", "caller-save", "callee-save", "shuffle", "total")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %12.0f %12.0f %12.0f %12.0f %12.0f\n",
			r.Config, r.Cost.Spill, r.Cost.Caller, r.Cost.Callee, r.Cost.Shuffle, r.Cost.Total())
	}
}

func init() {
	register(&Experiment{
		ID: "fig2",
		Title: "Figure 2: register-allocation cost of the base Chaitin " +
			"allocator vs register configuration (eqntott, ear) — spill " +
			"cost vanishes with more registers while call cost persists " +
			"and can even grow",
		Run: func(env *Env, w io.Writer) error {
			header(w, "Figure 2 — base Chaitin cost decomposition")
			for _, prog := range []string{"eqntott", "ear"} {
				rows, err := CostDecomposition(env, prog, callcost.Chaitin())
				if err != nil {
					return err
				}
				printDecomposition(w, prog, rows)
			}
			return nil
		},
	})

	register(&Experiment{
		ID: "fig7",
		Title: "Figure 7: register overhead of improved Chaitin-style " +
			"allocation (SC+BS+PR) for ear and eqntott — the counterpart " +
			"to Figure 2, tens of times less overhead",
		Run: func(env *Env, w io.Writer) error {
			header(w, "Figure 7 — improved Chaitin (SC+BS+PR) cost decomposition")
			for _, prog := range []string{"eqntott", "ear"} {
				rows, err := CostDecomposition(env, prog, callcost.ImprovedAll())
				if err != nil {
					return err
				}
				printDecomposition(w, prog, rows)
				base, err := CostDecomposition(env, prog, callcost.Chaitin())
				if err != nil {
					return err
				}
				// Headline ratio at the largest configuration.
				last := len(rows) - 1
				fmt.Fprintf(w, "base/improved at %s: %s\n",
					rows[last].Config, ratioCell(base[last].Cost.Total(), rows[last].Cost.Total()))
			}
			return nil
		},
	})
}
