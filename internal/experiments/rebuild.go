package experiments

import (
	"fmt"
	"io"
	"time"

	"repro"
	"repro/internal/benchprog"
	"repro/internal/obs"
	"repro/internal/regalloc"
)

// RebuildRow compares the paper's incremental graph reconstruction
// against rebuilding the interference graph from scratch each round —
// the compile-time ablation — for one program at the minimum
// configuration (where spilling forces multi-round allocations, so the
// build pass actually re-runs).
type RebuildRow struct {
	Program string
	Config  callcost.Config
	// Reconstruct and Rebuild are the wall times of a whole-program
	// allocation under each build-pass variant.
	Reconstruct time.Duration
	Rebuild     time.Duration
	// Rounds is the total round count across functions (identical for
	// both variants by construction).
	Rounds int
	// Identical reports that the two variants produced byte-identical
	// assembly — reconstruction is a pure compile-time optimization.
	Identical bool
}

// RebuildAblation measures the graph-reconstruction ablation, one
// program per worker. The ablation is a pipeline edit: the build-graph
// pass is replaced by its rebuild-from-scratch variant; everything
// downstream is untouched.
func RebuildAblation(env *Env) ([]RebuildRow, error) {
	names := benchprog.Names()
	rows := make([]RebuildRow, len(names))
	err := forEachIndexed(len(names), func(i int) error {
		name := names[i]
		p, err := env.Get(name)
		if err != nil {
			return err
		}
		cfg := callcost.NewConfig(6, 4, 0, 0)
		strat := callcost.ImprovedAll()
		base := callcost.PipelineFor(strat, p.Opts)
		measure := func(pl callcost.PassPipeline) (*callcost.Allocation, time.Duration, error) {
			opts := p.Opts
			opts.Pipeline = &pl
			// The prep cache would serve both variants the same shared
			// round-0 graphs; disable it so the timing covers the full
			// build work of each variant.
			opts.NoPrepCache = true
			start := time.Now()
			alloc, err := p.Program.AllocateWithOptions(strat, cfg, p.Dynamic, opts)
			return alloc, time.Since(start), err
		}
		recon, reconDur, err := measure(base)
		if err != nil {
			return err
		}
		rebuilt, rebuildDur, err := measure(base.Replace(obs.PhaseBuild, regalloc.BuildGraphPass(true)))
		if err != nil {
			return err
		}
		rounds := 0
		for _, plan := range recon.Plans {
			rounds += plan.Alloc.Rounds
		}
		rows[i] = RebuildRow{
			Program: name, Config: cfg,
			Reconstruct: reconDur, Rebuild: rebuildDur,
			Rounds:    rounds,
			Identical: recon.Assembly() == rebuilt.Assembly(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func init() {
	register(&Experiment{
		ID: "ablation-rebuild",
		Title: "framework ablation: incremental graph reconstruction vs " +
			"rebuild-from-scratch each round (a build-pass pipeline swap) — " +
			"identical output, different compile time",
		Run: func(env *Env, w io.Writer) error {
			header(w, "Ablation — graph reconstruction vs rebuild at (6,4,0,0)")
			rows, err := RebuildAblation(env)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s %8s %14s %14s %8s %10s\n",
				"program", "rounds", "reconstruct", "rebuild", "speedup", "identical")
			for _, r := range rows {
				speedup := 0.0
				if r.Reconstruct > 0 {
					speedup = float64(r.Rebuild) / float64(r.Reconstruct)
				}
				fmt.Fprintf(w, "%-10s %8d %14s %14s %7.2fx %10t\n",
					r.Program, r.Rounds, r.Reconstruct.Round(time.Microsecond),
					r.Rebuild.Round(time.Microsecond), speedup, r.Identical)
				if !r.Identical {
					return fmt.Errorf("experiments: %s: rebuild variant diverged from reconstruction", r.Program)
				}
			}
			return nil
		},
	})
}
