package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forEachIndexed runs f(0)..f(n-1) on a bounded worker pool (at most
// GOMAXPROCS goroutines) and returns the error of the lowest-indexed
// failing call, or nil.
//
// Determinism contract: f writes its result into an index-addressed
// slot of a caller-owned slice, never appends to shared state, so the
// collected rows are identical to a sequential loop regardless of
// scheduling — only wall time changes. Experiments print strictly after
// forEachIndexed returns.
func forEachIndexed(n int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
