package experiments

import "repro/internal/par"

// forEachIndexed runs f(0)..f(n-1) on a GOMAXPROCS-bounded worker pool
// and returns the error of the lowest-indexed failing call, or nil.
// See par.ForEachIndexed for the determinism contract: results land in
// index-addressed slots, experiments print strictly after it returns.
func forEachIndexed(n int, f func(i int) error) error {
	return par.ForEachIndexed(n, 0, f)
}
