package experiments

import (
	"fmt"
	"io"

	"repro"
)

// Fig11Row compares improved Chaitin and the CBH model against the
// base allocator at one configuration.
type Fig11Row struct {
	Config   callcost.Config
	Improved float64
	CBH      float64
}

// CBHComparison computes Figure 11 for one program under one weight
// model.
func CBHComparison(env *Env, program string, dynamic bool) ([]Fig11Row, error) {
	p, err := env.Get(program)
	if err != nil {
		return nil, err
	}
	pf := p.Freq(dynamic)
	var rows []Fig11Row
	for _, cfg := range sweep() {
		base, err := p.Overhead(callcost.Chaitin(), cfg, pf)
		if err != nil {
			return nil, err
		}
		impr, err := p.Overhead(callcost.ImprovedAll(), cfg, pf)
		if err != nil {
			return nil, err
		}
		cbh, err := p.Overhead(callcost.CBH(), cfg, pf)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig11Row{
			Config:   cfg,
			Improved: callcost.Ratio(base.Total(), impr.Total()),
			CBH:      callcost.Ratio(base.Total(), cbh.Total()),
		})
	}
	return rows, nil
}

// Fig11Programs are shown in the paper's Figure 11.
var Fig11Programs = []string{"alvinn", "ear", "li", "matrix300", "nasa7", "gcc", "fpppp", "tomcatv"}

func init() {
	register(&Experiment{
		ID: "fig11",
		Title: "Figure 11: improved Chaitin-style versus the CBH cost " +
			"model (both over base) — CBH forbids caller-save registers " +
			"to ranges crossing calls, starving them until enough " +
			"callee-save registers exist",
		Run: func(env *Env, w io.Writer) error {
			header(w, "Figure 11 — improved Chaitin vs CBH (ratios over base Chaitin)")
			for _, prog := range Fig11Programs {
				fmt.Fprintf(w, "\n%s\n%-14s %18s %18s %18s %18s\n", prog,
					"(Ri,Rf,Ei,Ef)", "improved(static)", "cbh(static)",
					"improved(dyn)", "cbh(dyn)")
				stat, err := CBHComparison(env, prog, false)
				if err != nil {
					return err
				}
				dyn, err := CBHComparison(env, prog, true)
				if err != nil {
					return err
				}
				for i := range stat {
					fmt.Fprintf(w, "%-14s %18.2f %18.2f %18.2f %18.2f\n",
						stat[i].Config, stat[i].Improved, stat[i].CBH,
						dyn[i].Improved, dyn[i].CBH)
				}
			}
			return nil
		},
	})
}
