package experiments

import (
	"fmt"
	"io"

	"repro"
)

// Fig11Row compares improved Chaitin and the CBH model against the
// base allocator at one configuration.
type Fig11Row struct {
	Config   callcost.Config
	Improved float64
	CBH      float64
}

// CBHComparison computes Figure 11 for one program under one weight
// model.
func CBHComparison(env *Env, program string, dynamic bool) ([]Fig11Row, error) {
	p, err := env.Get(program)
	if err != nil {
		return nil, err
	}
	pf := p.Freq(dynamic)
	cfgs := sweep()
	rows := make([]Fig11Row, len(cfgs))
	err = forEachIndexed(len(cfgs), func(i int) error {
		cfg := cfgs[i]
		base, err := p.Overhead(callcost.Chaitin(), cfg, pf)
		if err != nil {
			return err
		}
		impr, err := p.Overhead(callcost.ImprovedAll(), cfg, pf)
		if err != nil {
			return err
		}
		cbh, err := p.Overhead(callcost.CBH(), cfg, pf)
		if err != nil {
			return err
		}
		rows[i] = Fig11Row{
			Config:   cfg,
			Improved: callcost.Ratio(base.Total(), impr.Total()),
			CBH:      callcost.Ratio(base.Total(), cbh.Total()),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig11Programs are shown in the paper's Figure 11.
var Fig11Programs = []string{"alvinn", "ear", "li", "matrix300", "nasa7", "gcc", "fpppp", "tomcatv"}

func init() {
	register(&Experiment{
		ID: "fig11",
		Title: "Figure 11: improved Chaitin-style versus the CBH cost " +
			"model (both over base) — CBH forbids caller-save registers " +
			"to ranges crossing calls, starving them until enough " +
			"callee-save registers exist",
		Run: func(env *Env, w io.Writer) error {
			header(w, "Figure 11 — improved Chaitin vs CBH (ratios over base Chaitin)")
			// One work item per (program, weight model); print in order.
			stats := make([][]Fig11Row, len(Fig11Programs))
			dyns := make([][]Fig11Row, len(Fig11Programs))
			err := forEachIndexed(2*len(Fig11Programs), func(i int) error {
				rows, err := CBHComparison(env, Fig11Programs[i/2], i%2 == 1)
				if i%2 == 0 {
					stats[i/2] = rows
				} else {
					dyns[i/2] = rows
				}
				return err
			})
			if err != nil {
				return err
			}
			for pi, prog := range Fig11Programs {
				fmt.Fprintf(w, "\n%s\n%-14s %18s %18s %18s %18s\n", prog,
					"(Ri,Rf,Ei,Ef)", "improved(static)", "cbh(static)",
					"improved(dyn)", "cbh(dyn)")
				stat, dyn := stats[pi], dyns[pi]
				for i := range stat {
					fmt.Fprintf(w, "%-14s %18.2f %18.2f %18.2f %18.2f\n",
						stat[i].Config, stat[i].Improved, stat[i].CBH,
						dyn[i].Improved, dyn[i].CBH)
				}
			}
			return nil
		},
	})
}
