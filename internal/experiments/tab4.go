package experiments

import (
	"fmt"
	"io"

	"repro"
)

// Tab4Row is the execution-time speedup of improved Chaitin over
// optimistic coloring with the full register file, measured in
// machine-interpreter cycles (the paper's Table 4 measured wall time on
// a DECstation 5000).
type Tab4Row struct {
	Program          string
	OptimisticCycles float64
	ImprovedCycles   float64
	SpeedupPercent   float64
}

// Tab4Programs are the programs of the paper's Table 4.
var Tab4Programs = []string{"compress", "eqntott", "li", "sc", "spice"}

// Speedups measures Table 4, one program per worker.
func Speedups(env *Env, programs []string) ([]Tab4Row, error) {
	rows := make([]Tab4Row, len(programs))
	err := forEachIndexed(len(programs), func(i int) error {
		name := programs[i]
		p, err := env.Get(name)
		if err != nil {
			return err
		}
		cfg := callcost.FullMachine()
		cycles := func(strat callcost.Strategy) (float64, error) {
			alloc, err := p.Program.AllocateWithOptions(strat, cfg, p.Dynamic, p.Opts)
			if err != nil {
				return 0, err
			}
			res, err := alloc.Execute()
			if err != nil {
				return 0, err
			}
			if res.RetInt != p.RefInt {
				return 0, fmt.Errorf("%s: %s computed %d, reference %d",
					name, strat.Name(), res.RetInt, p.RefInt)
			}
			return res.Counts.Cycles, nil
		}
		opt, err := cycles(callcost.Optimistic())
		if err != nil {
			return err
		}
		impr, err := cycles(callcost.ImprovedAll())
		if err != nil {
			return err
		}
		rows[i] = Tab4Row{
			Program:          name,
			OptimisticCycles: opt,
			ImprovedCycles:   impr,
			SpeedupPercent:   (opt - impr) / impr * 100,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func init() {
	register(&Experiment{
		ID: "tab4",
		Title: "Table 4: execution-time speedup of the three enhancements " +
			"over optimistic coloring with all registers (26 int, 16 " +
			"float) — the paper reports 1.0%-4.4% on a DECstation 5000",
		Run: func(env *Env, w io.Writer) error {
			header(w, "Table 4 — execution-time speedup, full register file")
			rows, err := Speedups(env, Tab4Programs)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s %16s %16s %10s\n", "program", "optimistic(cyc)", "improved(cyc)", "speedup%")
			for _, r := range rows {
				fmt.Fprintf(w, "%-10s %16.0f %16.0f %9.1f%%\n",
					r.Program, r.OptimisticCycles, r.ImprovedCycles, r.SpeedupPercent)
			}
			return nil
		},
	})
}
