// Package experiments regenerates every table and figure of the
// paper's evaluation (§7-§11) over the SPEC92 stand-in suite, plus the
// ablations DESIGN.md calls out. Each experiment prints the same rows
// or series the paper reports; EXPERIMENTS.md records how the measured
// shapes compare to the published ones.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro"
	"repro/internal/benchprog"
	"repro/internal/freq"
	"repro/internal/interp"
	"repro/internal/machine"
)

// Env caches compiled benchmark programs and their profiles; compiling
// and profiling once is what makes the full experiment sweep fast.
// Get is safe for concurrent use and single-flights per program, so
// parallel experiments compiling distinct benchmarks proceed
// concurrently while duplicate requests share one compilation.
type Env struct {
	mu       sync.Mutex
	cache    map[string]*envEntry
	tracer   callcost.Tracer
	parallel int  // per-function allocation workers (AllocOptions.Parallel)
	noPrep   bool // disable the per-program round-0 prep cache
}

// envEntry single-flights the compile+profile of one benchmark.
type envEntry struct {
	once sync.Once
	p    *Prepared
	err  error
}

// Prepared is one benchmark ready for allocation experiments.
type Prepared struct {
	Name    string
	Program *callcost.Program
	// Dynamic is the profile-based frequency table; Static the
	// estimated one.
	Dynamic *freq.ProgramFreq
	Static  *freq.ProgramFreq
	// RefInt is the reference result, for optional re-verification.
	RefInt int64
	// Steps is the profiled instruction count.
	Steps int64
	// Opts is the framework configuration every experiment over this
	// program should allocate with (default options plus the
	// environment's tracer).
	Opts callcost.AllocOptions
}

// NewEnv returns an empty environment.
func NewEnv() *Env { return &Env{cache: make(map[string]*envEntry)} }

// SetTracer attaches an event sink (usually a stats sink) to every
// allocation the environment's benchmarks run, so experiments report
// per-phase timings alongside their tables. Call before the first Get.
func (e *Env) SetTracer(tr callcost.Tracer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tracer = tr
	for _, ent := range e.cache {
		if ent.p != nil {
			ent.p.Opts.Tracer = tr
		}
	}
}

// SetParallel bounds the per-function allocation worker pool of every
// allocation the environment's benchmarks run (0 = GOMAXPROCS, 1 =
// sequential). Output is byte-identical either way.
func (e *Env) SetParallel(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.parallel = n
	for _, ent := range e.cache {
		if ent.p != nil {
			ent.p.Opts.Parallel = n
		}
	}
}

// SetPrepCache toggles the per-program sharing of round-0 prep
// artifacts (on by default); off exists for A/B timing runs.
func (e *Env) SetPrepCache(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.noPrep = !on
	for _, ent := range e.cache {
		if ent.p != nil {
			ent.p.Opts.NoPrepCache = !on
		}
	}
}

// Opts returns the framework options experiments should allocate with:
// the defaults plus the environment's tracer and parallel/prep-cache
// settings.
func (e *Env) Opts() callcost.AllocOptions {
	e.mu.Lock()
	defer e.mu.Unlock()
	opts := callcost.DefaultAllocOptions()
	opts.Tracer = e.tracer
	opts.Parallel = e.parallel
	opts.NoPrepCache = e.noPrep
	return opts
}

// Get compiles and profiles the named benchmark (cached). Concurrent
// Gets of the same name share one compilation; Gets of distinct names
// run concurrently — the mutex guards only the cache map, not the work.
func (e *Env) Get(name string) (*Prepared, error) {
	e.mu.Lock()
	ent, ok := e.cache[name]
	if !ok {
		ent = &envEntry{}
		e.cache[name] = ent
	}
	tracer, parallel, noPrep := e.tracer, e.parallel, e.noPrep
	e.mu.Unlock()
	ent.once.Do(func() { ent.p, ent.err = prepare(name, tracer, parallel, noPrep) })
	return ent.p, ent.err
}

// prepare compiles and profiles one benchmark.
func prepare(name string, tracer callcost.Tracer, parallel int, noPrep bool) (*Prepared, error) {
	bp := benchprog.ByName(name)
	if bp == nil {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
	}
	prog, err := callcost.Compile(bp.Source)
	if err != nil {
		return nil, fmt.Errorf("experiments: compile %s: %w", name, err)
	}
	res, err := interp.Run(prog.IR, interp.Options{Profile: true, MaxSteps: 50_000_000})
	if err != nil {
		return nil, fmt.Errorf("experiments: profile %s: %w", name, err)
	}
	opts := callcost.DefaultAllocOptions()
	opts.Tracer = tracer
	opts.Parallel = parallel
	opts.NoPrepCache = noPrep
	return &Prepared{
		Name:    name,
		Program: prog,
		Dynamic: freq.FromProfile(prog.IR, res.Profile),
		Static:  prog.StaticFreq(),
		RefInt:  res.RetInt,
		Steps:   res.Steps,
		Opts:    opts,
	}, nil
}

// Overhead allocates prog with strat at cfg under weights pf and
// returns the analytic overhead decomposition under the same weights.
func (p *Prepared) Overhead(strat callcost.Strategy, cfg callcost.Config, pf *freq.ProgramFreq) (callcost.Overhead, error) {
	alloc, err := p.Program.AllocateWithOptions(strat, cfg, pf, p.Opts)
	if err != nil {
		return callcost.Overhead{}, fmt.Errorf("%s: %s at %s: %w", p.Name, strat.Name(), cfg, err)
	}
	return alloc.Overhead(pf), nil
}

// Freq selects the dynamic or static table.
func (p *Prepared) Freq(dynamic bool) *freq.ProgramFreq {
	if dynamic {
		return p.Dynamic
	}
	return p.Static
}

// ---------------------------------------------------------------------
// Registry

// Experiment is one regenerable table or figure.
type Experiment struct {
	// ID is the flag value (e.g. "fig2", "tab3").
	ID string
	// Title describes what the paper shows.
	Title string
	// Run executes the experiment, printing its table to w.
	Run func(env *Env, w io.Writer) error
}

var registry []*Experiment

func register(e *Experiment) { registry = append(registry, e) }

// All returns the experiments in registration order.
func All() []*Experiment {
	out := append([]*Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given ID, or nil.
func ByID(id string) *Experiment {
	for _, e := range registry {
		if e.ID == id {
			return e
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Shared formatting and sweeps

// sweep is the standard register sweep of the figures.
func sweep() []callcost.Config { return machine.Sweep() }

// header prints the experiment banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "%s\n", title)
	for i := 0; i < len(title); i++ {
		fmt.Fprint(w, "=")
	}
	fmt.Fprintln(w)
}

// ratioCell formats a base/variant overhead ratio like the paper's
// tables (two decimals).
func ratioCell(base, variant float64) string {
	return fmt.Sprintf("%6.2f", callcost.Ratio(base, variant))
}
