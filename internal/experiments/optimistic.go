package experiments

import (
	"fmt"
	"io"

	"repro"
	"repro/internal/benchprog"
)

// OptimisticRatio computes Base-Chaitin/Optimistic for one program at
// one configuration (the entries of Tables 2 and 3: shaded below 1.00
// when optimistic coloring HURTS once call cost is counted).
func OptimisticRatio(env *Env, program string, cfg callcost.Config, dynamic bool) (float64, error) {
	p, err := env.Get(program)
	if err != nil {
		return 0, err
	}
	pf := p.Freq(dynamic)
	base, err := p.Overhead(callcost.Chaitin(), cfg, pf)
	if err != nil {
		return 0, err
	}
	opt, err := p.Overhead(callcost.Optimistic(), cfg, pf)
	if err != nil {
		return 0, err
	}
	return callcost.Ratio(base.Total(), opt.Total()), nil
}

// tab23Configs is the (smaller) configuration subset the paper's
// tables print as columns.
func tab23Configs() []callcost.Config {
	return []callcost.Config{
		callcost.NewConfig(6, 4, 0, 0),
		callcost.NewConfig(6, 4, 2, 2),
		callcost.NewConfig(6, 4, 4, 4),
		callcost.NewConfig(8, 6, 2, 2),
		callcost.NewConfig(8, 6, 6, 6),
		callcost.NewConfig(10, 8, 4, 4),
		callcost.FullMachine(),
	}
}

func runOptimisticTable(env *Env, w io.Writer, dynamic bool) error {
	kind := "static"
	if dynamic {
		kind = "dynamic"
	}
	cfgs := tab23Configs()
	names := benchprog.Names()
	// Compute the whole program × configuration grid in parallel, then
	// print; one work item per cell keeps the pool busy to the end.
	ratios := make([]float64, len(names)*len(cfgs))
	err := forEachIndexed(len(ratios), func(i int) error {
		r, err := OptimisticRatio(env, names[i/len(cfgs)], cfgs[i%len(cfgs)], dynamic)
		ratios[i] = r
		return err
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nBase-Chaitin/Optimistic overhead ratio (%s information)\n", kind)
	fmt.Fprintf(w, "entries < 1.00: optimistic coloring INCREASED the overhead\n\n")
	fmt.Fprintf(w, "%-10s", "program")
	for _, c := range cfgs {
		fmt.Fprintf(w, " %13s", c.String())
	}
	fmt.Fprintln(w)
	for ni, name := range names {
		fmt.Fprintf(w, "%-10s", name)
		for ci := range cfgs {
			fmt.Fprintf(w, " %13.2f", ratios[ni*len(cfgs)+ci])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig9Row is one configuration of Figure 9 (fpppp, static): the
// improvement ratio of optimistic, improved, and their integration over
// base Chaitin.
type Fig9Row struct {
	Config     callcost.Config
	Optimistic float64
	Improved   float64
	Both       float64
}

// Fig9 computes the fpppp static comparison.
func Fig9(env *Env) ([]Fig9Row, error) {
	p, err := env.Get("fpppp")
	if err != nil {
		return nil, err
	}
	pf := p.Static
	cfgs := sweep()
	rows := make([]Fig9Row, len(cfgs))
	err = forEachIndexed(len(cfgs), func(i int) error {
		cfg := cfgs[i]
		base, err := p.Overhead(callcost.Chaitin(), cfg, pf)
		if err != nil {
			return err
		}
		opt, err := p.Overhead(callcost.Optimistic(), cfg, pf)
		if err != nil {
			return err
		}
		impr, err := p.Overhead(callcost.ImprovedAll(), cfg, pf)
		if err != nil {
			return err
		}
		both, err := p.Overhead(callcost.ImprovedOptimistic(), cfg, pf)
		if err != nil {
			return err
		}
		rows[i] = Fig9Row{
			Config:     cfg,
			Optimistic: callcost.Ratio(base.Total(), opt.Total()),
			Improved:   callcost.Ratio(base.Total(), impr.Total()),
			Both:       callcost.Ratio(base.Total(), both.Total()),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func init() {
	register(&Experiment{
		ID: "tab2",
		Title: "Table 2: optimistic coloring versus base Chaitin using " +
			"static execution estimates — optimistic rarely helps and " +
			"often hurts once call cost is part of the overhead",
		Run: func(env *Env, w io.Writer) error {
			header(w, "Table 2 — optimistic vs Chaitin (static)")
			return runOptimisticTable(env, w, false)
		},
	})
	register(&Experiment{
		ID: "tab3",
		Title: "Table 3: optimistic coloring versus base Chaitin using " +
			"profile (dynamic) information",
		Run: func(env *Env, w io.Writer) error {
			header(w, "Table 3 — optimistic vs Chaitin (dynamic)")
			return runOptimisticTable(env, w, true)
		},
	})
	register(&Experiment{
		ID: "fig9",
		Title: "Figure 9: fpppp (static) — optimistic coloring wins at " +
			"few registers, improved Chaitin wins at many, and their " +
			"integration follows the upper envelope",
		Run: func(env *Env, w io.Writer) error {
			header(w, "Figure 9 — fpppp, static information (ratios over base Chaitin)")
			rows, err := Fig9(env)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-14s %10s %10s %16s\n", "(Ri,Rf,Ei,Ef)", "optimistic", "improved", "improved+optim.")
			for _, r := range rows {
				fmt.Fprintf(w, "%-14s %10.2f %10.2f %16.2f\n", r.Config, r.Optimistic, r.Improved, r.Both)
			}
			return nil
		},
	})
}
