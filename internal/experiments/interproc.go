package experiments

import (
	"fmt"
	"io"

	"repro"
	"repro/internal/benchprog"
)

// InterprocStrategies are the allocator families the interprocedural
// comparison sweeps: the paper's improved allocator plus the two
// graph-free tiers, which consume the same refined call-site factors
// through their own cost analyses.
var InterprocStrategies = []struct {
	Label string
	Strat func() callcost.Strategy
}{
	{"improved", func() callcost.Strategy { return callcost.ImprovedAll() }},
	{"linscan", callcost.LinearScan},
	{"hybrid", callcost.HybridTiered},
}

// InterprocRow compares, for one program, the static call-site estimate
// (every crossed call charges the paper's flat 2·freq) against the
// whole-program batch allocation with interprocedural callee-save
// costs, using measured overhead from actually executing both
// allocations.
type InterprocRow struct {
	Program string
	// Static[i] and Interproc[i] are the measured overhead totals for
	// InterprocStrategies[i].
	Static    []float64
	Interproc []float64
	// SummaryHits and SummaryMisses are the call-site summary counts of
	// the improved-strategy batch run; SCCs and Waves its schedule shape.
	SummaryHits, SummaryMisses int
	SCCs, Waves                int
}

// InterprocSweep computes the comparison for every benchmark at cfg,
// one program per worker. Both allocations of every pair are executed
// and verified against the reference result before being measured.
func InterprocSweep(env *Env, cfg callcost.Config) ([]InterprocRow, error) {
	names := benchprog.Names()
	rows := make([]InterprocRow, len(names))
	err := forEachIndexed(len(names), func(i int) error {
		name := names[i]
		p, err := env.Get(name)
		if err != nil {
			return err
		}
		row := InterprocRow{Program: name}
		for si, s := range InterprocStrategies {
			strat := s.Strat()
			base, err := p.Program.AllocateWithOptions(strat, cfg, p.Dynamic, p.Opts)
			if err != nil {
				return fmt.Errorf("%s: %s static: %w", name, s.Label, err)
			}
			inter, bs, err := p.Program.AllocateProgramBatch(strat, cfg, p.Dynamic, p.Opts,
				callcost.BatchOptions{Interproc: true})
			if err != nil {
				return fmt.Errorf("%s: %s interproc: %w", name, s.Label, err)
			}
			baseOv, baseRes, err := base.MeasuredOverhead()
			if err != nil {
				return fmt.Errorf("%s: %s measure static: %w", name, s.Label, err)
			}
			interOv, interRes, err := inter.MeasuredOverhead()
			if err != nil {
				return fmt.Errorf("%s: %s measure interproc: %w", name, s.Label, err)
			}
			if baseRes.RetInt != p.RefInt || interRes.RetInt != p.RefInt {
				return fmt.Errorf("%s: %s returned %d/%d, reference %d",
					name, s.Label, baseRes.RetInt, interRes.RetInt, p.RefInt)
			}
			row.Static = append(row.Static, baseOv.Total())
			row.Interproc = append(row.Interproc, interOv.Total())
			if si == 0 {
				row.SummaryHits, row.SummaryMisses = bs.SummaryHits, bs.SummaryMisses
				row.SCCs, row.Waves = bs.SCCs, bs.Waves
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// interprocDelta formats the percentage reduction of v relative to
// base (0 when base is 0).
func interprocDelta(base, v float64) string {
	if base == 0 {
		return "   -  "
	}
	return fmt.Sprintf("%5.1f%%", 100*(base-v)/base)
}

func init() {
	register(&Experiment{
		ID: "interproc",
		Title: "Interprocedural callee-save costs: measured overhead of the " +
			"whole-program batch allocation (callees first, callers consume " +
			"realized clobber summaries) against the paper's static per-site " +
			"estimate, for improved, linear-scan, and hybrid allocators",
		Run: func(env *Env, w io.Writer) error {
			cfg := callcost.NewConfig(8, 6, 4, 4)
			header(w, fmt.Sprintf("Interprocedural vs static call-site costs at %s (measured overhead, dynamic weights)", cfg))
			rows, err := InterprocSweep(env, cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s", "program")
			for _, s := range InterprocStrategies {
				fmt.Fprintf(w, " %10s %10s %6s", s.Label, "interproc", "Δ")
			}
			fmt.Fprintf(w, "  %11s %5s %5s\n", "hits/sites", "sccs", "waves")
			improved := 0
			for _, r := range rows {
				fmt.Fprintf(w, "%-10s", r.Program)
				for i := range InterprocStrategies {
					fmt.Fprintf(w, " %10.0f %10.0f %s", r.Static[i], r.Interproc[i],
						interprocDelta(r.Static[i], r.Interproc[i]))
				}
				sites := r.SummaryHits + r.SummaryMisses
				fmt.Fprintf(w, "  %5d/%-5d %5d %5d\n", r.SummaryHits, sites, r.SCCs, r.Waves)
				if r.Interproc[0] < r.Static[0] {
					improved++
				}
			}
			fmt.Fprintf(w, "\nimproved strategy: interprocedural costs reduced measured overhead on %d of %d programs\n",
				improved, len(rows))
			return nil
		},
	})
}
