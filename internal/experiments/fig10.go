package experiments

import (
	"fmt"
	"io"

	"repro"
)

// Fig10Row compares improved Chaitin and priority-based coloring
// against the base allocator at one configuration.
type Fig10Row struct {
	Config   callcost.Config
	Improved float64
	Priority float64
}

// PriorityComparison computes Figure 10 for one program under one
// weight model; the priority allocator uses the paper's chosen
// "sorting" ordering.
func PriorityComparison(env *Env, program string, dynamic bool) ([]Fig10Row, error) {
	p, err := env.Get(program)
	if err != nil {
		return nil, err
	}
	pf := p.Freq(dynamic)
	cfgs := sweep()
	rows := make([]Fig10Row, len(cfgs))
	err = forEachIndexed(len(cfgs), func(i int) error {
		cfg := cfgs[i]
		base, err := p.Overhead(callcost.Chaitin(), cfg, pf)
		if err != nil {
			return err
		}
		impr, err := p.Overhead(callcost.ImprovedAll(), cfg, pf)
		if err != nil {
			return err
		}
		prio, err := p.Overhead(callcost.Priority(callcost.PrioritySorting), cfg, pf)
		if err != nil {
			return err
		}
		rows[i] = Fig10Row{
			Config:   cfg,
			Improved: callcost.Ratio(base.Total(), impr.Total()),
			Priority: callcost.Ratio(base.Total(), prio.Total()),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig10Programs are shown in the paper's Figure 10; the rest of the
// suite is printed too for completeness.
var Fig10Programs = []string{"alvinn", "nasa7", "fpppp", "espresso", "gcc", "ear", "tomcatv", "li"}

func init() {
	register(&Experiment{
		ID: "fig10",
		Title: "Figure 10: priority-based versus improved Chaitin-style " +
			"coloring (both over base), static and dynamic — three " +
			"outcome classes: tie, improved wins, no clear winner",
		Run: func(env *Env, w io.Writer) error {
			header(w, "Figure 10 — improved Chaitin vs priority-based (ratios over base Chaitin)")
			// One work item per (program, weight model); print in order.
			stats := make([][]Fig10Row, len(Fig10Programs))
			dyns := make([][]Fig10Row, len(Fig10Programs))
			err := forEachIndexed(2*len(Fig10Programs), func(i int) error {
				rows, err := PriorityComparison(env, Fig10Programs[i/2], i%2 == 1)
				if i%2 == 0 {
					stats[i/2] = rows
				} else {
					dyns[i/2] = rows
				}
				return err
			})
			if err != nil {
				return err
			}
			for pi, prog := range Fig10Programs {
				fmt.Fprintf(w, "\n%s\n%-14s %18s %18s %18s %18s\n", prog,
					"(Ri,Rf,Ei,Ef)", "improved(static)", "priority(static)",
					"improved(dyn)", "priority(dyn)")
				stat, dyn := stats[pi], dyns[pi]
				for i := range stat {
					fmt.Fprintf(w, "%-14s %18.2f %18.2f %18.2f %18.2f\n",
						stat[i].Config, stat[i].Improved, stat[i].Priority,
						dyn[i].Improved, dyn[i].Priority)
				}
			}
			return nil
		},
	})
}
