package experiments

import (
	"fmt"
	"io"

	"repro"
)

// Fig10Row compares improved Chaitin and priority-based coloring
// against the base allocator at one configuration.
type Fig10Row struct {
	Config   callcost.Config
	Improved float64
	Priority float64
}

// PriorityComparison computes Figure 10 for one program under one
// weight model; the priority allocator uses the paper's chosen
// "sorting" ordering.
func PriorityComparison(env *Env, program string, dynamic bool) ([]Fig10Row, error) {
	p, err := env.Get(program)
	if err != nil {
		return nil, err
	}
	pf := p.Freq(dynamic)
	var rows []Fig10Row
	for _, cfg := range sweep() {
		base, err := p.Overhead(callcost.Chaitin(), cfg, pf)
		if err != nil {
			return nil, err
		}
		impr, err := p.Overhead(callcost.ImprovedAll(), cfg, pf)
		if err != nil {
			return nil, err
		}
		prio, err := p.Overhead(callcost.Priority(callcost.PrioritySorting), cfg, pf)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig10Row{
			Config:   cfg,
			Improved: callcost.Ratio(base.Total(), impr.Total()),
			Priority: callcost.Ratio(base.Total(), prio.Total()),
		})
	}
	return rows, nil
}

// Fig10Programs are shown in the paper's Figure 10; the rest of the
// suite is printed too for completeness.
var Fig10Programs = []string{"alvinn", "nasa7", "fpppp", "espresso", "gcc", "ear", "tomcatv", "li"}

func init() {
	register(&Experiment{
		ID: "fig10",
		Title: "Figure 10: priority-based versus improved Chaitin-style " +
			"coloring (both over base), static and dynamic — three " +
			"outcome classes: tie, improved wins, no clear winner",
		Run: func(env *Env, w io.Writer) error {
			header(w, "Figure 10 — improved Chaitin vs priority-based (ratios over base Chaitin)")
			for _, prog := range Fig10Programs {
				fmt.Fprintf(w, "\n%s\n%-14s %18s %18s %18s %18s\n", prog,
					"(Ri,Rf,Ei,Ef)", "improved(static)", "priority(static)",
					"improved(dyn)", "priority(dyn)")
				stat, err := PriorityComparison(env, prog, false)
				if err != nil {
					return err
				}
				dyn, err := PriorityComparison(env, prog, true)
				if err != nil {
					return err
				}
				for i := range stat {
					fmt.Fprintf(w, "%-14s %18.2f %18.2f %18.2f %18.2f\n",
						stat[i].Config, stat[i].Improved, stat[i].Priority,
						dyn[i].Improved, dyn[i].Priority)
				}
			}
			return nil
		},
	})
}
