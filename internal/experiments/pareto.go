package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro"
	"repro/internal/benchprog"
)

// ParetoRow is one (program, strategy) cell of the compile-time vs.
// allocation-quality trade-off table.
type ParetoRow struct {
	Program  string
	Strategy string
	// Alloc is the cold whole-program allocation wall time (prep cache
	// off, minimum over the measurement repetitions).
	Alloc time.Duration
	// Overhead is the analytic total overhead under dynamic weights —
	// the paper's quality metric.
	Overhead float64
	// Escalated counts the functions a tiered strategy pushed to its
	// expensive tier; Funcs is the function count of the program.
	Escalated, Funcs int
}

// ParetoSweep measures every strategy over the given programs at cfg:
// allocation wall time (cold, min of reps) against total overhead.
// Programs run in parallel; the strategies of one program run
// sequentially so their timings do not disturb each other.
func ParetoSweep(env *Env, progs []string, cfg callcost.Config, reps int) ([]ParetoRow, error) {
	strategies := callcost.Strategies()
	names := make([]string, 0, len(strategies))
	for n := range strategies {
		names = append(names, n)
	}
	sort.Strings(names)
	rows := make([][]ParetoRow, len(progs))
	err := forEachIndexed(len(progs), func(i int) error {
		p, err := env.Get(progs[i])
		if err != nil {
			return err
		}
		opts := p.Opts
		// Cold allocations: the timing must include the analysis work
		// each strategy actually needs (the scan's advantage is exactly
		// the analyses it skips), not a shared cached round 0.
		opts.NoPrepCache = true
		for _, sname := range names {
			strat := strategies[sname]
			var alloc *callcost.Allocation
			best := time.Duration(0)
			for r := 0; r < reps; r++ {
				start := time.Now()
				alloc, err = p.Program.AllocateWithOptions(strat, cfg, p.Dynamic, opts)
				d := time.Since(start)
				if err != nil {
					return fmt.Errorf("%s: %s: %w", progs[i], sname, err)
				}
				if r == 0 || d < best {
					best = d
				}
			}
			row := ParetoRow{
				Program:  progs[i],
				Strategy: sname,
				Alloc:    best,
				Overhead: alloc.Overhead(p.Dynamic).Total(),
				Funcs:    len(alloc.Plans),
			}
			for _, plan := range alloc.Plans {
				if plan.Alloc.Escalated {
					row.Escalated++
				}
			}
			rows[i] = append(rows[i], row)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []ParetoRow
	for _, r := range rows {
		out = append(out, r...)
	}
	return out, nil
}

// paretoTotals aggregates rows per strategy and marks the Pareto
// frontier of (total allocation time, total overhead): a strategy is
// optimal when no other strategy is at least as good on both axes and
// strictly better on one.
type paretoTotal struct {
	Strategy         string
	Alloc            time.Duration
	Overhead         float64
	Escalated, Funcs int
	Optimal          bool
}

func paretoTotals(rows []ParetoRow) []paretoTotal {
	byStrat := map[string]*paretoTotal{}
	var order []string
	for _, r := range rows {
		t := byStrat[r.Strategy]
		if t == nil {
			t = &paretoTotal{Strategy: r.Strategy}
			byStrat[r.Strategy] = t
			order = append(order, r.Strategy)
		}
		t.Alloc += r.Alloc
		t.Overhead += r.Overhead
		t.Escalated += r.Escalated
		t.Funcs += r.Funcs
	}
	sort.Strings(order)
	out := make([]paretoTotal, 0, len(order))
	for _, n := range order {
		out = append(out, *byStrat[n])
	}
	for i := range out {
		out[i].Optimal = true
		for j := range out {
			if i == j {
				continue
			}
			notWorse := out[j].Alloc <= out[i].Alloc && out[j].Overhead <= out[i].Overhead
			strictlyBetter := out[j].Alloc < out[i].Alloc || out[j].Overhead < out[i].Overhead
			if notWorse && strictlyBetter {
				out[i].Optimal = false
				break
			}
		}
	}
	return out
}

// runPareto prints the per-program table and the per-strategy frontier.
func runPareto(env *Env, w io.Writer, progs []string, reps int) error {
	cfg := callcost.NewConfig(8, 6, 4, 4)
	rows, err := ParetoSweep(env, progs, cfg, reps)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "configuration %s, cold allocations, min of %d runs\n\n", cfg, reps)
	fmt.Fprintf(w, "%-10s %-10s %12s %14s %10s\n",
		"program", "strategy", "alloc", "overhead", "escalated")
	for _, r := range rows {
		esc := "-"
		if r.Strategy == "hybrid" {
			esc = fmt.Sprintf("%d/%d", r.Escalated, r.Funcs)
		}
		fmt.Fprintf(w, "%-10s %-10s %12s %14.1f %10s\n",
			r.Program, r.Strategy, r.Alloc.Round(time.Microsecond), r.Overhead, esc)
	}
	fmt.Fprintf(w, "\n%-10s %12s %14s %10s %8s\n",
		"strategy", "alloc", "overhead", "escalated", "pareto")
	for _, t := range paretoTotals(rows) {
		mark := ""
		if t.Optimal {
			mark = "*"
		}
		esc := "-"
		if t.Strategy == "hybrid" {
			esc = fmt.Sprintf("%d/%d", t.Escalated, t.Funcs)
		}
		fmt.Fprintf(w, "%-10s %12s %14.1f %10s %8s\n",
			t.Strategy, t.Alloc.Round(time.Microsecond), t.Overhead, esc, mark)
	}
	fmt.Fprintln(w, "\n* = on the Pareto frontier of (total alloc time, total overhead)")
	return nil
}

func init() {
	register(&Experiment{
		ID: "pareto",
		Title: "compile time vs. allocation quality: every strategy over every " +
			"benchmark — the frontier the linear-scan / hybrid / coloring " +
			"family spans",
		Run: func(env *Env, w io.Writer) error {
			header(w, "Pareto frontier — allocation wall time vs. total overhead")
			return runPareto(env, w, benchprog.Names(), 3)
		},
	})
	register(&Experiment{
		ID: "pareto-smoke",
		Title: "pareto frontier smoke slice (one small program, one rep) — " +
			"the CI-sized version of -exp pareto",
		Run: func(env *Env, w io.Writer) error {
			header(w, "Pareto frontier (smoke) — ear only")
			return runPareto(env, w, []string{"ear"}, 1)
		},
	})
}
