// Package minterp executes register-allocated programs at the machine
// level. Unlike the reference interpreter (package interp), which gives
// every virtual register its own storage, minterp maintains one
// physical register file per bank for the whole machine, reads and
// writes instruction operands through the allocation's coloring, and
// performs the calling convention for real:
//
//   - at every call it saves and restores exactly the caller-save
//     registers the plan says are live across the call;
//   - at function entry/exit it saves and restores the callee-save
//     registers the function's allocation uses;
//   - when a callee returns, every caller-save register is scrambled,
//     so an allocation that fails to save a live value produces a
//     wrong answer instead of accidentally passing.
//
// Running the same program through interp and minterp and comparing
// results is the end-to-end correctness check for every allocator; the
// operation counters are the paper's measured "register overhead".
package minterp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/interproc"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/rewrite"
)

// Counts accumulates executed overhead operations and cycles.
type Counts struct {
	// Overhead memory operations (each is one load or one store).
	SpillLoads     float64
	SpillStores    float64
	CallerSaves    float64
	CallerRestores float64
	CalleeSaves    float64
	CalleeRestores float64
	// Shuffles counts executed register-to-register moves between
	// distinct registers (copies coalescing could not remove).
	Shuffles float64

	// Steps counts executed IR instructions; Cycles applies the simple
	// RISC cost model (ALU/branch/move 1, memory 2, call 2) including
	// the overhead operations.
	Steps  int64
	Cycles float64
}

// OverheadOps returns the total overhead operation count: spill ops +
// caller-save ops + callee-save ops + shuffles — the paper's register
// allocation cost.
func (c *Counts) OverheadOps() float64 {
	return c.SpillLoads + c.SpillStores + c.CallerSaves + c.CallerRestores +
		c.CalleeSaves + c.CalleeRestores + c.Shuffles
}

// Options control execution.
type Options struct {
	Entry    string // default "main"
	MaxSteps int64  // default 500M
}

// ErrStepLimit is returned when execution exceeds MaxSteps.
var ErrStepLimit = errors.New("minterp: step limit exceeded")

// Result is the outcome of a run.
type Result struct {
	RetInt   int64
	RetFloat float64
	Counts   Counts
}

// Run executes the program under the given plans (one per function, all
// produced with the same register configuration).
func Run(prog *ir.Program, plans map[string]*rewrite.FuncPlan, config machine.Config, opts Options) (*Result, error) {
	entry := opts.Entry
	if entry == "" {
		entry = "main"
	}
	if plans[entry] == nil {
		return nil, fmt.Errorf("minterp: no plan for entry %q", entry)
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 500_000_000
	}
	m := &mach{
		plans:    plans,
		config:   config,
		maxSteps: maxSteps,
		globals:  make(map[*ir.Symbol]*storage),
		intRegs:  make([]int64, config.Total(ir.ClassInt)),
		fltRegs:  make([]float64, config.Total(ir.ClassFloat)),
	}
	for _, g := range prog.Globals {
		m.globals[g] = newStorage(g)
	}
	vi, vf, err := m.call(plans[entry], nil, nil)
	if err != nil {
		return nil, err
	}
	res := &Result{Counts: m.counts}
	fn := plans[entry].Alloc.Fn
	if fn.HasResult {
		res.RetInt = vi
		res.RetFloat = vf
	}
	return res, nil
}

type storage struct {
	ints   []int64
	floats []float64
}

func newStorage(s *ir.Symbol) *storage {
	n := s.Size
	if n == 0 {
		n = 1
	}
	st := &storage{}
	if s.Class == ir.ClassFloat {
		st.floats = make([]float64, n)
		if !s.IsArray() {
			st.floats[0] = s.InitFloat
		}
	} else {
		st.ints = make([]int64, n)
		if !s.IsArray() {
			st.ints[0] = s.InitInt
		}
	}
	return st
}

type mach struct {
	plans    map[string]*rewrite.FuncPlan
	config   machine.Config
	globals  map[*ir.Symbol]*storage
	intRegs  []int64
	fltRegs  []float64
	counts   Counts
	maxSteps int64
	depth    int

	// clobbers memoizes the transitive caller-save clobber set of every
	// planned function, computed lazily on the first call return (see
	// computeClobbers).
	clobbers map[string][ir.NumClasses]interproc.RegSet
}

const maxCallDepth = 10_000

func truncToInt(f float64) int64 {
	if math.IsNaN(f) {
		return 0
	}
	if f >= math.MaxInt64 {
		return math.MaxInt64
	}
	if f <= math.MinInt64 {
		return math.MinInt64
	}
	return int64(f)
}

// scramble simulates the named callee's freedom to clobber caller-save
// registers: every register in its transitive clobber set is destroyed
// deterministically, so any value the caller left there unsaved
// produces a wrong answer instead of accidentally passing. Registers
// outside the set genuinely survive the call on this machine — that is
// exactly the fact the batch driver's interprocedural save pruning
// relies on, and the clobber sets here are recomputed from the plans
// independently of the allocator's summary table, so a summary that
// under-approximates what a callee writes is caught by the
// interp-vs-minterp differentials rather than silently tolerated.
func (m *mach) scramble(callee string) {
	if m.clobbers == nil {
		m.clobbers = computeClobbers(m.plans, m.config)
	}
	clob, ok := m.clobbers[callee]
	if !ok {
		for c := range clob {
			clob[c] = interproc.CallerSaveSet(m.config, ir.Class(c))
		}
	}
	for i := 0; i < m.config.Caller[ir.ClassInt]; i++ {
		if clob[ir.ClassInt].Has(machine.PhysReg(i)) {
			m.intRegs[i] = -0x5ead0000 - int64(i)
		}
	}
	for i := 0; i < m.config.Caller[ir.ClassFloat]; i++ {
		if clob[ir.ClassFloat].Has(machine.PhysReg(i)) {
			m.fltRegs[i] = -1.0e100 - float64(i)
		}
	}
}

// computeClobbers derives the transitive caller-save clobber set of
// every planned function: the colors of its occurring virtual
// registers and parameters (argument marshaling writes those), unioned
// with the sets of its callees, iterated to a fixed point so recursive
// components converge to their joint set. Calls to unplanned functions
// contribute the full caller-save file.
func computeClobbers(plans map[string]*rewrite.FuncPlan, config machine.Config) map[string][ir.NumClasses]interproc.RegSet {
	sets := make(map[string][ir.NumClasses]interproc.RegSet, len(plans))
	for name, plan := range plans {
		fn := plan.Alloc.Fn
		var s [ir.NumClasses]interproc.RegSet
		add := func(r ir.Reg) {
			col := plan.Alloc.Colors[r]
			if col == machine.NoPhysReg {
				return
			}
			if c := fn.RegClass(r); config.IsCallerSave(c, col) {
				s[c].Add(col)
			}
		}
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.HasDst() {
					add(in.Dst)
				}
				for _, a := range in.Args {
					add(a)
				}
			}
		}
		for _, p := range fn.Params {
			add(p)
		}
		sets[name] = s
	}
	var full [ir.NumClasses]interproc.RegSet
	for c := range full {
		full[c] = interproc.CallerSaveSet(config, ir.Class(c))
	}
	for changed := true; changed; {
		changed = false
		for name, plan := range plans {
			s := sets[name]
			fn := plan.Alloc.Fn
			for _, b := range fn.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					if in.Op != ir.OpCall {
						continue
					}
					sub, ok := sets[in.Callee]
					if !ok {
						sub = full
					}
					for c := range s {
						if u := s[c].Union(sub[c]); u != s[c] {
							s[c] = u
							changed = true
						}
					}
				}
			}
			sets[name] = s
		}
	}
	return sets
}

func (m *mach) step(cycles float64) error {
	m.counts.Steps++
	m.counts.Cycles += cycles
	if m.counts.Steps > m.maxSteps {
		return ErrStepLimit
	}
	return nil
}

func (m *mach) call(plan *rewrite.FuncPlan, argsI []int64, argsF []float64) (int64, float64, error) {
	if m.depth++; m.depth > maxCallDepth {
		return 0, 0, fmt.Errorf("minterp: call depth exceeds %d", maxCallDepth)
	}
	defer func() { m.depth-- }()

	fn := plan.Alloc.Fn
	colors := plan.Alloc.Colors
	colorOf := func(r ir.Reg) machine.PhysReg {
		c := colors[r]
		if c == machine.NoPhysReg {
			panic(fmt.Sprintf("minterp: %s: v%d executed without a register", fn.Name, r))
		}
		return c
	}
	readI := func(r ir.Reg) int64 { return m.intRegs[colorOf(r)] }
	readF := func(r ir.Reg) float64 { return m.fltRegs[colorOf(r)] }
	writeI := func(r ir.Reg, v int64) { m.intRegs[colorOf(r)] = v }
	writeF := func(r ir.Reg, v float64) { m.fltRegs[colorOf(r)] = v }

	// Callee-save prologue: save the callee-save registers this
	// allocation uses.
	calleeAreaI := make([]int64, len(plan.CalleeUsed[ir.ClassInt]))
	calleeAreaF := make([]float64, len(plan.CalleeUsed[ir.ClassFloat]))
	for i, pr := range plan.CalleeUsed[ir.ClassInt] {
		calleeAreaI[i] = m.intRegs[pr]
	}
	for i, pr := range plan.CalleeUsed[ir.ClassFloat] {
		calleeAreaF[i] = m.fltRegs[pr]
	}
	nSave := float64(len(calleeAreaI) + len(calleeAreaF))
	m.counts.CalleeSaves += nSave
	m.counts.Cycles += 2 * nSave

	restoreCallee := func() {
		for i, pr := range plan.CalleeUsed[ir.ClassInt] {
			m.intRegs[pr] = calleeAreaI[i]
		}
		for i, pr := range plan.CalleeUsed[ir.ClassFloat] {
			m.fltRegs[pr] = calleeAreaF[i]
		}
		m.counts.CalleeRestores += nSave
		m.counts.Cycles += 2 * nSave
	}

	// Receive arguments into the parameter registers. A parameter whose
	// incoming value is never read has no register; its argument is
	// dropped.
	ai, af := 0, 0
	for _, p := range fn.Params {
		if fn.RegClass(p) == ir.ClassFloat {
			if colors[p] != machine.NoPhysReg {
				writeF(p, argsF[af])
			}
			af++
		} else {
			if colors[p] != machine.NoPhysReg {
				writeI(p, argsI[ai])
			}
			ai++
		}
	}

	// Frame memory: local arrays and spill slots.
	locals := make(map[*ir.Symbol]*storage, len(fn.Locals))
	for _, l := range fn.Locals {
		locals[l] = newStorage(l)
	}
	mem := func(s *ir.Symbol) *storage {
		if s.Local {
			return locals[s]
		}
		return m.globals[s]
	}

	blockID := 0
	for {
		blk := fn.Blocks[blockID]
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			switch in.Op {
			case ir.OpNop:
				if err := m.step(1); err != nil {
					return 0, 0, err
				}
			case ir.OpConstInt:
				if err := m.step(1); err != nil {
					return 0, 0, err
				}
				writeI(in.Dst, in.IntVal)
			case ir.OpConstFloat:
				if err := m.step(1); err != nil {
					return 0, 0, err
				}
				writeF(in.Dst, in.FloatVal)
			case ir.OpMove:
				src, dst := in.Args[0], in.Dst
				if colorOf(src) == colorOf(dst) {
					// Coalesced or luckily identical: the emitter drops
					// the move; zero cost.
					if err := m.step(0); err != nil {
						return 0, 0, err
					}
					continue
				}
				if err := m.step(1); err != nil {
					return 0, 0, err
				}
				m.counts.Shuffles++
				if fn.RegClass(dst) == ir.ClassFloat {
					writeF(dst, readF(src))
				} else {
					writeI(dst, readI(src))
				}
			case ir.OpI2F:
				if err := m.step(1); err != nil {
					return 0, 0, err
				}
				writeF(in.Dst, float64(readI(in.Args[0])))
			case ir.OpF2I:
				if err := m.step(1); err != nil {
					return 0, 0, err
				}
				writeI(in.Dst, truncToInt(readF(in.Args[0])))
			case ir.OpAdd:
				if err := m.step(1); err != nil {
					return 0, 0, err
				}
				writeI(in.Dst, readI(in.Args[0])+readI(in.Args[1]))
			case ir.OpSub:
				if err := m.step(1); err != nil {
					return 0, 0, err
				}
				writeI(in.Dst, readI(in.Args[0])-readI(in.Args[1]))
			case ir.OpMul:
				if err := m.step(1); err != nil {
					return 0, 0, err
				}
				writeI(in.Dst, readI(in.Args[0])*readI(in.Args[1]))
			case ir.OpDiv:
				if err := m.step(1); err != nil {
					return 0, 0, err
				}
				d := readI(in.Args[1])
				if d == 0 {
					return 0, 0, fmt.Errorf("minterp: %s: division by zero at %s", fn.Name, in.Pos)
				}
				writeI(in.Dst, readI(in.Args[0])/d)
			case ir.OpRem:
				if err := m.step(1); err != nil {
					return 0, 0, err
				}
				d := readI(in.Args[1])
				if d == 0 {
					return 0, 0, fmt.Errorf("minterp: %s: modulo by zero at %s", fn.Name, in.Pos)
				}
				writeI(in.Dst, readI(in.Args[0])%d)
			case ir.OpNeg:
				if err := m.step(1); err != nil {
					return 0, 0, err
				}
				writeI(in.Dst, -readI(in.Args[0]))
			case ir.OpFAdd:
				if err := m.step(1); err != nil {
					return 0, 0, err
				}
				writeF(in.Dst, readF(in.Args[0])+readF(in.Args[1]))
			case ir.OpFSub:
				if err := m.step(1); err != nil {
					return 0, 0, err
				}
				writeF(in.Dst, readF(in.Args[0])-readF(in.Args[1]))
			case ir.OpFMul:
				if err := m.step(1); err != nil {
					return 0, 0, err
				}
				writeF(in.Dst, readF(in.Args[0])*readF(in.Args[1]))
			case ir.OpFDiv:
				if err := m.step(1); err != nil {
					return 0, 0, err
				}
				writeF(in.Dst, readF(in.Args[0])/readF(in.Args[1]))
			case ir.OpFNeg:
				if err := m.step(1); err != nil {
					return 0, 0, err
				}
				writeF(in.Dst, -readF(in.Args[0]))
			case ir.OpICmp:
				if err := m.step(1); err != nil {
					return 0, 0, err
				}
				writeI(in.Dst, boolToInt(cmpInt(in.Cond, readI(in.Args[0]), readI(in.Args[1]))))
			case ir.OpFCmp:
				if err := m.step(1); err != nil {
					return 0, 0, err
				}
				writeI(in.Dst, boolToInt(cmpFloat(in.Cond, readF(in.Args[0]), readF(in.Args[1]))))
			case ir.OpLoad:
				if err := m.step(2); err != nil {
					return 0, 0, err
				}
				if in.Sym.Spill {
					m.counts.SpillLoads++
				}
				st := mem(in.Sym)
				idx := 0
				if in.Sym.IsArray() {
					idx = int(readI(in.Args[0]))
					if idx < 0 || idx >= in.Sym.Size {
						return 0, 0, fmt.Errorf("minterp: %s: index %d out of range for %s at %s",
							fn.Name, idx, in.Sym.Name, in.Pos)
					}
				}
				if in.Sym.Class == ir.ClassFloat {
					writeF(in.Dst, st.floats[idx])
				} else {
					writeI(in.Dst, st.ints[idx])
				}
			case ir.OpStore:
				if err := m.step(2); err != nil {
					return 0, 0, err
				}
				if in.Sym.Spill {
					m.counts.SpillStores++
				}
				st := mem(in.Sym)
				idx := 0
				val := in.Args[len(in.Args)-1]
				if in.Sym.IsArray() {
					idx = int(readI(in.Args[0]))
					if idx < 0 || idx >= in.Sym.Size {
						return 0, 0, fmt.Errorf("minterp: %s: index %d out of range for %s at %s",
							fn.Name, idx, in.Sym.Name, in.Pos)
					}
				}
				if in.Sym.Class == ir.ClassFloat {
					st.floats[idx] = readF(val)
				} else {
					st.ints[idx] = readI(val)
				}
			case ir.OpCall:
				if err := m.step(2); err != nil {
					return 0, 0, err
				}
				callee := m.plans[in.Callee]
				if callee == nil {
					return 0, 0, fmt.Errorf("minterp: no plan for %s", in.Callee)
				}
				calleeFn := callee.Alloc.Fn
				// Marshal arguments (reading the caller's registers
				// before any saving/clobbering).
				var ci []int64
				var cf []float64
				for j, a := range in.Args {
					if calleeFn.RegClass(calleeFn.Params[j]) == ir.ClassFloat {
						cf = append(cf, readF(a))
					} else {
						ci = append(ci, readI(a))
					}
				}
				// Caller-save saves.
				cs := plan.CallSaves[[2]int{blk.ID, i}]
				var savedI []int64
				var savedF []float64
				if cs != nil {
					for _, pr := range cs.Regs[ir.ClassInt] {
						savedI = append(savedI, m.intRegs[pr])
					}
					for _, pr := range cs.Regs[ir.ClassFloat] {
						savedF = append(savedF, m.fltRegs[pr])
					}
					n := float64(cs.Count())
					m.counts.CallerSaves += n
					m.counts.Cycles += 2 * n
				}
				ri, rf, err := m.call(callee, ci, cf)
				if err != nil {
					return 0, 0, err
				}
				// The callee may have clobbered any caller-save register
				// in its transitive clobber set.
				m.scramble(in.Callee)
				if cs != nil {
					for k, pr := range cs.Regs[ir.ClassInt] {
						m.intRegs[pr] = savedI[k]
					}
					for k, pr := range cs.Regs[ir.ClassFloat] {
						m.fltRegs[pr] = savedF[k]
					}
					n := float64(cs.Count())
					m.counts.CallerRestores += n
					m.counts.Cycles += 2 * n
				}
				if in.HasDst() {
					if fn.RegClass(in.Dst) == ir.ClassFloat {
						writeF(in.Dst, rf)
					} else {
						writeI(in.Dst, ri)
					}
				}
			case ir.OpRet:
				if err := m.step(1); err != nil {
					return 0, 0, err
				}
				var ri int64
				var rf float64
				if len(in.Args) == 1 {
					if fn.ResultClass == ir.ClassFloat {
						rf = readF(in.Args[0])
					} else {
						ri = readI(in.Args[0])
					}
				}
				restoreCallee()
				return ri, rf, nil
			case ir.OpBr:
				if err := m.step(1); err != nil {
					return 0, 0, err
				}
				if readI(in.Args[0]) != 0 {
					blockID = in.Then
				} else {
					blockID = in.Else
				}
			case ir.OpJmp:
				if err := m.step(1); err != nil {
					return 0, 0, err
				}
				blockID = in.Then
			default:
				return 0, 0, fmt.Errorf("minterp: unknown op %v", in.Op)
			}
		}
	}
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func cmpInt(c ir.Cond, a, b int64) bool {
	switch c {
	case ir.CondEQ:
		return a == b
	case ir.CondNE:
		return a != b
	case ir.CondLT:
		return a < b
	case ir.CondLE:
		return a <= b
	case ir.CondGT:
		return a > b
	case ir.CondGE:
		return a >= b
	}
	return false
}

func cmpFloat(c ir.Cond, a, b float64) bool {
	switch c {
	case ir.CondEQ:
		return a == b
	case ir.CondNE:
		return a != b
	case ir.CondLT:
		return a < b
	case ir.CondLE:
		return a <= b
	case ir.CondGT:
		return a > b
	case ir.CondGE:
		return a >= b
	}
	return false
}
