package minterp_test

import (
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/freq"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/minterp"
	"repro/internal/regalloc"
	"repro/internal/rewrite"
)

// plansFor allocates every function of src under config with the base
// strategy.
func plansFor(t *testing.T, src string, config machine.Config) (*ir.Program, map[string]*rewrite.FuncPlan) {
	t.Helper()
	prog, err := compile.Source(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := interp.Run(prog, interp.Options{Profile: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	pf := freq.FromProfile(prog, res.Profile)
	plans := make(map[string]*rewrite.FuncPlan)
	for _, fn := range prog.Funcs {
		fa, err := regalloc.AllocateFunc(fn, pf.ByFunc[fn.Name], config, &regalloc.Chaitin{},
			rewrite.InsertSpills, regalloc.DefaultOptions())
		if err != nil {
			t.Fatalf("allocate %s: %v", fn.Name, err)
		}
		if err := rewrite.Validate(fa); err != nil {
			t.Fatalf("validate %s: %v", fn.Name, err)
		}
		plans[fn.Name] = rewrite.BuildPlan(fa)
	}
	return prog, plans
}

const src = `
int g = 0;
int work(int v, int w) { g = g + 1; return v * 2 + w; }
int f(int a, int b) {
	int keep = a * 10;
	int r = work(b, a);
	r = r + work(b + 1, a);
	return keep + r;
}
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 20; i = i + 1) { s = s + f(i, i + 1); }
	return s + g;
}`

func TestMatchesReference(t *testing.T) {
	prog, plans := plansFor(t, src, machine.NewConfig(6, 4, 2, 2))
	ref, err := interp.Run(prog, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := minterp.Run(prog, plans, machine.NewConfig(6, 4, 2, 2), minterp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RetInt != ref.RetInt {
		t.Fatalf("machine result %d != reference %d", res.RetInt, ref.RetInt)
	}
}

func TestScramblingCatchesMissingSaves(t *testing.T) {
	cfg := machine.NewConfig(6, 4, 0, 0)
	prog, plans := plansFor(t, src, cfg)
	ref, err := interp.Run(prog, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: drop all caller saves from f's plan. The scrambled
	// caller-save registers must now change the result.
	fplan := plans["f"]
	sabotaged := false
	for k, cs := range fplan.CallSaves {
		if cs.Count() > 0 {
			fplan.CallSaves[k] = &rewrite.CallSave{}
			sabotaged = true
		}
	}
	if !sabotaged {
		t.Skip("no caller saves to sabotage at this configuration")
	}
	res, err := minterp.Run(prog, plans, cfg, minterp.Options{})
	if err == nil && res.RetInt == ref.RetInt {
		t.Fatal("dropping caller saves went unnoticed — scrambling is broken")
	}
}

func TestCountsAreConsistent(t *testing.T) {
	cfg := machine.NewConfig(6, 4, 0, 0)
	prog, plans := plansFor(t, src, cfg)
	res, err := minterp.Run(prog, plans, cfg, minterp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counts
	if c.CallerSaves != c.CallerRestores {
		t.Errorf("saves %v != restores %v", c.CallerSaves, c.CallerRestores)
	}
	if c.CalleeSaves != c.CalleeRestores {
		t.Errorf("callee saves %v != restores %v", c.CalleeSaves, c.CalleeRestores)
	}
	if c.SpillLoads < 0 || c.SpillStores < 0 {
		t.Error("negative spill counts")
	}
	if c.Steps <= 0 || c.Cycles < float64(c.Steps) {
		t.Errorf("cycles %v inconsistent with steps %v", c.Cycles, c.Steps)
	}
	if c.OverheadOps() != c.SpillLoads+c.SpillStores+c.CallerSaves+c.CallerRestores+
		c.CalleeSaves+c.CalleeRestores+c.Shuffles {
		t.Error("OverheadOps does not sum the components")
	}
}

func TestCallerSavesCountedAtSmallConfig(t *testing.T) {
	cfg := machine.NewConfig(6, 4, 0, 0)
	prog, plans := plansFor(t, src, cfg)
	res, err := minterp.Run(prog, plans, cfg, minterp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// keep and a cross calls in f; with no callee-save registers the
	// saves must show up, 20 executions of f, 2 calls each.
	if res.Counts.CallerSaves < 40 {
		t.Errorf("caller saves = %v, expected >= 40", res.Counts.CallerSaves)
	}
}

func TestStepLimit(t *testing.T) {
	cfg := machine.NewConfig(6, 4, 2, 2)
	prog, plans := plansFor(t, src, cfg)
	_, err := minterp.Run(prog, plans, cfg, minterp.Options{MaxSteps: 10})
	if err != minterp.ErrStepLimit {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

func TestMissingPlan(t *testing.T) {
	prog, plans := plansFor(t, src, machine.NewConfig(6, 4, 2, 2))
	delete(plans, "main")
	_, err := minterp.Run(prog, plans, machine.NewConfig(6, 4, 2, 2), minterp.Options{})
	if err == nil || !strings.Contains(err.Error(), "no plan") {
		t.Fatalf("err = %v", err)
	}
}

func TestFloatResults(t *testing.T) {
	fsrc := `
float half(float x) { return x / 2.0; }
int main() {
	float acc = 0.0;
	int i;
	for (i = 0; i < 8; i = i + 1) { acc = acc + half(float(i)); }
	return int(acc * 10.0);
}`
	cfg := machine.NewConfig(6, 4, 1, 1)
	prog, plans := plansFor(t, fsrc, cfg)
	ref, err := interp.Run(prog, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := minterp.Run(prog, plans, cfg, minterp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RetInt != ref.RetInt {
		t.Fatalf("got %d, want %d", res.RetInt, ref.RetInt)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	rsrc := `
int down(int n) { if (n <= 0) { return 0; } return down(n - 1); }
int main() { return down(50); }`
	cfg := machine.NewConfig(6, 4, 2, 2)
	prog, plans := plansFor(t, rsrc, cfg)
	res, err := minterp.Run(prog, plans, cfg, minterp.Options{})
	if err != nil || res.RetInt != 0 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}
