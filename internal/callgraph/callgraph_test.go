package callgraph

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/ir"
)

// synth builds a bare program from an adjacency list: each function is
// one block of calls. Good enough for graph-shape tests — the builder
// only reads Op and Callee.
func synth(edges map[string][]string, order []string) *ir.Program {
	p := &ir.Program{}
	for _, name := range order {
		b := &ir.Block{ID: 0}
		for _, callee := range edges[name] {
			b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpCall, Callee: callee})
		}
		b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpRet})
		p.AddFunc(&ir.Func{Name: name, Blocks: []*ir.Block{b}})
	}
	return p
}

func names(fns []*ir.Func) []string {
	out := make([]string, len(fns))
	for i, f := range fns {
		out[i] = f.Name
	}
	return out
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildDiamond(t *testing.T) {
	// main calls a and b (a twice — deduplicated); both call leaf.
	g := Build(synth(map[string][]string{
		"main": {"a", "b", "a"},
		"a":    {"leaf"},
		"b":    {"leaf"},
		"leaf": nil,
	}, []string{"main", "a", "b", "leaf"}))

	if g.NumSCCs() != 4 {
		t.Fatalf("NumSCCs = %d, want 4", g.NumSCCs())
	}
	callees, ext := g.Callees("main")
	if !eq(names(callees), []string{"a", "b"}) || ext {
		t.Fatalf("Callees(main) = %v ext=%v", names(callees), ext)
	}
	for _, fn := range []string{"main", "a", "b", "leaf"} {
		c := g.SCCOf(fn)
		if c < 0 || g.Recursive(c) {
			t.Fatalf("%s: scc=%d recursive=%v", fn, c, g.Recursive(c))
		}
	}
	// Reverse topological ids: callee components before caller ones.
	if !(g.SCCOf("leaf") < g.SCCOf("a") && g.SCCOf("a") < g.SCCOf("main")) ||
		!(g.SCCOf("leaf") < g.SCCOf("b") && g.SCCOf("b") < g.SCCOf("main")) {
		t.Fatalf("component ids not reverse topological: leaf=%d a=%d b=%d main=%d",
			g.SCCOf("leaf"), g.SCCOf("a"), g.SCCOf("b"), g.SCCOf("main"))
	}
}

func TestExternalCallee(t *testing.T) {
	g := Build(synth(map[string][]string{
		"main":   {"helper", "undefined_fn"},
		"helper": nil,
	}, []string{"main", "helper"}))
	callees, ext := g.Callees("main")
	if !eq(names(callees), []string{"helper"}) {
		t.Fatalf("Callees(main) = %v", names(callees))
	}
	if !ext {
		t.Fatal("call to undefined callee not flagged external")
	}
	if _, ext := g.Callees("helper"); ext {
		t.Fatal("helper flagged external with no calls")
	}
	if g.SCCOf("undefined_fn") != -1 {
		t.Fatal("SCCOf(undefined) should be -1")
	}
}

func TestSCCMutualRecursion(t *testing.T) {
	// even/odd are mutually recursive; self calls itself; main calls all.
	g := Build(synth(map[string][]string{
		"main": {"even", "self"},
		"even": {"odd", "base"},
		"odd":  {"even", "base"},
		"self": {"self"},
		"base": nil,
	}, []string{"main", "even", "odd", "self", "base"}))

	if g.SCCOf("even") != g.SCCOf("odd") {
		t.Fatalf("even/odd split across components %d/%d", g.SCCOf("even"), g.SCCOf("odd"))
	}
	pair := g.SCCOf("even")
	if !g.Recursive(pair) {
		t.Fatal("mutual-recursion component not marked recursive")
	}
	if !eq(g.MemberNames(pair), []string{"even", "odd"}) {
		t.Fatalf("members of even/odd component = %v", g.MemberNames(pair))
	}
	if !g.Recursive(g.SCCOf("self")) {
		t.Fatal("self-recursive singleton not marked recursive")
	}
	if g.Recursive(g.SCCOf("base")) || g.Recursive(g.SCCOf("main")) {
		t.Fatal("non-recursive function marked recursive")
	}
	// The pair depends on base only (internal edges are not deps).
	deps := g.Deps(pair)
	if len(deps) != 1 || deps[0] != g.SCCOf("base") {
		t.Fatalf("Deps(even/odd) = %v, want [%d]", deps, g.SCCOf("base"))
	}
}

func TestWavesAreTopological(t *testing.T) {
	g := Build(synth(map[string][]string{
		"main": {"a", "b"},
		"a":    {"c", "d"},
		"b":    {"d"},
		"c":    {"e"},
		"d":    {"e"},
		"e":    nil,
	}, []string{"main", "a", "b", "c", "d", "e"}))

	waves := g.Waves()
	waveOf := make(map[int]int)
	total := 0
	for w, comps := range waves {
		for _, c := range comps {
			waveOf[c] = w
			total++
		}
	}
	if total != g.NumSCCs() {
		t.Fatalf("waves cover %d components, graph has %d", total, g.NumSCCs())
	}
	// Valid topological order: every dependency is in a strictly
	// earlier wave.
	for c := 0; c < g.NumSCCs(); c++ {
		for _, d := range g.Deps(c) {
			if waveOf[d] >= waveOf[c] {
				t.Fatalf("component %d (wave %d) depends on %d (wave %d)",
					c, waveOf[c], d, waveOf[d])
			}
		}
	}
	if waveOf[g.SCCOf("e")] != 0 {
		t.Fatalf("leaf e in wave %d, want 0", waveOf[g.SCCOf("e")])
	}
	if w := waveOf[g.SCCOf("main")]; w != 3 {
		t.Fatalf("main in wave %d, want 3 (e→c/d→a/b→main)", w)
	}
}

func TestDepsPrecedeComponent(t *testing.T) {
	// On a compiled program: every dependency id must be smaller than
	// the component id (reverse topological id assignment), so a plain
	// ascending sweep is a valid schedule.
	prog, err := compile.Source(`
int base(int x) { return x + 1; }
int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
int chain(int n) { return base(n) + even(n); }
int main() { return chain(7); }
`)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(prog)
	for c := 0; c < g.NumSCCs(); c++ {
		for _, d := range g.Deps(c) {
			if d >= c {
				t.Fatalf("component %d depends on %d (not reverse topological)", c, d)
			}
		}
	}
	if g.SCCOf("even") != g.SCCOf("odd") {
		t.Fatal("compiled even/odd not condensed into one component")
	}
}
