// Package callgraph builds the static call graph of an IR program and
// condenses it for whole-program allocation scheduling.
//
// Nodes are the program's functions; an edge f→g exists when some
// OpCall in f names g and g is defined in the program. Calls to
// undefined (external) callees do not create edges — the batch driver
// treats them as unknown and keeps the paper's static cost estimate —
// but are recorded so callers can tell "no calls" from "only external
// calls".
//
// Recursion is handled by Tarjan SCC condensation: every strongly
// connected component becomes one scheduling unit, and the component
// order produced is reverse topological (callees before callers), which
// is exactly the order interprocedural summaries must be published in.
// Waves() additionally partitions the components into levels — wave k
// holds the components whose callees all live in waves < k — giving the
// classic lock-step schedule; the batch driver's task DAG uses the
// finer per-component dependency lists (Deps) so independent subtrees
// need not wait for a whole wave.
package callgraph

import (
	"sort"

	"repro/internal/ir"
)

// Graph is the condensed call graph of one program.
type Graph struct {
	prog *ir.Program

	// index of each function in prog.Funcs, by name.
	idx map[string]int

	// callees[i] lists the distinct defined callees of function i, as
	// indices into prog.Funcs, in first-call order.
	callees [][]int

	// external[i] is true when function i calls at least one callee
	// not defined in the program.
	external []bool

	// sccOf[i] is the component id of function i. Component ids are
	// assigned in reverse topological order: if f calls g and they are
	// in different components, sccOf[g] < sccOf[f].
	sccOf []int

	// sccs[c] lists the member function indices of component c, in
	// program order.
	sccs [][]int

	// recursive[c] is true when component c has more than one member
	// or its single member calls itself.
	recursive []bool

	// deps[c] lists the component ids component c depends on (the
	// components of its members' callees, excluding c itself), sorted
	// ascending.
	deps [][]int
}

// Build constructs the condensed call graph of p.
func Build(p *ir.Program) *Graph {
	n := len(p.Funcs)
	g := &Graph{
		prog:     p,
		idx:      make(map[string]int, n),
		callees:  make([][]int, n),
		external: make([]bool, n),
	}
	for i, fn := range p.Funcs {
		g.idx[fn.Name] = i
	}
	for i, fn := range p.Funcs {
		seen := make(map[int]bool)
		for _, b := range fn.Blocks {
			for j := range b.Instrs {
				in := &b.Instrs[j]
				if in.Op != ir.OpCall {
					continue
				}
				c, ok := g.idx[in.Callee]
				if !ok {
					g.external[i] = true
					continue
				}
				if !seen[c] {
					seen[c] = true
					g.callees[i] = append(g.callees[i], c)
				}
			}
		}
	}
	g.condense()
	return g
}

// condense runs an iterative Tarjan SCC pass. Tarjan completes a
// component only after every component it can reach, so components pop
// in reverse topological order — ids are assigned in pop order.
func (g *Graph) condense() {
	n := len(g.prog.Funcs)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	g.sccOf = make([]int, n)
	var stack []int
	next := 0

	// Explicit DFS frames: fuzzed call chains can be deep.
	type frame struct{ v, ci int }
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames := []frame{{root, 0}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ci < len(g.callees[f.v]) {
				w := g.callees[f.v][f.ci]
				f.ci++
				if index[w] == unvisited {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] != index[v] {
				continue
			}
			id := len(g.sccs)
			var members []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				g.sccOf[w] = id
				members = append(members, w)
				if w == v {
					break
				}
			}
			sort.Ints(members)
			g.sccs = append(g.sccs, members)
		}
	}

	g.recursive = make([]bool, len(g.sccs))
	g.deps = make([][]int, len(g.sccs))
	for c, members := range g.sccs {
		if len(members) > 1 {
			g.recursive[c] = true
		}
		seen := make(map[int]bool)
		for _, v := range members {
			for _, w := range g.callees[v] {
				d := g.sccOf[w]
				if d == c {
					g.recursive[c] = true
					continue
				}
				if !seen[d] {
					seen[d] = true
					g.deps[c] = append(g.deps[c], d)
				}
			}
		}
		sort.Ints(g.deps[c])
	}
}

// NumSCCs returns the number of condensed components.
func (g *Graph) NumSCCs() int { return len(g.sccs) }

// SCCOf returns the component id of the named function, or -1 when the
// function is not defined in the program.
func (g *Graph) SCCOf(name string) int {
	i, ok := g.idx[name]
	if !ok {
		return -1
	}
	return g.sccOf[i]
}

// Members returns the functions of component c, in program order.
func (g *Graph) Members(c int) []*ir.Func {
	out := make([]*ir.Func, len(g.sccs[c]))
	for i, v := range g.sccs[c] {
		out[i] = g.prog.Funcs[v]
	}
	return out
}

// MemberNames returns the function names of component c.
func (g *Graph) MemberNames(c int) []string {
	out := make([]string, len(g.sccs[c]))
	for i, v := range g.sccs[c] {
		out[i] = g.prog.Funcs[v].Name
	}
	return out
}

// Recursive reports whether component c is recursive: multiple
// members, or a single member that calls itself.
func (g *Graph) Recursive(c int) bool { return g.recursive[c] }

// Deps returns the component ids c depends on (its members' callee
// components, excluding c), sorted ascending. Every dependency id is
// smaller than c: component ids are assigned in reverse topological
// order, so a plain ascending sweep is already a valid schedule.
func (g *Graph) Deps(c int) []int { return g.deps[c] }

// Callees returns the distinct defined callees of the named function,
// in first-call order, plus whether the function also calls any
// undefined (external) callee.
func (g *Graph) Callees(name string) (defined []*ir.Func, external bool) {
	i, ok := g.idx[name]
	if !ok {
		return nil, false
	}
	out := make([]*ir.Func, len(g.callees[i]))
	for j, v := range g.callees[i] {
		out[j] = g.prog.Funcs[v]
	}
	return out, g.external[i]
}

// Waves partitions the components into lock-step levels: wave 0 holds
// the leaf components, and every component in wave k has all its
// dependencies in waves < k. Component ids within a wave are ascending.
func (g *Graph) Waves() [][]int {
	level := make([]int, len(g.sccs))
	max := 0
	for c := range g.sccs {
		l := 0
		for _, d := range g.deps[c] {
			// d < c always holds, so level[d] is final.
			if level[d]+1 > l {
				l = level[d] + 1
			}
		}
		level[c] = l
		if l > max {
			max = l
		}
	}
	waves := make([][]int, max+1)
	for c := range g.sccs {
		waves[level[c]] = append(waves[level[c]], c)
	}
	return waves
}
