package source

import (
	"strings"
	"testing"
)

func TestPos(t *testing.T) {
	var zero Pos
	if zero.IsValid() {
		t.Error("zero Pos should be invalid")
	}
	if zero.String() != "-" {
		t.Errorf("zero Pos = %q, want -", zero.String())
	}
	p := Pos{Line: 3, Col: 7}
	if !p.IsValid() || p.String() != "3:7" {
		t.Errorf("Pos = %q, want 3:7", p.String())
	}
	if !(Pos{Line: 1, Col: 9}).Before(Pos{Line: 2, Col: 1}) {
		t.Error("line ordering broken")
	}
	if !(Pos{Line: 2, Col: 1}).Before(Pos{Line: 2, Col: 5}) {
		t.Error("column ordering broken")
	}
	if (Pos{Line: 2, Col: 5}).Before(Pos{Line: 2, Col: 5}) {
		t.Error("Before should be strict")
	}
}

func TestErrorList(t *testing.T) {
	var l ErrorList
	if l.Err() != nil {
		t.Error("empty list should have nil Err")
	}
	l.Add(Pos{Line: 5, Col: 1}, "second %s", "problem")
	l.Add(Pos{Line: 2, Col: 3}, "first problem")
	l.Sort()
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.Diags[0].Pos.Line != 2 {
		t.Error("Sort did not order by position")
	}
	msg := l.Error()
	if !strings.Contains(msg, "first problem") || !strings.Contains(msg, "second problem") {
		t.Errorf("Error() = %q", msg)
	}
	if err := l.Err(); err == nil {
		t.Error("non-empty list should return itself as error")
	}
}

func TestErrorListFileName(t *testing.T) {
	l := ErrorList{File: "x.mc"}
	l.Add(Pos{Line: 1, Col: 1}, "boom")
	if !strings.Contains(l.Error(), "x.mc:1:1: boom") {
		t.Errorf("got %q", l.Error())
	}
}

func TestErrorListCap(t *testing.T) {
	var l ErrorList
	for i := 0; i < MaxErrors+50; i++ {
		l.Add(Pos{Line: i + 1, Col: 1}, "e")
	}
	if l.Len() != MaxErrors {
		t.Errorf("Len = %d, want cap %d", l.Len(), MaxErrors)
	}
}
