// Package source provides source positions and diagnostics shared by the
// MC front end (lexer, parser, type checker).
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a position in an MC source file, 1-based in both line and column.
// The zero Pos is "no position".
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether p refers to an actual source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders the position as "line:col", or "-" for the zero Pos.
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Before reports whether p occurs strictly before q in the file.
func (p Pos) Before(q Pos) bool {
	if p.Line != q.Line {
		return p.Line < q.Line
	}
	return p.Col < q.Col
}

// Diagnostic is a single error or warning produced by a front-end phase.
type Diagnostic struct {
	Pos  Pos
	Msg  string
	File string // optional file name
}

// Error implements the error interface.
func (d *Diagnostic) Error() string {
	if d.File != "" {
		return fmt.Sprintf("%s:%s: %s", d.File, d.Pos, d.Msg)
	}
	return fmt.Sprintf("%s: %s", d.Pos, d.Msg)
}

// ErrorList collects diagnostics from a phase. The zero value is ready to
// use.
type ErrorList struct {
	File  string
	Diags []*Diagnostic
	limit int // 0 means default
}

// MaxErrors is the default cap on collected diagnostics; once reached,
// further Add calls are dropped so a confused parser cannot flood memory.
const MaxErrors = 100

// Add records a diagnostic at pos.
func (l *ErrorList) Add(pos Pos, format string, args ...interface{}) {
	max := l.limit
	if max == 0 {
		max = MaxErrors
	}
	if len(l.Diags) >= max {
		return
	}
	l.Diags = append(l.Diags, &Diagnostic{Pos: pos, Msg: fmt.Sprintf(format, args...), File: l.File})
}

// Len returns the number of collected diagnostics.
func (l *ErrorList) Len() int { return len(l.Diags) }

// Sort orders the diagnostics by source position.
func (l *ErrorList) Sort() {
	sort.SliceStable(l.Diags, func(i, j int) bool {
		return l.Diags[i].Pos.Before(l.Diags[j].Pos)
	})
}

// Err returns nil when the list is empty and the list itself otherwise.
func (l *ErrorList) Err() error {
	if len(l.Diags) == 0 {
		return nil
	}
	return l
}

// Error implements the error interface by joining all diagnostics.
func (l *ErrorList) Error() string {
	switch len(l.Diags) {
	case 0:
		return "no errors"
	case 1:
		return l.Diags[0].Error()
	}
	var b strings.Builder
	for i, d := range l.Diags {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.Error())
	}
	return b.String()
}
