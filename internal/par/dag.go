package par

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrDAGCycle reports that RunDAG's dependency lists contain a cycle,
// so some tasks could never become ready.
var ErrDAGCycle = errors.New("par: dependency cycle")

// DAGStats reports scheduling facts of one RunDAG execution.
type DAGStats struct {
	// ReadyPeak is the maximum number of tasks that were
	// simultaneously ready — dependencies satisfied, not yet started.
	// It bounds the parallelism the DAG's shape made available: a
	// chain peaks at 1 regardless of workers, a wide independent set
	// peaks near its width.
	ReadyPeak int
}

// RunDAG executes tasks 0..len(deps)-1 on a bounded worker pool,
// honoring the dependency lists: task i starts only after every task
// in deps[i] finished. Ready tasks are dispatched the moment their
// last dependency completes — no wave barriers — so independent
// subtrees of the DAG run concurrently. deps must be acyclic;
// RunDAG returns ErrDAGCycle without running anything otherwise.
//
// workers <= 0 selects GOMAXPROCS via the underlying pool sizing;
// workers == 1 executes ready tasks one at a time on one goroutine.
// The first task error (lowest index among failures) is returned;
// after any failure — or once ctx is done — remaining tasks are
// released without running f, so the call always terminates promptly
// and ctx.Err() is reported when no task failed first.
//
// Determinism contract (same as ForEachIndexed): f writes its result
// into an index-addressed slot, so outputs are independent of the
// schedule; only wall time changes.
func RunDAG(ctx context.Context, deps [][]int, workers int, f func(i int) error) (DAGStats, error) {
	n := len(deps)
	if n == 0 {
		return DAGStats{}, nil
	}

	indeg := make([]int32, n)
	dependents := make([][]int, n)
	for i, ds := range deps {
		indeg[i] = int32(len(ds))
		for _, d := range ds {
			dependents[d] = append(dependents[d], i)
		}
	}

	// Kahn pre-pass on a scratch copy: a cycle would leave the worker
	// loop below waiting forever for tasks that can never become ready.
	{
		scratch := make([]int32, n)
		copy(scratch, indeg)
		queue := make([]int, 0, n)
		for i, d := range scratch {
			if d == 0 {
				queue = append(queue, i)
			}
		}
		processed := 0
		for len(queue) > 0 {
			i := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			processed++
			for _, dep := range dependents[i] {
				if scratch[dep]--; scratch[dep] == 0 {
					queue = append(queue, dep)
				}
			}
		}
		if processed != n {
			return DAGStats{}, ErrDAGCycle
		}
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	ready := make(chan int, n)
	var mu sync.Mutex
	readyNow, readyPeak := 0, 0
	enqueue := func(i int) {
		mu.Lock()
		readyNow++
		if readyNow > readyPeak {
			readyPeak = readyNow
		}
		mu.Unlock()
		ready <- i
	}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			enqueue(i)
		}
	}

	errs := make([]error, n)
	var failed atomic.Bool
	var completed int32
	done := ctx.Done()

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range ready {
				mu.Lock()
				readyNow--
				mu.Unlock()
				canceled := false
				select {
				case <-done:
					canceled = true
				default:
				}
				if !canceled && !failed.Load() {
					if errs[i] = f(i); errs[i] != nil {
						failed.Store(true)
					}
				}
				// Complete the task even when it was skipped or failed:
				// dependents must flow through so every worker's range
				// loop terminates.
				for _, dep := range dependents[i] {
					if atomic.AddInt32(&indeg[dep], -1) == 0 {
						enqueue(dep)
					}
				}
				if atomic.AddInt32(&completed, 1) == int32(n) {
					close(ready)
				}
			}
		}()
	}
	wg.Wait()

	stats := DAGStats{ReadyPeak: readyPeak}
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}
	return stats, ctx.Err()
}
