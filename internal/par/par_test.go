package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestForEachIndexedCtxCancelStopsDispatch: once the context is
// canceled, no further queued indices are dispatched, and the loop
// reports the cancellation. A gate holds the first tasks mid-run so
// the cancellation provably lands while work is still queued.
func TestForEachIndexedCtxCancelStopsDispatch(t *testing.T) {
	const n, workers = 1000, 4
	ctx, cancel := context.WithCancel(context.Background())
	var dispatched atomic.Int64
	started := make(chan struct{}, n)
	gate := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- ForEachIndexedCtx(ctx, n, workers, func(i int) error {
			dispatched.Add(1)
			started <- struct{}{}
			<-gate
			return nil
		})
	}()
	// Let every worker pick up one task, then cancel while the rest of
	// the indices are still undispatched.
	for i := 0; i < workers; i++ {
		<-started
	}
	cancel()
	close(gate)
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The running tasks finish; nothing new starts after cancel. Give
	// racing claims a generous allowance: at most one extra claim per
	// worker could have passed the ctx check before cancel landed.
	if d := dispatched.Load(); d >= n/2 {
		t.Fatalf("dispatched %d of %d tasks after cancellation", d, n)
	}
}

// TestForEachIndexedCtxSequentialCancel: the workers==1 path checks the
// context between iterations.
func TestForEachIndexedCtxSequentialCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := ForEachIndexedCtx(ctx, 100, 1, func(i int) error {
		ran++
		if i == 4 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 5 {
		t.Fatalf("ran %d tasks, want 5", ran)
	}
}

// TestForEachIndexedErrorPriority: the lowest-indexed task error wins
// over a later cancellation.
func TestForEachIndexedErrorPriority(t *testing.T) {
	boom := errors.New("boom")
	err := ForEachIndexed(100, 8, func(i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestPoolBackpressure: a full admission queue rejects with
// ErrQueueFull instead of blocking, and frees up once tasks drain.
func TestPoolBackpressure(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Drain()
	gate := make(chan struct{})
	running := make(chan struct{})
	// First task occupies the worker...
	if err := p.Submit(context.Background(), func(context.Context) {
		close(running)
		<-gate
	}); err != nil {
		t.Fatal(err)
	}
	<-running
	// ...second fills the queue slot...
	if err := p.Submit(context.Background(), func(context.Context) {}); err != nil {
		t.Fatal(err)
	}
	// ...third must shed.
	if err := p.Submit(context.Background(), func(context.Context) {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	close(gate)
}

// TestPoolDrain: Drain runs every admitted task to completion and
// rejects later submissions.
func TestPoolDrain(t *testing.T) {
	p := NewPool(2, 16)
	var ran atomic.Int64
	for i := 0; i < 10; i++ {
		if err := p.Submit(context.Background(), func(context.Context) {
			time.Sleep(time.Millisecond)
			ran.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	p.Drain()
	if n := ran.Load(); n != 10 {
		t.Fatalf("ran %d tasks, want 10 (drain abandoned admitted work)", n)
	}
	if err := p.Submit(context.Background(), func(context.Context) {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
	p.Drain() // idempotent
}

// TestPoolSkipsDeadRequests: a task whose context died while queued is
// never started.
func TestPoolSkipsDeadRequests(t *testing.T) {
	p := NewPool(1, 4)
	defer p.Drain()
	gate := make(chan struct{})
	running := make(chan struct{})
	if err := p.Submit(context.Background(), func(context.Context) {
		close(running)
		<-gate
	}); err != nil {
		t.Fatal(err)
	}
	<-running
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Bool
	if err := p.Submit(ctx, func(context.Context) { started.Store(true) }); err != nil {
		t.Fatal(err)
	}
	cancel()
	close(gate)
	p.Drain()
	if started.Load() {
		t.Fatal("task with a dead context was started")
	}
}

// TestPoolAssist: Assist hands work to an idle worker without touching
// the admission queue, and reports false the instant no worker is
// free — the caller's cue to run the work itself.
func TestPoolAssist(t *testing.T) {
	p := NewPool(2, 4)
	gate := make(chan struct{})
	running := make(chan struct{})
	if err := p.Submit(context.Background(), func(context.Context) {
		close(running)
		<-gate
	}); err != nil {
		t.Fatal(err)
	}
	<-running

	// One worker busy, one idle: Assist must land (the idle worker may
	// take a beat to reach its select, so poll briefly).
	assisted := make(chan struct{})
	ok := false
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		if p.Assist(context.Background(), func(context.Context) {
			close(assisted)
			<-gate
		}) {
			ok = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !ok {
		t.Fatal("Assist never reached the idle worker")
	}
	<-assisted

	// Both workers busy: Assist must refuse immediately.
	if p.Assist(context.Background(), func(context.Context) {}) {
		t.Fatal("Assist accepted work with every worker busy")
	}

	close(gate)
	p.Drain()
	if p.Assist(context.Background(), func(context.Context) {}) {
		t.Fatal("Assist accepted work after Drain")
	}
}
