package par

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunDAGTopologicalOrder(t *testing.T) {
	// Diamond over 4 tasks plus a chain hanging off the join.
	deps := [][]int{
		0: {},
		1: {0},
		2: {0},
		3: {1, 2},
		4: {3},
	}
	var mu sync.Mutex
	finished := make([]bool, len(deps))
	stats, err := RunDAG(context.Background(), deps, 4, func(i int) error {
		mu.Lock()
		defer mu.Unlock()
		for _, d := range deps[i] {
			if !finished[d] {
				return fmt.Errorf("task %d started before dependency %d finished", i, d)
			}
		}
		finished[i] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range finished {
		if !f {
			t.Fatalf("task %d never ran", i)
		}
	}
	if stats.ReadyPeak < 1 || stats.ReadyPeak > 2 {
		t.Fatalf("ReadyPeak = %d, want 1..2 (diamond width)", stats.ReadyPeak)
	}
}

func TestRunDAGWideParallelism(t *testing.T) {
	// 32 independent tasks behind one root: the scheduler must expose
	// the width (ready peak = 32) and actually overlap execution.
	n := 33
	deps := make([][]int, n)
	for i := 1; i < n; i++ {
		deps[i] = []int{0}
	}
	var running, maxRunning atomic.Int32
	gate := make(chan struct{})
	var once sync.Once
	stats, err := RunDAG(context.Background(), deps, 8, func(i int) error {
		if i == 0 {
			return nil
		}
		cur := running.Add(1)
		for {
			old := maxRunning.Load()
			if cur <= old || maxRunning.CompareAndSwap(old, cur) {
				break
			}
		}
		// Block the first arrivals until a second worker shows up, so
		// the overlap assertion cannot race to a false negative.
		if cur >= 2 {
			once.Do(func() { close(gate) })
		}
		<-gate
		running.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReadyPeak != 32 {
		t.Fatalf("ReadyPeak = %d, want 32", stats.ReadyPeak)
	}
	if maxRunning.Load() < 2 {
		t.Fatalf("maxRunning = %d, want >= 2", maxRunning.Load())
	}
}

func TestRunDAGChainPeak(t *testing.T) {
	deps := [][]int{0: {}, 1: {0}, 2: {1}, 3: {2}}
	stats, err := RunDAG(context.Background(), deps, 4, func(i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReadyPeak != 1 {
		t.Fatalf("chain ReadyPeak = %d, want 1", stats.ReadyPeak)
	}
}

func TestRunDAGErrorPriorityAndSkip(t *testing.T) {
	boom := errors.New("boom")
	deps := [][]int{0: {}, 1: {0}, 2: {1}}
	var ran atomic.Int32
	_, err := RunDAG(context.Background(), deps, 2, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran.Load() != 1 {
		t.Fatalf("ran = %d tasks after root failure, want 1", ran.Load())
	}
}

func TestRunDAGCycle(t *testing.T) {
	deps := [][]int{0: {1}, 1: {0}}
	if _, err := RunDAG(context.Background(), deps, 2, func(i int) error {
		t.Error("task ran despite cycle")
		return nil
	}); !errors.Is(err, ErrDAGCycle) {
		t.Fatalf("err = %v, want ErrDAGCycle", err)
	}
}

func TestRunDAGCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := 64
	deps := make([][]int, n)
	for i := 1; i < n; i++ {
		deps[i] = []int{i - 1}
	}
	var ran atomic.Int32
	_, err := RunDAG(ctx, deps, 2, func(i int) error {
		if ran.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() >= int32(n) {
		t.Fatal("cancellation did not skip any tasks")
	}
}

// TestRunDAGStress exercises the scheduler under -race with a layered
// random-ish DAG and many workers: every task checks its dependencies
// completed, via an index-addressed slice (the determinism contract).
func TestRunDAGStress(t *testing.T) {
	const layers, width = 16, 12
	n := layers * width
	deps := make([][]int, n)
	for l := 1; l < layers; l++ {
		for w := 0; w < width; w++ {
			i := l*width + w
			// Depend on a spread of the previous layer.
			deps[i] = []int{(l-1)*width + w, (l-1)*width + (w+5)%width}
		}
	}
	state := make([]int32, n)
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Concurrent unrelated RunDAGs must not interfere.
			small := [][]int{0: {}, 1: {0}}
			if _, err := RunDAG(context.Background(), small, 2, func(i int) error { return nil }); err != nil {
				t.Error(err)
			}
		}()
	}
	_, err := RunDAG(context.Background(), deps, 16, func(i int) error {
		for _, d := range deps[i] {
			if atomic.LoadInt32(&state[d]) != 1 {
				return fmt.Errorf("task %d saw incomplete dependency %d", i, d)
			}
		}
		atomic.StoreInt32(&state[i], 1)
		return nil
	})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i := range state {
		if state[i] != 1 {
			t.Fatalf("task %d never completed", i)
		}
	}
}
