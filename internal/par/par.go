// Package par provides the bounded index-parallel loop shared by the
// allocator driver (per-function parallel allocation) and the
// experiment harness (parallel sweep cells).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// ForEachIndexed runs f(0)..f(n-1) on a bounded worker pool and returns
// the error of the lowest-indexed failing call, or nil. workers <= 0
// selects GOMAXPROCS; workers == 1 degenerates to a plain sequential
// loop on the calling goroutine (with its early-exit-on-error
// behavior).
//
// Determinism contract: f writes its result into an index-addressed
// slot of a caller-owned slice, never appends to shared state, so the
// collected results are identical to a sequential loop regardless of
// scheduling — only wall time changes. Callers print or merge strictly
// after ForEachIndexed returns.
func ForEachIndexed(n, workers int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	b := telemetry.B()
	if b != nil {
		b.ParLoops.Inc()
		b.ParTasks.Add(int64(n))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				if b != nil {
					// Unclaimed tasks = n minus the claim counter; the
					// gauges expose pool utilization mid-sweep.
					if left := int64(n) - atomic.LoadInt64(&next); left > 0 {
						b.ParQueueDepth.Set(left)
					} else {
						b.ParQueueDepth.Set(0)
					}
					b.ParBusyWorkers.Add(1)
				}
				errs[i] = f(i)
				if b != nil {
					b.ParBusyWorkers.Add(-1)
				}
			}
		}()
	}
	wg.Wait()
	if b != nil {
		b.ParQueueDepth.Set(0)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
