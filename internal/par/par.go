// Package par provides the bounded concurrency primitives shared by
// the allocator driver, the experiment harness, and the allocation
// daemon: an index-parallel loop (ForEachIndexed) and a server-grade
// worker pool with a bounded admission queue (Pool).
package par

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// ForEachIndexed runs f(0)..f(n-1) on a bounded worker pool and returns
// the error of the lowest-indexed failing call, or nil. workers <= 0
// selects GOMAXPROCS; workers == 1 degenerates to a plain sequential
// loop on the calling goroutine (with its early-exit-on-error
// behavior).
//
// Determinism contract: f writes its result into an index-addressed
// slot of a caller-owned slice, never appends to shared state, so the
// collected results are identical to a sequential loop regardless of
// scheduling — only wall time changes. Callers print or merge strictly
// after ForEachIndexed returns.
func ForEachIndexed(n, workers int, f func(i int) error) error {
	return ForEachIndexedCtx(context.Background(), n, workers, f)
}

// ForEachIndexedCtx is ForEachIndexed with cancellation: once ctx is
// done, no further indices are dispatched — queued work is abandoned,
// tasks already running finish — and the loop returns ctx.Err()
// unless an earlier-indexed task failed first (task errors keep
// priority, reported by lowest index; ctx.Err() slots in at the first
// undispatched index). The sequential path checks ctx between
// iterations.
func ForEachIndexedCtx(ctx context.Context, n, workers int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	b := telemetry.B()
	if b != nil {
		b.ParLoops.Inc()
		b.ParTasks.Add(int64(n))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	done := ctx.Done()
	errs := make([]error, n)
	var canceledAt atomic.Int64 // first index not dispatched due to cancellation; n+1 = none
	canceledAt.Store(int64(n + 1))
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				select {
				case <-done:
					// Record the earliest abandoned index so the
					// returned error respects index priority.
					for {
						old := canceledAt.Load()
						if int64(i) >= old || canceledAt.CompareAndSwap(old, int64(i)) {
							return
						}
					}
				default:
				}
				if b != nil {
					// Unclaimed tasks = n minus the claim counter; the
					// gauges expose pool utilization mid-sweep.
					if left := int64(n) - atomic.LoadInt64(&next); left > 0 {
						b.ParQueueDepth.Set(left)
					} else {
						b.ParQueueDepth.Set(0)
					}
					b.ParBusyWorkers.Add(1)
				}
				errs[i] = f(i)
				if b != nil {
					b.ParBusyWorkers.Add(-1)
				}
			}
		}()
	}
	wg.Wait()
	if b != nil {
		b.ParQueueDepth.Set(0)
	}
	stop := int(canceledAt.Load())
	for i, err := range errs {
		if i >= stop {
			break
		}
		if err != nil {
			return err
		}
	}
	if stop <= n {
		return ctx.Err()
	}
	return nil
}

// ---------------------------------------------------------------------
// Worker pool

// ErrQueueFull reports that the pool's bounded admission queue had no
// room for the task. The allocation daemon maps it to HTTP 429: under
// saturation, shedding load at admission beats queueing without bound.
var ErrQueueFull = errors.New("par: admission queue full")

// ErrPoolClosed reports a Submit after Close/Drain began.
var ErrPoolClosed = errors.New("par: pool closed")

// Pool is a long-lived worker pool with a bounded admission queue —
// the execution layer of the allocation daemon. Tasks are submitted
// with a context and run on one of a fixed set of workers; when every
// worker is busy and the queue is full, Submit fails fast with
// ErrQueueFull (backpressure) instead of queueing unboundedly.
// Drain stops admission and waits for queued and running tasks to
// finish — the daemon's graceful-shutdown path.
type Pool struct {
	queue chan task
	// assist is the unbuffered side door of Assist: a send succeeds
	// only while some worker is idle in its select, so assisted tasks
	// never consume admission-queue capacity and never wait.
	assist chan task
	wg     sync.WaitGroup

	mu     sync.Mutex
	closed bool

	// QueueDepth and Busy, when non-nil, track the number of admitted-
	// but-not-started tasks and the number of running tasks. The daemon
	// wires them to its request telemetry gauges.
	QueueDepth *telemetry.Gauge
	Busy       *telemetry.Gauge
}

type task struct {
	ctx context.Context
	run func(ctx context.Context)
}

// NewPool starts a pool of workers goroutines with an admission queue
// of queueSize tasks beyond the ones being executed. workers <= 0
// selects GOMAXPROCS; queueSize < 0 selects 0 (admission only when a
// worker is free to take the task soon).
func NewPool(workers, queueSize int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queueSize < 0 {
		queueSize = 0
	}
	p := &Pool{queue: make(chan task, queueSize), assist: make(chan task)}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.wg.Done()
			for {
				select {
				case t, ok := <-p.queue:
					if !ok {
						return
					}
					p.QueueDepth.Add(-1)
					p.exec(t)
				case t := <-p.assist:
					p.exec(t)
				}
			}
		}()
	}
	return p
}

// exec runs one task on the calling worker goroutine.
func (p *Pool) exec(t task) {
	// A task whose request died while queued is not worth starting.
	if t.ctx.Err() != nil {
		return
	}
	p.Busy.Add(1)
	t.run(t.ctx)
	p.Busy.Add(-1)
}

// Submit offers run to the pool. It returns nil when the task was
// admitted (run will be called with ctx on a worker goroutine, unless
// ctx is already done by then), ErrQueueFull when the queue is full,
// and ErrPoolClosed after Drain began. Submit never blocks on a full
// queue — that is the backpressure contract.
func (p *Pool) Submit(ctx context.Context, run func(ctx context.Context)) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.queue <- task{ctx: ctx, run: run}:
		p.QueueDepth.Add(1)
		return nil
	default:
		return ErrQueueFull
	}
}

// Assist offers run to an idle worker, bypassing the admission queue:
// it succeeds only when some worker is waiting for work at this
// instant, and reports whether the task was taken. Admitted units use
// it to fan their internal items out over spare capacity — a batch
// occupies one admission slot, and Assist lends it whatever workers
// happen to be free — without ever displacing or delaying admission
// of other requests. Callers must be prepared to run the work
// themselves when Assist returns false.
func (p *Pool) Assist(ctx context.Context, run func(ctx context.Context)) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.assist <- task{ctx: ctx, run: run}:
		return true
	default:
		return false
	}
}

// Drain stops admission and waits until every queued and running task
// has finished. Safe to call more than once.
func (p *Pool) Drain() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
