package ast

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders the program back to MC source. The output reparses to
// an equivalent program (the round-trip property is tested), which
// makes it useful for normalizing generated programs and for dumping
// the AST in bug reports.
func Print(p *Program) string {
	pr := &printer{}
	for _, g := range p.Globals {
		pr.varDecl(g, 0)
	}
	if len(p.Globals) > 0 && len(p.Funcs) > 0 {
		pr.b.WriteByte('\n')
	}
	for i, f := range p.Funcs {
		if i > 0 {
			pr.b.WriteByte('\n')
		}
		pr.funcDecl(f)
	}
	return pr.b.String()
}

type printer struct {
	b strings.Builder
}

func (p *printer) indent(level int) {
	for i := 0; i < level; i++ {
		p.b.WriteByte('\t')
	}
}

func (p *printer) varDecl(d *VarDecl, level int) {
	p.indent(level)
	p.b.WriteString(d.Type.Base.String())
	p.b.WriteByte(' ')
	p.b.WriteString(d.Name)
	if d.Type.IsArray() {
		fmt.Fprintf(&p.b, "[%d]", d.Type.ArrayLen)
	}
	if d.Init != nil {
		p.b.WriteString(" = ")
		p.expr(d.Init, 0)
	}
	p.b.WriteString(";\n")
}

func (p *printer) funcDecl(f *FuncDecl) {
	fmt.Fprintf(&p.b, "%s %s(", f.Result, f.Name)
	for i, param := range f.Params {
		if i > 0 {
			p.b.WriteString(", ")
		}
		fmt.Fprintf(&p.b, "%s %s", param.Type, param.Name)
	}
	p.b.WriteString(") ")
	p.block(f.Body, 0)
	p.b.WriteByte('\n')
}

func (p *printer) block(b *BlockStmt, level int) {
	p.b.WriteString("{\n")
	for _, s := range b.List {
		p.stmt(s, level+1)
	}
	p.indent(level)
	p.b.WriteByte('}')
}

func (p *printer) stmt(s Stmt, level int) {
	switch s := s.(type) {
	case *BlockStmt:
		p.indent(level)
		p.block(s, level)
		p.b.WriteByte('\n')
	case *DeclStmt:
		p.varDecl(s.Decl, level)
	case *AssignStmt:
		p.indent(level)
		p.assign(s)
		p.b.WriteString(";\n")
	case *ExprStmt:
		p.indent(level)
		p.expr(s.X, 0)
		p.b.WriteString(";\n")
	case *IfStmt:
		p.indent(level)
		p.ifChain(s, level)
		p.b.WriteByte('\n')
	case *WhileStmt:
		p.indent(level)
		p.b.WriteString("while (")
		p.expr(s.Cond, 0)
		p.b.WriteString(") ")
		p.block(s.Body, level)
		p.b.WriteByte('\n')
	case *DoWhileStmt:
		p.indent(level)
		p.b.WriteString("do ")
		p.block(s.Body, level)
		p.b.WriteString(" while (")
		p.expr(s.Cond, 0)
		p.b.WriteString(");\n")
	case *ForStmt:
		p.indent(level)
		p.b.WriteString("for (")
		if s.Init != nil {
			p.assign(s.Init)
		}
		p.b.WriteString("; ")
		if s.Cond != nil {
			p.expr(s.Cond, 0)
		}
		p.b.WriteString("; ")
		if s.Post != nil {
			p.assign(s.Post)
		}
		p.b.WriteString(") ")
		p.block(s.Body, level)
		p.b.WriteByte('\n')
	case *ReturnStmt:
		p.indent(level)
		p.b.WriteString("return")
		if s.Value != nil {
			p.b.WriteByte(' ')
			p.expr(s.Value, 0)
		}
		p.b.WriteString(";\n")
	case *BreakStmt:
		p.indent(level)
		p.b.WriteString("break;\n")
	case *ContinueStmt:
		p.indent(level)
		p.b.WriteString("continue;\n")
	}
}

// ifChain prints if/else-if chains flat instead of nesting.
func (p *printer) ifChain(s *IfStmt, level int) {
	p.b.WriteString("if (")
	p.expr(s.Cond, 0)
	p.b.WriteString(") ")
	p.block(s.Then, level)
	switch els := s.Else.(type) {
	case nil:
	case *IfStmt:
		p.b.WriteString(" else ")
		p.ifChain(els, level)
	case *BlockStmt:
		p.b.WriteString(" else ")
		p.block(els, level)
	default:
		p.b.WriteString(" else { /* ? */ }")
	}
}

func (p *printer) assign(s *AssignStmt) {
	p.b.WriteString(s.Target.Name)
	if s.Target.Index != nil {
		p.b.WriteByte('[')
		p.expr(s.Target.Index, 0)
		p.b.WriteByte(']')
	}
	p.b.WriteString(" = ")
	p.expr(s.Value, 0)
}

// expr prints e, parenthesizing when its binding is at or below the
// surrounding precedence (conservative but reparse-faithful).
func (p *printer) expr(e Expr, outerPrec int) {
	switch e := e.(type) {
	case *IntLit:
		fmt.Fprintf(&p.b, "%d", e.Value)
	case *FloatLit:
		p.b.WriteString(formatFloat(e.Value))
	case *Ident:
		p.b.WriteString(e.Name)
	case *IndexExpr:
		p.b.WriteString(e.Name)
		p.b.WriteByte('[')
		p.expr(e.Index, 0)
		p.b.WriteByte(']')
	case *CallExpr:
		p.b.WriteString(e.Name)
		p.b.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.expr(a, 0)
		}
		p.b.WriteByte(')')
	case *CastExpr:
		p.b.WriteString(e.To.String())
		p.b.WriteByte('(')
		p.expr(e.X, 0)
		p.b.WriteByte(')')
	case *UnaryExpr:
		if outerPrec > 0 {
			p.b.WriteByte('(')
		}
		p.b.WriteString(e.Op.String())
		// Parenthesize the operand of unary minus/not unless atomic.
		p.expr(e.X, 7)
		if outerPrec > 0 {
			p.b.WriteByte(')')
		}
	case *BinaryExpr:
		prec := e.Op.Precedence()
		if prec <= outerPrec {
			p.b.WriteByte('(')
		}
		p.expr(e.X, prec-1) // left-assoc: equal precedence on the left is fine
		fmt.Fprintf(&p.b, " %s ", e.Op)
		p.expr(e.Y, prec)
		if prec <= outerPrec {
			p.b.WriteByte(')')
		}
	}
}

// formatFloat renders a float so the lexer reads it back as FLOATLIT.
func formatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	// The MC lexer has no leading '-' in literals; negatives appear as
	// unary minus, but e.g. 1e-07 is fine.
	if strings.HasPrefix(s, "-") {
		// Callers only hold nonnegative literals (the parser folds the
		// sign into UnaryExpr), but be safe.
		s = "0.0 - " + s[1:]
	}
	return s
}
