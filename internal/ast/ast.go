// Package ast defines the abstract syntax tree of the MC language.
//
// MC is a small C-like language: int and float scalars, fixed-size
// one-dimensional arrays, functions, and structured control flow. It is
// deliberately simple — the point of this repository is the register
// allocator behind it — but rich enough to express realistic call-heavy
// and loop-heavy workloads.
package ast

import (
	"repro/internal/source"
	"repro/internal/token"
)

// Type is the source-level type of a declaration: a base kind plus an
// optional array length.
type Type struct {
	Base     BaseType
	ArrayLen int // 0 for scalars; > 0 for arrays
}

// BaseType enumerates the scalar base types of MC.
type BaseType int

// The base types. VoidType is only legal as a function result.
const (
	Invalid BaseType = iota
	IntType
	FloatType
	VoidType
)

// String returns the MC spelling of the base type.
func (b BaseType) String() string {
	switch b {
	case IntType:
		return "int"
	case FloatType:
		return "float"
	case VoidType:
		return "void"
	}
	return "invalid"
}

// IsArray reports whether t declares an array.
func (t Type) IsArray() bool { return t.ArrayLen > 0 }

// String renders the type as MC source, e.g. "int" or "float[16]".
func (t Type) String() string {
	if t.IsArray() {
		return t.Base.String() + "[" + itoa(t.ArrayLen) + "]"
	}
	return t.Base.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Node is implemented by every AST node.
type Node interface {
	Pos() source.Pos
}

// ---------------------------------------------------------------------
// Program structure

// Program is a whole MC translation unit.
type Program struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name    string
	Result  BaseType // IntType, FloatType, or VoidType
	Params  []*Param
	Body    *BlockStmt
	NamePos source.Pos
}

// Pos returns the position of the function name.
func (d *FuncDecl) Pos() source.Pos { return d.NamePos }

// Param is a single function parameter. Parameters are always scalars.
type Param struct {
	Name    string
	Type    BaseType
	NamePos source.Pos
}

// Pos returns the position of the parameter name.
func (p *Param) Pos() source.Pos { return p.NamePos }

// VarDecl declares a global or local variable, optionally with a scalar
// initializer expression.
type VarDecl struct {
	Name    string
	Type    Type
	Init    Expr // nil when absent; nil for arrays
	NamePos source.Pos
}

// Pos returns the position of the declared name.
func (d *VarDecl) Pos() source.Pos { return d.NamePos }

// ---------------------------------------------------------------------
// Statements

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is a brace-enclosed statement list with its own scope.
type BlockStmt struct {
	List  []Stmt
	Brace source.Pos
}

// DeclStmt wraps a local variable declaration as a statement.
type DeclStmt struct {
	Decl *VarDecl
}

// AssignStmt assigns Value to Target (a variable or array element).
type AssignStmt struct {
	Target *LValue
	Value  Expr
}

// LValue is an assignable location: a named variable, optionally indexed.
type LValue struct {
	Name    string
	Index   Expr // nil for scalars
	NamePos source.Pos
}

// Pos returns the position of the target name.
func (l *LValue) Pos() source.Pos { return l.NamePos }

// ExprStmt evaluates an expression for its side effects (a call).
type ExprStmt struct {
	X Expr
}

// IfStmt is an if/else statement; Else may be nil.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt or *IfStmt, or nil
	If   source.Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond  Expr
	Body  *BlockStmt
	While source.Pos
}

// DoWhileStmt is a do { } while (cond); loop.
type DoWhileStmt struct {
	Body *BlockStmt
	Cond Expr
	Do   source.Pos
}

// ForStmt is a C-style for loop. Init and Post may be nil and are
// restricted to assignments; Cond may be nil (infinite loop).
type ForStmt struct {
	Init *AssignStmt
	Cond Expr
	Post *AssignStmt
	Body *BlockStmt
	For  source.Pos
}

// ReturnStmt returns from the enclosing function; Value is nil in void
// functions.
type ReturnStmt struct {
	Value  Expr
	Return source.Pos
}

// BreakStmt exits the innermost loop.
type BreakStmt struct {
	Break source.Pos
}

// ContinueStmt jumps to the next iteration of the innermost loop.
type ContinueStmt struct {
	Continue source.Pos
}

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Pos implementations for statements.
func (s *BlockStmt) Pos() source.Pos    { return s.Brace }
func (s *DeclStmt) Pos() source.Pos     { return s.Decl.Pos() }
func (s *AssignStmt) Pos() source.Pos   { return s.Target.Pos() }
func (s *ExprStmt) Pos() source.Pos     { return s.X.Pos() }
func (s *IfStmt) Pos() source.Pos       { return s.If }
func (s *WhileStmt) Pos() source.Pos    { return s.While }
func (s *DoWhileStmt) Pos() source.Pos  { return s.Do }
func (s *ForStmt) Pos() source.Pos      { return s.For }
func (s *ReturnStmt) Pos() source.Pos   { return s.Return }
func (s *BreakStmt) Pos() source.Pos    { return s.Break }
func (s *ContinueStmt) Pos() source.Pos { return s.Continue }

// ---------------------------------------------------------------------
// Expressions

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// IntLit is an integer literal.
type IntLit struct {
	Value  int64
	LitPos source.Pos
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Value  float64
	LitPos source.Pos
}

// Ident references a scalar variable by name.
type Ident struct {
	Name    string
	NamePos source.Pos
}

// IndexExpr reads an array element: Name[Index].
type IndexExpr struct {
	Name    string
	Index   Expr
	NamePos source.Pos
}

// CallExpr calls a function by name.
type CallExpr struct {
	Name    string
	Args    []Expr
	NamePos source.Pos
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   token.Kind
	X, Y Expr
}

// UnaryExpr applies unary minus or logical not.
type UnaryExpr struct {
	Op    token.Kind
	X     Expr
	OpPos source.Pos
}

// CastExpr converts between int and float, written int(x) or float(x).
type CastExpr struct {
	To     BaseType
	X      Expr
	CastPo source.Pos
}

func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*Ident) exprNode()      {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*CastExpr) exprNode()   {}

// Pos implementations for expressions.
func (e *IntLit) Pos() source.Pos     { return e.LitPos }
func (e *FloatLit) Pos() source.Pos   { return e.LitPos }
func (e *Ident) Pos() source.Pos      { return e.NamePos }
func (e *IndexExpr) Pos() source.Pos  { return e.NamePos }
func (e *CallExpr) Pos() source.Pos   { return e.NamePos }
func (e *BinaryExpr) Pos() source.Pos { return e.X.Pos() }
func (e *UnaryExpr) Pos() source.Pos  { return e.OpPos }
func (e *CastExpr) Pos() source.Pos   { return e.CastPo }
