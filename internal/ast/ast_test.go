package ast_test

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/irbuild"
	"repro/internal/parser"
	"repro/internal/randprog"
	"repro/internal/types"
)

func TestTypeString(t *testing.T) {
	cases := map[string]ast.Type{
		"int":      {Base: ast.IntType},
		"float":    {Base: ast.FloatType},
		"int[16]":  {Base: ast.IntType, ArrayLen: 16},
		"float[3]": {Base: ast.FloatType, ArrayLen: 3},
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type.String() = %q, want %q", got, want)
		}
	}
	if ast.VoidType.String() != "void" {
		t.Error("void spelling")
	}
}

// lowerString compiles src to IR text, the semantic fingerprint used by
// the round-trip tests.
func lowerString(t *testing.T, src string) string {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("check: %v\n%s", err, src)
	}
	ir, err := irbuild.Build(prog, info)
	if err != nil {
		t.Fatalf("build: %v\n%s", err, src)
	}
	return ir.String()
}

func TestPrintRoundTrip(t *testing.T) {
	sources := []string{
		`int main() { return 2 + 3 * 4 - 6 / 2 % 5; }`,
		`int main() { return (2 + 3) * 4; }`,
		`int main() { return 10 - 4 - 3; }`,
		`int main() { return -(-3) + !0; }`,
		`int main() { return 1 < 2 && 3 >= 2 || !(4 == 5); }`,
		`
float w[8];
int g = 3 * 7;
float h = 2.5;
void bump(int x) { g = g + x; if (x > 2) { return; } g = g * 2; }
float mix(float a, int b) { return a * float(b) + w[b % 8]; }
int main() {
	int i;
	float acc = 0.0;
	for (i = 0; i < 8; i = i + 1) {
		w[i] = float(i) * h;
		acc = acc + mix(h, i);
		if (i % 3 == 0) { bump(i); } else if (i % 3 == 1) { bump(0 - i); } else { continue; }
		while (g > 100) { g = g / 2; }
		do { g = g + 1; } while (g % 7 != 0);
	}
	{ int shadow = g; acc = acc + float(shadow); }
	return int(acc) + g;
}`,
	}
	for _, src := range sources {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		printed := ast.Print(prog)
		if lowerString(t, src) != lowerString(t, printed) {
			t.Errorf("round trip changed semantics:\n--- original ---\n%s\n--- printed ---\n%s", src, printed)
		}
		// Printing must be a fixpoint after one round.
		prog2, err := parser.Parse(printed)
		if err != nil {
			t.Fatalf("printed source does not reparse: %v\n%s", err, printed)
		}
		if again := ast.Print(prog2); again != printed {
			t.Errorf("printer not idempotent:\n%s\nvs\n%s", printed, again)
		}
	}
}

func TestPrintRoundTripRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		src := randprog.Generate(seed, randprog.DefaultOptions())
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		printed := ast.Print(prog)
		if lowerString(t, src) != lowerString(t, printed) {
			t.Fatalf("seed %d: round trip changed semantics\n%s", seed, printed)
		}
	}
}

func TestPrintShape(t *testing.T) {
	prog, err := parser.Parse(`int f(int a, float b) { return a; } int x = 3;`)
	if err != nil {
		t.Fatal(err)
	}
	out := ast.Print(prog)
	for _, want := range []string{"int x = 3;", "int f(int a, float b) {", "return a;"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed source lacks %q:\n%s", want, out)
		}
	}
}
