// Package cfg computes control-flow-graph facts for IR functions:
// predecessors, reverse postorder, dominators, natural loops, and loop
// nesting depth. Loop depth drives the static execution-frequency
// estimates the paper's "static" experiments use.
package cfg

import (
	"repro/internal/ir"
)

// Graph holds the derived CFG facts for one function.
type Graph struct {
	Fn *ir.Func
	// Preds[b] lists the predecessor block IDs of block b.
	Preds [][]int
	// Succs[b] caches the successor block IDs of block b.
	Succs [][]int
	// RPO is a reverse postorder over reachable blocks.
	RPO []int
	// Idom[b] is the immediate dominator of b (-1 for entry and
	// unreachable blocks).
	Idom []int
	// LoopDepth[b] is the number of natural loops containing b.
	LoopDepth []int
	// LoopHead[b] reports whether b is a natural loop header.
	LoopHead []bool
}

// New computes the CFG facts for fn.
func New(fn *ir.Func) *Graph {
	n := len(fn.Blocks)
	g := &Graph{
		Fn:        fn,
		Preds:     make([][]int, n),
		Succs:     make([][]int, n),
		Idom:      make([]int, n),
		LoopDepth: make([]int, n),
		LoopHead:  make([]bool, n),
	}
	for _, b := range fn.Blocks {
		g.Succs[b.ID] = b.Succs()
		for _, s := range g.Succs[b.ID] {
			g.Preds[s] = append(g.Preds[s], b.ID)
		}
	}
	g.computeRPO()
	g.computeDominators()
	g.computeLoops()
	return g
}

// Retarget returns a view of g's derived facts bound to fn, a function
// whose block structure (count, IDs, successor lists) is identical to
// the one g was computed for — the case after a spill-everywhere
// rewrite, which inserts loads and stores but never touches
// terminators. The fact slices are shared, not copied: New never
// mutates them after construction, so one frozen Graph may be
// retargeted by many goroutines at once.
func (g *Graph) Retarget(fn *ir.Func) *Graph {
	return &Graph{
		Fn:        fn,
		Preds:     g.Preds,
		Succs:     g.Succs,
		RPO:       g.RPO,
		Idom:      g.Idom,
		LoopDepth: g.LoopDepth,
		LoopHead:  g.LoopHead,
	}
}

func (g *Graph) computeRPO() {
	n := len(g.Fn.Blocks)
	seen := make([]bool, n)
	post := make([]int, 0, n)
	// Iterative DFS with explicit phases to get a true postorder.
	type frame struct {
		id   int
		next int
	}
	stack := []frame{{id: 0}}
	seen[0] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(g.Succs[f.id]) {
			s := g.Succs[f.id][f.next]
			f.next++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{id: s})
			}
			continue
		}
		post = append(post, f.id)
		stack = stack[:len(stack)-1]
	}
	g.RPO = make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		g.RPO = append(g.RPO, post[i])
	}
}

// computeDominators runs the Cooper/Harvey/Kennedy iterative algorithm
// over the reverse postorder.
func (g *Graph) computeDominators() {
	n := len(g.Fn.Blocks)
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range g.RPO {
		rpoNum[b] = i
	}
	for i := range g.Idom {
		g.Idom[i] = -1
	}
	if len(g.RPO) == 0 {
		return
	}
	entry := g.RPO[0]
	g.Idom[entry] = entry
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = g.Idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = g.Idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, b := range g.RPO[1:] {
			newIdom := -1
			for _, p := range g.Preds[b] {
				if g.Idom[p] == -1 {
					continue // unreachable or not yet processed
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && g.Idom[b] != newIdom {
				g.Idom[b] = newIdom
				changed = true
			}
		}
	}
	// Entry's idom is conventionally itself during computation; expose
	// it as -1 ("none").
	g.Idom[entry] = -1
}

// Dominates reports whether block a dominates block b. Every block
// dominates itself.
func (g *Graph) Dominates(a, b int) bool {
	for {
		if a == b {
			return true
		}
		next := g.Idom[b]
		if next == -1 || next == b {
			return false
		}
		b = next
	}
}

// computeLoops finds natural loops from back edges (t -> h where h
// dominates t) and assigns loop depth as the number of distinct loop
// headers whose loop body contains the block.
func (g *Graph) computeLoops() {
	n := len(g.Fn.Blocks)
	// Collect the loop body for each header (merging multiple back
	// edges to the same header).
	bodies := make(map[int]map[int]bool)
	for _, b := range g.Fn.Blocks {
		for _, s := range g.Succs[b.ID] {
			if g.Idom[b.ID] == -1 && b.ID != 0 {
				continue // unreachable
			}
			if g.Dominates(s, b.ID) {
				// Back edge b.ID -> s.
				body := bodies[s]
				if body == nil {
					body = map[int]bool{s: true}
					bodies[s] = body
				}
				g.collectLoop(body, b.ID, s)
			}
		}
	}
	for h, body := range bodies {
		g.LoopHead[h] = true
		for b := range body {
			if b >= 0 && b < n {
				g.LoopDepth[b]++
			}
		}
	}
}

// collectLoop adds to body all blocks that can reach tail without
// passing through head (the standard natural-loop construction).
func (g *Graph) collectLoop(body map[int]bool, tail, head int) {
	if body[tail] {
		return
	}
	body[tail] = true
	stack := []int{tail}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.Preds[b] {
			if !body[p] {
				body[p] = true
				stack = append(stack, p)
			}
		}
	}
	_ = head
}
