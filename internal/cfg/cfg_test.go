package cfg_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/compile"
	"repro/internal/ir"
)

func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := compile.Source(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func graphOf(t *testing.T, src, fn string) (*ir.Func, *cfg.Graph) {
	t.Helper()
	prog := build(t, src)
	f := prog.FuncByName[fn]
	if f == nil {
		t.Fatalf("no function %s", fn)
	}
	return f, cfg.New(f)
}

func TestStraightLine(t *testing.T) {
	f, g := graphOf(t, `int main() { int x = 1; return x; }`, "main")
	if len(f.Blocks) != 1 {
		t.Fatalf("expected 1 block, got %d", len(f.Blocks))
	}
	if g.LoopDepth[0] != 0 {
		t.Errorf("loop depth = %d, want 0", g.LoopDepth[0])
	}
	if g.Idom[0] != -1 {
		t.Errorf("entry idom = %d, want -1", g.Idom[0])
	}
}

func TestPredsMatchSuccs(t *testing.T) {
	_, g := graphOf(t, `
int main() {
	int i; int s = 0;
	for (i = 0; i < 9; i = i + 1) {
		if (i % 2 == 0) { s = s + i; } else { s = s - i; }
	}
	while (s > 0) { s = s - 3; }
	return s;
}`, "main")
	for b := range g.Succs {
		for _, s := range g.Succs[b] {
			if !contains(g.Preds[s], b) {
				t.Errorf("b%d -> b%d missing from preds", b, s)
			}
		}
		for _, p := range g.Preds[b] {
			if !contains(g.Succs[p], b) {
				t.Errorf("pred b%d of b%d missing the edge", p, b)
			}
		}
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func TestEntryDominatesAll(t *testing.T) {
	_, g := graphOf(t, `
int main() {
	int i; int s = 0;
	for (i = 0; i < 5; i = i + 1) {
		if (i > 2) { s = s + 2; }
	}
	return s;
}`, "main")
	for _, b := range g.RPO {
		if !g.Dominates(0, b) {
			t.Errorf("entry does not dominate b%d", b)
		}
		if !g.Dominates(b, b) {
			t.Errorf("b%d does not dominate itself", b)
		}
	}
}

func TestIdomIsDominator(t *testing.T) {
	_, g := graphOf(t, `
int main() {
	int i; int j; int s = 0;
	for (i = 0; i < 5; i = i + 1) {
		for (j = 0; j < 5; j = j + 1) {
			if (s % 2 == 0) { s = s + 1; }
		}
	}
	return s;
}`, "main")
	for _, b := range g.RPO[1:] {
		id := g.Idom[b]
		if id == -1 {
			t.Errorf("reachable b%d has no idom", b)
			continue
		}
		if !g.Dominates(id, b) {
			t.Errorf("idom b%d of b%d does not dominate it", id, b)
		}
	}
}

func TestLoopDepths(t *testing.T) {
	f, g := graphOf(t, `
int main() {
	int i; int j; int k; int s = 0;
	s = s + 1000;
	for (i = 0; i < 3; i = i + 1) {
		s = s + 100;
		for (j = 0; j < 3; j = j + 1) {
			s = s + 10;
			for (k = 0; k < 3; k = k + 1) {
				s = s + 1;
			}
		}
	}
	return s;
}`, "main")
	maxDepth := 0
	for _, d := range g.LoopDepth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth != 3 {
		t.Errorf("max loop depth = %d, want 3", maxDepth)
	}
	if g.LoopDepth[0] != 0 {
		t.Errorf("entry depth = %d, want 0", g.LoopDepth[0])
	}
	// The return block is outside all loops.
	last := -1
	for _, b := range f.Blocks {
		if tm := b.Terminator(); tm != nil && tm.Op == ir.OpRet {
			last = b.ID
		}
	}
	if last == -1 {
		t.Fatal("no return block")
	}
	if g.LoopDepth[last] != 0 {
		t.Errorf("return block depth = %d, want 0", g.LoopDepth[last])
	}
}

func TestWhileLoopHeader(t *testing.T) {
	_, g := graphOf(t, `
int main() {
	int i = 0;
	while (i < 10) { i = i + 1; }
	return i;
}`, "main")
	headers := 0
	for _, h := range g.LoopHead {
		if h {
			headers++
		}
	}
	if headers != 1 {
		t.Errorf("loop headers = %d, want 1", headers)
	}
}

func TestDoWhileIsLoop(t *testing.T) {
	_, g := graphOf(t, `
int main() {
	int i = 0;
	do { i = i + 1; } while (i < 10);
	return i;
}`, "main")
	found := false
	for _, d := range g.LoopDepth {
		if d > 0 {
			found = true
		}
	}
	if !found {
		t.Error("do-while produced no loop")
	}
}

func TestRPOStartsAtEntry(t *testing.T) {
	_, g := graphOf(t, `
int main() {
	int x = 0;
	if (x == 0) { x = 1; } else { x = 2; }
	return x;
}`, "main")
	if len(g.RPO) == 0 || g.RPO[0] != 0 {
		t.Fatalf("RPO = %v, want to start at 0", g.RPO)
	}
	// RPO visits each reachable block exactly once.
	seen := map[int]bool{}
	for _, b := range g.RPO {
		if seen[b] {
			t.Errorf("block b%d appears twice in RPO", b)
		}
		seen[b] = true
	}
}

func TestBreakDoesNotExtendLoop(t *testing.T) {
	f, g := graphOf(t, `
int main() {
	int i; int s = 0;
	for (i = 0; i < 10; i = i + 1) {
		if (i == 5) { break; }
		s = s + i;
	}
	return s;
}`, "main")
	// The block containing the return must not be in the loop.
	for _, b := range f.Blocks {
		if tm := b.Terminator(); tm != nil && tm.Op == ir.OpRet {
			if g.LoopDepth[b.ID] != 0 {
				t.Errorf("return block b%d has loop depth %d", b.ID, g.LoopDepth[b.ID])
			}
		}
	}
}
