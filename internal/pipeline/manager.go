package pipeline

import (
	"repro/internal/cfg"
	"repro/internal/freq"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/liverange"
	"repro/internal/telemetry"
)

// Liveness modes reported by LiveStat — how the manager obtained the
// current liveness solution. The obs `liveness` event carries them.
const (
	// LiveModeFull: a from-scratch sparse solve over the whole function.
	LiveModeFull = "full"
	// LiveModeUpdate: an incremental re-solve seeded from the blocks
	// the spill rewrite modified (liveness.Rebase).
	LiveModeUpdate = "update"
)

// AnalysisManager owns the analysis artifacts of one allocation run and
// tracks their validity. Passes request analyses through it; the runner
// intersects the valid set with each pass's Preserves() result, so a
// pass that rewrites the function (spill-code insertion reports
// PreserveNone) automatically invalidates everything and the next
// round recomputes.
//
// The manager generalizes the shared prep cache: while the working
// function is still the cached original (every round 0), a requested
// analysis is served from the FuncCache as a copy-on-write view — a
// liveness Fork, an interference Snapshot, or the frozen live-range
// block map — leaving the shared artifact frozen. Once a spill rewrite
// has replaced the function, the cache no longer applies and analyses
// are recomputed — incrementally where the rewrite evidence allows:
// the interference graphs are patched by interference.Reconstruct from
// the previous round's (now stale) graphs, liveness is re-solved only
// from the rewritten blocks by liveness.Rebase (reusing the CFG
// through a retargeted view, since spill code never changes block
// structure), and the live-range block map re-scans only the blocks
// whose liveness the update actually changed.
//
// A manager belongs to one State and is not safe for concurrent use;
// concurrency happens one level up, with many managers reading one
// FuncCache.
type AnalysisManager struct {
	cache *FuncCache
	fn    *ir.Func
	valid AnalysisSet

	cfg  *cfg.Graph
	live *liveness.Info
	// liveOwned marks live as privately owned (safe for Rebase to
	// mutate); a round-0 Fork of the cached Info is shared and must be
	// rebased copy-on-write.
	liveOwned bool
	// base holds the current per-class uncoalesced graphs. After an
	// invalidation the entries are stale rather than discarded: they
	// are exactly what Reconstruct patches into the next round's
	// graphs.
	base [ir.NumClasses]*interference.Graph

	// bm is the live-range block map, with the same stale-then-rebased
	// lifecycle as base; bmOwned mirrors liveOwned for the shared
	// round-0 artifact.
	bm      *liverange.BlockMap
	bmOwned bool

	// Rewrite evidence for incremental reconstruction: the registers
	// spilled by the last rewrite, the temporaries it introduced, and
	// the blocks it modified (haveDirty distinguishes "no rewrite
	// happened" from an inserter that reported nil = unknown).
	spilled   map[ir.Reg]*ir.Symbol
	temps     map[ir.Reg]bool
	dirty     []int
	haveDirty bool

	// changed lists the blocks whose liveness sets the last Rebase may
	// have changed (consumed by the block-map update); liveMode and
	// liveVisited describe the last solve for LiveStat.
	changed     []int
	haveChanged bool
	liveMode    string
	liveVisited int
}

// NewAnalysisManager returns a manager serving analyses of the cached
// function. Nothing is valid yet; artifacts materialize on request.
func NewAnalysisManager(cache *FuncCache) *AnalysisManager {
	return &AnalysisManager{cache: cache, fn: cache.Fn}
}

// FromCache reports whether the working function is still the cached
// original, i.e. whether analyses may be served as views of the shared
// frozen artifacts.
func (m *AnalysisManager) FromCache() bool { return m.fn == m.cache.Fn }

// Valid returns the currently valid analyses.
func (m *AnalysisManager) Valid() AnalysisSet { return m.valid }

// Invalidate drops every analysis not in preserved. The runner calls
// this after each pass with the pass's Preserves() set.
func (m *AnalysisManager) Invalidate(preserved AnalysisSet) { m.valid &= preserved }

// MarkValid records that a is now valid (used by analysis passes that
// materialize an artifact themselves).
func (m *AnalysisManager) MarkValid(a Analysis) { m.valid = m.valid.With(a) }

// SetFunc switches the manager to a rewritten working function (the
// lazily-created clone). Everything is invalidated; the stale base
// graphs, liveness, and block map are retained as incremental seeds,
// but any not-yet-consumed rewrite evidence is dropped — it described
// a different function.
func (m *AnalysisManager) SetFunc(fn *ir.Func) {
	m.fn = fn
	m.valid = PreserveNone
	m.haveDirty = false
	m.haveChanged = false
}

// RecordRewrite stores the evidence of a spill rewrite — which
// registers were sent to memory, which temporaries the rewrite
// introduced, and which blocks it modified — for the next round's
// incremental reconstruction and dataflow update. A nil dirty slice
// means the inserter could not bound its effect; the next liveness
// request then falls back to a full solve.
func (m *AnalysisManager) RecordRewrite(spilled map[ir.Reg]*ir.Symbol, temps map[ir.Reg]bool, dirty []int) {
	m.spilled = spilled
	m.temps = temps
	m.dirty = dirty
	m.haveDirty = dirty != nil
}

// Liveness returns the liveness of the working function, computing it
// if invalid. While the working function is the cached original the
// result is a private Fork of the shared frozen Info; hit reports
// whether the shared artifact was already built (the prep-cache hit
// signal). After a rewrite the previous solution is updated
// incrementally from the rewritten blocks (liveness.Rebase), reusing
// the CFG through a retargeted view — unless rebuild is set, no
// rewrite evidence exists, or the block structure changed, in which
// case liveness and the CFG are recomputed from scratch.
func (m *AnalysisManager) Liveness(rebuild bool) (live *liveness.Info, hit bool) {
	if m.valid.Has(AnalysisLiveness) {
		return m.live, true
	}
	switch {
	case m.FromCache():
		hit = !m.cache.EnsureLive()
		if b := telemetry.B(); b != nil {
			if hit {
				b.PrepLiveHits.Inc()
			} else {
				b.PrepLiveMisses.Inc()
			}
		}
		m.cfg = m.cache.CFG()
		m.live = m.cache.Liveness().Fork()
		m.liveOwned = false
		m.haveChanged = false
		m.liveMode = ""
		if !hit {
			m.liveMode = LiveModeFull
		}
	case !rebuild && m.haveDirty && m.live != nil && m.cfg != nil &&
		len(m.fn.Blocks) == len(m.live.In):
		m.cfg = m.cfg.Retarget(m.fn)
		removed := make([]ir.Reg, 0, len(m.spilled))
		for r := range m.spilled {
			removed = append(removed, r)
		}
		var chg []int
		m.live, chg = liveness.Rebase(m.live, m.fn, m.cfg, m.dirty, removed, m.liveOwned)
		m.liveOwned = true
		m.changed = chg
		m.haveChanged = chg != nil
		m.liveMode = LiveModeUpdate
		if chg == nil {
			// Rebase declined and recomputed densely.
			m.liveMode = LiveModeFull
		}
	default:
		m.cfg = cfg.New(m.fn)
		m.live = liveness.Compute(m.fn, m.cfg)
		m.liveOwned = true
		m.haveChanged = false
		m.liveMode = LiveModeFull
	}
	m.haveDirty = false // consumed; a fresh rewrite must re-arm it
	m.liveVisited = m.live.Visited
	m.valid = m.valid.With(AnalysisCFG).With(AnalysisLiveness)
	return m.live, hit
}

// LiveStat describes how the current liveness solution was last
// obtained: the mode (LiveModeFull or LiveModeUpdate; empty when it
// was served from the already-built shared cache without solving), the
// number of block visits the solver performed, and the function's
// total block count. The liveness pass turns this into the obs
// `liveness` event.
func (m *AnalysisManager) LiveStat() (mode string, visited, total int) {
	return m.liveMode, m.liveVisited, len(m.fn.Blocks)
}

// CFG returns the control-flow graph of the working function,
// computing it (together with liveness) if invalid.
func (m *AnalysisManager) CFG() *cfg.Graph {
	if !m.valid.Has(AnalysisCFG) {
		m.Liveness(false)
	}
	return m.cfg
}

// Interference materializes the per-class base (uncoalesced)
// interference graphs of the working function. While the working
// function is the cached original they are copy-on-write Snapshots of
// the shared frozen graphs; hit reports whether those were already
// built. After a rewrite the stale graphs are patched in place by
// interference.Reconstruct — or rebuilt from scratch when rebuild is
// set or no seed exists.
func (m *AnalysisManager) Interference(rebuild bool) (hit bool) {
	if m.valid.Has(AnalysisInterference) {
		return true
	}
	if m.FromCache() {
		hit = !m.cache.EnsureBase()
		if b := telemetry.B(); b != nil {
			if hit {
				b.PrepGraphHits.Inc()
			} else {
				b.PrepGraphMisses.Inc()
			}
		}
		for c := ir.Class(0); c < ir.NumClasses; c++ {
			m.base[c] = m.cache.BaseGraph(c).Snapshot()
		}
	} else {
		if !m.valid.Has(AnalysisLiveness) {
			m.Liveness(rebuild)
		}
		for c := ir.Class(0); c < ir.NumClasses; c++ {
			if rebuild || m.base[c] == nil {
				m.base[c] = interference.Build(m.fn, m.live, c)
			} else {
				m.base[c] = interference.Reconstruct(m.base[c], m.fn, m.live, m.spilled,
					func(r ir.Reg) bool { return m.temps[r] })
			}
		}
	}
	m.valid = m.valid.With(AnalysisInterference)
	return hit
}

// BlockMap materializes the live-range block map of the working
// function: the frozen shared map at round 0, an incremental column
// update over the blocks the liveness rebase changed after a spill
// rewrite (cloning the shared map copy-on-write first), or a full
// rebuild when no usable seed or change list exists. Liveness must be
// valid; the ranges pass guarantees that order.
func (m *AnalysisManager) BlockMap() *liverange.BlockMap {
	if m.valid.Has(AnalysisBlockMap) {
		return m.bm
	}
	if !m.valid.Has(AnalysisLiveness) {
		m.Liveness(false)
	}
	switch {
	case m.FromCache():
		m.bm = m.cache.BlockMap()
		m.bmOwned = false
	case m.haveChanged && m.bm != nil && m.bm.Blocks() == len(m.fn.Blocks):
		if !m.bmOwned {
			m.bm = m.bm.Clone()
			m.bmOwned = true
		}
		m.bm.Rebase(m.fn, m.live, m.changed)
	default:
		m.bm = liverange.NewBlockMap(m.fn, m.live)
		m.bmOwned = true
	}
	m.haveChanged = false // consumed
	m.valid = m.valid.With(AnalysisBlockMap)
	return m.bm
}

// Base returns the current base interference graph of one bank.
// Interference must have materialized it this round; consumers that
// mutate must go through Snapshot.
func (m *AnalysisManager) Base(c ir.Class) *interference.Graph { return m.base[c] }

// CoalescedSnapshots returns fresh copy-on-write views of the shared
// aggressively-coalesced round-0 graphs. Only meaningful while the
// working function is the cached original.
func (m *AnalysisManager) CoalescedSnapshots() [ir.NumClasses]*interference.Graph {
	cg := m.cache.Coalesced()
	var out [ir.NumClasses]*interference.Graph
	for c := range cg {
		out[c] = cg[c].Snapshot()
	}
	return out
}

// CachedRanges returns the shared round-0 live-range analysis under
// ff. Only meaningful while the working function is the cached
// original.
func (m *AnalysisManager) CachedRanges(ff *freq.FuncFreq) *liverange.Set {
	return m.cache.RangesFor(ff)
}
