package pipeline

import (
	"repro/internal/cfg"
	"repro/internal/freq"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/liverange"
	"repro/internal/liveness"
)

// AnalysisManager owns the analysis artifacts of one allocation run and
// tracks their validity. Passes request analyses through it; the runner
// intersects the valid set with each pass's Preserves() result, so a
// pass that rewrites the function (spill-code insertion reports
// PreserveNone) automatically invalidates everything and the next
// round recomputes.
//
// The manager generalizes the shared prep cache: while the working
// function is still the cached original (every round 0), a requested
// analysis is served from the FuncCache as a copy-on-write view — a
// liveness Fork or an interference Snapshot — leaving the shared
// artifact frozen. Once a spill rewrite has replaced the function, the
// cache no longer applies and analyses are recomputed; the interference
// graphs recompute incrementally, using the previous round's (now
// stale) graphs as seeds for interference.Reconstruct.
//
// A manager belongs to one State and is not safe for concurrent use;
// concurrency happens one level up, with many managers reading one
// FuncCache.
type AnalysisManager struct {
	cache *FuncCache
	fn    *ir.Func
	valid AnalysisSet

	cfg  *cfg.Graph
	live *liveness.Info
	// base holds the current per-class uncoalesced graphs. After an
	// invalidation the entries are stale rather than discarded: they
	// are exactly what Reconstruct patches into the next round's
	// graphs.
	base [ir.NumClasses]*interference.Graph

	// Rewrite evidence for incremental reconstruction: the registers
	// spilled by the last rewrite and the temporaries it introduced.
	spilled map[ir.Reg]*ir.Symbol
	temps   map[ir.Reg]bool
}

// NewAnalysisManager returns a manager serving analyses of the cached
// function. Nothing is valid yet; artifacts materialize on request.
func NewAnalysisManager(cache *FuncCache) *AnalysisManager {
	return &AnalysisManager{cache: cache, fn: cache.Fn}
}

// FromCache reports whether the working function is still the cached
// original, i.e. whether analyses may be served as views of the shared
// frozen artifacts.
func (m *AnalysisManager) FromCache() bool { return m.fn == m.cache.Fn }

// Valid returns the currently valid analyses.
func (m *AnalysisManager) Valid() AnalysisSet { return m.valid }

// Invalidate drops every analysis not in preserved. The runner calls
// this after each pass with the pass's Preserves() set.
func (m *AnalysisManager) Invalidate(preserved AnalysisSet) { m.valid &= preserved }

// MarkValid records that a is now valid (used by analysis passes that
// materialize an artifact themselves).
func (m *AnalysisManager) MarkValid(a Analysis) { m.valid = m.valid.With(a) }

// SetFunc switches the manager to a rewritten working function (the
// lazily-created clone). Everything is invalidated; the stale base
// graphs are retained as reconstruction seeds.
func (m *AnalysisManager) SetFunc(fn *ir.Func) {
	m.fn = fn
	m.valid = PreserveNone
}

// RecordRewrite stores the evidence of a spill rewrite — which
// registers were sent to memory and which temporaries the rewrite
// introduced — for the next incremental interference reconstruction.
func (m *AnalysisManager) RecordRewrite(spilled map[ir.Reg]*ir.Symbol, temps map[ir.Reg]bool) {
	m.spilled = spilled
	m.temps = temps
}

// Liveness returns the liveness of the working function, computing it
// if invalid. While the working function is the cached original the
// result is a private Fork of the shared frozen Info; hit reports
// whether the shared artifact was already built (the prep-cache hit
// signal). After a rewrite, liveness (and the CFG) are recomputed from
// scratch.
func (m *AnalysisManager) Liveness() (live *liveness.Info, hit bool) {
	if m.valid.Has(AnalysisLiveness) {
		return m.live, true
	}
	if m.FromCache() {
		hit = !m.cache.EnsureLive()
		m.cfg = m.cache.CFG()
		m.live = m.cache.Liveness().Fork()
	} else {
		m.cfg = cfg.New(m.fn)
		m.live = liveness.Compute(m.fn, m.cfg)
	}
	m.valid = m.valid.With(AnalysisCFG).With(AnalysisLiveness)
	return m.live, hit
}

// CFG returns the control-flow graph of the working function,
// computing it (together with liveness) if invalid.
func (m *AnalysisManager) CFG() *cfg.Graph {
	if !m.valid.Has(AnalysisCFG) {
		m.Liveness()
	}
	return m.cfg
}

// Interference materializes the per-class base (uncoalesced)
// interference graphs of the working function. While the working
// function is the cached original they are copy-on-write Snapshots of
// the shared frozen graphs; hit reports whether those were already
// built. After a rewrite the stale graphs are patched in place by
// interference.Reconstruct — or rebuilt from scratch when rebuild is
// set or no seed exists.
func (m *AnalysisManager) Interference(rebuild bool) (hit bool) {
	if m.valid.Has(AnalysisInterference) {
		return true
	}
	if m.FromCache() {
		hit = !m.cache.EnsureBase()
		for c := ir.Class(0); c < ir.NumClasses; c++ {
			m.base[c] = m.cache.BaseGraph(c).Snapshot()
		}
	} else {
		if !m.valid.Has(AnalysisLiveness) {
			m.Liveness()
		}
		for c := ir.Class(0); c < ir.NumClasses; c++ {
			if rebuild || m.base[c] == nil {
				m.base[c] = interference.Build(m.fn, m.live, c)
			} else {
				m.base[c] = interference.Reconstruct(m.base[c], m.fn, m.live, m.spilled,
					func(r ir.Reg) bool { return m.temps[r] })
			}
		}
	}
	m.valid = m.valid.With(AnalysisInterference)
	return hit
}

// Base returns the current base interference graph of one bank.
// Interference must have materialized it this round; consumers that
// mutate must go through Snapshot.
func (m *AnalysisManager) Base(c ir.Class) *interference.Graph { return m.base[c] }

// CoalescedSnapshots returns fresh copy-on-write views of the shared
// aggressively-coalesced round-0 graphs. Only meaningful while the
// working function is the cached original.
func (m *AnalysisManager) CoalescedSnapshots() [ir.NumClasses]*interference.Graph {
	cg := m.cache.Coalesced()
	var out [ir.NumClasses]*interference.Graph
	for c := range cg {
		out[c] = cg[c].Snapshot()
	}
	return out
}

// CachedRanges returns the shared round-0 live-range analysis under
// ff. Only meaningful while the working function is the cached
// original.
func (m *AnalysisManager) CachedRanges(ff *freq.FuncFreq) *liverange.Set {
	return m.cache.RangesFor(ff)
}
